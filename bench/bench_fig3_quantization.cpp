// Fig 3 / Fig 11: quantization impact on latency, throughput and memory
// (bs = 32, sl = 96, MaxN, FP32/FP16/INT8/INT4 for all four models, with
// OOM markers matching the paper).
#include <cstdio>

#include "core/cli.h"
#include "core/units.h"
#include "harness/experiments.h"
#include "harness/shape_checks.h"
#include "sim/model_catalog.h"

using namespace orinsim;
using namespace orinsim::harness;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Quantization study (paper Fig 3 / Fig 11): bs=32, sl=96, MaxN ==\n");
  const QuantStudy study = run_quant_study();
  for (Metric m : {Metric::kLatency, Metric::kThroughput, Metric::kRam, Metric::kPower,
                   Metric::kEnergy}) {
    std::printf("\n-- %s --\n", metric_name(m).c_str());
    const Table t = quant_study_table(study, m);
    std::fputs((csv ? t.to_csv() : t.to_markdown()).c_str(), stdout);
  }

  // Latency ratios vs FP16 — the paper's headline quantization claim.
  std::printf("\n-- latency relative to FP16 (paper: +62%% for Phi-2/Llama INT8, +2%% Mistral) --\n");
  Table ratios({"Model", "INT8 / FP16", "INT4 / FP16", "INT4 / INT8"});
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
    const Cell& f16 = study.cells[mi][1];
    const Cell& i8 = study.cells[mi][2];
    const Cell& i4 = study.cells[mi][3];
    ratios.new_row().add_cell(catalog[mi].display);
    if (f16.oom) {
      ratios.add_cell("FP16 OOM").add_cell("FP16 OOM");
    } else {
      ratios.add_cell("x" + format_double(i8.latency_s / f16.latency_s, 2));
      ratios.add_cell("x" + format_double(i4.latency_s / f16.latency_s, 2));
    }
    ratios.add_cell("x" + format_double(i4.latency_s / i8.latency_s, 2));
  }
  std::fputs((csv ? ratios.to_csv() : ratios.to_markdown()).c_str(), stdout);

  std::printf("\n-- shape checks (paper section 3.3) --\n");
  std::fputs(format_checks(check_quant_study(study)).c_str(), stdout);
  return 0;
}
