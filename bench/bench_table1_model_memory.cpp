// Table 1: model weight memory per precision, with the architecture-derived
// estimate next to the paper's measured values, and the model-load OOM
// verdict on the 64GB Orin AGX.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "sim/memory_model.h"
#include "sim/model_catalog.h"
#include "sim/paper_reference.h"

using namespace orinsim;
using namespace orinsim::sim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Table 1: peak weight memory (GB) per precision ==\n");
  std::printf("   cells: paper value (derived-from-architecture estimate)\n\n");

  Table table({"Model", "# Params", "FP32", "FP16", "INT8", "INT4", "Fits on Orin 64GB"});
  const MemoryModel mm;
  for (const auto& m : model_catalog()) {
    table.new_row().add_cell(m.display).add_cell(format_double(m.params_b, 1) + "B");
    std::string fits;
    for (DType dt : kAllDTypes) {
      table.add_cell(format_double(m.weight_gb(dt), 1) + " (" +
                     format_double(m.derived_weight_gb(dt), 1) + ")");
      if (!mm.model_oom(m, dt)) {
        if (!fits.empty()) fits += "/";
        fits += dtype_name(dt);
      }
    }
    table.add_cell(fits);
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);

  std::printf("\nKV-cache cost per token per sequence (fp16 cache):\n");
  Table kv({"Model", "Layers", "KV heads x head_dim", "KV bytes/token"});
  for (const auto& m : model_catalog()) {
    kv.new_row()
        .add_cell(m.display)
        .add_cell(std::to_string(m.n_layers))
        .add_cell(std::to_string(m.n_kv_heads) + " x " +
                  std::to_string(m.d_model / m.n_heads))
        .add_cell(format_bytes(m.kv_bytes_per_token()));
  }
  std::fputs((csv ? kv.to_csv() : kv.to_markdown()).c_str(), stdout);
  return 0;
}
