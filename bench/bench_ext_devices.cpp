// Extension study: the four paper models across the Jetson device family
// (the landscape the paper's related-work section sketches: Seymour et al.'s
// Orin AGX 32GB, the authors' earlier Xavier AGX 32GB, and the smaller Orin
// tier). Reuses the per-model efficiencies calibrated on the Orin AGX 64GB;
// memory-fit verdicts are exact, latency/energy are first-order predictions.
//
// Headline: only the 64GB Orin runs the 24-32B models at all — the paper's
// core argument for the 64GB device — and the Xavier generation is
// bandwidth-starved even for the models that fit.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "sim/device_catalog.h"
#include "sim/inference_sim.h"

using namespace orinsim;
using namespace orinsim::sim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Extension: model x device feasibility (weights + bs=32/sl=96 workload) ==\n");
  Table fit({"Device", "RAM (GB)", "Peak BW (GB/s)", "MS-Phi2", "Llama3", "Mistral-Base",
             "Deepseek-Qwen"});
  for (const auto& dev : device_catalog()) {
    const InferenceSim sim(dev.spec);
    fit.new_row()
        .add_cell(dev.spec.name)
        .add_number(dev.spec.total_ram_gb, 0)
        .add_number(dev.spec.peak_bw_gbps(dev.spec.mem_max_freq_mhz), 1);
    for (const auto& m : model_catalog()) {
      // Best (largest) precision that runs the default workload.
      std::string best = "-";
      for (DType dt : kAllDTypes) {
        SimRequest rq;
        rq.model_key = m.key;
        rq.dtype = dt;
        rq.power_mode = max_power_mode_for(dev.spec);
        rq.noise_sigma = 0.0;
        if (!sim.run(rq).oom) {
          best = dtype_name(dt);
          break;
        }
      }
      fit.add_cell(best);
    }
  }
  std::fputs((csv ? fit.to_csv() : fit.to_markdown()).c_str(), stdout);

  std::printf("\n== Llama-3.1-8B across devices (best precision that fits, bs=32, sl=96) ==\n");
  Table perf({"Device", "Precision", "Latency (s)", "Throughput (tok/s)", "Power (W)",
              "Energy (J)", "tok/s per $1000"});
  for (const auto& dev : device_catalog()) {
    const InferenceSim sim(dev.spec);
    SimRequest rq;
    rq.model_key = "llama3";
    rq.power_mode = max_power_mode_for(dev.spec);
    rq.noise_sigma = 0.0;
    SimResult result;
    std::string precision = "-";
    // Fastest precision that fits (FP32 fits more places than it makes
    // sense to serve from; FP16 wins whenever it fits, per the paper).
    for (DType dt : kAllDTypes) {
      rq.dtype = dt;
      const SimResult r = sim.run(rq);
      if (!r.oom && (precision == "-" || r.throughput_tps > result.throughput_tps)) {
        result = r;
        precision = dtype_name(dt);
      }
    }
    perf.new_row().add_cell(dev.spec.name).add_cell(precision);
    if (precision == "-") {
      perf.add_oom().add_oom().add_oom().add_oom().add_cell("-");
      continue;
    }
    perf.add_number(result.latency_s, 2)
        .add_number(result.throughput_tps, 1)
        .add_number(result.median_power_w, 1)
        .add_number(result.energy_j, 0)
        .add_number(result.throughput_tps / dev.price_usd * 1000.0, 1);
  }
  std::fputs((csv ? perf.to_csv() : perf.to_markdown()).c_str(), stdout);

  std::printf("\nReading: the 64GB Orin AGX is the only device in the family that hosts\n");
  std::printf("the 24-32B models (the paper's motivating claim); Xavier's LPDDR4x\n");
  std::printf("bandwidth roughly doubles decode latency at the same model size.\n");
  return 0;
}
