// Extension study: INT8 KV-cache quantization — the "memory-latency-energy
// trade-offs" investigation the paper's §3.3 closes by calling for.
//
// Two measurements:
//  1. Simulated device impact (Orin AGX): KV memory and long-context decode
//     latency with fp16 vs int8 caches across the paper's sequence sweep.
//  2. Functional accuracy impact: perplexity of a trained nano model with an
//     FP32 vs INT8 KV cache (real per-vector absmax quantization in the
//     attention path).
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "eval/perplexity.h"
#include "sim/inference_sim.h"
#include "tokenizer/tokenizer.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"
#include "workload/prompt_pool.h"

using namespace orinsim;
using namespace orinsim::sim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Extension: INT8 KV cache on the simulated Orin AGX (bs=32) ==\n");
  Table device_table({"Model", "Seq len", "KV GB fp16", "KV GB int8", "Latency fp16 (s)",
                      "Latency int8 (s)", "Latency delta"});
  const InferenceSim sim;
  for (const char* key : {"llama3", "mistral", "deepseek-qwen"}) {
    const ModelSpec& m = model_by_key(key);
    for (std::size_t total : {std::size_t{256}, std::size_t{1024}}) {
      SimRequest rq;
      rq.model_key = key;
      rq.dtype = m.default_dtype;
      rq.in_tokens = total / 4;
      rq.out_tokens = total - total / 4;
      rq.noise_sigma = 0.0;
      const SimResult f16 = sim.run(rq);
      rq.kv_cache_int8 = true;
      const SimResult i8 = sim.run(rq);
      device_table.new_row().add_cell(m.display).add_cell(std::to_string(total));
      if (f16.oom || i8.oom) {
        device_table.add_oom().add_oom().add_oom().add_oom().add_cell("-");
        continue;
      }
      device_table.add_number(f16.memory.kv_gb, 2)
          .add_number(i8.memory.kv_gb, 2)
          .add_number(f16.latency_s, 1)
          .add_number(i8.latency_s, 1)
          .add_cell(format_double((i8.latency_s / f16.latency_s - 1.0) * 100.0, 1) + "%");
    }
  }
  std::fputs((csv ? device_table.to_csv() : device_table.to_markdown()).c_str(), stdout);
  std::printf("\nINT8 KV halves the cache and *speeds up* long-context decode (the\n");
  std::printf("attention traffic is the growing term in the paper's section 3.2).\n");

  std::printf("\n== Functional accuracy: perplexity with FP32 vs INT8 KV cache ==\n");
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 800);
  const auto tokens = tokenizer.encode(corpus.text);
  auto master = MasterWeights::init_random(
      make_nano_config("llama3", tokenizer.vocab_size()), 777);
  train::TrainConfig tc;
  tc.epochs = 5;
  tc.max_tokens = 16000;
  train::train_readout(*master, tokens, tc);

  std::vector<TokenId> eval_slice(tokens.begin() + 8000, tokens.begin() + 13000);
  eval::PerplexityConfig pc;
  pc.window = 384;
  pc.stride = 192;
  pc.max_tokens = 500;

  Table acc({"Weights", "KV cache", "Perplexity", "KV bytes/token (nano)"});
  for (DType dt : {DType::kF16, DType::kI8}) {
    for (KVStorage kv : {KVStorage::kF32, KVStorage::kI8}) {
      Model model(master, dt, kv);
      const auto r = eval::evaluate_perplexity(model, eval_slice, pc);
      KVCache probe(model.config(), 1, 2, kv);
      acc.new_row()
          .add_cell(dtype_name(dt))
          .add_cell(kv == KVStorage::kF32 ? "FP32" : "INT8")
          .add_number(r.perplexity, 2)
          // bytes() covers 2 cache positions -> per-token cost.
          .add_cell(format_bytes(static_cast<double>(probe.bytes()) / 2.0));
    }
  }
  std::fputs((csv ? acc.to_csv() : acc.to_markdown()).c_str(), stdout);
  std::printf("\nINT8 KV costs a fraction of a perplexity point on top of weight\n");
  std::printf("quantization — cheap relative to the memory and latency it buys.\n");
  return 0;
}
