// Microbench for the parallel batched-decode hot path: an 8-lane greedy
// batch on the functional nano engine, decoded serially and then with
// Model::generate sharding lanes across a ThreadPool. Outputs must be
// bit-identical (the engine serializes sampling in lane order); only the
// wall-clock changes. The acceptance bar — >= 2x decode tokens/s at 8
// workers — assumes a multi-core host; on a single-core container the
// speedup column reports ~1x and the bit-identity check still runs.
//
// A second section compares serving policies on the same functional engine:
// the paper's static batching (batch runs to completion) against the
// continuous request-lifecycle engine over the paged KV cache, reporting
// measured tokens/s and the peak KV bytes each policy actually touches.
// Exits non-zero if the continuous run drops a request or its paged cache
// peaks above the static policy's dense reservation.
//
// A lane-batched section compares the per-lane forward_token loop against
// the forward_tokens multi-column step on one thread per dtype; int4 must
// reach >= 2x under --strict, and fp32/int8/int4 token streams must match
// the loop bit for bit.
//
// A speculative section serves the same engine with an INT8 self-draft
// (K=4): scalar streams must stay bit-identical to plain greedy, and under
// --strict the rounds must deliver >= 1.3x decode tok/s at >= 80%
// acceptance.
//
//   bench_decode_throughput [--lanes=8] [--workers=8] [--new-tokens=64]
//                           [--family=llama3] [--serving-requests=24] [--csv]
//                           [--strict]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/stats.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "core/units.h"
#include "model/transformer.h"
#include "serving/batch_scheduler.h"
#include "serving/engine.h"
#include "tensor/simd.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"

using namespace orinsim;

namespace {

struct RunStats {
  double decode_s = 0.0;
  double decode_tps = 0.0;
  std::vector<std::vector<TokenId>> outputs;
};

RunStats run_once(Model& model, const std::vector<std::vector<TokenId>>& prompts,
                  std::size_t new_tokens, ThreadPool* pool,
                  bool lane_batched = true) {
  Model::GenerateOptions options;
  options.pool = pool;
  options.lane_batched_decode = lane_batched;
  trace::ExecutionTimeline tl;
  options.timeline = &tl;
  Stopwatch watch;
  Model::GenerateResult r = model.generate(prompts, new_tokens, options);
  const double total_s = watch.elapsed_s();
  RunStats s;
  s.decode_s = tl.phase_time_s(trace::Phase::kDecode);
  if (s.decode_s <= 0.0) s.decode_s = total_s;  // degenerate tiny runs
  s.decode_tps = static_cast<double>(r.output_tokens) / s.decode_s;
  s.outputs = std::move(r.outputs);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::size_t lanes = static_cast<std::size_t>(args.get_int("lanes", 8));
  const std::size_t workers = static_cast<std::size_t>(args.get_int("workers", 8));
  const std::size_t new_tokens =
      static_cast<std::size_t>(args.get_int("new-tokens", 64));
  const std::string family = args.get("family", "llama3");

  const TransformerConfig cfg = make_nano_config(family, 512);
  auto master = MasterWeights::init_random(cfg, 7);

  std::vector<std::vector<TokenId>> prompts(lanes);
  for (std::size_t b = 0; b < lanes; ++b) {
    prompts[b].resize(8 + b % 4);
    for (std::size_t i = 0; i < prompts[b].size(); ++i) {
      prompts[b][i] = static_cast<TokenId>((b * 31 + i * 7) % cfg.vocab);
    }
  }

  std::printf("== Batched decode throughput: %s, %zu lanes, %zu new tokens ==\n",
              cfg.name.c_str(), lanes, new_tokens);
  Table table({"Dtype", "KV", "Serial tok/s", "Parallel tok/s", "Speedup",
               "Bit-identical"});
  bool all_identical = true;
  struct Case {
    DType dtype;
    KVStorage kv;
    const char* dtype_name;
    const char* kv_name;
  };
  const Case cases[] = {
      {DType::kF32, KVStorage::kF32, "fp32", "fp32"},
      {DType::kF16, KVStorage::kF32, "fp16", "fp32"},
      {DType::kI8, KVStorage::kI8, "int8", "int8"},
  };
  for (const Case& c : cases) {
    Model model(master, c.dtype, c.kv);
    run_once(model, prompts, new_tokens, nullptr);  // warm-up
    const RunStats serial = run_once(model, prompts, new_tokens, nullptr);
    ThreadPool pool(workers);
    const RunStats parallel = run_once(model, prompts, new_tokens, &pool);
    const bool identical = serial.outputs == parallel.outputs;
    all_identical = all_identical && identical;
    table.new_row()
        .add_cell(c.dtype_name)
        .add_cell(c.kv_name)
        .add_number(serial.decode_tps, 0)
        .add_number(parallel.decode_tps, 0)
        .add_cell(format_double(parallel.decode_tps / serial.decode_tps, 2) + "x")
        .add_cell(identical ? "yes" : "NO");
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);
  std::printf("\nParallel decode shards lanes across %zu workers with one workspace\n",
              workers);
  std::printf("per shard; sampling is replayed serially in lane order, so the token\n");
  std::printf("streams above must match the serial run exactly.\n");
  if (!all_identical) {
    std::printf("ERROR: parallel outputs diverged from serial outputs\n");
    return 1;
  }

  // -- Lane-batched decode: looped forward_token vs forward_tokens ----------
  // Same greedy 8-lane batch, single-threaded both ways: the speedup is pure
  // weight-stream amortization (each weight row read once per step instead of
  // once per lane). fp32/int8/int4 must be bit-identical between the paths at
  // the active kernel level; fp16 is exact only under ORINSIM_KERNELS=scalar
  // (its native multi-column path reorders the accumulation within FMA
  // tolerance), so its token streams are compared but not enforced.
  const bool strict = args.get_bool("strict", false);
  // A nano block (d_model 128) lives in L2, understating the weight-stream
  // amortization the batched path exists for; this section sizes the block up
  // until decode is genuinely weight-bound while staying quick to run.
  TransformerConfig batched_cfg = cfg;
  batched_cfg.name = cfg.name + "-wide";
  batched_cfg.d_model = 512;
  batched_cfg.d_ff = 1792;
  batched_cfg.validate();
  auto batched_master = MasterWeights::init_random(batched_cfg, 7);
  std::printf("\n== Lane-batched decode: %s, %zu lanes, looped vs batched (1 thread) ==\n",
              batched_cfg.name.c_str(), lanes);
  Table batched_table({"Dtype", "KV", "Looped tok/s", "Batched tok/s", "Speedup",
                       "Bit-identical"});
  double int4_batched_speedup = 0.0;
  bool batched_identity_ok = true;
  const Case batched_cases[] = {
      {DType::kF32, KVStorage::kF32, "fp32", "fp32"},
      {DType::kF16, KVStorage::kF32, "fp16", "fp32"},
      {DType::kI8, KVStorage::kI8, "int8", "int8"},
      {DType::kI4, KVStorage::kI8, "int4", "int8"},
  };
  for (const Case& c : batched_cases) {
    Model model(batched_master, c.dtype, c.kv);
    run_once(model, prompts, new_tokens, nullptr, false);  // warm-up
    // Best-of-3 per mode: the ratio of two ~0.1 s single runs is too noisy
    // for an exit-code bar; the fastest repeat of each mode is the stable
    // estimate of what the path can do. Identity is checked on every repeat.
    RunStats looped, batched;
    bool identical = true;
    const int reps = c.dtype == DType::kI4 ? 3 : 1;  // only int4 carries a bar
    for (int rep = 0; rep < reps; ++rep) {
      RunStats lo = run_once(model, prompts, new_tokens, nullptr, false);
      RunStats ba = run_once(model, prompts, new_tokens, nullptr, true);
      identical = identical && lo.outputs == ba.outputs;
      if (rep == 0 || lo.decode_tps > looped.decode_tps) looped = std::move(lo);
      if (rep == 0 || ba.decode_tps > batched.decode_tps) batched = std::move(ba);
    }
    const bool enforced = c.dtype != DType::kF16;
    if (enforced) batched_identity_ok = batched_identity_ok && identical;
    const double speedup = batched.decode_tps / looped.decode_tps;
    if (c.dtype == DType::kI4) int4_batched_speedup = speedup;
    batched_table.new_row()
        .add_cell(c.dtype_name)
        .add_cell(c.kv_name)
        .add_number(looped.decode_tps, 0)
        .add_number(batched.decode_tps, 0)
        .add_cell(format_double(speedup, 2) + "x")
        .add_cell(identical ? "yes" : (enforced ? "NO" : "no (fp16 tol)"));
  }
  std::fputs((csv ? batched_table.to_csv() : batched_table.to_markdown()).c_str(), stdout);
  std::printf("\nAcceptance bar: int4 batched decode >= 2x its per-lane loop at %zu\n",
              lanes);
  std::printf("lanes (enforced with --strict; advisory otherwise).\n");
  if (!batched_identity_ok) {
    std::printf("ERROR: batched decode outputs diverged from the per-lane loop\n");
    return 1;
  }
  if (strict && int4_batched_speedup < 2.0) {
    std::printf("ERROR: int4 batched decode speedup %.2fx below the 2x bar\n",
                int4_batched_speedup);
    return 1;
  }

  // -- Serving policies on the functional engine ---------------------------
  const auto serving_requests =
      static_cast<std::size_t>(args.get_int("serving-requests", 24));
  const workload::SeqConfig seq{24, 8, 16};
  const std::size_t max_lanes = 4;

  const workload::Corpus corpus = workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 400);
  const workload::PromptPool pool(corpus, tokenizer, 256);
  auto serving_master =
      MasterWeights::init_random(make_nano_config(family, tokenizer.vocab_size()), 7);

  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 200.0;  // flooded queue: policies differ most under load
  arrivals.total_requests = serving_requests;

  // Static: the paper's regime — each batch decodes to completion on the
  // real engine before the next launches. Its KV footprint is the dense
  // reservation for max_lanes full sequences.
  serving::FunctionalSession session(serving_master, DType::kF32, pool);
  serving::SchedulerConfig static_config;
  static_config.max_batch = max_lanes;
  static_config.seq = seq;
  const std::vector<double> arrival_times = arrivals.generate();
  const serving::ScheduleResult st = simulate_serving(session, static_config, arrival_times);
  const KVCache static_cache(serving_master->config, max_lanes, seq.total);
  const double static_kv_bytes = static_cast<double>(static_cache.reserved_bytes());
  const double static_tps =
      static_cast<double>(serving_requests * seq.total) / st.makespan_s;

  // Continuous: token-level admit/retire over the paged cache; peak KV bytes
  // are what the block pool actually handed out.
  serving::FunctionalEngineConfig cont_config;
  cont_config.arrivals = arrivals;
  cont_config.seq = seq;
  cont_config.max_concurrency = max_lanes;
  cont_config.block_tokens = 4;
  const serving::EngineResult ct =
      run_functional_continuous(serving_master, DType::kF32, pool, cont_config);

  std::printf("\n== Serving: static vs continuous, %zu Poisson requests, %zu lanes ==\n",
              serving_requests, max_lanes);
  Table serving_table({"Policy", "tok/s", "Mean lat (s)", "p95 lat (s)",
                       "Peak KV bytes"});
  serving_table.new_row()
      .add_cell("static")
      .add_number(static_tps, 0)
      .add_number(st.mean_latency_s(), 3)
      .add_number(st.p95_latency_s(), 3)
      .add_number(static_kv_bytes, 0);
  serving_table.new_row()
      .add_cell("continuous")
      .add_number(ct.throughput_tps(), 0)
      .add_number(ct.mean_latency_s(), 3)
      .add_number(ct.p95_latency_s(), 3)
      .add_number(static_cast<double>(ct.peak_kv_bytes), 0);
  std::fputs((csv ? serving_table.to_csv() : serving_table.to_markdown()).c_str(), stdout);
  std::printf("\nStatic reserves worst-case KV for every lane; the paged engine's peak\n");
  std::printf("is what its block pool actually handed out.\n");

  if (ct.latencies_s.size() != serving_requests) {
    std::printf("ERROR: continuous engine retired %zu of %zu requests\n",
                ct.latencies_s.size(), serving_requests);
    return 1;
  }
  if (static_cast<double>(ct.peak_kv_bytes) > static_kv_bytes) {
    std::printf("ERROR: paged peak KV (%zu B) exceeds the dense reservation (%.0f B)\n",
                ct.peak_kv_bytes, static_kv_bytes);
    return 1;
  }

  // -- Cross-request prefix cache ------------------------------------------
  // Chat traffic (Zipfian shared system prompts + per-user suffixes) on one
  // lane: every admission is its own prefill wave, so per-request TTFT
  // (admit -> end of its prefill step) isolates exactly the work a cache
  // hit skips. The 224-token system prefix is 7/8 of each prompt; hits
  // attach it ready-made and prefill only the 32-token suffix.
  {
    serving::FunctionalEngineConfig pc_cfg;
    pc_cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
    pc_cfg.arrivals.rate_rps = 1000.0;  // flooded: TTFT is pure prefill time
    pc_cfg.arrivals.total_requests = 16;
    pc_cfg.seq = workload::SeqConfig{288, 256, 32};
    pc_cfg.max_concurrency = 1;
    // Room for the active lane plus all four system-prompt chains: with the
    // lane-sized default pool the tree would thrash on every retirement.
    pc_cfg.kv_blocks = 128;
    pc_cfg.chat.system_prompts = 4;
    pc_cfg.chat.zipf_s = 1.1;
    pc_cfg.chat.system_tokens = 224;  // a multiple of lcm(block, chunk) = 32
    pc_cfg.chat.user_tokens = 32;

    const serving::EngineResult off =
        run_functional_continuous(serving_master, DType::kF32, pool, pc_cfg);
    pc_cfg.prefix_cache = true;
    const serving::EngineResult on =
        run_functional_continuous(serving_master, DType::kF32, pool, pc_cfg);

    // TTFT per request: first admission to the end of the prefill wave that
    // sampled its first token.
    const auto ttfts = [](const serving::EngineResult& r) {
      std::vector<double> out(r.requests.size(), 0.0);
      std::vector<bool> seen(r.requests.size(), false);
      for (const trace::RequestEvent& ev : r.timeline.request_events()) {
        if (ev.kind != trace::RequestEventKind::kAdmit || seen[ev.request_id]) continue;
        seen[ev.request_id] = true;
        for (const trace::StepEvent& step : r.timeline.events()) {
          if (step.phase == trace::Phase::kPrefill && step.t_start_s >= ev.t_s - 1e-12) {
            out[ev.request_id] = step.t_end_s() - ev.t_s;
            break;
          }
        }
      }
      return out;
    };
    const std::vector<double> ttft_on = ttfts(on);
    std::vector<bool> is_hit(on.requests.size(), false);
    for (const trace::PrefixCacheEvent& e : on.timeline.prefix_cache_events()) {
      if (e.kind == trace::PrefixCacheEventKind::kHit) is_hit[e.request_id] = true;
    }
    std::vector<double> hit_ttft, miss_ttft;
    for (std::size_t i = 0; i < ttft_on.size(); ++i) {
      (is_hit[i] ? hit_ttft : miss_ttft).push_back(ttft_on[i]);
    }

    const auto& pc = on.prefix_cache;
    std::printf("\n== Prefix cache: %zu chat requests, %zu shared system prompts ==\n",
                pc_cfg.arrivals.total_requests, pc_cfg.chat.system_prompts);
    Table pc_table({"Metric", "Value"});
    pc_table.new_row().add_cell("hit rate").add_cell(
        format_double(100.0 * pc.hit_rate(), 1) + " % (" + std::to_string(pc.hits) +
        "/" + std::to_string(pc.lookups) + ")");
    pc_table.new_row().add_cell("prefill tokens skipped").add_cell(
        std::to_string(pc.hit_tokens));
    pc_table.new_row().add_cell("KV bytes not recomputed").add_cell(
        std::to_string(pc.bytes_saved));
    pc_table.new_row().add_cell("blocks inserted / evicted").add_cell(
        std::to_string(pc.inserted_blocks) + " / " + std::to_string(pc.evicted_blocks));
    pc_table.new_row().add_cell("TTFT p50 hit / miss (ms)").add_cell(
        format_double(1e3 * percentile(hit_ttft, 50.0), 3) + " / " +
        format_double(1e3 * percentile(miss_ttft, 50.0), 3));
    pc_table.new_row().add_cell("TTFT p99 hit / miss (ms)").add_cell(
        format_double(1e3 * percentile(hit_ttft, 99.0), 3) + " / " +
        format_double(1e3 * percentile(miss_ttft, 99.0), 3));
    std::fputs((csv ? pc_table.to_csv() : pc_table.to_markdown()).c_str(), stdout);
    const double speedup = percentile(hit_ttft, 50.0) > 0.0
                               ? percentile(miss_ttft, 50.0) / percentile(hit_ttft, 50.0)
                               : 0.0;
    std::printf("\nTTFT on a hit covers only the per-user suffix prefill: %.1fx below\n",
                speedup);
    std::printf("a cold prompt on this run (acceptance bar: >= 5x at 7/8 reuse).\n");

    // Invariants: the cache must not change one token, must conserve its
    // counters, and must deliver the TTFT relief it exists for.
    bool identical = on.requests.size() == off.requests.size();
    for (std::size_t i = 0; identical && i < on.requests.size(); ++i) {
      identical = on.requests[i].output == off.requests[i].output;
    }
    if (!identical) {
      std::printf("ERROR: prefix cache changed the served token streams\n");
      return 1;
    }
    if (pc.hits == 0 || pc.hits + pc.misses != pc.lookups ||
        pc.lookups != pc_cfg.arrivals.total_requests) {
      std::printf("ERROR: prefix-cache counters do not conserve (%zu + %zu != %zu)\n",
                  pc.hits, pc.misses, pc.lookups);
      return 1;
    }
    if (speedup < 5.0) {
      std::printf("ERROR: cache-hit TTFT speedup %.2fx is below the 5x bar\n", speedup);
      return 1;
    }
  }

  // -- Speculative serving through the continuous engine -------------------
  // The same request-lifecycle engine with a self-draft (the F16 target's
  // own master quantized to INT8) proposing 4 tokens per round. Two checks:
  // under scalar kernels the served streams must match plain greedy bit for
  // bit (the speculative contract), and at the active kernel level the
  // draft/verify rounds must actually buy decode throughput — the bar is
  // >= 1.3x served decode tok/s at >= 80% acceptance (enforced with
  // --strict; advisory otherwise).
  {
    // Trained readout sharpens the logits so the quantized self-draft
    // agrees with its own F16 master often enough to clear the acceptance
    // bar (the bench_ext_speculative recipe).
    auto spec_master =
        MasterWeights::init_random(make_nano_config(family, tokenizer.vocab_size()), 55);
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.max_tokens = 10000;
    train::train_readout(*spec_master, tokenizer.encode(corpus.text), tc);

    serving::FunctionalEngineConfig sp_cfg;
    sp_cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
    sp_cfg.arrivals.rate_rps = 1000.0;  // flooded: pure decode throughput
    sp_cfg.arrivals.total_requests = 12;
    sp_cfg.seq = workload::SeqConfig{96, 32, 64};
    sp_cfg.max_concurrency = 2;

    // Identity first, under the reference kernels: chunked verification is
    // bit-identical to the token loop only at the scalar level (the same
    // determinism contract chunked prefill pins).
    const simd::Level active = simd::active_level();
    simd::set_level(simd::Level::kScalar);
    serving::FunctionalEngineConfig id_cfg = sp_cfg;
    id_cfg.arrivals.total_requests = 4;
    id_cfg.seq = workload::SeqConfig{48, 16, 32};
    const serving::EngineResult id_plain =
        run_functional_continuous(spec_master, DType::kF16, pool, id_cfg);
    id_cfg.speculation.enabled = true;
    id_cfg.speculation.draft_tokens = 4;
    id_cfg.speculation.draft_dtype = DType::kI8;
    const serving::EngineResult id_spec =
        run_functional_continuous(spec_master, DType::kF16, pool, id_cfg);
    simd::set_level(active);
    bool spec_identical = id_spec.requests.size() == id_plain.requests.size();
    for (std::size_t i = 0; spec_identical && i < id_spec.requests.size(); ++i) {
      spec_identical = id_spec.requests[i].output == id_plain.requests[i].output;
    }

    // Throughput at the active kernel level. Decode tok/s counts generated
    // tokens over the time the engine spent generating them (kDecode for
    // plain; kDraft + kVerify + leftover kDecode for speculative).
    const auto decode_tps = [](const serving::EngineResult& r) {
      double s = r.timeline.phase_time_s(trace::Phase::kDecode) +
                 r.timeline.phase_time_s(trace::Phase::kDraft) +
                 r.timeline.phase_time_s(trace::Phase::kVerify);
      std::size_t tokens = 0;
      for (const serving::Request& rq : r.requests) tokens += rq.output.size();
      return s > 0.0 ? static_cast<double>(tokens) / s : 0.0;
    };
    const serving::EngineResult sp_plain =
        run_functional_continuous(spec_master, DType::kF16, pool, sp_cfg);
    sp_cfg.speculation.enabled = true;
    sp_cfg.speculation.draft_tokens = 4;
    sp_cfg.speculation.draft_dtype = DType::kI8;
    const serving::EngineResult sp_spec =
        run_functional_continuous(spec_master, DType::kF16, pool, sp_cfg);

    const double uplift = decode_tps(sp_spec) / decode_tps(sp_plain);
    const double acceptance = sp_spec.speculation.acceptance_rate();
    std::printf("\n== Speculative serving: fp16 target, int8 self-draft, K=4 ==\n");
    Table sp_table({"Engine", "Decode tok/s", "Target passes", "Acceptance",
                    "Tokens/round"});
    sp_table.new_row()
        .add_cell("plain greedy")
        .add_number(decode_tps(sp_plain), 0)
        .add_cell(std::to_string(sp_plain.decode_steps))
        .add_cell("-")
        .add_cell("1.00");
    sp_table.new_row()
        .add_cell("speculative")
        .add_number(decode_tps(sp_spec), 0)
        .add_cell(std::to_string(sp_spec.decode_steps))
        .add_cell(format_double(100.0 * acceptance, 1) + " %")
        .add_cell(format_double(sp_spec.speculation.tokens_per_round(), 2));
    std::fputs((csv ? sp_table.to_csv() : sp_table.to_markdown()).c_str(), stdout);
    std::printf("\nspeculative serving: %.2fx decode tok/s, scalar streams %s\n",
                uplift, spec_identical ? "bit-identical" : "DIVERGED");
    std::printf("(acceptance bar: >= 1.3x at >= 80%% acceptance with --strict).\n");
    if (!spec_identical) {
      std::printf("ERROR: speculative serving changed the scalar token streams\n");
      return 1;
    }
    if (strict && (uplift < 1.3 || acceptance < 0.8)) {
      std::printf("ERROR: speculative uplift %.2fx / acceptance %.1f%% below the "
                  "1.3x / 80%% bar\n",
                  uplift, 100.0 * acceptance);
      return 1;
    }
  }

  // -- Served power: energy attribution + governor -------------------------
  // The same continuous run with the calibrated power proxy: every measured
  // step carries the PowerModel estimate for the paper-scale model, and the
  // per-request energy split must conserve the timeline total.
  cont_config.power_proxy_model = "llama3";
  const serving::EngineResult pw =
      run_functional_continuous(serving_master, DType::kF32, pool, cont_config);
  double attributed_j = 0.0;
  for (const serving::RequestMetrics& m : pw.request_metrics) attributed_j += m.energy_j;

  std::printf("\n== Served power: functional engine + llama3 power proxy ==\n");
  Table power_table({"Engine", "Energy (J)", "J/request", "J/token", "Mean W"});
  power_table.new_row()
      .add_cell("continuous+proxy")
      .add_number(pw.energy_j, 3)
      .add_number(pw.energy_per_request_j(), 3)
      .add_number(pw.energy_per_token_j(), 4)
      .add_number(pw.makespan_s > 0.0 ? pw.energy_j / pw.makespan_s : 0.0, 1);
  std::fputs((csv ? power_table.to_csv() : power_table.to_markdown()).c_str(), stdout);
  std::printf("\nPer-request attribution splits each step's energy across the requests\n");
  std::printf("active in it; the sum must reproduce the timeline total exactly.\n");
  const double conservation_err = std::abs(attributed_j - pw.energy_j);
  std::printf("conservation |sum(requests) - total| = %.3g J\n", conservation_err);
  if (!(pw.energy_j > 0.0) || conservation_err > 1e-9) {
    std::printf("ERROR: per-request energy (%.12f J) does not conserve total (%.12f J)\n",
                attributed_j, pw.energy_j);
    return 1;
  }

  // Deterministic governor demo on the simulated backend: cap the board
  // between mode-A and MaxN decode power and require at least one step-down
  // plus cap compliance afterwards.
  serving::SimTokenBackend::Config sim_bc;
  sim_bc.max_concurrency = 8;
  {
    const sim::InferenceSim sim;
    const sim::ModelSpec& m = sim::model_by_key(sim_bc.model_key);
    const sim::StepBreakdown hot = sim.roofline().decode_step(
        m, sim_bc.dtype, 8, static_cast<double>(sim_bc.seq.input), sim::power_mode_maxn());
    const double p_maxn =
        sim.power_model().decode_power(m, sim_bc.dtype, hot, sim::power_mode_maxn()).total_w();
    const sim::PowerMode mode_a = sim::power_mode_by_name("A");
    const sim::StepBreakdown cool = sim.roofline().decode_step(
        m, sim_bc.dtype, 8, static_cast<double>(sim_bc.seq.input + sim_bc.seq.output), mode_a);
    const double p_a = sim.power_model().decode_power(m, sim_bc.dtype, cool, mode_a).total_w();

    serving::GovernorConfig gov;
    gov.power_cap_w = 0.5 * (p_a + p_maxn);
    serving::SimTokenBackend sim_backend(sim_bc);
    workload::ArrivalConfig flood;
    flood.kind = workload::ArrivalKind::kPoisson;
    flood.rate_rps = 1000.0;
    flood.total_requests = 8;
    std::vector<serving::Request> sim_requests;
    for (double t : flood.generate()) {
      serving::Request r;
      r.id = sim_requests.size();
      r.arrival_s = t;
      r.prompt_tokens = sim_bc.seq.input;
      r.max_new_tokens = sim_bc.seq.output;
      sim_requests.push_back(r);
    }
    const serving::EngineResult gv =
        serving::ContinuousPolicy(sim_backend, gov).run(std::move(sim_requests));
    double worst_after = 0.0;
    const double last_action_t = gv.timeline.governor_events().empty()
                                     ? 0.0
                                     : gv.timeline.governor_events().back().t_s;
    for (const trace::StepEvent& e : gv.timeline.events()) {
      if (e.has_power() && e.t_start_s >= last_action_t) {
        worst_after = std::max(worst_after, e.power_w);
      }
    }
    std::printf("\ngovernor: cap %.1f W -> %zu step-down(s), worst post-action step %.1f W\n",
                gov.power_cap_w, gv.governor_step_downs, worst_after);
    if (gv.governor_step_downs < 1 || worst_after > gov.power_cap_w + 1e-9) {
      std::printf("ERROR: governor failed to hold the %.1f W cap\n", gov.power_cap_w);
      return 1;
    }
  }
  return 0;
}
