// Microbench for the parallel batched-decode hot path: an 8-lane greedy
// batch on the functional nano engine, decoded serially and then with
// Model::generate sharding lanes across a ThreadPool. Outputs must be
// bit-identical (the engine serializes sampling in lane order); only the
// wall-clock changes. The acceptance bar — >= 2x decode tokens/s at 8
// workers — assumes a multi-core host; on a single-core container the
// speedup column reports ~1x and the bit-identity check still runs.
//
//   bench_decode_throughput [--lanes=8] [--workers=8] [--new-tokens=64]
//                           [--family=llama3] [--csv]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "core/thread_pool.h"
#include "core/units.h"
#include "model/transformer.h"

using namespace orinsim;

namespace {

struct RunStats {
  double decode_s = 0.0;
  double decode_tps = 0.0;
  std::vector<std::vector<TokenId>> outputs;
};

RunStats run_once(Model& model, const std::vector<std::vector<TokenId>>& prompts,
                  std::size_t new_tokens, ThreadPool* pool) {
  Model::GenerateOptions options;
  options.pool = pool;
  trace::ExecutionTimeline tl;
  options.timeline = &tl;
  Stopwatch watch;
  Model::GenerateResult r = model.generate(prompts, new_tokens, options);
  const double total_s = watch.elapsed_s();
  RunStats s;
  s.decode_s = tl.phase_time_s(trace::Phase::kDecode);
  if (s.decode_s <= 0.0) s.decode_s = total_s;  // degenerate tiny runs
  s.decode_tps = static_cast<double>(r.output_tokens) / s.decode_s;
  s.outputs = std::move(r.outputs);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const std::size_t lanes = static_cast<std::size_t>(args.get_int("lanes", 8));
  const std::size_t workers = static_cast<std::size_t>(args.get_int("workers", 8));
  const std::size_t new_tokens =
      static_cast<std::size_t>(args.get_int("new-tokens", 64));
  const std::string family = args.get("family", "llama3");

  const TransformerConfig cfg = make_nano_config(family, 512);
  auto master = MasterWeights::init_random(cfg, 7);

  std::vector<std::vector<TokenId>> prompts(lanes);
  for (std::size_t b = 0; b < lanes; ++b) {
    prompts[b].resize(8 + b % 4);
    for (std::size_t i = 0; i < prompts[b].size(); ++i) {
      prompts[b][i] = static_cast<TokenId>((b * 31 + i * 7) % cfg.vocab);
    }
  }

  std::printf("== Batched decode throughput: %s, %zu lanes, %zu new tokens ==\n",
              cfg.name.c_str(), lanes, new_tokens);
  Table table({"Dtype", "KV", "Serial tok/s", "Parallel tok/s", "Speedup",
               "Bit-identical"});
  bool all_identical = true;
  struct Case {
    DType dtype;
    KVStorage kv;
    const char* dtype_name;
    const char* kv_name;
  };
  const Case cases[] = {
      {DType::kF32, KVStorage::kF32, "fp32", "fp32"},
      {DType::kF16, KVStorage::kF32, "fp16", "fp32"},
      {DType::kI8, KVStorage::kI8, "int8", "int8"},
  };
  for (const Case& c : cases) {
    Model model(master, c.dtype, c.kv);
    run_once(model, prompts, new_tokens, nullptr);  // warm-up
    const RunStats serial = run_once(model, prompts, new_tokens, nullptr);
    ThreadPool pool(workers);
    const RunStats parallel = run_once(model, prompts, new_tokens, &pool);
    const bool identical = serial.outputs == parallel.outputs;
    all_identical = all_identical && identical;
    table.new_row()
        .add_cell(c.dtype_name)
        .add_cell(c.kv_name)
        .add_number(serial.decode_tps, 0)
        .add_number(parallel.decode_tps, 0)
        .add_cell(format_double(parallel.decode_tps / serial.decode_tps, 2) + "x")
        .add_cell(identical ? "yes" : "NO");
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);
  std::printf("\nParallel decode shards lanes across %zu workers with one workspace\n",
              workers);
  std::printf("per shard; sampling is replayed serially in lane order, so the token\n");
  std::printf("streams above must match the serial run exactly.\n");
  if (!all_identical) {
    std::printf("ERROR: parallel outputs diverged from serial outputs\n");
    return 1;
  }
  return 0;
}
