// Fig 1 / Fig 6 / Fig 7 and Tables 4 / 5: batch-size sweep (bs = 1..128,
// sl = 96 = 32+64, MaxN, FP16 except DeepSeek-Qwen at INT8).
//
//   --dataset=wikitext2 (default, Table 4) | longbench (Table 5) | both
//   --metric=all | ram | latency | throughput
//   --csv
//   --trace-out=BASE   write BASE.jsonl + BASE.trace.json for the paper's
//                      headline cell (llama3, FP16, bs=32)
#include <cstdio>

#include "core/cli.h"
#include "harness/experiments.h"
#include "harness/shape_checks.h"
#include "serving/session.h"
#include "trace/export.h"

using namespace orinsim;
using namespace orinsim::harness;

namespace {

void run_dataset(workload::Dataset dataset, const std::string& metric, bool csv) {
  std::printf("== Batch-size sweep, %s (paper %s) ==\n",
              workload::dataset_name(dataset).c_str(),
              dataset == workload::Dataset::kWikiText2 ? "Fig 1/6, Table 4"
                                                       : "Fig 7, Table 5");
  const BatchSweep sweep = run_batch_sweep(dataset);
  auto print = [&](Metric m) {
    std::printf("\n-- %s (sim / paper) --\n", metric_name(m).c_str());
    const Table t = batch_sweep_comparison(sweep, m);
    std::fputs((csv ? t.to_csv() : t.to_markdown()).c_str(), stdout);
  };
  if (metric == "all" || metric == "ram") print(Metric::kRam);
  if (metric == "all" || metric == "latency") print(Metric::kLatency);
  if (metric == "all" || metric == "throughput") print(Metric::kThroughput);

  std::printf("\n-- shape checks (paper section 3.1) --\n");
  std::fputs(format_checks(check_batch_sweep(sweep)).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string dataset = args.get("dataset", "wikitext2");
  const std::string metric = args.get("metric", "all");
  const bool csv = args.get_bool("csv", false);

  if (dataset == "both") {
    run_dataset(workload::Dataset::kWikiText2, metric, csv);
    std::printf("\n");
    run_dataset(workload::Dataset::kLongBench, metric, csv);
  } else {
    run_dataset(workload::parse_dataset(dataset), metric, csv);
  }

  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) {
    serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
    serving::BatchRequest rq;
    rq.batch = 32;
    trace::ExecutionTimeline timeline;
    session.run(rq, &timeline);
    trace::write_jsonl(timeline, trace_out + ".jsonl");
    trace::write_chrome_trace(timeline, trace_out + ".trace.json", "llama3-fp16-b32");
    std::printf("\nwrote %s.jsonl and %s.trace.json\n", trace_out.c_str(),
                trace_out.c_str());
  }
  return 0;
}
