// Table 3: perplexity per precision on both corpora, measured on the REAL
// functional engine (nano-scale versions of the four paper architectures,
// readout-trained on the synthetic corpora, evaluated with the paper's
// sliding-window protocol).
//
// Absolute perplexities differ from the paper's (nano models, synthetic
// text); what reproduces is the *shape*: FP32 == FP16, a marginal INT8
// degradation, a sharper INT4 degradation, and lower perplexities on
// LongBench than WikiText2.
//
//   --quick        smaller training budget (default when run with no flags
//                  alongside the other benches; ~1 minute)
//   --full         paper-protocol window 1024 / stride 512 and more training
//   --families=phi2,llama3,...   subset of model families
#include <cstdio>

#include <cmath>
#include <map>

#include "core/cli.h"
#include "core/string_util.h"
#include "core/table.h"
#include "core/units.h"
#include "eval/perplexity.h"
#include "sim/paper_reference.h"
#include "tokenizer/tokenizer.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"

using namespace orinsim;

namespace {

struct FamilyResult {
  std::string family;
  std::map<DType, double> ppl;  // NaN for not-run
};

FamilyResult run_family(const std::string& family, const workload::Corpus& corpus,
                        bool full) {
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 800);
  const auto tokens = tokenizer.encode(corpus.text);

  auto config = make_nano_config(family, tokenizer.vocab_size());
  auto master = MasterWeights::init_random(config, 4242);

  train::TrainConfig tc;
  tc.epochs = full ? 8 : 5;
  tc.max_tokens = full ? 40000 : 16000;
  const auto report = train::train_readout(*master, tokens, tc);
  std::fprintf(stderr, "  [%s] trained readout: loss %.3f -> %.3f over %zu tokens\n",
               family.c_str(), report.initial_loss, report.final_loss,
               report.train_tokens);

  eval::PerplexityConfig pc;
  pc.window = full ? 1024 : 384;
  pc.stride = pc.window / 2;  // the paper's window/stride ratio
  pc.max_tokens = full ? 1500 : 500;
  // Evaluate on a slice past the training prefix start (in-sample, like the
  // paper's pretrained models on public text).
  const std::size_t eval_start = std::min<std::size_t>(8000, tokens.size() / 3);
  std::vector<TokenId> eval_slice(tokens.begin() + eval_start,
                                  tokens.begin() + eval_start + 5000);

  FamilyResult result;
  result.family = family;
  for (DType dt : kAllDTypes) {
    // Honour the paper's OOM pattern: precisions the device could not hold
    // are not evaluated (Mistral FP32; DeepSeek FP32/FP16).
    const bool paper_oom =
        (family == "mistral" && dt == DType::kF32) ||
        (family == "deepseek-qwen" && (dt == DType::kF32 || dt == DType::kF16));
    if (paper_oom) {
      result.ppl[dt] = std::nan("");
      continue;
    }
    Model model(master, dt);
    result.ppl[dt] = eval::evaluate_perplexity(model, eval_slice, pc).perplexity;
  }
  return result;
}

double paper_ppl(const std::string& family, workload::Dataset dataset, std::size_t d) {
  for (const auto& row : sim::table3_perplexity()) {
    if (row.model_key == family) {
      return dataset == workload::Dataset::kWikiText2 ? row.wikitext2[d] : row.longbench[d];
    }
  }
  return std::nan("");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool full = args.get_bool("full", false);
  std::vector<std::string> families = {"phi2", "llama3", "mistral", "deepseek-qwen"};
  if (args.has("families")) families = split(args.get("families", ""), ',');

  std::printf("== Table 3: perplexity vs precision (functional engine, %s mode) ==\n",
              full ? "full" : "quick");
  std::printf("   protocol: overlapping windows, stride = window/2, exp(mean NLL)\n");
  std::printf("   cells: measured (paper) — absolute scales differ by design; the\n");
  std::printf("   FP32=FP16 <= INT8 < INT4 ordering is the reproduced result\n\n");

  for (auto dataset : {workload::Dataset::kWikiText2, workload::Dataset::kLongBench}) {
    const workload::Corpus corpus =
        workload::generate_corpus(dataset == workload::Dataset::kWikiText2
                                      ? workload::CorpusSpec::wikitext2()
                                      : workload::CorpusSpec::longbench());
    std::printf("-- %s --\n", workload::dataset_name(dataset).c_str());
    Table table({"Model", "FP32", "FP16", "INT8", "INT4"});
    for (const auto& family : families) {
      const FamilyResult r = run_family(family, corpus, full);
      table.new_row().add_cell(family);
      std::size_t d = 0;
      for (DType dt : kAllDTypes) {
        const double paper = paper_ppl(family, dataset, d++);
        if (std::isnan(r.ppl.at(dt))) {
          table.add_cell("OOM (OOM)");
        } else {
          table.add_cell(format_double(r.ppl.at(dt), 2) + " (" +
                         (std::isnan(paper) ? std::string("OOM")
                                            : format_double(paper, 2)) +
                         ")");
        }
      }
    }
    std::fputs(table.to_markdown().c_str(), stdout);
    std::printf("\n");
  }
  return 0;
}
