// Extension study: thermal throttling under sustained LLM load.
//
// The paper's longest batches run for tens of minutes (DeepSeek sl=1024:
// ~28 min); whether the device sustains MaxN depends on cooling. This bench
// replays the paper's long-sequence workloads through the RC thermal model
// under the devkit fan vs a fanless enclosure, and shows how much latency
// thermal management adds to the tables — and how the paper's PM-A (lower
// GPU clock) doubles as a no-throttle thermal policy.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "sim/thermal.h"

using namespace orinsim;
using namespace orinsim::sim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Extension: thermal throttling on sustained decode ==\n");
  Table table({"Workload", "Cooling", "Ideal (s)", "Thermal (s)", "Slowdown",
               "Peak temp (C)", "Throttled decode time"});

  struct Case {
    const char* label;
    SimRequest request;
  };
  std::vector<Case> cases;
  {
    SimRequest rq;
    rq.model_key = "llama3";
    cases.push_back({"Llama3 FP16 bs=32 sl=96", rq});
  }
  {
    SimRequest rq;
    rq.model_key = "llama3";
    rq.in_tokens = 256;
    rq.out_tokens = 768;
    cases.push_back({"Llama3 FP16 bs=32 sl=1024", rq});
  }
  {
    SimRequest rq;
    rq.model_key = "deepseek-qwen";
    rq.dtype = DType::kI8;
    rq.in_tokens = 256;
    rq.out_tokens = 768;
    cases.push_back({"DeepQ INT8 bs=32 sl=1024", rq});
  }
  {
    SimRequest rq;
    rq.model_key = "llama3";
    rq.dtype = DType::kI4;
    cases.push_back({"Llama3 INT4 bs=32 sl=96 (100% GPU)", rq});
  }

  for (const auto& c : cases) {
    for (bool fanless : {false, true}) {
      const ThermalParams params = fanless ? ThermalParams::fanless_enclosure()
                                           : ThermalParams::devkit_fan();
      const ThermalRunResult r = simulate_with_thermals(c.request, params);
      table.new_row()
          .add_cell(c.label)
          .add_cell(fanless ? "fanless" : "devkit fan")
          .add_number(r.ideal_latency_s, 1)
          .add_number(r.latency_s, 1)
          .add_cell("x" + format_double(r.latency_s / r.ideal_latency_s, 2))
          .add_number(r.peak_temp_c, 1)
          .add_cell(format_double(r.throttled_fraction * 100.0, 0) + "%");
    }
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);

  std::printf("\n== PM-A as a thermal policy (Llama3 sl=1024, fanless) ==\n");
  Table pm_table({"Power mode", "Thermal latency (s)", "Peak temp (C)",
                  "Throttled", "Energy (J)"});
  for (const char* mode : {"MaxN", "A", "B"}) {
    SimRequest rq;
    rq.model_key = "llama3";
    rq.in_tokens = 256;
    rq.out_tokens = 768;
    rq.power_mode = power_mode_by_name(mode);
    const ThermalRunResult r =
        simulate_with_thermals(rq, ThermalParams::fanless_enclosure());
    pm_table.new_row()
        .add_cell(mode)
        .add_number(r.latency_s, 1)
        .add_number(r.peak_temp_c, 1)
        .add_cell(format_double(r.throttled_fraction * 100.0, 0) + "%")
        .add_number(r.energy_j, 0);
  }
  std::fputs((csv ? pm_table.to_csv() : pm_table.to_markdown()).c_str(), stdout);
  std::printf("\nReading: with a fan the paper's MaxN numbers are sustainable. In a\n");
  std::printf("fanless enclosure the long-sequence rows ride the thermal limit for\n");
  std::printf("most of the decode — yet lose only ~1%% latency, because memory-bound\n");
  std::printf("decode barely feels a GPU-clock throttle (the same coupling that makes\n");
  std::printf("PM-A cheap in Fig 5). The interesting cost is the sustained 85C+\n");
  std::printf("junction; a PM-A cap holds 75C at a 12%% latency premium and 18%% less\n");
  std::printf("energy.\n");
  return 0;
}
