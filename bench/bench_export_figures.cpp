// Writes gnuplot-ready data files for every paper figure into ./figure_data/
// (override with --dir=...). Run after any simulator change to refresh the
// plotting inputs.
#include <cstdio>

#include "core/cli.h"
#include "harness/figure_export.h"

int main(int argc, char** argv) {
  const orinsim::CliArgs args(argc, argv);
  const std::string dir = args.get("dir", "figure_data");
  const auto result = orinsim::harness::export_figure_data(dir);
  std::printf("wrote %zu files to %s/\n", result.files.size(), result.directory.c_str());
  for (const auto& f : result.files) std::printf("  %s\n", f.c_str());
  return 0;
}
