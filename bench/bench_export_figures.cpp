// Writes gnuplot-ready data files for every paper figure into ./figure_data/
// (override with --dir=...). Run after any simulator change to refresh the
// plotting inputs.
//
// --with-trace additionally exports the execution timeline of the paper's
// headline cell (llama3, FP16, bs=32) as <dir>/llama3_fp16_b32.jsonl and
// .trace.json via the trace spine.
#include <cstdio>

#include "core/cli.h"
#include "harness/figure_export.h"
#include "serving/session.h"

int main(int argc, char** argv) {
  const orinsim::CliArgs args(argc, argv);
  const std::string dir = args.get("dir", "figure_data");
  const auto result = orinsim::harness::export_figure_data(dir);
  std::printf("wrote %zu files to %s/\n", result.files.size(), result.directory.c_str());
  for (const auto& f : result.files) std::printf("  %s\n", f.c_str());

  if (args.get_bool("with-trace", false)) {
    using namespace orinsim;
    serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
    trace::ExecutionTimeline timeline;
    session.run(serving::BatchRequest{}, &timeline);
    const auto traces =
        harness::export_timeline_artifacts(timeline, dir, "llama3_fp16_b32");
    for (const auto& f : traces.files) std::printf("  %s\n", f.c_str());
  }
  return 0;
}
