// Microbench for chunked GEMM prefill: prompt tokens/s of the batched
// multi-token prefill path against the token-at-a-time path, at both kernel
// dispatch levels (scalar reference vs AVX2/FMA native).
//
// The headline column compares chunked prefill at the best available level
// against token-at-a-time under the scalar level — i.e. the full PR path
// against the seed path. Acceptance bar: >= 3x prompt tokens/s for FP32 and
// INT8 on a >= 256-token prompt. The scalar chunked run must be bit-identical
// to the scalar token-at-a-time run (the determinism contract); the bench
// exits 1 if it is not.
//
// `--strict` additionally enforces the INT4 bar by exit code: packed-int4
// chunked prefill at the native level must reach >= 6x the seed's scalar
// token-at-a-time path (the nibble-unpack microkernel acceptance bar).
//
//   bench_prefill_throughput [--prompt=256] [--chunk=32] [--repeats=2] [--csv]
//                            [--strict]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/stopwatch.h"
#include "core/table.h"
#include "core/units.h"
#include "model/transformer.h"
#include "tensor/simd.h"

using namespace orinsim;

namespace {

// Big enough that prefill is matmul-dominated (the paper's compute-bound
// prefill regime), small enough to run in seconds at the scalar level.
TransformerConfig bench_config() {
  TransformerConfig c;
  c.name = "prefill-bench";
  c.vocab = 512;
  c.d_model = 320;
  c.n_layers = 4;
  c.n_heads = 8;
  c.n_kv_heads = 2;
  c.d_ff = 1280;
  c.max_seq = 512;
  c.validate();
  return c;
}

struct RunResult {
  double tps = 0.0;
  std::vector<float> hidden;
};

// Prefill `prompt` into a fresh cache; best-of-`repeats` tokens/s.
RunResult run_prefill(Model& model, const std::vector<TokenId>& prompt,
                      std::size_t chunk, simd::Level level, std::size_t repeats) {
  simd::set_level(level);
  model.set_prefill_chunk(chunk);
  RunResult r;
  r.hidden.resize(model.config().d_model);
  double best_s = 0.0;
  for (std::size_t i = 0; i < repeats; ++i) {
    KVCache cache(model.config(), 1, prompt.size());
    Stopwatch watch;
    model.prefill(prompt, 0, cache, r.hidden);
    const double s = watch.elapsed_s();
    if (i == 0 || s < best_s) best_s = s;
  }
  r.tps = static_cast<double>(prompt.size()) / best_s;
  return r;
}

bool bitwise_equal(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  const bool strict = args.get_bool("strict", false);
  const std::size_t prompt_len = static_cast<std::size_t>(args.get_int("prompt", 256));
  const std::size_t chunk = static_cast<std::size_t>(args.get_int("chunk", 32));
  const std::size_t repeats = static_cast<std::size_t>(args.get_int("repeats", 2));

  const simd::Level entry_level = simd::active_level();
  const bool have_native = simd::native_available();
  const TransformerConfig cfg = bench_config();
  auto master = MasterWeights::init_random(cfg, 7);

  std::vector<TokenId> prompt(prompt_len);
  for (std::size_t i = 0; i < prompt_len; ++i) {
    prompt[i] = static_cast<TokenId>((i * 17 + 5) % cfg.vocab);
  }

  std::printf("== Chunked prefill throughput: %s, %zu-token prompt, chunk %zu ==\n",
              cfg.name.c_str(), prompt_len, chunk);
  std::printf("native kernels: %s\n\n", have_native ? "avx2+fma" : "unavailable");

  Table table({"Dtype", "Token@scalar t/s", "Chunk@scalar t/s", "Token@native t/s",
               "Chunk@native t/s", "Headline", "Bit-identical"});
  bool all_identical = true;
  bool bar_met = true;
  double int4_headline = 0.0;
  struct Case {
    DType dtype;
    const char* name;
    bool acceptance;  // FP32 and INT8 carry the >= 3x bar
  };
  const Case cases[] = {
      {DType::kF32, "fp32", true},
      {DType::kF16, "fp16", false},
      {DType::kI8, "int8", true},
      {DType::kI4, "int4", false},
  };
  for (const Case& c : cases) {
    Model model(master, c.dtype);
    // Warm-up: touch every weight once so first-run page faults don't skew.
    run_prefill(model, std::vector<TokenId>(prompt.begin(), prompt.begin() + 32),
                chunk, simd::Level::kScalar, 1);

    const RunResult token_scalar =
        run_prefill(model, prompt, 1, simd::Level::kScalar, repeats);
    const RunResult chunk_scalar =
        run_prefill(model, prompt, chunk, simd::Level::kScalar, repeats);
    RunResult token_native, chunk_native;
    if (have_native) {
      token_native = run_prefill(model, prompt, 1, simd::Level::kNative, repeats);
      chunk_native = run_prefill(model, prompt, chunk, simd::Level::kNative, repeats);
    }

    const bool identical = bitwise_equal(token_scalar.hidden, chunk_scalar.hidden);
    all_identical = all_identical && identical;

    const double best_chunk_tps = have_native ? chunk_native.tps : chunk_scalar.tps;
    const double headline = best_chunk_tps / token_scalar.tps;
    if (c.acceptance && headline < 3.0) bar_met = false;
    if (c.dtype == DType::kI4) int4_headline = headline;

    table.new_row()
        .add_cell(c.name)
        .add_number(token_scalar.tps, 0)
        .add_number(chunk_scalar.tps, 0)
        .add_cell(have_native ? format_double(token_native.tps, 0) : "-")
        .add_cell(have_native ? format_double(chunk_native.tps, 0) : "-")
        .add_cell(format_double(headline, 2) + "x")
        .add_cell(identical ? "yes" : "NO");
  }
  simd::set_level(entry_level);

  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);
  std::printf("\nHeadline = chunked prefill at the best available kernel level vs the\n");
  std::printf("seed's token-at-a-time scalar path. Bit-identical compares the final\n");
  std::printf("hidden state of chunked vs token-at-a-time prefill, both at the scalar\n");
  std::printf("level (the bit-exact reference).\n");
  if (!bar_met) {
    std::printf("WARNING: headline speedup below the 3x acceptance bar on this host\n");
  }
  if (!all_identical) {
    std::printf("ERROR: chunked prefill diverged bitwise from token-at-a-time at the\n");
    std::printf("scalar level\n");
    return 1;
  }
  if (strict && have_native && int4_headline < 6.0) {
    std::printf("ERROR: --strict: int4 headline %.2fx below the 6x packed-int4\n",
                int4_headline);
    std::printf("microkernel acceptance bar\n");
    return 1;
  }
  return 0;
}
