// Extension study: speculative decoding on the edge.
//
// Part 1 (functional): measure real acceptance rates on nano model pairs —
// the INT4-quantized target drafting for its own FP16 version, and a small
// unrelated draft — and confirm output equivalence.
// Part 2 (simulated): feed acceptance rates into the Orin AGX roofline to
// estimate end-to-end decode speedups for paper-scale pairs (Phi-2 drafting
// for Llama-3.1-8B / Mistral-24B), across K and acceptance.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "model/speculative.h"
#include "sim/speculative_sim.h"
#include "tokenizer/tokenizer.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"

using namespace orinsim;
using namespace orinsim::sim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Part 1: measured acceptance rates (functional nano models) ==\n");
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 600);
  const auto tokens = tokenizer.encode(corpus.text);
  auto master =
      MasterWeights::init_random(make_nano_config("llama3", tokenizer.vocab_size()), 55);
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.max_tokens = 10000;
  train::train_readout(*master, tokens, tc);

  Model target(master, DType::kF16);
  Model target_ref(master, DType::kF16);
  std::vector<TokenId> prompt(tokens.begin() + 500, tokens.begin() + 532);

  Table acc_table({"Draft", "K", "Acceptance", "Tokens/round", "Output == greedy"});
  struct DraftCase {
    const char* label;
    std::shared_ptr<MasterWeights> master;
    DType dtype;
  };
  const DraftCase drafts[] = {
      {"same weights, INT4", master, DType::kI4},
      {"same weights, INT8", master, DType::kI8},
  };
  const auto reference = target_ref.generate({prompt}, 48);
  for (const auto& d : drafts) {
    Model draft(d.master, d.dtype);
    SpeculativeStats stats;
    const auto out = speculative_generate(target, draft, prompt, 48, {4}, &stats);
    acc_table.new_row()
        .add_cell(d.label)
        .add_cell("4")
        .add_cell(format_double(stats.acceptance_rate() * 100.0, 1) + "%")
        .add_number(stats.tokens_per_round(), 2)
        .add_cell(out.outputs[0] == reference.outputs[0] ? "yes" : "NO");
  }
  std::fputs((csv ? acc_table.to_csv() : acc_table.to_markdown()).c_str(), stdout);

  std::printf("\n== Part 2: simulated Orin AGX speedups (Phi-2 drafting) ==\n");
  Table sim_table({"Target", "Draft", "K", "Acceptance", "Tokens/round", "Draft share",
                   "Speedup"});
  const ModelSpec& phi2 = model_by_key("phi2");
  for (const char* target_key : {"llama3", "mistral"}) {
    const ModelSpec& t = model_by_key(target_key);
    for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      for (double a : {0.6, 0.8, 0.9}) {
        const SpeculativeEstimate e =
            estimate_speculative_speedup(t, DType::kF16, phi2, DType::kF16, k, a);
        sim_table.new_row()
            .add_cell(t.display)
            .add_cell("MS-Phi2")
            .add_cell(std::to_string(k))
            .add_cell(format_double(a * 100, 0) + "%")
            .add_number(e.tokens_per_round, 2)
            .add_cell(format_double(e.draft_share * 100, 0) + "%")
            .add_cell("x" + format_double(e.speedup, 2));
      }
    }
  }
  std::fputs((csv ? sim_table.to_csv() : sim_table.to_markdown()).c_str(), stdout);
  std::printf("\nReading: weight-bound decode makes verification nearly free — the cost\n");
  std::printf("of a round is dominated by *drafting*. Phi-2 is a poor draft for\n");
  std::printf("Llama-8B (only a 2.9x weight gap, and Phi-2's own decode is bandwidth-\n");
  std::printf("inefficient): barely break-even. Under Mistral-24B the same draft\n");
  std::printf("delivers up to ~2.2x at 90%% acceptance. Rule of thumb on this device:\n");
  std::printf("speculative decoding pays when the draft streams <1/5 of the target's\n");
  std::printf("weights per step.\n");
  return 0;
}
