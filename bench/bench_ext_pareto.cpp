// Extension study: the configuration Pareto frontier — the "optimize LLM
// inferencing on the edge" step the paper's conclusion proposes. Enumerates
// precision x batch x power mode x KV-cache precision for a model, prints
// the non-dominated configurations over (latency/token, energy/token, RAM),
// and answers three deployment questions with constrained optima.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "harness/pareto.h"

using namespace orinsim;
using namespace orinsim::harness;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const bool csv = args.get_bool("csv", false);

  ParetoOptions options;
  options.model_key = model;
  const auto points = enumerate_configs(options);
  const auto frontier = pareto_frontier(points);

  std::printf("== Extension: configuration Pareto frontier for %s (sl=96) ==\n", model.c_str());
  std::printf("   %zu feasible configurations, %zu on the frontier\n\n", points.size(),
              frontier.size());

  Table table({"Configuration", "ms/token", "J/token", "RAM (GB)", "Power (W)",
               "Throughput (tok/s)"});
  for (const auto& p : frontier) {
    table.new_row()
        .add_cell(p.label())
        .add_number(p.latency_per_token_ms, 2)
        .add_number(p.energy_per_token_j, 3)
        .add_number(p.ram_gb, 1)
        .add_number(p.median_power_w, 1)
        .add_number(p.throughput_tps, 1);
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);

  std::printf("\n== Constrained optima ==\n");
  struct Question {
    const char* text;
    Constraints constraints;
    Objective objective;
  };
  Constraints battery;
  battery.max_power_w = 30.0;
  Constraints interactive;
  interactive.max_latency_s = 15.0;
  Constraints tight_ram;
  tight_ram.max_ram_gb = 12.0;
  const Question questions[] = {
      {"Battery-powered (median draw <= 30 W), min energy/token", battery,
       Objective::kEnergyPerToken},
      {"Interactive (batch latency <= 15 s), max throughput", interactive,
       Objective::kThroughput},
      {"Co-located with other apps (RAM <= 12 GB), min latency/token", tight_ram,
       Objective::kLatencyPerToken},
  };
  for (const auto& q : questions) {
    const auto best = best_config(points, q.constraints, q.objective);
    if (best) {
      std::printf("  %-60s -> %s (%.2f ms/tok, %.3f J/tok, %.1f W, %.1f GB)\n", q.text,
                  best->label().c_str(), best->latency_per_token_ms,
                  best->energy_per_token_j, best->median_power_w, best->ram_gb);
    } else {
      std::printf("  %-60s -> no feasible configuration\n", q.text);
    }
  }
  return 0;
}
