// Ablations of the simulator's design decisions (DESIGN.md section
// "Design decisions worth ablating"):
//
//  1. Decode cost decomposition — per-term share of the decode step across
//     models, batch sizes and context lengths: *why* decode is memory-bound.
//  2. Attention overhead factor — with attn_kv_overhead forced to 1.0 the
//     sequence-length latency curve flattens and stops matching Table 7.
//  3. Quantization overhead — with the INT8 slowdown forced to 1.0 the
//     simulator predicts quantization *speeds up* inference (A100-like
//     behaviour), demonstrating the paper's "unlike A100" observation is an
//     efficiency effect, not a bandwidth one.
//  4. GPU-frequency sweep — locates the energy-optimal GPU clock between
//     PM-B (400 MHz) and MaxN (1301 MHz) that Fig 5 brackets.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "sim/calibration.h"
#include "sim/inference_sim.h"

using namespace orinsim;
using namespace orinsim::sim;

namespace {

void decomposition() {
  std::printf("== Ablation 1: decode-step cost decomposition (MaxN) ==\n");
  const RooflineEngine engine;
  Table t({"Model", "bs", "ctx", "weight ms", "kv ms", "compute ms", "launch ms",
           "quant ms", "memory share"});
  for (const auto& m : model_catalog()) {
    for (std::size_t bs : {std::size_t{1}, std::size_t{32}, std::size_t{128}}) {
      for (double ctx : {48.0, 640.0}) {
        const StepBreakdown s =
            engine.decode_step(m, m.default_dtype, bs, ctx, power_mode_maxn());
        t.new_row()
            .add_cell(m.display)
            .add_cell(std::to_string(bs))
            .add_number(ctx, 0)
            .add_number(s.weight_s * 1e3, 1)
            .add_number(s.kv_s * 1e3, 1)
            .add_number(s.compute_s * 1e3, 1)
            .add_number(s.launch_s * 1e3, 1)
            .add_number(s.quant_extra_s * 1e3, 1)
            .add_cell(format_double(s.memory_share() * 100, 0) + "%");
      }
    }
  }
  std::fputs(t.to_markdown().c_str(), stdout);
}

void attention_overhead_ablation() {
  std::printf("\n== Ablation 2: eager-attention overhead factor ==\n");
  std::printf("   Llama bs=32 latency vs sequence length, calibrated factor vs 1.0\n");
  ModelSpec calibrated = model_by_key("llama3");
  ModelSpec no_overhead = calibrated;
  no_overhead.attn_kv_overhead = 1.0;

  Table t({"Seq length", "calibrated (s)", "factor=1.0 (s)", "paper Table 7 (s)"});
  const double paper[] = {14.99, 37.23, 100.69, 304.33};
  const std::size_t splits[][2] = {{32, 96}, {64, 192}, {128, 384}, {256, 768}};
  for (int i = 0; i < 4; ++i) {
    const double with_f = simulated_batch_latency_s(calibrated, DType::kF16, 32,
                                                    splits[i][0], splits[i][1],
                                                    power_mode_maxn());
    const double without = simulated_batch_latency_s(no_overhead, DType::kF16, 32,
                                                     splits[i][0], splits[i][1],
                                                     power_mode_maxn());
    t.new_row()
        .add_cell(std::to_string(splits[i][0] + splits[i][1]))
        .add_number(with_f, 1)
        .add_number(without, 1)
        .add_number(paper[i], 1);
  }
  std::fputs(t.to_markdown().c_str(), stdout);
  std::printf("   -> without the factor, sl=1024 latency is badly underpredicted:\n");
  std::printf("      HF eager attention inflates KV traffic by the calibrated factor %.1f\n",
              model_by_key("llama3").attn_kv_overhead);
}

void quant_overhead_ablation() {
  std::printf("\n== Ablation 3: INT8 kernel overhead (the 'unlike A100' effect) ==\n");
  Table t({"Model", "FP16 (s)", "INT8 calibrated (s)", "INT8 overhead=1 (s)",
           "calibrated ratio", "overhead=1 ratio"});
  for (const auto& m : model_catalog()) {
    if (m.default_dtype != DType::kF16) continue;
    ModelSpec no_overhead = m;
    no_overhead.quant_slowdown_i8 = 1.0;
    const double f16 =
        simulated_batch_latency_s(m, DType::kF16, 32, 32, 64, power_mode_maxn());
    const double i8 =
        simulated_batch_latency_s(m, DType::kI8, 32, 32, 64, power_mode_maxn());
    const double i8_free = simulated_batch_latency_s(no_overhead, DType::kI8, 32, 32, 64,
                                                     power_mode_maxn());
    t.new_row()
        .add_cell(m.display)
        .add_number(f16, 1)
        .add_number(i8, 1)
        .add_number(i8_free, 1)
        .add_cell("x" + format_double(i8 / f16, 2))
        .add_cell("x" + format_double(i8_free / f16, 2));
  }
  std::fputs(t.to_markdown().c_str(), stdout);
  std::printf("   -> with free INT8 kernels (A100-like tensor-core int8), quantization\n");
  std::printf("      would *accelerate* decode (ratio < 1): the Orin slowdown is a\n");
  std::printf("      kernel-efficiency effect, exactly the paper's observation.\n");
}

void gpu_freq_sweep() {
  std::printf("\n== Ablation 4: energy-optimal GPU frequency (Llama, bs=32, sl=96) ==\n");
  InferenceSim sim;
  Table t({"GPU MHz", "Latency (s)", "Power (W)", "Energy (J)"});
  double best_energy = 1e99, best_freq = 0.0;
  for (double mhz = 400.0; mhz <= 1301.0; mhz += 100.0) {
    SimRequest rq;
    rq.model_key = "llama3";
    rq.power_mode = power_mode_maxn();
    rq.power_mode.name = "custom";
    rq.power_mode.gpu_freq_mhz = mhz;
    rq.noise_sigma = 0.0;
    const SimResult r = sim.run(rq);
    t.new_row()
        .add_number(mhz, 0)
        .add_number(r.latency_s, 2)
        .add_number(r.median_power_w, 1)
        .add_number(r.energy_j, 0);
    if (r.energy_j < best_energy) {
      best_energy = r.energy_j;
      best_freq = mhz;
    }
  }
  std::fputs(t.to_markdown().c_str(), stdout);
  std::printf("   -> energy-optimal GPU clock ~%.0f MHz (between PM-B's 400 and MaxN's\n",
              best_freq);
  std::printf("      1301), consistent with Fig 5: PM-A saves energy, PM-B overshoots.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  (void)args;
  decomposition();
  attention_overhead_ablation();
  quant_overhead_ablation();
  gpu_freq_sweep();
  return 0;
}
