// Fig 4 (Llama) and Fig 10 (all models): median power load and total energy
// per batch across batch sizes and precisions (MaxN, sl = 96).
//
//   --model=llama3 (default) | phi2 | mistral | deepseek-qwen
//   --all-models   reproduce Fig 10 over the whole catalog
//   --csv
#include <cstdio>

#include "core/cli.h"
#include "core/stats.h"
#include "core/units.h"
#include "harness/experiments.h"
#include "harness/shape_checks.h"
#include "sim/model_catalog.h"

using namespace orinsim;
using namespace orinsim::harness;

namespace {

void run_model(const std::string& key, bool csv) {
  std::printf("== Power & energy vs batch size x precision: %s (paper %s) ==\n",
              key.c_str(), key == "llama3" ? "Fig 4" : "Fig 10");
  const PowerEnergyStudy study = run_power_energy(key);
  const Table t = power_energy_table(study);
  std::fputs((csv ? t.to_csv() : t.to_markdown()).c_str(), stdout);

  // Median power/energy deltas INT8 vs FP16 and INT8 vs INT4 across the
  // batch sweep — the appendix A.3 summary statistics.
  std::vector<double> p8_vs_16, p8_vs_4, e16_vs_8, e8_vs_4;
  for (std::size_t b = 0; b < study.batch_sizes.size(); ++b) {
    const Cell& f16 = study.cells[0][b];
    const Cell& i8 = study.cells[1][b];
    const Cell& i4 = study.cells[2][b];
    if (!f16.oom && !i8.oom) {
      p8_vs_16.push_back(1.0 - i8.median_power_w / f16.median_power_w);
      e16_vs_8.push_back(1.0 - f16.energy_j / i8.energy_j);
    }
    if (!i8.oom && !i4.oom) {
      p8_vs_4.push_back(1.0 - i8.median_power_w / i4.median_power_w);
      e8_vs_4.push_back(1.0 - i8.energy_j / i4.energy_j);
    }
  }
  auto med = [](std::vector<double>& v) { return median(v) * 100.0; };
  std::printf("\nmedian across batch sizes:\n");
  if (!p8_vs_16.empty()) {
    std::printf("  INT8 power savings vs FP16: %.0f%%  (paper Llama: ~39%%)\n",
                med(p8_vs_16));
    std::printf("  FP16 energy savings vs INT8: %.0f%%  (paper Llama: ~23%%)\n",
                med(e16_vs_8));
  }
  std::printf("  INT8 power savings vs INT4: %.0f%%  (paper Llama: ~32%%)\n", med(p8_vs_4));
  std::printf("  INT8 energy savings vs INT4: %.0f%%  (paper Llama/DeepQ: ~78%%)\n",
              med(e8_vs_4));

  std::printf("\n-- shape checks (paper section 3.3, Fig 4) --\n");
  std::fputs(format_checks(check_power_energy(study)).c_str(), stdout);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);
  if (args.get_bool("all-models", false)) {
    for (const auto& m : sim::model_catalog()) run_model(m.key, csv);
  } else {
    run_model(args.get("model", "llama3"), csv);
  }
  return 0;
}
