// Extension study: DLA co-execution — pin a small INT8 model to one of the
// Orin AGX's two NVDLA cores while the GPU serves the big model (the
// heterogeneous-serving direction the paper's conclusion names).
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "sim/dla.h"

using namespace orinsim;
using namespace orinsim::sim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Extension: small model on DLA while the GPU serves the big model ==\n");
  Table table({"GPU model (bs=32)", "DLA model (INT8)", "DLA tok/s", "DLA bound by",
               "GPU tok/s alone", "GPU tok/s shared", "GPU loss", "Added power (W)"});
  for (const char* big : {"llama3", "mistral", "deepseek-qwen"}) {
    const ModelSpec& b = model_by_key(big);
    const DlaCoExecution r =
        estimate_dla_coexecution(b, b.default_dtype, model_by_key("phi2"));
    table.new_row()
        .add_cell(b.display)
        .add_cell("MS-Phi2")
        .add_number(r.dla_tps, 1)
        .add_cell(r.dla_memory_bound ? "DRAM share" : "INT8 TOPS")
        .add_number(r.gpu_tps_alone, 1)
        .add_number(r.gpu_tps_shared, 1)
        .add_cell(format_double(r.gpu_degradation * 100.0, 1) + "%")
        .add_number(r.added_power_w, 1);
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);

  std::printf("\n== Sensitivity: DLA DRAM share vs small-model throughput ==\n");
  Table sens({"DRAM share", "Phi-2 tok/s on DLA", "Bound by"});
  for (double share : {0.1, 0.2, 0.3, 0.5, 0.8}) {
    DlaSpec dla;
    dla.dram_share = share;
    const DlaCoExecution r = estimate_dla_coexecution(
        model_by_key("llama3"), DType::kF16, model_by_key("phi2"), dla);
    sens.new_row()
        .add_cell(format_double(share * 100, 0) + "%")
        .add_number(r.dla_tps, 1)
        .add_cell(r.dla_memory_bound ? "DRAM share" : "INT8 TOPS");
  }
  std::fputs((csv ? sens.to_csv() : sens.to_markdown()).c_str(), stdout);

  std::printf("\nReading: a DLA-hosted Phi-2 sustains an interactive assistant\n");
  std::printf("(~20 tok/s single-stream) for ~5 W while costing the GPU model under\n");
  std::printf("10%% throughput — the same shared-DRAM coupling that drives PM-G/H in\n");
  std::printf("Fig 5 is what bounds the co-execution, not DLA compute.\n");
  return 0;
}
