// Fig 5 (and Table 2): the nine power modes across all four models at
// bs = 32, sl = 96 — latency bars plus energy/power markers, with the §3.4
// relative deltas against MaxN.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "harness/experiments.h"
#include "harness/shape_checks.h"
#include "sim/paper_reference.h"

using namespace orinsim;
using namespace orinsim::harness;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool csv = args.get_bool("csv", false);

  std::printf("== Table 2: power mode resource configurations ==\n");
  Table modes({"Power Mode", "GPU Freq (MHz)", "CPU Freq (GHz)", "CPU Cores Online",
               "Memory Freq (MHz)"});
  for (const auto& pm : sim::all_power_modes()) {
    modes.new_row()
        .add_cell(pm.name)
        .add_number(pm.gpu_freq_mhz, 0)
        .add_number(pm.cpu_freq_ghz, 1)
        .add_cell(std::to_string(pm.cpu_cores_online))
        .add_number(pm.mem_freq_mhz, 0);
  }
  std::fputs((csv ? modes.to_csv() : modes.to_markdown()).c_str(), stdout);

  std::printf("\n== Fig 5: power modes across models (bs=32, sl=96) ==\n");
  const PowerModeStudy study = run_power_modes();
  const Table t = power_mode_table(study);
  std::fputs((csv ? t.to_csv() : t.to_markdown()).c_str(), stdout);

  std::printf("\n-- paper section 3.4 claims (Llama) vs simulated --\n");
  Table claims({"Mode", "paper power delta", "sim power delta", "paper latency delta",
                "sim latency delta"});
  const std::size_t llama = 1;
  const Cell& maxn = study.cells[llama][0];
  for (const auto& claim : sim::fig5_power_mode_claims()) {
    for (std::size_t p = 0; p < study.modes.size(); ++p) {
      if (study.modes[p].name != claim.mode) continue;
      const Cell& cell = study.cells[llama][p];
      claims.new_row()
          .add_cell(claim.mode)
          .add_cell(format_double(claim.power_delta * 100, 0) + "%")
          .add_cell(format_double((cell.median_power_w / maxn.median_power_w - 1) * 100, 1) +
                    "%")
          .add_cell(format_double(claim.latency_delta * 100, 0) + "%")
          .add_cell(format_double((cell.latency_s / maxn.latency_s - 1) * 100, 1) + "%");
    }
  }
  std::fputs((csv ? claims.to_csv() : claims.to_markdown()).c_str(), stdout);

  std::printf("\n-- shape checks (paper section 3.4) --\n");
  std::fputs(format_checks(check_power_modes(study)).c_str(), stdout);
  return 0;
}
