// google-benchmark over the functional engine: prefill and decode throughput
// of the nano paper architectures across storage precisions. The relative
// numbers mirror the paper's qualitative finding that quantized decoding is
// slower per token despite touching fewer weight bytes.
#include <benchmark/benchmark.h>

#include <map>

#include "model/transformer.h"

namespace {

using namespace orinsim;

std::shared_ptr<MasterWeights> shared_master(const std::string& family) {
  static std::map<std::string, std::shared_ptr<MasterWeights>> cache;
  auto it = cache.find(family);
  if (it == cache.end()) {
    auto config = make_nano_config(family, 512);
    it = cache.emplace(family, MasterWeights::init_random(config, 77)).first;
  }
  return it->second;
}

void BM_Decode(benchmark::State& state) {
  const auto dt = static_cast<DType>(state.range(0));
  auto master = shared_master("llama3");
  Model model(master, dt);
  const TransformerConfig& cfg = model.config();
  KVCache cache(cfg, 1, cfg.max_seq);
  std::vector<float> hidden(cfg.d_model);
  TokenId token = 5;
  std::size_t produced = 0;
  for (auto _ : state) {
    if (cache.seq_len(0) + 1 >= cfg.max_seq) {
      state.PauseTiming();
      cache.reset();
      state.ResumeTiming();
    }
    model.forward_token(token, 0, cache, hidden);
    token = static_cast<TokenId>((token * 31 + 7) % cfg.vocab);
    ++produced;
  }
  state.SetLabel(dtype_name(dt));
  state.SetItemsProcessed(static_cast<int64_t>(produced));
}
BENCHMARK(BM_Decode)
    ->Arg(static_cast<int>(DType::kF32))
    ->Arg(static_cast<int>(DType::kF16))
    ->Arg(static_cast<int>(DType::kI8))
    ->Arg(static_cast<int>(DType::kI4));

void BM_PrefillBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  auto master = shared_master("llama3");
  Model model(master, DType::kF16);
  const TransformerConfig& cfg = model.config();
  const std::vector<TokenId> prompt(32, 9);
  for (auto _ : state) {
    KVCache cache(cfg, batch, 64);
    std::vector<float> hidden(cfg.d_model);
    for (std::size_t b = 0; b < batch; ++b) model.prefill(prompt, b, cache, hidden);
    benchmark::DoNotOptimize(hidden.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch * prompt.size()));
}
BENCHMARK(BM_PrefillBatch)->Arg(1)->Arg(4)->Arg(8);

void BM_FamilyDecode(benchmark::State& state) {
  static const char* kFamilies[] = {"phi2", "llama3", "mistral", "deepseek-qwen"};
  const char* family = kFamilies[state.range(0)];
  auto master = shared_master(family);
  Model model(master, DType::kF16);
  const TransformerConfig& cfg = model.config();
  KVCache cache(cfg, 1, cfg.max_seq);
  std::vector<float> hidden(cfg.d_model);
  TokenId token = 3;
  for (auto _ : state) {
    if (cache.seq_len(0) + 1 >= cfg.max_seq) {
      state.PauseTiming();
      cache.reset();
      state.ResumeTiming();
    }
    model.forward_token(token, 0, cache, hidden);
    token = static_cast<TokenId>((token * 17 + 11) % cfg.vocab);
  }
  state.SetLabel(family);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FamilyDecode)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace
