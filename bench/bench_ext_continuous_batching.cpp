// Extension study: static batching (the paper's serving regime) vs
// continuous token-level batching on the same simulated Orin AGX, same
// arrival process, same workload. Quantifies the paper's "dedicated
// inference engines" future-work direction.
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "serving/batch_scheduler.h"
#include "serving/continuous_batching.h"
#include "trace/export.h"

using namespace orinsim;
using namespace orinsim::serving;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 96));
  const bool csv = args.get_bool("csv", false);
  // --trace-out=BASE writes BASE.jsonl and BASE.trace.json for the last
  // continuous-batching run (the full StepEvent stream the table is
  // derived from).
  const std::string trace_out = args.get("trace-out", "");

  std::printf("== Extension: static vs continuous batching (%s, FP16, sl=96) ==\n\n",
              model.c_str());
  Table table({"Arrival (req/s)", "Scheduler", "mean TTLT (s)", "p95 TTLT (s)",
               "Throughput (tok/s)", "Energy/request (J)", "Mean occupancy"});

  SimSession session(model, DType::kF16, workload::Dataset::kWikiText2);
  for (double rps : {0.5, 2.0, 5.0, 10.0}) {
    // Static batching (the paper's regime), best-of max-batch {8, 32}.
    for (std::size_t max_batch : {std::size_t{8}, std::size_t{32}}) {
      SchedulerConfig sc;
      sc.max_batch = max_batch;
      sc.arrivals.rate_rps = rps;
      sc.arrivals.total_requests = requests;
      const ScheduleResult r = simulate_serving(session, sc);
      table.new_row()
          .add_number(rps, 1)
          .add_cell("static bs<=" + std::to_string(max_batch))
          .add_number(r.mean_latency_s(), 2)
          .add_number(r.p95_latency_s(), 2)
          .add_number(r.achieved_rps() * 96.0, 1)
          .add_number(r.total_energy_j / static_cast<double>(requests), 0)
          .add_number(r.mean_batch_occupancy, 1);
    }
    // Continuous batching at the same concurrency cap.
    ContinuousConfig cc;
    cc.model_key = model;
    cc.arrivals.rate_rps = rps;
    cc.arrivals.total_requests = requests;
    cc.max_concurrency = 32;
    const ContinuousResult r = simulate_continuous(cc);
    table.new_row()
        .add_number(rps, 1)
        .add_cell("continuous c<=32")
        .add_number(r.mean_latency_s(), 2)
        .add_number(r.p95_latency_s(), 2)
        .add_number(r.throughput_tps(), 1)
        .add_number(r.energy_j / static_cast<double>(requests), 0)
        .add_number(r.mean_active, 1);
    if (!trace_out.empty()) {
      trace::write_jsonl(r.timeline, trace_out + ".jsonl");
      trace::write_chrome_trace(r.timeline, trace_out + ".trace.json",
                                "continuous:" + model);
    }
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);
  if (!trace_out.empty()) {
    std::printf("\nwrote %s.jsonl and %s.trace.json\n", trace_out.c_str(),
                trace_out.c_str());
  }

  std::printf("\nReading: under load, continuous batching removes the paper's core\n");
  std::printf("batch-size dilemma (Fig 1) — requests no longer wait for a batch to\n");
  std::printf("form or for its slowest member — at the same device throughput.\n");
  return 0;
}
