// google-benchmark microbenchmarks of the functional engine's compute and
// quantization kernels (the "methodology" benches: these are the primitives
// whose efficiency the simulator's calibrated constants summarize).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/rng.h"
#include "quant/quantize.h"
#include "quant/weight_matrix.h"
#include "tensor/kernels.h"

namespace {

using namespace orinsim;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed, float scale = 0.1f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

void BM_Softmax(benchmark::State& state) {
  const std::size_t rows = 32, cols = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(rows * cols, 1);
  for (auto _ : state) {
    auto copy = x;
    kernels::softmax_rows(copy, rows, cols);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

void BM_RmsNorm(benchmark::State& state) {
  const std::size_t rows = 32, cols = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(rows * cols, 2);
  std::vector<float> gain(cols, 1.0f), y(rows * cols);
  for (auto _ : state) {
    kernels::rmsnorm_rows(x, gain, y, rows, cols);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_RmsNorm)->Arg(128)->Arg(1024);

void BM_Rope(benchmark::State& state) {
  const std::size_t heads = 8, dim = 64;
  auto qk = random_vec(heads * dim, 3);
  std::size_t pos = 0;
  for (auto _ : state) {
    kernels::rope_inplace(qk, heads, dim, pos++ % 1024);
    benchmark::DoNotOptimize(qk.data());
  }
}
BENCHMARK(BM_Rope);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 4);
  auto b = random_vec(n * n, 5);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    kernels::gemm(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Matvec across storage precisions: the functional analogue of the decode
// phase's weight streaming; the INT8/INT4 overhead vs FP16 visible here is
// the CPU version of the effect the paper measures on the Orin GPU.
void BM_WeightMatvec(benchmark::State& state) {
  const auto dt = static_cast<DType>(state.range(0));
  const std::size_t out_f = 1024, in_f = 1024;
  auto w = random_vec(out_f * in_f, 6);
  const auto wm = quant::WeightMatrix::create(w, out_f, in_f, dt);
  auto x = random_vec(in_f, 7, 1.0f);
  std::vector<float> out(out_f);
  for (auto _ : state) {
    wm.matvec(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(dtype_name(dt));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wm.storage_bytes()));
}
BENCHMARK(BM_WeightMatvec)
    ->Arg(static_cast<int>(DType::kF32))
    ->Arg(static_cast<int>(DType::kF16))
    ->Arg(static_cast<int>(DType::kI8))
    ->Arg(static_cast<int>(DType::kI4));

void BM_QuantizeInt8(benchmark::State& state) {
  const std::size_t rows = 256, cols = 1024;
  auto w = random_vec(rows * cols, 8);
  for (auto _ : state) {
    auto q = quant::quantize_rowwise_int8(w, rows, cols, 0.3f);
    benchmark::DoNotOptimize(q.codes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_QuantizeInt8);

void BM_QuantizeInt4(benchmark::State& state) {
  const std::size_t rows = 256, cols = 1024;
  auto w = random_vec(rows * cols, 9);
  for (auto _ : state) {
    auto q = quant::quantize_block_int4(w, rows, cols);
    benchmark::DoNotOptimize(q.packed.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_QuantizeInt4);

}  // namespace
