// google-benchmark microbenchmarks of the functional engine's compute and
// quantization kernels (the "methodology" benches: these are the primitives
// whose efficiency the simulator's calibrated constants summarize).
//
// `bench_kernels --roofline-json[=path]` switches to the roofline tracker:
// it measures this host's peak FMA GFLOP/s (simd::fma_probe_flops across all
// OpenMP threads) and peak streaming GB/s, then times each weight-streaming
// kernel and reports measured GB/s, GFLOP/s, arithmetic intensity, the
// roofline ceiling min(peak_flops, AI * peak_bw), and the fraction of that
// ceiling actually reached — the per-kernel efficiency numbers CI archives
// as a JSON artifact. All other arguments run google-benchmark as before.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "quant/quantize.h"
#include "quant/weight_matrix.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace {

using namespace orinsim;

std::vector<float> random_vec(std::size_t n, std::uint64_t seed, float scale = 0.1f) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

void BM_Softmax(benchmark::State& state) {
  const std::size_t rows = 32, cols = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(rows * cols, 1);
  for (auto _ : state) {
    auto copy = x;
    kernels::softmax_rows(copy, rows, cols);
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

void BM_RmsNorm(benchmark::State& state) {
  const std::size_t rows = 32, cols = static_cast<std::size_t>(state.range(0));
  auto x = random_vec(rows * cols, 2);
  std::vector<float> gain(cols, 1.0f), y(rows * cols);
  for (auto _ : state) {
    kernels::rmsnorm_rows(x, gain, y, rows, cols);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_RmsNorm)->Arg(128)->Arg(1024);

void BM_Rope(benchmark::State& state) {
  const std::size_t heads = 8, dim = 64;
  auto qk = random_vec(heads * dim, 3);
  std::size_t pos = 0;
  for (auto _ : state) {
    kernels::rope_inplace(qk, heads, dim, pos++ % 1024);
    benchmark::DoNotOptimize(qk.data());
  }
}
BENCHMARK(BM_Rope);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto a = random_vec(n * n, 4);
  auto b = random_vec(n * n, 5);
  std::vector<float> c(n * n);
  for (auto _ : state) {
    kernels::gemm(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Matvec across storage precisions: the functional analogue of the decode
// phase's weight streaming; the INT8/INT4 overhead vs FP16 visible here is
// the CPU version of the effect the paper measures on the Orin GPU.
void BM_WeightMatvec(benchmark::State& state) {
  const auto dt = static_cast<DType>(state.range(0));
  const std::size_t out_f = 1024, in_f = 1024;
  auto w = random_vec(out_f * in_f, 6);
  const auto wm = quant::WeightMatrix::create(w, out_f, in_f, dt);
  auto x = random_vec(in_f, 7, 1.0f);
  std::vector<float> out(out_f);
  for (auto _ : state) {
    wm.matvec(x, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(dtype_name(dt));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wm.storage_bytes()));
}
BENCHMARK(BM_WeightMatvec)
    ->Arg(static_cast<int>(DType::kF32))
    ->Arg(static_cast<int>(DType::kF16))
    ->Arg(static_cast<int>(DType::kI8))
    ->Arg(static_cast<int>(DType::kI4));

void BM_QuantizeInt8(benchmark::State& state) {
  const std::size_t rows = 256, cols = 1024;
  auto w = random_vec(rows * cols, 8);
  for (auto _ : state) {
    auto q = quant::quantize_rowwise_int8(w, rows, cols, 0.3f);
    benchmark::DoNotOptimize(q.codes.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_QuantizeInt8);

void BM_QuantizeInt4(benchmark::State& state) {
  const std::size_t rows = 256, cols = 1024;
  auto w = random_vec(rows * cols, 9);
  for (auto _ : state) {
    auto q = quant::quantize_block_int4(w, rows, cols);
    benchmark::DoNotOptimize(q.packed.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * rows * cols);
}
BENCHMARK(BM_QuantizeInt4);

// ---------------------------------------------------------------------------
// Roofline tracker (--roofline-json).

struct RooflinePoint {
  std::string name;
  double bytes_per_iter = 0.0;  // weight + activation traffic per call
  double flops_per_iter = 0.0;
  double seconds_per_iter = 0.0;
};

// Times fn for ~min_time seconds and returns the best observed seconds/iter
// of three repeats (interference only ever slows a run down, so the fastest
// repeat is the estimate of what the kernel can do).
template <typename Fn>
double time_kernel(Fn&& fn, double min_time = 0.05) {
  fn();  // warm-up / first-touch
  Stopwatch watch;
  fn();
  double once = std::max(watch.elapsed_s(), 1e-9);
  const auto iters = static_cast<std::size_t>(std::max(1.0, min_time / once));
  double best = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    watch.reset();
    for (std::size_t i = 0; i < iters; ++i) fn();
    best = std::min(best, watch.elapsed_s() / static_cast<double>(iters));
  }
  return best;
}

// Peak FMA throughput: every OpenMP thread runs the register-resident probe
// chain; total FLOPs / wall time. Best of many short repeats.
double measure_peak_gflops() {
  const std::size_t iters = 1 << 21;
  double best = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    double flops = 0.0;
    Stopwatch watch;
#pragma omp parallel reduction(+ : flops)
    { flops += simd::fma_probe_flops(iters); }
    best = std::max(best, flops / watch.elapsed_s());
  }
  return best / 1e9;
}

// Peak streaming bandwidth: all threads stream chunks of two buffers far
// larger than the last-level cache through simd::dot_f32 (multiple
// independent accumulator chains — a plain scalar float sum is a latency
// chain that caps out far below memory bandwidth). Two distinct streams
// match the access pattern of the weight-streaming kernels.
double measure_peak_gbps() {
  const std::size_t n = 16u << 20;  // 2 x 64 MiB of floats
  std::vector<float> a(n, 1.0f), b(n, 1.0f);
  const std::ptrdiff_t chunks = 64;
  const std::size_t chunk = n / static_cast<std::size_t>(chunks);
  double best = 0.0;
  volatile float sink = 0.0f;
  // Many short passes: on shared hosts the best-of statistic needs enough
  // samples to dodge steal time, like time_kernel's repeats do.
  for (int rep = 0; rep < 10; ++rep) {
    Stopwatch watch;
    float sum = 0.0f;
#pragma omp parallel for reduction(+ : sum)
    for (std::ptrdiff_t c = 0; c < chunks; ++c) {
      const std::size_t at = static_cast<std::size_t>(c) * chunk;
      sum += simd::dot_f32(a.data() + at, b.data() + at, chunk);
    }
    best = std::max(best, 2.0 * static_cast<double>(n) * sizeof(float) / watch.elapsed_s());
    sink = sink + sum;
  }
  (void)sink;
  return best / 1e9;
}

int run_roofline(const std::string& json_path) {
  const simd::Level level = simd::init();
  const double peak_gbps = measure_peak_gbps();
  const double peak_gflops = measure_peak_gflops();

  // 4096x4096 so even the INT4 storage (~8 MiB) streams past the LLC —
  // cache-resident weights would report GB/s above the DRAM roof.
  const std::size_t out_f = 4096, in_f = 4096, lanes = 8;
  auto w = random_vec(out_f * in_f, 6);
  auto x = random_vec(lanes * in_f, 7, 1.0f);
  std::vector<float> y(lanes * out_f);
  const std::span<const float> x1(x.data(), in_f);
  const std::span<float> y1(y.data(), out_f);

  std::vector<RooflinePoint> points;
  const DType dts[] = {DType::kF32, DType::kF16, DType::kI8, DType::kI4};
  for (DType dt : dts) {
    const auto wm = quant::WeightMatrix::create(w, out_f, in_f, dt);
    // Traffic = quantized weights (streamed once per call) + activations in
    // and out; FLOPs counted at the fp32-equivalent 2*out*in per lane.
    const double wbytes = static_cast<double>(wm.storage_bytes());
    RooflinePoint single;
    single.name = "matvec_" + dtype_name(dt);
    single.bytes_per_iter = wbytes + (in_f + out_f) * sizeof(float);
    single.flops_per_iter = 2.0 * static_cast<double>(out_f) * static_cast<double>(in_f);
    single.seconds_per_iter = time_kernel([&] { wm.matvec(x1, y1); });
    points.push_back(single);

    RooflinePoint multi;
    multi.name = "matvec_multi8_" + dtype_name(dt);
    multi.bytes_per_iter = wbytes + lanes * (in_f + out_f) * sizeof(float);
    multi.flops_per_iter = single.flops_per_iter * static_cast<double>(lanes);
    quant::ActivationBatchInt8 act;
    multi.seconds_per_iter = time_kernel([&] { wm.matvec_multi(x, y, lanes, act); });
    points.push_back(multi);
  }
  {
    RooflinePoint dot;
    dot.name = "dot_f32";
    const std::size_t n = 1u << 24;  // 2 x 64 MiB streams: DRAM, not cache
    auto a = random_vec(n, 10);
    auto b = random_vec(n, 11);
    dot.bytes_per_iter = 2.0 * n * sizeof(float);
    dot.flops_per_iter = 2.0 * n;
    volatile float sink = 0.0f;
    dot.seconds_per_iter =
        time_kernel([&] { sink = sink + simd::dot_f32(a.data(), b.data(), n); });
    points.push_back(dot);
  }

  std::printf("== Kernel roofline: %s kernels, peak %.1f GFLOP/s, %.1f GB/s ==\n",
              simd::level_name(level), peak_gflops, peak_gbps);
  std::printf("| %-18s | %9s | %9s | %6s | %9s | %6s | %s |\n", "Kernel", "GB/s",
              "GFLOP/s", "AI", "Roof GF/s", "% roof", "Bound");
  std::printf("|--------------------|-----------|-----------|--------|-----------|--------|---------|\n");
  std::string json = "{\n  \"machine\": {\"kernels\": \"";
  json += simd::level_name(level);
  json += "\", \"peak_gflops\": " + std::to_string(peak_gflops);
  json += ", \"peak_gbps\": " + std::to_string(peak_gbps) + "},\n  \"kernels\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const RooflinePoint& p = points[i];
    const double gbps = p.bytes_per_iter / p.seconds_per_iter / 1e9;
    const double gflops = p.flops_per_iter / p.seconds_per_iter / 1e9;
    const double ai = p.flops_per_iter / p.bytes_per_iter;
    const double roof = std::min(peak_gflops, ai * peak_gbps);
    const double pct = 100.0 * gflops / roof;
    const char* bound = ai * peak_gbps < peak_gflops ? "memory" : "compute";
    std::printf("| %-18s | %9.2f | %9.2f | %6.2f | %9.2f | %5.1f%% | %-7s |\n",
                p.name.c_str(), gbps, gflops, ai, roof, pct, bound);
    json += "    {\"name\": \"" + p.name + "\"";
    json += ", \"bytes_per_iter\": " + std::to_string(p.bytes_per_iter);
    json += ", \"flops_per_iter\": " + std::to_string(p.flops_per_iter);
    json += ", \"seconds_per_iter\": " + std::to_string(p.seconds_per_iter);
    json += ", \"gbps\": " + std::to_string(gbps);
    json += ", \"gflops\": " + std::to_string(gflops);
    json += ", \"arithmetic_intensity\": " + std::to_string(ai);
    json += ", \"roof_gflops\": " + std::to_string(roof);
    json += ", \"pct_of_roof\": " + std::to_string(pct);
    json += std::string(", \"bound\": \"") + bound + "\"}";
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::printf("\nRoof = min(peak FLOP/s, AI x peak GB/s); %% roof is the measured\n");
  std::printf("fraction of that ceiling. Weight-streaming matvecs sit on the memory\n");
  std::printf("slope; FLOPs are counted fp32-equivalent, so INT8/INT4 maddubs\n");
  std::printf("kernels can legitimately land near or above the fp32 FMA roof.\n");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nroofline JSON written to %s\n", json_path.c_str());
  } else {
    std::printf("\n%s", json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("roofline-json")) {
    // Bare `--roofline-json` (CliArgs stores "true") prints JSON to stdout.
    std::string path = args.get("roofline-json", "");
    if (path == "true") path.clear();
    return run_roofline(path);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
