// Fleet routing bench: a 16-device heterogeneous Jetson fleet (Orin AGX 64
// and 32, Xavier AGX, Orin NX, Orin Nano from sim/device_catalog) serving
// one diurnal arrival stream under each routing policy — round_robin,
// shortest_queue, power_headroom, prefix_affinity — with per-policy goodput,
// TTFT/TPOT p50/p99, J/token and governor step-downs in one comparison
// table. The paper measures a single Orin under batch/power sweeps; this is
// the next deployment question up: which box should each request land on
// when a storefront runs a rack of them.
//
// Three checks always run (exit non-zero on failure):
//  - determinism: the same config routed twice yields an identical
//    FleetResult (same device choices, goodput, energy, percentiles);
//  - energy conservation: per-request attributed energy sums to each
//    device's timeline total within 1e-9 (fleet dispatch must not leak or
//    double-count a joule);
//  - a functional 4-device nano chat fleet (Zipfian shared system prompts,
//    per-device prefix caches) reports cache hit rate per policy.
//
// --strict additionally enforces the two routing-quality bars the CI smoke
// pins: prefix_affinity must beat round_robin on chat cache hit rate, and
// shortest_queue must beat round_robin on p99 TTFT over the diurnal sweep.
//
//   bench_fleet_throughput [--requests=192] [--rps=10] [--slo-s=60]
//                          [--chat-requests=32] [--seed=42] [--csv] [--strict]
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/table.h"
#include "fleet/router.h"
#include "model/transformer.h"
#include "serving/serving_device.h"
#include "workload/corpus.h"

using namespace orinsim;
using namespace orinsim::fleet;

namespace {

// The 16-box heterogeneous fleet: half the rack is big Orins, the rest the
// smaller tier. Power caps sit under each class's observed MaxN draw so the
// governor has real work on the big boxes; the small boxes run phi2 (llama3
// does not fit an 8 GB Nano) at their own scaled power modes.
std::vector<serving::ServingDevice::SimConfig> fleet_16() {
  std::vector<serving::ServingDevice::SimConfig> devices;
  auto add = [&](const std::string& key, const std::string& mode,
                 const std::string& model, std::size_t lanes, double cap_w,
                 std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      serving::ServingDevice::SimConfig dc;
      dc.name = key + "#" + std::to_string(devices.size());
      dc.device_key = key;
      dc.power_mode = mode;
      dc.model_key = model;
      dc.max_concurrency = lanes;
      dc.governor.power_cap_w = cap_w;
      devices.push_back(dc);
    }
    return devices.size();
  };
  add("orin-agx-64", "MaxN", "llama3", 8, 40.0, 4);
  add("orin-agx-32", "MaxN", "llama3", 8, 40.0, 2);
  add("xavier-agx-32", "MaxN", "phi2", 8, 30.0, 2);
  add("orin-nx-16", "MaxN", "phi2", 4, 20.0, 4);
  add("orin-nano-8", "A", "phi2", 4, 15.0, 4);
  return devices;
}

bool summaries_equal(const FleetResult& a, const FleetResult& b) {
  return a.device_of_request == b.device_of_request && a.makespan_s == b.makespan_s &&
         a.completed == b.completed && a.goodput_rps == b.goodput_rps &&
         a.energy_j == b.energy_j && a.ttft.p99_s == b.ttft.p99_s &&
         a.tpot.p99_s == b.tpot.p99_s && a.governor_step_downs == b.governor_step_downs;
}

// Per-request energy attribution must conserve each device's timeline total:
// the fleet split a joule-for-joule accounted stream, so any leak here means
// the refactor broke the single-device invariant.
bool conserves_energy(const FleetResult& result) {
  bool ok = true;
  for (std::size_t d = 0; d < result.devices.size(); ++d) {
    const serving::EngineResult& r = result.devices[d];
    double attributed = 0.0;
    for (const serving::RequestMetrics& m : r.request_metrics) attributed += m.energy_j;
    const double total = r.timeline.total_energy_j();
    if (std::fabs(attributed - total) > 1e-9 * std::max(1.0, std::fabs(total))) {
      std::printf("FAIL: device %zu (%s) attributes %.12f J of a %.12f J timeline\n", d,
                  result.device_names[d].c_str(), attributed, total);
      ok = false;
    }
  }
  return ok;
}

// Functional nano chat fleet: 4 devices with per-device prefix caches over
// one shared nano model, chat traffic where 8 Zipf-weighted system prompts
// dominate. Routing decides whether a tenant's system prompt stays hot on
// one box (prefix_affinity) or cold-misses on every box it wanders to.
FleetResult run_chat_fleet(Model& model, const workload::PromptPool& pool,
                           std::size_t requests, std::uint64_t seed,
                           RoutePolicy policy) {
  workload::ChatWorkloadConfig chat;
  chat.system_prompts = 8;
  chat.zipf_s = 1.1;
  chat.system_tokens = 64;
  chat.user_tokens = 32;

  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 50.0;  // flooded: routing, not pacing, decides hits
  arrivals.total_requests = requests;
  arrivals.seed = seed;

  Rng rng(seed);
  const std::vector<std::vector<TokenId>> prompts =
      pool.sample_chat_batch(requests, chat, rng);
  const std::vector<double> times = arrivals.generate();
  std::vector<serving::Request> stream(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    stream[i].id = i;
    stream[i].arrival_s = times[i];
    stream[i].prompt = prompts[i];
    stream[i].prompt_tokens = prompts[i].size();
    stream[i].max_new_tokens = 8;
  }

  std::vector<std::unique_ptr<serving::ServingDevice>> devices;
  for (std::size_t d = 0; d < 4; ++d) {
    serving::FunctionalTokenBackend::Config fc;
    fc.max_lanes = 1;  // every admission is its own prefill wave
    fc.max_seq = chat.prompt_tokens() + 8;
    fc.kv_blocks = 48;
    fc.prefix_cache = true;
    fc.prefix_cache_blocks = 24;  // too small to hold all 8 system prompts
    devices.push_back(std::make_unique<serving::ServingDevice>(
        model, fc, serving::GovernorConfig{}, "nano#" + std::to_string(d)));
  }
  RouterOptions options;
  options.policy = policy;
  options.affinity_tokens = chat.system_tokens;  // hash exactly the shared prefix
  FleetRouter router(std::move(devices), options);
  return router.run(std::move(stream));
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 192));
  const double rps = args.get_double("rps", 10.0);
  const double slo_s = args.get_double("slo-s", 60.0);
  const auto chat_requests = static_cast<std::size_t>(args.get_int("chat-requests", 32));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const bool csv = args.get_bool("csv", false);
  const bool strict = args.get_bool("strict", false);

  SimFleetConfig config;
  config.devices = fleet_16();
  config.arrivals.kind = workload::ArrivalKind::kDiurnal;
  config.arrivals.rate_rps = rps;
  config.arrivals.total_requests = requests;
  config.arrivals.seed = seed;
  config.options.slo_s = slo_s;
  config.options.affinity_tokens = 16;

  std::printf("Fleet: %zu devices, %zu requests, diurnal arrivals at %.1f req/s mean, "
              "SLO %.0f s\n\n",
              config.devices.size(), requests, rps, slo_s);

  Table table({"Policy", "Completed", "Goodput (req/s)", "TTFT p50 (s)", "TTFT p99 (s)",
               "TPOT p50 (s)", "TPOT p99 (s)", "J/token", "Step-downs", "Preempts"});
  bool ok = true;
  double rr_ttft_p99 = 0.0;
  double jsq_ttft_p99 = 0.0;
  for (RoutePolicy policy : all_route_policies()) {
    const FleetResult r = run_sim_fleet(config, policy);
    const FleetResult again = run_sim_fleet(config, policy);
    if (!summaries_equal(r, again)) {
      std::printf("FAIL: %s is not deterministic across identical runs\n",
                  route_policy_name(policy).c_str());
      ok = false;
    }
    if (!conserves_energy(r)) ok = false;
    if (policy == RoutePolicy::kRoundRobin) rr_ttft_p99 = r.ttft.p99_s;
    if (policy == RoutePolicy::kShortestQueue) jsq_ttft_p99 = r.ttft.p99_s;
    table.new_row()
        .add_cell(route_policy_name(policy))
        .add_cell(std::to_string(r.completed) + "/" + std::to_string(requests))
        .add_number(r.goodput_rps, 2)
        .add_number(r.ttft.p50_s, 2)
        .add_number(r.ttft.p99_s, 2)
        .add_number(r.tpot.p50_s, 3)
        .add_number(r.tpot.p99_s, 3)
        .add_number(r.energy_per_token_j, 2)
        .add_cell(std::to_string(r.governor_step_downs))
        .add_cell(std::to_string(r.preemptions));
  }
  std::fputs((csv ? table.to_csv() : table.to_markdown()).c_str(), stdout);

  std::printf("\nChat fleet: 4 functional nano devices, per-device prefix caches, "
              "%zu requests\n\n",
              chat_requests);
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 400);
  const workload::PromptPool pool(corpus, tokenizer, 256);
  auto master = MasterWeights::init_random(
      make_nano_config("llama3", tokenizer.vocab_size()), 7);
  Model model(master, DType::kF32);

  Table chat_table({"Policy", "Hit rate", "Hits/lookups", "Prefill tokens skipped",
                    "TTFT p99 (ms)"});
  double rr_hit_rate = 0.0;
  double affinity_hit_rate = 0.0;
  for (RoutePolicy policy : {RoutePolicy::kRoundRobin, RoutePolicy::kPrefixAffinity}) {
    const FleetResult r = run_chat_fleet(model, pool, chat_requests, seed, policy);
    if (policy == RoutePolicy::kRoundRobin) rr_hit_rate = r.cache_hit_rate();
    if (policy == RoutePolicy::kPrefixAffinity) affinity_hit_rate = r.cache_hit_rate();
    chat_table.new_row()
        .add_cell(route_policy_name(policy))
        .add_number(100.0 * r.cache_hit_rate(), 1)
        .add_cell(std::to_string(r.prefix_cache.hits) + "/" +
                  std::to_string(r.prefix_cache.lookups))
        .add_cell(std::to_string(r.prefix_cache.hit_tokens))
        .add_number(1e3 * r.ttft.p99_s, 2);
  }
  std::fputs((csv ? chat_table.to_csv() : chat_table.to_markdown()).c_str(), stdout);

  const bool affinity_bar = affinity_hit_rate > rr_hit_rate;
  const bool jsq_bar = jsq_ttft_p99 < rr_ttft_p99;
  std::printf("\nRouting bars%s:\n", strict ? " (enforced)" : " (advisory)");
  std::printf("  prefix_affinity hit rate %.1f%% %s round_robin %.1f%%\n",
              100.0 * affinity_hit_rate, affinity_bar ? ">" : "<=", 100.0 * rr_hit_rate);
  std::printf("  shortest_queue TTFT p99 %.2f s %s round_robin %.2f s\n", jsq_ttft_p99,
              jsq_bar ? "<" : ">=", rr_ttft_p99);
  if (strict && !(affinity_bar && jsq_bar)) ok = false;

  if (!ok) {
    std::printf("\nFAIL: fleet routing checks did not hold.\n");
    return 1;
  }
  std::printf("\nAll fleet checks passed.\n");
  return 0;
}
