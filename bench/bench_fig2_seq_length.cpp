// Fig 2 / Fig 8 / Fig 9 and Tables 6 / 7: sequence-length sweep
// (sl = 128/256/512/1024 split as A = B + C, bs = 32, MaxN).
//
//   --dataset=longbench (default, Table 6) | wikitext2 (Table 7) | both
//   --csv
#include <cstdio>

#include "core/cli.h"
#include "harness/experiments.h"
#include "harness/shape_checks.h"

using namespace orinsim;
using namespace orinsim::harness;

namespace {

void run_dataset(workload::Dataset dataset, bool csv) {
  std::printf("== Sequence-length sweep, %s (paper %s) ==\n",
              workload::dataset_name(dataset).c_str(),
              dataset == workload::Dataset::kLongBench ? "Fig 2/8, Table 6"
                                                       : "Fig 9, Table 7");
  std::printf("   splits: 128=32+96, 256=64+192, 512=128+384, 1024=256+768\n");
  const SeqSweep sweep = run_seq_sweep(dataset);
  for (Metric m : {Metric::kRam, Metric::kLatency, Metric::kThroughput}) {
    std::printf("\n-- %s (sim / paper) --\n", metric_name(m).c_str());
    const Table t = seq_sweep_comparison(sweep, m);
    std::fputs((csv ? t.to_csv() : t.to_markdown()).c_str(), stdout);
  }
  std::printf("\n-- shape checks (paper section 3.2) --\n");
  std::fputs(format_checks(check_seq_sweep(sweep)).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string dataset = args.get("dataset", "longbench");
  const bool csv = args.get_bool("csv", false);
  if (dataset == "both") {
    run_dataset(workload::Dataset::kLongBench, csv);
    std::printf("\n");
    run_dataset(workload::Dataset::kWikiText2, csv);
  } else {
    run_dataset(workload::parse_dataset(dataset), csv);
  }
  return 0;
}
