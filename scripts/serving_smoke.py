#!/usr/bin/env python3
"""Release smoke test for orinsim_serve, the streaming HTTP serving daemon.

Exercises the daemon end to end over real sockets, stdlib only:

  1. Bit-identity: the concatenated SSE token stream equals the --offline
     reference for the same prompt/seed, with the prefix cache off and on
     (and on a cache-hit second request), and with --speculative serving
     (where /metrics must also report draft/verify rounds).
  2. Backpressure: concurrent completions against --queue-cap=1 produce at
     least one 429 and at least one 200; /metrics agrees and reports a
     nonzero orinsim_completion_tokens_total.
  3. Graceful drain: SIGTERM mid-stream lets the in-flight SSE response
     finish (terminated by [DONE]) and the daemon exits 0.

Usage: serving_smoke.py /path/to/orinsim_serve
"""

import http.client
import json
import re
import signal
import socket
import subprocess
import sys
import threading

PROMPT = "the history of the"
MAX_TOKENS = 12
LISTEN_RE = re.compile(r"orinsim_serve listening on ([0-9.]+):(\d+)")


def fail(message):
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def offline_reference(binary, extra_flags):
    """The daemon's own offline mode: same stack, virtual clock, one prompt."""
    result = subprocess.run(
        [binary, "--offline", f"--prompt={PROMPT}", f"--max-tokens={MAX_TOKENS}"]
        + extra_flags,
        capture_output=True,
        text=True,
        timeout=300,
    )
    if result.returncode != 0:
        fail(f"--offline exited {result.returncode}: {result.stderr}")
    if not result.stdout.endswith("\n"):
        fail("--offline output missing trailing newline")
    return result.stdout[:-1]


def start_daemon(binary, extra_flags):
    proc = subprocess.Popen(
        [binary, "--port=0"] + extra_flags,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    match = LISTEN_RE.match(line)
    if not match:
        proc.kill()
        fail(f"could not parse listen line: {line!r}")
    return proc, match.group(1), int(match.group(2))


def stop_daemon(proc):
    """SIGTERM, wait, and require a clean drain (exit 0)."""
    proc.send_signal(signal.SIGTERM)
    try:
        code = proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not drain within 120s of SIGTERM")
    rest = proc.stdout.read()
    if code != 0:
        fail(f"daemon exited {code} on SIGTERM (wanted 0)")
    if "drained" not in rest:
        fail(f"daemon exit message missing 'drained': {rest!r}")


def sse_completion(host, port, prompt, max_tokens):
    """POST a streaming completion; returns (status, concatenated_text, done)."""
    conn = http.client.HTTPConnection(host, port, timeout=120)
    body = json.dumps({"prompt": prompt, "max_tokens": max_tokens, "stream": True})
    conn.request(
        "POST", "/v1/completions", body, {"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    payload = response.read().decode("utf-8", errors="replace")
    conn.close()
    if response.status != 200:
        return response.status, payload, False
    text, saw_done = "", False
    for event in payload.split("\n\n"):
        if not event.startswith("data: "):
            continue
        data = event[len("data: "):]
        if data == "[DONE]":
            saw_done = True
            continue
        text += json.loads(data)["choices"][0]["text"]
    return response.status, text, saw_done


def scrape_metrics(host, port):
    conn = http.client.HTTPConnection(host, port, timeout=60)
    conn.request("GET", "/metrics")
    response = conn.getresponse()
    body = response.read().decode()
    conn.close()
    if response.status != 200:
        fail(f"/metrics returned {response.status}")
    values = {}
    for line in body.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, value = line.rsplit(" ", 1)
        values[name] = value
    return values


def check_bit_identity(binary):
    for label, flags in [
        ("cache-off", []),
        ("cache-on", ["--prefix-cache"]),
        ("speculative", ["--speculative"]),
    ]:
        reference = offline_reference(binary, flags)
        proc, host, port = start_daemon(binary, flags)
        try:
            # Twice: the second request is the prefix-cache-hit path when the
            # cache is on; greedy decode must be byte-identical either way.
            for round_index in (1, 2):
                status, text, saw_done = sse_completion(host, port, PROMPT, MAX_TOKENS)
                if status != 200:
                    fail(f"[{label} round {round_index}] status {status}")
                if not saw_done:
                    fail(f"[{label} round {round_index}] stream missing [DONE]")
                if text != reference:
                    fail(
                        f"[{label} round {round_index}] SSE text diverged from "
                        f"--offline: {text!r} != {reference!r}"
                    )
            if "--speculative" in flags:
                values = scrape_metrics(host, port)
                if float(values.get("orinsim_spec_rounds_total", "0")) <= 0:
                    fail(f"--speculative served no draft/verify rounds: {values}")
        finally:
            stop_daemon(proc)
        print(f"ok: SSE bit-identical to --offline ({label}): {reference!r}")


def check_backpressure_and_metrics(binary):
    proc, host, port = start_daemon(
        binary, ["--queue-cap=1", "--max-concurrency=1"]
    )
    try:
        statuses = []
        lock = threading.Lock()

        def one_request(index):
            status, _, _ = sse_completion(
                host, port, f"the history of the region {index}", 24
            )
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=one_request, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        ok = statuses.count(200)
        rejected = statuses.count(429)
        if ok < 1:
            fail(f"no request succeeded under load: {statuses}")
        if rejected < 1:
            fail(f"queue-cap=1 produced no 429 under 8-way load: {statuses}")
        if ok + rejected != len(statuses):
            fail(f"unexpected statuses under load: {statuses}")

        values = scrape_metrics(host, port)
        if float(values.get("orinsim_completion_tokens_total", "0")) <= 0:
            fail(f"orinsim_completion_tokens_total not positive: {values}")
        if float(values.get("orinsim_requests_rejected_total", "0")) < rejected:
            fail(
                f"metrics rejected_total {values.get('orinsim_requests_rejected_total')}"
                f" < observed 429s {rejected}"
            )
        if values.get("orinsim_request_latency_mean_seconds", "NaN") == "NaN":
            fail("latency mean still NaN after completed requests")
        print(f"ok: backpressure under load ({ok}x200, {rejected}x429), metrics sane")
    finally:
        stop_daemon(proc)


def check_sigterm_drains_in_flight(binary):
    proc, host, port = start_daemon(binary, [])
    started = threading.Event()  # set once the first SSE event arrives
    result = {}

    def in_flight():
        body = json.dumps({"prompt": PROMPT, "max_tokens": 48, "stream": True})
        request = (
            "POST /v1/completions HTTP/1.1\r\nHost: smoke\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n{body}"
        )
        with socket.create_connection((host, port), timeout=120) as sock:
            sock.sendall(request.encode())
            raw = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
                if b"data:" in raw:
                    started.set()
        started.set()  # in case the response never carried an event
        head, _, payload = raw.decode("utf-8", errors="replace").partition(
            "\r\n\r\n"
        )
        result["status"] = int(head.split(" ", 2)[1]) if " " in head else 0
        text, saw_done = "", False
        for event in payload.split("\n\n"):
            if not event.startswith("data: "):
                continue
            data = event[len("data: "):]
            if data == "[DONE]":
                saw_done = True
                continue
            text += json.loads(data)["choices"][0]["text"]
        result["text"], result["done"] = text, saw_done

    client = threading.Thread(target=in_flight)
    client.start()
    # Only SIGTERM once the stream is demonstrably in flight: drain must then
    # flush the remaining tokens and the [DONE] sentinel, never cut it.
    if not started.wait(timeout=120):
        proc.kill()
        fail("stream never produced a first event")
    proc.send_signal(signal.SIGTERM)
    client.join(timeout=120)
    if client.is_alive():
        proc.kill()
        fail("in-flight stream did not finish after SIGTERM")
    try:
        code = proc.wait(timeout=120)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail("daemon did not exit after SIGTERM with in-flight stream")
    if code != 0:
        fail(f"daemon exited {code} after draining in-flight stream")
    if result.get("status") != 200 or not result.get("done"):
        fail(f"in-flight stream was cut by SIGTERM: {result}")
    print(f"ok: SIGTERM drained in-flight stream ({len(result['text'])} chars), exit 0")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    check_bit_identity(binary)
    check_backpressure_and_metrics(binary)
    check_sigterm_drains_in_flight(binary)
    print("serving smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
