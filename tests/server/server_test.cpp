// End-to-end tests for the orinsim_serve HTTP daemon: real sockets against
// a Server bound to an ephemeral port, driving the functional nano engine.
//
// The load-bearing pin: at temperature 0 the concatenation of the SSE token
// stream must be bit-identical to the offline engine's output for the same
// prompt and seed — with the prefix cache off and on.
#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "model/config.h"
#include "model/transformer.h"
#include "server/engine_host.h"
#include "server/json.h"
#include "serving/engine.h"
#include "tokenizer/tokenizer.h"
#include "workload/corpus.h"

namespace orinsim::server {
namespace {

// ---------------------------------------------------------------------------
// Raw-socket client helpers. The tests deliberately avoid reusing the
// daemon's own HTTP code on the client side beyond response-body parsing.

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_bytes(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_to_eof(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

struct Response {
  int status = 0;
  std::string head;  // status line + headers
  std::string body;
};

Response split_response(const std::string& raw) {
  Response r;
  const std::size_t split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return r;
  r.head = raw.substr(0, split);
  r.body = raw.substr(split + 4);
  // "HTTP/1.1 NNN ..."
  if (r.head.size() >= 12) r.status = std::atoi(r.head.c_str() + 9);
  return r;
}

// Connects, sends one request, reads until the server closes.
Response roundtrip(std::uint16_t port, const std::string& raw_request) {
  const int fd = connect_to(port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return {};
  EXPECT_TRUE(send_bytes(fd, raw_request));
  const std::string raw = read_to_eof(fd);
  ::close(fd);
  return split_response(raw);
}

std::string completion_request(const std::string& prompt, int max_tokens,
                               bool stream) {
  const std::string body = "{\"prompt\": " + json_string(prompt) +
                           ", \"max_tokens\": " + std::to_string(max_tokens) +
                           ", \"stream\": " + (stream ? "true" : "false") + "}";
  return "POST /v1/completions HTTP/1.1\r\nHost: test\r\n"
         "Content-Type: application/json\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

// Concatenates the "text" fields of an SSE body's data events, in order,
// into `text`. Sets saw_done when the [DONE] sentinel terminated the stream
// and saw_finish when the finish_reason="length" chunk arrived before it.
// (void because gtest ASSERT_* requires a void-returning function.)
void concat_sse_text(const std::string& body, std::string& text,
                     bool* saw_done = nullptr, bool* saw_finish = nullptr) {
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find("\n\n", pos);
    if (end == std::string::npos) end = body.size();
    const std::string event = body.substr(pos, end - pos);
    pos = end + 2;
    if (event.rfind("data: ", 0) != 0) continue;
    const std::string payload = event.substr(6);
    if (payload == "[DONE]") {
      if (saw_done) *saw_done = true;
      continue;
    }
    JsonValue v;
    ASSERT_TRUE(JsonValue::parse(payload, v)) << payload;
    const JsonValue* choices = v.find("choices");
    ASSERT_NE(choices, nullptr);
    ASSERT_FALSE(choices->items().empty());
    const JsonValue& choice = choices->items()[0];
    const JsonValue* finish = choice.find("finish_reason");
    if (finish != nullptr && finish->type() == JsonValue::Type::kString &&
        finish->as_string() == "length") {
      if (saw_finish) *saw_finish = true;
    }
    const JsonValue* t = choice.find("text");
    if (t != nullptr && t->type() == JsonValue::Type::kString) {
      text += t->as_string();
    }
  }
}

// Value-returning shim over the void ASSERT-capable worker.
std::string sse_text_or_die(const std::string& body, bool* saw_done = nullptr,
                            bool* saw_finish = nullptr) {
  std::string text;
  concat_sse_text(body, text, saw_done, saw_finish);
  return text;
}

// ---------------------------------------------------------------------------
// Fixture: the deterministic nano stack, mirroring orinsim_serve's
// construction (same corpus, tokenizer size, family, and seed).

class ServerE2ETest : public ::testing::Test {
 protected:
  ServerE2ETest()
      : corpus_(workload::generate_corpus(workload::CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 400)),
        config_(make_nano_config("llama3", tokenizer_.vocab_size())),
        master_(MasterWeights::init_random(config_, 7)),
        model_(std::make_unique<Model>(master_, DType::kF32)) {}

  std::unique_ptr<serving::FunctionalTokenBackend> make_backend(
      bool prefix_cache) {
    serving::FunctionalTokenBackend::Config bc;
    bc.max_lanes = 2;
    bc.max_seq = config_.max_seq;
    bc.prefix_cache = prefix_cache;
    return std::make_unique<serving::FunctionalTokenBackend>(*model_, bc,
                                                             nullptr);
  }

  // The offline reference: same prompt through the steppable engine in
  // virtual-clock mode, tokens concatenated exactly as SSE would carry them.
  std::string offline_completion(const std::string& prompt,
                                 std::size_t max_tokens, bool prefix_cache) {
    auto backend = make_backend(prefix_cache);
    serving::Request req;
    req.prompt = tokenizer_.encode(prompt);
    req.prompt_tokens = req.prompt.size();
    req.max_new_tokens = max_tokens;

    std::string text;
    serving::StreamCallbacks callbacks;
    callbacks.on_token = [&](const serving::Request&, TokenId token) {
      text += tokenizer_.token_text(token);
    };
    serving::ContinuousEngine engine(*backend, serving::GovernorConfig{});
    engine.submit(std::move(req), std::move(callbacks));
    while (engine.step() == serving::ContinuousEngine::Step::kWorked) {
    }
    engine.finish();
    return text;
  }

  workload::Corpus corpus_;
  Tokenizer tokenizer_;
  TransformerConfig config_;
  std::shared_ptr<const MasterWeights> master_;
  std::unique_ptr<Model> model_;
};

// A server + host bundle on an ephemeral port. Host is declared before the
// server so the server (whose shutdown drains the host) dies first.
struct LiveServer {
  LiveServer(serving::TokenBackend& backend, const Tokenizer& tokenizer,
             std::size_t max_seq, EngineHost::Config host_config,
             ServerConfig server_config = {})
      : host(backend, tokenizer, max_seq, host_config),
        server(host, std::move(server_config)) {
    std::string error;
    started = server.start(&error);
    EXPECT_TRUE(started) << error;
  }

  EngineHost host;
  Server server;
  bool started = false;
};

TEST_F(ServerE2ETest, SseStreamIsBitIdenticalToOfflineEngine) {
  const std::string prompt = "the history of the";
  constexpr std::size_t kMaxTokens = 12;
  for (const bool prefix_cache : {false, true}) {
    SCOPED_TRACE(prefix_cache ? "prefix cache on" : "prefix cache off");
    const std::string reference =
        offline_completion(prompt, kMaxTokens, prefix_cache);
    ASSERT_FALSE(reference.empty());

    auto backend = make_backend(prefix_cache);
    LiveServer live(*backend, tokenizer_, config_.max_seq, {});
    ASSERT_TRUE(live.started);

    // Twice: with the cache on, the second request hits the prefix cache —
    // greedy decode must be unaffected.
    for (int round = 0; round < 2; ++round) {
      SCOPED_TRACE("round " + std::to_string(round));
      const Response r = roundtrip(
          live.server.port(),
          completion_request(prompt, static_cast<int>(kMaxTokens), true));
      ASSERT_EQ(r.status, 200);
      EXPECT_NE(r.head.find("text/event-stream"), std::string::npos);
      bool saw_done = false;
      bool saw_finish = false;
      const std::string streamed = sse_text_or_die(r.body, &saw_done, &saw_finish);
      EXPECT_TRUE(saw_done);
      EXPECT_TRUE(saw_finish);
      EXPECT_EQ(streamed, reference);
    }
  }
}

TEST_F(ServerE2ETest, NonStreamingResponseMatchesOfflineEngine) {
  const std::string prompt = "computer systems are";
  const std::string reference = offline_completion(prompt, 8, false);

  auto backend = make_backend(false);
  LiveServer live(*backend, tokenizer_, config_.max_seq, {});
  const Response r =
      roundtrip(live.server.port(), completion_request(prompt, 8, false));
  ASSERT_EQ(r.status, 200);
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(r.body, v)) << r.body;
  EXPECT_EQ(v.find("object")->as_string(), "text_completion");
  EXPECT_EQ(v.find("choices")->items()[0].find("text")->as_string(), reference);
  EXPECT_EQ(v.find("choices")->items()[0].find("finish_reason")->as_string(),
            "length");
  EXPECT_DOUBLE_EQ(v.find("usage")->find("completion_tokens")->as_number(), 8.0);
}

TEST_F(ServerE2ETest, QueueCapOverflowAnswers429) {
  auto backend = make_backend(false);
  // One lane, queue of one: with several concurrent requests, later
  // submissions must bounce with 429 while the accepted ones complete.
  serving::FunctionalTokenBackend::Config bc;
  bc.max_lanes = 1;
  bc.max_seq = config_.max_seq;
  serving::FunctionalTokenBackend tight_backend(*model_, bc, nullptr);

  EngineHost::Config host_config;
  host_config.queue_cap = 1;
  LiveServer live(tight_backend, tokenizer_, config_.max_seq, host_config);

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::atomic<int> other{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i]() {
      const Response r = roundtrip(
          live.server.port(),
          completion_request("the history of the region " + std::to_string(i),
                             24, true));
      if (r.status == 200) {
        ++ok;
      } else if (r.status == 429) {
        ++rejected;
      } else {
        ++other;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(ok.load() + rejected.load(), kClients);

  const EngineHost::Metrics m = live.host.metrics();
  EXPECT_EQ(m.rejected, static_cast<std::size_t>(rejected.load()));
  EXPECT_EQ(m.submitted, static_cast<std::size_t>(ok.load()));
}

TEST_F(ServerE2ETest, EarlyDisconnectMidSseLeavesOtherRequestsUnaffected) {
  auto backend = make_backend(false);
  LiveServer live(*backend, tokenizer_, config_.max_seq, {});

  const std::string reference = offline_completion("the history of the", 10, false);

  // Client A: open an SSE stream, read a few bytes, slam the connection.
  const int fd = connect_to(live.server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_bytes(fd, completion_request("a long prompt about energy", 32, true)));
  char buf[64];
  ASSERT_GT(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  // Client B, concurrently: must stream its full completion undisturbed.
  const Response r = roundtrip(live.server.port(),
                               completion_request("the history of the", 10, true));
  ASSERT_EQ(r.status, 200);
  bool saw_done = false;
  EXPECT_EQ(sse_text_or_die(r.body, &saw_done), reference);
  EXPECT_TRUE(saw_done);

  // The abandoned request still runs to retirement (tokens are dropped, not
  // the request). Poll briefly: the engine may still be decoding it.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (live.host.metrics().completed < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(live.host.metrics().completed, 2u);
}

TEST_F(ServerE2ETest, ShutdownDrainsInFlightStreamsCompletely) {
  auto backend = make_backend(false);
  LiveServer live(*backend, tokenizer_, config_.max_seq, {});

  const std::string reference = offline_completion("the history of the", 16, false);

  // Start a stream and wait for the first byte so it is in flight, then
  // shut the server down while the client is still reading.
  const int fd = connect_to(live.server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_bytes(fd, completion_request("the history of the", 16, true)));
  char first;
  ASSERT_EQ(::recv(fd, &first, 1, MSG_PEEK), 1);

  std::thread closer([&]() { live.server.shutdown(); });
  const std::string raw = read_to_eof(fd);
  ::close(fd);
  closer.join();

  const Response r = split_response(raw);
  ASSERT_EQ(r.status, 200);
  bool saw_done = false;
  EXPECT_EQ(sse_text_or_die(r.body, &saw_done), reference);
  EXPECT_TRUE(saw_done) << "drain must flush the stream to [DONE], not cut it";

  const EngineHost::Metrics m = live.host.metrics();
  EXPECT_EQ(m.completed, 1u);
  EXPECT_EQ(m.active, 0u);
  EXPECT_TRUE(m.draining);

  // After shutdown the listener is gone.
  EXPECT_LT(connect_to(live.server.port()), 0);
}

TEST_F(ServerE2ETest, MetricsReportNaNBeforeFirstCompletionThenRealValues) {
  auto backend = make_backend(false);
  LiveServer live(*backend, tokenizer_, config_.max_seq, {});

  // Before any completion: the latency gauges are NaN (satellite: empty
  // percentile/mean is NaN, rendered honestly, never 0).
  Response r = roundtrip(live.server.port(),
                         "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.head.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("orinsim_request_latency_mean_seconds NaN"),
            std::string::npos);
  EXPECT_NE(r.body.find("orinsim_requests_completed_total 0"),
            std::string::npos);

  const Response done = roundtrip(
      live.server.port(), completion_request("the history of the", 6, false));
  ASSERT_EQ(done.status, 200);

  r = roundtrip(live.server.port(), "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("orinsim_requests_completed_total 1"),
            std::string::npos);
  EXPECT_NE(r.body.find("orinsim_completion_tokens_total 6"),
            std::string::npos);
  EXPECT_EQ(r.body.find("orinsim_request_latency_mean_seconds NaN"),
            std::string::npos);
}

TEST_F(ServerE2ETest, RoutingAndValidationErrors) {
  auto backend = make_backend(false);
  LiveServer live(*backend, tokenizer_, config_.max_seq, {});
  const std::uint16_t port = live.server.port();

  EXPECT_EQ(roundtrip(port, "GET /healthz HTTP/1.1\r\n\r\n").status, 200);
  EXPECT_EQ(roundtrip(port, "GET /nope HTTP/1.1\r\n\r\n").status, 404);
  EXPECT_EQ(roundtrip(port, "POST /metrics HTTP/1.1\r\nContent-Length: 0\r\n\r\n")
                .status, 405);
  EXPECT_EQ(roundtrip(port, "GET /v1/completions HTTP/1.1\r\n\r\n").status, 405);

  // Malformed bodies: same 400 whether the JSON or the field is bad.
  const char* bad_bodies[] = {
      "not json at all",
      "{\"max_tokens\": 4}",                       // missing prompt
      "{\"prompt\": 42, \"max_tokens\": 4}",      // prompt not a string
      "{\"prompt\": \"x\", \"max_tokens\": 0}",   // non-positive
      "{\"prompt\": \"x\", \"max_tokens\": 2.5}", // non-integer
      "{\"prompt\": \"x\", \"max_tokens\": 1e999}",  // overflow, CLI-strict
  };
  for (const char* body : bad_bodies) {
    const std::string raw =
        "POST /v1/completions HTTP/1.1\r\nContent-Length: " +
        std::to_string(std::string(body).size()) + "\r\n\r\n" + body;
    EXPECT_EQ(roundtrip(port, raw).status, 400) << body;
  }

  // Parser-level rejections surface as their own statuses.
  EXPECT_EQ(roundtrip(port, "BROKEN\r\n\r\n").status, 400);
}

}  // namespace
}  // namespace orinsim::server
