// The incremental HTTP/1.1 parser: requests split across arbitrary read
// boundaries, header and body limits, chunked bodies with malformed chunk
// lengths, and the response/SSE formatting helpers.
#include "server/http.h"

#include <gtest/gtest.h>

#include <string>

namespace orinsim::server {
namespace {

// Feeds the request to a fresh parser in `chunk` - byte slices.
HttpParser::State feed_in_chunks(HttpParser& parser, std::string_view raw,
                                 std::size_t chunk) {
  HttpParser::State state = parser.state();
  for (std::size_t i = 0; i < raw.size(); i += chunk) {
    state = parser.feed(raw.substr(i, std::min(chunk, raw.size() - i)));
    if (state == HttpParser::State::kDone || state == HttpParser::State::kError) break;
  }
  return state;
}

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpParser parser;
  const auto state = parser.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  ASSERT_EQ(state, HttpParser::State::kDone);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_EQ(parser.request().header("host"), "x");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, HeadersSplitAcrossReadsAtEveryBoundary) {
  const std::string raw =
      "POST /v1/completions?trace=1 HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 17\r\n"
      "\r\n"
      "{\"prompt\":\"hi\"}\r\n";
  // Every chunk size from byte-at-a-time up: the parser must assemble the
  // identical request regardless of where recv() happens to cut.
  for (std::size_t chunk = 1; chunk <= raw.size(); ++chunk) {
    HttpParser parser;
    ASSERT_EQ(feed_in_chunks(parser, raw, chunk), HttpParser::State::kDone)
        << "chunk size " << chunk;
    EXPECT_EQ(parser.request().method, "POST");
    EXPECT_EQ(parser.request().path, "/v1/completions");
    EXPECT_EQ(parser.request().query.at("trace"), "1");
    EXPECT_EQ(parser.request().header("content-type"), "application/json");
    EXPECT_EQ(parser.request().body, "{\"prompt\":\"hi\"}\r\n");
  }
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpParser::Limits limits;
  limits.max_header_bytes = 128;
  HttpParser parser(limits);
  std::string raw = "GET / HTTP/1.1\r\nX-Pad: ";
  raw.append(512, 'a');
  const auto state = parser.feed(raw);
  ASSERT_EQ(state, HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedBodyIs413) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpParser parser(limits);
  const auto state = parser.feed(
      "POST /v1/completions HTTP/1.1\r\nContent-Length: 999\r\n\r\n");
  ASSERT_EQ(state, HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, MalformedRequestsAre400) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",                                        // no method/target
      "GET /x SPDY/99\r\n\r\n",                                 // bad version
      "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",                 // bad header
      "GET /x HTTP/1.1\r\n: empty-name\r\n\r\n",                // empty name
      "GET /%zz HTTP/1.1\r\n\r\n",                              // bad escape
      "POST /x HTTP/1.1\r\nContent-Length: 12abc\r\n\r\n",      // bad length
      "POST /x HTTP/1.1\r\nContent-Length: -4\r\n\r\n",         // negative
      "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",    // unsupported
  };
  for (const char* raw : bad) {
    HttpParser parser;
    ASSERT_EQ(parser.feed(raw), HttpParser::State::kError) << raw;
    EXPECT_EQ(parser.error_status(), 400) << raw;
  }
}

TEST(HttpParserTest, ChunkedBodyReassembles) {
  const std::string raw =
      "POST /v1/completions HTTP/1.1\r\n"
      "Transfer-Encoding: chunked\r\n"
      "\r\n"
      "7\r\n{\"a\": 1\r\n"
      "1\r\n}\r\n"
      "0\r\n\r\n";
  for (std::size_t chunk : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{5}, raw.size()}) {
    HttpParser parser;
    ASSERT_EQ(feed_in_chunks(parser, raw, chunk), HttpParser::State::kDone)
        << "chunk size " << chunk;
    EXPECT_EQ(parser.request().body, "{\"a\": 1}");
  }
}

TEST(HttpParserTest, BadChunkLengthIs400) {
  const char* bad[] = {
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nhi\r\n0\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\r\nhi\r\n0\r\n\r\n",
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n123456789\r\n",  // > cap
  };
  for (const char* raw : bad) {
    HttpParser parser;
    ASSERT_EQ(parser.feed(raw), HttpParser::State::kError) << raw;
    EXPECT_EQ(parser.error_status(), 400) << raw;
  }
}

TEST(HttpParserTest, MissingChunkTerminatorIs400) {
  HttpParser parser;
  const auto state = parser.feed(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhiXX");
  ASSERT_EQ(state, HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ChunkedBodyOverLimitIs413) {
  HttpParser::Limits limits;
  limits.max_body_bytes = 4;
  HttpParser parser(limits);
  const auto state = parser.feed(
      "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nff\r\n");
  ASSERT_EQ(state, HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, QueryAndPathDecode) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("GET /a%20b?x=1&y=hello%2Bworld&flag HTTP/1.1\r\n\r\n"),
            HttpParser::State::kDone);
  EXPECT_EQ(parser.request().path, "/a b");
  EXPECT_EQ(parser.request().query.at("x"), "1");
  EXPECT_EQ(parser.request().query.at("y"), "hello+world");
  EXPECT_EQ(parser.request().query.at("flag"), "");

  std::string out;
  EXPECT_TRUE(url_decode("a+b%21", out));
  EXPECT_EQ(out, "a b!");
  EXPECT_FALSE(url_decode("bad%2", out));
  EXPECT_FALSE(url_decode("bad%gg", out));
}

TEST(HttpResponseTest, FormatsStatusAndLength) {
  const std::string r = http_response(429, "application/json", "{\"e\":1}");
  EXPECT_NE(r.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(r.find("Content-Length: 7\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(r.substr(r.size() - 7), "{\"e\":1}");
}

TEST(HttpResponseTest, SseFraming) {
  EXPECT_NE(sse_response_head().find("Content-Type: text/event-stream\r\n"),
            std::string::npos);
  EXPECT_EQ(sse_event("{\"x\":1}"), "data: {\"x\":1}\n\n");
  EXPECT_EQ(sse_event("[DONE]"), "data: [DONE]\n\n");
}

}  // namespace
}  // namespace orinsim::server
