// The daemon's minimal JSON layer: parse what the completions API accepts,
// reject what it must, escape what it emits. Numbers share the strict
// parser with CLI flags, so the same malformed inputs fail in both places.
#include "server/json.h"

#include <gtest/gtest.h>

namespace orinsim::server {
namespace {

TEST(JsonTest, ParsesCompletionRequestShape) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(
      R"({"prompt": "the history of", "max_tokens": 8, "stream": true})", v));
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("prompt"), nullptr);
  EXPECT_EQ(v.find("prompt")->as_string(), "the history of");
  EXPECT_DOUBLE_EQ(v.find("max_tokens")->as_number(), 8.0);
  EXPECT_TRUE(v.find("stream")->as_bool());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonTest, ParsesNestedArraysAndObjects) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(R"({"a": [1, 2, {"b": null}], "c": -3.5e2})", v));
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].as_number(), 2.0);
  EXPECT_EQ(a->items()[2].find("b")->type(), JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(v.find("c")->as_number(), -350.0);
}

TEST(JsonTest, DecodesEscapesAndUnicode) {
  JsonValue v;
  ASSERT_TRUE(JsonValue::parse(R"("tab\there \"quote\" Aé")", v));
  EXPECT_EQ(v.as_string(), "tab\there \"quote\" A\xc3\xa9");
  // Surrogate pair for U+1F600.
  ASSERT_TRUE(JsonValue::parse(R"("😀")", v));
  EXPECT_EQ(v.as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedDocuments) {
  JsonValue v;
  std::string error;
  EXPECT_FALSE(JsonValue::parse("", v, &error));
  EXPECT_FALSE(JsonValue::parse("{", v, &error));
  EXPECT_FALSE(JsonValue::parse(R"({"a": })", v, &error));
  EXPECT_FALSE(JsonValue::parse(R"({"a": 1} trailing)", v, &error));
  EXPECT_FALSE(JsonValue::parse(R"({"a": 1,})", v, &error));
  EXPECT_FALSE(JsonValue::parse(R"("unterminated)", v, &error));
  EXPECT_FALSE(JsonValue::parse(R"("bad \q escape")", v, &error));
  EXPECT_FALSE(JsonValue::parse(R"("\ud83d alone")", v, &error));
  EXPECT_FALSE(error.empty());
}

TEST(JsonTest, RejectsMalformedNumbersLikeTheCli) {
  // Same strict-parse contract as --flag=...: overflow and garbage are
  // errors, not silently clamped values.
  JsonValue v;
  EXPECT_FALSE(JsonValue::parse("1e999", v));
  EXPECT_FALSE(JsonValue::parse("1.2.3", v));
  EXPECT_FALSE(JsonValue::parse("- 1", v));
  EXPECT_TRUE(JsonValue::parse("-12.5e-1", v));
  EXPECT_DOUBLE_EQ(v.as_number(), -1.25);
}

TEST(JsonTest, EscapeRoundTripsControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_string("x"), "\"x\"");

  // Serialize-then-parse returns the original bytes.
  JsonValue v;
  const std::string original = "mixed \n \"content\" \t with \\ everything";
  ASSERT_TRUE(JsonValue::parse(json_string(original), v));
  EXPECT_EQ(v.as_string(), original);
}

TEST(JsonTest, DepthLimitStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += "[";
  for (int i = 0; i < 64; ++i) deep += "]";
  JsonValue v;
  EXPECT_FALSE(JsonValue::parse(deep, v));
}

}  // namespace
}  // namespace orinsim::server
