// Parameterized property tests over the quantization codecs: error bounds
// and matvec fidelity must hold across matrix shapes, weight scales, and
// distribution shapes (Gaussian and heavy-tailed).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/rng.h"
#include "quant/quantize.h"
#include "quant/weight_matrix.h"
#include "tensor/kernels.h"

namespace orinsim::quant {
namespace {

using ShapeScale = std::tuple<std::size_t /*rows*/, std::size_t /*cols*/,
                              double /*scale*/, bool /*heavy_tailed*/>;

std::vector<float> make_weights(const ShapeScale& p, Rng& rng) {
  const auto& [rows, cols, scale, heavy] = p;
  std::vector<float> w(rows * cols);
  for (auto& v : w) {
    const double s = (heavy && rng.bernoulli(0.04)) ? 6.0 * scale : scale;
    v = static_cast<float>(rng.normal(0.0, s));
  }
  return w;
}

class QuantPropertyTest : public ::testing::TestWithParam<ShapeScale> {};

TEST_P(QuantPropertyTest, Int8RelativeErrorSmall) {
  Rng rng(0xC0FFEE);
  const auto& [rows, cols, scale, heavy] = GetParam();
  const auto w = make_weights(GetParam(), rng);
  const RowwiseInt8 q = quantize_rowwise_int8(w, rows, cols,
                                              heavy ? static_cast<float>(3.0 * scale) : 0.0f);
  std::vector<float> rec(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, std::span<float>(rec.data() + r * cols, cols));
  }
  const QuantError e = measure_error(w, rec);
  // Row-wise absmax INT8: relative Frobenius error well under 1%, even with
  // outliers (they live in fp16).
  EXPECT_LT(e.relative_fro, 0.01);
}

TEST_P(QuantPropertyTest, Int4RelativeErrorModerate) {
  Rng rng(0xBEEF);
  const auto& [rows, cols, scale, heavy] = GetParam();
  if (cols % kInt4Block != 0) GTEST_SKIP();
  const auto w = make_weights(GetParam(), rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  std::vector<float> rec(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, std::span<float>(rec.data() + r * cols, cols));
  }
  const QuantError e = measure_error(w, rec);
  EXPECT_LT(e.relative_fro, 0.20);
  EXPECT_GT(e.relative_fro, 0.001);  // INT4 is genuinely lossy
}

TEST_P(QuantPropertyTest, ErrorOrderingAcrossPrecisions) {
  Rng rng(0xDEAD);
  const auto& [rows, cols, scale, heavy] = GetParam();
  const auto w = make_weights(GetParam(), rng);
  auto fro = [&](DType dt) {
    const auto wm = WeightMatrix::create(w, rows, cols, dt);
    std::vector<float> rec(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      wm.dequantize_row(r, std::span<float>(rec.data() + r * cols, cols));
    }
    return measure_error(w, rec).relative_fro;
  };
  const double e16 = fro(DType::kF16);
  const double e8 = fro(DType::kI8);
  const double e4 = fro(DType::kI4);
  EXPECT_LE(e16, e8);
  EXPECT_LT(e8, e4);
}

TEST_P(QuantPropertyTest, MatvecErrorScalesWithPrecision) {
  Rng rng(0xFACE);
  const auto& [rows, cols, scale, heavy] = GetParam();
  const auto w = make_weights(GetParam(), rng);
  std::vector<float> x(cols);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));
  std::vector<float> ref(rows);
  kernels::matvec(w, x, ref, rows, cols);

  auto rms_err = [&](DType dt) {
    const auto wm = WeightMatrix::create(w, rows, cols, dt);
    std::vector<float> out(rows);
    wm.matvec(x, out);
    double acc = 0.0, norm = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      acc += (out[r] - ref[r]) * static_cast<double>(out[r] - ref[r]);
      norm += static_cast<double>(ref[r]) * ref[r];
    }
    return std::sqrt(acc / std::max(norm, 1e-30));
  };
  EXPECT_LT(rms_err(DType::kF16), 0.01);
  EXPECT_LT(rms_err(DType::kI8), 0.08);
  EXPECT_LT(rms_err(DType::kI4), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QuantPropertyTest,
    ::testing::Values(ShapeScale{8, 32, 0.1, false}, ShapeScale{64, 64, 0.02, false},
                      ShapeScale{16, 256, 1.0, false}, ShapeScale{128, 128, 0.1, true},
                      ShapeScale{32, 96, 0.5, true}, ShapeScale{256, 64, 0.005, true}),
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(static_cast<int>(std::get<2>(info.param) * 1000)) +
             (std::get<3>(info.param) ? "_heavy" : "_gauss");
    });

}  // namespace
}  // namespace orinsim::quant
