#include "quant/weight_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"

namespace orinsim::quant {
namespace {

std::vector<float> random_weights(std::size_t n, Rng& rng, double scale = 0.1) {
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, scale));
  return w;
}

// Restores the dispatch level on scope exit so test order never leaks state.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedLevel() { simd::set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level prev_;
};

std::vector<simd::Level> levels_to_test() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::native_available()) levels.push_back(simd::Level::kNative);
  return levels;
}

class WeightMatrixParamTest : public ::testing::TestWithParam<DType> {};

TEST_P(WeightMatrixParamTest, MatvecCloseToFp32Reference) {
  Rng rng(11);
  const std::size_t out_f = 40, in_f = 64;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  auto x = random_weights(in_f, rng, 1.0);
  std::vector<float> out(out_f), ref(out_f);
  wm.matvec(x, out);
  kernels::matvec(w, x, ref, out_f, in_f);
  // Tolerance scales with precision.
  double tol = 1e-4;
  if (GetParam() == DType::kF16) tol = 5e-3;
  if (GetParam() == DType::kI8) tol = 5e-2;
  if (GetParam() == DType::kI4) tol = 0.4;
  for (std::size_t r = 0; r < out_f; ++r) EXPECT_NEAR(out[r], ref[r], tol);
}

TEST_P(WeightMatrixParamTest, MatmulMatchesPerTokenMatvec) {
  Rng rng(12);
  const std::size_t out_f = 24, in_f = 32, tokens = 5;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  auto x = random_weights(tokens * in_f, rng, 1.0);
  std::vector<float> y(tokens * out_f), y_ref(tokens * out_f);
  wm.matmul(x, y, tokens);
  for (std::size_t t = 0; t < tokens; ++t) {
    wm.matvec(std::span<const float>(x.data() + t * in_f, in_f),
              std::span<float>(y_ref.data() + t * out_f, out_f));
  }
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5f);
}

TEST_P(WeightMatrixParamTest, DequantizeRowCloseToSource) {
  Rng rng(13);
  const std::size_t out_f = 8, in_f = 32;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  std::vector<float> rec(in_f);
  double tol = 1e-7;
  if (GetParam() == DType::kF16) tol = 1e-3;
  if (GetParam() == DType::kI8) tol = 5e-3;
  if (GetParam() == DType::kI4) tol = 5e-2;
  for (std::size_t r = 0; r < out_f; ++r) {
    wm.dequantize_row(r, rec);
    for (std::size_t c = 0; c < in_f; ++c) EXPECT_NEAR(rec[c], w[r * in_f + c], tol);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, WeightMatrixParamTest,
                         ::testing::Values(DType::kF32, DType::kF16, DType::kI8,
                                           DType::kI4),
                         [](const auto& info) { return dtype_name(info.param); });

// The matvec_multi contract: lane t is bit-identical to matvec(X[t]) at the
// active level for kF32/kI8/kI4, and batch-composition independent for every
// dtype. kF16 only bit-matches the single matvec at kScalar (the native
// multi path dequantizes each row once and reorders the fp32 accumulation).
TEST_P(WeightMatrixParamTest, MatvecMultiMatchesPerLaneMatvec) {
  Rng rng(21);
  const std::size_t out_f = 40, in_f = 64;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  for (simd::Level level : levels_to_test()) {
    ScopedLevel scoped(level);
    for (std::size_t lanes : {1u, 3u, 8u, 9u}) {
      auto x = random_weights(lanes * in_f, rng, 1.0);
      std::vector<float> y(lanes * out_f), ref(lanes * out_f);
      ActivationBatchInt8 act;
      wm.matvec_multi(x, y, lanes, act);
      for (std::size_t t = 0; t < lanes; ++t) {
        wm.matvec(std::span<const float>(x.data() + t * in_f, in_f),
                  std::span<float>(ref.data() + t * out_f, out_f));
      }
      const bool exact =
          GetParam() != DType::kF16 || level == simd::Level::kScalar;
      for (std::size_t i = 0; i < y.size(); ++i) {
        if (exact) {
          EXPECT_EQ(y[i], ref[i]) << simd::level_name(level) << " lanes=" << lanes
                                  << " i=" << i;
        } else {
          EXPECT_NEAR(y[i], ref[i], 1e-3f)
              << simd::level_name(level) << " lanes=" << lanes << " i=" << i;
        }
      }
    }
  }
}

// Batch-composition independence holds for EVERY dtype (including kF16):
// a lane's value never depends on which other lanes share the batch.
TEST_P(WeightMatrixParamTest, MatvecMultiIsCompositionIndependent) {
  Rng rng(22);
  const std::size_t out_f = 24, in_f = 64, lanes = 6;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  for (simd::Level level : levels_to_test()) {
    ScopedLevel scoped(level);
    auto x = random_weights(lanes * in_f, rng, 1.0);
    std::vector<float> full(lanes * out_f);
    ActivationBatchInt8 act;
    wm.matvec_multi(x, full, lanes, act);
    // Re-run each lane as a singleton batch.
    for (std::size_t t = 0; t < lanes; ++t) {
      std::vector<float> alone(out_f);
      ActivationBatchInt8 act1;
      wm.matvec_multi(std::span<const float>(x.data() + t * in_f, in_f), alone, 1,
                      act1);
      for (std::size_t r = 0; r < out_f; ++r) {
        EXPECT_EQ(full[t * out_f + r], alone[r])
            << simd::level_name(level) << " t=" << t << " r=" << r;
      }
    }
  }
}

TEST_P(WeightMatrixParamTest, MatvecQkvMultiMatchesSeparateMatvecMulti) {
  Rng rng(23);
  const std::size_t d = 64, kv = 32, lanes = 5;
  auto wq_w = random_weights(d * d, rng);
  auto wk_w = random_weights(kv * d, rng);
  auto wv_w = random_weights(kv * d, rng);
  const auto wq = WeightMatrix::create(wq_w, d, d, GetParam());
  const auto wk = WeightMatrix::create(wk_w, kv, d, GetParam());
  const auto wv = WeightMatrix::create(wv_w, kv, d, GetParam());
  for (simd::Level level : levels_to_test()) {
    ScopedLevel scoped(level);
    auto x = random_weights(lanes * d, rng, 1.0);
    std::vector<float> q(lanes * d), k(lanes * kv), v(lanes * kv);
    ActivationBatchInt8 act;
    matvec_qkv_multi(wq, wk, wv, x, q, k, v, lanes, act);
    std::vector<float> q_ref(lanes * d), k_ref(lanes * kv), v_ref(lanes * kv);
    ActivationBatchInt8 act_ref;
    wq.matvec_multi(x, q_ref, lanes, act_ref);
    wk.matvec_multi(x, k_ref, lanes, act_ref);
    wv.matvec_multi(x, v_ref, lanes, act_ref);
    // The fused path shares one activation quantization across Q/K/V;
    // quantization is deterministic, so results are bit-identical.
    for (std::size_t i = 0; i < q.size(); ++i) EXPECT_EQ(q[i], q_ref[i]) << i;
    for (std::size_t i = 0; i < k.size(); ++i) EXPECT_EQ(k[i], k_ref[i]) << i;
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], v_ref[i]) << i;
  }
}

TEST(WeightMatrixTest, StorageShrinksWithPrecision) {
  Rng rng(14);
  const std::size_t out_f = 64, in_f = 128;
  auto w = random_weights(out_f * in_f, rng);
  const auto f32 = WeightMatrix::create(w, out_f, in_f, DType::kF32);
  const auto f16 = WeightMatrix::create(w, out_f, in_f, DType::kF16);
  const auto i8 = WeightMatrix::create(w, out_f, in_f, DType::kI8);
  const auto i4 = WeightMatrix::create(w, out_f, in_f, DType::kI4);
  EXPECT_EQ(f32.storage_bytes(), out_f * in_f * 4);
  EXPECT_EQ(f16.storage_bytes(), out_f * in_f * 2);
  EXPECT_LT(i8.storage_bytes(), f16.storage_bytes());
  EXPECT_LT(i4.storage_bytes(), i8.storage_bytes());
}

TEST(WeightMatrixTest, OutlierColumnsReportedForInt8) {
  Rng rng(15);
  const std::size_t out_f = 16, in_f = 64;
  auto w = random_weights(out_f * in_f, rng, 0.05);
  w[10] = 3.0f;  // column 10 becomes an outlier under the 6-sigma rule
  const auto i8 = WeightMatrix::create(w, out_f, in_f, DType::kI8, 6.0f);
  EXPECT_GE(i8.outlier_column_count(), 1u);
  const auto f16 = WeightMatrix::create(w, out_f, in_f, DType::kF16);
  EXPECT_EQ(f16.outlier_column_count(), 0u);
}

TEST(WeightMatrixTest, ShapeMismatchRejected) {
  std::vector<float> w(10, 0.0f);
  EXPECT_THROW(WeightMatrix::create(w, 3, 4, DType::kF32), ContractViolation);
}

}  // namespace
}  // namespace orinsim::quant
