#include "quant/weight_matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "tensor/kernels.h"

namespace orinsim::quant {
namespace {

std::vector<float> random_weights(std::size_t n, Rng& rng, double scale = 0.1) {
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, scale));
  return w;
}

class WeightMatrixParamTest : public ::testing::TestWithParam<DType> {};

TEST_P(WeightMatrixParamTest, MatvecCloseToFp32Reference) {
  Rng rng(11);
  const std::size_t out_f = 40, in_f = 64;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  auto x = random_weights(in_f, rng, 1.0);
  std::vector<float> out(out_f), ref(out_f);
  wm.matvec(x, out);
  kernels::matvec(w, x, ref, out_f, in_f);
  // Tolerance scales with precision.
  double tol = 1e-4;
  if (GetParam() == DType::kF16) tol = 5e-3;
  if (GetParam() == DType::kI8) tol = 5e-2;
  if (GetParam() == DType::kI4) tol = 0.4;
  for (std::size_t r = 0; r < out_f; ++r) EXPECT_NEAR(out[r], ref[r], tol);
}

TEST_P(WeightMatrixParamTest, MatmulMatchesPerTokenMatvec) {
  Rng rng(12);
  const std::size_t out_f = 24, in_f = 32, tokens = 5;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  auto x = random_weights(tokens * in_f, rng, 1.0);
  std::vector<float> y(tokens * out_f), y_ref(tokens * out_f);
  wm.matmul(x, y, tokens);
  for (std::size_t t = 0; t < tokens; ++t) {
    wm.matvec(std::span<const float>(x.data() + t * in_f, in_f),
              std::span<float>(y_ref.data() + t * out_f, out_f));
  }
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-5f);
}

TEST_P(WeightMatrixParamTest, DequantizeRowCloseToSource) {
  Rng rng(13);
  const std::size_t out_f = 8, in_f = 32;
  auto w = random_weights(out_f * in_f, rng);
  const WeightMatrix wm = WeightMatrix::create(w, out_f, in_f, GetParam());
  std::vector<float> rec(in_f);
  double tol = 1e-7;
  if (GetParam() == DType::kF16) tol = 1e-3;
  if (GetParam() == DType::kI8) tol = 5e-3;
  if (GetParam() == DType::kI4) tol = 5e-2;
  for (std::size_t r = 0; r < out_f; ++r) {
    wm.dequantize_row(r, rec);
    for (std::size_t c = 0; c < in_f; ++c) EXPECT_NEAR(rec[c], w[r * in_f + c], tol);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPrecisions, WeightMatrixParamTest,
                         ::testing::Values(DType::kF32, DType::kF16, DType::kI8,
                                           DType::kI4),
                         [](const auto& info) { return dtype_name(info.param); });

TEST(WeightMatrixTest, StorageShrinksWithPrecision) {
  Rng rng(14);
  const std::size_t out_f = 64, in_f = 128;
  auto w = random_weights(out_f * in_f, rng);
  const auto f32 = WeightMatrix::create(w, out_f, in_f, DType::kF32);
  const auto f16 = WeightMatrix::create(w, out_f, in_f, DType::kF16);
  const auto i8 = WeightMatrix::create(w, out_f, in_f, DType::kI8);
  const auto i4 = WeightMatrix::create(w, out_f, in_f, DType::kI4);
  EXPECT_EQ(f32.storage_bytes(), out_f * in_f * 4);
  EXPECT_EQ(f16.storage_bytes(), out_f * in_f * 2);
  EXPECT_LT(i8.storage_bytes(), f16.storage_bytes());
  EXPECT_LT(i4.storage_bytes(), i8.storage_bytes());
}

TEST(WeightMatrixTest, OutlierColumnsReportedForInt8) {
  Rng rng(15);
  const std::size_t out_f = 16, in_f = 64;
  auto w = random_weights(out_f * in_f, rng, 0.05);
  w[10] = 3.0f;  // column 10 becomes an outlier under the 6-sigma rule
  const auto i8 = WeightMatrix::create(w, out_f, in_f, DType::kI8, 6.0f);
  EXPECT_GE(i8.outlier_column_count(), 1u);
  const auto f16 = WeightMatrix::create(w, out_f, in_f, DType::kF16);
  EXPECT_EQ(f16.outlier_column_count(), 0u);
}

TEST(WeightMatrixTest, ShapeMismatchRejected) {
  std::vector<float> w(10, 0.0f);
  EXPECT_THROW(WeightMatrix::create(w, 3, 4, DType::kF32), ContractViolation);
}

}  // namespace
}  // namespace orinsim::quant
