#include "quant/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "tensor/simd.h"

namespace orinsim::quant {
namespace {

// Forces a kernel level for one scope (same pattern as simd_test).
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedLevel() { simd::set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level prev_;
};

std::vector<float> random_weights(std::size_t n, Rng& rng, double scale = 0.1) {
  std::vector<float> w(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, scale));
  return w;
}

// Decodes canonical packed nibble c of row r: byte (r*cols+c)/2, low nibble
// for even c, high for odd, sign-extended from 4 bits.
int canonical_int4_code(const BlockInt4& q, std::size_t r, std::size_t c) {
  const std::uint8_t byte = q.packed[(r * q.cols + c) / 2];
  const std::uint8_t nib = (c % 2 == 0) ? (byte & 0x0F) : (byte >> 4);
  return nib >= 8 ? static_cast<int>(nib) - 16 : static_cast<int>(nib);
}

TEST(Int8Test, RoundTripErrorBounded) {
  Rng rng(1);
  const std::size_t rows = 16, cols = 64;
  auto w = random_weights(rows * cols, rng);
  const RowwiseInt8 q = quantize_rowwise_int8(w, rows, cols, 0.0f);
  std::vector<float> rec(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, rec);
    float absmax = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      absmax = std::max(absmax, std::fabs(w[r * cols + c]));
    }
    // Rounding error <= scale/2 = absmax / 254.
    for (std::size_t c = 0; c < cols; ++c) {
      EXPECT_LE(std::fabs(rec[c] - w[r * cols + c]), absmax / 254.0f + 1e-7f);
    }
  }
}

TEST(Int8Test, OutlierColumnsExactInFp16) {
  Rng rng(2);
  const std::size_t rows = 8, cols = 32;
  auto w = random_weights(rows * cols, rng, 0.05);
  // Plant outliers in column 5.
  for (std::size_t r = 0; r < rows; ++r) w[r * cols + 5] = 4.0f + static_cast<float>(r);
  const RowwiseInt8 q = quantize_rowwise_int8(w, rows, cols, 1.0f);
  ASSERT_EQ(q.outlier_cols.size(), 1u);
  EXPECT_EQ(q.outlier_cols[0], 5u);
  std::vector<float> rec(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, rec);
    // fp16 stores these values with ~0.1% error.
    EXPECT_NEAR(rec[5], w[r * cols + 5], 0.01f);
  }
}

TEST(Int8Test, OutliersDoNotPolluteRowScale) {
  Rng rng(3);
  const std::size_t rows = 4, cols = 32;
  auto w = random_weights(rows * cols, rng, 0.05);
  w[7] = 100.0f;  // enormous outlier in row 0
  const RowwiseInt8 with_outliers = quantize_rowwise_int8(w, rows, cols, 1.0f);
  const RowwiseInt8 without = quantize_rowwise_int8(w, rows, cols, 0.0f);
  // With the outlier absorbed into fp16, the int8 scale stays small and the
  // other columns keep precision; without, the scale explodes.
  EXPECT_LT(with_outliers.row_scale[0], without.row_scale[0] / 10.0f);
}

TEST(Int8Test, MatvecMatchesDequantizedReference) {
  Rng rng(4);
  const std::size_t rows = 48, cols = 64;
  auto w = random_weights(rows * cols, rng);
  w[3] = 2.5f;  // trigger the outlier path too
  const RowwiseInt8 q = quantize_rowwise_int8(w, rows, cols, 0.5f);
  auto x = random_weights(cols, rng, 1.0);
  std::vector<float> out(rows), ref(rows, 0.0f), rec(cols);
  matvec_int8(q, x, out);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, rec);
    for (std::size_t c = 0; c < cols; ++c) ref[r] += rec[c] * x[c];
  }
  // Activation quantization adds error ~ |x|max/127 per term.
  for (std::size_t r = 0; r < rows; ++r) EXPECT_NEAR(out[r], ref[r], 0.05f);
}

TEST(Int8Test, StorageBytesAccounting) {
  Rng rng(5);
  const std::size_t rows = 10, cols = 32;
  auto w = random_weights(rows * cols, rng);
  const RowwiseInt8 q = quantize_rowwise_int8(w, rows, cols, 0.0f);
  EXPECT_EQ(q.storage_bytes(), rows * cols * 1 + rows * sizeof(float));
}

TEST(Int8Test, ZeroMatrixHandled) {
  std::vector<float> w(8 * 32, 0.0f);
  const RowwiseInt8 q = quantize_rowwise_int8(w, 8, 32, 0.0f);
  std::vector<float> rec(32);
  dequantize_row(q, 0, rec);
  for (float v : rec) EXPECT_EQ(v, 0.0f);
  std::vector<float> x(32, 1.0f), out(8);
  matvec_int8(q, x, out);
  for (float v : out) EXPECT_EQ(v, 0.0f);
}

TEST(Int4Test, RoundTripErrorBounded) {
  Rng rng(6);
  const std::size_t rows = 8, cols = 64;
  auto w = random_weights(rows * cols, rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  std::vector<float> rec(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, rec);
    for (std::size_t b = 0; b < cols / kInt4Block; ++b) {
      float absmax = 0.0f;
      for (std::size_t i = 0; i < kInt4Block; ++i) {
        absmax = std::max(absmax, std::fabs(w[r * cols + b * kInt4Block + i]));
      }
      for (std::size_t i = 0; i < kInt4Block; ++i) {
        // Rounding error is scale/2 = absmax/16, except at +absmax where the
        // symmetric code range [-8, 7] clamps and the error reaches absmax/8.
        const std::size_t c = b * kInt4Block + i;
        EXPECT_LE(std::fabs(rec[c] - w[r * cols + c]), absmax / 8.0f + 5e-3f);
      }
    }
  }
}

TEST(Int4Test, CodesStayInSignedRange) {
  // Values at +absmax must clamp to 7 (not wrap); -absmax encodes as -8.
  std::vector<float> w(kInt4Block, 0.0f);
  w[0] = 1.0f;
  w[1] = -1.0f;
  const BlockInt4 q = quantize_block_int4(w, 1, kInt4Block);
  std::vector<float> rec(kInt4Block);
  dequantize_row(q, 0, rec);
  EXPECT_GT(rec[0], 0.8f);
  EXPECT_LT(rec[1], -0.8f);
}

TEST(Int4Test, MatvecMatchesDequantizedReference) {
  Rng rng(7);
  const std::size_t rows = 20, cols = 96;
  auto w = random_weights(rows * cols, rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  auto x = random_weights(cols, rng, 1.0);
  std::vector<float> out(rows), rec(cols);
  std::vector<float> refs(rows, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, rec);
    for (std::size_t c = 0; c < cols; ++c) refs[r] += rec[c] * x[c];
  }
  {
    // kScalar runs the float reference path: only fp32 rounding vs the
    // dequantized-weight reference.
    ScopedLevel scalar(simd::Level::kScalar);
    matvec_int4(q, x, out);
    for (std::size_t r = 0; r < rows; ++r) EXPECT_NEAR(out[r], refs[r], 1e-3f);
  }
  {
    // kNative runs the packed kernel against int8-QUANTIZED activations
    // (documented numerics contract in quantize.h), so it carries the same
    // activation-quantization tolerance as the int8 matvec test.
    ScopedLevel native(simd::Level::kNative);
    matvec_int4(q, x, out);
    for (std::size_t r = 0; r < rows; ++r) EXPECT_NEAR(out[r], refs[r], 0.05f);
  }
}

TEST(Int4Test, AllZeroBlockQuantizesExactly) {
  // An all-zero block stores the sentinel scale 1.0 (avoiding 0/0 in encode)
  // and all-zero codes: dequantization and both matvec paths return exact
  // zeros. Mix a zero block with a nonzero one so block independence shows.
  std::vector<float> w(2 * kInt4Block, 0.0f);
  for (std::size_t i = kInt4Block; i < 2 * kInt4Block; ++i) {
    w[i] = 0.25f * static_cast<float>(i % 5);
  }
  const BlockInt4 q = quantize_block_int4(w, 1, 2 * kInt4Block);
  EXPECT_EQ(fp16_to_float(q.block_scale[0]), 1.0f);
  std::vector<float> rec(2 * kInt4Block);
  dequantize_row(q, 0, rec);
  for (std::size_t i = 0; i < kInt4Block; ++i) EXPECT_EQ(rec[i], 0.0f);
  std::vector<float> x(2 * kInt4Block, 0.0f), out(1);
  for (std::size_t i = 0; i < kInt4Block; ++i) x[i] = 1.0f;  // zero block only
  {
    ScopedLevel scalar(simd::Level::kScalar);
    matvec_int4(q, x, out);
    EXPECT_EQ(out[0], 0.0f);
  }
  {
    ScopedLevel native(simd::Level::kNative);
    matvec_int4(q, x, out);
    EXPECT_EQ(out[0], 0.0f);
  }
}

TEST(Int4Test, ClampSaturatesInPackedCodes) {
  // +absmax wants code round(8) -> clamps to +7; -absmax encodes exactly as
  // -8. Verified on the packed nibbles themselves, not via dequantization.
  std::vector<float> w(kInt4Block, 0.0f);
  w[0] = 2.0f;   // +absmax -> clamp to 7
  w[1] = -2.0f;  // -absmax -> -8
  w[2] = 1.0f;   // absmax/2 -> round(4) = 4
  const BlockInt4 q = quantize_block_int4(w, 1, kInt4Block);
  EXPECT_EQ(canonical_int4_code(q, 0, 0), 7);
  EXPECT_EQ(canonical_int4_code(q, 0, 1), -8);
  EXPECT_EQ(canonical_int4_code(q, 0, 2), 4);
  for (std::size_t c = 3; c < kInt4Block; ++c) EXPECT_EQ(canonical_int4_code(q, 0, c), 0);
}

TEST(Int4Test, PackedLayoutRoundTripsThroughDequantRow) {
  // dequant_row must agree with a by-hand decode of the packed bytes
  // (low nibble = even column, high nibble = odd column, 4-bit two's
  // complement, times the block's fp16 scale) — pins the storage layout.
  Rng rng(17);
  const std::size_t rows = 3, cols = 64;
  auto w = random_weights(rows * cols, rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  std::vector<float> rec(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    dequantize_row(q, r, rec);
    for (std::size_t c = 0; c < cols; ++c) {
      const float scale = fp16_to_float(q.block_scale[r * q.blocks_per_row + c / kInt4Block]);
      EXPECT_EQ(rec[c], static_cast<float>(canonical_int4_code(q, r, c)) * scale)
          << "r=" << r << " c=" << c;
    }
  }
}

TEST(Int4Test, KernelMirrorMatchesCanonicalCodes) {
  // The nibble-plane packed_kernel mirror must hold exactly the canonical
  // codes (+8 bias, code j and j+16 sharing byte j) and scale_f32 the fp16
  // scale widened — the AVX2 kernel reads only these.
  Rng rng(18);
  const std::size_t rows = 2, cols = 96;
  auto w = random_weights(rows * cols, rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  ASSERT_EQ(q.packed_kernel.size(), rows * q.blocks_per_row * simd::kInt4KernelBlockBytes);
  ASSERT_EQ(q.scale_f32.size(), q.block_scale.size());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t b = 0; b < q.blocks_per_row; ++b) {
      const std::size_t idx = r * q.blocks_per_row + b;
      EXPECT_EQ(q.scale_f32[idx], fp16_to_float(q.block_scale[idx]));
      const std::uint8_t* blk = q.packed_kernel.data() + idx * simd::kInt4KernelBlockBytes;
      for (std::size_t j = 0; j < simd::kInt4KernelBlockBytes; ++j) {
        const int lo = canonical_int4_code(q, r, b * kInt4Block + j) + 8;
        const int hi = canonical_int4_code(q, r, b * kInt4Block + 16 + j) + 8;
        EXPECT_EQ(blk[j] & 0x0F, lo);
        EXPECT_EQ(blk[j] >> 4, hi);
      }
    }
  }
}

TEST(Int4Test, MatvecWithActSharedAcrossCallsMatchesSelfQuantized) {
  // The act-taking overload with a pre-quantized activation must equal the
  // x-only overload bit for bit at both levels (the fused QKV path relies on
  // activation quantization being deterministic).
  Rng rng(19);
  const std::size_t rows = 12, cols = 64;
  auto w = random_weights(rows * cols, rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  auto x = random_weights(cols, rng, 1.0);
  std::vector<float> a(rows), b(rows);
  for (const simd::Level level : {simd::Level::kScalar, simd::Level::kNative}) {
    ScopedLevel scoped(level);
    ActivationInt8 act;
    quantize_activation_int8(x, act);
    matvec_int4(q, x, a);
    matvec_int4(q, x, act, b);
    for (std::size_t r = 0; r < rows; ++r) EXPECT_EQ(a[r], b[r]);
  }
}

TEST(Int4Test, RequiresBlockAlignedCols) {
  std::vector<float> w(2 * 33, 0.0f);
  EXPECT_THROW(quantize_block_int4(w, 2, 33), ContractViolation);
}

TEST(Int4Test, StorageIsHalfByteIsh) {
  Rng rng(8);
  const std::size_t rows = 4, cols = 128;
  auto w = random_weights(rows * cols, rng);
  const BlockInt4 q = quantize_block_int4(w, rows, cols);
  EXPECT_EQ(q.packed.size(), rows * cols / 2);
  EXPECT_EQ(q.block_scale.size(), rows * cols / kInt4Block);
}

TEST(QuantErrorTest, OrderingAcrossPrecisions) {
  // INT4 must lose more than INT8 on the same matrix; FP16 less than both.
  Rng rng(9);
  const std::size_t rows = 32, cols = 128;
  auto w = random_weights(rows * cols, rng);
  auto reconstruct_int8 = [&] {
    const RowwiseInt8 q = quantize_rowwise_int8(w, rows, cols, 0.0f);
    std::vector<float> rec(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      dequantize_row(q, r, std::span<float>(rec.data() + r * cols, cols));
    }
    return rec;
  };
  auto reconstruct_int4 = [&] {
    const BlockInt4 q = quantize_block_int4(w, rows, cols);
    std::vector<float> rec(rows * cols);
    for (std::size_t r = 0; r < rows; ++r) {
      dequantize_row(q, r, std::span<float>(rec.data() + r * cols, cols));
    }
    return rec;
  };
  auto f16 = quantize_fp16(w);
  std::vector<float> rec16(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) rec16[i] = fp16_to_float(f16[i]);

  const QuantError e16 = measure_error(w, rec16);
  const QuantError e8 = measure_error(w, reconstruct_int8());
  const QuantError e4 = measure_error(w, reconstruct_int4());
  EXPECT_LT(e16.rmse, e8.rmse);
  EXPECT_LT(e8.rmse, e4.rmse);
  EXPECT_LT(e16.relative_fro, 0.001);
  EXPECT_LT(e8.relative_fro, 0.01);
  EXPECT_LT(e4.relative_fro, 0.1);
}

}  // namespace
}  // namespace orinsim::quant
