#include "eval/perplexity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/rng.h"
#include "tensor/simd.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"

namespace orinsim::eval {
namespace {

TransformerConfig small_config(std::size_t vocab) {
  TransformerConfig c;
  c.vocab = vocab;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 128;
  c.validate();
  return c;
}

std::vector<TokenId> bigram_stream(std::size_t pairs, std::size_t vocab, Rng& rng) {
  std::vector<TokenId> out;
  const std::size_t half = vocab / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<TokenId>(rng.uniform_index(half) * 2);
    out.push_back(a);
    out.push_back(a + 1);
  }
  return out;
}

TEST(PerplexityTest, UntrainedModelNearUniform) {
  const std::size_t vocab = 64;
  auto master = MasterWeights::init_random(small_config(vocab), 3);
  Model model(master, DType::kF32);
  Rng rng(1);
  std::vector<TokenId> tokens;
  for (int i = 0; i < 300; ++i) tokens.push_back(static_cast<TokenId>(rng.uniform_index(vocab)));
  PerplexityConfig pc;
  pc.window = 64;
  pc.stride = 32;
  const PerplexityResult r = evaluate_perplexity(model, tokens, pc);
  // Small random logits: perplexity within a factor ~2 of the vocab size.
  EXPECT_GT(r.perplexity, 30.0);
  EXPECT_LT(r.perplexity, 130.0);
}

TEST(PerplexityTest, TrainedModelBeatsUnigram) {
  const std::size_t vocab = 32;
  Rng rng(2);
  const auto tokens = bigram_stream(1500, vocab, rng);
  auto master = MasterWeights::init_random(small_config(vocab), 5);
  train::TrainConfig tc;
  tc.epochs = 6;
  tc.max_tokens = tokens.size();
  train::train_readout(*master, tokens, tc);
  Model model(master, DType::kF32);
  PerplexityConfig pc;
  pc.window = 64;
  pc.stride = 32;
  pc.max_tokens = 600;
  const PerplexityResult r = evaluate_perplexity(model, tokens, pc);
  const double unigram_ppl = std::exp(train::unigram_cross_entropy(tokens, vocab));
  EXPECT_LT(r.perplexity, unigram_ppl * 0.8);
}

TEST(PerplexityTest, QuantizationOrdering) {
  // Table 3's shape: FP32 == FP16 <= INT8 < INT4.
  const std::size_t vocab = 32;
  Rng rng(4);
  const auto tokens = bigram_stream(1200, vocab, rng);
  auto master = MasterWeights::init_random(small_config(vocab), 7);
  train::TrainConfig tc;
  tc.epochs = 5;
  tc.max_tokens = tokens.size();
  train::train_readout(*master, tokens, tc);

  PerplexityConfig pc;
  pc.window = 64;
  pc.stride = 32;
  pc.max_tokens = 500;
  std::map<DType, double> ppl;
  for (DType dt : {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    Model model(master, dt);
    ppl[dt] = evaluate_perplexity(model, tokens, pc).perplexity;
  }
  EXPECT_NEAR(ppl[DType::kF16] / ppl[DType::kF32], 1.0, 0.02);
  EXPECT_GE(ppl[DType::kI8], ppl[DType::kF32] * 0.999);
  EXPECT_GT(ppl[DType::kI4], ppl[DType::kI8]);
}

TEST(PerplexityTest, QuantizationOrderingHoldsUnderNativeKernels) {
  // Table 3's pin must survive the AVX2/FMA kernel level: the accuracy story
  // is a model property, not a kernel-dispatch artifact. Native fp32
  // perplexity may differ from scalar only by FMA reassociation noise.
  if (!simd::native_available()) GTEST_SKIP() << "no AVX2/FMA on this host";
  const std::size_t vocab = 32;
  Rng rng(4);
  const auto tokens = bigram_stream(1200, vocab, rng);
  auto master = MasterWeights::init_random(small_config(vocab), 7);
  train::TrainConfig tc;
  tc.epochs = 5;
  tc.max_tokens = tokens.size();
  train::train_readout(*master, tokens, tc);

  PerplexityConfig pc;
  pc.window = 64;
  pc.stride = 32;
  pc.max_tokens = 500;

  const simd::Level prev = simd::active_level();
  simd::set_level(simd::Level::kScalar);
  Model f32_scalar(master, DType::kF32);
  const double ppl_scalar = evaluate_perplexity(f32_scalar, tokens, pc).perplexity;

  simd::set_level(simd::Level::kNative);
  std::map<DType, double> ppl;
  for (DType dt : {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    Model model(master, dt);
    ppl[dt] = evaluate_perplexity(model, tokens, pc).perplexity;
  }
  simd::set_level(prev);

  // Pin: native fp32 tracks the scalar reference within 1%.
  EXPECT_NEAR(ppl[DType::kF32] / ppl_scalar, 1.0, 0.01);
  // Table 3 ordering (FP32 == FP16 <= INT8 < INT4) holds at native too.
  EXPECT_NEAR(ppl[DType::kF16] / ppl[DType::kF32], 1.0, 0.02);
  EXPECT_GE(ppl[DType::kI8], ppl[DType::kF32] * 0.999);
  EXPECT_GT(ppl[DType::kI4], ppl[DType::kI8]);
}

TEST(PerplexityTest, WindowingCountsEveryTokenOnce) {
  const std::size_t vocab = 16;
  auto master = MasterWeights::init_random(small_config(vocab), 9);
  Model model(master, DType::kF32);
  Rng rng(5);
  std::vector<TokenId> tokens;
  for (int i = 0; i < 200; ++i) tokens.push_back(static_cast<TokenId>(rng.uniform_index(vocab)));
  PerplexityConfig pc;
  pc.window = 64;
  pc.stride = 32;
  const PerplexityResult r = evaluate_perplexity(model, tokens, pc);
  // All tokens except the very first are predicted exactly once.
  EXPECT_EQ(r.scored_tokens, tokens.size() - 1);
  EXPECT_GT(r.windows, 1u);
}

TEST(PerplexityTest, StrideEqualsWindowNoOverlap) {
  const std::size_t vocab = 16;
  auto master = MasterWeights::init_random(small_config(vocab), 11);
  Model model(master, DType::kF32);
  std::vector<TokenId> tokens(100, 3);
  PerplexityConfig pc;
  pc.window = 50;
  pc.stride = 50;
  const PerplexityResult r = evaluate_perplexity(model, tokens, pc);
  EXPECT_GT(r.windows, 1u);
  EXPECT_GT(r.scored_tokens, 90u);
}

TEST(PerplexityTest, ConstantStreamIsEasilyLearnedByContext) {
  // A constant token stream: even an untrained transformer body gives the
  // readout trainer a trivially learnable signal.
  const std::size_t vocab = 16;
  auto master = MasterWeights::init_random(small_config(vocab), 13);
  std::vector<TokenId> tokens(400, 7);
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.max_tokens = tokens.size();
  train::train_readout(*master, tokens, tc);
  Model model(master, DType::kF32);
  PerplexityConfig pc;
  pc.window = 64;
  pc.stride = 64;
  const PerplexityResult r = evaluate_perplexity(model, tokens, pc);
  // Weight decay keeps the head from absolute certainty; anything below 2
  // (vs the vocab-size-16 uniform floor) means the structure was learned.
  EXPECT_LT(r.perplexity, 2.0);
}

TEST(PerplexityTest, InvalidConfigsRejected) {
  const std::size_t vocab = 16;
  auto master = MasterWeights::init_random(small_config(vocab), 15);
  Model model(master, DType::kF32);
  std::vector<TokenId> tokens(100, 1);
  PerplexityConfig pc;
  pc.window = 1;
  EXPECT_THROW(evaluate_perplexity(model, tokens, pc), ContractViolation);
  pc = PerplexityConfig{};
  pc.stride = pc.window + 1;
  EXPECT_THROW(evaluate_perplexity(model, tokens, pc), ContractViolation);
  pc = PerplexityConfig{};
  pc.window = 256;  // exceeds model max_seq (128)
  EXPECT_THROW(evaluate_perplexity(model, tokens, pc), ContractViolation);
}

}  // namespace
}  // namespace orinsim::eval
