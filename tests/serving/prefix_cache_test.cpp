// Cross-request radix prefix cache: radix-tree edge cases over a small paged
// KVCache (empty prompt, exact duplicate, mid-block prefix, divergence at
// token 0, LRU eviction, eviction racing a concurrent admit), then the
// engine-level acceptance pins — greedy outputs bit-identical with the cache
// on or off across the weight-precision x KV-storage grid, cache-free traces
// free of prefix events, counter conservation off the timeline, and
// allocator exhaustion draining the cache before anything is preempted.
#include "serving/prefix_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "model/kv_cache.h"
#include "model/transformer.h"
#include "serving/engine.h"
#include "trace/export.h"
#include "workload/corpus.h"

namespace orinsim::serving {
namespace {

// ---------------------------------------------------------------------------
// Radix-tree unit tests over a bare paged KVCache (no model, no engine)
// ---------------------------------------------------------------------------

TransformerConfig radix_test_config() {
  TransformerConfig c;
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.validate();
  return c;
}

KVCacheOptions radix_pool(std::size_t block_tokens, std::size_t max_blocks) {
  KVCacheOptions o;
  o.layout = KVLayout::kPaged;
  o.block_tokens = block_tokens;
  o.max_blocks = max_blocks;
  return o;
}

// Appends `count` committed positions to sequence b (both layers), with a
// distinguishable fill so attached prefixes can be checked for aliasing.
void fill_sequence(KVCache& cache, std::size_t b, std::size_t count, float base) {
  std::vector<float> row(cache.kv_dim());
  for (std::size_t i = 0; i < count; ++i) {
    std::fill(row.begin(), row.end(), base + static_cast<float>(i));
    for (std::size_t l = 0; l < 2; ++l) cache.append(l, b, row, row);
    cache.commit(b, 1);
  }
}

std::vector<TokenId> make_prompt(std::size_t count, TokenId first) {
  std::vector<TokenId> p(count);
  for (std::size_t i = 0; i < count; ++i) p[i] = first + static_cast<TokenId>(i);
  return p;
}

// Builds a committed `count`-token sequence on lane b, inserts its prompt
// into the cache, and retires the lane (insert-on-retire order).
void insert_retired(KVCache& cache, PrefixCache& pc, std::size_t b,
                    const std::vector<TokenId>& prompt, float base) {
  fill_sequence(cache, b, prompt.size(), base);
  pc.insert(prompt, cache.block_table(b));
  cache.free_sequence(b);
}

TEST(PrefixCacheRadixTest, EmptyPromptAndSubBlockInsertAreNoOps) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);

  // Insert shorter than one block caches nothing.
  fill_sequence(cache, 0, 3, 1.0f);
  pc.insert(make_prompt(3, 10), cache.block_table(0));
  EXPECT_EQ(pc.stats().cached_blocks, 0u);
  cache.free_sequence(0);
  EXPECT_EQ(cache.blocks_in_use(), 0u);

  // An empty prompt can never match, even with the tree populated.
  insert_retired(cache, pc, 0, make_prompt(8, 10), 1.0f);
  const PrefixMatch m = pc.match_and_retain({}, 4, 0);
  EXPECT_FALSE(m.hit());
  EXPECT_TRUE(m.blocks.empty());
  const PrefixCacheStats s = pc.stats();
  EXPECT_EQ(s.lookups, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 0u);
}

TEST(PrefixCacheRadixTest, ExactDuplicateAttachesFullChainBitExact) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  const auto prompt = make_prompt(8, 10);

  insert_retired(cache, pc, 0, prompt, 5.0f);
  // The tree's references keep both blocks alive past free_sequence.
  EXPECT_EQ(cache.blocks_in_use(), 2u);
  EXPECT_EQ(cache.cached_blocks(), 2u);

  PrefixMatch m = pc.match_and_retain(prompt, 4, prompt.size());
  ASSERT_TRUE(m.hit());
  EXPECT_EQ(m.tokens, 8u);
  ASSERT_EQ(m.blocks.size(), 2u);

  // Adopt the caller references into an empty lane: the rows read back the
  // exact values the retired sequence wrote (shared, not copied).
  cache.attach_prefix(1, m.blocks, m.tokens);
  EXPECT_EQ(cache.seq_len(1), 8u);
  EXPECT_EQ(cache.blocks_in_use(), 2u);
  std::vector<float> scratch(cache.kv_dim());
  EXPECT_EQ(cache.key(0, 1, 0, scratch)[0], 5.0f);
  EXPECT_EQ(cache.key(1, 1, 7, scratch)[0], 12.0f);

  cache.free_sequence(1);
  EXPECT_EQ(cache.blocks_in_use(), 2u);  // tree still holds its own refs

  const PrefixCacheStats s = pc.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.hit_tokens, 8u);
  EXPECT_EQ(s.bytes_saved, 2u * cache.block_bytes());
}

TEST(PrefixCacheRadixTest, MaxTokensCapAndGranularityTrimMatches) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  const auto prompt = make_prompt(12, 10);
  insert_retired(cache, pc, 0, prompt, 1.0f);

  // Cap at prompt-1 (the engine's must-sample-one-token rule): a 12-token
  // chain trims to 8.
  PrefixMatch capped = pc.match_and_retain(prompt, 4, prompt.size() - 1);
  EXPECT_EQ(capped.tokens, 8u);
  for (std::size_t b : capped.blocks) cache.release_block(b);

  // Granularity 8 (a 2-block prefill chunk): 3 matched blocks trim to 2.
  PrefixMatch aligned = pc.match_and_retain(prompt, 8, prompt.size());
  EXPECT_EQ(aligned.tokens, 8u);
  for (std::size_t b : aligned.blocks) cache.release_block(b);

  // Granularity must be a positive multiple of the block size.
  EXPECT_THROW(pc.match_and_retain(prompt, 6, prompt.size()), ContractViolation);
}

TEST(PrefixCacheRadixTest, PrefixEndingMidBlockSharesOnlyFullBlocks) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);

  // 10 committed tokens: only the 2 full blocks (8 tokens) enter the tree.
  const auto prompt = make_prompt(10, 10);
  insert_retired(cache, pc, 0, prompt, 1.0f);
  EXPECT_EQ(pc.stats().cached_blocks, 2u);
  EXPECT_EQ(cache.blocks_in_use(), 2u);  // the partial third block was freed

  // A prompt sharing 6 tokens diverges inside block 1: one block matches.
  auto mid = prompt;
  mid[6] = 99;
  const PrefixMatch m = pc.match_and_retain(mid, 4, mid.size());
  EXPECT_EQ(m.tokens, 4u);
  for (std::size_t b : m.blocks) cache.release_block(b);
}

TEST(PrefixCacheRadixTest, DivergenceAtTokenZeroMisses) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  insert_retired(cache, pc, 0, make_prompt(8, 10), 1.0f);

  auto diverged = make_prompt(8, 10);
  diverged[0] = 77;
  const PrefixMatch m = pc.match_and_retain(diverged, 4, diverged.size());
  EXPECT_FALSE(m.hit());
  const PrefixCacheStats s = pc.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hit_tokens, 0u);
}

TEST(PrefixCacheRadixTest, InsertDeduplicatesAgainstResidentPaths) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  const auto prompt = make_prompt(8, 10);

  insert_retired(cache, pc, 0, prompt, 1.0f);
  // A second retirement with the same prompt owns different physical blocks;
  // the tree keeps the resident path and lets the duplicates be freed.
  insert_retired(cache, pc, 1, prompt, 2.0f);

  const PrefixCacheStats s = pc.stats();
  EXPECT_EQ(s.inserted_blocks, 2u);
  EXPECT_EQ(s.cached_blocks, 2u);
  EXPECT_EQ(cache.blocks_in_use(), 2u);
}

TEST(PrefixCacheRadixTest, LruEvictionSkipsBlocksHeldBySequences) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  const auto prompt_a = make_prompt(8, 10);
  const auto prompt_b = make_prompt(8, 50);  // diverges at token 0
  insert_retired(cache, pc, 0, prompt_a, 1.0f);
  insert_retired(cache, pc, 0, prompt_b, 2.0f);
  EXPECT_EQ(pc.stats().cached_blocks, 4u);

  // Touch A, then hold caller references on its chain (a live admit).
  PrefixMatch held = pc.match_and_retain(prompt_a, 4, prompt_a.size());
  ASSERT_EQ(held.blocks.size(), 2u);

  // Only B is reclaimable: its leaf (least recently used) goes first, then
  // its root block; A's chain is pinned by the held references.
  EXPECT_TRUE(pc.evict_lru_leaf());
  EXPECT_TRUE(pc.evict_lru_leaf());
  EXPECT_FALSE(pc.evict_lru_leaf());
  PrefixCacheStats s = pc.stats();
  EXPECT_EQ(s.evicted_blocks, 2u);
  EXPECT_EQ(s.cached_blocks, 2u);
  EXPECT_FALSE(pc.match_and_retain(prompt_b, 4, prompt_b.size()).hit());
  EXPECT_TRUE(pc.match_and_retain(prompt_a, 4, prompt_a.size()).hit());
  // Release the second match's references too (two holders now).
  for (std::size_t b : held.blocks) cache.release_block(b);
  for (std::size_t b : held.blocks) cache.release_block(b);

  // With the holders gone, the batch evictor drains the rest of the tree and
  // the allocator's cached-block audit returns to zero.
  EXPECT_EQ(pc.evict(16), 2u);
  EXPECT_EQ(pc.stats().cached_blocks, 0u);
  EXPECT_EQ(cache.cached_blocks(), 0u);
  EXPECT_EQ(cache.blocks_in_use(), 0u);
}

TEST(PrefixCacheRadixTest, MaxBlocksCapsTreeResidency) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache, /*max_blocks=*/1);
  insert_retired(cache, pc, 0, make_prompt(8, 10), 1.0f);
  // Only the first block entered the tree; the second was freed with the lane.
  EXPECT_EQ(pc.stats().cached_blocks, 1u);
  EXPECT_EQ(cache.blocks_in_use(), 1u);
  const PrefixMatch m = pc.match_and_retain(make_prompt(8, 10), 4, 8);
  EXPECT_EQ(m.tokens, 4u);
  for (std::size_t b : m.blocks) cache.release_block(b);
}

TEST(PrefixCacheRadixTest, ClearReleasesEveryTreeReference) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  insert_retired(cache, pc, 0, make_prompt(12, 10), 1.0f);
  insert_retired(cache, pc, 0, make_prompt(8, 60), 2.0f);
  EXPECT_GT(cache.blocks_in_use(), 0u);
  pc.clear();
  EXPECT_EQ(pc.stats().cached_blocks, 0u);
  EXPECT_EQ(cache.cached_blocks(), 0u);
  EXPECT_EQ(cache.blocks_in_use(), 0u);
}

// The TSan target: an eviction sweep racing a concurrent admit must never
// free a block between the ref-count probe and the retain. Thread 1 plays
// the admit path (match, hold, release); thread 2 plays the exhaustion hook
// (evict whatever is unreferenced). The cache mutex makes each step atomic;
// the allocator guards catch any double release or still-cached free.
TEST(PrefixCacheRadixTest, EvictionRacingConcurrentAdmitIsSafe) {
  const auto cfg = radix_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/32, radix_pool(4, 16));
  PrefixCache pc(cache);
  const auto prompt = make_prompt(8, 10);
  insert_retired(cache, pc, 0, prompt, 1.0f);

  std::thread admitter([&] {
    for (int i = 0; i < 400; ++i) {
      PrefixMatch m = pc.match_and_retain(prompt, 4, prompt.size());
      for (std::size_t b : m.blocks) cache.release_block(b);
    }
  });
  std::thread evictor([&] {
    for (int i = 0; i < 400; ++i) pc.evict_lru_leaf();
  });
  admitter.join();
  evictor.join();

  // Whatever interleaving happened, the books must balance: every cached
  // block is still tree-referenced, everything else went back to the pool.
  const PrefixCacheStats s = pc.stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_EQ(s.cached_blocks, cache.cached_blocks());
  EXPECT_EQ(cache.blocks_in_use(), s.cached_blocks);
  pc.clear();
  EXPECT_EQ(cache.blocks_in_use(), 0u);
}

// ---------------------------------------------------------------------------
// Engine-level acceptance: the functional backend under chat traffic
// ---------------------------------------------------------------------------

class PrefixCacheEngineTest : public ::testing::Test {
 protected:
  PrefixCacheEngineTest()
      : corpus_(workload::generate_corpus(workload::CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 400)),
        pool_(corpus_, tokenizer_, 256),
        master_(MasterWeights::init_random(
            make_nano_config("llama3", tokenizer_.vocab_size()), 17)) {}

  // Flooded chat traffic over two shared system prompts: the first admission
  // wave misses (insert-on-retire), later waves hit on the 32-token system
  // prefix — which is exactly one prefill chunk, so matches survive the
  // lcm(block_tokens=4, prefill_chunk=32) alignment trim.
  static FunctionalEngineConfig chat_config() {
    FunctionalEngineConfig cfg;
    cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
    cfg.arrivals.rate_rps = 1000.0;
    cfg.arrivals.total_requests = 8;
    cfg.seq = workload::SeqConfig{48, 40, 8};
    cfg.max_concurrency = 3;
    cfg.block_tokens = 4;
    cfg.chat.system_prompts = 2;
    cfg.chat.zipf_s = 1.2;
    cfg.chat.system_tokens = 32;
    cfg.chat.user_tokens = 8;
    return cfg;
  }

  workload::Corpus corpus_;
  Tokenizer tokenizer_;
  workload::PromptPool pool_;
  std::shared_ptr<MasterWeights> master_;
};

// The acceptance grid: every weight precision x both KV storages, cache on
// vs cache off, token streams bit-identical. The cache only skips prefill
// work it can replay exactly; it must never change a single sampled token.
TEST_F(PrefixCacheEngineTest, BitIdenticalAcrossPrecisionGridUnderChatTraffic) {
  for (DType dtype : {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    for (KVStorage storage : {KVStorage::kF32, KVStorage::kI8}) {
      FunctionalEngineConfig cfg = chat_config();
      cfg.kv_storage = storage;
      const EngineResult off = run_functional_continuous(master_, dtype, pool_, cfg);
      cfg.prefix_cache = true;
      const EngineResult on = run_functional_continuous(master_, dtype, pool_, cfg);

      const std::string label =
          std::string(dtype_name(dtype)) + (storage == KVStorage::kI8 ? "/kvI8" : "/kvF32");
      ASSERT_EQ(on.requests.size(), off.requests.size()) << label;
      for (std::size_t i = 0; i < off.requests.size(); ++i) {
        EXPECT_EQ(on.requests[i].prompt, off.requests[i].prompt) << label << " req " << i;
        EXPECT_EQ(on.requests[i].output, off.requests[i].output) << label << " req " << i;
      }
      // The shared system prompts must actually produce hits, or the grid
      // would vacuously pass on an idle cache.
      EXPECT_GT(on.prefix_cache.hits, 0u) << label;
      EXPECT_EQ(off.prefix_cache.lookups, 0u) << label;
    }
  }
}

TEST_F(PrefixCacheEngineTest, PooledDecodeBitIdenticalWithCache) {
  FunctionalEngineConfig cfg = chat_config();
  cfg.prefix_cache = true;
  const EngineResult serial = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  cfg.decode_workers = 4;
  const EngineResult pooled = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  ASSERT_EQ(pooled.requests.size(), serial.requests.size());
  for (std::size_t i = 0; i < serial.requests.size(); ++i) {
    EXPECT_EQ(pooled.requests[i].output, serial.requests[i].output) << "request " << i;
  }
  EXPECT_GT(serial.prefix_cache.hits, 0u);
  EXPECT_GT(pooled.prefix_cache.hits, 0u);
}

// Off by default: no lookups, no events, and not one byte of prefix-cache
// vocabulary in either export — cache-free traces stay identical to the
// pre-cache engine's.
TEST_F(PrefixCacheEngineTest, DisabledCacheLeavesTracesUntouched) {
  FunctionalEngineConfig cfg = chat_config();
  const EngineResult result = run_functional_continuous(master_, DType::kF32, pool_, cfg);

  EXPECT_EQ(result.prefix_cache.lookups, 0u);
  EXPECT_EQ(result.prefix_cache.hits, 0u);
  EXPECT_EQ(result.prefix_cache.bytes_saved, 0u);
  EXPECT_TRUE(result.timeline.prefix_cache_events().empty());
  for (const Request& r : result.requests) EXPECT_EQ(r.prefix_cached, 0u);
  EXPECT_EQ(trace::to_jsonl(result.timeline).find("prefix"), std::string::npos);
  EXPECT_EQ(trace::to_chrome_trace_json(result.timeline).find("prefix"),
            std::string::npos);
}

// Every number the engine reports is derived from the one event stream, and
// the stream conserves: one lookup per request's (single) fresh admission,
// hits + misses == lookups, hit tokens chunk-aligned and mirrored in each
// request's prefix_cached, bytes_saved exactly the hit blocks' footprint.
TEST_F(PrefixCacheEngineTest, CountersConserveAndDeriveFromTimeline) {
  FunctionalEngineConfig cfg = chat_config();
  cfg.prefix_cache = true;
  const EngineResult result = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  const auto& pc = result.prefix_cache;

  EXPECT_EQ(pc.lookups, 8u);  // one per request, preemption resumes excluded
  EXPECT_EQ(pc.hits + pc.misses, pc.lookups);
  EXPECT_GT(pc.hits, 0u);
  EXPECT_EQ(pc.hit_tokens % 32, 0u);  // lcm(block_tokens, prefill_chunk)
  EXPECT_GT(pc.inserted_blocks, 0u);

  // Re-derive the summary from the raw events: they must agree exactly.
  EngineResult::PrefixCacheSummary derived;
  std::size_t hit_blocks = 0;
  for (const auto& e : result.timeline.prefix_cache_events()) {
    switch (e.kind) {
      case trace::PrefixCacheEventKind::kHit:
        ++derived.lookups;
        ++derived.hits;
        derived.hit_tokens += e.tokens;
        derived.bytes_saved += e.bytes_saved;
        hit_blocks += e.blocks;
        break;
      case trace::PrefixCacheEventKind::kMiss:
        ++derived.lookups;
        ++derived.misses;
        break;
      case trace::PrefixCacheEventKind::kInsert:
        derived.inserted_blocks += e.blocks;
        break;
      case trace::PrefixCacheEventKind::kEvict:
        derived.evicted_blocks += e.blocks;
        break;
    }
  }
  EXPECT_EQ(derived.lookups, pc.lookups);
  EXPECT_EQ(derived.hits, pc.hits);
  EXPECT_EQ(derived.misses, pc.misses);
  EXPECT_EQ(derived.hit_tokens, pc.hit_tokens);
  EXPECT_EQ(derived.bytes_saved, pc.bytes_saved);
  EXPECT_EQ(derived.inserted_blocks, pc.inserted_blocks);
  EXPECT_EQ(derived.evicted_blocks, pc.evicted_blocks);
  EXPECT_EQ(derived.hit_tokens, hit_blocks * cfg.block_tokens);

  // bytes_saved is the hit blocks' exact KV footprint.
  const std::size_t block_bytes = result.peak_kv_bytes / result.peak_kv_blocks;
  EXPECT_EQ(pc.bytes_saved, hit_blocks * block_bytes);

  // Per-request attribution mirrors the hit events.
  std::size_t cached_sum = 0;
  for (const Request& r : result.requests) {
    if (r.prefix_cached > 0) {
      EXPECT_EQ(r.prefix_cached % 32, 0u);
      EXPECT_LT(r.prefix_cached, r.prompt.size());
    }
    cached_sum += r.prefix_cached;
  }
  EXPECT_EQ(cached_sum, pc.hit_tokens);

  // The events serialize into both exports.
  const std::string jsonl = trace::to_jsonl(result.timeline);
  EXPECT_NE(jsonl.find("\"prefix_cache\":\"prefix_hit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"prefix_cache\":\"prefix_insert\""), std::string::npos);
  EXPECT_NE(trace::to_chrome_trace_json(result.timeline).find("prefix_cache:prefix_hit"),
            std::string::npos);
}

// Allocator exhaustion drains cached-but-unreferenced blocks (LRU leaves
// first) before the policy preempts anything: with a pool sized to the
// active lanes alone, the retire-time inserts overcommit it and the evict
// hook — not preemption — has to make room for the next wave.
TEST_F(PrefixCacheEngineTest, ExhaustionEvictsCachedBlocksBeforePreempting) {
  FunctionalEngineConfig cfg = chat_config();
  cfg.prefix_cache = true;
  // 3 lanes x 48 tokens / 4-token blocks: exactly the active working set.
  cfg.kv_blocks = 36;
  const EngineResult result = run_functional_continuous(master_, DType::kF32, pool_, cfg);

  ASSERT_EQ(result.requests.size(), 8u);
  for (const Request& r : result.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
    EXPECT_EQ(r.output.size(), 8u);
  }
  EXPECT_GT(result.prefix_cache.evicted_blocks, 0u);
  EXPECT_NE(trace::to_jsonl(result.timeline).find("prefix_evict"), std::string::npos);

  // The same pool without the cache completes too (the baseline the
  // eviction path must not regress): both runs emit identical tokens.
  cfg.prefix_cache = false;
  const EngineResult off = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.requests[i].output, off.requests[i].output) << "request " << i;
  }
}

}  // namespace
}  // namespace orinsim::serving
