// ServingDevice: the engine+backend+governor bundle the fleet router steps.
// Pins of the extraction refactor: a catalog-built device must reproduce the
// hand-assembled SimTokenBackend + ContinuousPolicy schedule exactly, and
// heterogeneous catalog entries must yield distinct, roofline-consistent
// step costs from the same request stream.
#include "serving/serving_device.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"
#include "serving/engine.h"
#include "sim/device_catalog.h"
#include "workload/arrivals.h"

namespace orinsim::serving {
namespace {

std::vector<Request> poisson_stream(std::size_t count, double rps,
                                    const workload::SeqConfig& seq) {
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = rps;
  arrivals.total_requests = count;
  std::vector<Request> stream;
  for (double t : arrivals.generate()) {
    Request rq;
    rq.id = stream.size();
    rq.arrival_s = t;
    rq.prompt_tokens = seq.input;
    rq.max_new_tokens = seq.output;
    stream.push_back(rq);
  }
  return stream;
}

TEST(ServingDeviceTest, ReproducesHandAssembledEngineExactly) {
  // The refactor pin: wrapping backend+engine+governor in ServingDevice must
  // not change a single scheduling decision or charged cost on the paper's
  // reference device.
  const workload::SeqConfig seq = workload::seq_config_default();

  ServingDevice::SimConfig dc;
  dc.max_concurrency = 4;
  dc.governor.power_cap_w = 40.0;
  ServingDevice device(dc);
  const EngineResult a = device.run(poisson_stream(24, 4.0, seq));

  SimTokenBackend::Config bc;
  bc.model_key = "llama3";
  bc.max_concurrency = 4;
  bc.seq = seq;
  SimTokenBackend backend(bc);
  GovernorConfig gov;
  gov.power_cap_w = 40.0;
  const EngineResult b = ContinuousPolicy(backend, gov).run(poisson_stream(24, 4.0, seq));

  EXPECT_EQ(a.latencies_s, b.latencies_s);
  EXPECT_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.governor_step_downs, b.governor_step_downs);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
}

TEST(ServingDeviceTest, HeterogeneousCatalogEntriesYieldDistinctStepCosts) {
  // Same model, same stream, different silicon: the Nano's decode steps must
  // be strictly slower than the reference Orin's (bandwidth-bound roofline),
  // stretching its makespan.
  const workload::SeqConfig seq = workload::seq_config_default();
  auto mean_decode_s = [&](const char* key) {
    ServingDevice::SimConfig dc;
    dc.device_key = key;
    dc.model_key = "phi2";
    dc.dtype = DType::kI8;  // fits every catalog device
    dc.max_concurrency = 2;
    ServingDevice device(dc);
    const EngineResult r = device.run(poisson_stream(8, 2.0, seq));
    double decode_s = 0.0;
    std::size_t steps = 0;
    for (const trace::StepEvent& ev : r.timeline.events()) {
      if (ev.phase == trace::Phase::kDecode) {
        decode_s += ev.duration_s;
        ++steps;
      }
    }
    EXPECT_GT(steps, 0u) << key;
    return decode_s / static_cast<double>(steps);
  };
  const double orin = mean_decode_s("orin-agx-64");
  const double xavier = mean_decode_s("xavier-agx-32");
  const double nano = mean_decode_s("orin-nano-8");
  EXPECT_LT(orin, xavier);
  EXPECT_LT(xavier, nano);
}

TEST(ServingDeviceTest, GovernorLadderIsScaledToTheDevice) {
  // A throttled Nano must walk its *own* clock ladder, not Orin-absolute
  // frequencies it cannot reach.
  ServingDevice::SimConfig dc;
  dc.device_key = "orin-nano-8";
  dc.model_key = "phi2";
  dc.dtype = DType::kI8;
  dc.governor.power_cap_w = 5.0;  // low enough to force step-downs
  ServingDevice device(dc);
  const sim::DeviceSpec& nano = sim::device_by_key("orin-nano-8").spec;

  const std::vector<sim::PowerMode>& ladder = device.governor().ladder;
  ASSERT_FALSE(ladder.empty());
  EXPECT_DOUBLE_EQ(ladder.front().gpu_freq_mhz, nano.gpu_max_freq_mhz);
  for (const sim::PowerMode& pm : ladder) {
    EXPECT_LE(pm.gpu_freq_mhz, nano.gpu_max_freq_mhz);
  }

  const workload::SeqConfig seq = workload::seq_config_default();
  const EngineResult r = device.run(poisson_stream(8, 4.0, seq));
  EXPECT_GT(r.governor_step_downs, 0u);
}

TEST(ServingDeviceTest, ConfiguredModeHeadsTheAutoLadder) {
  // Starting at mode "A" must drop the MaxN rung: the descent begins where
  // the device is configured, per the governor's ladder[0] contract.
  ServingDevice::SimConfig dc;
  dc.power_mode = "A";
  dc.governor.power_cap_w = 30.0;
  ServingDevice device(dc);
  const std::vector<sim::PowerMode>& ladder = device.governor().ladder;
  ASSERT_FALSE(ladder.empty());
  EXPECT_EQ(ladder.front().name, "A");
  for (const sim::PowerMode& pm : ladder) EXPECT_NE(pm.name, "MaxN");
}

TEST(ServingDeviceTest, UnknownDeviceKeyRejected) {
  ServingDevice::SimConfig dc;
  dc.device_key = "h100-sxm";
  EXPECT_THROW(ServingDevice device(dc), ContractViolation);
}

}  // namespace
}  // namespace orinsim::serving
