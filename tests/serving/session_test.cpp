#include "serving/session.h"

#include <gtest/gtest.h>

namespace orinsim::serving {
namespace {

TEST(SimSessionTest, RunsDefaultWorkload) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  BatchRequest rq;
  const BatchResult r = session.run(rq);
  ASSERT_FALSE(r.oom);
  EXPECT_GT(r.latency_s, 0.0);
  EXPECT_GT(r.throughput_tps, 0.0);
  EXPECT_GT(r.median_power_w, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GT(r.total_ram_gb, r.incremental_ram_gb);
}

TEST(SimSessionTest, LongBenchSlightlyFaster) {
  // Tables 4 vs 5: LongBench runs a few percent faster on identical configs.
  BatchRequest rq;
  SimSession wiki("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SimSession lb("llama3", DType::kF16, workload::Dataset::kLongBench);
  EXPECT_LT(lb.run(rq).latency_s, wiki.run(rq).latency_s);
}

TEST(SimSessionTest, OomPropagates) {
  SimSession session("deepseek-qwen", DType::kF16, workload::Dataset::kWikiText2);
  const BatchResult r = session.run(BatchRequest{});
  EXPECT_TRUE(r.oom);
}

TEST(SimSessionTest, PowerModeChangesResults) {
  BatchRequest rq;
  SimSession maxn("llama3", DType::kF16, workload::Dataset::kWikiText2,
                  sim::power_mode_maxn());
  SimSession pm_h("llama3", DType::kF16, workload::Dataset::kWikiText2,
                  sim::power_mode_by_name("H"));
  const BatchResult a = maxn.run(rq);
  const BatchResult b = pm_h.run(rq);
  EXPECT_GT(b.latency_s, a.latency_s * 3.0);
  EXPECT_LT(b.median_power_w, a.median_power_w);
}

TEST(SimSessionTest, DatasetScaleFactors) {
  EXPECT_DOUBLE_EQ(dataset_latency_scale(workload::Dataset::kWikiText2), 1.0);
  EXPECT_LT(dataset_latency_scale(workload::Dataset::kLongBench), 1.0);
}

class FunctionalSessionTest : public ::testing::Test {
 protected:
  FunctionalSessionTest()
      : corpus_(workload::generate_corpus(workload::CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 400)),
        pool_(corpus_, tokenizer_, 256),
        master_(MasterWeights::init_random(make_nano_config("llama3", tokenizer_.vocab_size()),
                                           17)) {}

  workload::Corpus corpus_;
  Tokenizer tokenizer_;
  workload::PromptPool pool_;
  std::shared_ptr<MasterWeights> master_;
};

TEST_F(FunctionalSessionTest, RealGenerationProducesMetrics) {
  FunctionalSession session(master_, DType::kF32, pool_);
  BatchRequest rq;
  rq.batch = 2;
  rq.seq = workload::SeqConfig{24, 8, 16};
  const BatchResult r = session.run(rq);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.latency_s, 0.0);
  // 2 * 24 tokens over the measured latency.
  EXPECT_NEAR(r.throughput_tps * r.latency_s, 48.0, 1.0);
  EXPECT_GT(r.total_ram_gb, 0.0);
}

TEST_F(FunctionalSessionTest, RejectsSequencesBeyondModelLimit) {
  FunctionalSession session(master_, DType::kF32, pool_);
  BatchRequest rq;
  rq.batch = 1;
  rq.seq = workload::SeqConfig{4096, 1024, 3072};
  EXPECT_THROW(session.run(rq), ContractViolation);
}

}  // namespace
}  // namespace orinsim::serving
