#include "serving/offload.h"

#include <gtest/gtest.h>

namespace orinsim::serving {
namespace {

class OffloadTest : public ::testing::Test {
 protected:
  OffloadTest() : session_("llama3", DType::kF16, workload::Dataset::kWikiText2) {
    config_.scheduler.max_batch = 16;
    config_.scheduler.arrivals.rate_rps = 4.0;
    config_.scheduler.arrivals.total_requests = 48;
  }
  SimSession session_;
  HybridConfig config_;
};

TEST_F(OffloadTest, CloudEndpointLatencyComposition) {
  CloudEndpoint ep;
  const double latency = ep.request_latency_s(32, 64);
  // At least RTT + provider queue + decode time.
  EXPECT_GT(latency, ep.rtt_s + ep.provider_queue_s + 64.0 / ep.decode_tps - 1e-9);
  EXPECT_LT(latency, 5.0);
}

TEST_F(OffloadTest, CloudCostPerToken) {
  CloudEndpoint ep;
  ep.usd_per_1k_tokens = 0.02;
  EXPECT_NEAR(ep.request_cost_usd(500, 500), 0.02, 1e-12);
}

TEST_F(OffloadTest, EdgeOnlyUsesNoCloud) {
  config_.policy = OffloadPolicy::kEdgeOnly;
  const HybridResult r = simulate_hybrid(session_, config_);
  EXPECT_EQ(r.cloud_requests, 0u);
  EXPECT_EQ(r.edge_requests, 48u);
  EXPECT_EQ(r.cloud_cost_usd, 0.0);
  EXPECT_GT(r.edge_energy_j, 0.0);
  EXPECT_EQ(r.latencies_s.size(), 48u);
}

TEST_F(OffloadTest, CloudOnlyUsesNoEdge) {
  config_.policy = OffloadPolicy::kCloudOnly;
  const HybridResult r = simulate_hybrid(session_, config_);
  EXPECT_EQ(r.edge_requests, 0u);
  EXPECT_EQ(r.cloud_requests, 48u);
  EXPECT_EQ(r.edge_energy_j, 0.0);
  EXPECT_GT(r.cloud_cost_usd, 0.0);
}

TEST_F(OffloadTest, QueueDepthSpillsUnderLoad) {
  config_.policy = OffloadPolicy::kQueueDepth;
  config_.queue_threshold = 4;
  config_.scheduler.arrivals.rate_rps = 50.0;  // flood
  const HybridResult r = simulate_hybrid(session_, config_);
  EXPECT_GT(r.cloud_requests, 0u);
  EXPECT_GT(r.edge_requests, 0u);
  EXPECT_EQ(r.edge_requests + r.cloud_requests, 48u);
}

TEST_F(OffloadTest, QueueDepthIdleStaysOnEdge) {
  config_.policy = OffloadPolicy::kQueueDepth;
  config_.queue_threshold = 16;
  config_.scheduler.arrivals.rate_rps = 0.05;  // trickle
  const HybridResult r = simulate_hybrid(session_, config_);
  EXPECT_EQ(r.cloud_requests, 0u);
}

TEST_F(OffloadTest, HybridImprovesTailLatencyUnderLoad) {
  config_.scheduler.arrivals.rate_rps = 20.0;
  config_.policy = OffloadPolicy::kEdgeOnly;
  const HybridResult edge = simulate_hybrid(session_, config_);
  config_.policy = OffloadPolicy::kQueueDepth;
  config_.queue_threshold = 8;
  const HybridResult hybrid = simulate_hybrid(session_, config_);
  EXPECT_LT(hybrid.p95_latency_s(), edge.p95_latency_s());
  EXPECT_GT(hybrid.cloud_cost_usd, 0.0);
}

TEST_F(OffloadTest, LatencyThresholdRoutesWhenSloUnreachable) {
  config_.policy = OffloadPolicy::kLatencyThreshold;
  config_.latency_slo_s = 1.0;  // unreachable on the edge (batch takes ~10s)
  const HybridResult r = simulate_hybrid(session_, config_);
  EXPECT_EQ(r.edge_requests, 0u);
  EXPECT_EQ(r.cloud_requests, 48u);
}

TEST_F(OffloadTest, LatencyThresholdKeepsEdgeWhenRelaxed) {
  config_.policy = OffloadPolicy::kLatencyThreshold;
  config_.latency_slo_s = 1e6;
  const HybridResult r = simulate_hybrid(session_, config_);
  EXPECT_EQ(r.cloud_requests, 0u);
}

TEST_F(OffloadTest, PolicyNames) {
  EXPECT_EQ(offload_policy_name(OffloadPolicy::kEdgeOnly), "edge-only");
  EXPECT_EQ(offload_policy_name(OffloadPolicy::kQueueDepth), "queue-depth");
}

}  // namespace
}  // namespace orinsim::serving
