#include "serving/metrics.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace orinsim::serving {
namespace {

TEST(MetricsTest, PaperThroughputFormula) {
  // Table 4 cross-check: Llama at bs=32 processes 32*96 tokens in 9.96 s
  // => 308.4 tokens/s (the table reports 308.47).
  EXPECT_NEAR(token_throughput_tps(32, 32, 64, 9.96), 308.4, 0.2);
}

TEST(MetricsTest, RaggedOverload) {
  EXPECT_DOUBLE_EQ(token_throughput_tps(960, 4.0), 240.0);
}

TEST(MetricsTest, ZeroLatencyRejected) {
  EXPECT_THROW(token_throughput_tps(32, 32, 64, 0.0), ContractViolation);
}

TEST(MetricsTest, IncrementalMemory) {
  EXPECT_DOUBLE_EQ(incremental_memory_gb(20.53, 5.6), 14.93);
  EXPECT_THROW(incremental_memory_gb(5.0, 6.0), ContractViolation);
}

}  // namespace
}  // namespace orinsim::serving
