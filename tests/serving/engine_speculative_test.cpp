// Speculative decoding through the request-lifecycle engine. The contract
// under test: serving with a draft model emits exactly the token streams
// plain greedy serving emits — across weight precisions, KV storages,
// serial and pooled decode, preemption mid-round, and prefix-cache hits —
// while retiring those tokens in strictly fewer target passes.
//
// Every identity comparison runs under scalar kernels (ScopedLevel): the
// chunked verify pass and the token-at-a-time path are bit-identical only
// at the reference kernel level (the same determinism contract chunked
// prefill pins).
#include "serving/engine.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "sim/speculative_sim.h"
#include "tensor/dtype.h"
#include "tensor/simd.h"
#include "trace/timeline.h"
#include "workload/corpus.h"

namespace orinsim::serving {
namespace {

class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedLevel() { simd::set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level prev_;
};

// ---------------------------------------------------------------------------
// Functional backend
// ---------------------------------------------------------------------------

class SpeculativeEngineTest : public ::testing::Test {
 protected:
  SpeculativeEngineTest()
      : corpus_(workload::generate_corpus(workload::CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 400)),
        pool_(corpus_, tokenizer_, 256),
        master_(MasterWeights::init_random(
            make_nano_config("llama3", tokenizer_.vocab_size()), 17)) {}

  static FunctionalEngineConfig small_config() {
    FunctionalEngineConfig cfg;
    cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
    cfg.arrivals.rate_rps = 1000.0;  // flood: all requests arrive near t=0
    cfg.arrivals.total_requests = 4;
    cfg.seq = workload::SeqConfig{24, 8, 16};
    cfg.max_concurrency = 2;
    cfg.block_tokens = 4;
    return cfg;
  }

  static void expect_same_streams(const EngineResult& got, const EngineResult& want,
                                  const char* label) {
    ASSERT_EQ(got.requests.size(), want.requests.size()) << label;
    for (std::size_t i = 0; i < want.requests.size(); ++i) {
      EXPECT_EQ(got.requests[i].prompt, want.requests[i].prompt)
          << label << " request " << i;
      EXPECT_EQ(got.requests[i].output, want.requests[i].output)
          << label << " request " << i;
    }
  }

  workload::Corpus corpus_;
  Tokenizer tokenizer_;
  workload::PromptPool pool_;
  std::shared_ptr<MasterWeights> master_;
};

// The identity grid: speculation on vs off across every weight precision
// the engine serves and both KV storages, serial and pooled. One plain
// baseline per (dtype, storage) cell; the speculative runs must reproduce
// its streams token for token.
TEST_F(SpeculativeEngineTest, BitIdenticalAcrossPrecisionsStoragesAndPools) {
  ScopedLevel scalar(simd::Level::kScalar);
  for (DType dtype : {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    for (KVStorage storage : {KVStorage::kF32, KVStorage::kI8}) {
      FunctionalEngineConfig cfg = small_config();
      cfg.kv_storage = storage;
      const EngineResult plain = run_functional_continuous(master_, dtype, pool_, cfg);
      ASSERT_EQ(plain.requests.size(), 4u);
      EXPECT_EQ(plain.speculation.rounds, 0u);

      cfg.speculation.enabled = true;
      cfg.speculation.draft_tokens = 4;
      cfg.speculation.draft_dtype = DType::kI8;
      for (std::size_t workers : {std::size_t{0}, std::size_t{4}}) {
        cfg.decode_workers = workers;
        const EngineResult spec = run_functional_continuous(master_, dtype, pool_, cfg);
        const std::string label = dtype_name(dtype) + "/" +
                                  (storage == KVStorage::kF32 ? "kvf32" : "kvi8") +
                                  "/workers=" + std::to_string(workers);
        expect_same_streams(spec, plain, label.c_str());
        // Self-drafting (same master, quantized) agrees often enough that
        // rounds actually retire multiple tokens — the grid must exercise
        // the accept path, not just the k=0 fallback.
        EXPECT_GT(spec.speculation.rounds, 0u) << label;
        EXPECT_GT(spec.speculation.accepted, 0u) << label;
        EXPECT_LT(spec.decode_steps, plain.decode_steps) << label;
      }
    }
  }
}

// A speculative request preempted mid-stream must recompute to the exact
// same stream: the draft branch is transient (freed within the step), so
// eviction only ever sees the lane's committed prefix, and greedy recompute
// replays it without re-running the rounds.
TEST_F(SpeculativeEngineTest, PreemptionRecomputeIsLosslessMidSpeculation) {
  ScopedLevel scalar(simd::Level::kScalar);
  FunctionalEngineConfig cfg = small_config();
  cfg.arrivals.total_requests = 6;
  cfg.max_concurrency = 3;

  // Baseline: plain greedy, unlimited pool.
  const EngineResult baseline = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  ASSERT_EQ(baseline.requests.size(), 6u);

  // Pressured speculative run: 3 lanes at 24 tokens want 18 blocks plus
  // draft branches; 12 forces eviction while rounds are in flight.
  cfg.kv_blocks = 12;
  cfg.speculation.enabled = true;
  cfg.speculation.draft_tokens = 4;
  const EngineResult spec = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_GT(spec.preemptions, 0u);
  EXPECT_GT(spec.speculation.rounds, 0u);
  expect_same_streams(spec, baseline, "preempted speculative");
  for (const Request& r : spec.requests) EXPECT_EQ(r.generated, 16u);
}

// Prefix-cache hits and speculative admission compose: a request admitted
// onto cached system-prompt blocks forks its draft branch off a lane whose
// prefix is shared with the cache, and both mechanisms keep the stream
// exactly greedy.
TEST_F(SpeculativeEngineTest, ComposesWithPrefixCacheHits) {
  ScopedLevel scalar(simd::Level::kScalar);
  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;
  cfg.arrivals.total_requests = 8;
  cfg.seq = workload::SeqConfig{96, 80, 16};
  cfg.max_concurrency = 1;  // one lane: every admission is its own lookup
  cfg.kv_blocks = 64;
  cfg.block_tokens = 16;
  cfg.prefix_cache = true;
  cfg.chat.system_prompts = 2;
  cfg.chat.zipf_s = 1.1;
  cfg.chat.system_tokens = 64;
  cfg.chat.user_tokens = 16;

  const EngineResult plain = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  ASSERT_EQ(plain.requests.size(), 8u);
  EXPECT_GT(plain.prefix_cache.hits, 0u);

  cfg.speculation.enabled = true;
  cfg.speculation.draft_tokens = 4;
  const EngineResult spec = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_GT(spec.prefix_cache.hits, 0u);
  EXPECT_GT(spec.speculation.rounds, 0u);
  expect_same_streams(spec, plain, "prefix-cache + speculation");
}

// Timeline and counter discipline: rounds emit kDraft/kVerify (never a bare
// kDecode for a speculative round), decode_steps counts target passes
// either way, and the per-round accounting identities hold exactly.
TEST_F(SpeculativeEngineTest, EmitsDraftVerifyPhasesWithExactAccounting) {
  ScopedLevel scalar(simd::Level::kScalar);
  FunctionalEngineConfig cfg = small_config();

  const EngineResult plain = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_EQ(plain.timeline.count(trace::Phase::kDraft), 0u);
  EXPECT_EQ(plain.timeline.count(trace::Phase::kVerify), 0u);
  EXPECT_EQ(plain.decode_steps, plain.timeline.count(trace::Phase::kDecode));

  cfg.speculation.enabled = true;
  cfg.speculation.draft_tokens = 4;
  const EngineResult spec = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_GT(spec.timeline.count(trace::Phase::kDraft), 0u);
  EXPECT_GT(spec.timeline.count(trace::Phase::kVerify), 0u);
  EXPECT_EQ(spec.decode_steps, spec.timeline.count(trace::Phase::kDecode) +
                                   spec.timeline.count(trace::Phase::kVerify));

  const EngineResult::SpeculationSummary& s = spec.speculation;
  EXPECT_GT(s.rounds, 0u);
  // Each round emits its accepted prefix plus exactly one target token
  // (corrective or bonus), and verifies at most one losing proposal.
  EXPECT_EQ(s.emitted, s.accepted + s.rounds);
  EXPECT_LE(s.accepted, s.proposed);
  EXPECT_LE(s.proposed, s.accepted + s.rounds);
  // Speculation must not change how much work retires, only how fast.
  std::size_t plain_tokens = 0, spec_tokens = 0;
  for (const Request& r : plain.requests) plain_tokens += r.output.size();
  for (const Request& r : spec.requests) spec_tokens += r.output.size();
  EXPECT_EQ(spec_tokens, plain_tokens);
}

// ---------------------------------------------------------------------------
// Simulated backend
// ---------------------------------------------------------------------------

// The sim backend's calibrated acceptance model: long-run tokens per round
// tracks sim::expected_tokens_per_round (the carry makes the average exact,
// minus end-of-request clamping), and the step count shrinks accordingly
// while the same requests retire.
TEST(SimSpeculativeEngineTest, CalibratedAcceptanceMatchesExpectedTokensPerRound) {
  SimTokenBackend::Config bc;
  bc.model_key = "mistral";  // 24B target: drafting with 2.8B phi2 amortizes
  bc.dtype = DType::kF16;
  bc.max_concurrency = 4;
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.total_requests = 16;
  const auto make_requests = [&] {
    std::vector<Request> requests;
    for (double t : arrivals.generate()) {
      Request r;
      r.id = requests.size();
      r.arrival_s = t;
      r.prompt_tokens = bc.seq.input;
      r.max_new_tokens = bc.seq.output;
      requests.push_back(r);
    }
    return requests;
  };

  SimTokenBackend plain_backend(bc);
  const EngineResult plain = ContinuousPolicy(plain_backend).run(make_requests());

  bc.speculation.enabled = true;
  bc.speculation.draft_tokens = 4;
  bc.speculation.acceptance = 0.8;
  // A genuinely smaller draft at FP16: the speedup formula needs
  // t_draft << t_target, and on this device INT8 carries the paper's
  // quantization overhead, so F16 is the fast draft precision too.
  bc.speculation.draft_model_key = "phi2";
  bc.speculation.draft_dtype = DType::kF16;
  SimTokenBackend spec_backend(bc);
  const EngineResult spec = ContinuousPolicy(spec_backend).run(make_requests());

  // Same requests retire with the same token totals.
  ASSERT_EQ(spec.latencies_s.size(), plain.latencies_s.size());
  EXPECT_EQ(spec.total_tokens, plain.total_tokens);

  // Rounds emit close to E = (1 - a^(K+1)) / (1 - a); the shortfall is the
  // final round of each request clamping to the tokens it still owes.
  const double expected = sim::expected_tokens_per_round(0.8, 4);
  EXPECT_GT(spec.speculation.rounds, 0u);
  EXPECT_LE(spec.speculation.tokens_per_round(), expected + 1e-9);
  EXPECT_GT(spec.speculation.tokens_per_round(), 0.75 * expected);

  // Fewer target passes, kDraft/kVerify in the trace, legacy trace clean.
  EXPECT_LT(spec.decode_steps, plain.decode_steps);
  EXPECT_GT(spec.timeline.count(trace::Phase::kDraft), 0u);
  EXPECT_GT(spec.timeline.count(trace::Phase::kVerify), 0u);
  EXPECT_EQ(plain.timeline.count(trace::Phase::kDraft), 0u);
  EXPECT_EQ(plain.timeline.count(trace::Phase::kVerify), 0u);

  // Speculation speeds the schedule up on the weight-bound device: the
  // verify pass streams the weights once for K+1 positions.
  EXPECT_LT(spec.makespan_s, plain.makespan_s);
}

}  // namespace
}  // namespace orinsim::serving
