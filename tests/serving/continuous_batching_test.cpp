#include "serving/continuous_batching.h"

#include <gtest/gtest.h>

#include "serving/batch_scheduler.h"

namespace orinsim::serving {
namespace {

ContinuousConfig base_config() {
  ContinuousConfig c;
  c.model_key = "llama3";
  c.max_concurrency = 16;
  c.arrivals.rate_rps = 2.0;
  c.arrivals.total_requests = 32;
  return c;
}

TEST(ContinuousBatchingTest, AllRequestsComplete) {
  const ContinuousResult r = simulate_continuous(base_config());
  EXPECT_EQ(r.latencies_s.size(), 32u);
  for (double l : r.latencies_s) EXPECT_GT(l, 0.0);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_GT(r.energy_j, 0.0);
  EXPECT_GE(r.decode_steps, 64u);  // at least out_tokens steps
}

TEST(ContinuousBatchingTest, Deterministic) {
  const ContinuousResult a = simulate_continuous(base_config());
  const ContinuousResult b = simulate_continuous(base_config());
  EXPECT_EQ(a.latencies_s, b.latencies_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
}

TEST(ContinuousBatchingTest, OccupancyBoundedByCap) {
  ContinuousConfig c = base_config();
  c.arrivals.rate_rps = 100.0;  // flood
  const ContinuousResult r = simulate_continuous(c);
  EXPECT_LE(r.mean_active, static_cast<double>(c.max_concurrency) + 1e-9);
  EXPECT_GT(r.mean_active, 4.0);  // flood keeps the device busy
}

TEST(ContinuousBatchingTest, SingleRequestLatencyNearBsOne) {
  // A lone request should see roughly the bs=1 static latency (prefill +
  // 64 decode steps), with no batching delay.
  ContinuousConfig c = base_config();
  c.arrivals.total_requests = 1;
  c.arrivals.rate_rps = 1.0;
  const ContinuousResult r = simulate_continuous(c);
  ASSERT_EQ(r.latencies_s.size(), 1u);
  EXPECT_GT(r.latencies_s[0], 4.0);
  EXPECT_LT(r.latencies_s[0], 9.0);  // paper bs=1: 6.37s minus run overhead
}

TEST(ContinuousBatchingTest, BeatsStaticMeanLatencyUnderLoad) {
  // Same arrival process, same concurrency budget: continuous batching must
  // cut mean time-to-last-token (no waiting for batch formation/stragglers).
  const double rps = 5.0;
  const std::size_t n = 48;

  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SchedulerConfig sc;
  sc.max_batch = 16;
  sc.arrivals.rate_rps = rps;
  sc.arrivals.total_requests = n;
  const ScheduleResult stat = simulate_serving(session, sc);

  ContinuousConfig cc = base_config();
  cc.arrivals.rate_rps = rps;
  cc.arrivals.total_requests = n;
  const ContinuousResult cont = simulate_continuous(cc);

  EXPECT_LT(cont.mean_latency_s(), stat.mean_latency_s());
}

TEST(ContinuousBatchingTest, EnergyScalesWithWork) {
  ContinuousConfig c = base_config();
  const ContinuousResult small = simulate_continuous(c);
  c.arrivals.total_requests *= 2;
  const ContinuousResult large = simulate_continuous(c);
  EXPECT_GT(large.energy_j, small.energy_j * 1.5);
}

TEST(ContinuousBatchingTest, MemoryGateEnforced) {
  ContinuousConfig c = base_config();
  c.model_key = "deepseek-qwen";
  c.dtype = DType::kF16;  // 62 GB, does not fit
  EXPECT_THROW(simulate_continuous(c), ContractViolation);
}

TEST(ContinuousBatchingTest, DegenerateConfigsRejected) {
  ContinuousConfig c = base_config();
  c.arrivals.total_requests = 0;
  EXPECT_THROW(simulate_continuous(c), ContractViolation);
  c = base_config();
  c.max_concurrency = 0;
  EXPECT_THROW(simulate_continuous(c), ContractViolation);
}

}  // namespace
}  // namespace orinsim::serving
