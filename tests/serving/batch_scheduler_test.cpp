#include "serving/batch_scheduler.h"

#include "workload/arrivals.h"

#include <gtest/gtest.h>

namespace orinsim::serving {
namespace {

SchedulerConfig base_config() {
  SchedulerConfig c;
  c.max_batch = 8;
  c.arrivals.rate_rps = 4.0;
  c.arrivals.total_requests = 32;
  return c;
}

TEST(BatchSchedulerTest, AllRequestsServed) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  const ScheduleResult r = simulate_serving(session, base_config());
  ASSERT_EQ(r.requests.size(), 32u);
  for (const auto& req : r.requests) {
    EXPECT_GE(req.start_s, req.arrival_s);
    EXPECT_GT(req.finish_s, req.start_s);
  }
  EXPECT_GT(r.batches_run, 0u);
  EXPECT_GT(r.total_energy_j, 0.0);
}

TEST(BatchSchedulerTest, LargerMaxBatchFewerBatches) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SchedulerConfig small = base_config();
  small.max_batch = 2;
  SchedulerConfig large = base_config();
  large.max_batch = 16;
  const ScheduleResult rs = simulate_serving(session, small);
  const ScheduleResult rl = simulate_serving(session, large);
  EXPECT_GT(rs.batches_run, rl.batches_run);
}

TEST(BatchSchedulerTest, HigherArrivalRateRaisesOccupancy) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SchedulerConfig slow = base_config();
  slow.arrivals.rate_rps = 0.05;  // trickle: batches mostly run singly
  SchedulerConfig fast = base_config();
  fast.arrivals.rate_rps = 50.0;  // flood: batches fill to max
  const ScheduleResult r_slow = simulate_serving(session, slow);
  const ScheduleResult r_fast = simulate_serving(session, fast);
  EXPECT_GT(r_fast.mean_batch_occupancy, r_slow.mean_batch_occupancy);
}

TEST(BatchSchedulerTest, LatencyStatsOrdered) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  const ScheduleResult r = simulate_serving(session, base_config());
  EXPECT_GT(r.mean_latency_s(), 0.0);
  EXPECT_GE(r.p95_latency_s(), r.mean_latency_s() * 0.5);
  EXPECT_GT(r.achieved_rps(), 0.0);
}

TEST(BatchSchedulerTest, InvalidConfigsRejected) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SchedulerConfig bad = base_config();
  bad.max_batch = 0;
  EXPECT_THROW(simulate_serving(session, bad), ContractViolation);
  bad = base_config();
  bad.arrivals.total_requests = 0;
  EXPECT_THROW(simulate_serving(session, bad), ContractViolation);
}

TEST(BatchSchedulerTest, OomConfigRejected) {
  SimSession session("deepseek-qwen", DType::kF16, workload::Dataset::kWikiText2);
  EXPECT_THROW(simulate_serving(session, base_config()), ContractViolation);
}

}  // namespace
}  // namespace orinsim::serving

namespace orinsim::serving {
namespace {

TEST(BatchSchedulerArrivalsTest, PoissonStreamServed) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  workload::ArrivalSpec spec;
  spec.kind = workload::ArrivalKind::kPoisson;
  spec.rate_rps = 4.0;
  const auto arrivals = workload::generate_arrivals(spec, 32);
  SchedulerConfig config;
  config.max_batch = 8;
  const ScheduleResult r = simulate_serving(session, config, arrivals);
  ASSERT_EQ(r.requests.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(r.requests[i].arrival_s, arrivals[i]);
    EXPECT_GE(r.requests[i].start_s, r.requests[i].arrival_s);
  }
}

TEST(BatchSchedulerArrivalsTest, BurstyTailWorseThanDeterministic) {
  // Same mean rate: the bursty stream's p95 latency must be no better than
  // the evenly spaced one (queueing theory's basic lesson).
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SchedulerConfig config;
  config.max_batch = 8;
  config.arrivals.rate_rps = 3.0;
  config.arrivals.total_requests = 64;
  const ScheduleResult even = simulate_serving(session, config);

  workload::ArrivalSpec spec;
  spec.kind = workload::ArrivalKind::kBursty;
  spec.rate_rps = 3.0;
  spec.burst_factor = 8.0;
  const auto arrivals = workload::generate_arrivals(spec, 64);
  const ScheduleResult bursty = simulate_serving(session, config, arrivals);
  EXPECT_GE(bursty.p95_latency_s(), even.p95_latency_s() * 0.9);
}

TEST(BatchSchedulerArrivalsTest, DecreasingArrivalsRejected) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  SchedulerConfig config;
  const std::vector<double> bad = {1.0, 0.5};
  EXPECT_THROW(simulate_serving(session, config, bad), ContractViolation);
}

}  // namespace
}  // namespace orinsim::serving
