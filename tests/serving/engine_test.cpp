// The unified request-lifecycle serving engine: preemption on KV block
// exhaustion, recompute-lossless resumption, occupancy metrics off the
// event stream, and the acceptance run — a 64-request Poisson stream on the
// functional engine with more lanes than the block pool can hold at full
// sequence length.
#include "serving/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/rng.h"
#include "serving/continuous_batching.h"
#include "serving/session.h"
#include "trace/export.h"
#include "workload/corpus.h"

namespace orinsim::serving {
namespace {

// ---------------------------------------------------------------------------
// Simulated backend
// ---------------------------------------------------------------------------

TEST(EngineSimTest, UnlimitedPoolNeverPreemptsAndKeepsLegacyTraces) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.total_requests = 16;
  SimTokenBackend backend(bc);

  std::vector<Request> requests;
  for (double t : arrivals.generate()) {
    Request r;
    r.id = requests.size();
    r.arrival_s = t;
    r.prompt_tokens = bc.seq.input;
    r.max_new_tokens = bc.seq.output;
    requests.push_back(r);
  }
  const EngineResult result = ContinuousPolicy(backend).run(std::move(requests));

  EXPECT_EQ(result.latencies_s.size(), 16u);
  EXPECT_EQ(result.preemptions, 0u);
  // The unlimited pool reports no occupancy, so exported traces stay
  // byte-identical to the pre-paging simulator's.
  EXPECT_EQ(result.peak_kv_blocks, 0u);
  EXPECT_EQ(result.mean_kv_utilization, 0.0);
  EXPECT_EQ(trace::to_jsonl(result.timeline).find("kv_blocks"), std::string::npos);
}

TEST(EngineSimTest, MatchesLegacyContinuousSimulator) {
  ContinuousConfig config;
  config.max_concurrency = 8;
  config.arrivals.kind = workload::ArrivalKind::kPoisson;
  config.arrivals.total_requests = 16;
  const ContinuousResult legacy = simulate_continuous(config);

  SimTokenBackend::Config bc;
  bc.model_key = config.model_key;
  bc.dtype = config.dtype;
  bc.max_concurrency = config.max_concurrency;
  bc.seq = config.seq;
  bc.power_mode = config.power_mode;
  SimTokenBackend backend(bc);
  std::vector<Request> requests;
  for (double t : config.arrivals.generate()) {
    Request r;
    r.id = requests.size();
    r.arrival_s = t;
    r.prompt_tokens = config.seq.input;
    r.max_new_tokens = config.seq.output;
    requests.push_back(r);
  }
  const EngineResult engine = ContinuousPolicy(backend).run(std::move(requests));

  ASSERT_EQ(engine.latencies_s.size(), legacy.latencies_s.size());
  for (std::size_t i = 0; i < engine.latencies_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(engine.latencies_s[i], legacy.latencies_s[i]);
  }
  EXPECT_DOUBLE_EQ(engine.makespan_s, legacy.makespan_s);
  EXPECT_DOUBLE_EQ(engine.energy_j, legacy.energy_j);
  EXPECT_DOUBLE_EQ(engine.mean_active, legacy.mean_active);
  EXPECT_EQ(engine.decode_steps, legacy.decode_steps);
}

TEST(EngineSimTest, BlockExhaustionPreemptsInsteadOfFailing) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  bc.block_tokens = 16;
  // Full capacity would be 8 lanes * 6 blocks = 48; 30 oversubscribes.
  bc.kv_blocks = 30;
  ASSERT_LT(bc.kv_blocks * bc.block_tokens,
            bc.max_concurrency * (bc.seq.input + bc.seq.output));
  SimTokenBackend backend(bc);

  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 8.0;  // heavy load keeps all lanes occupied
  arrivals.total_requests = 32;
  std::vector<Request> requests;
  for (double t : arrivals.generate()) {
    Request r;
    r.id = requests.size();
    r.arrival_s = t;
    r.prompt_tokens = bc.seq.input;
    r.max_new_tokens = bc.seq.output;
    requests.push_back(r);
  }
  const EngineResult result = ContinuousPolicy(backend).run(std::move(requests));

  // Every request completes despite the pool being too small for the lane
  // count — preemption, not OOM.
  EXPECT_EQ(result.latencies_s.size(), 32u);
  for (double lat : result.latencies_s) EXPECT_GT(lat, 0.0);
  EXPECT_GT(result.preemptions, 0u);
  std::size_t request_preemptions = 0;
  for (const Request& r : result.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
    EXPECT_EQ(r.generated, bc.seq.output);
    request_preemptions += r.preemptions;
  }
  EXPECT_EQ(request_preemptions, result.preemptions);

  // Occupancy is read off the annotated event stream.
  EXPECT_GT(result.mean_kv_utilization, 0.0);
  EXPECT_LE(result.mean_kv_utilization, 1.0);
  EXPECT_GT(result.peak_kv_blocks, 0u);
  EXPECT_LE(result.peak_kv_blocks, bc.kv_blocks);
  const trace::ExecutionTimeline& tl = result.timeline;
  EXPECT_EQ(tl.request_event_count(trace::RequestEventKind::kPreempt),
            result.preemptions);
  EXPECT_EQ(tl.request_event_count(trace::RequestEventKind::kRetire), 32u);
  // A preempted request is re-admitted, so admits exceed first admissions.
  EXPECT_EQ(tl.request_event_count(trace::RequestEventKind::kAdmit),
            32u + result.preemptions);
}

// ---------------------------------------------------------------------------
// Per-request energy attribution (conservation invariant)
// ---------------------------------------------------------------------------

std::vector<Request> sim_request_stream(const SimTokenBackend::Config& bc,
                                        const workload::ArrivalConfig& arrivals) {
  std::vector<Request> requests;
  for (double t : arrivals.generate()) {
    Request r;
    r.id = requests.size();
    r.arrival_s = t;
    r.prompt_tokens = bc.seq.input;
    r.max_new_tokens = bc.seq.output;
    requests.push_back(r);
  }
  return requests;
}

double attributed_sum_j(const EngineResult& result) {
  double sum = 0.0;
  for (const RequestMetrics& m : result.request_metrics) sum += m.energy_j;
  return sum;
}

TEST(EngineEnergyTest, SimContinuousAttributionConservesEnergy) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.total_requests = 16;
  SimTokenBackend backend(bc);
  const EngineResult result =
      ContinuousPolicy(backend).run(sim_request_stream(bc, arrivals));

  EXPECT_GT(result.energy_j, 0.0);
  ASSERT_EQ(result.request_metrics.size(), 16u);
  EXPECT_NEAR(attributed_sum_j(result), result.energy_j, 1e-9);
  for (const RequestMetrics& m : result.request_metrics) {
    EXPECT_GT(m.energy_j, 0.0);
    EXPECT_GT(m.avg_power_w, 0.0);
    EXPECT_GT(m.energy_per_token_j, 0.0);
  }
  EXPECT_GT(result.energy_per_request_j(), 0.0);
  EXPECT_GT(result.energy_per_token_j(), 0.0);
}

TEST(EngineEnergyTest, AttributionConservesEnergyUnderPreemption) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  bc.block_tokens = 16;
  bc.kv_blocks = 30;  // oversubscribed: forces eviction + recompute
  SimTokenBackend backend(bc);
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 8.0;
  arrivals.total_requests = 32;
  const EngineResult result =
      ContinuousPolicy(backend).run(sim_request_stream(bc, arrivals));

  // Preempted requests pay for their recompute prefills too; the split still
  // conserves the timeline total.
  EXPECT_GT(result.preemptions, 0u);
  EXPECT_NEAR(attributed_sum_j(result), result.energy_j, 1e-9);
}

TEST(EngineEnergyTest, StaticPolicyAttributionConservesEnergy) {
  SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 0.5;
  arrivals.total_requests = 12;
  std::vector<Request> requests;
  const workload::SeqConfig seq = workload::seq_config_default();
  for (double t : arrivals.generate()) {
    Request r;
    r.id = requests.size();
    r.arrival_s = t;
    r.prompt_tokens = seq.input;
    r.max_new_tokens = seq.output;
    requests.push_back(r);
  }
  StaticBatchPolicy policy(session, /*max_batch=*/4, seq);
  const EngineResult result = policy.run(std::move(requests));

  EXPECT_GT(result.energy_j, 0.0);
  ASSERT_EQ(result.request_metrics.size(), 12u);
  EXPECT_NEAR(attributed_sum_j(result), result.energy_j, 1e-9);
  // Batch-mates share the batch event evenly.
  for (const RequestMetrics& m : result.request_metrics) EXPECT_GT(m.energy_j, 0.0);
}

// ---------------------------------------------------------------------------
// Power/thermal governor
// ---------------------------------------------------------------------------

double sim_decode_power_w(const std::string& model_key, DType dtype, std::size_t batch,
                          double ctx, const sim::PowerMode& pm) {
  const sim::InferenceSim sim;
  const sim::ModelSpec& m = sim::model_by_key(model_key);
  const sim::StepBreakdown step = sim.roofline().decode_step(m, dtype, batch, ctx, pm);
  return sim.power_model().decode_power(m, dtype, step, pm).total_w();
}

TEST(EngineGovernorTest, PowerCapStepsDownLadderAndSustainsCap) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  // Cap between mode-A and MaxN decode power at this batch: one ladder step
  // clears the violation.
  const double ctx_hi = static_cast<double>(bc.seq.input + bc.seq.output);
  const double p_maxn = sim_decode_power_w(bc.model_key, bc.dtype, 8,
                                           static_cast<double>(bc.seq.input),
                                           sim::power_mode_maxn());
  const double p_a =
      sim_decode_power_w(bc.model_key, bc.dtype, 8, ctx_hi, sim::power_mode_by_name("A"));
  ASSERT_LT(p_a, p_maxn);
  GovernorConfig gov;
  gov.power_cap_w = 0.5 * (p_a + p_maxn);

  SimTokenBackend backend(bc);
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 1000.0;  // flood: one prefill wave, then pure decode
  arrivals.total_requests = 8;
  const EngineResult result =
      ContinuousPolicy(backend, gov).run(sim_request_stream(bc, arrivals));

  EXPECT_EQ(result.latencies_s.size(), 8u);
  EXPECT_GE(result.governor_step_downs, 1u);
  const trace::ExecutionTimeline& tl = result.timeline;
  EXPECT_GE(tl.governor_event_count(trace::GovernorEventKind::kPowerCapStepDown), 1u);

  // Sustained compliance: every powered step after the last governor action
  // runs at or below the cap.
  const double last_action_t = tl.governor_events().back().t_s;
  std::size_t steps_after = 0;
  for (const trace::StepEvent& e : tl.events()) {
    if (!e.has_power() || e.t_start_s < last_action_t) continue;
    EXPECT_LE(e.power_w, gov.power_cap_w + 1e-9);
    ++steps_after;
  }
  EXPECT_GT(steps_after, 0u);

  // Governor actions reach the exported traces; attribution still conserves.
  EXPECT_NE(trace::to_jsonl(tl).find("\"governor\""), std::string::npos);
  EXPECT_NE(trace::to_chrome_trace_json(tl).find("governor:"), std::string::npos);
  EXPECT_NEAR(attributed_sum_j(result), result.energy_j, 1e-9);
}

TEST(EngineGovernorTest, LadderFloorDefersAdmissionsThenResumes) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 4;
  // Single-rung ladder (the starting mode only): the governor has no DVFS
  // lever, so its only recourse is admission deferral.
  const double ctx_hi = static_cast<double>(bc.seq.input + bc.seq.output);
  const double p_b4 = sim_decode_power_w(bc.model_key, bc.dtype, 4,
                                         static_cast<double>(bc.seq.input),
                                         sim::power_mode_maxn());
  const double p_b2 = sim_decode_power_w(bc.model_key, bc.dtype, 2, ctx_hi,
                                         sim::power_mode_maxn());
  ASSERT_LT(p_b2, p_b4);
  GovernorConfig gov;
  gov.power_cap_w = 0.5 * (p_b2 + p_b4);
  gov.ladder = {sim::power_mode_maxn()};

  SimTokenBackend backend(bc);
  // Flood, staggered lengths: the batch shrinks by attrition while deferral
  // holds, power falls under the cap, admissions resume.
  std::vector<Request> requests;
  for (std::size_t i = 0; i < 10; ++i) {
    Request r;
    r.id = i;
    r.arrival_s = 0.0;
    r.prompt_tokens = bc.seq.input;
    r.max_new_tokens = 4 + 6 * i;
    requests.push_back(r);
  }
  const EngineResult result = ContinuousPolicy(backend, gov).run(std::move(requests));

  EXPECT_EQ(result.latencies_s.size(), 10u);
  EXPECT_EQ(result.governor_step_downs, 0u);  // no rung to step to
  const trace::ExecutionTimeline& tl = result.timeline;
  EXPECT_GE(tl.governor_event_count(trace::GovernorEventKind::kAdmitDefer), 1u);
  EXPECT_GE(tl.governor_event_count(trace::GovernorEventKind::kAdmitResume), 1u);
  EXPECT_NEAR(attributed_sum_j(result), result.energy_j, 1e-9);
}

TEST(EngineGovernorTest, ThermalLoopStepsDownWhenHot) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  GovernorConfig gov;
  gov.thermal_enabled = true;
  gov.thermal = sim::ThermalParams::fanless_enclosure();
  // Hot start above the throttle threshold: the first observed step trips
  // the thermal descent.
  gov.initial_temp_c = gov.thermal.throttle_start_c + 5.0;

  SimTokenBackend backend(bc);
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 1000.0;
  arrivals.total_requests = 8;
  const EngineResult result =
      ContinuousPolicy(backend, gov).run(sim_request_stream(bc, arrivals));

  EXPECT_EQ(result.latencies_s.size(), 8u);
  const trace::ExecutionTimeline& tl = result.timeline;
  ASSERT_GE(tl.governor_event_count(trace::GovernorEventKind::kThermalStepDown), 1u);
  for (const trace::GovernorEvent& e : tl.governor_events()) {
    EXPECT_GT(e.temp_c, 0.0);  // thermal runs carry the junction estimate
  }
  EXPECT_GE(result.governor_step_downs, 1u);
}

TEST(EngineGovernorTest, DisabledGovernorLeavesScheduleAndTraceUntouched) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.total_requests = 16;

  SimTokenBackend plain(bc);
  const EngineResult baseline =
      ContinuousPolicy(plain).run(sim_request_stream(bc, arrivals));
  SimTokenBackend gated(bc);
  const EngineResult governed =
      ContinuousPolicy(gated, GovernorConfig{}).run(sim_request_stream(bc, arrivals));

  // Default config = governor off: byte-identical serialization, no events.
  EXPECT_EQ(baseline.governor_step_downs, 0u);
  EXPECT_EQ(governed.governor_step_downs, 0u);
  EXPECT_TRUE(governed.timeline.governor_events().empty());
  const std::string jsonl = trace::to_jsonl(governed.timeline);
  EXPECT_EQ(jsonl.find("governor"), std::string::npos);
  EXPECT_EQ(jsonl, trace::to_jsonl(baseline.timeline));
  EXPECT_EQ(trace::to_chrome_trace_json(governed.timeline),
            trace::to_chrome_trace_json(baseline.timeline));
}

// ---------------------------------------------------------------------------
// Functional backend (real decoding over the paged cache)
// ---------------------------------------------------------------------------

class FunctionalEngineTest : public ::testing::Test {
 protected:
  FunctionalEngineTest()
      : corpus_(workload::generate_corpus(workload::CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 400)),
        pool_(corpus_, tokenizer_, 256),
        master_(MasterWeights::init_random(
            make_nano_config("llama3", tokenizer_.vocab_size()), 17)) {}

  workload::Corpus corpus_;
  Tokenizer tokenizer_;
  workload::PromptPool pool_;
  std::shared_ptr<MasterWeights> master_;
};

TEST_F(FunctionalEngineTest, PreemptionRecomputeIsLossless) {
  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;  // flood: all requests arrive near t=0
  cfg.arrivals.total_requests = 6;
  cfg.seq = workload::SeqConfig{24, 8, 16};
  cfg.max_concurrency = 3;
  cfg.block_tokens = 4;

  // Baseline: unlimited pool, no preemption.
  const EngineResult baseline = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_EQ(baseline.preemptions, 0u);
  ASSERT_EQ(baseline.requests.size(), 6u);

  // Pressured: 3 lanes at 24 tokens need 18 blocks; 12 forces eviction.
  cfg.kv_blocks = 12;
  const EngineResult pressured = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_GT(pressured.preemptions, 0u);
  ASSERT_EQ(pressured.requests.size(), 6u);

  // Greedy decoding makes recompute-on-resume reproduce the interrupted
  // sequence exactly: token streams match the no-pressure run bit for bit.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(pressured.requests[i].prompt, baseline.requests[i].prompt);
    EXPECT_EQ(pressured.requests[i].output, baseline.requests[i].output) << "request " << i;
    EXPECT_EQ(pressured.requests[i].generated, 16u);
  }
}

TEST_F(FunctionalEngineTest, ParallelDecodeMatchesSerialUnderPreemption) {
  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;
  cfg.arrivals.total_requests = 6;
  cfg.seq = workload::SeqConfig{24, 8, 16};
  cfg.max_concurrency = 3;
  cfg.block_tokens = 4;
  cfg.kv_blocks = 12;

  const EngineResult serial = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  cfg.decode_workers = 4;
  const EngineResult pooled = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  ASSERT_EQ(pooled.requests.size(), serial.requests.size());
  for (std::size_t i = 0; i < serial.requests.size(); ++i) {
    EXPECT_EQ(pooled.requests[i].output, serial.requests[i].output) << "request " << i;
  }
  // Preemption *counts* are schedule-dependent (measured wall-clock drives
  // admission timing), but under a flooded queue both runs must hit pressure.
  EXPECT_GT(serial.preemptions, 0u);
  EXPECT_GT(pooled.preemptions, 0u);
}

TEST_F(FunctionalEngineTest, PowerProxyAttributesEnergyAndConservesUnderPreemption) {
  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;
  cfg.arrivals.total_requests = 6;
  cfg.seq = workload::SeqConfig{24, 8, 16};
  cfg.max_concurrency = 3;
  cfg.block_tokens = 4;
  cfg.kv_blocks = 12;  // oversubscribed: preemption under the proxy too

  // Without the proxy the measured engine has no board sensor: zero energy,
  // zero attribution, legacy serialization.
  const EngineResult plain = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_EQ(plain.energy_j, 0.0);
  for (const RequestMetrics& m : plain.request_metrics) EXPECT_EQ(m.energy_j, 0.0);
  // Legacy serialization: no sensor, every step exports "power_w":null.
  EXPECT_NE(trace::to_jsonl(plain.timeline).find("\"power_w\":null"), std::string::npos);

  // With the proxy every measured step carries the modeled wattage for the
  // paper-scale model; served traffic now has a conserved energy account.
  cfg.power_proxy_model = "llama3";
  const EngineResult proxied = run_functional_continuous(master_, DType::kF32, pool_, cfg);
  EXPECT_GT(proxied.preemptions, 0u);
  EXPECT_GT(proxied.energy_j, 0.0);
  ASSERT_EQ(proxied.request_metrics.size(), 6u);
  EXPECT_NEAR(attributed_sum_j(proxied), proxied.energy_j, 1e-9);
  for (const RequestMetrics& m : proxied.request_metrics) {
    EXPECT_GT(m.energy_j, 0.0);
    EXPECT_GT(m.energy_per_token_j, 0.0);
  }
  // The proxy only annotates: token streams stay bit-identical.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(proxied.requests[i].output, plain.requests[i].output) << "request " << i;
  }
  // The proxied signal feeds the jtop sampling pipeline.
  const telemetry::PowerSignal signal = proxied.timeline.power_signal();
  EXPECT_GT(signal.duration_s(), 0.0);
  EXPECT_NEAR(signal.exact_energy_j(), proxied.energy_j, 1e-9 * proxied.energy_j + 1e-12);
}

// The acceptance run: a 64-request Poisson stream on the real engine, lane
// count above what the block pool sustains at full sequence length, every
// request finishing via preemption + lossless resume, latencies and
// occupancy read off the one timeline.
TEST_F(FunctionalEngineTest, SixtyFourRequestPoissonRunWithOversubscribedPool) {
  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;
  cfg.arrivals.total_requests = 64;
  cfg.seq = workload::SeqConfig{16, 8, 8};
  cfg.max_concurrency = 6;
  cfg.block_tokens = 4;
  cfg.kv_blocks = 16;  // holds only 4 full 16-token sequences

  // max_concurrency exceeds the pool's dense capacity — the dense layout
  // could not even admit this lane count.
  ASSERT_GT(cfg.max_concurrency,
            cfg.kv_blocks * cfg.block_tokens / (cfg.seq.input + cfg.seq.output));

  const EngineResult result = run_functional_continuous(master_, DType::kF32, pool_, cfg);

  ASSERT_EQ(result.latencies_s.size(), 64u);
  for (double lat : result.latencies_s) EXPECT_GT(lat, 0.0);
  EXPECT_GT(result.preemptions, 0u);
  for (const Request& r : result.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
    EXPECT_EQ(r.output.size(), 8u);
  }
  EXPECT_GT(result.total_tokens, 0u);
  EXPECT_GT(result.throughput_tps(), 0.0);
  EXPECT_GT(result.mean_latency_s(), 0.0);
  EXPECT_GE(result.p95_latency_s(), result.mean_latency_s());

  // KV occupancy comes from the annotated StepEvents.
  EXPECT_GT(result.mean_kv_utilization, 0.0);
  EXPECT_LE(result.peak_kv_blocks, cfg.kv_blocks);
  EXPECT_GT(result.peak_kv_blocks, 0u);
  EXPECT_GT(result.peak_kv_bytes, 0u);
  EXPECT_EQ(result.peak_kv_bytes % result.peak_kv_blocks, 0u);  // blocks * block_bytes
  EXPECT_NE(trace::to_jsonl(result.timeline).find("\"kv_blocks_used\""), std::string::npos);
  EXPECT_EQ(result.timeline.request_event_count(trace::RequestEventKind::kRetire), 64u);
  EXPECT_EQ(result.timeline.request_event_count(trace::RequestEventKind::kPreempt),
            result.preemptions);
}

// ---------------------------------------------------------------------------
// Steppable engine: submit/step/drain over the same scheduler core
// ---------------------------------------------------------------------------

TEST(EngineSteppableTest, StepLoopReproducesRunToCompletionExactly) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 8;
  bc.block_tokens = 16;
  bc.kv_blocks = 30;  // oversubscribed: schedule includes preemptions
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.rate_rps = 8.0;
  arrivals.total_requests = 32;

  SimTokenBackend policy_backend(bc);
  const EngineResult via_policy =
      ContinuousPolicy(policy_backend).run(sim_request_stream(bc, arrivals));

  SimTokenBackend engine_backend(bc);
  ContinuousEngine engine(engine_backend);
  std::vector<Request> stream = sim_request_stream(bc, arrivals);
  for (Request& r : stream) engine.submit(std::move(r));
  std::size_t steps = 0;
  while (engine.step() == ContinuousEngine::Step::kWorked) ++steps;
  EXPECT_GT(steps, 0u);
  EXPECT_TRUE(engine.idle());
  const EngineResult via_steps = engine.finish();

  // Same scheduler core, two drivers: the executed schedules serialize to
  // byte-identical traces and the derived metrics agree exactly.
  EXPECT_EQ(trace::to_jsonl(via_steps.timeline), trace::to_jsonl(via_policy.timeline));
  EXPECT_EQ(via_steps.preemptions, via_policy.preemptions);
  EXPECT_DOUBLE_EQ(via_steps.makespan_s, via_policy.makespan_s);
  EXPECT_DOUBLE_EQ(via_steps.energy_j, via_policy.energy_j);
  ASSERT_EQ(via_steps.latencies_s.size(), via_policy.latencies_s.size());
  for (std::size_t i = 0; i < via_steps.latencies_s.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_steps.latencies_s[i], via_policy.latencies_s[i]);
  }
}

TEST(EngineSteppableTest, DrainRejectsNewWorkAndRetiresInFlight) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 4;
  workload::ArrivalConfig arrivals;
  arrivals.kind = workload::ArrivalKind::kPoisson;
  arrivals.total_requests = 8;
  SimTokenBackend backend(bc);
  ContinuousEngine engine(backend);
  std::vector<Request> stream = sim_request_stream(bc, arrivals);
  for (Request& r : stream) engine.submit(std::move(r));

  // Let part of the work through, then drain mid-flight.
  for (int i = 0; i < 3; ++i) engine.step();
  EXPECT_GT(engine.active_count() + engine.queue_depth(), 0u);
  engine.drain();
  EXPECT_TRUE(engine.draining());
  EXPECT_FALSE(engine.drained());

  // No admissions past the drain point...
  Request late;
  late.prompt_tokens = bc.seq.input;
  late.max_new_tokens = bc.seq.output;
  EXPECT_EQ(engine.submit(std::move(late)), ContinuousEngine::kRejected);
  EXPECT_EQ(engine.submitted_count(), 8u);

  // ...but everything in flight runs to retirement: zero dropped requests.
  while (engine.step() == ContinuousEngine::Step::kWorked) {
  }
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(engine.retired_count(), 8u);

  const EngineResult result = engine.finish();
  ASSERT_EQ(result.requests.size(), 8u);
  for (const Request& r : result.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
  }
  // Energy attribution still conserves over the drained schedule.
  EXPECT_GT(result.energy_j, 0.0);
  EXPECT_NEAR(attributed_sum_j(result), result.energy_j, 1e-9);
}

TEST(EngineSteppableTest, SecondDrainIsANoOp) {
  SimTokenBackend::Config bc;
  bc.max_concurrency = 4;
  workload::ArrivalConfig arrivals;
  arrivals.total_requests = 4;
  SimTokenBackend backend(bc);
  ContinuousEngine engine(backend);
  std::vector<Request> stream = sim_request_stream(bc, arrivals);
  for (Request& r : stream) engine.submit(std::move(r));

  engine.drain();
  engine.drain();  // idempotent
  while (engine.step() == ContinuousEngine::Step::kWorked) {
  }
  EXPECT_TRUE(engine.drained());
  engine.drain();  // still a no-op after the queue emptied
  EXPECT_TRUE(engine.drained());
  EXPECT_EQ(engine.retired_count(), 4u);
  EXPECT_EQ(engine.step(), ContinuousEngine::Step::kIdle);
}

TEST_F(FunctionalEngineTest, StreamCallbacksDeliverEveryTokenOnceUnderPreemption) {
  // Same pressured setup as PreemptionRecomputeIsLossless: recompute waves
  // regenerate recorded tokens internally, but the streamed sequence must
  // contain each token exactly once, in order, with on_finish after the
  // last on_token.
  Rng rng(99);
  const std::vector<std::vector<TokenId>> prompts = pool_.sample_batch(6, 24, rng);
  Model model(master_, DType::kF32);
  FunctionalTokenBackend::Config bc;
  bc.max_lanes = 3;
  bc.max_seq = 40;
  bc.block_tokens = 4;
  bc.kv_blocks = 12;
  FunctionalTokenBackend backend(model, bc);

  ContinuousEngine engine(backend);
  std::vector<std::vector<TokenId>> streamed(6);
  std::vector<std::size_t> finishes(6, 0);
  for (std::size_t i = 0; i < 6; ++i) {
    Request r;
    r.prompt = prompts[i];
    r.prompt_tokens = prompts[i].size();
    r.max_new_tokens = 16;
    StreamCallbacks cb;
    cb.on_token = [&streamed, i](const Request&, TokenId token) {
      streamed[i].push_back(token);
    };
    cb.on_finish = [&streamed, &finishes, i](const Request& req) {
      ++finishes[i];
      EXPECT_EQ(streamed[i].size(), req.generated);  // after the last token
    };
    engine.submit(std::move(r), std::move(cb));
  }
  while (engine.step() == ContinuousEngine::Step::kWorked) {
  }
  const EngineResult result = engine.finish();

  EXPECT_GT(result.preemptions, 0u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(finishes[i], 1u);
    EXPECT_EQ(streamed[i], result.requests[i].output) << "request " << i;
    EXPECT_EQ(streamed[i].size(), 16u);
  }
}

}  // namespace
}  // namespace orinsim::serving
