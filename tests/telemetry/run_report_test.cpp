#include "telemetry/run_report.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace orinsim::telemetry {
namespace {

RunMetrics make_run(double latency) {
  RunMetrics m;
  m.latency_s = latency;
  m.throughput_tps = 96.0 / latency;
  m.median_power_w = 45.0;
  m.energy_j = 45.0 * latency;
  m.energy_per_token_j = m.energy_j / 96.0;
  return m;
}

TEST(RunAggregatorTest, WarmupExcluded) {
  RunAggregator agg(1);
  agg.add(make_run(100.0));  // warm-up outlier (paper: first run discarded)
  agg.add(make_run(10.0));
  agg.add(make_run(12.0));
  EXPECT_EQ(agg.measured_count(), 2u);
  EXPECT_EQ(agg.total_count(), 3u);
  EXPECT_DOUBLE_EQ(agg.mean().latency_s, 11.0);
}

TEST(RunAggregatorTest, MeanAveragesAllMetrics) {
  RunAggregator agg(0);
  agg.add(make_run(10.0));
  agg.add(make_run(20.0));
  const RunMetrics m = agg.mean();
  EXPECT_DOUBLE_EQ(m.latency_s, 15.0);
  EXPECT_DOUBLE_EQ(m.energy_j, 45.0 * 15.0);
  EXPECT_DOUBLE_EQ(m.energy_per_token_j, 45.0 * 15.0 / 96.0);
}

TEST(RunAggregatorTest, NoMeasuredRunsRejected) {
  RunAggregator agg(1);
  agg.add(make_run(10.0));  // warm-up only
  EXPECT_EQ(agg.measured_count(), 0u);
  EXPECT_THROW(agg.mean(), ContractViolation);
}

TEST(RunAggregatorTest, LatencyCv) {
  RunAggregator agg(0);
  agg.add(make_run(10.0));
  agg.add(make_run(10.0));
  EXPECT_DOUBLE_EQ(agg.latency_cv(), 0.0);
  agg.add(make_run(13.0));
  EXPECT_GT(agg.latency_cv(), 0.0);
  EXPECT_LT(agg.latency_cv(), 0.5);
}

}  // namespace
}  // namespace orinsim::telemetry
