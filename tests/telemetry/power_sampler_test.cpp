#include "telemetry/power_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"

namespace orinsim::telemetry {
namespace {

TEST(PowerSignalTest, AppendAndDuration) {
  PowerSignal s;
  s.append(2.0, 30.0);
  s.append(3.0, 50.0);
  EXPECT_DOUBLE_EQ(s.duration_s(), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.5), 50.0);
  EXPECT_DOUBLE_EQ(s.value_at(99.0), 50.0);  // clamps to last segment
}

TEST(PowerSignalTest, EqualPowerSegmentsMerge) {
  PowerSignal s;
  s.append(1.0, 40.0);
  s.append(1.0, 40.0);
  s.append(1.0, 45.0);
  EXPECT_EQ(s.power_w.size(), 2u);
  EXPECT_DOUBLE_EQ(s.duration_s(), 3.0);
}

TEST(PowerSignalTest, ExactEnergy) {
  PowerSignal s;
  s.append(2.0, 30.0);  // 60 J
  s.append(4.0, 50.0);  // 200 J
  EXPECT_DOUBLE_EQ(s.exact_energy_j(), 260.0);
}

TEST(PowerSignalTest, RejectsNegativeInputs) {
  PowerSignal s;
  EXPECT_THROW(s.append(-1.0, 10.0), ContractViolation);
  EXPECT_THROW(s.append(1.0, -10.0), ContractViolation);
}

TEST(PowerSamplerTest, TwoSecondCadence) {
  PowerSignal s;
  s.append(9.0, 40.0);
  Rng rng(1);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  // t = 0, 2, 4, 6, 8 plus closing sample at 9.0.
  ASSERT_EQ(trace.t_s.size(), 6u);
  EXPECT_DOUBLE_EQ(trace.t_s.back(), 9.0);
  for (double p : trace.power_w) EXPECT_DOUBLE_EQ(p, 40.0);
}

TEST(PowerSamplerTest, TrapezoidRecoversConstantSignalEnergy) {
  PowerSignal s;
  s.append(10.0, 35.0);
  Rng rng(2);
  const PowerSampler sampler(2.0, 0.0);
  const BatchPowerStats stats = summarize(sampler.sample(s, rng));
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), 1e-9);
  EXPECT_DOUBLE_EQ(stats.median_power_w, 35.0);
}

TEST(PowerSamplerTest, TwoPhaseSignalEnergyApproximation) {
  // Prefill at 55 W for 3 s then decode at 42 W for 17 s; 2 s sampling gives
  // a small aliasing error, bounded by one period at the transition.
  PowerSignal s;
  s.append(3.0, 55.0);
  s.append(17.0, 42.0);
  Rng rng(3);
  const PowerSampler sampler(2.0, 0.0);
  const BatchPowerStats stats = summarize(sampler.sample(s, rng));
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), 2.0 * (55.0 - 42.0));
  EXPECT_DOUBLE_EQ(stats.median_power_w, 42.0);  // decode dominates samples
}

TEST(PowerSamplerTest, NoiseIsZeroMeanish) {
  PowerSignal s;
  s.append(2000.0, 40.0);
  Rng rng(4);
  const PowerSampler sampler(2.0, 0.05);
  const BatchPowerStats stats = summarize(sampler.sample(s, rng));
  EXPECT_NEAR(stats.median_power_w, 40.0, 1.0);
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), s.exact_energy_j() * 0.02);
}

TEST(PowerSignalTest, ValueAtSegmentBoundaries) {
  // Segments: [0,1) at 5 W, [1,3) at 7 W. A boundary instant belongs to the
  // segment that starts there; past-the-end clamps to the last segment.
  PowerSignal s;
  s.append(1.0, 5.0);
  s.append(2.0, 7.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.999), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 7.0);  // boundary -> starting segment
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 7.0);  // final boundary -> last segment
  EXPECT_DOUBLE_EQ(s.value_at(-1.0), 5.0);  // before start clamps to first
}

TEST(PowerSignalTest, ValueAtOnEmptySignalRejected) {
  const PowerSignal s;
  EXPECT_THROW(s.value_at(0.0), ContractViolation);
}

TEST(PowerSamplerTest, ShortBatchStillGetsTwoSamples) {
  PowerSignal s;
  s.append(0.5, 33.0);  // shorter than one period
  Rng rng(5);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  ASSERT_EQ(trace.t_s.size(), 2u);
  EXPECT_GT(summarize(trace).energy_j, 0.0);
}

}  // namespace
}  // namespace orinsim::telemetry
