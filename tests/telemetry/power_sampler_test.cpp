#include "telemetry/power_sampler.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/error.h"

namespace orinsim::telemetry {
namespace {

TEST(PowerSignalTest, AppendAndDuration) {
  PowerSignal s;
  s.append(2.0, 30.0);
  s.append(3.0, 50.0);
  EXPECT_DOUBLE_EQ(s.duration_s(), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.5), 50.0);
  EXPECT_DOUBLE_EQ(s.value_at(99.0), 50.0);  // clamps to last segment
}

TEST(PowerSignalTest, EqualPowerSegmentsMerge) {
  PowerSignal s;
  s.append(1.0, 40.0);
  s.append(1.0, 40.0);
  s.append(1.0, 45.0);
  EXPECT_EQ(s.power_w.size(), 2u);
  EXPECT_DOUBLE_EQ(s.duration_s(), 3.0);
}

TEST(PowerSignalTest, ExactEnergy) {
  PowerSignal s;
  s.append(2.0, 30.0);  // 60 J
  s.append(4.0, 50.0);  // 200 J
  EXPECT_DOUBLE_EQ(s.exact_energy_j(), 260.0);
}

TEST(PowerSignalTest, RejectsNegativeInputs) {
  PowerSignal s;
  EXPECT_THROW(s.append(-1.0, 10.0), ContractViolation);
  EXPECT_THROW(s.append(1.0, -10.0), ContractViolation);
}

TEST(PowerSamplerTest, TwoSecondCadence) {
  PowerSignal s;
  s.append(9.0, 40.0);
  Rng rng(1);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  // t = 0, 2, 4, 6, 8 plus closing sample at 9.0.
  ASSERT_EQ(trace.t_s.size(), 6u);
  EXPECT_DOUBLE_EQ(trace.t_s.back(), 9.0);
  for (double p : trace.power_w) EXPECT_DOUBLE_EQ(p, 40.0);
}

TEST(PowerSamplerTest, TrapezoidRecoversConstantSignalEnergy) {
  PowerSignal s;
  s.append(10.0, 35.0);
  Rng rng(2);
  const PowerSampler sampler(2.0, 0.0);
  const BatchPowerStats stats = summarize(sampler.sample(s, rng));
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), 1e-9);
  EXPECT_DOUBLE_EQ(stats.median_power_w, 35.0);
}

TEST(PowerSamplerTest, TwoPhaseSignalEnergyApproximation) {
  // Prefill at 55 W for 3 s then decode at 42 W for 17 s; 2 s sampling gives
  // a small aliasing error, bounded by one period at the transition.
  PowerSignal s;
  s.append(3.0, 55.0);
  s.append(17.0, 42.0);
  Rng rng(3);
  const PowerSampler sampler(2.0, 0.0);
  const BatchPowerStats stats = summarize(sampler.sample(s, rng));
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), 2.0 * (55.0 - 42.0));
  EXPECT_DOUBLE_EQ(stats.median_power_w, 42.0);  // decode dominates samples
}

TEST(PowerSamplerTest, NoiseIsZeroMeanish) {
  PowerSignal s;
  s.append(2000.0, 40.0);
  Rng rng(4);
  const PowerSampler sampler(2.0, 0.05);
  const BatchPowerStats stats = summarize(sampler.sample(s, rng));
  EXPECT_NEAR(stats.median_power_w, 40.0, 1.0);
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), s.exact_energy_j() * 0.02);
}

TEST(PowerSignalTest, ValueAtSegmentBoundaries) {
  // Segments: [0,1) at 5 W, [1,3) at 7 W. A boundary instant belongs to the
  // segment that starts there; past-the-end clamps to the last segment.
  PowerSignal s;
  s.append(1.0, 5.0);
  s.append(2.0, 7.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.999), 5.0);
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 7.0);  // boundary -> starting segment
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 7.0);  // final boundary -> last segment
  EXPECT_DOUBLE_EQ(s.value_at(-1.0), 5.0);  // before start clamps to first
}

TEST(PowerSignalTest, ValueAtOnEmptySignalRejected) {
  const PowerSignal s;
  EXPECT_THROW(s.value_at(0.0), ContractViolation);
}

TEST(PowerSamplerTest, ShortBatchStillGetsTwoSamples) {
  PowerSignal s;
  s.append(0.5, 33.0);  // shorter than one period
  Rng rng(5);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  ASSERT_EQ(trace.t_s.size(), 2u);
  EXPECT_GT(summarize(trace).energy_j, 0.0);
}

TEST(PowerSamplerTest, EmptySignalYieldsEmptyTrace) {
  const PowerSignal s;
  Rng rng(6);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  EXPECT_TRUE(trace.t_s.empty());
  EXPECT_TRUE(trace.power_w.empty());
}

TEST(PowerSamplerTest, ZeroDurationOnlySignalYieldsEmptyTrace) {
  // Zero-duration appends record no segment (power_w stays empty, t_s holds
  // the origin); the sampler must treat that like an empty signal rather
  // than crash on value_at.
  PowerSignal s;
  s.append(0.0, 40.0);
  s.append(0.0, 55.0);
  EXPECT_TRUE(s.power_w.empty());
  EXPECT_DOUBLE_EQ(s.duration_s(), 0.0);
  Rng rng(7);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  EXPECT_TRUE(trace.t_s.empty());
  EXPECT_TRUE(trace.power_w.empty());
}

TEST(PowerSamplerTest, GridPointOnSignalEndIsNotDuplicated) {
  // Duration an exact multiple of the period: the last grid point coincides
  // with the closing sample. The accumulating-float loop could emit both
  // (a zero-width trapezoid slab and a skewed median); the index-based grid
  // keeps exactly one sample per instant.
  PowerSignal s;
  s.append(10.0, 40.0);  // grid: 0, 2, 4, 6, 8 — and the end is t = 10
  Rng rng(8);
  const PowerSampler sampler(2.0, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  ASSERT_EQ(trace.t_s.size(), 6u);
  for (std::size_t i = 1; i < trace.t_s.size(); ++i) {
    EXPECT_GT(trace.t_s[i], trace.t_s[i - 1]);
  }
  EXPECT_DOUBLE_EQ(trace.t_s.back(), 10.0);
}

TEST(PowerSamplerTest, FractionalPeriodGridHasStrictlyIncreasingTimes) {
  // 0.7 s period over a 2.1 s signal: 3 * 0.7 is not exact in binary, the
  // textbook case where t += period drifts a grid point to within 1e-16 of
  // the end and duplicates the closing sample.
  PowerSignal s;
  s.append(2.1, 50.0);
  Rng rng(9);
  const PowerSampler sampler(0.7, 0.0);
  const SampledTrace trace = sampler.sample(s, rng);
  ASSERT_EQ(trace.t_s.size(), 4u);  // 0, 0.7, 1.4 + closing 2.1
  for (std::size_t i = 1; i < trace.t_s.size(); ++i) {
    EXPECT_GT(trace.t_s[i], trace.t_s[i - 1]);
  }
  EXPECT_DOUBLE_EQ(trace.t_s.back(), 2.1);
}

TEST(PowerSignalTest, ZeroDurationAppendBetweenSegmentsIsInvisible) {
  PowerSignal a;
  a.append(1.0, 30.0);
  a.append(0.0, 99.0);  // no time passes: must not create a segment
  a.append(1.0, 30.0);  // merges with the first segment
  PowerSignal b;
  b.append(2.0, 30.0);
  EXPECT_EQ(a.power_w, b.power_w);
  EXPECT_EQ(a.t_s, b.t_s);
  EXPECT_DOUBLE_EQ(a.exact_energy_j(), b.exact_energy_j());
}

TEST(PowerSamplerTest, DenseSamplingTrapezoidApproachesExactEnergy) {
  // A multi-segment signal sampled far below the segment scale: the
  // trapezoid estimate converges to the piecewise-constant ground truth.
  PowerSignal s;
  s.append(3.0, 55.0);
  s.append(10.0, 42.0);
  s.append(5.0, 47.0);
  Rng rng(10);
  const PowerSampler dense(0.01, 0.0);
  const BatchPowerStats stats = summarize(dense.sample(s, rng));
  EXPECT_NEAR(stats.energy_j, s.exact_energy_j(), s.exact_energy_j() * 0.01);
}

TEST(PowerSignalTest, ValueAtOnEveryKnot) {
  // Knots: 0, 2, 5, 9. A knot belongs to the segment starting there.
  PowerSignal s;
  s.append(2.0, 10.0);
  s.append(3.0, 20.0);
  s.append(4.0, 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.0), 20.0);
  EXPECT_DOUBLE_EQ(s.value_at(5.0), 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(9.0), 30.0);  // end knot clamps to last
}

}  // namespace
}  // namespace orinsim::telemetry
