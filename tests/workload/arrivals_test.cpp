#include "workload/arrivals.h"

#include <gtest/gtest.h>

namespace orinsim::workload {
namespace {

TEST(ArrivalsTest, DeterministicSpacing) {
  ArrivalSpec spec;
  spec.rate_rps = 4.0;
  const auto arrivals = generate_arrivals(spec, 9);
  ASSERT_EQ(arrivals.size(), 9u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i] - arrivals[i - 1], 0.25);
  }
  const ArrivalStats stats = analyze_arrivals(arrivals);
  EXPECT_NEAR(stats.mean_rate_rps, 4.0, 1e-9);
  EXPECT_NEAR(stats.interarrival_scv, 0.0, 1e-12);
}

TEST(ArrivalsTest, PoissonRateAndVariability) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_rps = 5.0;
  const auto arrivals = generate_arrivals(spec, 20000);
  const ArrivalStats stats = analyze_arrivals(arrivals);
  EXPECT_NEAR(stats.mean_rate_rps, 5.0, 0.2);
  // Exponential inter-arrivals: SCV = 1.
  EXPECT_NEAR(stats.interarrival_scv, 1.0, 0.1);
}

TEST(ArrivalsTest, BurstyIsOverdispersed) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBursty;
  spec.rate_rps = 5.0;
  spec.burst_factor = 6.0;
  const auto arrivals = generate_arrivals(spec, 20000);
  const ArrivalStats stats = analyze_arrivals(arrivals);
  EXPECT_GT(stats.interarrival_scv, 1.3);  // burstier than Poisson
  // Mean rate within a factor ~1.5 of nominal (phase randomness).
  EXPECT_NEAR(stats.mean_rate_rps, 5.0, 2.5);
}

TEST(ArrivalsTest, MonotonicTimestamps) {
  for (ArrivalKind kind :
       {ArrivalKind::kDeterministic, ArrivalKind::kPoisson, ArrivalKind::kBursty}) {
    ArrivalSpec spec;
    spec.kind = kind;
    const auto arrivals = generate_arrivals(spec, 500);
    ASSERT_EQ(arrivals.size(), 500u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      EXPECT_GE(arrivals[i], arrivals[i - 1]);
    }
    EXPECT_GE(arrivals.front(), 0.0);
  }
}

TEST(ArrivalsTest, DeterministicForSeed) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.seed = 77;
  EXPECT_EQ(generate_arrivals(spec, 100), generate_arrivals(spec, 100));
  spec.seed = 78;
  EXPECT_NE(generate_arrivals(spec, 100), generate_arrivals(ArrivalSpec{}, 100));
}

TEST(ArrivalsTest, InvalidSpecsRejected) {
  ArrivalSpec spec;
  spec.rate_rps = 0.0;
  EXPECT_THROW(generate_arrivals(spec, 10), ContractViolation);
  spec = ArrivalSpec{};
  spec.burst_factor = 0.5;
  EXPECT_THROW(generate_arrivals(spec, 10), ContractViolation);
}

}  // namespace
}  // namespace orinsim::workload
