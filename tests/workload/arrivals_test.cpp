#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include <cmath>

namespace orinsim::workload {
namespace {

TEST(ArrivalsTest, DeterministicSpacing) {
  ArrivalSpec spec;
  spec.rate_rps = 4.0;
  const auto arrivals = generate_arrivals(spec, 9);
  ASSERT_EQ(arrivals.size(), 9u);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(arrivals[i] - arrivals[i - 1], 0.25);
  }
  const ArrivalStats stats = analyze_arrivals(arrivals);
  EXPECT_NEAR(stats.mean_rate_rps, 4.0, 1e-9);
  EXPECT_NEAR(stats.interarrival_scv, 0.0, 1e-12);
}

TEST(ArrivalsTest, PoissonRateAndVariability) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_rps = 5.0;
  const auto arrivals = generate_arrivals(spec, 20000);
  const ArrivalStats stats = analyze_arrivals(arrivals);
  EXPECT_NEAR(stats.mean_rate_rps, 5.0, 0.2);
  // Exponential inter-arrivals: SCV = 1.
  EXPECT_NEAR(stats.interarrival_scv, 1.0, 0.1);
}

TEST(ArrivalsTest, BurstyIsOverdispersed) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBursty;
  spec.rate_rps = 5.0;
  spec.burst_factor = 6.0;
  const auto arrivals = generate_arrivals(spec, 20000);
  const ArrivalStats stats = analyze_arrivals(arrivals);
  EXPECT_GT(stats.interarrival_scv, 1.3);  // burstier than Poisson
  // Mean rate within a factor ~1.5 of nominal (phase randomness).
  EXPECT_NEAR(stats.mean_rate_rps, 5.0, 2.5);
}

TEST(ArrivalsTest, DiurnalFollowsRateCurve) {
  // Distribution-shape pin (the ZipfSampler discipline): the empirical rate
  // of each curve segment must track rate_rps * multiplier, so peak segments
  // arrive proportionally faster than troughs.
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_rps = 50.0;
  spec.diurnal_multipliers = {0.25, 1.0, 2.0, 0.75};
  spec.diurnal_period_s = 40.0;
  const auto arrivals = generate_arrivals(spec, 40000);
  const auto rates =
      diurnal_segment_rates(arrivals, spec.diurnal_multipliers, spec.diurnal_period_s);
  ASSERT_EQ(rates.size(), 4u);
  for (std::size_t k = 0; k < rates.size(); ++k) {
    const double expected = spec.rate_rps * spec.diurnal_multipliers[k];
    EXPECT_NEAR(rates[k], expected, 0.12 * expected) << "segment " << k;
  }
  // The curve modulation makes the stream overdispersed relative to Poisson.
  EXPECT_GT(analyze_arrivals(arrivals).interarrival_scv, 1.1);
}

TEST(ArrivalsTest, DiurnalDefaultCurveMeanRate) {
  // The default curve averages to 1.0, so rate_rps stays the long-run mean.
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_rps = 20.0;
  const auto arrivals = generate_arrivals(spec, 30000);
  EXPECT_NEAR(analyze_arrivals(arrivals).mean_rate_rps, 20.0, 2.0);
  double sum = 0.0;
  for (double m : diurnal_default_curve()) sum += m;
  EXPECT_NEAR(sum / static_cast<double>(diurnal_default_curve().size()), 1.0, 1e-12);
}

TEST(ArrivalsTest, DiurnalDeadSegmentsProduceNoArrivals) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_rps = 10.0;
  spec.diurnal_multipliers = {0.0, 1.0};
  spec.diurnal_period_s = 10.0;
  const auto arrivals = generate_arrivals(spec, 2000);
  for (double t : arrivals) {
    EXPECT_GE(std::fmod(t, 10.0), 5.0) << "arrival inside the dead segment at t=" << t;
  }
}

TEST(ArrivalsTest, BurstyPhaseRatesSplitAroundMean) {
  // Shape pin for the on/off Markov process: classifying inter-arrival gaps
  // by a threshold between the two phase means must recover rates near
  // hi = 2rb/(b+1) and lo = 2r/(b+1).
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kBursty;
  spec.rate_rps = 5.0;
  spec.burst_factor = 8.0;
  spec.mean_phase_s = 20.0;
  const auto arrivals = generate_arrivals(spec, 40000);
  const double hi = 2.0 * 5.0 * 8.0 / 9.0;
  const double lo = 2.0 * 5.0 / 9.0;
  const double threshold = 0.5 * (1.0 / hi + 1.0 / lo);
  std::vector<double> burst_gaps, quiet_gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = arrivals[i] - arrivals[i - 1];
    (gap < threshold ? burst_gaps : quiet_gaps).push_back(gap);
  }
  ASSERT_GT(burst_gaps.size(), 100u);
  ASSERT_GT(quiet_gaps.size(), 100u);
  double burst_mean = 0.0, quiet_mean = 0.0;
  for (double g : burst_gaps) burst_mean += g;
  for (double g : quiet_gaps) quiet_mean += g;
  burst_mean /= static_cast<double>(burst_gaps.size());
  quiet_mean /= static_cast<double>(quiet_gaps.size());
  // Threshold classification mixes the tails, so pin loosely: the burst-side
  // rate must sit clearly above the mean and the quiet side clearly below.
  EXPECT_GT(1.0 / burst_mean, 1.5 * spec.rate_rps);
  EXPECT_LT(1.0 / quiet_mean, 0.8 * spec.rate_rps);
}

TEST(ArrivalsTest, ArrivalConfigForwardsShapeKnobs) {
  // ArrivalConfig must hand burst/diurnal parameters through to the
  // generator (they were silently dropped before the fleet work).
  ArrivalConfig config;
  config.kind = ArrivalKind::kBursty;
  config.burst_factor = 9.0;
  config.mean_phase_s = 3.0;
  config.total_requests = 200;
  ArrivalSpec direct = config.spec();
  EXPECT_EQ(direct.burst_factor, 9.0);
  EXPECT_EQ(direct.mean_phase_s, 3.0);
  EXPECT_EQ(config.generate(), generate_arrivals(direct, 200));

  ArrivalConfig diurnal;
  diurnal.kind = ArrivalKind::kDiurnal;
  diurnal.diurnal_multipliers = {1.0, 3.0};
  diurnal.diurnal_period_s = 7.0;
  diurnal.total_requests = 100;
  EXPECT_EQ(diurnal.generate(), generate_arrivals(diurnal.spec(), 100));
  EXPECT_NE(diurnal.generate(), ArrivalConfig{}.generate());
}

TEST(ArrivalsTest, MonotonicTimestamps) {
  for (ArrivalKind kind : {ArrivalKind::kDeterministic, ArrivalKind::kPoisson,
                           ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    const auto arrivals = generate_arrivals(spec, 500);
    ASSERT_EQ(arrivals.size(), 500u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      EXPECT_GE(arrivals[i], arrivals[i - 1]);
    }
    EXPECT_GE(arrivals.front(), 0.0);
  }
}

TEST(ArrivalsTest, DeterministicForSeed) {
  for (ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kBursty, ArrivalKind::kDiurnal}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.seed = 77;
    EXPECT_EQ(generate_arrivals(spec, 100), generate_arrivals(spec, 100));
    spec.seed = 78;
    EXPECT_NE(generate_arrivals(spec, 100), generate_arrivals(ArrivalSpec{}, 100));
  }
}

TEST(ArrivalsTest, InvalidSpecsRejected) {
  ArrivalSpec spec;
  spec.rate_rps = 0.0;
  EXPECT_THROW(generate_arrivals(spec, 10), ContractViolation);
  spec = ArrivalSpec{};
  spec.burst_factor = 0.5;
  EXPECT_THROW(generate_arrivals(spec, 10), ContractViolation);
}

}  // namespace
}  // namespace orinsim::workload
