#include "workload/prompt_pool.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "workload/corpus.h"

namespace orinsim::workload {
namespace {

class PromptPoolTest : public ::testing::Test {
 protected:
  PromptPoolTest()
      : corpus_(generate_corpus(CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 800)),
        pool_(corpus_, tokenizer_, 256) {}

  Corpus corpus_;
  Tokenizer tokenizer_;
  PromptPool pool_;
};

TEST_F(PromptPoolTest, PoolOnlyKeepsLongParagraphs) {
  ASSERT_GT(pool_.size(), 0u);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    EXPECT_GE(pool_.prompt(i).size(), 256u);
  }
}

TEST_F(PromptPoolTest, SampleBatchExactLengths) {
  Rng rng(3);
  const auto batch = pool_.sample_batch(8, 32, rng);
  ASSERT_EQ(batch.size(), 8u);
  for (const auto& prompt : batch) EXPECT_EQ(prompt.size(), 32u);
}

TEST_F(PromptPoolTest, LongInputsStitchMultiplePrompts) {
  // input_tokens beyond any single pool paragraph: the paper's "multiples of
  // the 256-token prompts" rule.
  Rng rng(4);
  std::size_t longest = 0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    longest = std::max(longest, pool_.prompt(i).size());
  }
  const std::size_t target = longest + 100;
  const auto batch = pool_.sample_batch(2, target, rng);
  for (const auto& prompt : batch) EXPECT_EQ(prompt.size(), target);
}

TEST_F(PromptPoolTest, SamplingIsRandomButSeedDeterministic) {
  Rng r1(5), r2(5), r3(6);
  const auto a = pool_.sample_batch(4, 64, r1);
  const auto b = pool_.sample_batch(4, 64, r2);
  const auto c = pool_.sample_batch(4, 64, r3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_F(PromptPoolTest, EmptyRequestsRejected) {
  Rng rng(7);
  EXPECT_THROW(pool_.sample_batch(0, 32, rng), ContractViolation);
  EXPECT_THROW(pool_.sample_batch(4, 0, rng), ContractViolation);
}

TEST_F(PromptPoolTest, ChatBatchSharesZipfianSystemPrefixes) {
  ChatWorkloadConfig chat;
  chat.system_prompts = 4;
  chat.zipf_s = 1.1;
  chat.system_tokens = 32;
  chat.user_tokens = 8;
  Rng rng(9);
  const auto batch = pool_.sample_chat_batch(64, chat, rng);
  ASSERT_EQ(batch.size(), 64u);

  std::set<std::vector<TokenId>> prefixes;
  std::set<std::vector<TokenId>> suffixes;
  for (const auto& prompt : batch) {
    ASSERT_EQ(prompt.size(), chat.prompt_tokens());
    prefixes.insert({prompt.begin(), prompt.begin() + 32});
    suffixes.insert({prompt.begin() + 32, prompt.end()});
  }
  // Every request reuses one of the shared system prompts; suffixes are
  // per-user and should be (nearly) all distinct.
  EXPECT_LE(prefixes.size(), chat.system_prompts);
  EXPECT_GE(prefixes.size(), 2u);  // the Zipf draw is skewed, not degenerate
  EXPECT_GT(suffixes.size(), prefixes.size());

  // Deterministic under the seed, distinct under another.
  Rng r2(9), r3(10);
  EXPECT_EQ(pool_.sample_chat_batch(64, chat, r2), batch);
  EXPECT_NE(pool_.sample_chat_batch(64, chat, r3), batch);
}

TEST(ZipfSamplerTest, EmpiricalFrequenciesMatchTheLaw) {
  const std::size_t n = 8;
  const double s = 1.1;
  ZipfSampler zipf(n, s);
  Rng rng(21);
  const std::size_t draws = 40000;
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t i = 0; i < draws; ++i) {
    const std::size_t rank = zipf.sample(rng);
    ASSERT_LT(rank, n);
    ++counts[rank];
  }

  // Compare against the normalized law p_k = k^-s / H_{n,s}; each bucket's
  // standard error at 40k draws is under 0.25%, so 2% absolute tolerance is
  // a shape test, not a coin flip.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = 1.0 / std::pow(double(k + 1), s) / norm;
    const double observed = double(counts[k]) / double(draws);
    EXPECT_NEAR(observed, expected, 0.02) << "rank " << k;
  }
  // Rank-frequency monotonicity: the defining Zipf property.
  for (std::size_t k = 0; k + 1 < n; ++k) EXPECT_GT(counts[k], counts[k + 1]);

  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfSampler(4, 0.0), ContractViolation);
}

TEST(PromptPoolStandaloneTest, EmptyPoolRejected) {
  Corpus tiny;
  tiny.spec = CorpusSpec::wikitext2();
  tiny.paragraphs = {"short paragraph."};
  tiny.text = tiny.paragraphs[0];
  const Tokenizer tok = Tokenizer::train(tiny.text, 100);
  EXPECT_THROW(PromptPool(tiny, tok, 256), ContractViolation);
}

TEST(SeqConfigTest, PaperSplits) {
  const SeqConfig def = seq_config_default();
  EXPECT_EQ(def.total, 96u);
  EXPECT_EQ(def.input, 32u);
  EXPECT_EQ(def.output, 64u);
  const auto sweep = seq_config_sweep();
  ASSERT_EQ(sweep.size(), 4u);
  for (const auto& c : sweep) EXPECT_EQ(c.total, c.input + c.output);
  EXPECT_EQ(seq_config_for_total(512).input, 128u);
  EXPECT_EQ(seq_config_for_total(1024).output, 768u);
  EXPECT_THROW(seq_config_for_total(333), ContractViolation);
}

}  // namespace
}  // namespace orinsim::workload
