#include "workload/prompt_pool.h"

#include <gtest/gtest.h>

#include <set>

#include "core/error.h"
#include "workload/corpus.h"

namespace orinsim::workload {
namespace {

class PromptPoolTest : public ::testing::Test {
 protected:
  PromptPoolTest()
      : corpus_(generate_corpus(CorpusSpec::wikitext2())),
        tokenizer_(Tokenizer::train(corpus_.text, 800)),
        pool_(corpus_, tokenizer_, 256) {}

  Corpus corpus_;
  Tokenizer tokenizer_;
  PromptPool pool_;
};

TEST_F(PromptPoolTest, PoolOnlyKeepsLongParagraphs) {
  ASSERT_GT(pool_.size(), 0u);
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    EXPECT_GE(pool_.prompt(i).size(), 256u);
  }
}

TEST_F(PromptPoolTest, SampleBatchExactLengths) {
  Rng rng(3);
  const auto batch = pool_.sample_batch(8, 32, rng);
  ASSERT_EQ(batch.size(), 8u);
  for (const auto& prompt : batch) EXPECT_EQ(prompt.size(), 32u);
}

TEST_F(PromptPoolTest, LongInputsStitchMultiplePrompts) {
  // input_tokens beyond any single pool paragraph: the paper's "multiples of
  // the 256-token prompts" rule.
  Rng rng(4);
  std::size_t longest = 0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    longest = std::max(longest, pool_.prompt(i).size());
  }
  const std::size_t target = longest + 100;
  const auto batch = pool_.sample_batch(2, target, rng);
  for (const auto& prompt : batch) EXPECT_EQ(prompt.size(), target);
}

TEST_F(PromptPoolTest, SamplingIsRandomButSeedDeterministic) {
  Rng r1(5), r2(5), r3(6);
  const auto a = pool_.sample_batch(4, 64, r1);
  const auto b = pool_.sample_batch(4, 64, r2);
  const auto c = pool_.sample_batch(4, 64, r3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST_F(PromptPoolTest, EmptyRequestsRejected) {
  Rng rng(7);
  EXPECT_THROW(pool_.sample_batch(0, 32, rng), ContractViolation);
  EXPECT_THROW(pool_.sample_batch(4, 0, rng), ContractViolation);
}

TEST(PromptPoolStandaloneTest, EmptyPoolRejected) {
  Corpus tiny;
  tiny.spec = CorpusSpec::wikitext2();
  tiny.paragraphs = {"short paragraph."};
  tiny.text = tiny.paragraphs[0];
  const Tokenizer tok = Tokenizer::train(tiny.text, 100);
  EXPECT_THROW(PromptPool(tiny, tok, 256), ContractViolation);
}

TEST(SeqConfigTest, PaperSplits) {
  const SeqConfig def = seq_config_default();
  EXPECT_EQ(def.total, 96u);
  EXPECT_EQ(def.input, 32u);
  EXPECT_EQ(def.output, 64u);
  const auto sweep = seq_config_sweep();
  ASSERT_EQ(sweep.size(), 4u);
  for (const auto& c : sweep) EXPECT_EQ(c.total, c.input + c.output);
  EXPECT_EQ(seq_config_for_total(512).input, 128u);
  EXPECT_EQ(seq_config_for_total(1024).output, 768u);
  EXPECT_THROW(seq_config_for_total(333), ContractViolation);
}

}  // namespace
}  // namespace orinsim::workload
