#include "workload/corpus.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "tokenizer/tokenizer.h"

namespace orinsim::workload {
namespace {

TEST(CorpusTest, DeterministicFromSeed) {
  const Corpus a = generate_corpus(CorpusSpec::wikitext2(7));
  const Corpus b = generate_corpus(CorpusSpec::wikitext2(7));
  EXPECT_EQ(a.text, b.text);
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  const Corpus a = generate_corpus(CorpusSpec::wikitext2(1));
  const Corpus b = generate_corpus(CorpusSpec::wikitext2(2));
  EXPECT_NE(a.text, b.text);
}

TEST(CorpusTest, WikiTextParagraphCount) {
  CorpusSpec spec = CorpusSpec::wikitext2();
  spec.paragraphs = 30;
  const Corpus c = generate_corpus(spec);
  EXPECT_EQ(c.paragraphs.size(), 30u);
}

TEST(CorpusTest, LongBenchHasQaStructure) {
  const Corpus c = generate_corpus(CorpusSpec::longbench());
  EXPECT_NE(c.text.find("Question:"), std::string::npos);
  EXPECT_NE(c.text.find("Answer:"), std::string::npos);
}

TEST(CorpusTest, LongBenchParagraphsLonger) {
  const Corpus wiki = generate_corpus(CorpusSpec::wikitext2());
  const Corpus lb = generate_corpus(CorpusSpec::longbench());
  auto mean_len = [](const Corpus& c) {
    std::size_t total = 0;
    std::size_t counted = 0;
    for (const auto& p : c.paragraphs) {
      if (p.rfind("Question:", 0) == 0) continue;  // skip QA lines
      total += p.size();
      ++counted;
    }
    return static_cast<double>(total) / static_cast<double>(counted);
  };
  EXPECT_GT(mean_len(lb), mean_len(wiki) * 1.3);
}

TEST(CorpusTest, LongBenchLowerEntropyThanWikiText) {
  // Stronger topic concentration => lower unigram entropy, mirroring the
  // paper's lower perplexities on LongBench (Table 3).
  const Corpus wiki = generate_corpus(CorpusSpec::wikitext2());
  const Corpus lb = generate_corpus(CorpusSpec::longbench());
  auto unigram_entropy = [](const Corpus& c) {
    const Tokenizer tok = Tokenizer::train(c.text, 800);
    auto ids = tok.encode(c.text);
    std::vector<double> counts(tok.vocab_size(), 0.0);
    for (auto id : ids) counts[id] += 1.0;
    double h = 0.0;
    for (double n : counts) {
      if (n == 0.0) continue;
      const double p = n / static_cast<double>(ids.size());
      h -= p * std::log(p);
    }
    return h;
  };
  EXPECT_LT(unigram_entropy(lb), unigram_entropy(wiki));
}

TEST(CorpusTest, SentencesCapitalizedAndTerminated) {
  const Corpus c = generate_corpus(CorpusSpec::wikitext2());
  const std::string& p = c.paragraphs.front();
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(p.front())));
  EXPECT_EQ(p.back(), '.');
}

TEST(CorpusTest, DatasetNamesRoundTrip) {
  EXPECT_EQ(dataset_name(Dataset::kWikiText2), "WikiText2");
  EXPECT_EQ(dataset_name(Dataset::kLongBench), "LongBench");
  EXPECT_EQ(parse_dataset("wikitext2"), Dataset::kWikiText2);
  EXPECT_EQ(parse_dataset("LongBench"), Dataset::kLongBench);
  EXPECT_THROW(parse_dataset("imagenet"), ContractViolation);
}

TEST(CorpusTest, RejectsDegenerateSpecs) {
  CorpusSpec spec = CorpusSpec::wikitext2();
  spec.vocab_words = 10;
  EXPECT_THROW(generate_corpus(spec), ContractViolation);
}

}  // namespace
}  // namespace orinsim::workload
