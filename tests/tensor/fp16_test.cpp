#include "tensor/fp16.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/rng.h"

namespace orinsim {
namespace {

TEST(Fp16Test, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f, 1024.0f, 0.125f}) {
    EXPECT_EQ(fp16_to_float(float_to_fp16(v)), v) << v;
  }
}

TEST(Fp16Test, SignedZero) {
  EXPECT_EQ(float_to_fp16(0.0f), 0x0000);
  EXPECT_EQ(float_to_fp16(-0.0f), 0x8000);
}

TEST(Fp16Test, KnownEncodings) {
  EXPECT_EQ(float_to_fp16(1.0f), 0x3C00);
  EXPECT_EQ(float_to_fp16(-2.0f), 0xC000);
  EXPECT_EQ(float_to_fp16(65504.0f), 0x7BFF);  // max finite half
}

TEST(Fp16Test, OverflowBecomesInfinity) {
  EXPECT_EQ(float_to_fp16(70000.0f), 0x7C00);
  EXPECT_EQ(float_to_fp16(-70000.0f), 0xFC00);
  EXPECT_TRUE(std::isinf(fp16_to_float(0x7C00)));
}

TEST(Fp16Test, InfinityAndNanPreserved) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(std::isinf(fp16_to_float(float_to_fp16(inf))));
  EXPECT_TRUE(std::isnan(fp16_to_float(float_to_fp16(std::nanf("")))));
}

TEST(Fp16Test, SubnormalsRepresented) {
  // Smallest positive half subnormal is 2^-24 ~ 5.96e-8.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(fp16_to_float(float_to_fp16(tiny)), tiny);
  // Below half the smallest subnormal underflows to zero.
  EXPECT_EQ(fp16_to_float(float_to_fp16(std::ldexp(1.0f, -26))), 0.0f);
}

TEST(Fp16Test, RelativeErrorBounded) {
  // Round-to-nearest gives relative error <= 2^-11 for normal halves.
  Rng rng(21);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.uniform(-1000.0, 1000.0));
    if (std::fabs(v) < 1e-3) continue;
    const float back = fp16_to_float(float_to_fp16(v));
    EXPECT_LE(std::fabs(back - v) / std::fabs(v), 1.0 / 2048.0 + 1e-7) << v;
  }
}

TEST(Fp16Test, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1 + 2^-10);
  // round-to-even goes down to 1.0.
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(fp16_to_float(float_to_fp16(halfway)), 1.0f);
  // 1 + 3*2^-11 is halfway between (1+2^-10) and (1+2^-9): rounds up to even.
  const float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(fp16_to_float(float_to_fp16(halfway2)), 1.0f + std::ldexp(1.0f, -9));
}

TEST(Fp16Test, MonotonicOverSamples) {
  float prev = -2000.0f;
  for (float v = -2000.0f; v <= 2000.0f; v += 13.7f) {
    const float cur = fp16_to_float(float_to_fp16(v));
    EXPECT_GE(cur, fp16_to_float(float_to_fp16(prev)) - 1e-6f);
    prev = v;
  }
}

}  // namespace
}  // namespace orinsim
