#include "tensor/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace orinsim::kernels {
namespace {

std::vector<float> random_vec(std::size_t n, Rng& rng, float scale = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, scale));
  return v;
}

TEST(KernelsTest, SoftmaxRowsSumToOne) {
  Rng rng(1);
  auto x = random_vec(4 * 7, rng, 3.0f);
  softmax_rows(x, 4, 7);
  for (std::size_t r = 0; r < 4; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 7; ++c) {
      EXPECT_GT(x[r * 7 + c], 0.0f);
      sum += x[r * 7 + c];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(KernelsTest, SoftmaxStableUnderLargeInputs) {
  std::vector<float> x = {1000.0f, 1001.0f, 999.0f};
  softmax_rows(x, 1, 3);
  EXPECT_FALSE(std::isnan(x[0]));
  EXPECT_GT(x[1], x[0]);
  EXPECT_GT(x[0], x[2]);
}

TEST(KernelsTest, SoftmaxInvariantToShift) {
  std::vector<float> a = {0.5f, -1.0f, 2.0f};
  std::vector<float> b = {10.5f, 9.0f, 12.0f};
  softmax_rows(a, 1, 3);
  softmax_rows(b, 1, 3);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6f);
}

TEST(KernelsTest, RmsNormUnitOutputScale) {
  Rng rng(2);
  const std::size_t cols = 64;
  auto x = random_vec(cols, rng, 4.0f);
  std::vector<float> gain(cols, 1.0f);
  std::vector<float> y(cols);
  rmsnorm_rows(x, gain, y, 1, cols);
  double ss = 0.0;
  for (float v : y) ss += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(ss / cols), 1.0, 1e-3);
}

TEST(KernelsTest, RmsNormAppliesGain) {
  std::vector<float> x = {3.0f, 4.0f};
  std::vector<float> gain = {2.0f, 0.5f};
  std::vector<float> y(2);
  rmsnorm_rows(x, gain, y, 1, 2);
  // rms = sqrt((9+16)/2) = 3.5355
  EXPECT_NEAR(y[0], 3.0f / 3.5355f * 2.0f, 1e-3f);
  EXPECT_NEAR(y[1], 4.0f / 3.5355f * 0.5f, 1e-3f);
}

TEST(KernelsTest, LayerNormZeroMeanUnitVar) {
  Rng rng(3);
  const std::size_t cols = 128;
  auto x = random_vec(cols, rng, 2.0f);
  std::vector<float> gain(cols, 1.0f), bias(cols, 0.0f), y(cols);
  layernorm_rows(x, gain, bias, y, 1, cols);
  double sum = 0.0, sq = 0.0;
  for (float v : y) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / cols, 0.0, 1e-4);
  EXPECT_NEAR(sq / cols, 1.0, 1e-2);
}

TEST(KernelsTest, SiluAndGeluFixedPoints) {
  std::vector<float> x = {0.0f};
  silu_inplace(x);
  EXPECT_EQ(x[0], 0.0f);
  x = {0.0f};
  gelu_inplace(x);
  EXPECT_EQ(x[0], 0.0f);
  // silu(1) = 1/(1+e^-1) ~ 0.7311
  x = {1.0f};
  silu_inplace(x);
  EXPECT_NEAR(x[0], 0.7311f, 1e-3f);
  // gelu(1) ~ 0.8412
  x = {1.0f};
  gelu_inplace(x);
  EXPECT_NEAR(x[0], 0.8412f, 2e-3f);
}

TEST(KernelsTest, SwigluMatchesDefinition) {
  std::vector<float> gate = {1.0f, -2.0f};
  std::vector<float> up = {3.0f, 5.0f};
  std::vector<float> out(2);
  swiglu(gate, up, out);
  EXPECT_NEAR(out[0], 3.0f * 0.7311f, 1e-3f);
  EXPECT_NEAR(out[1], 5.0f * (-2.0f / (1.0f + std::exp(2.0f))), 1e-3f);
}

TEST(KernelsTest, RopePreservesNorm) {
  Rng rng(4);
  const std::size_t heads = 4, dim = 16;
  auto qk = random_vec(heads * dim, rng);
  double before = 0.0;
  for (float v : qk) before += static_cast<double>(v) * v;
  rope_inplace(qk, heads, dim, 17);
  double after = 0.0;
  for (float v : qk) after += static_cast<double>(v) * v;
  EXPECT_NEAR(before, after, 1e-3);
}

TEST(KernelsTest, RopePositionZeroIsIdentity) {
  Rng rng(5);
  auto qk = random_vec(2 * 8, rng);
  auto copy = qk;
  rope_inplace(qk, 2, 8, 0);
  for (std::size_t i = 0; i < qk.size(); ++i) EXPECT_NEAR(qk[i], copy[i], 1e-6f);
}

TEST(KernelsTest, RopeRelativePropertyOfDotProducts) {
  // <rope(q,p1), rope(k,p2)> depends only on p1 - p2.
  Rng rng(6);
  const std::size_t dim = 32;
  auto q = random_vec(dim, rng);
  auto k = random_vec(dim, rng);
  auto q1 = q, k1 = k, q2 = q, k2 = k;
  rope_inplace(q1, 1, dim, 5);
  rope_inplace(k1, 1, dim, 3);
  rope_inplace(q2, 1, dim, 25);
  rope_inplace(k2, 1, dim, 23);
  EXPECT_NEAR(dot(q1, k1), dot(q2, k2), 1e-2f);
}

TEST(KernelsTest, GemmMatchesNaive) {
  Rng rng(7);
  const std::size_t m = 9, k = 17, n = 13;
  auto a = random_vec(m * k, rng);
  auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n), ref(m * n, 0.0f);
  gemm(a, b, c, m, k, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) ref[i * n + j] += a[i * k + p] * b[p * n + j];
    }
  }
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST(KernelsTest, GemmLargerBlockedPath) {
  Rng rng(8);
  const std::size_t m = 130, k = 70, n = 65;  // crosses the 64-block boundary
  auto a = random_vec(m * k, rng);
  auto b = random_vec(k * n, rng);
  std::vector<float> c(m * n);
  gemm(a, b, c, m, k, n);
  // Spot-check a few entries against direct dot products.
  for (std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64}, std::size_t{129}}) {
    for (std::size_t j : {std::size_t{0}, std::size_t{64}}) {
      float ref = 0.0f;
      for (std::size_t p = 0; p < k; ++p) ref += a[i * k + p] * b[p * n + j];
      EXPECT_NEAR(c[i * n + j], ref, 1e-3f);
    }
  }
}

TEST(KernelsTest, MatvecMatchesDot) {
  Rng rng(9);
  const std::size_t rows = 300, cols = 40;
  auto a = random_vec(rows * cols, rng);
  auto x = random_vec(cols, rng);
  std::vector<float> out(rows);
  matvec(a, x, out, rows, cols);
  for (std::size_t r : {std::size_t{0}, std::size_t{150}, std::size_t{299}}) {
    EXPECT_NEAR(out[r],
                dot(std::span<const float>(a.data() + r * cols, cols), x), 1e-3f);
  }
}

TEST(KernelsTest, ArgmaxAndTies) {
  const std::vector<float> v = {1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(argmax(v), 1u);  // lowest index wins ties
  EXPECT_THROW(argmax({}), ContractViolation);
}

TEST(KernelsTest, LogsumexpStableAndCorrect) {
  const std::vector<float> v = {std::log(1.0f), std::log(2.0f), std::log(3.0f)};
  EXPECT_NEAR(logsumexp(v), std::log(6.0), 1e-6);
  const std::vector<float> big = {1000.0f, 1000.0f};
  EXPECT_NEAR(logsumexp(big), 1000.0 + std::log(2.0), 1e-4);
}

TEST(KernelsTest, AddBiasAndAddInplace) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> bias = {10.0f, 20.0f};
  add_bias(x, bias, 2, 2);
  EXPECT_EQ(x[0], 11.0f);
  EXPECT_EQ(x[3], 24.0f);
  std::vector<float> y = {1.0f, 1.0f};
  add_inplace(y, std::vector<float>{2.0f, 3.0f});
  EXPECT_EQ(y[0], 3.0f);
  EXPECT_EQ(y[1], 4.0f);
}

}  // namespace
}  // namespace orinsim::kernels
