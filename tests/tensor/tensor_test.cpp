#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "tensor/dtype.h"

namespace orinsim {
namespace {

TEST(TensorTest, ReshapeAllocatesZeroed) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, RowView) {
  Tensor t({2, 4});
  t.at2(1, 2) = 5.0f;
  auto row = t.row(1);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[2], 5.0f);
  EXPECT_THROW(t.row(2), ContractViolation);
}

TEST(TensorTest, IndexingConsistency) {
  Tensor t({2, 3, 4});
  t.at3(1, 2, 3) = 9.0f;
  EXPECT_EQ(t.data()[(1 * 3 + 2) * 4 + 3], 9.0f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t({5});
  t.fill(2.5f);
  for (float v : t.data()) EXPECT_EQ(v, 2.5f);
  t.zero();
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, RandnStatistics) {
  Tensor t({64, 64});
  Rng rng(5);
  t.randn(rng, 0.1f);
  double sum = 0.0, sq = 0.0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(std::sqrt(sq / n), 0.1, 0.01);
}

TEST(TensorTest, InvalidShapesRejected) {
  EXPECT_THROW(Tensor({0}), ContractViolation);
  Tensor t;
  std::vector<std::size_t> too_many = {1, 2, 3, 4, 5};
  EXPECT_THROW(t.reshape(std::span<const std::size_t>(too_many)), ContractViolation);
}

TEST(DTypeTest, BytesAndNames) {
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kF32), 4.0);
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kF16), 2.0);
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kI8), 1.0);
  EXPECT_DOUBLE_EQ(dtype_bytes(DType::kI4), 0.5);
  EXPECT_EQ(dtype_name(DType::kI8), "INT8");
  EXPECT_EQ(parse_dtype("fp16"), DType::kF16);
  EXPECT_EQ(parse_dtype("INT4"), DType::kI4);
  EXPECT_THROW(parse_dtype("fp8"), ContractViolation);
}

}  // namespace
}  // namespace orinsim
