// Scalar-vs-native parity for every runtime-dispatched SIMD kernel.
//
// The determinism contract (DESIGN.md "Kernel dispatch & chunked prefill"):
// the scalar level is the bit-exact reference; the native level must agree
// within FMA-reassociation tolerance on fp32 kernels and bit-exactly on
// integer kernels.
#include "tensor/simd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "tensor/kernels.h"

namespace orinsim {
namespace {

// Restores the dispatch level on scope exit so test order never leaks state.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedLevel() { simd::set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level prev_;
};

std::vector<float> random_vec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  return v;
}

std::vector<std::int8_t> random_codes(std::size_t n, Rng& rng) {
  std::vector<std::int8_t> v(n);
  for (auto& x : v) {
    x = static_cast<std::int8_t>(static_cast<int>(rng.uniform() * 255.0) - 127);
  }
  return v;
}

TEST(SimdTest, LevelNamesAndAvailability) {
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kNative), "native");
  // Whatever the environment resolved to must be runnable.
  if (simd::active_level() == simd::Level::kNative) {
    EXPECT_TRUE(simd::native_available());
  }
}

TEST(SimdTest, SetLevelRoundTrips) {
  const simd::Level original = simd::active_level();
  {
    ScopedLevel scalar(simd::Level::kScalar);
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  EXPECT_EQ(simd::active_level(), original);
}

TEST(SimdTest, DotF32ScalarIsIndexOrderReference) {
  ScopedLevel scalar(simd::Level::kScalar);
  // Exact reference: acc += a[i] * b[i] in index order.
  const std::vector<float> a = {1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> b = {0.5f, -1.0f, 2.0f, 0.25f};
  float acc = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  EXPECT_EQ(simd::dot_f32(a.data(), b.data(), a.size()), acc);
}

TEST(SimdTest, DotF32NativeMatchesScalarWithinTolerance) {
  if (!simd::native_available()) GTEST_SKIP() << "no AVX2/FMA on this host";
  Rng rng(7);
  // Cover vector-body, dual-accumulator, and tail lengths.
  for (std::size_t n : {1u, 7u, 8u, 15u, 16u, 33u, 100u, 512u, 1000u}) {
    const auto a = random_vec(n, rng);
    const auto b = random_vec(n, rng);
    float ref = 0.0f, native = 0.0f;
    {
      ScopedLevel scalar(simd::Level::kScalar);
      ref = simd::dot_f32(a.data(), b.data(), n);
    }
    {
      ScopedLevel nat(simd::Level::kNative);
      native = simd::dot_f32(a.data(), b.data(), n);
    }
    // FMA reorders the accumulation; allow relative error vs the magnitude.
    const float tol = 1e-4f * (std::fabs(ref) + static_cast<float>(n));
    EXPECT_NEAR(native, ref, tol) << "n=" << n;
  }
}

TEST(SimdTest, DotI8NativeIsBitExact) {
  if (!simd::native_available()) GTEST_SKIP() << "no AVX2/FMA on this host";
  Rng rng(11);
  // Integer math must agree exactly at every length. Codes stay in the
  // kernel's documented [-127, 127] domain (every quantizer in the repo
  // clamps to ±127): the AVX2 sign trick wraps on -128.
  for (std::size_t n : {1u, 31u, 32u, 33u, 64u, 127u, 1024u, 4096u}) {
    auto a = random_codes(n, rng);
    auto b = random_codes(n, rng);
    a[0] = -127;
    b[n - 1] = -127;
    std::int64_t ref = 0, native = 0;
    {
      ScopedLevel scalar(simd::Level::kScalar);
      ref = simd::dot_i8(a.data(), b.data(), n);
    }
    {
      ScopedLevel nat(simd::Level::kNative);
      native = simd::dot_i8(a.data(), b.data(), n);
    }
    EXPECT_EQ(native, ref) << "n=" << n;
  }
}

TEST(SimdTest, GemmNtScalarMatchesPerTokenMatvecBitwise) {
  ScopedLevel scalar(simd::Level::kScalar);
  Rng rng(13);
  const std::size_t tokens = 9, k = 37, rows = 12;
  const auto x = random_vec(tokens * k, rng);
  const auto w = random_vec(rows * k, rng);
  std::vector<float> y(tokens * rows);
  simd::gemm_nt_f32(x.data(), w.data(), y.data(), tokens, k, rows);
  for (std::size_t t = 0; t < tokens; ++t) {
    std::vector<float> out(rows);
    kernels::matvec(std::span<const float>(w.data(), rows * k),
                    std::span<const float>(x.data() + t * k, k), out, rows, k);
    for (std::size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(y[t * rows + r], out[r]) << "t=" << t << " r=" << r;
    }
  }
}

TEST(SimdTest, GemmNtNativeMatchesScalarWithinTolerance) {
  if (!simd::native_available()) GTEST_SKIP() << "no AVX2/FMA on this host";
  Rng rng(17);
  // Token counts straddling the 8-token microkernel block and k tails.
  for (std::size_t tokens : {1u, 3u, 8u, 9u, 16u, 17u}) {
    const std::size_t k = 67, rows = 19;
    const auto x = random_vec(tokens * k, rng);
    const auto w = random_vec(rows * k, rng);
    std::vector<float> ref(tokens * rows), native(tokens * rows);
    {
      ScopedLevel scalar(simd::Level::kScalar);
      simd::gemm_nt_f32(x.data(), w.data(), ref.data(), tokens, k, rows);
    }
    {
      ScopedLevel nat(simd::Level::kNative);
      simd::gemm_nt_f32(x.data(), w.data(), native.data(), tokens, k, rows);
    }
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const float tol = 1e-4f * (std::fabs(ref[i]) + static_cast<float>(k));
      EXPECT_NEAR(native[i], ref[i], tol) << "tokens=" << tokens << " i=" << i;
    }
  }
}

TEST(SimdTest, KernelsDotRoutesThroughDispatch) {
  // kernels::dot must agree with simd::dot_f32 at the active level.
  Rng rng(19);
  const auto a = random_vec(73, rng);
  const auto b = random_vec(73, rng);
  EXPECT_EQ(kernels::dot(a, b), simd::dot_f32(a.data(), b.data(), a.size()));
}

TEST(SimdTest, ResolveLevelValidatesEnvValues) {
  EXPECT_EQ(simd::resolve_level("scalar"), simd::Level::kScalar);
  if (simd::native_available()) {
    EXPECT_EQ(simd::resolve_level("native"), simd::Level::kNative);
  }
  const simd::Level auto_level =
      simd::native_available() ? simd::Level::kNative : simd::Level::kScalar;
  // Unset / empty resolve to auto, silently.
  testing::internal::CaptureStderr();
  EXPECT_EQ(simd::resolve_level(nullptr), auto_level);
  EXPECT_EQ(simd::resolve_level(""), auto_level);
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  // Unknown values warn once, naming the accepted values, then fall back to
  // auto instead of aborting.
  testing::internal::CaptureStderr();
  EXPECT_EQ(simd::resolve_level("avx512"), auto_level);
  const std::string warning = testing::internal::GetCapturedStderr();
  EXPECT_NE(warning.find("avx512"), std::string::npos);
  EXPECT_NE(warning.find("scalar"), std::string::npos);
  EXPECT_NE(warning.find("native"), std::string::npos);
}

// Composition independence (the contract Model::generate's lane batching
// rests on): column t of every *_multi kernel is bit-identical to the
// single-column kernel, for every batch width and position, at BOTH levels.
TEST(SimdTest, DotF32MultiMatchesSingleColumnBitwise) {
  Rng rng(29);
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::native_available()) levels.push_back(simd::Level::kNative);
  for (simd::Level level : levels) {
    ScopedLevel scoped(level);
    // n straddles the AVX2 unroll and tail; n_cols straddles any column tile.
    for (std::size_t n : {1u, 8u, 33u, 100u, 257u}) {
      for (std::size_t n_cols : {1u, 2u, 7u, 8u, 9u, 17u}) {
        const auto w = random_vec(n, rng);
        const std::size_t stride = n + 3;  // strided columns, not contiguous
        const auto x = random_vec(stride * n_cols, rng);
        std::vector<float> out(n_cols);
        simd::dot_f32_multi(w.data(), x.data(), stride, n_cols, n, out.data());
        for (std::size_t t = 0; t < n_cols; ++t) {
          EXPECT_EQ(out[t], simd::dot_f32(w.data(), x.data() + t * stride, n))
              << simd::level_name(level) << " n=" << n << " n_cols=" << n_cols
              << " t=" << t;
        }
      }
    }
  }
}

TEST(SimdTest, DotI8MultiMatchesSingleColumnBitwise) {
  Rng rng(31);
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::native_available()) levels.push_back(simd::Level::kNative);
  for (simd::Level level : levels) {
    ScopedLevel scoped(level);
    for (std::size_t n : {1u, 32u, 33u, 129u}) {
      for (std::size_t n_cols : {1u, 3u, 8u, 11u}) {
        const auto w = random_codes(n, rng);
        const std::size_t stride = n + 1;
        const auto x = random_codes(stride * n_cols, rng);
        std::vector<std::int64_t> out(n_cols);
        simd::dot_i8_multi(w.data(), x.data(), stride, n_cols, n, out.data());
        for (std::size_t t = 0; t < n_cols; ++t) {
          EXPECT_EQ(out[t], simd::dot_i8(w.data(), x.data() + t * stride, n))
              << simd::level_name(level) << " n=" << n << " n_cols=" << n_cols
              << " t=" << t;
        }
      }
    }
  }
}

// Packed-int4 kernel: the AVX2 variant must be bit-identical to the portable
// mirror (dot_i4_i8_multi_ref replicates its fma chains and hsum order), and
// both must be composition-independent — slicing a batch into single columns
// never changes a column's value.
TEST(SimdTest, DotI4I8MultiAvx2MatchesPortableMirrorBitwise) {
  if (!simd::native_available()) GTEST_SKIP() << "no AVX2/FMA on this host";
  Rng rng(37);
  for (std::size_t blocks : {1u, 2u, 5u, 16u}) {
    for (std::size_t n_cols : {1u, 4u, 8u, 9u, 17u}) {
      const std::size_t n = blocks * simd::kInt4KernelBlock;
      // Any byte is a valid packed pair: nibbles decode to codes in [-8, 7].
      std::vector<std::uint8_t> packed(blocks * simd::kInt4KernelBlockBytes);
      for (auto& b : packed) {
        b = static_cast<std::uint8_t>(rng.uniform() * 256.0);
      }
      std::vector<float> scales(blocks);
      for (auto& s : scales) s = static_cast<float>(rng.uniform() + 0.5);
      const std::size_t stride = n + 32;
      const auto x = random_codes(stride * n_cols, rng);

      std::vector<float> got(n_cols), ref(n_cols);
      simd::dot_i4_i8_multi(packed.data(), scales.data(), blocks, x.data(), stride,
                            n_cols, got.data());
      simd::dot_i4_i8_multi_ref(packed.data(), scales.data(), blocks, x.data(),
                                stride, n_cols, ref.data());
      for (std::size_t t = 0; t < n_cols; ++t) {
        EXPECT_EQ(got[t], ref[t])
            << "blocks=" << blocks << " n_cols=" << n_cols << " t=" << t;
        // Composition independence: the same column alone gives the same bits.
        float alone = 0.0f;
        simd::dot_i4_i8_multi(packed.data(), scales.data(), blocks,
                              x.data() + t * stride, stride, 1, &alone);
        EXPECT_EQ(got[t], alone)
            << "blocks=" << blocks << " n_cols=" << n_cols << " t=" << t;
      }
    }
  }
}

TEST(RopeTableTest, BitExactAgainstRopeInplace) {
  // Table entries are computed with the exact expressions of rope_inplace,
  // so applying the table must be bit-identical at every position.
  const std::size_t heads = 3, head_dim = 8, max_seq = 40;
  for (float theta : {10000.0f, 500000.0f}) {
    kernels::RopeTable table(max_seq, head_dim, theta);
    Rng rng(23);
    for (std::size_t pos : {0u, 1u, 7u, 39u}) {
      std::vector<float> a(heads * head_dim), b(heads * head_dim);
      for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<float>(rng.normal(0.0, 1.0));
        b[i] = a[i];
      }
      kernels::rope_inplace(a, heads, head_dim, pos, theta);
      table.apply(b, heads, head_dim, pos);
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << "theta=" << theta << " pos=" << pos << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace orinsim
