#include "trace/timeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/error.h"
#include "trace/export.h"

namespace orinsim::trace {
namespace {

TEST(TimelineTest, EmitAdvancesCursor) {
  ExecutionTimeline tl;
  tl.emit(Phase::kPrefill, 2.0, 4);
  tl.emit(Phase::kDecode, 0.5, 4);
  EXPECT_DOUBLE_EQ(tl.now(), 2.5);
  ASSERT_EQ(tl.events().size(), 2u);
  EXPECT_DOUBLE_EQ(tl.events()[0].t_start_s, 0.0);
  EXPECT_DOUBLE_EQ(tl.events()[1].t_start_s, 2.0);
  EXPECT_DOUBLE_EQ(tl.events()[1].t_end_s(), 2.5);
}

TEST(TimelineTest, StallUntilFillsGapAndPinsCursor) {
  ExecutionTimeline tl;
  tl.emit(Phase::kDecode, 1.0, 1);
  tl.stall_until(3.0);
  EXPECT_DOUBLE_EQ(tl.now(), 3.0);
  ASSERT_EQ(tl.events().size(), 2u);
  EXPECT_EQ(tl.events()[1].phase, Phase::kStall);
  EXPECT_DOUBLE_EQ(tl.events()[1].duration_s, 2.0);
  EXPECT_EQ(tl.events()[1].batch, 0u);
  EXPECT_FALSE(tl.events()[1].has_power());
  // A target at or before the cursor is a no-op.
  tl.stall_until(2.0);
  EXPECT_EQ(tl.events().size(), 2u);
}

TEST(TimelineTest, AppendAtDoesNotMoveCursor) {
  ExecutionTimeline tl;
  tl.emit(Phase::kDecode, 1.0, 1);
  tl.append_at(0.25, Phase::kOffload, 10.0, 1);
  EXPECT_DOUBLE_EQ(tl.now(), 1.0);
  // But the overlapping event extends the makespan.
  EXPECT_DOUBLE_EQ(tl.makespan_s(), 10.25);
}

TEST(TimelineTest, PhaseAccounting) {
  ExecutionTimeline tl;
  tl.emit(Phase::kPrefill, 2.0, 8);
  tl.emit(Phase::kDecode, 1.0, 8);
  tl.emit(Phase::kDecode, 1.0, 4);
  tl.stall_until(5.0);
  EXPECT_DOUBLE_EQ(tl.phase_time_s(Phase::kDecode), 2.0);
  EXPECT_DOUBLE_EQ(tl.phase_time_s(Phase::kPrefill), 2.0);
  EXPECT_EQ(tl.count(Phase::kDecode), 2u);
  EXPECT_DOUBLE_EQ(tl.mean_batch(Phase::kDecode), 6.0);
  EXPECT_DOUBLE_EQ(tl.busy_s(), 4.0);
  EXPECT_DOUBLE_EQ(tl.duration_sum_s(), 5.0);
  // (8*2 + 8*1 + 4*1 + 0*1) / 5.
  EXPECT_DOUBLE_EQ(tl.time_weighted_batch(), 28.0 / 5.0);
}

TEST(TimelineTest, EnergyOnlyCountsPoweredEvents) {
  ExecutionTimeline tl;
  tl.emit(Phase::kPrefill, 2.0, 1, 0.0, 50.0);
  tl.emit(Phase::kDecode, 1.0, 1);  // no power (functional backend)
  tl.emit(Phase::kDecode, 4.0, 1, 0.0, 25.0);
  EXPECT_DOUBLE_EQ(tl.total_energy_j(), 2.0 * 50.0 + 4.0 * 25.0);
  const telemetry::PowerSignal signal = tl.power_signal();
  // The unpowered event contributes no sensor-visible segment.
  EXPECT_DOUBLE_EQ(signal.duration_s(), 6.0);
  EXPECT_DOUBLE_EQ(signal.exact_energy_j(), tl.total_energy_j());
}

TEST(TimelineTest, ParticipantsSplitEventEnergyEvenly) {
  ExecutionTimeline tl;
  const std::size_t a = tl.begin_request(0.0);
  const std::size_t b = tl.begin_request(0.0);
  const std::size_t c = tl.begin_request(0.0);
  // 100 J shared by a+b, 60 J by all three, 40 J by c alone; one unpowered
  // event and one powered-but-unannotated event contribute to nobody.
  const std::vector<std::size_t> ab = {a, b};
  const std::vector<std::size_t> abc = {a, b, c};
  const std::vector<std::size_t> just_c = {c};
  std::size_t e = tl.emit(Phase::kPrefill, 2.0, 2, 0.0, 50.0);
  tl.set_participants(e, ab);
  e = tl.emit(Phase::kDecode, 3.0, 3, 0.0, 20.0);
  tl.set_participants(e, abc);
  e = tl.emit(Phase::kDecode, 1.0, 1);  // no power
  tl.set_participants(e, just_c);
  tl.emit(Phase::kDecode, 4.0, 1, 0.0, 10.0);  // powered, no participants
  e = tl.emit(Phase::kDecode, 2.0, 1, 0.0, 20.0);
  tl.set_participants(e, just_c);

  const std::vector<double> energy = tl.per_request_energy_j();
  ASSERT_EQ(energy.size(), 3u);
  EXPECT_DOUBLE_EQ(energy[a], 50.0 + 20.0);
  EXPECT_DOUBLE_EQ(energy[b], 50.0 + 20.0);
  EXPECT_DOUBLE_EQ(energy[c], 20.0 + 40.0);
}

TEST(TimelineTest, ParticipantOutOfRangeRejected) {
  ExecutionTimeline tl;
  tl.begin_request(0.0);
  const std::size_t e = tl.emit(Phase::kDecode, 1.0, 1, 0.0, 10.0);
  const std::vector<std::size_t> bogus = {7};
  tl.set_participants(e, bogus);
  EXPECT_THROW(tl.per_request_energy_j(), ContractViolation);
}

TEST(TimelineTest, GovernorEventsRecordedAndCounted) {
  ExecutionTimeline tl;
  tl.governor_event(GovernorEventKind::kPowerCapStepDown, 1.0, "A", 55.0, 0.0);
  tl.governor_event(GovernorEventKind::kThermalStepDown, 2.0, "B", 48.0, 91.0);
  tl.governor_event(GovernorEventKind::kAdmitDefer, 3.0, "B", 47.0, 0.0);
  tl.governor_event(GovernorEventKind::kAdmitResume, 4.0, "B", 30.0, 0.0);
  EXPECT_EQ(tl.governor_events().size(), 4u);
  EXPECT_EQ(tl.governor_event_count(GovernorEventKind::kPowerCapStepDown), 1u);
  EXPECT_EQ(tl.governor_event_count(GovernorEventKind::kThermalStepDown), 1u);
  EXPECT_EQ(tl.governor_event_count(GovernorEventKind::kAdmitDefer), 1u);
  EXPECT_EQ(tl.governor_event_count(GovernorEventKind::kAdmitResume), 1u);
  EXPECT_EQ(governor_event_name(GovernorEventKind::kPowerCapStepDown),
            "power_cap_step_down");
  // Governor lines ride after the step events in JSONL; temp only when set.
  const std::string jsonl = to_jsonl(tl);
  EXPECT_NE(jsonl.find("\"governor\":\"thermal_step_down\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"temp_c\":91"), std::string::npos);
  EXPECT_NE(jsonl.find("\"mode\":\"A\""), std::string::npos);
}

TEST(TimelineTest, RequestLatenciesInRetirementOrder) {
  ExecutionTimeline tl;
  const std::size_t a = tl.begin_request(0.0);
  const std::size_t b = tl.begin_request(1.0);
  tl.start_request(a, 2.0);
  tl.start_request(b, 2.0);
  // b retires first.
  tl.finish_request(b, 5.0);
  tl.finish_request(a, 6.0);
  ASSERT_EQ(tl.request_latencies().size(), 2u);
  EXPECT_DOUBLE_EQ(tl.request_latencies()[0], 4.0);  // b: 5 - 1
  EXPECT_DOUBLE_EQ(tl.request_latencies()[1], 6.0);  // a: 6 - 0
  EXPECT_DOUBLE_EQ(tl.requests()[a].queueing_s(), 2.0);
  const LatencySummary summary = tl.latency_summary();
  EXPECT_EQ(summary.count, 2u);
  EXPECT_DOUBLE_EQ(summary.mean_s, 5.0);
}

TEST(TimelineTest, ContractViolations) {
  ExecutionTimeline tl;
  EXPECT_THROW(tl.emit(Phase::kDecode, -1.0, 1), ContractViolation);
  EXPECT_THROW(tl.start_request(0, 1.0), ContractViolation);
  const std::size_t id = tl.begin_request(0.0);
  tl.finish_request(id, 1.0);
  EXPECT_THROW(tl.finish_request(id, 2.0), ContractViolation);
}

TEST(LatencySummaryTest, EmptyAndSingle) {
  // No completed requests => no latency statistics: NaN (rendered "n/a"),
  // never a fake 0.0 that would read as an infinitely fast server.
  const LatencySummary empty = LatencySummary::from({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_TRUE(std::isnan(empty.mean_s));
  EXPECT_TRUE(std::isnan(empty.p95_s));
  const std::vector<double> one = {3.5};
  const LatencySummary single = LatencySummary::from(one);
  EXPECT_EQ(single.count, 1u);
  EXPECT_DOUBLE_EQ(single.mean_s, 3.5);
  EXPECT_DOUBLE_EQ(single.p95_s, 3.5);
}

class ExportTest : public ::testing::Test {
 protected:
  ExportTest() {
    timeline_.emit(Phase::kPrefill, 0.5, 32, 32.0, 55.0);
    StepBreakdown b;
    b.weight_s = 0.03;
    b.kv_s = 0.01;
    timeline_.emit(Phase::kDecode, 0.05, 32, 33.0, 52.0, b);
    timeline_.append_at(0.1, Phase::kOffload, 2.0, 1, 96.0);
  }
  ExecutionTimeline timeline_;
};

TEST_F(ExportTest, JsonlOneLinePerEvent) {
  const std::string jsonl = to_jsonl(timeline_);
  std::size_t lines = 0;
  for (char c : jsonl) lines += c == '\n';
  EXPECT_EQ(lines, timeline_.events().size());
  EXPECT_NE(jsonl.find("\"phase\":\"prefill\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"phase\":\"offload\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"breakdown\":{"), std::string::npos);
  // The offload event carries no power.
  EXPECT_NE(jsonl.find("\"power_w\":null"), std::string::npos);
}

TEST_F(ExportTest, ChromeTraceShape) {
  const std::string json = to_chrome_trace_json(timeline_, "unit-test");
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\""), 0u);
  EXPECT_NE(json.find("\"name\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Offload rides its own track; device events are on tid 0.
  EXPECT_NE(json.find("\"name\":\"offload\",\"cat\":\"offload\",\"ph\":\"X\","
                      "\"pid\":0,\"tid\":1"),
            std::string::npos);
  // Microsecond timestamps: the 0.5 s prefill renders as dur=500000.
  EXPECT_NE(json.find("\"dur\":500000"), std::string::npos);
}

TEST_F(ExportTest, WritersProduceFiles) {
  const auto dir = std::filesystem::temp_directory_path() / "orinsim_trace_test";
  std::filesystem::create_directories(dir);
  const std::string jsonl_path = (dir / "t.jsonl").string();
  const std::string chrome_path = (dir / "t.trace.json").string();
  write_jsonl(timeline_, jsonl_path);
  write_chrome_trace(timeline_, chrome_path);
  EXPECT_GT(std::filesystem::file_size(jsonl_path), 0u);
  EXPECT_GT(std::filesystem::file_size(chrome_path), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(ExportTest, UnwritablePathRejected) {
  EXPECT_THROW(write_jsonl(timeline_, "/nonexistent-dir/t.jsonl"), ContractViolation);
}

}  // namespace
}  // namespace orinsim::trace
