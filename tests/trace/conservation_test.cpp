// Trace-conservation properties: every metric the simulators report must be
// re-derivable from their StepEvent stream, and the stream itself must be
// gap-free (durations sum to the makespan). These are the invariants that
// make the timeline the single source of truth.
#include <gtest/gtest.h>

#include "serving/batch_scheduler.h"
#include "serving/continuous_batching.h"
#include "serving/offload.h"
#include "sim/inference_sim.h"
#include "sim/speculative_sim.h"
#include "trace/timeline.h"

namespace orinsim {
namespace {

constexpr double kRelTol = 1e-9;

void expect_near_rel(double actual, double expected) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * kRelTol + 1e-12);
}

TEST(TraceConservationTest, SimRunDurationsSumToLatency) {
  sim::InferenceSim simulator;
  sim::SimRequest rq;
  rq.model_key = "llama3";
  rq.dtype = DType::kF16;
  rq.batch = 32;
  rq.noise_sigma = 0.0;  // exact mode: reported latency == modeled schedule
  rq.runs = 1;
  const sim::SimResult r = simulator.run(rq);
  ASSERT_FALSE(r.oom);
  const trace::ExecutionTimeline& tl = r.timeline;
  // setup + prefill + one event per output token
  EXPECT_EQ(tl.events().size(), 2u + rq.out_tokens);
  // Sequential, gap-free: durations sum to the makespan.
  expect_near_rel(tl.duration_sum_s(), tl.makespan_s());
  // Every event is powered, so the power signal spans the whole run and the
  // reported exact-mode latency equals the event-duration sum.
  EXPECT_DOUBLE_EQ(tl.power_signal().duration_s(), tl.duration_sum_s());
  EXPECT_DOUBLE_EQ(r.latency_s, tl.duration_sum_s());
  // Timeline energy == exact integral of the derived power signal.
  expect_near_rel(tl.total_energy_j(), tl.power_signal().exact_energy_j());
  // Phase view: prefill time + decode time + setup time == latency.
  expect_near_rel(tl.phase_time_s(trace::Phase::kSetup) +
                      tl.phase_time_s(trace::Phase::kPrefill) +
                      tl.phase_time_s(trace::Phase::kDecode),
                  r.latency_s);
}

TEST(TraceConservationTest, SchedulerMetricsMatchTimeline) {
  serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  serving::SchedulerConfig config;
  config.max_batch = 8;
  config.arrivals.rate_rps = 4.0;
  config.arrivals.total_requests = 32;
  const serving::ScheduleResult r = simulate_serving(session, config);
  const trace::ExecutionTimeline& tl = r.timeline;

  // Gap-free device schedule: stalls + batches tile the makespan.
  expect_near_rel(tl.duration_sum_s(), r.makespan_s);
  EXPECT_DOUBLE_EQ(tl.total_energy_j(), r.total_energy_j);
  EXPECT_EQ(tl.count(trace::Phase::kDecode), r.batches_run);

  // Request bookkeeping is consistent between views.
  ASSERT_EQ(tl.requests().size(), r.requests.size());
  for (std::size_t i = 0; i < r.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(tl.requests()[i].latency_s(), r.requests[i].total_latency_s());
  }
  const trace::LatencySummary summary = tl.latency_summary();
  EXPECT_DOUBLE_EQ(summary.mean_s, r.mean_latency_s());
  EXPECT_DOUBLE_EQ(summary.p95_s, r.p95_latency_s());
}

TEST(TraceConservationTest, ContinuousMetricsMatchTimeline) {
  serving::ContinuousConfig config;
  config.max_concurrency = 16;
  config.arrivals.rate_rps = 2.0;
  config.arrivals.total_requests = 32;
  const serving::ContinuousResult r = simulate_continuous(config);
  const trace::ExecutionTimeline& tl = r.timeline;

  expect_near_rel(tl.duration_sum_s(), r.makespan_s);
  EXPECT_DOUBLE_EQ(tl.total_energy_j(), r.energy_j);
  expect_near_rel(tl.total_energy_j(), tl.power_signal().exact_energy_j());
  EXPECT_EQ(tl.count(trace::Phase::kDecode), r.decode_steps);
  EXPECT_DOUBLE_EQ(tl.time_weighted_batch(), r.mean_active);
  ASSERT_EQ(tl.request_latencies().size(), r.latencies_s.size());
}

TEST(TraceConservationTest, HybridEdgeOnlyMatchesStaticScheduler) {
  // The same arrival stream through the hybrid simulator with cloud disabled
  // must reproduce the static scheduler's energy and latency stats exactly —
  // both are derived from equivalent event streams.
  serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  serving::SchedulerConfig sc;
  sc.max_batch = 16;
  sc.arrivals.rate_rps = 4.0;
  sc.arrivals.total_requests = 48;
  const serving::ScheduleResult stat = simulate_serving(session, sc);

  serving::HybridConfig hc;
  hc.scheduler = sc;
  hc.policy = serving::OffloadPolicy::kEdgeOnly;
  const serving::HybridResult hybrid = simulate_hybrid(session, hc);

  EXPECT_EQ(hybrid.edge_requests, sc.arrivals.total_requests);
  EXPECT_DOUBLE_EQ(hybrid.edge_energy_j, stat.total_energy_j);
  EXPECT_DOUBLE_EQ(hybrid.mean_latency_s(), stat.mean_latency_s());
  EXPECT_DOUBLE_EQ(hybrid.makespan_s, stat.makespan_s);
}

TEST(TraceConservationTest, HybridCloudEventsOverlapOffDevice) {
  serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  serving::HybridConfig hc;
  hc.scheduler.max_batch = 16;
  hc.scheduler.arrivals.rate_rps = 50.0;  // flood -> spill
  hc.scheduler.arrivals.total_requests = 48;
  hc.policy = serving::OffloadPolicy::kQueueDepth;
  hc.queue_threshold = 4;
  const serving::HybridResult r = simulate_hybrid(session, hc);
  const trace::ExecutionTimeline& tl = r.timeline;

  ASSERT_GT(r.cloud_requests, 0u);
  EXPECT_EQ(tl.count(trace::Phase::kOffload), r.cloud_requests);
  // Offload events carry no power: the edge energy is the powered subset.
  EXPECT_DOUBLE_EQ(tl.total_energy_j(), r.edge_energy_j);
  for (const auto& e : tl.events()) {
    if (e.phase == trace::Phase::kOffload) EXPECT_FALSE(e.has_power());
  }
  // Makespan covers both tracks.
  EXPECT_GE(r.makespan_s, tl.now());
}

TEST(TraceConservationTest, SpeculativeRoundTimelineSumsToRoundCost) {
  const std::size_t draft_tokens = 4;
  const sim::SpeculativeEstimate est = sim::estimate_speculative_speedup(
      sim::model_by_key("llama3"), DType::kF16, sim::model_by_key("phi2"),
      DType::kF16, draft_tokens, 0.7);
  const trace::ExecutionTimeline& tl = est.round_timeline;
  EXPECT_EQ(tl.count(trace::Phase::kDraft), draft_tokens);
  EXPECT_EQ(tl.count(trace::Phase::kVerify), 1u);
  expect_near_rel(tl.duration_sum_s(), est.round_cost_s);
}

TEST(TraceConservationTest, FunctionalBackendEmitsUnpoweredEvents) {
  // The functional engine measures wall-clock steps; it has no power sensor,
  // so its events must never claim energy.
  workload::CorpusSpec spec = workload::CorpusSpec::wikitext2(77);
  spec.paragraphs = 20;
  const workload::Corpus corpus = workload::generate_corpus(spec);
  const Tokenizer tok = Tokenizer::train(corpus.text, 400);
  const auto master = MasterWeights::init_random(
      make_nano_config("llama3", tok.vocab_size()), 303);
  workload::PromptPool pool(corpus, tok, 16);
  serving::FunctionalSession session(master, DType::kF32, pool);

  trace::ExecutionTimeline tl;
  serving::BatchRequest rq;
  rq.batch = 2;
  rq.seq.input = 8;
  rq.seq.output = 4;
  rq.seq.total = 12;
  const serving::BatchResult r = session.run(rq, &tl);
  ASSERT_FALSE(r.oom);
  EXPECT_EQ(tl.count(trace::Phase::kPrefill), 1u);
  EXPECT_EQ(tl.count(trace::Phase::kDecode), rq.seq.output);
  EXPECT_DOUBLE_EQ(tl.total_energy_j(), 0.0);
  for (const auto& e : tl.events()) EXPECT_FALSE(e.has_power());
  // Measured wall-clock events cover real time.
  EXPECT_GT(tl.duration_sum_s(), 0.0);
  EXPECT_LE(tl.duration_sum_s(), r.latency_s + 1e-3);
}

}  // namespace
}  // namespace orinsim
