// Serialization backward-compat pins for the fleet refactor: a single-device
// timeline (no device tag) must serialize byte-identically to the
// pre-fleet exporters, so every existing JSONL/Chrome consumer keeps
// parsing unchanged. The goldens below were captured from the exporters
// before device tagging existed, over a hand-crafted timeline whose doubles
// are exact binary fractions (portable %.17g rendering on any compiler).
//
// The second half pins the opt-in side: tagging a timeline with a device id
// appends exactly one "device_id" field per JSONL object and moves the
// Chrome pid, and the multi-timeline merge renders one process per device.
#include <gtest/gtest.h>

#include <string>

#include "trace/export.h"
#include "trace/timeline.h"

namespace orinsim::trace {
namespace {

// One of everything the exporters serialize: a chunked prefill with KV
// occupancy, a decode with a full breakdown, a stall, a powerless decode,
// governor actions and all four prefix-cache events.
ExecutionTimeline golden_timeline() {
  ExecutionTimeline t;
  t.begin_request(0.0);
  t.begin_request(0.25);
  t.start_request(0, 0.0);
  t.request_event(0, RequestEventKind::kAdmit, 0.0);
  const std::size_t e0 = t.emit(Phase::kPrefill, 0.5, 1, 32.0, 20.0, {}, 16);
  t.set_kv_blocks(e0, 3, 8);
  StepBreakdown b;
  b.weight_s = 0.125;
  b.kv_s = 0.0625;
  b.compute_s = 0.25;
  b.launch_s = 0.0625;
  const std::size_t e1 = t.emit(Phase::kDecode, 0.5, 2, 40.0, 24.5, b);
  t.set_kv_blocks(e1, 4, 8);
  t.stall_until(1.5);
  t.emit(Phase::kDecode, 0.25, 1, 41.0);
  t.finish_request(0, 1.75);
  t.request_event(0, RequestEventKind::kRetire, 1.75);
  t.governor_event(GovernorEventKind::kPowerCapStepDown, 1.0, "A", 24.5, 61.5);
  t.governor_event(GovernorEventKind::kAdmitDefer, 1.5, "B", 22.0, 0.0);
  t.prefix_cache_event(PrefixCacheEventKind::kHit, 0.0, 0, 64, 4, 1024);
  t.prefix_cache_event(PrefixCacheEventKind::kMiss, 0.25, 1, 0, 0, 0);
  t.prefix_cache_event(PrefixCacheEventKind::kInsert, 1.75, 0, 32, 2, 0);
  t.prefix_cache_event(PrefixCacheEventKind::kEvict, 1.75, 0, 16, 1, 0);
  return t;
}

// Captured from the pre-fleet exporters (commit before device tagging).
const char* const kGoldenJsonl =
    R"({"phase":"prefill","t_start_s":0,"duration_s":0.5,"batch":1,"ctx":32,"chunk":16,"kv_blocks_used":3,"kv_blocks_total":8,"power_w":20}
{"phase":"decode","t_start_s":0.5,"duration_s":0.5,"batch":2,"ctx":40,"kv_blocks_used":4,"kv_blocks_total":8,"power_w":24.5,"breakdown":{"weight_s":0.125,"kv_s":0.0625,"compute_s":0.25,"launch_s":0.0625,"quant_extra_s":0,"cpu_stretch_s":0}}
{"phase":"stall","t_start_s":1,"duration_s":0.5,"batch":0,"ctx":0,"power_w":null}
{"phase":"decode","t_start_s":1.5,"duration_s":0.25,"batch":1,"ctx":41,"power_w":null}
{"governor":"power_cap_step_down","t_s":1,"mode":"A","power_w":24.5,"temp_c":61.5}
{"governor":"admit_defer","t_s":1.5,"mode":"B","power_w":22}
{"prefix_cache":"prefix_hit","t_s":0,"request_id":0,"tokens":64,"blocks":4,"bytes_saved":1024}
{"prefix_cache":"prefix_miss","t_s":0.25,"request_id":1,"tokens":0,"blocks":0}
{"prefix_cache":"prefix_insert","t_s":1.75,"request_id":0,"tokens":32,"blocks":2}
{"prefix_cache":"prefix_evict","t_s":1.75,"request_id":0,"tokens":16,"blocks":1}
)";

const char* const kGoldenChrome =
    R"({"displayTimeUnit":"ms","traceEvents":[{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"golden"}},{"name":"prefill","cat":"prefill","ph":"X","pid":0,"tid":0,"ts":0,"dur":500000,"args":{"phase":"prefill","t_start_s":0,"duration_s":0.5,"batch":1,"ctx":32,"chunk":16,"kv_blocks_used":3,"kv_blocks_total":8,"power_w":20}},{"name":"decode","cat":"decode","ph":"X","pid":0,"tid":0,"ts":500000,"dur":500000,"args":{"phase":"decode","t_start_s":0.5,"duration_s":0.5,"batch":2,"ctx":40,"kv_blocks_used":4,"kv_blocks_total":8,"power_w":24.5,"breakdown":{"weight_s":0.125,"kv_s":0.0625,"compute_s":0.25,"launch_s":0.0625,"quant_extra_s":0,"cpu_stretch_s":0}}},{"name":"stall","cat":"stall","ph":"X","pid":0,"tid":0,"ts":1000000,"dur":500000,"args":{"phase":"stall","t_start_s":1,"duration_s":0.5,"batch":0,"ctx":0,"power_w":null}},{"name":"decode","cat":"decode","ph":"X","pid":0,"tid":0,"ts":1500000,"dur":250000,"args":{"phase":"decode","t_start_s":1.5,"duration_s":0.25,"batch":1,"ctx":41,"power_w":null}},{"name":"governor:power_cap_step_down","cat":"governor","ph":"i","s":"t","pid":0,"tid":0,"ts":1000000,"args":{"governor":"power_cap_step_down","t_s":1,"mode":"A","power_w":24.5,"temp_c":61.5}},{"name":"governor:admit_defer","cat":"governor","ph":"i","s":"t","pid":0,"tid":0,"ts":1500000,"args":{"governor":"admit_defer","t_s":1.5,"mode":"B","power_w":22}},{"name":"prefix_cache:prefix_hit","cat":"prefix_cache","ph":"i","s":"t","pid":0,"tid":0,"ts":0,"args":{"prefix_cache":"prefix_hit","t_s":0,"request_id":0,"tokens":64,"blocks":4,"bytes_saved":1024}},{"name":"prefix_cache:prefix_miss","cat":"prefix_cache","ph":"i","s":"t","pid":0,"tid":0,"ts":250000,"args":{"prefix_cache":"prefix_miss","t_s":0.25,"request_id":1,"tokens":0,"blocks":0}},{"name":"prefix_cache:prefix_insert","cat":"prefix_cache","ph":"i","s":"t","pid":0,"tid":0,"ts":1750000,"args":{"prefix_cache":"prefix_insert","t_s":1.75,"request_id":0,"tokens":32,"blocks":2}},{"name":"prefix_cache:prefix_evict","cat":"prefix_cache","ph":"i","s":"t","pid":0,"tid":0,"ts":1750000,"args":{"prefix_cache":"prefix_evict","t_s":1.75,"request_id":0,"tokens":16,"blocks":1}}]})"
    "\n";

TEST(ExportCompatTest, UntaggedJsonlIsByteIdenticalToPreFleetGolden) {
  EXPECT_EQ(to_jsonl(golden_timeline()), kGoldenJsonl);
}

TEST(ExportCompatTest, UntaggedChromeTraceIsByteIdenticalToPreFleetGolden) {
  EXPECT_EQ(to_chrome_trace_json(golden_timeline(), "golden"), kGoldenChrome);
}

TEST(ExportCompatTest, DeviceTagAppendsOneFieldPerJsonlObject) {
  ExecutionTimeline t = golden_timeline();
  t.set_device_id(3);
  const std::string tagged = to_jsonl(t);
  EXPECT_NE(tagged, kGoldenJsonl);
  // Every object (step, governor, prefix-cache) gains the same suffix and
  // nothing else changes: stripping it recovers the golden bytes.
  const std::string suffix = ",\"device_id\":3}";
  std::string stripped;
  std::size_t replaced = 0;
  std::size_t prev = 0;
  for (std::size_t pos = tagged.find(suffix); pos != std::string::npos;
       pos = tagged.find(suffix, prev)) {
    stripped.append(tagged, prev, pos - prev);
    stripped.push_back('}');
    prev = pos + suffix.size();
    ++replaced;
  }
  stripped.append(tagged, prev, std::string::npos);
  EXPECT_EQ(replaced, 10u);  // one per serialized object
  EXPECT_EQ(stripped, kGoldenJsonl);
}

TEST(ExportCompatTest, DeviceTagMovesChromePid) {
  ExecutionTimeline t = golden_timeline();
  t.set_device_id(3);
  const std::string tagged = to_chrome_trace_json(t, "golden");
  EXPECT_NE(tagged.find("\"pid\":3"), std::string::npos);
  EXPECT_EQ(tagged.find("\"pid\":0"), std::string::npos);
}

TEST(ExportCompatTest, MultiTimelineMergeRendersOneProcessPerDevice) {
  ExecutionTimeline a = golden_timeline();
  a.set_device_id(0);
  ExecutionTimeline b = golden_timeline();
  b.set_device_id(1);
  const std::string merged = to_chrome_trace_json_multi({&a, &b}, {"dev0", "dev1"});
  EXPECT_NE(merged.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
                        "\"args\":{\"name\":\"dev0\"}}"),
            std::string::npos);
  EXPECT_NE(merged.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                        "\"args\":{\"name\":\"dev1\"}}"),
            std::string::npos);
  // Both devices' step streams are present, distinguished by pid.
  EXPECT_NE(merged.find("\"cat\":\"prefill\",\"ph\":\"X\",\"pid\":1"), std::string::npos);
  // Valid single JSON document: one traceEvents array, newline-terminated
  // like the single-timeline writer.
  EXPECT_EQ(merged.front(), '{');
  EXPECT_TRUE(merged.ends_with("]}\n"));
}

}  // namespace
}  // namespace orinsim::trace
