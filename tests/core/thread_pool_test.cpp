#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "core/error.h"

namespace orinsim {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SumReduction) {
  ThreadPool pool(4);
  std::vector<long long> partial(100, 0);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long long>(i); });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 99LL * 100 / 2);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

// Regression: parallel_for used to deadlock when invoked from a pool worker
// (the inner call waited for helper shards stuck behind the caller's own
// task). The caller now drains the index range inline, so nesting completes
// even when every helper shard is queued behind the outer tasks.
TEST(ThreadPoolTest, NestedParallelForFromWorkerCompletes) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(0, 4, [&](std::size_t outer) {
    pool.parallel_for(0, 16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Worst case for the old deadlock: one worker, whose only thread is busy
// running the outer task when the nested call arrives.
TEST(ThreadPoolTest, NestedParallelForSingleWorkerCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.parallel_for(0, 3, [&](std::size_t) {
    pool.parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 3 * 8);
}

TEST(ThreadPoolTest, NestedParallelForFromSubmittedTaskCompletes) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.submit([&] {
    pool.parallel_for(0, 10, [&](std::size_t) { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, ShardOverloadCoversAllIndicesWithValidShards) {
  ThreadPool pool(3);
  ASSERT_EQ(pool.shard_count(), 4u);
  std::vector<std::atomic<int>> hits(200);
  std::atomic<bool> shard_in_range{true};
  pool.parallel_for(0, hits.size(), [&](std::size_t shard, std::size_t i) {
    if (shard >= pool.shard_count()) shard_in_range.store(false);
    hits[i].fetch_add(1);
  });
  EXPECT_TRUE(shard_in_range.load());
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// At most one index runs per shard at a time, so unsynchronized per-shard
// accumulators are safe — the property per-worker workspaces rely on.
TEST(ThreadPoolTest, ShardOverloadSerializesWithinShard) {
  ThreadPool pool(4);
  std::vector<long long> per_shard(pool.shard_count(), 0);  // no atomics
  const std::size_t n = 5000;
  pool.parallel_for(0, n, [&](std::size_t shard, std::size_t i) {
    per_shard[shard] += static_cast<long long>(i);
  });
  const long long total = std::accumulate(per_shard.begin(), per_shard.end(), 0LL);
  EXPECT_EQ(total, static_cast<long long>(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, ShardZeroIsCallingThread) {
  ThreadPool pool(2);
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> shard0_is_caller{true};
  pool.parallel_for(0, 100, [&](std::size_t shard, std::size_t) {
    if (shard == 0 && std::this_thread::get_id() != caller) {
      shard0_is_caller.store(false);
    }
  });
  EXPECT_TRUE(shard0_is_caller.load());
}

}  // namespace
}  // namespace orinsim
