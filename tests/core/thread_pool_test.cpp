#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "core/error.h"

namespace orinsim {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 16,
                                 [](std::size_t i) {
                                   if (i == 7) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, SumReduction) {
  ThreadPool pool(4);
  std::vector<long long> partial(100, 0);
  pool.parallel_for(0, partial.size(),
                    [&](std::size_t i) { partial[i] = static_cast<long long>(i); });
  const long long total = std::accumulate(partial.begin(), partial.end(), 0LL);
  EXPECT_EQ(total, 99LL * 100 / 2);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), ContractViolation);
}

}  // namespace
}  // namespace orinsim
