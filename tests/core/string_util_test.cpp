#include "core/string_util.h"

#include <gtest/gtest.h>

#include <limits>

#include "core/units.h"

namespace orinsim {
namespace {

TEST(StringUtilTest, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTrip) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "-"), "x-y-z");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(StringUtilTest, ToLower) { EXPECT_EQ(to_lower("MaXn"), "maxn"); }

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(trim("  hi \n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(StringUtilTest, FormatBytesPicksUnits) {
  EXPECT_EQ(format_bytes(16.1e9), "16.1 GB");
  EXPECT_EQ(format_bytes(2.5e6), "2.5 MB");
  EXPECT_EQ(format_bytes(3.0e3), "3.0 KB");
  EXPECT_EQ(format_bytes(12), "12 B");
}

TEST(StringUtilTest, FormatDoubleRendersNaNAsNotAvailable) {
  // Empty-population statistics (core/stats) arrive here as NaN; they must
  // surface as "n/a" in tables and bench output, never as "0.00" or "nan".
  EXPECT_EQ(format_double(std::numeric_limits<double>::quiet_NaN(), 2), "n/a");
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(0.0, 2), "0.00");
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(gb_to_bytes(1.0), 1e9);
  EXPECT_DOUBLE_EQ(bytes_to_gib(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(ms_to_s(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(joules_to_wh(3600.0), 1.0);
  EXPECT_DOUBLE_EQ(mhz_to_hz(1301.0), 1.301e9);
}

}  // namespace
}  // namespace orinsim
