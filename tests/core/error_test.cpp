#include "core/error.h"

#include <gtest/gtest.h>

#include <string>

namespace orinsim {
namespace {

TEST(ErrorTest, CheckPassesOnTrue) { ORINSIM_CHECK(1 + 1 == 2, "math works"); }

TEST(ErrorTest, CheckThrowsWithLocation) {
  try {
    ORINSIM_CHECK(false, "custom message");
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom message"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(ErrorTest, ExpectedHoldsValue) {
  Expected<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
}

TEST(ErrorTest, ExpectedHoldsError) {
  auto bad = Expected<int>::failure("went wrong");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "went wrong");
  EXPECT_THROW(bad.value(), ContractViolation);
}

TEST(ErrorTest, ExpectedTake) {
  Expected<std::string> ok(std::string("movable"));
  const std::string v = std::move(ok).take();
  EXPECT_EQ(v, "movable");
}

}  // namespace
}  // namespace orinsim
