#include "core/stats.h"

#include <gtest/gtest.h>

#include "core/error.h"

#include <cmath>
#include <vector>

namespace orinsim {
namespace {

TEST(StatsTest, MeanOfEmptyIsNaN) { EXPECT_TRUE(std::isnan(mean({}))); }

TEST(StatsTest, MeanBasic) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(StatsTest, MedianOddAndEven) {
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  const std::vector<double> even = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> v = {10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 20.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_NEAR(percentile(v, 25.0), 2.5, 1e-12);
}

TEST(StatsTest, TrapezoidConstantSignal) {
  // 10 W for 6 s => 60 J, regardless of sample spacing.
  const std::vector<double> t = {0.0, 2.0, 5.0, 6.0};
  const std::vector<double> p = {10.0, 10.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(trapezoid_integral(t, p), 60.0);
}

TEST(StatsTest, TrapezoidLinearRamp) {
  // P(t) = t over [0, 4] => integral = 8.
  const std::vector<double> t = {0.0, 1.0, 2.0, 3.0, 4.0};
  const std::vector<double> p = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(trapezoid_integral(t, p), 8.0);
}

TEST(StatsTest, TrapezoidRejectsDecreasingTime) {
  const std::vector<double> t = {0.0, 2.0, 1.0};
  const std::vector<double> p = {1.0, 1.0, 1.0};
  EXPECT_THROW(trapezoid_integral(t, p), ContractViolation);
}

TEST(StatsTest, TrapezoidSizeMismatchThrows) {
  const std::vector<double> t = {0.0, 1.0};
  const std::vector<double> p = {1.0};
  EXPECT_THROW(trapezoid_integral(t, p), ContractViolation);
}

TEST(StatsTest, RunningStatsMatchesBatch) {
  RunningStats rs;
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : v) rs.add(x);
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 2.0);
}

TEST(StatsTest, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(StatsTest, MonotonicChecksRespectTolerance) {
  const std::vector<double> rising = {1.0, 2.0, 1.99, 3.0};
  EXPECT_FALSE(is_monotonic_increasing(rising));
  EXPECT_TRUE(is_monotonic_increasing(rising, 0.01));
  const std::vector<double> falling = {3.0, 2.0, 2.01, 1.0};
  EXPECT_FALSE(is_monotonic_decreasing(falling));
  EXPECT_TRUE(is_monotonic_decreasing(falling, 0.01));
}

TEST(StatsTest, GeomeanRatioOfIdenticalSeriesIsOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(geomean_ratio(a, a), 1.0);
}

TEST(StatsTest, GeomeanRatioDetectsScale) {
  const std::vector<double> a = {2.0, 4.0, 8.0};
  const std::vector<double> b = {1.0, 2.0, 4.0};
  EXPECT_NEAR(geomean_ratio(a, b), 2.0, 1e-12);
}

TEST(StatsTest, MinMaxStddev) {
  const std::vector<double> v = {3.0, 1.0, 4.0, 1.5};
  EXPECT_DOUBLE_EQ(min_value(v), 1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 4.0);
  EXPECT_GT(stddev(v), 0.0);
}

TEST(StatsTest, PercentileSingleElementIsThatElement) {
  const std::vector<double> v = {7.25};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.25);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 7.25);
  EXPECT_DOUBLE_EQ(percentile(v, 95.0), 7.25);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.25);
}

TEST(StatsTest, EmptyPopulationsHaveNoStatistics) {
  // A silent 0.0 here once let empty latency/power signals report fake
  // p50/p99 = 0 in benches and the planner; NaN fails closed instead.
  EXPECT_TRUE(std::isnan(percentile({}, 0.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
  EXPECT_TRUE(std::isnan(percentile({}, 100.0)));
  EXPECT_TRUE(std::isnan(median({})));
  EXPECT_TRUE(std::isnan(min_value({})));
  EXPECT_TRUE(std::isnan(max_value({})));
}

TEST(StatsTest, PercentileRangeCheckedEvenWhenEmpty) {
  EXPECT_THROW(percentile({}, -0.001), ContractViolation);
  EXPECT_THROW(percentile({}, 100.001), ContractViolation);
}

TEST(StatsTest, PercentileExtremesHitMinAndMax) {
  // p=0 and p=100 must land exactly on the extremes, independent of order.
  const std::vector<double> v = {20.0, 5.0, 40.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), min_value(v));
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), max_value(v));
}

TEST(StatsTest, PercentileOutOfRangeRejected) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(percentile(v, -0.001), ContractViolation);
  EXPECT_THROW(percentile(v, 100.001), ContractViolation);
}

}  // namespace
}  // namespace orinsim
