#include "core/logging.h"

#include <gtest/gtest.h>

#include "core/stopwatch.h"

namespace orinsim {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST_F(LoggingTest, ParseNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);  // safe default
}

TEST_F(LoggingTest, SuppressedLevelsDoNotEvaluate) {
  set_log_level(LogLevel::kError);
  bool evaluated = false;
  auto side_effect = [&] {
    evaluated = true;
    return "msg";
  };
  LOG_DEBUG << side_effect();
  EXPECT_FALSE(evaluated);  // the macro short-circuits below the level
  LOG_ERROR << side_effect();
  EXPECT_TRUE(evaluated);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  bool evaluated = false;
  LOG_ERROR << (evaluated = true);
  EXPECT_FALSE(evaluated);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<double>(i);
  const double first = watch.elapsed_s();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(watch.elapsed_ms(), first * 1e3 * 0.99);
  watch.reset();
  EXPECT_LT(watch.elapsed_s(), first + 1.0);
}

}  // namespace
}  // namespace orinsim
