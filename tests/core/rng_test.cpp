#include "core/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace orinsim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitStreamsAreIndependentlyDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(RngTest, UniformInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.0);
  }
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.uniform_index(17), 17u);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(RngTest, UniformIndexCoversAllValues) {
  Rng rng(11);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.uniform_index(8)];
  for (int count : seen) EXPECT_GT(count, 300);  // ~500 expected per bucket
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(123);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(77);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(ZipfSamplerTest, RankZeroIsMostFrequent) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[50]);
}

TEST(ZipfSamplerTest, FrequencyFollowsPowerLaw) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(6);
  std::vector<double> counts(50, 0.0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.sample(rng)] += 1.0;
  // count(rank 1) / count(rank 2) ~ 2 for s = 1.
  EXPECT_NEAR(counts[0] / counts[1], 2.0, 0.3);
}

TEST(ZipfSamplerTest, RejectsDegenerateParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
  EXPECT_THROW(ZipfSampler(10, 0.0), ContractViolation);
}

}  // namespace
}  // namespace orinsim
