#include "core/table.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace orinsim {
namespace {

TEST(TableTest, MarkdownLayout) {
  Table t({"A", "B"});
  t.new_row().add_cell("1").add_cell("2");
  t.new_row().add_number(3.14159, 2).add_oom();
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| A "), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
  EXPECT_NE(md.find("OOM"), std::string::npos);
  // header + separator + 2 rows = 4 lines
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
}

TEST(TableTest, CsvEscapesCommas) {
  Table t({"x"});
  t.new_row().add_cell("a,b");
  EXPECT_NE(t.to_csv().find("\"a,b\""), std::string::npos);
}

TEST(TableTest, CellAccess) {
  Table t({"c1", "c2"});
  t.new_row().add_cell("v1").add_cell("v2");
  EXPECT_EQ(t.cell(0, 0), "v1");
  EXPECT_EQ(t.cell(0, 1), "v2");
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.column_count(), 2u);
}

TEST(TableTest, ContractViolations) {
  Table t({"only"});
  EXPECT_THROW(t.add_cell("no row yet"), ContractViolation);
  t.new_row().add_cell("ok");
  EXPECT_THROW(t.add_cell("too many"), ContractViolation);
  EXPECT_THROW(t.cell(5, 0), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(TableTest, NumberFormatting) {
  Table t({"n"});
  t.new_row().add_number(1234.5678, 1);
  EXPECT_EQ(t.cell(0, 0), "1234.6");
}

}  // namespace
}  // namespace orinsim
