#include "core/cli.h"

#include <gtest/gtest.h>

namespace orinsim {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, EqualsSyntax) {
  const CliArgs args = make({"--model=llama3", "--batch=32"});
  EXPECT_EQ(args.get("model", ""), "llama3");
  EXPECT_EQ(args.get_int("batch", 0), 32);
}

TEST(CliTest, SpaceSyntax) {
  const CliArgs args = make({"--dataset", "longbench"});
  EXPECT_EQ(args.get("dataset", ""), "longbench");
}

TEST(CliTest, BooleanFlags) {
  const CliArgs args = make({"--verbose", "--no-color"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("color", true));
}

TEST(CliTest, DefaultsWhenMissing) {
  const CliArgs args = make({});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(args.get_bool("flag", true));
}

TEST(CliTest, PositionalArguments) {
  const CliArgs args = make({"first", "--k=v", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(CliTest, DoubleParsing) {
  const CliArgs args = make({"--scale=0.96"});
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.96);
}

TEST(CliTest, HasDetectsPresence) {
  const CliArgs args = make({"--present"});
  EXPECT_TRUE(args.has("present"));
  EXPECT_FALSE(args.has("absent"));
}

}  // namespace
}  // namespace orinsim
