#include "core/cli.h"

#include <gtest/gtest.h>

#include "core/string_util.h"

namespace orinsim {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliTest, EqualsSyntax) {
  const CliArgs args = make({"--model=llama3", "--batch=32"});
  EXPECT_EQ(args.get("model", ""), "llama3");
  EXPECT_EQ(args.get_int("batch", 0), 32);
}

TEST(CliTest, SpaceSyntax) {
  const CliArgs args = make({"--dataset", "longbench"});
  EXPECT_EQ(args.get("dataset", ""), "longbench");
}

TEST(CliTest, BooleanFlags) {
  const CliArgs args = make({"--verbose", "--no-color"});
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("color", true));
}

TEST(CliTest, DefaultsWhenMissing) {
  const CliArgs args = make({});
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_TRUE(args.get_bool("flag", true));
}

TEST(CliTest, PositionalArguments) {
  const CliArgs args = make({"first", "--k=v", "second"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "first");
  EXPECT_EQ(args.positional()[1], "second");
}

TEST(CliTest, DoubleParsing) {
  const CliArgs args = make({"--scale=0.96"});
  EXPECT_DOUBLE_EQ(args.get_double("scale", 1.0), 0.96);
}

TEST(CliTest, HasDetectsPresence) {
  const CliArgs args = make({"--present"});
  EXPECT_TRUE(args.has("present"));
  EXPECT_FALSE(args.has("absent"));
}

// Malformed numeric values must fail with a usage message naming the bad
// flag, not parse silently to 0 (the old strtoll behaviour) or escape main
// as an uncaught exception. Death tests use the threadsafe style so they
// stay reliable under the sanitizer CI jobs.
class CliUsageDeathTest : public ::testing::Test {
 protected:
  CliUsageDeathTest() { ::testing::FLAGS_gtest_death_test_style = "threadsafe"; }
};

TEST_F(CliUsageDeathTest, RejectsNonNumericInt) {
  const CliArgs args = make({"--batch=abc"});
  EXPECT_EXIT(args.get_int("batch", 0), ::testing::ExitedWithCode(CliArgs::kUsageExitCode),
              "invalid value for --batch: 'abc'");
}

TEST_F(CliUsageDeathTest, RejectsTrailingGarbage) {
  const CliArgs args = make({"--power-cap-w=35W"});
  EXPECT_EXIT(args.get_double("power-cap-w", 0.0),
              ::testing::ExitedWithCode(CliArgs::kUsageExitCode),
              "invalid value for --power-cap-w: '35W'");
}

TEST_F(CliUsageDeathTest, RejectsIntegerOverflow) {
  const CliArgs args = make({"--requests=99999999999999999999999999"});
  EXPECT_EXIT(args.get_int("requests", 0),
              ::testing::ExitedWithCode(CliArgs::kUsageExitCode),
              "invalid value for --requests");
}

TEST_F(CliUsageDeathTest, RejectsDoubleOverflowAndNonFinite) {
  const CliArgs huge = make({"--rps=1e999"});
  EXPECT_EXIT(huge.get_double("rps", 0.0),
              ::testing::ExitedWithCode(CliArgs::kUsageExitCode),
              "invalid value for --rps");
  const CliArgs inf = make({"--rps=inf"});
  EXPECT_EXIT(inf.get_double("rps", 0.0),
              ::testing::ExitedWithCode(CliArgs::kUsageExitCode),
              "invalid value for --rps");
}

TEST_F(CliUsageDeathTest, RejectsMalformedBool) {
  const CliArgs args = make({"--prefix-cache=tru"});
  EXPECT_EXIT(args.get_bool("prefix-cache", false),
              ::testing::ExitedWithCode(CliArgs::kUsageExitCode),
              "invalid value for --prefix-cache: 'tru'");
}

TEST(CliTest, WellFormedValuesStillParse) {
  const CliArgs args = make({"--batch=-3", "--rps", "2.5e1", "--flag=ON"});
  EXPECT_EQ(args.get_int("batch", 0), -3);
  EXPECT_DOUBLE_EQ(args.get_double("rps", 0.0), 25.0);
  EXPECT_TRUE(args.get_bool("flag", false));
}

TEST(StrictParseTest, IntAcceptsOnlyWholeNumbers) {
  long long v = -1;
  EXPECT_TRUE(parse_int_strict("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int_strict("  -7  ", v));
  EXPECT_EQ(v, -7);
  long long untouched = 123;
  EXPECT_FALSE(parse_int_strict("", untouched));
  EXPECT_FALSE(parse_int_strict("abc", untouched));
  EXPECT_FALSE(parse_int_strict("12abc", untouched));
  EXPECT_FALSE(parse_int_strict("1.5", untouched));
  EXPECT_FALSE(parse_int_strict("99999999999999999999999999", untouched));
  EXPECT_EQ(untouched, 123);
}

TEST(StrictParseTest, DoubleAcceptsOnlyFiniteNumbers) {
  double v = -1.0;
  EXPECT_TRUE(parse_double_strict("2.5", v));
  EXPECT_DOUBLE_EQ(v, 2.5);
  EXPECT_TRUE(parse_double_strict("1e-3", v));
  EXPECT_DOUBLE_EQ(v, 1e-3);
  double untouched = 9.0;
  EXPECT_FALSE(parse_double_strict("", untouched));
  EXPECT_FALSE(parse_double_strict("abc", untouched));
  EXPECT_FALSE(parse_double_strict("3.5W", untouched));
  EXPECT_FALSE(parse_double_strict("1e999", untouched));
  EXPECT_FALSE(parse_double_strict("nan", untouched));
  EXPECT_FALSE(parse_double_strict("inf", untouched));
  EXPECT_DOUBLE_EQ(untouched, 9.0);
}

}  // namespace
}  // namespace orinsim
