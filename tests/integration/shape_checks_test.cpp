// The reproduction's definition of success: every qualitative finding of the
// paper must hold in the simulator. These are the same checks the bench
// binaries print.
#include "harness/shape_checks.h"

#include <gtest/gtest.h>

namespace orinsim::harness {
namespace {

void expect_all(const std::vector<CheckResult>& checks) {
  for (const auto& c : checks) {
    EXPECT_TRUE(c.passed) << c.name << " " << c.detail;
  }
}

TEST(ShapeChecksTest, BatchSweepWikiText2) {
  expect_all(check_batch_sweep(run_batch_sweep(workload::Dataset::kWikiText2)));
}

TEST(ShapeChecksTest, BatchSweepLongBench) {
  expect_all(check_batch_sweep(run_batch_sweep(workload::Dataset::kLongBench)));
}

TEST(ShapeChecksTest, SeqSweepLongBench) {
  expect_all(check_seq_sweep(run_seq_sweep(workload::Dataset::kLongBench)));
}

TEST(ShapeChecksTest, SeqSweepWikiText2) {
  expect_all(check_seq_sweep(run_seq_sweep(workload::Dataset::kWikiText2)));
}

TEST(ShapeChecksTest, QuantizationStudy) { expect_all(check_quant_study(run_quant_study())); }

TEST(ShapeChecksTest, PowerEnergyLlama) {
  expect_all(check_power_energy(run_power_energy("llama3")));
}

TEST(ShapeChecksTest, PowerEnergyOtherModels) {
  // Fig 10 extends the power/energy study to all models.
  expect_all(check_power_energy(run_power_energy("phi2")));
  expect_all(check_power_energy(run_power_energy("mistral")));
}

TEST(ShapeChecksTest, PowerModes) { expect_all(check_power_modes(run_power_modes())); }

TEST(ShapeChecksTest, FormatterMarksFailures) {
  std::vector<CheckResult> checks = {{"good", true, ""}, {"bad", false, "why"}};
  const std::string text = format_checks(checks);
  EXPECT_NE(text.find("[PASS] good"), std::string::npos);
  EXPECT_NE(text.find("[FAIL] bad"), std::string::npos);
  EXPECT_FALSE(all_passed(checks));
}

}  // namespace
}  // namespace orinsim::harness
