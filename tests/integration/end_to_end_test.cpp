// End-to-end pipeline tests: corpus -> tokenizer -> prompt pool -> readout
// training -> functional inference and perplexity, plus the full simulated
// measurement protocol. These exercise every module boundary at once.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/perplexity.h"
#include "serving/batch_scheduler.h"
#include "serving/session.h"
#include "sim/inference_sim.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"
#include "workload/prompt_pool.h"

namespace orinsim {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::CorpusSpec spec = workload::CorpusSpec::wikitext2(101);
    spec.paragraphs = 60;
    corpus_ = new workload::Corpus(workload::generate_corpus(spec));
    tokenizer_ = new Tokenizer(Tokenizer::train(corpus_->text, 500));
    tokens_ = new std::vector<TokenId>(tokenizer_->encode(corpus_->text));
    master_ = new std::shared_ptr<MasterWeights>(MasterWeights::init_random(
        make_nano_config("llama3", tokenizer_->vocab_size()), 202));
    train::TrainConfig tc;
    tc.epochs = 4;
    tc.max_tokens = 10000;
    report_ = new train::TrainReport(train::train_readout(**master_, *tokens_, tc));
  }
  static void TearDownTestSuite() {
    delete corpus_;
    delete tokenizer_;
    delete tokens_;
    delete master_;
    delete report_;
  }

  static workload::Corpus* corpus_;
  static Tokenizer* tokenizer_;
  static std::vector<TokenId>* tokens_;
  static std::shared_ptr<MasterWeights>* master_;
  static train::TrainReport* report_;
};

workload::Corpus* EndToEndTest::corpus_ = nullptr;
Tokenizer* EndToEndTest::tokenizer_ = nullptr;
std::vector<TokenId>* EndToEndTest::tokens_ = nullptr;
std::shared_ptr<MasterWeights>* EndToEndTest::master_ = nullptr;
train::TrainReport* EndToEndTest::report_ = nullptr;

TEST_F(EndToEndTest, TrainingImprovedTheReadout) {
  EXPECT_LT(report_->final_loss, report_->initial_loss);
}

TEST_F(EndToEndTest, FunctionalGenerationOverTrainedModel) {
  workload::PromptPool pool(*corpus_, *tokenizer_, 128);
  serving::FunctionalSession session(*master_, DType::kF16, pool);
  serving::BatchRequest rq;
  rq.batch = 2;
  rq.seq = workload::SeqConfig{40, 16, 24};
  const serving::BatchResult r = session.run(rq);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.throughput_tps, 0.0);
}

TEST_F(EndToEndTest, PerplexityOrderingOnRealCorpus) {
  std::vector<TokenId> eval_slice(tokens_->begin(), tokens_->begin() + 1200);
  eval::PerplexityConfig pc;
  pc.window = 256;
  pc.stride = 128;
  pc.max_tokens = 400;

  Model f16(*master_, DType::kF16);
  Model i4(*master_, DType::kI4);
  const double ppl_f16 = eval::evaluate_perplexity(f16, eval_slice, pc).perplexity;
  const double ppl_i4 = eval::evaluate_perplexity(i4, eval_slice, pc).perplexity;
  EXPECT_GT(ppl_i4, ppl_f16);
  // Trained model beats the unigram floor on its corpus.
  std::vector<TokenId> head(tokens_->begin(), tokens_->begin() + 10000);
  const double unigram =
      std::exp(train::unigram_cross_entropy(head, tokenizer_->vocab_size()));
  EXPECT_LT(ppl_f16, unigram);
}

TEST(SimulatedEndToEndTest, FullProtocolAcrossCatalog) {
  // One simulated measurement per model at its paper configuration.
  sim::InferenceSim sim;
  for (const auto& m : sim::model_catalog()) {
    sim::SimRequest rq;
    rq.model_key = m.key;
    rq.dtype = m.default_dtype;
    const sim::SimResult r = sim.run(rq);
    ASSERT_FALSE(r.oom) << m.key;
    EXPECT_GT(r.throughput_tps, 1.0) << m.key;
    EXPECT_GT(r.median_power_w, 15.0) << m.key;
    EXPECT_LT(r.median_power_w, 62.5) << m.key;
    EXPECT_GT(r.energy_j, 0.0) << m.key;
  }
}

TEST(SimulatedEndToEndTest, ServingPlannerFindsBatchTradeoff) {
  // The §3.1 trade-off at the request level: larger batches raise achieved
  // throughput under load.
  serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  serving::SchedulerConfig config;
  config.arrivals.rate_rps = 20.0;
  config.arrivals.total_requests = 64;
  config.max_batch = 1;
  const double rps_b1 = simulate_serving(session, config).achieved_rps();
  config.max_batch = 32;
  const double rps_b32 = simulate_serving(session, config).achieved_rps();
  EXPECT_GT(rps_b32, rps_b1 * 4.0);
}

}  // namespace
}  // namespace orinsim
