// Quantitative paper-vs-simulated comparison over the full appendix tables:
// the simulator was calibrated on 3 points per model; every other cell is a
// prediction and must track the paper within the documented bands.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/stats.h"
#include "harness/experiments.h"
#include "sim/paper_reference.h"

namespace orinsim::harness {
namespace {

// Geometric-mean ratio of simulated to paper latency across a sweep.
double sweep_geomean(const std::vector<double>& sim, const std::vector<double>& paper) {
  return geomean_ratio(sim, paper);
}

TEST(PaperTablesTest, Table4LatenciesTrackWithinBand) {
  const BatchSweep sweep = run_batch_sweep(workload::Dataset::kWikiText2);
  const auto& rows = sim::table4_batch_wikitext2();
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
    std::vector<double> sim_lat, paper_lat;
    for (std::size_t b = 0; b < sweep.batch_sizes.size(); ++b) {
      if (sweep.cells[mi][b].oom) continue;
      sim_lat.push_back(sweep.cells[mi][b].latency_s);
      paper_lat.push_back(rows[b].latency_s[mi]);
    }
    const double gm = sweep_geomean(sim_lat, paper_lat);
    // DeepSeek's appendix rows are internally noisy (bs=16 slower than
    // bs=32); allow a wider band there.
    const double band = catalog[mi].key == "deepseek-qwen" ? 0.40 : 0.20;
    EXPECT_NEAR(gm, 1.0, band) << catalog[mi].key;
  }
}

TEST(PaperTablesTest, Table4ThroughputsTrackWithinBand) {
  const BatchSweep sweep = run_batch_sweep(workload::Dataset::kWikiText2);
  const auto& rows = sim::table4_batch_wikitext2();
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
    std::vector<double> sim_tp, paper_tp;
    for (std::size_t b = 0; b < sweep.batch_sizes.size(); ++b) {
      if (sweep.cells[mi][b].oom) continue;
      sim_tp.push_back(sweep.cells[mi][b].throughput_tps);
      paper_tp.push_back(rows[b].throughput_tps[mi]);
    }
    const double band = catalog[mi].key == "deepseek-qwen" ? 0.40 : 0.20;
    EXPECT_NEAR(sweep_geomean(sim_tp, paper_tp), 1.0, band) << catalog[mi].key;
  }
}

TEST(PaperTablesTest, Table7SeqLatenciesTrackWithinBand) {
  const SeqSweep sweep = run_seq_sweep(workload::Dataset::kWikiText2);
  const auto& rows = sim::table7_seq_wikitext2();
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
    std::vector<double> sim_lat, paper_lat;
    for (std::size_t s = 0; s < sweep.seq_configs.size(); ++s) {
      if (sweep.cells[mi][s].oom || std::isnan(rows[s].latency_s[mi])) continue;
      sim_lat.push_back(sweep.cells[mi][s].latency_s);
      paper_lat.push_back(rows[s].latency_s[mi]);
    }
    ASSERT_FALSE(sim_lat.empty()) << catalog[mi].key;
    EXPECT_NEAR(sweep_geomean(sim_lat, paper_lat), 1.0, 0.25) << catalog[mi].key;
  }
}

TEST(PaperTablesTest, OomCellsMatchTable7) {
  const SeqSweep sweep = run_seq_sweep(workload::Dataset::kWikiText2);
  const auto& rows = sim::table7_seq_wikitext2();
  for (std::size_t mi = 0; mi < sweep.cells.size(); ++mi) {
    for (std::size_t s = 0; s < sweep.seq_configs.size(); ++s) {
      EXPECT_EQ(sweep.cells[mi][s].oom, std::isnan(rows[s].latency_s[mi]))
          << "model " << mi << " sl=" << sweep.seq_configs[s].total;
    }
  }
}

TEST(PaperTablesTest, Table5LongBenchWithinTenPercentOfTable4) {
  // The paper: "throughput variation remains within ~10%" between datasets.
  const BatchSweep wiki = run_batch_sweep(workload::Dataset::kWikiText2);
  const BatchSweep lb = run_batch_sweep(workload::Dataset::kLongBench);
  for (std::size_t mi = 0; mi < wiki.cells.size(); ++mi) {
    for (std::size_t b = 0; b < wiki.batch_sizes.size(); ++b) {
      if (wiki.cells[mi][b].oom) continue;
      const double ratio =
          lb.cells[mi][b].throughput_tps / wiki.cells[mi][b].throughput_tps;
      EXPECT_NEAR(ratio, 1.0, 0.10);
    }
  }
}

TEST(PaperTablesTest, HeadlineClaimLlamaBatchThroughputGain) {
  // §3.1: Llama improves "by 203% from 184 to 558 tok/s" from bs=32 to 128
  // (the quoted 184 is from a different run than Table 4's 308; we assert
  // the Table 4 version: 308 -> 558, a ~1.8x gain, and require >= 1.6x).
  const BatchSweep sweep = run_batch_sweep(workload::Dataset::kWikiText2);
  const std::size_t llama = 1;
  const double t32 = sweep.cells[llama][5].throughput_tps;
  const double t128 = sweep.cells[llama][7].throughput_tps;
  EXPECT_GT(t128 / t32, 1.6);
}

TEST(PaperTablesTest, HeadlineClaimLlamaSeqThroughputDrop) {
  // §3.2: Llama drops from 271 to 107 tok/s as sl grows 128 -> 1024.
  const SeqSweep sweep = run_seq_sweep(workload::Dataset::kLongBench);
  const std::size_t llama = 1;
  const double t128 = sweep.cells[llama][0].throughput_tps;
  const double t1024 = sweep.cells[llama][3].throughput_tps;
  EXPECT_NEAR(t128, 271.5, 271.5 * 0.25);
  EXPECT_NEAR(t1024, 107.3, 107.3 * 0.25);
  EXPECT_GT(t128 / t1024, 2.0);
}

TEST(PaperTablesTest, Table1MemoryReproducedExactly) {
  const QuantStudy study = run_quant_study();
  const auto& catalog = sim::model_catalog();
  for (std::size_t mi = 0; mi < catalog.size(); ++mi) {
    for (std::size_t d = 0; d < study.dtypes.size(); ++d) {
      if (study.cells[mi][d].oom) continue;
      const double weights = catalog[mi].weight_gb(study.dtypes[d]);
      // Total RAM = weights + incremental; weights must match Table 1.
      EXPECT_NEAR(study.cells[mi][d].ram_total_gb -
                      study.cells[mi][d].ram_incremental_gb,
                  weights, 1e-9);
    }
  }
}

}  // namespace
}  // namespace orinsim::harness
