#include "harness/pareto.h"

#include <gtest/gtest.h>

namespace orinsim::harness {
namespace {

class ParetoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ParetoOptions options;
    options.model_key = "llama3";
    options.batch_sizes = {1, 32};
    options.power_modes = {"MaxN", "A", "H"};
    points_ = new std::vector<ConfigPoint>(enumerate_configs(options));
  }
  static void TearDownTestSuite() { delete points_; }
  static std::vector<ConfigPoint>* points_;
};

std::vector<ConfigPoint>* ParetoTest::points_ = nullptr;

TEST_F(ParetoTest, EnumerationSkipsOom) {
  // 3 dtypes x 2 batches x 3 modes x 2 kv = 36 candidates; all Llama configs
  // fit, so all are present.
  EXPECT_EQ(points_->size(), 36u);
  for (const auto& p : *points_) {
    EXPECT_GT(p.latency_per_token_ms, 0.0);
    EXPECT_GT(p.energy_per_token_j, 0.0);
    EXPECT_GT(p.ram_gb, 0.0);
  }
}

TEST_F(ParetoTest, FrontierIsNonDominatedAndNonEmpty) {
  const auto frontier = pareto_frontier(*points_);
  ASSERT_FALSE(frontier.empty());
  EXPECT_LT(frontier.size(), points_->size());
  for (const auto& f : frontier) {
    for (const auto& other : *points_) {
      const bool dominates = other.latency_per_token_ms <= f.latency_per_token_ms &&
                             other.energy_per_token_j <= f.energy_per_token_j &&
                             other.ram_gb <= f.ram_gb &&
                             (other.latency_per_token_ms < f.latency_per_token_ms ||
                              other.energy_per_token_j < f.energy_per_token_j ||
                              other.ram_gb < f.ram_gb);
      EXPECT_FALSE(dominates) << other.label() << " dominates " << f.label();
    }
  }
}

TEST_F(ParetoTest, FrontierContainsExpectedArchetypes) {
  // INT4 at some configuration must be on the frontier (smallest RAM), and
  // some large-batch FP16 point (best latency/token).
  const auto frontier = pareto_frontier(*points_);
  bool has_int4 = false, has_fp16_batch32 = false;
  for (const auto& f : frontier) {
    if (f.dtype == DType::kI4) has_int4 = true;
    if (f.dtype == DType::kF16 && f.batch == 32) has_fp16_batch32 = true;
  }
  EXPECT_TRUE(has_int4);
  EXPECT_TRUE(has_fp16_batch32);
}

TEST_F(ParetoTest, ConstraintsFilter) {
  Constraints power_cap;
  power_cap.max_power_w = 30.0;
  const auto best = best_config(*points_, power_cap, Objective::kEnergyPerToken);
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->median_power_w, 30.0);

  Constraints impossible;
  impossible.max_latency_s = 0.001;
  EXPECT_FALSE(best_config(*points_, impossible, Objective::kThroughput).has_value());
}

TEST_F(ParetoTest, ObjectivesPickDifferentWinners) {
  Constraints none;
  const auto fastest = best_config(*points_, none, Objective::kLatencyPerToken);
  const auto frugal = best_config(*points_, none, Objective::kEnergyPerToken);
  const auto dense = best_config(*points_, none, Objective::kThroughput);
  ASSERT_TRUE(fastest && frugal && dense);
  // Throughput winner is the latency/token winner by construction; energy
  // winner differs (it prefers a lower power mode).
  EXPECT_EQ(dense->label(), fastest->label());
  EXPECT_NE(frugal->label(), fastest->label());
}

TEST_F(ParetoTest, Int8KvOnlyEverHelps) {
  // For identical (dtype, batch, mode), the kv8 variant never has more RAM
  // or higher latency (it halves KV traffic at tiny overhead).
  for (const auto& a : *points_) {
    if (a.kv_cache_int8) continue;
    for (const auto& b : *points_) {
      if (!b.kv_cache_int8 || b.dtype != a.dtype || b.batch != a.batch ||
          b.power_mode != a.power_mode) {
        continue;
      }
      EXPECT_LE(b.ram_gb, a.ram_gb + 1e-9);
      EXPECT_LE(b.latency_s, a.latency_s * 1.02);
    }
  }
}

}  // namespace
}  // namespace orinsim::harness
