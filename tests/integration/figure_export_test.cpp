#include "harness/figure_export.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace orinsim::harness {
namespace {

TEST(FigureExportTest, WritesAllSeries) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "orinsim_fig_test").string();
  std::filesystem::remove_all(dir);
  const ExportResult result = export_figure_data(dir);

  // 4 models x fig1 + 4 x fig2 + fig3 + 3 dtypes x fig4 + fig5 + manifest.
  EXPECT_EQ(result.files.size(), 4u + 4u + 1u + 3u + 1u + 1u);
  for (const auto& f : result.files) {
    EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / f)) << f;
  }

  // fig1_llama3.dat parses: 8 batch rows, 4 numeric columns.
  std::ifstream in(std::filesystem::path(dir) / "fig1_llama3.dat");
  std::string line;
  std::getline(in, line);  // header comment
  EXPECT_EQ(line[0], '#');
  int rows = 0;
  while (std::getline(in, line)) {
    std::istringstream ss(line);
    double bs = 0, tput = 0, lat = 0, ram = 0;
    ASSERT_TRUE(static_cast<bool>(ss >> bs >> tput >> lat >> ram)) << line;
    EXPECT_GT(tput, 0.0);
    ++rows;
  }
  EXPECT_EQ(rows, 8);

  // Phi-2's fig2 series has only the two non-OOM sequence lengths.
  std::ifstream phi(std::filesystem::path(dir) / "fig2_phi2.dat");
  std::getline(phi, line);
  int phi_rows = 0;
  while (std::getline(phi, line)) ++phi_rows;
  EXPECT_EQ(phi_rows, 2);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace orinsim::harness
