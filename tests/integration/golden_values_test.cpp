// Golden-value guard for the paper's headline cell: Llama-3.1-8B, FP16,
// bs=32, sl=96 (32 in + 64 out), MaxN, WikiText2 — the configuration behind
// Fig 1/4 and Table 4's central column.
//
// The values are pinned to the repository's pre-trace-spine accounting (the
// seed implementation's per-loop latency/energy sums). Any refactor of the
// simulator, the timeline, or the telemetry pipeline that shifts these
// numbers beyond ulp-level noise is a behavior change, not a refactor, and
// must update this file deliberately.
#include <gtest/gtest.h>

#include <cmath>

#include "serving/session.h"

namespace orinsim {
namespace {

void expect_golden(double actual, double expected) {
  // Tight relative tolerance: allows FP-contraction differences across
  // compilers/build types, rejects any real accounting drift.
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-9);
}

TEST(GoldenValuesTest, Llama3Fp16Batch32HeadlineCell) {
  serving::SimSession session("llama3", DType::kF16, workload::Dataset::kWikiText2);
  serving::BatchRequest rq;  // defaults: bs=32, sl=96
  ASSERT_EQ(rq.batch, 32u);
  ASSERT_EQ(rq.seq.total, 96u);

  trace::ExecutionTimeline timeline;
  const serving::BatchResult r = session.run(rq, &timeline);
  ASSERT_FALSE(r.oom);

  expect_golden(r.latency_s, 10.293658045026268);
  expect_golden(r.throughput_tps, 298.56408594100878);
  expect_golden(r.median_power_w, 53.468640533222313);
  expect_golden(r.energy_j, 514.35562863154303);
  expect_golden(r.total_ram_gb, 17.192481664000002);

  // The modeled schedule: setup + prefill + 64 decode steps.
  EXPECT_EQ(timeline.events().size(), 66u);
  EXPECT_EQ(timeline.count(trace::Phase::kDecode), 64u);
}

}  // namespace
}  // namespace orinsim
