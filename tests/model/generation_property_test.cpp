// Parameterized generation properties across all four model families and all
// storage precisions: the functional engine must behave like a language
// model regardless of architecture style or quantization.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <tuple>

#include "model/transformer.h"

namespace orinsim {
namespace {

using FamilyDtype = std::tuple<std::string, DType>;

class GenerationPropertyTest : public ::testing::TestWithParam<FamilyDtype> {
 protected:
  static constexpr std::size_t kVocab = 211;

  std::shared_ptr<MasterWeights> master() const {
    const auto& [family, dt] = GetParam();
    // One master per family, shared across the dtype instantiations.
    static std::map<std::string, std::shared_ptr<MasterWeights>> cache;
    auto it = cache.find(family);
    if (it == cache.end()) {
      it = cache
               .emplace(family, MasterWeights::init_random(
                                    make_nano_config(family, kVocab), 1234))
               .first;
    }
    return it->second;
  }
};

TEST_P(GenerationPropertyTest, OutputsInVocabAndRightLength) {
  const auto& [family, dt] = GetParam();
  Model model(master(), dt);
  const std::vector<std::vector<TokenId>> prompts = {{3, 5, 7, 9}, {11, 13}};
  const auto result = model.generate(prompts, 12);
  ASSERT_EQ(result.outputs.size(), 2u);
  for (const auto& seq : result.outputs) {
    EXPECT_EQ(seq.size(), 12u);
    for (TokenId t : seq) EXPECT_LT(t, kVocab);
  }
  EXPECT_EQ(result.input_tokens, 6u);
  EXPECT_EQ(result.output_tokens, 24u);
}

TEST_P(GenerationPropertyTest, HiddenStatesFiniteOverLongRollout) {
  const auto& [family, dt] = GetParam();
  Model model(master(), dt);
  const TransformerConfig& cfg = model.config();
  KVCache cache(cfg, 1, 48);
  std::vector<float> hidden(cfg.d_model);
  TokenId token = 1;
  for (int i = 0; i < 48; ++i) {
    model.forward_token(token, 0, cache, hidden);
    token = static_cast<TokenId>((token * 31 + 17) % kVocab);
    for (float v : hidden) ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(GenerationPropertyTest, RepeatedGenerationIdentical) {
  const auto& [family, dt] = GetParam();
  Model a(master(), dt), b(master(), dt);
  const std::vector<std::vector<TokenId>> prompts = {{2, 4, 8}};
  EXPECT_EQ(a.generate(prompts, 10).outputs, b.generate(prompts, 10).outputs);
}

TEST_P(GenerationPropertyTest, NllIsFiniteAndPositive) {
  const auto& [family, dt] = GetParam();
  Model model(master(), dt);
  std::vector<TokenId> tokens;
  for (int i = 0; i < 40; ++i) tokens.push_back(static_cast<TokenId>((i * 13) % kVocab));
  const auto r = model.sequence_nll(tokens, 1);
  EXPECT_TRUE(std::isfinite(r.total_nll));
  EXPECT_GT(r.total_nll, 0.0);
  EXPECT_EQ(r.predicted, tokens.size() - 1);
}

std::string family_dtype_name(const ::testing::TestParamInfo<FamilyDtype>& info) {
  std::string family = std::get<0>(info.param);
  for (auto& c : family) {
    if (c == '-') c = '_';
  }
  return family + "_" + dtype_name(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllPrecisions, GenerationPropertyTest,
    ::testing::Combine(::testing::Values("phi2", "llama3", "mistral", "deepseek-qwen"),
                       ::testing::Values(DType::kF32, DType::kF16, DType::kI8,
                                         DType::kI4)),
    family_dtype_name);

}  // namespace
}  // namespace orinsim
