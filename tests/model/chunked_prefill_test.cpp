// Chunked prefill equivalence: processing a prompt in N-token GEMM chunks
// must reproduce the token-at-a-time path — bit-identically under the scalar
// kernel level (the determinism contract's reference), and within FMA
// tolerance under the native level.
#include "model/transformer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "quant/weight_matrix.h"
#include "tensor/simd.h"
#include "trace/timeline.h"

namespace orinsim {
namespace {

class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedLevel() { simd::set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level prev_;
};

TransformerConfig test_config(BlockStyle style) {
  TransformerConfig c;
  c.name = style == BlockStyle::kPreNormSwiGLU ? "llama3-nano" : "phi2-nano";
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.style = style;
  if (style == BlockStyle::kParallelGELU) c.n_kv_heads = 4;
  c.validate();
  return c;
}

std::vector<TokenId> make_prompt(std::size_t n, std::size_t vocab) {
  std::vector<TokenId> prompt(n);
  for (std::size_t i = 0; i < n; ++i) {
    prompt[i] = static_cast<TokenId>((i * 5 + 3) % vocab);
  }
  return prompt;
}

// Prefill `prompt` with the given chunk size and return (last hidden, cache).
std::vector<float> prefill_hidden(Model& model, std::span<const TokenId> prompt,
                                  std::size_t chunk, KVCache& cache) {
  model.set_prefill_chunk(chunk);
  std::vector<float> hidden(model.config().d_model);
  model.prefill(prompt, 0, cache, hidden);
  return hidden;
}

TEST(ChunkedPrefillTest, BitIdenticalToTokenAtATimeUnderScalar) {
  // Every precision × both block styles × both KV storages, with a prompt
  // length (13) that is not a multiple of the chunk (4): exercises full
  // chunks plus the remainder chunk.
  ScopedLevel scalar(simd::Level::kScalar);
  for (BlockStyle style : {BlockStyle::kPreNormSwiGLU, BlockStyle::kParallelGELU}) {
    const auto cfg = test_config(style);
    auto master = MasterWeights::init_random(cfg, 17);
    const auto prompt = make_prompt(13, cfg.vocab);
    for (DType dtype : {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
      for (KVStorage kv : {KVStorage::kF32, KVStorage::kI8}) {
        Model chunked(master, dtype), stepped(master, dtype);
        KVCache c_chunk(cfg, 1, 32, kv), c_step(cfg, 1, 32, kv);
        const auto h_chunk = prefill_hidden(chunked, prompt, 4, c_chunk);
        const auto h_step = prefill_hidden(stepped, prompt, 0, c_step);

        const std::string where = cfg.name + " dtype=" +
                                  std::to_string(static_cast<int>(dtype)) +
                                  " kv=" + std::to_string(static_cast<int>(kv));
        for (std::size_t i = 0; i < h_chunk.size(); ++i) {
          ASSERT_EQ(h_chunk[i], h_step[i]) << where << " hidden i=" << i;
        }
        // The caches must also agree position-by-position (INT8 KV: the
        // quantized codes round-trip identically because the stored fp32
        // vectors were bit-identical).
        ASSERT_EQ(c_chunk.seq_len(0), prompt.size());
        ASSERT_EQ(c_step.seq_len(0), prompt.size());
        std::vector<float> s1(cfg.kv_dim()), s2(cfg.kv_dim());
        for (std::size_t l = 0; l < cfg.n_layers; ++l) {
          for (std::size_t p = 0; p < prompt.size(); ++p) {
            const auto k1 = c_chunk.key(l, 0, p, s1);
            const auto k2 = c_step.key(l, 0, p, s2);
            for (std::size_t i = 0; i < cfg.kv_dim(); ++i) {
              ASSERT_EQ(k1[i], k2[i]) << where << " key l=" << l << " p=" << p;
            }
            const auto v1 = c_chunk.value(l, 0, p, s1);
            const auto v2 = c_step.value(l, 0, p, s2);
            for (std::size_t i = 0; i < cfg.kv_dim(); ++i) {
              ASSERT_EQ(v1[i], v2[i]) << where << " value l=" << l << " p=" << p;
            }
          }
        }
      }
    }
  }
}

TEST(ChunkedPrefillTest, ChunkLargerThanPromptMatchesExactPrompt) {
  // chunk > prompt length: one ragged chunk covering the whole prompt.
  ScopedLevel scalar(simd::Level::kScalar);
  const auto cfg = test_config(BlockStyle::kPreNormSwiGLU);
  auto master = MasterWeights::init_random(cfg, 19);
  const auto prompt = make_prompt(7, cfg.vocab);
  Model big(master, DType::kF32), stepped(master, DType::kF32);
  KVCache c1(cfg, 1, 16), c2(cfg, 1, 16);
  const auto h1 = prefill_hidden(big, prompt, 64, c1);
  const auto h2 = prefill_hidden(stepped, prompt, 1, c2);
  for (std::size_t i = 0; i < h1.size(); ++i) EXPECT_EQ(h1[i], h2[i]);
}

TEST(ChunkedPrefillTest, NativeLevelTracksScalarWithinTolerance) {
  if (!simd::native_available()) GTEST_SKIP() << "no AVX2/FMA on this host";
  const auto cfg = test_config(BlockStyle::kPreNormSwiGLU);
  auto master = MasterWeights::init_random(cfg, 23);
  const auto prompt = make_prompt(20, cfg.vocab);
  Model model(master, DType::kF32);
  std::vector<float> h_scalar, h_native;
  {
    ScopedLevel scalar(simd::Level::kScalar);
    KVCache cache(cfg, 1, 32);
    h_scalar = prefill_hidden(model, prompt, 8, cache);
  }
  {
    ScopedLevel native(simd::Level::kNative);
    KVCache cache(cfg, 1, 32);
    h_native = prefill_hidden(model, prompt, 8, cache);
  }
  for (std::size_t i = 0; i < h_scalar.size(); ++i) {
    EXPECT_NEAR(h_native[i], h_scalar[i], 1e-3 * (std::fabs(h_scalar[i]) + 1.0))
        << "i=" << i;
  }
}

TEST(ChunkedPrefillTest, SequenceNllBitIdenticalUnderScalar) {
  // sequence_nll scores every position from the chunk's hidden rows; under
  // scalar the per-position logits and the ascending accumulation match the
  // token loop exactly.
  ScopedLevel scalar(simd::Level::kScalar);
  for (BlockStyle style : {BlockStyle::kPreNormSwiGLU, BlockStyle::kParallelGELU}) {
    const auto cfg = test_config(style);
    auto master = MasterWeights::init_random(cfg, 29);
    const auto tokens = make_prompt(23, cfg.vocab);
    Model chunked(master, DType::kF32), stepped(master, DType::kF32);
    chunked.set_prefill_chunk(5);
    stepped.set_prefill_chunk(0);
    const auto a = chunked.sequence_nll(tokens, 3);
    const auto b = stepped.sequence_nll(tokens, 3);
    EXPECT_EQ(a.predicted, b.predicted);
    EXPECT_EQ(a.total_nll, b.total_nll) << cfg.name;
  }
}

TEST(ChunkedPrefillTest, GenerateMatchesTokenPathAndPoolSharding) {
  // Chunked prefill inside generate() — serial and sharded across ThreadPool
  // lanes — must produce the exact token-path outputs under scalar. The
  // pooled variant is the TSan coverage for concurrent chunked prefill.
  ScopedLevel scalar(simd::Level::kScalar);
  const auto cfg = test_config(BlockStyle::kPreNormSwiGLU);
  auto master = MasterWeights::init_random(cfg, 31);
  const std::vector<std::vector<TokenId>> prompts = {
      make_prompt(13, cfg.vocab), make_prompt(9, cfg.vocab), make_prompt(17, cfg.vocab)};

  Model stepped(master, DType::kF32);
  stepped.set_prefill_chunk(0);
  const auto ref = stepped.generate(prompts, 5);

  Model serial(master, DType::kF32);
  serial.set_prefill_chunk(4);
  const auto serial_out = serial.generate(prompts, 5);
  EXPECT_EQ(serial_out.outputs, ref.outputs);

  Model pooled(master, DType::kF32);
  pooled.set_prefill_chunk(4);
  ThreadPool pool(3);
  Model::GenerateOptions options;
  options.pool = &pool;
  const auto pooled_out = pooled.generate(prompts, 5, options);
  EXPECT_EQ(pooled_out.outputs, ref.outputs);
}

TEST(ChunkedPrefillTest, PrefillEventCarriesChunkSize) {
  const auto cfg = test_config(BlockStyle::kPreNormSwiGLU);
  auto master = MasterWeights::init_random(cfg, 37);
  const std::vector<std::vector<TokenId>> prompts = {make_prompt(10, cfg.vocab)};

  auto prefill_chunk_of = [&](std::size_t chunk) {
    Model model(master, DType::kF32);
    model.set_prefill_chunk(chunk);
    trace::ExecutionTimeline timeline;
    Model::GenerateOptions options;
    options.timeline = &timeline;
    model.generate(prompts, 2, options);
    // Trace conservation: exactly one kPrefill event per generate().
    EXPECT_EQ(timeline.count(trace::Phase::kPrefill), 1u);
    for (const auto& e : timeline.events()) {
      if (e.phase == trace::Phase::kPrefill) return e.chunk;
    }
    return static_cast<std::size_t>(0xdead);
  };
  EXPECT_EQ(prefill_chunk_of(8), 8u);
  // Token-at-a-time prefill reports chunk 0 (field absent from JSONL).
  EXPECT_EQ(prefill_chunk_of(0), 0u);
  EXPECT_EQ(prefill_chunk_of(1), 0u);
}

TEST(ChunkedPrefillTest, MatmulQkvBitIdenticalToSeparateMatmuls) {
  // The fused QKV chunk projection quantizes the activation chunk once; the
  // contract says results are bit-identical to three independent matmuls for
  // every precision (INT8 shares the identical quantized codes; others
  // delegate).
  Rng rng(41);
  const std::size_t in = 32, out_q = 24, out_kv = 8, tokens = 5;
  std::vector<float> src_q(out_q * in), src_k(out_kv * in), src_v(out_kv * in);
  for (auto& w : src_q) w = static_cast<float>(rng.normal(0.0, 0.3));
  for (auto& w : src_k) w = static_cast<float>(rng.normal(0.0, 0.3));
  for (auto& w : src_v) w = static_cast<float>(rng.normal(0.0, 0.3));
  std::vector<float> x(tokens * in);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));

  for (DType dtype : {DType::kF32, DType::kF16, DType::kI8, DType::kI4}) {
    const auto wq = quant::WeightMatrix::create(src_q, out_q, in, dtype);
    const auto wk = quant::WeightMatrix::create(src_k, out_kv, in, dtype);
    const auto wv = quant::WeightMatrix::create(src_v, out_kv, in, dtype);

    std::vector<float> q(tokens * out_q), k(tokens * out_kv), v(tokens * out_kv);
    quant::ActivationBatchInt8 scratch;
    quant::matmul_qkv(wq, wk, wv, x, q, k, v, tokens, scratch);

    std::vector<float> q2(tokens * out_q), k2(tokens * out_kv), v2(tokens * out_kv);
    wq.matmul(x, q2, tokens);
    wk.matmul(x, k2, tokens);
    wv.matmul(x, v2, tokens);

    for (std::size_t i = 0; i < q.size(); ++i) {
      ASSERT_EQ(q[i], q2[i]) << "dtype=" << static_cast<int>(dtype) << " q i=" << i;
    }
    for (std::size_t i = 0; i < k.size(); ++i) {
      ASSERT_EQ(k[i], k2[i]) << "dtype=" << static_cast<int>(dtype) << " k i=" << i;
    }
    for (std::size_t i = 0; i < v.size(); ++i) {
      ASSERT_EQ(v[i], v2[i]) << "dtype=" << static_cast<int>(dtype) << " v i=" << i;
    }
  }
}

}  // namespace
}  // namespace orinsim
