#include "model/sampler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace orinsim {
namespace {

TEST(SamplerTest, ZeroTemperatureIsGreedy) {
  Sampler sampler({0.0f, 0, 1.0f});
  const std::vector<float> logits = {0.1f, 5.0f, -2.0f, 4.9f};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.sample(logits), 1u);
}

TEST(SamplerTest, DeterministicForSeed) {
  const std::vector<float> logits = {1.0f, 1.1f, 0.9f, 1.05f};
  Sampler a({1.0f, 0, 1.0f}, 42), b({1.0f, 0, 1.0f}, 42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.sample(logits), b.sample(logits));
}

TEST(SamplerTest, TemperatureSamplesProportionally) {
  // Two tokens with logit gap ln(3): P(t0)/P(t1) = 3 at temperature 1.
  Sampler sampler({1.0f, 0, 1.0f}, 7);
  const std::vector<float> logits = {std::log(3.0f), 0.0f};
  int count0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count0 += sampler.sample(logits) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count0) / n, 0.75, 0.02);
}

TEST(SamplerTest, LowTemperatureSharpens) {
  Sampler hot({2.0f, 0, 1.0f}, 9);
  Sampler cold({0.25f, 0, 1.0f}, 9);
  const std::vector<float> logits = {1.0f, 0.0f};
  auto frequency_of_best = [&](Sampler& s) {
    int hits = 0;
    for (int i = 0; i < 5000; ++i) hits += s.sample(logits) == 0 ? 1 : 0;
    return static_cast<double>(hits) / 5000.0;
  };
  EXPECT_GT(frequency_of_best(cold), frequency_of_best(hot));
}

TEST(SamplerTest, TopKExcludesTail) {
  Sampler sampler({1.0f, 2, 1.0f}, 11);
  const std::vector<float> logits = {3.0f, 2.0f, -10.0f, 1.0f};
  // top_k=2 keeps tokens 0 and 1 only.
  for (int i = 0; i < 200; ++i) {
    const TokenId t = sampler.sample(logits);
    EXPECT_TRUE(t == 0u || t == 1u) << t;
  }
}

TEST(SamplerTest, TopPExcludesTail) {
  // Token 0 holds ~88% of the mass; top_p=0.5 keeps only it.
  Sampler sampler({1.0f, 0, 0.5f}, 13);
  const std::vector<float> logits = {2.0f, 0.0f, 0.0f};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sampler.sample(logits), 0u);
}

TEST(SamplerTest, InvalidConfigsRejected) {
  EXPECT_THROW(Sampler({-1.0f, 0, 1.0f}), ContractViolation);
  EXPECT_THROW(Sampler({1.0f, 0, 0.0f}), ContractViolation);
  EXPECT_THROW(Sampler({1.0f, 0, 1.5f}), ContractViolation);
  Sampler ok({1.0f, 0, 1.0f});
  EXPECT_THROW(ok.sample({}), ContractViolation);
}

TEST(SamplerTest, SingleCandidateAlwaysReturned) {
  Sampler sampler({1.0f, 1, 1.0f}, 15);
  const std::vector<float> logits = {0.5f, 5.0f, 0.2f};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.sample(logits), 1u);
}

// Reference sampler: the pre-optimization algorithm — full O(V log V) sort of
// the vocabulary, truncate, inverse-CDF draw. The production sampler replaced
// the full sort with an O(V) untruncated path and head-bounded partial sorts;
// this pin proves the draw sequence is unchanged for a given seed.
TokenId reference_sample(const SamplerConfig& cfg, Rng& rng,
                         std::span<const float> logits) {
  const std::size_t vocab = logits.size();
  const double inv_t = 1.0 / cfg.temperature;
  float max_logit = logits[0];
  for (float l : logits) max_logit = std::max(max_logit, l);
  auto weight = [&](std::size_t c) {
    return std::exp(static_cast<double>(logits[c] - max_logit) * inv_t);
  };

  // Untruncated: the documented semantics is an inverse-CDF draw in index
  // order (no ordering of the vocabulary at all).
  if (cfg.top_k == 0 && cfg.top_p >= 1.0f) {
    double total = 0.0;
    for (std::size_t c = 0; c < vocab; ++c) total += weight(c);
    const double u = rng.uniform() * total;
    double cum = 0.0;
    for (std::size_t c = 0; c < vocab; ++c) {
      cum += weight(c);
      if (u < cum) return static_cast<TokenId>(c);
    }
    return static_cast<TokenId>(vocab - 1);
  }

  std::vector<std::size_t> order(vocab);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (logits[a] != logits[b]) return logits[a] > logits[b];
    return a < b;
  });

  std::size_t candidates = cfg.top_k > 0 ? std::min(vocab, cfg.top_k) : vocab;
  double denom = 0.0;
  if (cfg.top_k > 0) {
    for (std::size_t i = 0; i < candidates; ++i) denom += weight(order[i]);
  } else {
    for (std::size_t c = 0; c < vocab; ++c) denom += weight(c);
  }
  if (cfg.top_p < 1.0f) {
    double cum = 0.0;
    std::size_t cutoff = candidates;
    for (std::size_t i = 0; i < candidates; ++i) {
      cum += weight(order[i]) / denom;
      if (cum >= cfg.top_p) {
        cutoff = i + 1;
        break;
      }
    }
    candidates = cutoff;
  }
  double renorm = 0.0;
  for (std::size_t i = 0; i < candidates; ++i) renorm += weight(order[i]);
  const double u = rng.uniform() * renorm;
  double cum = 0.0;
  for (std::size_t i = 0; i < candidates; ++i) {
    cum += weight(order[i]);
    if (u < cum) return static_cast<TokenId>(order[i]);
  }
  return static_cast<TokenId>(order[candidates - 1]);
}

std::vector<float> pin_logits(std::size_t vocab, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> logits(vocab);
  for (auto& l : logits) l = static_cast<float>(rng.normal(0.0, 2.0));
  // Duplicate a few logits so the deterministic tie-break is exercised.
  logits[10] = logits[3];
  logits[200] = logits[3];
  logits[77] = logits[78];
  return logits;
}

TEST(SamplerTest, MatchesFullSortReference) {
  const auto logits = pin_logits(512, 101);
  const SamplerConfig configs[] = {
      {0.7f, 0, 1.0f},   // untruncated O(V) path
      {0.7f, 5, 1.0f},   // top-k partial_sort path
      {0.7f, 0, 0.9f},   // nucleus doubling-partial_sort path
      {0.7f, 0, 0.05f},  // tiny nucleus: cutoff within the first head guess
      {1.3f, 40, 0.8f},  // top-k and nucleus combined
      {0.7f, 1000, 1.0f},  // top_k > vocab clamps to vocab
  };
  for (const auto& cfg : configs) {
    Sampler sampler(cfg, 555);
    Rng ref_rng(555);
    for (int i = 0; i < 300; ++i) {
      const TokenId expected = reference_sample(cfg, ref_rng, logits);
      EXPECT_EQ(sampler.sample(logits), expected)
          << "top_k=" << cfg.top_k << " top_p=" << cfg.top_p << " draw " << i;
    }
  }
}

}  // namespace
}  // namespace orinsim
