#include "model/sampler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/error.h"

namespace orinsim {
namespace {

TEST(SamplerTest, ZeroTemperatureIsGreedy) {
  Sampler sampler({0.0f, 0, 1.0f});
  const std::vector<float> logits = {0.1f, 5.0f, -2.0f, 4.9f};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sampler.sample(logits), 1u);
}

TEST(SamplerTest, DeterministicForSeed) {
  const std::vector<float> logits = {1.0f, 1.1f, 0.9f, 1.05f};
  Sampler a({1.0f, 0, 1.0f}, 42), b({1.0f, 0, 1.0f}, 42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.sample(logits), b.sample(logits));
}

TEST(SamplerTest, TemperatureSamplesProportionally) {
  // Two tokens with logit gap ln(3): P(t0)/P(t1) = 3 at temperature 1.
  Sampler sampler({1.0f, 0, 1.0f}, 7);
  const std::vector<float> logits = {std::log(3.0f), 0.0f};
  int count0 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) count0 += sampler.sample(logits) == 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(count0) / n, 0.75, 0.02);
}

TEST(SamplerTest, LowTemperatureSharpens) {
  Sampler hot({2.0f, 0, 1.0f}, 9);
  Sampler cold({0.25f, 0, 1.0f}, 9);
  const std::vector<float> logits = {1.0f, 0.0f};
  auto frequency_of_best = [&](Sampler& s) {
    int hits = 0;
    for (int i = 0; i < 5000; ++i) hits += s.sample(logits) == 0 ? 1 : 0;
    return static_cast<double>(hits) / 5000.0;
  };
  EXPECT_GT(frequency_of_best(cold), frequency_of_best(hot));
}

TEST(SamplerTest, TopKExcludesTail) {
  Sampler sampler({1.0f, 2, 1.0f}, 11);
  const std::vector<float> logits = {3.0f, 2.0f, -10.0f, 1.0f};
  // top_k=2 keeps tokens 0 and 1 only.
  for (int i = 0; i < 200; ++i) {
    const TokenId t = sampler.sample(logits);
    EXPECT_TRUE(t == 0u || t == 1u) << t;
  }
}

TEST(SamplerTest, TopPExcludesTail) {
  // Token 0 holds ~88% of the mass; top_p=0.5 keeps only it.
  Sampler sampler({1.0f, 0, 0.5f}, 13);
  const std::vector<float> logits = {2.0f, 0.0f, 0.0f};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(sampler.sample(logits), 0u);
}

TEST(SamplerTest, InvalidConfigsRejected) {
  EXPECT_THROW(Sampler({-1.0f, 0, 1.0f}), ContractViolation);
  EXPECT_THROW(Sampler({1.0f, 0, 0.0f}), ContractViolation);
  EXPECT_THROW(Sampler({1.0f, 0, 1.5f}), ContractViolation);
  Sampler ok({1.0f, 0, 1.0f});
  EXPECT_THROW(ok.sample({}), ContractViolation);
}

TEST(SamplerTest, SingleCandidateAlwaysReturned) {
  Sampler sampler({1.0f, 1, 1.0f}, 15);
  const std::vector<float> logits = {0.5f, 5.0f, 0.2f};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sampler.sample(logits), 1u);
}

}  // namespace
}  // namespace orinsim
