#include "model/speculative.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace orinsim {
namespace {

TransformerConfig spec_config(std::size_t vocab, std::size_t d_model = 32) {
  TransformerConfig c;
  c.vocab = vocab;
  c.d_model = d_model;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 2 * d_model;
  c.max_seq = 128;
  c.validate();
  return c;
}

class SpeculativeTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kVocab = 61;

  // d_model 64: a multiple of the INT4 block so the quantized-draft pairing
  // works.
  SpeculativeTest()
      : target_master_(MasterWeights::init_random(spec_config(kVocab, 64), 5)),
        draft_master_(MasterWeights::init_random(spec_config(kVocab, 16), 9)) {}

  std::shared_ptr<MasterWeights> target_master_;
  std::shared_ptr<MasterWeights> draft_master_;
};

TEST_F(SpeculativeTest, OutputIdenticalToTargetGreedy) {
  // The defining property: speculative decoding never changes the output.
  Model target(target_master_, DType::kF32);
  Model target_ref(target_master_, DType::kF32);
  Model draft(draft_master_, DType::kF32);
  const std::vector<TokenId> prompt = {3, 7, 11, 13};

  const auto reference = target_ref.generate({prompt}, 24);
  SpeculativeStats stats;
  const auto spec = speculative_generate(target, draft, prompt, 24, {4}, &stats);
  EXPECT_EQ(spec.outputs[0], reference.outputs[0]);
  EXPECT_EQ(spec.output_tokens, 24u);
  EXPECT_EQ(stats.emitted, 24u);
}

TEST_F(SpeculativeTest, SelfDraftAcceptsEverything) {
  // Draft == target: every proposal is accepted; target forwards collapse to
  // ~ out/(K+1) rounds worth of parallel verification.
  Model target(target_master_, DType::kF32);
  Model draft(target_master_, DType::kF32);
  const std::vector<TokenId> prompt = {2, 4, 6};
  SpeculativeStats stats;
  const auto spec = speculative_generate(target, draft, prompt, 20, {4}, &stats);
  EXPECT_EQ(spec.output_tokens, 20u);
  EXPECT_DOUBLE_EQ(stats.acceptance_rate(), 1.0);
  EXPECT_GE(stats.tokens_per_round(), 4.0);  // K accepted + bonus, minus tail
}

TEST_F(SpeculativeTest, RandomDraftStillCorrect) {
  // A draft that disagrees almost always: acceptance near zero, output still
  // exactly the target's.
  Model target(target_master_, DType::kF32);
  Model target_ref(target_master_, DType::kF32);
  auto unrelated = MasterWeights::init_random(spec_config(kVocab, 16), 777);
  Model draft(unrelated, DType::kF32);
  const std::vector<TokenId> prompt = {1, 2, 3};
  SpeculativeStats stats;
  const auto spec = speculative_generate(target, draft, prompt, 16, {3}, &stats);
  EXPECT_EQ(spec.outputs[0], target_ref.generate({prompt}, 16).outputs[0]);
  EXPECT_LT(stats.acceptance_rate(), 0.9);
}

TEST_F(SpeculativeTest, QuantizedDraftOfSameFamily) {
  // A realistic pairing: the INT8-quantized target acts as its own draft.
  // (Untrained logits are nearly flat, so even small quantization noise
  // flips argmax often; INT8 stays close, INT4 would not — trained-model
  // acceptance is measured in bench_ext_speculative.)
  Model target(target_master_, DType::kF32);
  Model target_ref(target_master_, DType::kF32);
  Model draft(target_master_, DType::kI8);
  const std::vector<TokenId> prompt = {9, 18, 27};
  SpeculativeStats stats;
  const auto spec = speculative_generate(target, draft, prompt, 20, {4}, &stats);
  EXPECT_EQ(spec.outputs[0], target_ref.generate({prompt}, 20).outputs[0]);
  EXPECT_GT(stats.acceptance_rate(), 0.5);
}

TEST_F(SpeculativeTest, ProposedCountsOnlyVerifiedDrafts) {
  // A rejection cuts the verify loop short: the drafts past it were never
  // compared, so they must not count as proposed. Per round the target
  // verifies accepted + (1 if rejected) proposals, so across the run
  // proposed <= accepted + rounds — the old `proposed += k` accounting
  // (k = 4 here) books up to 4 rejections per round and violates this.
  Model target(target_master_, DType::kF32);
  auto unrelated = MasterWeights::init_random(spec_config(kVocab, 16), 777);
  Model draft(unrelated, DType::kF32);
  SpeculativeStats stats;
  speculative_generate(target, draft, {1, 2, 3}, 24, {4}, &stats);
  EXPECT_LE(stats.accepted, stats.proposed);
  EXPECT_LE(stats.proposed, stats.accepted + stats.rounds);
  // An unrelated draft rejects on nearly every round, so the bound is tight:
  // with the inflated accounting proposed would be ~4x rounds.
  EXPECT_GT(stats.rounds, 1u);

  // Self-draft never rejects: every verified proposal is accepted, so the
  // corrected accounting reports exactly acceptance 1.0 even though rounds
  // are cut short by max_new_tokens.
  Model self_target(target_master_, DType::kF32);
  Model self_draft(target_master_, DType::kF32);
  SpeculativeStats self_stats;
  speculative_generate(self_target, self_draft, {2, 4, 6}, 18, {4}, &self_stats);
  EXPECT_EQ(self_stats.proposed, self_stats.accepted);
  EXPECT_DOUBLE_EQ(self_stats.acceptance_rate(), 1.0);
}

TEST_F(SpeculativeTest, StatsAreConsistent) {
  Model target(target_master_, DType::kF32);
  Model draft(draft_master_, DType::kF32);
  SpeculativeStats stats;
  speculative_generate(target, draft, {5, 10, 15}, 20, {4}, &stats);
  EXPECT_LE(stats.accepted, stats.proposed);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_EQ(stats.emitted, 20u);
  // Target forwards <= prompt + emitted + rounds (each round costs at most
  // one extra forward beyond the tokens it retires).
  EXPECT_LE(stats.target_forwards, 3u + 20u + stats.rounds);
}

TEST_F(SpeculativeTest, KvTruncateSupportsRollback) {
  const auto cfg = spec_config(kVocab);
  KVCache cache(cfg, 1, 16);
  std::vector<float> k(cfg.kv_dim(), 1.0f), v(cfg.kv_dim(), 2.0f);
  for (int t = 0; t < 5; ++t) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
    cache.commit(0);
  }
  cache.truncate(0, 2);
  EXPECT_EQ(cache.seq_len(0), 2u);
  EXPECT_THROW(cache.truncate(0, 10), ContractViolation);
  // Growth after rollback reuses the slots.
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
  cache.commit(0);
  EXPECT_EQ(cache.seq_len(0), 3u);
}

TEST_F(SpeculativeTest, InvalidConfigsRejected) {
  Model target(target_master_, DType::kF32);
  Model draft(draft_master_, DType::kF32);
  EXPECT_THROW(speculative_generate(target, draft, {}, 8), ContractViolation);
  EXPECT_THROW(speculative_generate(target, draft, {1}, 8, {0}), ContractViolation);
  auto other_vocab = MasterWeights::init_random(spec_config(kVocab + 3, 16), 4);
  Model mismatched(other_vocab, DType::kF32);
  EXPECT_THROW(speculative_generate(target, mismatched, {1}, 8), ContractViolation);
}

}  // namespace
}  // namespace orinsim
