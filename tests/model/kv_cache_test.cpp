#include "model/kv_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"
#include "model/config.h"

namespace orinsim {
namespace {

TransformerConfig tiny_config() {
  TransformerConfig c;
  c.vocab = 50;
  c.d_model = 16;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 32;
  c.max_seq = 64;
  c.validate();
  return c;
}

TEST(KVCacheTest, AppendCommitReadBack) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 2, 8);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv, 1.5f), v(kv, -2.5f);

  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    EXPECT_EQ(cache.append(l, 0, k, v), 0u);
  }
  cache.commit(0);
  EXPECT_EQ(cache.seq_len(0), 1u);
  EXPECT_EQ(cache.seq_len(1), 0u);
  std::vector<float> scratch(kv);
  EXPECT_EQ(cache.key(1, 0, 0, scratch)[0], 1.5f);
  EXPECT_EQ(cache.value(0, 0, 0, scratch)[kv - 1], -2.5f);
}

TEST(KVCacheTest, StagedEntryReadableBeforeCommit) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv, 3.0f), v(kv, 4.0f);
  cache.append(0, 0, k, v);
  // pos == seq_len(b) reads the staged entry.
  std::vector<float> scratch(kv);
  EXPECT_EQ(cache.key(0, 0, 0, scratch)[0], 3.0f);
}

TEST(KVCacheTest, PerSequenceLengthsIndependent) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 3, 8);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv, 0.0f), v(kv, 0.0f);
  for (int step = 0; step < 3; ++step) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 1, k, v);
    cache.commit(1);
  }
  EXPECT_EQ(cache.seq_len(0), 0u);
  EXPECT_EQ(cache.seq_len(1), 3u);
}

TEST(KVCacheTest, OverflowRejected) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 2);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  for (int i = 0; i < 2; ++i) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
    cache.commit(0);
  }
  EXPECT_THROW(cache.append(0, 0, k, v), ContractViolation);
  EXPECT_THROW(cache.commit(0), ContractViolation);
}

TEST(KVCacheTest, BytesAccounting) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 2, 8);
  // 2 layers * K+V * batch 2 * seq 8 * kv_dim * 4 bytes.
  EXPECT_EQ(cache.bytes(), cfg.n_layers * 2 * 2 * 8 * cfg.kv_dim() * sizeof(float));
  EXPECT_EQ(cache.used_bytes(), 0u);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
  cache.commit(0);
  EXPECT_EQ(cache.used_bytes(), cfg.n_layers * 2 * kv * sizeof(float));
}

TEST(KVCacheTest, ResetClearsLengths) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
  cache.commit(0);
  cache.reset();
  EXPECT_EQ(cache.seq_len(0), 0u);
}

TEST(KVCacheTest, DimensionMismatchRejected) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  std::vector<float> wrong(cfg.kv_dim() + 1);
  EXPECT_THROW(cache.append(0, 0, wrong, wrong), ContractViolation);
}

TEST(KVCacheTest, MaxSeqBeyondModelRejected) {
  const auto cfg = tiny_config();
  EXPECT_THROW(KVCache(cfg, 1, cfg.max_seq + 1), ContractViolation);
}

}  // namespace
}  // namespace orinsim
