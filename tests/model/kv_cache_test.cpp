#include "model/kv_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"
#include "model/config.h"

namespace orinsim {
namespace {

TransformerConfig tiny_config() {
  TransformerConfig c;
  c.vocab = 50;
  c.d_model = 16;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 32;
  c.max_seq = 64;
  c.validate();
  return c;
}

TEST(KVCacheTest, AppendCommitReadBack) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 2, 8);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv, 1.5f), v(kv, -2.5f);

  for (std::size_t l = 0; l < cfg.n_layers; ++l) {
    EXPECT_EQ(cache.append(l, 0, k, v), 0u);
  }
  cache.commit(0);
  EXPECT_EQ(cache.seq_len(0), 1u);
  EXPECT_EQ(cache.seq_len(1), 0u);
  std::vector<float> scratch(kv);
  EXPECT_EQ(cache.key(1, 0, 0, scratch)[0], 1.5f);
  EXPECT_EQ(cache.value(0, 0, 0, scratch)[kv - 1], -2.5f);
}

TEST(KVCacheTest, StagedEntryReadableBeforeCommit) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv, 3.0f), v(kv, 4.0f);
  cache.append(0, 0, k, v);
  // pos == seq_len(b) reads the staged entry.
  std::vector<float> scratch(kv);
  EXPECT_EQ(cache.key(0, 0, 0, scratch)[0], 3.0f);
}

TEST(KVCacheTest, PerSequenceLengthsIndependent) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 3, 8);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv, 0.0f), v(kv, 0.0f);
  for (int step = 0; step < 3; ++step) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 1, k, v);
    cache.commit(1);
  }
  EXPECT_EQ(cache.seq_len(0), 0u);
  EXPECT_EQ(cache.seq_len(1), 3u);
}

TEST(KVCacheTest, OverflowRejected) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 2);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  for (int i = 0; i < 2; ++i) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
    cache.commit(0);
  }
  EXPECT_THROW(cache.append(0, 0, k, v), ContractViolation);
  EXPECT_THROW(cache.commit(0), ContractViolation);
}

TEST(KVCacheTest, BytesAccountingDense) {
  const auto cfg = tiny_config();
  KVCacheOptions opts;
  opts.layout = KVLayout::kDense;
  KVCache cache(cfg, 2, 8, opts);
  // Dense reserves everything up front:
  // 2 layers * K+V * batch 2 * seq 8 * kv_dim * 4 bytes.
  EXPECT_EQ(cache.bytes(), cfg.n_layers * 2 * 2 * 8 * cfg.kv_dim() * sizeof(float));
  EXPECT_EQ(cache.bytes(), cache.reserved_bytes());
  EXPECT_EQ(cache.used_bytes(), 0u);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
  cache.commit(0);
  EXPECT_EQ(cache.used_bytes(), cfg.n_layers * 2 * kv * sizeof(float));
}

TEST(KVCacheTest, BytesAccountingPagedTracksBlocksInUse) {
  const auto cfg = tiny_config();
  KVCacheOptions opts;
  opts.block_tokens = 4;
  KVCache cache(cfg, 2, 8, opts);  // default layout is paged
  ASSERT_EQ(cache.layout(), KVLayout::kPaged);
  // Nothing appended yet: no blocks handed out.
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.blocks_in_use(), 0u);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  // One token maps one block for the sequence (shared by all layers).
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
  cache.commit(0);
  EXPECT_EQ(cache.blocks_in_use(), 1u);
  EXPECT_EQ(cache.bytes(), cache.block_bytes());
  EXPECT_EQ(cache.used_bytes(), cfg.n_layers * 2 * kv * sizeof(float));
  // Filling past block_tokens positions takes a second block.
  for (std::size_t t = 1; t < 5; ++t) {
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
    cache.commit(0);
  }
  EXPECT_EQ(cache.blocks_in_use(), 2u);
  EXPECT_EQ(cache.bytes(), 2 * cache.block_bytes());
  EXPECT_EQ(cache.peak_bytes(), 2 * cache.block_bytes());
  // Truncating back into the first block returns the second to the pool,
  // while the peak counter keeps the high-water mark.
  cache.truncate(0, 2);
  EXPECT_EQ(cache.blocks_in_use(), 1u);
  EXPECT_EQ(cache.peak_bytes(), 2 * cache.block_bytes());
}

TEST(KVCacheTest, ResetClearsLengths) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  const std::size_t kv = cfg.kv_dim();
  std::vector<float> k(kv), v(kv);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
  cache.commit(0);
  cache.reset();
  EXPECT_EQ(cache.seq_len(0), 0u);
}

TEST(KVCacheTest, DimensionMismatchRejected) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  std::vector<float> wrong(cfg.kv_dim() + 1);
  EXPECT_THROW(cache.append(0, 0, wrong, wrong), ContractViolation);
}

TEST(KVCacheTest, MaxSeqBeyondModelRejected) {
  const auto cfg = tiny_config();
  EXPECT_THROW(KVCache(cfg, 1, cfg.max_seq + 1), ContractViolation);
}

// Row-major [count, kv_dim] block with distinct per-element values.
std::vector<float> ramp_rows(std::size_t count, std::size_t kv, float base) {
  std::vector<float> rows(count * kv);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i] = base + 0.25f * static_cast<float>(i);
  }
  return rows;
}

TEST(KVCacheTest, AppendManyMatchesSequentialAppends) {
  const auto cfg = tiny_config();
  const std::size_t kv = cfg.kv_dim();
  const std::size_t count = 3;
  const auto ks = ramp_rows(count, kv, 1.0f);
  const auto vs = ramp_rows(count, kv, -2.0f);

  for (KVStorage storage : {KVStorage::kF32, KVStorage::kI8}) {
    KVCache bulk(cfg, 1, 8, storage);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      EXPECT_EQ(bulk.append_many(l, 0, ks, vs, count), 0u);
    }
    bulk.commit(0, count);

    KVCache seq(cfg, 1, 8, storage);
    for (std::size_t p = 0; p < count; ++p) {
      for (std::size_t l = 0; l < cfg.n_layers; ++l) {
        seq.append(l, 0, std::span<const float>(ks.data() + p * kv, kv),
                   std::span<const float>(vs.data() + p * kv, kv));
      }
      seq.commit(0);
    }

    EXPECT_EQ(bulk.seq_len(0), count);
    EXPECT_EQ(seq.seq_len(0), count);
    std::vector<float> s1(kv), s2(kv);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      for (std::size_t p = 0; p < count; ++p) {
        const auto k1 = bulk.key(l, 0, p, s1);
        const auto k2 = seq.key(l, 0, p, s2);
        for (std::size_t i = 0; i < kv; ++i) EXPECT_EQ(k1[i], k2[i]);
        const auto v1 = bulk.value(l, 0, p, s1);
        const auto v2 = seq.value(l, 0, p, s2);
        for (std::size_t i = 0; i < kv; ++i) EXPECT_EQ(v1[i], v2[i]);
      }
    }
  }
}

TEST(KVCacheTest, StagedBlockReadableBeforeCommit) {
  // Chunked attention reads the whole staged block before the commit.
  const auto cfg = tiny_config();
  const std::size_t kv = cfg.kv_dim();
  KVCache cache(cfg, 1, 8);
  const auto ks = ramp_rows(3, kv, 5.0f);
  const auto vs = ramp_rows(3, kv, 7.0f);
  cache.append_many(0, 0, ks, vs, 3);
  EXPECT_EQ(cache.seq_len(0), 0u);
  std::vector<float> scratch(kv);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(cache.key(0, 0, p, scratch)[0], ks[p * kv]);
  }
  // Positions beyond the staged block remain out of range.
  EXPECT_THROW(cache.key(0, 0, 3, scratch), ContractViolation);
}

TEST(KVCacheTest, CommitManyOverflowRejected) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 4);
  const std::size_t kv = cfg.kv_dim();
  const auto ks = ramp_rows(3, kv, 0.0f);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append_many(l, 0, ks, ks, 3);
  cache.commit(0, 3);
  EXPECT_THROW(cache.commit(0, 2), ContractViolation);  // 3 + 2 > 4
}

TEST(KVCacheTest, AppendManyBeyondCapacityRejected) {
  const auto cfg = tiny_config();
  KVCache cache(cfg, 1, 2);
  const std::size_t kv = cfg.kv_dim();
  const auto rows = ramp_rows(3, kv, 0.0f);
  EXPECT_THROW(cache.append_many(0, 0, rows, rows, 3), ContractViolation);
}

TEST(KVCacheTest, KeyRowsValueRowsMatchPerPositionReads) {
  const auto cfg = tiny_config();
  const std::size_t kv = cfg.kv_dim();
  const std::size_t count = 4;
  const auto ks = ramp_rows(count, kv, 2.0f);
  const auto vs = ramp_rows(count, kv, -3.0f);

  for (KVStorage storage : {KVStorage::kF32, KVStorage::kI8}) {
    KVCache cache(cfg, 1, 8, storage);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      cache.append_many(l, 0, ks, vs, count);
    }
    cache.commit(0, count);

    std::vector<float> block(count * kv), scratch(kv);
    for (std::size_t l = 0; l < cfg.n_layers; ++l) {
      const auto krows = cache.key_rows(l, 0, count, block);
      for (std::size_t p = 0; p < count; ++p) {
        const auto kref = cache.key(l, 0, p, scratch);
        for (std::size_t i = 0; i < kv; ++i) {
          EXPECT_EQ(krows[p * kv + i], kref[i]) << "l=" << l << " p=" << p;
        }
      }
      const auto vrows = cache.value_rows(l, 0, count, block);
      for (std::size_t p = 0; p < count; ++p) {
        const auto vref = cache.value(l, 0, p, scratch);
        for (std::size_t i = 0; i < kv; ++i) {
          EXPECT_EQ(vrows[p * kv + i], vref[i]) << "l=" << l << " p=" << p;
        }
      }
    }
  }
}

}  // namespace
}  // namespace orinsim
