// Paged KV cache: the block-table layout must be a pure re-addressing of
// the dense layout. Generation outputs are pinned bit-identical across the
// full weight-precision x KV-storage grid, serial and pooled; fork shares
// blocks copy-on-write; try_reserve is the engine's non-throwing preemption
// probe; unreserved growth past the pool throws.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/error.h"
#include "core/thread_pool.h"
#include "model/kv_cache.h"
#include "model/transformer.h"

namespace orinsim {
namespace {

TransformerConfig paged_test_config() {
  TransformerConfig c;
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.validate();
  return c;
}

std::vector<std::vector<TokenId>> paged_test_prompts() {
  return {{3, 9, 27}, {81, 12, 36, 11}, {5, 6, 7, 8, 9}, {44, 2}};
}

Model::GenerateResult generate_with_layout(Model& model, KVLayout layout,
                                           ThreadPool* pool = nullptr) {
  model.set_kv_layout(layout);
  Model::GenerateOptions options;
  options.pool = pool;
  return model.generate(paged_test_prompts(), 12, options);
}

struct GridCase {
  DType dtype;
  KVStorage storage;
};

class PagedVsDenseTest : public ::testing::TestWithParam<GridCase> {};

// The acceptance grid: every weight precision x both KV storages. Paged
// re-addresses the same bit-exact rows, so outputs must match exactly.
TEST_P(PagedVsDenseTest, BitIdenticalSerialAndPooled) {
  const auto cfg = paged_test_config();
  auto master = MasterWeights::init_random(cfg, 61);
  Model model(master, GetParam().dtype, GetParam().storage);

  const auto dense = generate_with_layout(model, KVLayout::kDense);
  ASSERT_EQ(dense.outputs.size(), 4u);
  const auto paged = generate_with_layout(model, KVLayout::kPaged);
  EXPECT_EQ(paged.outputs, dense.outputs);

  ThreadPool pool(4);
  const auto paged_pooled = generate_with_layout(model, KVLayout::kPaged, &pool);
  EXPECT_EQ(paged_pooled.outputs, dense.outputs);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PagedVsDenseTest,
    ::testing::Values(GridCase{DType::kF32, KVStorage::kF32},
                      GridCase{DType::kF32, KVStorage::kI8},
                      GridCase{DType::kF16, KVStorage::kF32},
                      GridCase{DType::kF16, KVStorage::kI8},
                      GridCase{DType::kI8, KVStorage::kF32},
                      GridCase{DType::kI8, KVStorage::kI8},
                      GridCase{DType::kI4, KVStorage::kF32},
                      GridCase{DType::kI4, KVStorage::kI8}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      std::string name = dtype_name(info.param.dtype);
      name += info.param.storage == KVStorage::kI8 ? "_kvI8" : "_kvF32";
      for (char& ch : name) {
        if (ch == '-' || ch == '.') ch = '_';
      }
      return name;
    });

TEST(PagedKVTest, PerplexityPathMatchesDense) {
  const auto cfg = paged_test_config();
  auto master = MasterWeights::init_random(cfg, 67);
  Model model(master, DType::kF32, KVStorage::kF32);
  const std::vector<TokenId> tokens = {5, 17, 3, 88, 21, 40, 9, 13, 2, 55};

  model.set_kv_layout(KVLayout::kDense);
  const auto dense = model.sequence_nll(tokens, 1);
  model.set_kv_layout(KVLayout::kPaged);
  const auto paged = model.sequence_nll(tokens, 1);
  EXPECT_EQ(paged.predicted, dense.predicted);
  EXPECT_EQ(paged.total_nll, dense.total_nll);  // bit-equal, not just close
}

KVCacheOptions small_pool(std::size_t block_tokens, std::size_t max_blocks) {
  KVCacheOptions o;
  o.layout = KVLayout::kPaged;
  o.block_tokens = block_tokens;
  o.max_blocks = max_blocks;
  return o;
}

void append_all_layers(KVCache& cache, std::size_t b, float fill) {
  std::vector<float> row(cache.kv_dim(), fill);
  for (std::size_t l = 0; l < 2; ++l) cache.append(l, b, row, row);
  cache.commit(b, 1);
}

TEST(PagedKVTest, ForkSharesBlocksThenCopiesOnWrite) {
  const auto cfg = paged_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/16, small_pool(4, 8));

  for (int i = 0; i < 6; ++i) append_all_layers(cache, 0, 1.0f + i);
  EXPECT_EQ(cache.blocks_in_use(), 2u);  // 6 tokens over 4-token blocks

  cache.fork_sequence(0, 1);
  EXPECT_EQ(cache.seq_len(1), 6u);
  EXPECT_EQ(cache.blocks_in_use(), 2u);  // shared, not copied

  std::vector<float> scratch(cache.kv_dim());
  const auto before = cache.key(0, 0, 5, scratch);
  const float sentinel = before[0];

  // Writing into the forked sequence's shared partial block copies it; the
  // source's data must be untouched.
  append_all_layers(cache, 1, -9.0f);
  EXPECT_EQ(cache.blocks_in_use(), 3u);  // the shared tail block diverged
  EXPECT_EQ(cache.key(0, 0, 5, scratch)[0], sentinel);
  EXPECT_EQ(cache.key(0, 1, 6, scratch)[0], -9.0f);

  // Releasing the fork returns only its exclusive blocks.
  cache.free_sequence(1);
  EXPECT_EQ(cache.blocks_in_use(), 2u);
  EXPECT_EQ(cache.key(0, 0, 5, scratch)[0], sentinel);
}

TEST(PagedKVTest, TryReserveIsAllOrNothingAndExhaustionThrows) {
  const auto cfg = paged_test_config();
  // 3-block pool, 4 tokens per block, two sequences of up to 12 tokens.
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/12, small_pool(4, 3));

  EXPECT_TRUE(cache.try_reserve(0, 8));   // 2 blocks
  EXPECT_EQ(cache.blocks_in_use(), 2u);
  EXPECT_FALSE(cache.try_reserve(1, 8));  // needs 2, only 1 left
  EXPECT_EQ(cache.blocks_in_use(), 2u);   // failed probe allocated nothing
  EXPECT_TRUE(cache.try_reserve(1, 4));
  EXPECT_EQ(cache.free_blocks(), 0u);
  // Reserved capacity is idempotent: re-asking for covered room succeeds.
  EXPECT_TRUE(cache.try_reserve(0, 8));
  // Growth past the reservation with an empty pool throws.
  for (int i = 0; i < 8; ++i) append_all_layers(cache, 0, 1.0f);
  std::vector<float> row(cache.kv_dim(), 0.0f);
  EXPECT_THROW(cache.append(0, 0, row, row), ContractViolation);
  // Beyond max_seq is refused even if blocks exist.
  cache.free_sequence(1);
  EXPECT_FALSE(cache.try_reserve(0, 5));  // 8 committed + 5 > max_seq 12
  EXPECT_TRUE(cache.try_reserve(0, 4));
}

// Satellite regression: truncating a sequence that still shares COW blocks
// with a live fork must not free blocks the fork references. Ref counting
// makes truncate a pure "drop my reference": the fork's data stays intact
// and the block only returns to the pool when the last holder lets go.
TEST(PagedKVTest, TruncateOfForkedSourceKeepsForkBlocksAlive) {
  const auto cfg = paged_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/16, small_pool(4, 8));
  for (int i = 0; i < 8; ++i) append_all_layers(cache, 0, 1.0f + i);
  EXPECT_EQ(cache.blocks_in_use(), 2u);

  cache.fork_sequence(0, 1);
  std::vector<float> scratch(cache.kv_dim());
  const float sentinel = cache.key(0, 1, 7, scratch)[0];

  // The source rolls all the way back; both shared blocks lose one ref but
  // stay allocated for the fork.
  cache.truncate(0, 0);
  EXPECT_EQ(cache.seq_len(0), 0u);
  EXPECT_EQ(cache.seq_len(1), 8u);
  EXPECT_EQ(cache.blocks_in_use(), 2u);
  EXPECT_EQ(cache.key(0, 1, 7, scratch)[0], sentinel);

  // The pool has exactly the other 6 blocks free: the fork's two blocks were
  // not double-released into the free list.
  EXPECT_EQ(cache.free_blocks(), 6u);
  // New growth in the source must not alias the fork's storage.
  for (int i = 0; i < 8; ++i) append_all_layers(cache, 0, -5.0f);
  EXPECT_EQ(cache.key(0, 1, 7, scratch)[0], sentinel);
  // Releasing the fork returns its blocks; the pool is fully reusable.
  cache.free_sequence(1);
  EXPECT_EQ(cache.blocks_in_use(), 2u);  // only the source's fresh blocks
}

// The speculative draft branch forks the lane then appends in a parallel
// phase where a COW allocation failure would throw. try_unshare_tail moves
// the copy into the serial setup: it either secures a private tail or
// reports failure without touching the cache.
TEST(PagedKVTest, TryUnshareTailCowsEagerlyOrFailsCleanly) {
  const auto cfg = paged_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/16, small_pool(4, 3));
  for (int i = 0; i < 6; ++i) append_all_layers(cache, 0, 1.0f + i);
  cache.fork_sequence(0, 1);
  EXPECT_EQ(cache.blocks_in_use(), 2u);

  // One free block: the shared partial tail copies now, and is idempotent.
  EXPECT_TRUE(cache.try_unshare_tail(1));
  EXPECT_EQ(cache.blocks_in_use(), 3u);
  EXPECT_TRUE(cache.try_unshare_tail(1));
  EXPECT_EQ(cache.blocks_in_use(), 3u);

  // Appending into the pre-copied tail allocates nothing further and leaves
  // the source's rows untouched.
  std::vector<float> scratch(cache.kv_dim());
  const float sentinel = cache.key(0, 0, 5, scratch)[0];
  append_all_layers(cache, 1, -7.0f);
  EXPECT_EQ(cache.blocks_in_use(), 3u);
  EXPECT_EQ(cache.key(0, 0, 5, scratch)[0], sentinel);
  EXPECT_EQ(cache.key(0, 1, 6, scratch)[0], -7.0f);
  cache.free_sequence(1);
  EXPECT_EQ(cache.blocks_in_use(), 2u);

  // Exhausted pool: the probe reports failure and mutates nothing — a bare
  // append in this state would throw from inside the COW copy.
  cache.fork_sequence(0, 1);
  ASSERT_TRUE(cache.try_reserve(0, 3));  // soak up the last free block
  EXPECT_EQ(cache.free_blocks(), 0u);
  EXPECT_FALSE(cache.try_unshare_tail(1));
  EXPECT_EQ(cache.seq_len(1), 6u);
  EXPECT_EQ(cache.blocks_in_use(), 3u);
  EXPECT_EQ(cache.key(0, 1, 5, scratch)[0], sentinel);

  // A block-aligned sequence has no partial tail: trivially true even with
  // an empty pool.
  cache.truncate(1, 4);
  EXPECT_TRUE(cache.try_unshare_tail(1));
}

TEST(PagedKVTest, AttachPrefixAdoptsReferencesAndExtendsCleanly) {
  const auto cfg = paged_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/16, small_pool(4, 8));
  // Sequence 0 builds 8 tokens = 2 full blocks.
  for (int i = 0; i < 8; ++i) append_all_layers(cache, 0, 1.0f + i);
  const auto table = cache.block_table(0);
  ASSERT_EQ(table.size(), 2u);

  // A prefix-cache-style holder retains the chain, then sequence 1 adopts
  // those references.
  std::vector<std::size_t> chain(table.begin(), table.end());
  for (std::size_t id : chain) cache.retain_block(id);
  cache.attach_prefix(1, chain, 8);
  EXPECT_EQ(cache.seq_len(1), 8u);
  EXPECT_EQ(cache.blocks_in_use(), 2u);  // shared, not copied

  std::vector<float> scratch(cache.kv_dim());
  EXPECT_EQ(cache.key(0, 1, 3, scratch)[0],
            cache.key(0, 0, 3, scratch)[0]);  // same physical rows

  // Appending after a full-chain attach starts a fresh block — the shared
  // blocks are never copy-on-written on the hit path.
  const float sentinel = cache.key(0, 0, 7, scratch)[0];
  append_all_layers(cache, 1, -9.0f);
  EXPECT_EQ(cache.blocks_in_use(), 3u);  // one fresh block, zero COW copies
  EXPECT_EQ(cache.key(0, 0, 7, scratch)[0], sentinel);

  // Each sequence releases independently; block refcounts tie off exactly.
  cache.free_sequence(0);
  EXPECT_EQ(cache.blocks_in_use(), 3u);  // chain survives via sequence 1
  cache.free_sequence(1);
  EXPECT_EQ(cache.blocks_in_use(), 0u);
}

TEST(PagedKVTest, AttachPrefixContractChecks) {
  const auto cfg = paged_test_config();
  KVCache cache(cfg, /*batch=*/2, /*max_seq=*/16, small_pool(4, 8));
  for (int i = 0; i < 6; ++i) append_all_layers(cache, 0, 2.0f);
  std::vector<std::size_t> chain(cache.block_table(0).begin(),
                                 cache.block_table(0).end());
  // 6 tokens do not fill the 2-block chain: only exactly-full chains attach.
  EXPECT_THROW(cache.attach_prefix(1, chain, 6), ContractViolation);
  // Target must be empty.
  append_all_layers(cache, 1, 3.0f);
  EXPECT_THROW(cache.attach_prefix(1, std::vector<std::size_t>{chain[0]}, 4),
               ContractViolation);
}

TEST(PagedKVTest, TruncateReturnsBlocksToThePool) {
  const auto cfg = paged_test_config();
  KVCache cache(cfg, /*batch=*/1, /*max_seq=*/16, small_pool(4, 4));
  for (int i = 0; i < 10; ++i) append_all_layers(cache, 0, 2.0f + i);
  EXPECT_EQ(cache.blocks_in_use(), 3u);

  std::vector<float> scratch(cache.kv_dim());
  const float keep = cache.key(0, 0, 3, scratch)[0];
  cache.truncate(0, 4);  // speculative rejection path
  EXPECT_EQ(cache.blocks_in_use(), 1u);
  EXPECT_EQ(cache.key(0, 0, 3, scratch)[0], keep);  // kept prefix intact

  // The freed blocks are immediately reusable.
  EXPECT_TRUE(cache.try_reserve(0, 12));
}

}  // namespace
}  // namespace orinsim
