// Lane-batched decode: Model::forward_tokens and the batched generate path
// must be bit-identical to the per-lane forward_token loop (the seed path)
// for kF32/kI8/kI4 weights, composition-independent for every dtype, and
// invariant under serial-vs-pooled group sharding. These are the contracts
// that let generate() batch whichever lanes are active without changing any
// lane's tokens.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/thread_pool.h"
#include "model/transformer.h"
#include "tensor/simd.h"

namespace orinsim {
namespace {

// Restores the dispatch level on scope exit so test order never leaks state.
class ScopedLevel {
 public:
  explicit ScopedLevel(simd::Level level) : prev_(simd::active_level()) {
    simd::set_level(level);
  }
  ~ScopedLevel() { simd::set_level(prev_); }
  ScopedLevel(const ScopedLevel&) = delete;
  ScopedLevel& operator=(const ScopedLevel&) = delete;

 private:
  simd::Level prev_;
};

std::vector<simd::Level> levels_to_test() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::native_available()) levels.push_back(simd::Level::kNative);
  return levels;
}

TransformerConfig decode_test_config() {
  TransformerConfig c;
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.validate();
  return c;
}

std::vector<std::vector<TokenId>> five_prompts() {
  return {{3, 9, 27},
          {81, 12, 36, 11},
          {5, 6, 7, 8, 9},
          {44, 2},
          {1, 90, 13, 60, 31, 18}};
}

Model::GenerateResult run_generate(Model& model, bool lane_batched,
                                   std::size_t workers = 0) {
  Model::GenerateOptions options;
  options.lane_batched_decode = lane_batched;
  std::unique_ptr<ThreadPool> pool;
  if (workers > 0) {
    pool = std::make_unique<ThreadPool>(workers);
    options.pool = pool.get();
  }
  return model.generate(five_prompts(), 12, options);
}

// forward_tokens vs a forward_token loop, directly: hidden states AND the
// cache contents a later step reads back must agree bit for bit.
void check_forward_tokens_matches_loop(DType dtype, KVStorage kv_storage,
                                       bool expect_exact) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 61);
  Model model(master, dtype, kv_storage);
  const std::size_t lanes = 4;

  // Two independent models would be cleaner but weights are shared and
  // immutable; two caches over one model give the same isolation.
  KVCache batched_cache(cfg, lanes, cfg.max_seq);
  KVCache looped_cache(cfg, lanes, cfg.max_seq);

  // Seed each lane with a distinct short prompt, both paths via the same
  // per-token code so the starting caches are identical.
  const std::vector<std::vector<TokenId>> prompts = {
      {3, 9, 27}, {81, 12}, {5, 6, 7, 8}, {44}};
  std::vector<float> hidden(cfg.d_model);
  for (std::size_t b = 0; b < lanes; ++b) {
    for (TokenId tok : prompts[b]) {
      model.forward_token(tok, b, batched_cache, hidden);
      model.forward_token(tok, b, looped_cache, hidden);
    }
  }

  // Three decode steps, batched vs looped, feeding each path its own output.
  InferenceWorkspace ws(cfg);
  std::vector<TokenId> batched_tokens = {10, 20, 30, 40};
  std::vector<TokenId> looped_tokens = batched_tokens;
  const std::vector<std::size_t> seqs = {0, 1, 2, 3};
  for (int step = 0; step < 3; ++step) {
    std::vector<float> batched_rows(lanes * cfg.d_model);
    model.forward_tokens(batched_tokens, seqs, batched_cache, batched_rows, ws);
    std::vector<float> batched_logits(lanes * cfg.vocab);
    model.logits_from_hidden_rows(batched_rows, batched_logits, lanes);

    for (std::size_t t = 0; t < lanes; ++t) {
      std::vector<float> looped_hidden(cfg.d_model);
      model.forward_token(looped_tokens[t], seqs[t], looped_cache, looped_hidden);
      std::vector<float> looped_logits(cfg.vocab);
      model.logits_from_hidden(looped_hidden, looped_logits);

      for (std::size_t i = 0; i < cfg.d_model; ++i) {
        const float batched = batched_rows[t * cfg.d_model + i];
        if (expect_exact) {
          EXPECT_EQ(batched, looped_hidden[i])
              << "step=" << step << " t=" << t << " i=" << i;
        } else {
          EXPECT_NEAR(batched, looped_hidden[i], 1e-3f)
              << "step=" << step << " t=" << t << " i=" << i;
        }
      }
      // Greedy argmax from each path's logits picks the next token.
      std::size_t batched_arg = 0, looped_arg = 0;
      for (std::size_t v = 1; v < cfg.vocab; ++v) {
        if (batched_logits[t * cfg.vocab + v] >
            batched_logits[t * cfg.vocab + batched_arg]) {
          batched_arg = v;
        }
        if (looped_logits[v] > looped_logits[looped_arg]) looped_arg = v;
      }
      if (expect_exact) {
        EXPECT_EQ(batched_arg, looped_arg) << "step=" << step << " t=" << t;
      }
      batched_tokens[t] = static_cast<TokenId>(batched_arg);
      looped_tokens[t] = static_cast<TokenId>(looped_arg);
    }
  }
}

TEST(LaneBatchedDecodeTest, ForwardTokensMatchesLoopBitwiseF32) {
  for (simd::Level level : levels_to_test()) {
    ScopedLevel scoped(level);
    check_forward_tokens_matches_loop(DType::kF32, KVStorage::kF32, true);
  }
}

TEST(LaneBatchedDecodeTest, ForwardTokensMatchesLoopBitwiseInt8QuantizedKv) {
  for (simd::Level level : levels_to_test()) {
    ScopedLevel scoped(level);
    check_forward_tokens_matches_loop(DType::kI8, KVStorage::kI8, true);
  }
}

TEST(LaneBatchedDecodeTest, ForwardTokensMatchesLoopBitwiseInt4) {
  for (simd::Level level : levels_to_test()) {
    ScopedLevel scoped(level);
    check_forward_tokens_matches_loop(DType::kI4, KVStorage::kI8, true);
  }
}

TEST(LaneBatchedDecodeTest, ForwardTokensMatchesLoopF16) {
  // kF16 is bit-exact at kScalar; at kNative the multi path reorders fp32
  // accumulation (matmul-style row dequant), so only closeness is promised.
  {
    ScopedLevel scoped(simd::Level::kScalar);
    check_forward_tokens_matches_loop(DType::kF16, KVStorage::kF32, true);
  }
  if (simd::native_available()) {
    ScopedLevel scoped(simd::Level::kNative);
    check_forward_tokens_matches_loop(DType::kF16, KVStorage::kF32, false);
  }
}

// The full generate path: lane-batched decode must reproduce the per-lane
// loop's outputs token for token.
TEST(LaneBatchedDecodeTest, GenerateBatchedMatchesLoopedAllDtypes) {
  const auto cfg = decode_test_config();
  struct Case {
    DType dtype;
    KVStorage kv;
  };
  const Case cases[] = {{DType::kF32, KVStorage::kF32},
                        {DType::kI8, KVStorage::kI8},
                        {DType::kI4, KVStorage::kI8}};
  for (const Case& c : cases) {
    auto master = MasterWeights::init_random(cfg, 67);
    Model model(master, c.dtype, c.kv);
    for (simd::Level level : levels_to_test()) {
      ScopedLevel scoped(level);
      const auto looped = run_generate(model, false);
      const auto batched = run_generate(model, true);
      EXPECT_EQ(batched.outputs, looped.outputs)
          << dtype_name(c.dtype) << " @ " << simd::level_name(level);
    }
  }
}

TEST(LaneBatchedDecodeTest, GenerateBatchedMatchesLoopedF16Scalar) {
  ScopedLevel scoped(simd::Level::kScalar);
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 71);
  Model model(master, DType::kF16, KVStorage::kF32);
  const auto looped = run_generate(model, false);
  const auto batched = run_generate(model, true);
  EXPECT_EQ(batched.outputs, looped.outputs);
}

// Composition independence at the generate level: pooled batched decode
// shards active lanes into contiguous groups whose sizes depend on the
// worker count; outputs must not.
TEST(LaneBatchedDecodeTest, BatchedSerialVsPooledBitIdentical) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 73);
  Model model(master, DType::kI4, KVStorage::kI8);
  const auto serial = run_generate(model, true, 0);
  ASSERT_EQ(serial.outputs.size(), 5u);
  for (std::size_t workers : {1u, 2u, 3u, 8u}) {
    const auto pooled = run_generate(model, true, workers);
    EXPECT_EQ(pooled.outputs, serial.outputs) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace orinsim
