#include "train/readout_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "model/config.h"

namespace orinsim::train {
namespace {

// A tiny synthetic stream with strong bigram structure: token 2k is always
// followed by 2k+1. A context-aware readout must beat the unigram baseline.
std::vector<TokenId> bigram_stream(std::size_t pairs, std::size_t vocab, Rng& rng) {
  std::vector<TokenId> out;
  out.reserve(pairs * 2);
  const std::size_t half = vocab / 2;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<TokenId>(rng.uniform_index(half) * 2);
    out.push_back(a);
    out.push_back(a + 1);
  }
  return out;
}

TransformerConfig trainer_config(std::size_t vocab) {
  TransformerConfig c;
  c.vocab = vocab;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 256;
  c.validate();
  return c;
}

TEST(TrainTest, LossDecreasesOverEpochs) {
  Rng rng(3);
  const std::size_t vocab = 64;
  const auto tokens = bigram_stream(1500, vocab, rng);
  auto master = MasterWeights::init_random(trainer_config(vocab), 5);
  TrainConfig tc;
  tc.epochs = 4;
  tc.max_tokens = tokens.size();
  const TrainReport report = train_readout(*master, tokens, tc);
  ASSERT_EQ(report.epoch_loss.size(), 4u);
  EXPECT_LT(report.final_loss, report.initial_loss);
  EXPECT_LT(report.final_loss, report.epoch_loss[0]);
}

TEST(TrainTest, BeatsUnigramOnBigramStructure) {
  Rng rng(4);
  const std::size_t vocab = 64;
  const auto tokens = bigram_stream(2000, vocab, rng);
  auto master = MasterWeights::init_random(trainer_config(vocab), 6);
  TrainConfig tc;
  tc.epochs = 6;
  tc.max_tokens = tokens.size();
  const TrainReport report = train_readout(*master, tokens, tc);
  const double unigram = unigram_cross_entropy(tokens, vocab);
  // Bigram structure halves the entropy: every odd position is deterministic.
  EXPECT_LT(report.final_loss, unigram * 0.8);
}

TEST(TrainTest, DeterministicGivenSeed) {
  Rng rng(5);
  const std::size_t vocab = 32;
  const auto tokens = bigram_stream(400, vocab, rng);
  auto m1 = MasterWeights::init_random(trainer_config(vocab), 7);
  auto m2 = MasterWeights::init_random(trainer_config(vocab), 7);
  TrainConfig tc;
  tc.epochs = 2;
  tc.max_tokens = tokens.size();
  const TrainReport r1 = train_readout(*m1, tokens, tc);
  const TrainReport r2 = train_readout(*m2, tokens, tc);
  EXPECT_DOUBLE_EQ(r1.final_loss, r2.final_loss);
  EXPECT_EQ(m1->lm_head, m2->lm_head);
}

TEST(TrainTest, UnigramCrossEntropyUniformStream) {
  // Uniform stream over v tokens: CE -> ln(v).
  Rng rng(6);
  const std::size_t vocab = 16;
  std::vector<TokenId> tokens;
  for (int i = 0; i < 4000; ++i) tokens.push_back(static_cast<TokenId>(rng.uniform_index(vocab)));
  EXPECT_NEAR(unigram_cross_entropy(tokens, vocab), std::log(16.0), 0.05);
}

TEST(TrainTest, UnigramCrossEntropySkewedIsLower) {
  std::vector<TokenId> skewed(3000, 0);
  for (int i = 0; i < 300; ++i) skewed[i * 10] = 1;
  EXPECT_LT(unigram_cross_entropy(skewed, 8), std::log(8.0));
}

TEST(TrainTest, RejectsTinyStreams) {
  auto master = MasterWeights::init_random(trainer_config(16), 8);
  std::vector<TokenId> tiny(10, 1);
  EXPECT_THROW(train_readout(*master, tiny, TrainConfig{}), ContractViolation);
}

TEST(TrainTest, RejectsOutOfVocabTokens) {
  auto master = MasterWeights::init_random(trainer_config(16), 9);
  std::vector<TokenId> bad(100, 99);  // vocab is 16
  EXPECT_THROW(train_readout(*master, bad, TrainConfig{}), ContractViolation);
}

}  // namespace
}  // namespace orinsim::train
