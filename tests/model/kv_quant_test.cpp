// INT8 KV-cache storage: quantization fidelity, memory accounting, and
// end-to-end impact on the functional engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "model/transformer.h"

namespace orinsim {
namespace {

TransformerConfig kv_test_config() {
  TransformerConfig c;
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.validate();
  return c;
}

TEST(KVQuantTest, RoundTripWithinAbsmaxBound) {
  const auto cfg = kv_test_config();
  KVCache cache(cfg, 1, 4, KVStorage::kI8);
  Rng rng(3);
  std::vector<float> k(cfg.kv_dim()), v(cfg.kv_dim());
  float absmax = 0.0f;
  for (std::size_t i = 0; i < k.size(); ++i) {
    k[i] = static_cast<float>(rng.normal(0.0, 2.0));
    v[i] = static_cast<float>(rng.normal(0.0, 0.5));
    absmax = std::max(absmax, std::fabs(k[i]));
  }
  cache.append(0, 0, k, v);
  std::vector<float> scratch(cfg.kv_dim());
  const auto k_back = cache.key(0, 0, 0, scratch);
  for (std::size_t i = 0; i < k.size(); ++i) {
    EXPECT_NEAR(k_back[i], k[i], absmax / 127.0f + 1e-6f);
  }
}

// Regression: the quantized accessors used to dequantize into cache-owned
// mutable scratch, so the span returned for one position was silently
// overwritten by the next read. With caller-supplied scratch, two positions
// can be held live at once.
TEST(KVQuantTest, TwoPositionsReadableSimultaneously) {
  const auto cfg = kv_test_config();
  KVCache cache(cfg, 1, 4, KVStorage::kI8);
  std::vector<float> k0(cfg.kv_dim(), 2.0f), k1(cfg.kv_dim(), -3.0f);
  std::vector<float> v(cfg.kv_dim(), 0.5f);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k0, v);
  cache.commit(0);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k1, v);
  cache.commit(0);

  std::vector<float> s0(cfg.kv_dim()), s1(cfg.kv_dim());
  const auto a = cache.key(0, 0, 0, s0);
  const auto b = cache.key(0, 0, 1, s1);  // must not clobber `a`
  EXPECT_NEAR(a[0], 2.0f, 0.05f);
  EXPECT_NEAR(b[0], -3.0f, 0.05f);
}

// Quantized reads with per-thread scratch are const and race-free; this is
// the access pattern of parallel decode lanes sharing one cache. Run under
// TSan (ORINSIM_TSAN) to certify.
TEST(KVQuantTest, ConcurrentReadsWithPrivateScratch) {
  const auto cfg = kv_test_config();
  KVCache cache(cfg, 1, 8, KVStorage::kI8);
  Rng rng(5);
  std::vector<float> k(cfg.kv_dim()), v(cfg.kv_dim());
  for (int pos = 0; pos < 8; ++pos) {
    for (std::size_t i = 0; i < k.size(); ++i) {
      k[i] = static_cast<float>(rng.normal(0.0, 1.0));
      v[i] = static_cast<float>(rng.normal(0.0, 1.0));
    }
    for (std::size_t l = 0; l < cfg.n_layers; ++l) cache.append(l, 0, k, v);
    cache.commit(0);
  }

  std::vector<std::thread> readers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&cache, &cfg, &mismatches] {
      std::vector<float> ks(cfg.kv_dim()), vs(cfg.kv_dim());
      std::vector<float> ref(cfg.kv_dim());
      for (int iter = 0; iter < 50; ++iter) {
        for (std::size_t pos = 0; pos < 8; ++pos) {
          const auto kb = cache.key(0, 0, pos, ks);
          const auto vb = cache.value(1, 0, pos, vs);
          // Re-read into a second buffer: concurrent readers must see stable
          // values (dequantization is pure).
          const auto kb2 = cache.key(0, 0, pos, ref);
          for (std::size_t i = 0; i < cfg.kv_dim(); ++i) {
            if (kb[i] != kb2[i]) mismatches.fetch_add(1);
          }
          (void)vb;
        }
      }
    });
  }
  for (auto& r : readers) r.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(KVQuantTest, Int8CacheHalvesMemory) {
  const auto cfg = kv_test_config();
  KVCache f32(cfg, 2, 16, KVStorage::kF32);
  KVCache i8(cfg, 2, 16, KVStorage::kI8);
  // int8 + per-vector fp32 scale, measured on the physical reservation
  // (bytes() reports blocks in use, zero for both fresh caches).
  EXPECT_LT(i8.reserved_bytes(), f32.reserved_bytes() / 2);
  EXPECT_GT(i8.reserved_bytes(), f32.reserved_bytes() / 8);
}

TEST(KVQuantTest, UsedBytesTracksStorage) {
  const auto cfg = kv_test_config();
  KVCache i8(cfg, 1, 8, KVStorage::kI8);
  std::vector<float> k(cfg.kv_dim(), 1.0f), v(cfg.kv_dim(), -1.0f);
  EXPECT_EQ(i8.used_bytes(), 0u);
  for (std::size_t l = 0; l < cfg.n_layers; ++l) i8.append(l, 0, k, v);
  i8.commit(0);
  EXPECT_EQ(i8.used_bytes(),
            cfg.n_layers * 2 * (cfg.kv_dim() * sizeof(std::int8_t) + sizeof(float)));
}

TEST(KVQuantTest, HiddenStatesCloseToFp32Cache) {
  const auto cfg = kv_test_config();
  auto master = MasterWeights::init_random(cfg, 17);
  Model exact(master, DType::kF32, KVStorage::kF32);
  Model quant(master, DType::kF32, KVStorage::kI8);

  KVCache c_exact(cfg, 1, 16, KVStorage::kF32);
  KVCache c_quant(cfg, 1, 16, KVStorage::kI8);
  std::vector<float> h_exact(cfg.d_model), h_quant(cfg.d_model);
  for (TokenId t : {3u, 9u, 27u, 81u, 12u, 36u}) {
    exact.forward_token(t, 0, c_exact, h_exact);
    quant.forward_token(t, 0, c_quant, h_quant);
  }
  double err = 0.0, norm = 0.0;
  for (std::size_t i = 0; i < h_exact.size(); ++i) {
    err += (h_exact[i] - h_quant[i]) * static_cast<double>(h_exact[i] - h_quant[i]);
    norm += static_cast<double>(h_exact[i]) * h_exact[i];
  }
  EXPECT_LT(std::sqrt(err / norm), 0.05);  // per-vector absmax is accurate
  EXPECT_GT(err, 0.0);                     // but not exact
}

TEST(KVQuantTest, GenerationStillDeterministic) {
  const auto cfg = kv_test_config();
  auto master = MasterWeights::init_random(cfg, 19);
  Model a(master, DType::kF16, KVStorage::kI8);
  Model b(master, DType::kF16, KVStorage::kI8);
  const std::vector<std::vector<TokenId>> prompts = {{5, 6, 7}};
  EXPECT_EQ(a.generate(prompts, 8).outputs, b.generate(prompts, 8).outputs);
  EXPECT_EQ(a.kv_storage(), KVStorage::kI8);
}

TEST(KVQuantTest, NllDegradesGracefully) {
  const auto cfg = kv_test_config();
  auto master = MasterWeights::init_random(cfg, 23);
  Model exact(master, DType::kF32, KVStorage::kF32);
  Model quant(master, DType::kF32, KVStorage::kI8);
  std::vector<TokenId> tokens;
  for (int i = 0; i < 32; ++i) tokens.push_back(static_cast<TokenId>((i * 7) % cfg.vocab));
  const double nll_exact = exact.sequence_nll(tokens, 1).total_nll;
  const double nll_quant = quant.sequence_nll(tokens, 1).total_nll;
  // Within 2% for an untrained model; the trained-model delta is measured in
  // bench_ext_kv_cache.
  EXPECT_NEAR(nll_quant / nll_exact, 1.0, 0.02);
}

}  // namespace
}  // namespace orinsim
