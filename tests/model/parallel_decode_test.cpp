// Parallel batched decode: Model::generate with a ThreadPool must be
// bit-identical to the serial loop for any worker count (the engine
// serializes sampling in lane order), and the decode loop must exit early
// once every lane has hit the cache limit.
#include <gtest/gtest.h>

#include <vector>

#include "core/thread_pool.h"
#include "model/transformer.h"
#include "trace/timeline.h"

namespace orinsim {
namespace {

TransformerConfig decode_test_config() {
  TransformerConfig c;
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.validate();
  return c;
}

std::vector<std::vector<TokenId>> five_prompts() {
  return {{3, 9, 27},
          {81, 12, 36, 11},
          {5, 6, 7, 8, 9},
          {44, 2},
          {1, 90, 13, 60, 31, 18}};
}

Model::GenerateResult run_with_workers(Model& model, std::size_t workers,
                                       Sampler* sampler = nullptr) {
  Model::GenerateOptions options;
  options.sampler = sampler;
  std::unique_ptr<ThreadPool> pool;
  if (workers > 0) {
    pool = std::make_unique<ThreadPool>(workers);
    options.pool = pool.get();
  }
  return model.generate(five_prompts(), 12, options);
}

TEST(ParallelDecodeTest, GreedyBitIdenticalAcrossWorkerCountsF32) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 31);
  Model model(master, DType::kF32, KVStorage::kF32);
  const auto serial = run_with_workers(model, 0);
  ASSERT_EQ(serial.outputs.size(), 5u);
  EXPECT_EQ(serial.output_tokens, 5u * 12u);
  for (std::size_t workers : {1u, 2u, 8u}) {
    const auto parallel = run_with_workers(model, workers);
    EXPECT_EQ(parallel.outputs, serial.outputs) << "workers=" << workers;
  }
}

TEST(ParallelDecodeTest, GreedyBitIdenticalAcrossWorkerCountsQuantizedKv) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 37);
  Model model(master, DType::kF32, KVStorage::kI8);
  const auto serial = run_with_workers(model, 0);
  for (std::size_t workers : {1u, 4u}) {
    const auto parallel = run_with_workers(model, workers);
    EXPECT_EQ(parallel.outputs, serial.outputs) << "workers=" << workers;
  }
}

// INT8 weights route QKV through the fused prequantized-activation path;
// the parallel result must still match the serial one bit for bit.
TEST(ParallelDecodeTest, GreedyBitIdenticalWithInt8Weights) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 41);
  Model model(master, DType::kI8, KVStorage::kI8);
  const auto serial = run_with_workers(model, 0);
  const auto parallel = run_with_workers(model, 4);
  EXPECT_EQ(parallel.outputs, serial.outputs);
}

TEST(ParallelDecodeTest, SampledOutputsIdenticalSerialVsParallel) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 43);
  Model model(master, DType::kF32, KVStorage::kF32);
  Sampler serial_sampler({0.8f, 0, 1.0f}, 1234);
  const auto serial = run_with_workers(model, 0, &serial_sampler);
  Sampler parallel_sampler({0.8f, 0, 1.0f}, 1234);
  const auto parallel = run_with_workers(model, 4, &parallel_sampler);
  EXPECT_EQ(parallel.outputs, serial.outputs);
}

// Regression: generate used to spin all max_new_tokens steps after every
// lane hit max_seq, emitting zero-active decode events.
TEST(ParallelDecodeTest, StopsOnceAllLanesHitMaxSeq) {
  auto cfg = decode_test_config();
  cfg.max_seq = 16;
  cfg.validate();
  auto master = MasterWeights::init_random(cfg, 47);
  Model model(master, DType::kF32, KVStorage::kF32);

  std::vector<std::vector<TokenId>> prompts(2);
  prompts[0].assign(12, 7);  // room for 4 tokens
  prompts[1].assign(14, 9);  // room for 2 tokens
  trace::ExecutionTimeline tl;
  Model::GenerateOptions options;
  options.timeline = &tl;
  const auto r = model.generate(prompts, 20, options);

  EXPECT_EQ(r.outputs[0].size(), 4u);
  EXPECT_EQ(r.outputs[1].size(), 2u);
  // 4 productive steps, then the loop exits instead of idling to step 20.
  EXPECT_EQ(tl.count(trace::Phase::kDecode), 4u);
  EXPECT_EQ(tl.count(trace::Phase::kPrefill), 1u);
  std::size_t decode_token_sum = 0;
  for (const auto& e : tl.events()) {
    if (e.phase != trace::Phase::kDecode) continue;
    EXPECT_GT(e.batch, 0u);  // never a zero-active decode event
    decode_token_sum += e.batch;
  }
  EXPECT_EQ(decode_token_sum, r.output_tokens);  // trace conserves tokens
}

TEST(ParallelDecodeTest, TimelineConservesTokensUnderPool) {
  const auto cfg = decode_test_config();
  auto master = MasterWeights::init_random(cfg, 53);
  Model model(master, DType::kF32, KVStorage::kF32);
  ThreadPool pool(4);
  trace::ExecutionTimeline tl;
  Model::GenerateOptions options;
  options.pool = &pool;
  options.timeline = &tl;
  const auto r = model.generate(five_prompts(), 12, options);

  EXPECT_EQ(tl.count(trace::Phase::kDecode), 12u);
  std::size_t decode_token_sum = 0;
  for (const auto& e : tl.events()) {
    if (e.phase == trace::Phase::kDecode) decode_token_sum += e.batch;
  }
  EXPECT_EQ(decode_token_sum, r.output_tokens);
}

}  // namespace
}  // namespace orinsim
