// BlockAllocator: the ref-counted fixed pool behind the paged KV cache.
// Determinism (LIFO handout order), all-or-nothing reservation, ref-count
// sharing for copy-on-write forks, and exhaustion behaviour are all pinned
// here — the serving engine's preemption logic builds directly on them.
#include "model/block_allocator.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/error.h"

namespace orinsim {
namespace {

TEST(BlockAllocatorTest, HandsOutBlockZeroFirst) {
  BlockAllocator a(4, 128);
  EXPECT_EQ(a.total_blocks(), 4u);
  EXPECT_EQ(a.block_bytes(), 128u);
  EXPECT_EQ(a.free_blocks(), 4u);
  // Ascending handout keeps a single growing sequence physically contiguous
  // (the zero-copy key_rows fast path depends on this).
  EXPECT_EQ(a.alloc(), 0u);
  EXPECT_EQ(a.alloc(), 1u);
  EXPECT_EQ(a.alloc(), 2u);
  EXPECT_EQ(a.blocks_in_use(), 3u);
  EXPECT_EQ(a.free_blocks(), 1u);
}

TEST(BlockAllocatorTest, ExhaustionReturnsSentinelNotThrow) {
  BlockAllocator a(2, 64);
  EXPECT_NE(a.alloc(), BlockAllocator::kNoBlock);
  EXPECT_NE(a.alloc(), BlockAllocator::kNoBlock);
  EXPECT_EQ(a.alloc(), BlockAllocator::kNoBlock);
  EXPECT_EQ(a.blocks_in_use(), 2u);
}

TEST(BlockAllocatorTest, FreeListIsLifo) {
  BlockAllocator a(3, 64);
  const std::size_t b0 = a.alloc();
  const std::size_t b1 = a.alloc();
  (void)b0;
  a.release(b1);
  // The most recently freed block is reused first.
  EXPECT_EQ(a.alloc(), b1);
}

TEST(BlockAllocatorTest, AllocManyIsAllOrNothing) {
  BlockAllocator a(4, 64);
  std::vector<std::size_t> held;
  ASSERT_TRUE(a.alloc_many(3, held));
  EXPECT_EQ(held.size(), 3u);
  EXPECT_EQ(a.free_blocks(), 1u);
  // Asking for more than remains must not strand partial progress.
  EXPECT_FALSE(a.alloc_many(2, held));
  EXPECT_EQ(held.size(), 3u);
  EXPECT_EQ(a.free_blocks(), 1u);
  EXPECT_TRUE(a.can_alloc(1));
  EXPECT_FALSE(a.can_alloc(2));
  ASSERT_TRUE(a.alloc_many(1, held));
  EXPECT_EQ(held.size(), 4u);
  EXPECT_EQ(a.free_blocks(), 0u);
}

TEST(BlockAllocatorTest, RetainReleaseRefCounting) {
  BlockAllocator a(2, 64);
  const std::size_t b = a.alloc();
  EXPECT_EQ(a.ref_count(b), 1u);
  a.retain(b);  // a forked sequence now shares the block
  EXPECT_EQ(a.ref_count(b), 2u);
  a.release(b);
  EXPECT_EQ(a.ref_count(b), 1u);
  EXPECT_EQ(a.blocks_in_use(), 1u);  // still held by one owner
  a.release(b);
  EXPECT_EQ(a.ref_count(b), 0u);
  EXPECT_EQ(a.blocks_in_use(), 0u);
  EXPECT_EQ(a.free_blocks(), 2u);
}

TEST(BlockAllocatorTest, RejectsBookkeepingOnFreeBlocks) {
  BlockAllocator a(2, 64);
  const std::size_t b = a.alloc();
  a.release(b);
  EXPECT_THROW(a.release(b), ContractViolation);
  EXPECT_THROW(a.retain(b), ContractViolation);
}

TEST(BlockAllocatorTest, CachedBlockAccounting) {
  BlockAllocator a(4, 64);
  const std::size_t b0 = a.alloc();
  const std::size_t b1 = a.alloc();
  EXPECT_EQ(a.cached_blocks(), 0u);
  a.set_cached(b0, true);
  a.set_cached(b1, true);
  EXPECT_EQ(a.cached_blocks(), 2u);
  EXPECT_TRUE(a.is_cached(b0));
  // Idempotent: re-flagging does not double count.
  a.set_cached(b0, true);
  EXPECT_EQ(a.cached_blocks(), 2u);
  a.set_cached(b0, false);
  EXPECT_EQ(a.cached_blocks(), 1u);
  EXPECT_FALSE(a.is_cached(b0));
  // Free blocks cannot carry the flag.
  a.release(b0);
  EXPECT_THROW(a.set_cached(b0, true), ContractViolation);
}

TEST(BlockAllocatorTest, ReleaseOfStillCachedBlockIsCaught) {
  BlockAllocator a(2, 64);
  const std::size_t b = a.alloc();
  a.set_cached(b, true);
  // Dropping the last reference while the prefix cache still claims the
  // block would leak its accounting: the eviction path must clear the flag
  // before releasing (audit guard for satellite eviction accounting).
  EXPECT_THROW(a.release(b), ContractViolation);
  a.set_cached(b, false);
  a.release(b);
  EXPECT_EQ(a.free_blocks(), 2u);
}

TEST(BlockAllocatorTest, DoubleReleaseGuard) {
  BlockAllocator a(2, 64);
  const std::size_t b = a.alloc();
  a.retain(b);
  a.release(b);
  a.release(b);
  // The block is free now; any further release is a double release.
  EXPECT_THROW(a.release(b), ContractViolation);
  EXPECT_EQ(a.free_blocks(), 2u);
}

TEST(BlockAllocatorTest, BytesAndPeakTracking) {
  BlockAllocator a(4, 256);
  std::vector<std::size_t> held;
  ASSERT_TRUE(a.alloc_many(3, held));
  EXPECT_EQ(a.bytes_in_use(), 3u * 256u);
  EXPECT_EQ(a.peak_blocks_in_use(), 3u);
  for (std::size_t b : held) a.release(b);
  EXPECT_EQ(a.bytes_in_use(), 0u);
  // Peak is a high-water mark: releasing does not lower it.
  EXPECT_EQ(a.peak_blocks_in_use(), 3u);
  EXPECT_EQ(a.peak_bytes(), 3u * 256u);
}

}  // namespace
}  // namespace orinsim
