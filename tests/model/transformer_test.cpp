#include "model/transformer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/kernels.h"

namespace orinsim {
namespace {

TransformerConfig test_config(BlockStyle style = BlockStyle::kPreNormSwiGLU) {
  TransformerConfig c;
  c.name = "test";
  c.vocab = 97;
  c.d_model = 32;
  c.n_layers = 2;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.d_ff = 64;
  c.max_seq = 64;
  c.style = style;
  if (style == BlockStyle::kParallelGELU) c.n_kv_heads = 4;
  c.validate();
  return c;
}

class TransformerStyleTest : public ::testing::TestWithParam<BlockStyle> {};

TEST_P(TransformerStyleTest, ForwardProducesFiniteBoundedHidden) {
  const auto cfg = test_config(GetParam());
  auto master = MasterWeights::init_random(cfg, 7);
  Model model(master, DType::kF32);
  KVCache cache(cfg, 1, 16);
  std::vector<float> hidden(cfg.d_model);
  for (int t = 0; t < 16; ++t) {
    model.forward_token(static_cast<TokenId>(t % cfg.vocab), 0, cache, hidden);
    for (float v : hidden) {
      EXPECT_TRUE(std::isfinite(v));
      EXPECT_LT(std::fabs(v), 100.0f);
    }
  }
  EXPECT_EQ(cache.seq_len(0), 16u);
}

TEST_P(TransformerStyleTest, DeterministicAcrossInstances) {
  const auto cfg = test_config(GetParam());
  auto master = MasterWeights::init_random(cfg, 13);
  Model a(master, DType::kF32), b(master, DType::kF32);
  KVCache ca(cfg, 1, 8), cb(cfg, 1, 8);
  std::vector<float> ha(cfg.d_model), hb(cfg.d_model);
  for (TokenId t : {3u, 14u, 15u, 9u}) {
    a.forward_token(t, 0, ca, ha);
    b.forward_token(t, 0, cb, hb);
  }
  for (std::size_t i = 0; i < ha.size(); ++i) EXPECT_EQ(ha[i], hb[i]);
}

INSTANTIATE_TEST_SUITE_P(Styles, TransformerStyleTest,
                         ::testing::Values(BlockStyle::kPreNormSwiGLU,
                                           BlockStyle::kParallelGELU),
                         [](const auto& info) {
                           return info.param == BlockStyle::kPreNormSwiGLU ? "SwiGLU"
                                                                           : "ParallelGELU";
                         });

TEST(TransformerTest, BatchSequencesIsolated) {
  // The same prompt in different batch slots must produce identical hidden
  // states (no cross-sequence leakage through the cache).
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 21);
  Model model(master, DType::kF32);
  KVCache cache(cfg, 2, 8);
  std::vector<float> h0(cfg.d_model), h1(cfg.d_model);
  const std::vector<TokenId> prompt = {5, 9, 2};
  // Interleave the two sequences.
  for (TokenId t : prompt) {
    model.forward_token(t, 0, cache, h0);
    model.forward_token(t, 1, cache, h1);
  }
  for (std::size_t i = 0; i < h0.size(); ++i) EXPECT_EQ(h0[i], h1[i]);
}

TEST(TransformerTest, PrefillEqualsStepByStep) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 31);
  Model model(master, DType::kF32);
  const std::vector<TokenId> prompt = {1, 2, 3, 4, 5};

  KVCache c1(cfg, 1, 8);
  std::vector<float> via_prefill(cfg.d_model);
  model.prefill(prompt, 0, c1, via_prefill);

  KVCache c2(cfg, 1, 8);
  std::vector<float> via_steps(cfg.d_model);
  for (TokenId t : prompt) model.forward_token(t, 0, c2, via_steps);

  for (std::size_t i = 0; i < via_prefill.size(); ++i) {
    EXPECT_EQ(via_prefill[i], via_steps[i]);
  }
}

TEST(TransformerTest, LogitsShapeAndFiniteness) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 41);
  Model model(master, DType::kF32);
  KVCache cache(cfg, 1, 4);
  std::vector<float> hidden(cfg.d_model), logits(cfg.vocab);
  model.forward_token(7, 0, cache, hidden);
  model.logits_from_hidden(hidden, logits);
  for (float v : logits) EXPECT_TRUE(std::isfinite(v));
}

TEST(TransformerTest, GenerateShapesAndCounts) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 51);
  Model model(master, DType::kF32);
  const std::vector<std::vector<TokenId>> prompts = {{1, 2, 3}, {4, 5}};
  const auto result = model.generate(prompts, 6);
  ASSERT_EQ(result.outputs.size(), 2u);
  EXPECT_EQ(result.outputs[0].size(), 6u);
  EXPECT_EQ(result.outputs[1].size(), 6u);
  EXPECT_EQ(result.input_tokens, 5u);
  EXPECT_EQ(result.output_tokens, 12u);
  for (const auto& seq : result.outputs) {
    for (TokenId t : seq) EXPECT_LT(t, cfg.vocab);
  }
}

TEST(TransformerTest, GenerateGreedyIsDeterministic) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 61);
  Model m1(master, DType::kF32), m2(master, DType::kF32);
  const std::vector<std::vector<TokenId>> prompts = {{8, 9, 10}};
  const auto r1 = m1.generate(prompts, 8);
  const auto r2 = m2.generate(prompts, 8);
  EXPECT_EQ(r1.outputs[0], r2.outputs[0]);
}

TEST(TransformerTest, QuantizedModelsTrackFp32) {
  // Hidden states under FP16/INT8 stay close to FP32; INT4 drifts more but
  // remains finite. (The quantization-vs-accuracy ordering is asserted at
  // the perplexity level in eval tests.)
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 71);
  Model f32(master, DType::kF32);
  Model f16(master, DType::kF16);
  Model i8(master, DType::kI8);
  Model i4(master, DType::kI4);
  const std::vector<TokenId> prompt = {2, 4, 6, 8};

  auto hidden_for = [&](Model& m) {
    KVCache cache(cfg, 1, 8);
    std::vector<float> h(cfg.d_model);
    for (TokenId t : prompt) m.forward_token(t, 0, cache, h);
    return h;
  };
  const auto h32 = hidden_for(f32);
  const auto h16 = hidden_for(f16);
  const auto h8 = hidden_for(i8);
  const auto h4 = hidden_for(i4);

  auto l2 = [&](const std::vector<float>& a, const std::vector<float>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc += (a[i] - b[i]) * static_cast<double>(a[i] - b[i]);
    }
    return std::sqrt(acc);
  };
  EXPECT_LT(l2(h32, h16), 0.2);
  EXPECT_LT(l2(h32, h8), 1.5);
  for (float v : h4) EXPECT_TRUE(std::isfinite(v));
  EXPECT_LE(l2(h32, h16), l2(h32, h8) + 1e-6);
}

TEST(TransformerTest, WeightBytesOrdering) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 81);
  const Model f32(master, DType::kF32);
  const Model f16(master, DType::kF16);
  const Model i8(master, DType::kI8);
  const Model i4(master, DType::kI4);
  EXPECT_GT(f32.weight_bytes(), f16.weight_bytes());
  EXPECT_GT(f16.weight_bytes(), i8.weight_bytes());
  EXPECT_GT(i8.weight_bytes(), i4.weight_bytes());
}

TEST(TransformerTest, SequenceNllPositiveAndPerTokenReasonable) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 91);
  Model model(master, DType::kF32);
  std::vector<TokenId> tokens;
  for (int i = 0; i < 20; ++i) tokens.push_back(static_cast<TokenId>((i * 7) % cfg.vocab));
  const auto r = model.sequence_nll(tokens, 1);
  EXPECT_EQ(r.predicted, tokens.size() - 1);
  EXPECT_GT(r.total_nll, 0.0);
  // Untrained model: per-token NLL should be near ln(vocab).
  const double per_token = r.total_nll / static_cast<double>(r.predicted);
  EXPECT_NEAR(per_token, std::log(static_cast<double>(cfg.vocab)), 2.0);
}

TEST(TransformerTest, SequenceNllPredictFromSkipsContext) {
  const auto cfg = test_config();
  auto master = MasterWeights::init_random(cfg, 101);
  Model model(master, DType::kF32);
  std::vector<TokenId> tokens = {1, 2, 3, 4, 5, 6};
  const auto full = model.sequence_nll(tokens, 1);
  const auto tail = model.sequence_nll(tokens, 4);
  EXPECT_EQ(tail.predicted, 2u);
  EXPECT_LT(tail.total_nll, full.total_nll);
}

TEST(TransformerTest, ConfigValidation) {
  TransformerConfig c = test_config();
  c.n_kv_heads = 3;  // does not divide n_heads=4
  EXPECT_THROW(c.validate(), ContractViolation);
  c = test_config();
  c.d_model = 33;
  EXPECT_THROW(c.validate(), ContractViolation);
}

TEST(TransformerTest, NanoConfigsValid) {
  for (const char* family : {"phi2", "llama3", "mistral", "deepseek-qwen"}) {
    const auto cfg = make_nano_config(family, 500);
    EXPECT_GT(cfg.block_param_count(), 0u);
    EXPECT_GT(cfg.total_param_count(), cfg.block_param_count());
  }
  EXPECT_THROW(make_nano_config("gpt5", 500), ContractViolation);
}

}  // namespace
}  // namespace orinsim
