#include "tokenizer/tokenizer.h"

#include <gtest/gtest.h>

namespace orinsim {
namespace {

TEST(TokenizerTest, TrainBuildsFrequencyRankedVocab) {
  const Tokenizer t = Tokenizer::train("the cat and the dog and the bird", 10);
  // "the" (3) ranks before "and" (2) before singletons.
  EXPECT_EQ(t.token_text(Tokenizer::kWordBase), "the");
  EXPECT_EQ(t.token_text(Tokenizer::kWordBase + 1), "and");
  EXPECT_EQ(t.word_count(), 5u);
}

TEST(TokenizerTest, EncodeDecodeRoundTrip) {
  const Tokenizer t = Tokenizer::train("alpha beta gamma delta", 10);
  const auto ids = t.encode("alpha gamma beta");
  EXPECT_EQ(t.decode(ids), "alpha gamma beta");
}

TEST(TokenizerTest, ByteFallbackForUnknownWords) {
  const Tokenizer t = Tokenizer::train("known words only", 10);
  const auto ids = t.encode("xyz");
  ASSERT_EQ(ids.size(), 3u);  // three byte tokens
  for (TokenId id : ids) {
    EXPECT_GE(id, Tokenizer::kByteBase);
    EXPECT_LT(id, Tokenizer::kWordBase);
  }
  EXPECT_EQ(t.decode(ids), "xyz");
}

TEST(TokenizerTest, PunctuationSplitsOff) {
  const auto pieces = Tokenizer::pretokenize("Hello, world! (ok)");
  const std::vector<std::string> expected = {"Hello", ",", "world", "!", "(", "ok", ")"};
  EXPECT_EQ(pieces, expected);
}

TEST(TokenizerTest, BosPrepended) {
  const Tokenizer t = Tokenizer::train("a b", 4);
  const auto ids = t.encode("a", /*add_bos=*/true);
  ASSERT_GE(ids.size(), 2u);
  EXPECT_EQ(ids[0], Tokenizer::kBos);
}

TEST(TokenizerTest, VocabCapRespected) {
  const Tokenizer t = Tokenizer::train("a b c d e f g h", 3);
  EXPECT_EQ(t.word_count(), 3u);
  EXPECT_EQ(t.vocab_size(), Tokenizer::kWordBase + 3);
}

TEST(TokenizerTest, SpecialTokenTexts) {
  const Tokenizer t = Tokenizer::train("x", 1);
  EXPECT_EQ(t.token_text(Tokenizer::kUnk), "<unk>");
  EXPECT_EQ(t.token_text(Tokenizer::kBos), "<bos>");
  EXPECT_EQ(t.token_text(Tokenizer::kEos), "<eos>");
}

TEST(TokenizerTest, DeterministicTieBreak) {
  // Equal-frequency words rank lexicographically, so training twice gives
  // identical vocabularies.
  const Tokenizer a = Tokenizer::train("zeta alpha zeta alpha", 4);
  const Tokenizer b = Tokenizer::train("zeta alpha zeta alpha", 4);
  EXPECT_EQ(a.token_text(Tokenizer::kWordBase), b.token_text(Tokenizer::kWordBase));
  EXPECT_EQ(a.token_text(Tokenizer::kWordBase), "alpha");
}

TEST(TokenizerTest, DecodeSkipsSpecials) {
  const Tokenizer t = Tokenizer::train("w", 1);
  EXPECT_EQ(t.decode({Tokenizer::kBos, Tokenizer::kWordBase, Tokenizer::kEos}), "w");
}

}  // namespace
}  // namespace orinsim
