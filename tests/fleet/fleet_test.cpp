// Fleet router: lockstep multi-device dispatch under pluggable policies.
// The acceptance pins: a 16-device heterogeneous fleet over a diurnal trace
// completes deterministically (same seed -> identical FleetResult), energy
// attribution conserves every device's timeline total to 1e-9, and each
// policy routes by the signal it claims to read.
#include "fleet/router.h"

#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/error.h"

namespace orinsim::fleet {
namespace {

SimFleetConfig small_fleet(RoutePolicy policy, std::size_t devices = 3,
                           std::size_t requests = 24) {
  SimFleetConfig config;
  for (std::size_t i = 0; i < devices; ++i) {
    serving::ServingDevice::SimConfig dc;
    dc.name = "orin#" + std::to_string(i);
    dc.max_concurrency = 2;
    config.devices.push_back(dc);
  }
  config.arrivals.kind = workload::ArrivalKind::kPoisson;
  config.arrivals.rate_rps = 4.0;
  config.arrivals.total_requests = requests;
  config.options.policy = policy;
  return config;
}

// The acceptance-criteria fleet: 16 heterogeneous devices over a diurnal day.
SimFleetConfig hetero_16(std::uint64_t seed) {
  SimFleetConfig config;
  auto add = [&](const std::string& key, const std::string& model,
                 std::size_t lanes, double cap_w, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      serving::ServingDevice::SimConfig dc;
      dc.name = key + "#" + std::to_string(config.devices.size());
      dc.device_key = key;
      dc.model_key = model;
      dc.dtype = DType::kI8;
      dc.max_concurrency = lanes;
      dc.governor.power_cap_w = cap_w;
      config.devices.push_back(dc);
    }
  };
  add("orin-agx-64", "llama3", 8, 40.0, 4);
  add("orin-agx-32", "llama3", 8, 40.0, 2);
  add("xavier-agx-32", "phi2", 8, 25.0, 2);
  add("orin-nx-16", "phi2", 4, 20.0, 4);
  add("orin-nano-8", "phi2", 4, 15.0, 4);
  config.arrivals.kind = workload::ArrivalKind::kDiurnal;
  config.arrivals.rate_rps = 8.0;
  config.arrivals.total_requests = 96;
  config.arrivals.seed = seed;
  return config;
}

TEST(FleetRouterTest, PolicyNamesRoundTrip) {
  for (RoutePolicy p : all_route_policies()) {
    EXPECT_EQ(route_policy_by_name(route_policy_name(p)), p);
  }
  EXPECT_THROW(route_policy_by_name("least_cost"), ContractViolation);
}

TEST(FleetRouterTest, EveryRequestCompletesOnExactlyOneDevice) {
  const SimFleetConfig config = small_fleet(RoutePolicy::kRoundRobin);
  const FleetResult r = run_sim_fleet(config, RoutePolicy::kRoundRobin);
  ASSERT_EQ(r.device_of_request.size(), 24u);
  EXPECT_EQ(r.completed, 24u);
  std::size_t submitted = 0;
  for (const serving::EngineResult& d : r.devices) submitted += d.requests.size();
  EXPECT_EQ(submitted, 24u);
}

TEST(FleetRouterTest, RoundRobinCyclesDevices) {
  const FleetResult r =
      run_sim_fleet(small_fleet(RoutePolicy::kRoundRobin), RoutePolicy::kRoundRobin);
  for (std::size_t i = 0; i < r.device_of_request.size(); ++i) {
    EXPECT_EQ(r.device_of_request[i], i % 3);
  }
}

TEST(FleetRouterTest, ShortestQueueAvoidsTheLoadedDevice) {
  // Two devices, two simultaneous arrivals: the second must not join the
  // first's queue.
  std::vector<std::unique_ptr<serving::ServingDevice>> devices;
  for (int i = 0; i < 2; ++i) {
    serving::ServingDevice::SimConfig dc;
    dc.max_concurrency = 1;
    devices.push_back(std::make_unique<serving::ServingDevice>(dc));
  }
  RouterOptions options;
  options.policy = RoutePolicy::kShortestQueue;
  FleetRouter router(std::move(devices), options);
  std::vector<serving::Request> stream(2);
  for (std::size_t i = 0; i < 2; ++i) {
    stream[i].id = i;
    stream[i].arrival_s = 0.0;
    stream[i].prompt_tokens = 32;
    stream[i].max_new_tokens = 8;
  }
  const FleetResult r = router.run(std::move(stream));
  EXPECT_EQ(r.device_of_request[0], 0u);
  EXPECT_EQ(r.device_of_request[1], 1u);
}

TEST(FleetRouterTest, PrefixAffinityKeepsATenantOnOneDevice) {
  SimFleetConfig config = small_fleet(RoutePolicy::kPrefixAffinity, 4, 48);
  config.tenants = 6;
  config.options.affinity_tokens = 16;
  const std::vector<serving::Request> requests = sim_fleet_requests(config);
  const FleetResult r = run_sim_fleet(config, RoutePolicy::kPrefixAffinity);
  // Every request of one tenant (identified by its shared prompt prefix)
  // must land on the same device, regardless of load.
  std::map<TokenId, std::size_t> tenant_device;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const TokenId tenant = requests[i].prompt.front();
    const auto [it, fresh] = tenant_device.emplace(tenant, r.device_of_request[i]);
    EXPECT_EQ(it->second, r.device_of_request[i]) << "request " << i;
  }
  // With 6 tenants over 4 devices the fleet must still be shared (rendezvous
  // hashing spreads tenants), not collapsed onto one box.
  std::set<std::size_t> used(r.device_of_request.begin(), r.device_of_request.end());
  EXPECT_GT(used.size(), 1u);
}

TEST(FleetRouterTest, PowerHeadroomPrefersTheUncappedDevice) {
  // Device 0 carries a tight cap (little headroom once warm), device 1 is
  // uncapped (infinite headroom): after the first request warms device 0,
  // traffic must prefer device 1.
  std::vector<std::unique_ptr<serving::ServingDevice>> devices;
  for (int i = 0; i < 2; ++i) {
    serving::ServingDevice::SimConfig dc;
    dc.max_concurrency = 4;
    if (i == 0) dc.governor.power_cap_w = 30.0;
    devices.push_back(std::make_unique<serving::ServingDevice>(dc));
  }
  RouterOptions options;
  options.policy = RoutePolicy::kPowerHeadroom;
  FleetRouter router(std::move(devices), options);
  std::vector<serving::Request> stream(4);
  for (std::size_t i = 0; i < 4; ++i) {
    stream[i].id = i;
    stream[i].arrival_s = static_cast<double>(i) * 0.5;
    stream[i].prompt_tokens = 32;
    stream[i].max_new_tokens = 16;
  }
  const FleetResult r = router.run(std::move(stream));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(r.device_of_request[i], 1u) << "request " << i;
  }
}

TEST(FleetRouterTest, SixteenDeviceDiurnalFleetIsDeterministic) {
  for (RoutePolicy policy : all_route_policies()) {
    const FleetResult a = run_sim_fleet(hetero_16(42), policy);
    const FleetResult b = run_sim_fleet(hetero_16(42), policy);
    EXPECT_EQ(a.device_of_request, b.device_of_request) << route_policy_name(policy);
    EXPECT_EQ(a.makespan_s, b.makespan_s) << route_policy_name(policy);
    EXPECT_EQ(a.energy_j, b.energy_j) << route_policy_name(policy);
    EXPECT_EQ(a.goodput_rps, b.goodput_rps) << route_policy_name(policy);
    EXPECT_EQ(a.ttft.p99_s, b.ttft.p99_s) << route_policy_name(policy);
    EXPECT_EQ(a.governor_step_downs, b.governor_step_downs)
        << route_policy_name(policy);
    EXPECT_EQ(a.completed, 96u) << route_policy_name(policy);
  }
}

TEST(FleetRouterTest, EnergyAttributionConservesPerDeviceTimelineTotals) {
  const FleetResult r = run_sim_fleet(hetero_16(7), RoutePolicy::kShortestQueue);
  double fleet_total = 0.0;
  for (std::size_t d = 0; d < r.devices.size(); ++d) {
    const serving::EngineResult& dev = r.devices[d];
    double attributed = 0.0;
    for (const serving::RequestMetrics& m : dev.request_metrics) {
      attributed += m.energy_j;
    }
    const double total = dev.timeline.total_energy_j();
    EXPECT_NEAR(attributed, total, 1e-9 * std::max(1.0, std::fabs(total)))
        << r.device_names[d];
    fleet_total += total;
  }
  EXPECT_NEAR(r.energy_j, fleet_total, 1e-9 * std::max(1.0, fleet_total));
  EXPECT_GT(r.energy_j, 0.0);
}

TEST(FleetRouterTest, DifferentSeedsChangeTheSchedule) {
  const FleetResult a = run_sim_fleet(hetero_16(1), RoutePolicy::kShortestQueue);
  const FleetResult b = run_sim_fleet(hetero_16(2), RoutePolicy::kShortestQueue);
  EXPECT_NE(a.makespan_s, b.makespan_s);
}

TEST(FleetRouterTest, TtftAndTpotReadOffTheEventStream) {
  const FleetResult r =
      run_sim_fleet(small_fleet(RoutePolicy::kShortestQueue), RoutePolicy::kShortestQueue);
  ASSERT_GT(r.ttft.count, 0u);
  ASSERT_GT(r.tpot.count, 0u);
  EXPECT_GT(r.ttft.p50_s, 0.0);
  EXPECT_LE(r.ttft.p50_s, r.ttft.p99_s);
  EXPECT_GT(r.tpot.p50_s, 0.0);
  EXPECT_LE(r.tpot.p50_s, r.tpot.p99_s);
  // TTFT can never exceed full latency; TPOT never exceeds a decode's span.
  EXPECT_LE(r.ttft.p99_s, r.latency.p99_s);
}

TEST(FleetRouterTest, SloSplitsGoodputFromCompletions) {
  SimFleetConfig config = small_fleet(RoutePolicy::kRoundRobin);
  config.options.slo_s = 1e-6;  // nothing can meet a microsecond SLO
  const FleetResult r = run_sim_fleet(config, RoutePolicy::kRoundRobin);
  EXPECT_EQ(r.completed, 24u);
  EXPECT_EQ(r.slo_violations, 24u);
  EXPECT_EQ(r.goodput_rps, 0.0);
}

TEST(FleetRouterTest, MergedChromeTraceCarriesOneProcessPerDevice) {
  const FleetResult r =
      run_sim_fleet(small_fleet(RoutePolicy::kRoundRobin), RoutePolicy::kRoundRobin);
  const std::string json = r.to_chrome_trace_json();
  for (std::size_t d = 0; d < r.devices.size(); ++d) {
    EXPECT_NE(json.find("\"pid\":" + std::to_string(d)), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"" + r.device_names[d] + "\""), std::string::npos);
  }
}

TEST(FleetRouterTest, ArrivalsOutOfOrderRejected) {
  std::vector<std::unique_ptr<serving::ServingDevice>> devices;
  devices.push_back(
      std::make_unique<serving::ServingDevice>(serving::ServingDevice::SimConfig{}));
  FleetRouter router(std::move(devices), RouterOptions{});
  std::vector<serving::Request> stream(2);
  stream[0].arrival_s = 1.0;
  stream[0].prompt_tokens = 8;
  stream[0].max_new_tokens = 4;
  stream[1].arrival_s = 0.5;
  stream[1].prompt_tokens = 8;
  stream[1].max_new_tokens = 4;
  EXPECT_THROW(router.run(std::move(stream)), ContractViolation);
}

}  // namespace
}  // namespace orinsim::fleet
