// Property sweeps over the simulator's whole configuration space:
// (model x precision x batch x sequence x power mode). These assert the
// invariants any measurement of a real device would satisfy, so a model
// regression that breaks physics fails hundreds of combinations at once.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "sim/inference_sim.h"

namespace orinsim::sim {
namespace {

using SweepParam = std::tuple<std::string /*model*/, DType, std::size_t /*batch*/>;

class SimSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static SimRequest request_for(const SweepParam& p) {
    SimRequest rq;
    rq.model_key = std::get<0>(p);
    rq.dtype = std::get<1>(p);
    rq.batch = std::get<2>(p);
    rq.noise_sigma = 0.0;
    return rq;
  }
  InferenceSim sim_;
};

TEST_P(SimSweepTest, PhysicalInvariants) {
  const SimRequest rq = request_for(GetParam());
  const SimResult r = sim_.run(rq);
  if (r.oom) {
    // OOM must be explainable by the memory breakdown.
    EXPECT_GT(r.memory.total_gb(), sim_.memory_model().usable_gb());
    return;
  }
  // Throughput identity.
  const double tokens = static_cast<double>(rq.batch) * 96.0;
  EXPECT_NEAR(r.throughput_tps, tokens / r.latency_s, 1e-6);
  // Latency decomposes into overhead + prefill + decode.
  EXPECT_GT(r.latency_s, r.prefill_s);
  // Power bounded by the board envelope and above idle.
  EXPECT_GE(r.median_power_w, sim_.power_model().params().idle_w * 0.9);
  EXPECT_LE(r.median_power_w, sim_.power_model().params().board_cap_w + 1e-9);
  // Energy consistent with median power x latency within sampling error.
  EXPECT_NEAR(r.energy_j, r.median_power_w * r.latency_s, 0.30 * r.energy_j);
  // Memory components all non-negative.
  EXPECT_GE(r.memory.kv_gb, 0.0);
  EXPECT_GE(r.memory.attn_quad_gb, 0.0);
  EXPECT_GE(r.memory.incremental_gb(), 0.0);
}

TEST_P(SimSweepTest, BatchMonotonicity) {
  // Doubling the batch never reduces latency or memory, never reduces
  // throughput (no model in the sweep is past its saturation point by 2x).
  SimRequest rq = request_for(GetParam());
  const SimResult r1 = sim_.run(rq);
  rq.batch *= 2;
  const SimResult r2 = sim_.run(rq);
  if (r1.oom) {
    EXPECT_TRUE(r2.oom);
    return;
  }
  if (r2.oom) return;  // larger batch may OOM; that is fine
  EXPECT_GE(r2.latency_s, r1.latency_s * 0.999);
  EXPECT_GE(r2.memory.total_gb(), r1.memory.total_gb());
  EXPECT_GE(r2.throughput_tps, r1.throughput_tps * 0.999);
}

TEST_P(SimSweepTest, PowerModeLatencyNeverBeatsMaxN) {
  SimRequest rq = request_for(GetParam());
  const SimResult maxn = sim_.run(rq);
  if (maxn.oom) return;
  for (const auto& pm : all_power_modes()) {
    rq.power_mode = pm;
    const SimResult r = sim_.run(rq);
    ASSERT_FALSE(r.oom) << pm.name;  // power modes do not change memory
    EXPECT_GE(r.latency_s, maxn.latency_s * 0.999) << pm.name;
    EXPECT_LE(r.median_power_w, maxn.median_power_w * 1.02) << pm.name;
  }
}

std::string sweep_name(const ::testing::TestParamInfo<SweepParam>& info) {
  std::string model = std::get<0>(info.param);
  for (auto& c : model) {
    if (c == '-') c = '_';
  }
  return model + "_" + dtype_name(std::get<1>(info.param)) + "_bs" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimSweepTest,
    ::testing::Combine(::testing::Values("phi2", "llama3", "mistral", "deepseek-qwen"),
                       ::testing::Values(DType::kF16, DType::kI8, DType::kI4),
                       ::testing::Values(std::size_t{1}, std::size_t{8},
                                         std::size_t{32})),
    sweep_name);

// Sequence-length properties at fixed batch.
class SeqSweepPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(SeqSweepPropertyTest, LongerSequencesSlowerAndHungrier) {
  const auto& [model, total] = GetParam();
  InferenceSim sim;
  const ModelSpec& spec = model_by_key(model);
  auto run_at = [&](std::size_t t) {
    SimRequest rq;
    rq.model_key = model;
    rq.dtype = spec.default_dtype;
    rq.in_tokens = t / 4;
    rq.out_tokens = t - t / 4;
    rq.noise_sigma = 0.0;
    return sim.run(rq);
  };
  const SimResult shorter = run_at(total);
  const SimResult longer = run_at(total * 2);
  if (shorter.oom) {
    EXPECT_TRUE(longer.oom);
    return;
  }
  EXPECT_GT(longer.memory.total_gb(), shorter.memory.total_gb());
  if (longer.oom) return;
  EXPECT_GT(longer.latency_s, shorter.latency_s);
  EXPECT_LT(longer.throughput_tps, shorter.throughput_tps);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeqSweepPropertyTest,
    ::testing::Combine(::testing::Values("phi2", "llama3", "mistral", "deepseek-qwen"),
                       ::testing::Values(std::size_t{128}, std::size_t{256},
                                         std::size_t{512})),
    [](const auto& info) {
      std::string model = std::get<0>(info.param);
      for (auto& c : model) {
        if (c == '-') c = '_';
      }
      return model + "_sl" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace orinsim::sim
