#include "sim/calibration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/paper_reference.h"

namespace orinsim::sim {
namespace {

TEST(CalibrationTest, AnchorsReproducedTightly) {
  // bs=1 and the sequence anchor are solved exactly; bs=128 can clamp at the
  // efficiency ceiling for DeepSeek-Qwen (whose appendix rows are visibly
  // noisy: its bs=16 latency exceeds its bs=32 latency).
  for (const auto& r : calibration_residuals()) {
    EXPECT_LT(std::fabs(r.bs1_rel_error), 0.01) << r.model_key;
    EXPECT_LT(std::fabs(r.seq_rel_error), 0.01) << r.model_key;
    if (r.model_key != "deepseek-qwen") {
      EXPECT_LT(std::fabs(r.bs128_rel_error), 0.10) << r.model_key;
    } else {
      EXPECT_LT(std::fabs(r.bs128_rel_error), 0.50) << r.model_key;
    }
  }
}

TEST(CalibrationTest, EfficienciesPhysicallyPlausible) {
  for (const auto& m : model_catalog()) {
    EXPECT_GT(m.bw_efficiency, 0.05) << m.key;
    EXPECT_LE(m.bw_efficiency, 0.95) << m.key;
    EXPECT_GT(m.compute_efficiency, 0.05) << m.key;
    EXPECT_LE(m.compute_efficiency, 0.95) << m.key;
    EXPECT_GE(m.attn_kv_overhead, 0.0) << m.key;
    EXPECT_LE(m.attn_kv_overhead, 120.0) << m.key;
    EXPECT_GE(m.quant_slowdown_i8, 1.0) << m.key;
    EXPECT_GE(m.quant_slowdown_i4, 1.0) << m.key;
  }
}

TEST(CalibrationTest, SmallModelsLessBandwidthEfficient) {
  // Phi-2's small matvecs cannot saturate DRAM the way Llama/Mistral do —
  // this is what the bs=1 anchors imply and a core paper observation.
  EXPECT_LT(model_by_key("phi2").bw_efficiency, model_by_key("llama3").bw_efficiency);
  EXPECT_LT(model_by_key("phi2").bw_efficiency, model_by_key("mistral").bw_efficiency);
}

TEST(CalibrationTest, DeepseekInt8InefficiencyFoldedIn) {
  // DeepSeek's anchors are INT8 runs; its slowdown slot must stay 1.0 and
  // the inefficiency must appear as a low fitted bandwidth efficiency.
  const ModelSpec& deepq = model_by_key("deepseek-qwen");
  EXPECT_DOUBLE_EQ(deepq.quant_slowdown_i8, 1.0);
  EXPECT_LT(deepq.bw_efficiency, 0.5);
}

TEST(CalibrationTest, QuantRatioTargetsReproduced) {
  // End-to-end INT8/FP16 latency ratio at bs=32, sl=96 must match the §3.3
  // claims: +62% for Phi-2/Llama, ~+2% for Mistral.
  const PowerMode maxn = power_mode_maxn();
  for (const auto& target : quant_latency_ratios()) {
    const ModelSpec& m = model_by_key(target.model_key);
    if (m.default_dtype != DType::kF16) continue;
    const double f16 = simulated_batch_latency_s(m, DType::kF16, 32, 32, 64, maxn);
    const double i8 = simulated_batch_latency_s(m, DType::kI8, 32, 32, 64, maxn);
    const double i4 = simulated_batch_latency_s(m, DType::kI4, 32, 32, 64, maxn);
    EXPECT_NEAR(i8 / f16, target.int8_vs_fp16, 0.06) << target.model_key;
    EXPECT_NEAR(i4 / f16, target.int4_vs_fp16, 0.15) << target.model_key;
  }
  // DeepSeek: INT4 vs INT8 ratio.
  {
    const ModelSpec& deepq = model_by_key("deepseek-qwen");
    const double i8 = simulated_batch_latency_s(deepq, DType::kI8, 32, 32, 64, maxn);
    const double i4 = simulated_batch_latency_s(deepq, DType::kI4, 32, 32, 64, maxn);
    EXPECT_NEAR(i4 / i8, 3.47, 0.2);
  }
}

TEST(CalibrationTest, InterpolatedBatchSizesPredictedWell) {
  // bs=2..64 were NOT fitted; they must interpolate within ~25% of Table 4
  // (geometric mean across the sweep much tighter than any single point).
  const PowerMode maxn = power_mode_maxn();
  for (const auto& row : table4_batch_wikitext2()) {
    if (row.batch_size == 1 || row.batch_size == 128) continue;
    for (const char* key : {"phi2", "llama3", "mistral"}) {
      const ModelSpec& m = model_by_key(key);
      const std::size_t idx = reference_model_index(key);
      const double sim =
          simulated_batch_latency_s(m, m.default_dtype, row.batch_size, 32, 64, maxn);
      EXPECT_NEAR(sim / row.latency_s[idx], 1.0, 0.35)
          << key << " bs=" << row.batch_size;
    }
  }
}

TEST(CalibrationTest, InterpolatedSeqLengthsPredictedWell) {
  // sl=128/256/512 for Llama/Mistral were not fitted (only sl=1024 was).
  const PowerMode maxn = power_mode_maxn();
  for (const auto& row : table7_seq_wikitext2()) {
    if (row.seq_total == 1024) continue;
    for (const char* key : {"llama3", "mistral"}) {
      const ModelSpec& m = model_by_key(key);
      const std::size_t idx = reference_model_index(key);
      const std::size_t in = row.seq_total / 4;
      const std::size_t out = row.seq_total - in;
      const double sim = simulated_batch_latency_s(m, m.default_dtype, 32, in, out, maxn);
      EXPECT_NEAR(sim / row.latency_s[idx], 1.0, 0.35)
          << key << " sl=" << row.seq_total;
    }
  }
}

}  // namespace
}  // namespace orinsim::sim
