#include "sim/thermal.h"

#include <gtest/gtest.h>

#include <cmath>

namespace orinsim::sim {
namespace {

TEST(ThermalModelTest, EquilibriumFromPowerAndResistance) {
  ThermalModel tm(ThermalParams::devkit_fan());
  EXPECT_DOUBLE_EQ(tm.equilibrium_c(0.0), 25.0);
  EXPECT_DOUBLE_EQ(tm.equilibrium_c(50.0), 75.0);  // 25 + 50 * 1.0
}

TEST(ThermalModelTest, StepConvergesToEquilibrium) {
  ThermalModel tm;
  double temp = 25.0;
  for (int i = 0; i < 600; ++i) temp = tm.step_temperature(temp, 40.0, 1.0);
  EXPECT_NEAR(temp, tm.equilibrium_c(40.0), 0.1);
}

TEST(ThermalModelTest, StepIsExactExponential) {
  const ThermalParams p;
  ThermalModel tm(p);
  const double t0 = 30.0, power = 50.0, dt = 37.0;
  const double expected = tm.equilibrium_c(power) +
                          (t0 - tm.equilibrium_c(power)) * std::exp(-dt / p.tau_s);
  EXPECT_NEAR(tm.step_temperature(t0, power, dt), expected, 1e-9);
  // One big step equals many small steps (exact integrator).
  double temp = t0;
  for (int i = 0; i < 37; ++i) temp = tm.step_temperature(temp, power, 1.0);
  EXPECT_NEAR(temp, expected, 1e-9);
}

TEST(ThermalModelTest, ThrottleCurve) {
  ThermalModel tm;  // start 85, hard 100, min 0.4
  EXPECT_DOUBLE_EQ(tm.gpu_throttle(60.0), 1.0);
  EXPECT_DOUBLE_EQ(tm.gpu_throttle(85.0), 1.0);
  EXPECT_NEAR(tm.gpu_throttle(92.5), 0.7, 1e-9);
  EXPECT_DOUBLE_EQ(tm.gpu_throttle(100.0), 0.4);
  EXPECT_DOUBLE_EQ(tm.gpu_throttle(150.0), 0.4);
}

TEST(ThermalRunTest, FanKeepsShortRunsCool) {
  SimRequest rq;
  rq.model_key = "llama3";
  const ThermalRunResult r = simulate_with_thermals(rq, ThermalParams::devkit_fan());
  EXPECT_EQ(r.throttled_fraction, 0.0);
  EXPECT_LT(r.peak_temp_c, 85.0);
  // Cold start + fan: thermal latency equals the ideal prediction.
  EXPECT_NEAR(r.latency_s, r.ideal_latency_s, r.ideal_latency_s * 0.02);
}

TEST(ThermalRunTest, FanlessLongRunThrottles) {
  SimRequest rq;
  rq.model_key = "llama3";
  rq.in_tokens = 256;
  rq.out_tokens = 768;  // ~5 minute run: reaches thermal steady state
  const ThermalRunResult r =
      simulate_with_thermals(rq, ThermalParams::fanless_enclosure());
  EXPECT_GT(r.peak_temp_c, 85.0);
  EXPECT_GT(r.throttled_fraction, 0.2);
  // Latency penalty is small: memory-bound decode barely feels a GPU-clock
  // throttle (the same coupling that makes PM-A cheap in Fig 5).
  EXPECT_GT(r.latency_s, r.ideal_latency_s * 1.005);
  EXPECT_LT(r.latency_s, r.ideal_latency_s * 1.20);
}

TEST(ThermalRunTest, HotStartWorseThanColdStart) {
  SimRequest rq;
  rq.model_key = "llama3";
  rq.in_tokens = 64;
  rq.out_tokens = 192;
  const ThermalParams p = ThermalParams::fanless_enclosure();
  const ThermalRunResult cold = simulate_with_thermals(rq, p);
  const ThermalRunResult hot = simulate_with_thermals(rq, p, 88.0);
  EXPECT_GT(hot.latency_s, cold.latency_s);
  EXPECT_GE(hot.throttled_fraction, cold.throttled_fraction);
}

TEST(ThermalRunTest, LowerPowerModeAvoidsThrottle) {
  SimRequest rq;
  rq.model_key = "llama3";
  rq.in_tokens = 256;
  rq.out_tokens = 768;
  const ThermalParams p = ThermalParams::fanless_enclosure();
  rq.power_mode = sim::power_mode_by_name("A");
  const ThermalRunResult pm_a = simulate_with_thermals(rq, p);
  EXPECT_LT(pm_a.throttled_fraction, 0.05);
}

TEST(ThermalRunTest, ThrottledFractionStaysWithinUnitInterval) {
  // Prefill-heavy hot start: a long throttled prefill against a short decode.
  // With the decode-only denominator this fraction exceeded 1; the fix
  // normalizes by all powered (prefill + decode) time.
  SimRequest rq;
  rq.model_key = "llama3";
  rq.batch = 32;
  rq.in_tokens = 1000;
  rq.out_tokens = 24;
  const ThermalParams p = ThermalParams::fanless_enclosure();
  const ThermalRunResult r = simulate_with_thermals(rq, p, /*initial_temp_c=*/95.0);
  // The run starts above throttle_start_c, so prefill is throttled for sure.
  EXPECT_GT(r.throttled_fraction, 0.0);
  EXPECT_LE(r.throttled_fraction, 1.0);
}

TEST(ThermalRunTest, FullyThrottledRunReportsFractionOne) {
  // Hot start with a fanless enclosure and a short run: the junction never
  // cools below the throttle threshold, so every powered second is throttled.
  SimRequest rq;
  rq.model_key = "llama3";
  rq.batch = 32;
  rq.in_tokens = 64;
  rq.out_tokens = 16;
  const ThermalParams p = ThermalParams::fanless_enclosure();
  const ThermalRunResult r = simulate_with_thermals(rq, p, /*initial_temp_c=*/97.0);
  EXPECT_NEAR(r.throttled_fraction, 1.0, 1e-12);
}

TEST(ThermalRunTest, TraceSampledAndMonotonic) {
  SimRequest rq;
  rq.model_key = "llama3";
  const ThermalRunResult r = simulate_with_thermals(rq, ThermalParams::devkit_fan());
  ASSERT_GE(r.trace.size(), 2u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_GT(r.trace[i].t_s, r.trace[i - 1].t_s);
  }
  // Cold start: temperature rises during the run.
  EXPECT_GT(r.final_temp_c, 25.0);
}

TEST(ThermalRunTest, OomStillRejected) {
  SimRequest rq;
  rq.model_key = "deepseek-qwen";
  rq.dtype = DType::kF16;
  EXPECT_THROW(simulate_with_thermals(rq, ThermalParams::devkit_fan()),
               ContractViolation);
}

}  // namespace
}  // namespace orinsim::sim
