#include "sim/roofline.h"

#include <gtest/gtest.h>

namespace orinsim::sim {
namespace {

class RooflineTest : public ::testing::Test {
 protected:
  RooflineEngine engine_;
  PowerMode maxn_ = power_mode_maxn();
};

TEST_F(RooflineTest, DecodeStepIsWeightBoundAtBatchOne) {
  // §3.2: decode is memory-bound — at bs=1 the weight-streaming term must
  // dominate every model's step time.
  for (const auto& m : model_catalog()) {
    const StepBreakdown s = engine_.decode_step(m, m.default_dtype, 1, 48, maxn_);
    EXPECT_GT(s.weight_s, s.compute_s) << m.key;
    EXPECT_GT(s.weight_s / s.total_s(), 0.4) << m.key;
  }
}

TEST_F(RooflineTest, ComputeShareGrowsWithBatch) {
  const ModelSpec& m = model_by_key("llama3");
  const StepBreakdown s1 = engine_.decode_step(m, DType::kF16, 1, 48, maxn_);
  const StepBreakdown s128 = engine_.decode_step(m, DType::kF16, 128, 48, maxn_);
  EXPECT_GT(s128.compute_share(), s1.compute_share());
  // Weight time does not depend on batch (weights stream once per step).
  EXPECT_DOUBLE_EQ(s1.weight_s, s128.weight_s);
  // Compute scales linearly with batch.
  EXPECT_NEAR(s128.compute_s / s1.compute_s, 128.0, 1e-6);
}

TEST_F(RooflineTest, KvTimeLinearInContextAndBatch) {
  const ModelSpec& m = model_by_key("llama3");
  const StepBreakdown a = engine_.decode_step(m, DType::kF16, 8, 100, maxn_);
  const StepBreakdown b = engine_.decode_step(m, DType::kF16, 8, 200, maxn_);
  EXPECT_NEAR(b.kv_s / a.kv_s, 2.0, 1e-9);
  const StepBreakdown c = engine_.decode_step(m, DType::kF16, 16, 100, maxn_);
  EXPECT_NEAR(c.kv_s / a.kv_s, 2.0, 1e-9);
}

TEST_F(RooflineTest, DecodePhaseMatchesStepSum) {
  const ModelSpec& m = model_by_key("mistral");
  const std::size_t in = 32, out = 64;
  const StepBreakdown phase = engine_.decode_phase(m, DType::kF16, 4, in, out, maxn_);
  double manual = 0.0;
  for (std::size_t t = 0; t < out; ++t) {
    manual += engine_.decode_step(m, DType::kF16, 4, in + t, maxn_).total_s();
  }
  EXPECT_NEAR(phase.total_s(), manual, 1e-9);
}

TEST_F(RooflineTest, QuantSlowdownExtendsStep) {
  const ModelSpec& m = model_by_key("llama3");
  const StepBreakdown f16 = engine_.decode_step(m, DType::kF16, 32, 48, maxn_);
  const StepBreakdown i8 = engine_.decode_step(m, DType::kI8, 32, 48, maxn_);
  // INT8 halves weight traffic but the dequant overhead more than makes up
  // for it (the paper's +62% effect is asserted end-to-end elsewhere).
  EXPECT_LT(i8.weight_s, f16.weight_s);
  EXPECT_GT(i8.quant_extra_s, 0.0);
  EXPECT_GT(i8.total_s(), f16.total_s());
}

TEST_F(RooflineTest, Fp32UsesCudaCoresAndDoubleTraffic) {
  const ModelSpec& m = model_by_key("llama3");
  const StepBreakdown f16 = engine_.decode_step(m, DType::kF16, 32, 48, maxn_);
  const StepBreakdown f32 = engine_.decode_step(m, DType::kF32, 32, 48, maxn_);
  EXPECT_NEAR(f32.weight_s / f16.weight_s, 2.0, 1e-9);
  EXPECT_GT(f32.compute_s, f16.compute_s * 3.0);  // 5.33 vs 21.2 TFLOPS
}

TEST_F(RooflineTest, GpuFrequencySlowsComputeAndBandwidth) {
  const ModelSpec& m = model_by_key("llama3");
  const PowerMode a = power_mode_by_name("A");
  const StepBreakdown maxn = engine_.decode_step(m, DType::kF16, 32, 48, maxn_);
  const StepBreakdown pm_a = engine_.decode_step(m, DType::kF16, 32, 48, a);
  EXPECT_GT(pm_a.compute_s, maxn.compute_s * 1.5);
  EXPECT_GT(pm_a.weight_s, maxn.weight_s);  // SM issue-rate coupling
}

TEST_F(RooflineTest, MemoryFrequencyDominatesPmH) {
  const ModelSpec& m = model_by_key("llama3");
  const PowerMode h = power_mode_by_name("H");
  const StepBreakdown maxn = engine_.decode_step(m, DType::kF16, 32, 48, maxn_);
  const StepBreakdown pm_h = engine_.decode_step(m, DType::kF16, 32, 48, h);
  // Paper: +370% latency at PM-H.
  EXPECT_GT(pm_h.total_s() / maxn.total_s(), 3.5);
  EXPECT_DOUBLE_EQ(pm_h.compute_s, maxn.compute_s);  // GPU clock unchanged
}

TEST_F(RooflineTest, CpuStretchOrdering) {
  const ModelSpec& llama = model_by_key("llama3");
  const double c = engine_.cpu_stretch(llama, power_mode_by_name("C"));
  const double d = engine_.cpu_stretch(llama, power_mode_by_name("D"));
  const double e = engine_.cpu_stretch(llama, power_mode_by_name("E"));
  const double f = engine_.cpu_stretch(llama, power_mode_by_name("F"));
  EXPECT_GT(c, 1.0);
  EXPECT_GT(d, c);
  // Core-count modes: negligible (paper §3.4).
  EXPECT_LT(e, 1.05);
  EXPECT_LT(f, 1.05);
}

TEST_F(RooflineTest, CpuSensitivityPerModelOrdering) {
  // Phi-2 is nearly CPU-insensitive (+1.3% at PM-C); DeepSeek the most
  // sensitive (INT8 CPU assist).
  const double phi2 = cpu_sensitivity(model_by_key("phi2")).freq;
  const double llama = cpu_sensitivity(model_by_key("llama3")).freq;
  const double deepq = cpu_sensitivity(model_by_key("deepseek-qwen")).freq;
  EXPECT_LT(phi2, 0.1);
  EXPECT_GT(deepq, llama);
}

TEST_F(RooflineTest, PrefillFasterThanEquivalentDecode) {
  // Prefilling N tokens batches them through GEMMs; decoding N tokens
  // streams the weights N times.
  const ModelSpec& m = model_by_key("llama3");
  const double prefill = engine_.prefill_s(m, DType::kF16, 1, 64, maxn_);
  const StepBreakdown decode = engine_.decode_phase(m, DType::kF16, 1, 0, 64, maxn_);
  EXPECT_LT(prefill, decode.total_s() / 10.0);
}

TEST_F(RooflineTest, InvalidArgsRejected) {
  const ModelSpec& m = model_by_key("llama3");
  EXPECT_THROW(engine_.decode_step(m, DType::kF16, 0, 10, maxn_), ContractViolation);
  EXPECT_THROW(engine_.decode_phase(m, DType::kF16, 1, 10, 0, maxn_), ContractViolation);
  EXPECT_THROW(engine_.prefill_s(m, DType::kF16, 1, 0, maxn_), ContractViolation);
}

}  // namespace
}  // namespace orinsim::sim
