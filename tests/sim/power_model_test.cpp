#include "sim/power_model.h"

#include <gtest/gtest.h>

namespace orinsim::sim {
namespace {

class PowerModelTest : public ::testing::Test {
 protected:
  RooflineEngine roofline_;
  PowerModel power_;
  PowerMode maxn_ = power_mode_maxn();

  PowerEstimate decode_power(const std::string& key, DType dt, const PowerMode& pm,
                             std::size_t bs = 32) {
    const ModelSpec& m = model_by_key(key);
    const StepBreakdown step = roofline_.decode_step(m, dt, bs, 48, pm);
    return power_.decode_power(m, dt, step, pm);
  }
};

TEST_F(PowerModelTest, MaxnDecodeWithinBoardEnvelope) {
  for (const auto& m : model_catalog()) {
    const StepBreakdown step = roofline_.decode_step(m, m.default_dtype, 32, 48, maxn_);
    const PowerEstimate p = power_.decode_power(m, m.default_dtype, step, maxn_);
    EXPECT_GT(p.total_w(), 20.0) << m.key;
    EXPECT_LE(p.total_w(), power_.params().board_cap_w + 1e-9) << m.key;
  }
}

TEST_F(PowerModelTest, ComponentsNonNegative) {
  const PowerEstimate p = decode_power("llama3", DType::kF16, maxn_);
  EXPECT_GE(p.gpu_w, 0.0);
  EXPECT_GE(p.cpu_w, 0.0);
  EXPECT_GE(p.mem_w, 0.0);
  EXPECT_GT(p.idle_w, 0.0);
}

TEST_F(PowerModelTest, GpuFrequencyReducesPower) {
  const double maxn = decode_power("llama3", DType::kF16, maxn_).total_w();
  const double a = decode_power("llama3", DType::kF16, power_mode_by_name("A")).total_w();
  const double b = decode_power("llama3", DType::kF16, power_mode_by_name("B")).total_w();
  // §3.4: PM-A ~-28%, PM-B ~-51% instantaneous power.
  EXPECT_LT(a, maxn * 0.85);
  EXPECT_LT(b, a);
  EXPECT_LT(b, maxn * 0.70);
}

TEST_F(PowerModelTest, MemoryFrequencyReducesPowerSharply) {
  const double maxn = decode_power("llama3", DType::kF16, maxn_).total_w();
  const double h = decode_power("llama3", DType::kF16, power_mode_by_name("H")).total_w();
  // §3.4: PM-H power load drops by ~52%.
  EXPECT_LT(h / maxn, 0.60);
}

TEST_F(PowerModelTest, Int8DrawsLessPowerThanFp16AndInt4) {
  // §3.3: INT8 runs the GPU at ~60% utilization -> lower power than FP16;
  // INT4 saturates the GPU -> the highest power.
  const double f16 = decode_power("llama3", DType::kF16, maxn_).total_w();
  const double i8 = decode_power("llama3", DType::kI8, maxn_).total_w();
  const double i4 = decode_power("llama3", DType::kI4, maxn_).total_w();
  EXPECT_LT(i8, f16);
  EXPECT_GT(i4, i8);
}

TEST_F(PowerModelTest, PrefillDrawsMoreThanDecode) {
  const ModelSpec& m = model_by_key("llama3");
  const StepBreakdown step = roofline_.decode_step(m, DType::kF16, 32, 48, maxn_);
  const double decode = power_.decode_power(m, DType::kF16, step, maxn_).total_w();
  const double prefill = power_.prefill_power(m, DType::kF16, maxn_).total_w();
  EXPECT_GT(prefill, decode);
}

TEST_F(PowerModelTest, CpuFrequencyReducesCpuComponent) {
  const PowerEstimate maxn = decode_power("llama3", DType::kF16, maxn_);
  const PowerEstimate d = decode_power("llama3", DType::kF16, power_mode_by_name("D"));
  EXPECT_LT(d.cpu_w, maxn.cpu_w);
}

TEST_F(PowerModelTest, StalledPipelineIdlesTheHost) {
  // At PM-H the same per-step host work spreads over ~5x the time; CPU power
  // must drop accordingly.
  const PowerEstimate maxn = decode_power("llama3", DType::kF16, maxn_);
  const PowerEstimate h = decode_power("llama3", DType::kF16, power_mode_by_name("H"));
  EXPECT_LT(h.cpu_w, maxn.cpu_w * 0.5);
}

TEST_F(PowerModelTest, IdleFloorRespected) {
  const PowerEstimate p = decode_power("phi2", DType::kF16, power_mode_by_name("H"), 1);
  EXPECT_GE(p.total_w(), power_.params().idle_w * 0.9);
}

}  // namespace
}  // namespace orinsim::sim
