// Simulator-side INT8 KV cache: memory and latency effects.
#include <gtest/gtest.h>

#include "sim/inference_sim.h"

namespace orinsim::sim {
namespace {

TEST(KvCacheSimTest, Int8HalvesKvBytesPerToken) {
  for (const auto& m : model_catalog()) {
    const double f16 = m.kv_bytes_per_token(false);
    const double i8 = m.kv_bytes_per_token(true);
    EXPECT_GT(i8, f16 * 0.45) << m.key;
    EXPECT_LT(i8, f16 * 0.55) << m.key;
  }
}

TEST(KvCacheSimTest, LongContextDecodeSpeedsUp) {
  // At sl=1024 the KV term dominates Llama's step (Table 7); halving its
  // traffic must shorten the run even with the dequant overhead.
  InferenceSim sim;
  SimRequest rq;
  rq.model_key = "llama3";
  rq.in_tokens = 256;
  rq.out_tokens = 768;
  rq.noise_sigma = 0.0;
  const SimResult f16 = sim.run(rq);
  rq.kv_cache_int8 = true;
  const SimResult i8 = sim.run(rq);
  ASSERT_FALSE(f16.oom);
  ASSERT_FALSE(i8.oom);
  EXPECT_LT(i8.latency_s, f16.latency_s * 0.75);
  EXPECT_LT(i8.memory.kv_gb, f16.memory.kv_gb * 0.55);
}

TEST(KvCacheSimTest, ShortContextBarelyChanges) {
  // At sl=96 weights dominate; INT8 KV should be nearly neutral.
  InferenceSim sim;
  SimRequest rq;
  rq.model_key = "llama3";
  rq.noise_sigma = 0.0;
  const SimResult f16 = sim.run(rq);
  rq.kv_cache_int8 = true;
  const SimResult i8 = sim.run(rq);
  EXPECT_NEAR(i8.latency_s / f16.latency_s, 1.0, 0.10);
}

TEST(KvCacheSimTest, DoesNotRescuePhi2Oom) {
  // Phi-2's sl=512 OOM is attention-materialization, not KV: INT8 KV must
  // not change the verdict (a useful negative control on the memory model).
  InferenceSim sim;
  SimRequest rq;
  rq.model_key = "phi2";
  rq.in_tokens = 128;
  rq.out_tokens = 384;
  rq.kv_cache_int8 = true;
  EXPECT_TRUE(sim.run(rq).oom);
}

}  // namespace
}  // namespace orinsim::sim
