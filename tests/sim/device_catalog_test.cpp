#include "sim/device_catalog.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "sim/inference_sim.h"

namespace orinsim::sim {
namespace {

TEST(DeviceCatalogTest, FiveDevices) {
  ASSERT_EQ(device_catalog().size(), 5u);
  EXPECT_EQ(device_catalog().front().key, "orin-agx-64");
}

TEST(DeviceCatalogTest, PaperDeviceIsTheReference) {
  const DeviceEntry& e = device_by_key("orin-agx-64");
  EXPECT_DOUBLE_EQ(e.spec.total_ram_gb, 64.0);
  EXPECT_NEAR(e.spec.peak_bw_gbps(e.spec.mem_max_freq_mhz), 204.8, 1e-9);
  EXPECT_DOUBLE_EQ(e.price_usd, 2200.0);  // per the paper's introduction
}

TEST(DeviceCatalogTest, BandwidthOrdering) {
  // AGX (256-bit LPDDR5) > Xavier (LPDDR4x) > NX (128-bit) > Nano.
  auto bw = [](const char* key) {
    const DeviceSpec& s = device_by_key(key).spec;
    return s.peak_bw_gbps(s.mem_max_freq_mhz);
  };
  EXPECT_GT(bw("orin-agx-64"), bw("xavier-agx-32"));
  EXPECT_GT(bw("xavier-agx-32"), bw("orin-nx-16"));
  EXPECT_GT(bw("orin-nx-16"), bw("orin-nano-8"));
}

TEST(DeviceCatalogTest, MaxPowerModeMatchesDevice) {
  const DeviceSpec& xavier = device_by_key("xavier-agx-32").spec;
  const PowerMode pm = max_power_mode_for(xavier);
  EXPECT_DOUBLE_EQ(pm.gpu_freq_mhz, xavier.gpu_max_freq_mhz);
  EXPECT_EQ(pm.cpu_cores_online, xavier.cpu_cores);
}

TEST(DeviceCatalogTest, OnlyThe64GbOrinHostsTheLargeModels) {
  // The paper's motivating claim: 24-32B models need the 64GB device.
  for (const auto& dev : device_catalog()) {
    const MemoryModel mm(dev.spec);
    const bool hosts_mistral_fp16 = !mm.model_oom(model_by_key("mistral"), DType::kF16);
    const bool hosts_deepq_int8 =
        !mm.model_oom(model_by_key("deepseek-qwen"), DType::kI8);
    if (dev.key == "orin-agx-64") {
      EXPECT_TRUE(hosts_mistral_fp16);
      EXPECT_TRUE(hosts_deepq_int8);
    } else {
      EXPECT_FALSE(hosts_mistral_fp16) << dev.key;
      EXPECT_FALSE(hosts_deepq_int8) << dev.key;
    }
  }
}

TEST(DeviceCatalogTest, SmallDevicesStillRunQuantizedSmallModels) {
  // Orin Nano 8GB: Phi-2 INT4 (1.8 GB weights) fits; Llama FP16 does not.
  const MemoryModel nano(device_by_key("orin-nano-8").spec);
  EXPECT_FALSE(nano.model_oom(model_by_key("phi2"), DType::kI4));
  EXPECT_TRUE(nano.model_oom(model_by_key("llama3"), DType::kF16));
}

TEST(DeviceCatalogTest, SlowerDevicesPredictSlowerDecode) {
  // Same model, best-fit precision, each device's own MaxN: decode gets
  // slower as bandwidth shrinks.
  auto latency_on = [](const char* key) {
    const DeviceEntry& dev = device_by_key(key);
    const InferenceSim sim(dev.spec);
    SimRequest rq;
    rq.model_key = "phi2";
    rq.dtype = DType::kI8;  // 3.0 GB: fits even the 8GB Nano's usable RAM
    rq.batch = 1;
    rq.power_mode = max_power_mode_for(dev.spec);
    rq.noise_sigma = 0.0;
    const SimResult r = sim.run(rq);
    EXPECT_FALSE(r.oom) << key;
    return r.latency_s;
  };
  EXPECT_LT(latency_on("orin-agx-64"), latency_on("xavier-agx-32"));
  EXPECT_LT(latency_on("xavier-agx-32"), latency_on("orin-nano-8"));
}

TEST(DeviceCatalogTest, UnknownKeyRejected) {
  EXPECT_THROW(device_by_key("tpu-v5"), ContractViolation);
}

TEST(DeviceCatalogTest, ScaledPowerModeIsIdentityOnTheReferenceOrin) {
  // Table 2 frequencies are Orin AGX absolutes, so scaling to the paper's
  // device must reproduce them exactly for every mode.
  const DeviceSpec& orin = device_by_key("orin-agx-64").spec;
  for (const PowerMode& ref : all_power_modes()) {
    const PowerMode pm = scaled_power_mode(orin, ref.name);
    EXPECT_DOUBLE_EQ(pm.gpu_freq_mhz, ref.gpu_freq_mhz) << ref.name;
    EXPECT_DOUBLE_EQ(pm.cpu_freq_ghz, ref.cpu_freq_ghz) << ref.name;
    EXPECT_EQ(pm.cpu_cores_online, ref.cpu_cores_online) << ref.name;
    EXPECT_DOUBLE_EQ(pm.mem_freq_mhz, ref.mem_freq_mhz) << ref.name;
  }
}

TEST(DeviceCatalogTest, ScaledPowerModeKeepsFrequencyRatios) {
  // Mode A is the 800/1301 GPU point on the Orin; on a Nano it must be the
  // same *fraction* of the Nano's own maxima, never an Orin-absolute clock.
  const DeviceSpec& nano = device_by_key("orin-nano-8").spec;
  const PowerMode ref = power_mode_by_name("A");
  const PowerMode maxn = power_mode_maxn();
  const PowerMode pm = scaled_power_mode(nano, "A");
  EXPECT_NEAR(pm.gpu_freq_mhz,
              nano.gpu_max_freq_mhz * ref.gpu_freq_mhz / maxn.gpu_freq_mhz, 1e-9);
  EXPECT_LE(pm.gpu_freq_mhz, nano.gpu_max_freq_mhz);
  EXPECT_GE(pm.cpu_cores_online, 1);
  EXPECT_LE(pm.cpu_cores_online, nano.cpu_cores);
}

TEST(DeviceCatalogTest, DeviceLadderDescendsEveryDevicesOwnClocks) {
  for (const auto& dev : device_catalog()) {
    const std::vector<PowerMode> ladder = device_gpu_frequency_ladder(dev.spec);
    ASSERT_EQ(ladder.size(), gpu_frequency_ladder().size()) << dev.key;
    EXPECT_DOUBLE_EQ(ladder.front().gpu_freq_mhz, dev.spec.gpu_max_freq_mhz) << dev.key;
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_LT(ladder[i].gpu_freq_mhz, ladder[i - 1].gpu_freq_mhz) << dev.key;
    }
  }
}

}  // namespace
}  // namespace orinsim::sim
