#include "sim/inference_sim.h"

#include <gtest/gtest.h>

#include <cmath>

namespace orinsim::sim {
namespace {

class InferenceSimTest : public ::testing::Test {
 protected:
  InferenceSim sim_;

  SimRequest base_request() {
    SimRequest rq;
    rq.model_key = "llama3";
    rq.dtype = DType::kF16;
    rq.batch = 32;
    rq.in_tokens = 32;
    rq.out_tokens = 64;
    return rq;
  }
};

TEST_F(InferenceSimTest, ThroughputConsistentWithLatency) {
  const SimResult r = sim_.run(base_request());
  ASSERT_FALSE(r.oom);
  // TP = bs * (in + out) / latency (paper formula).
  EXPECT_NEAR(r.throughput_tps, 32.0 * 96.0 / r.latency_s, r.throughput_tps * 0.05);
}

TEST_F(InferenceSimTest, DeterministicForSameSeed) {
  const SimResult a = sim_.run(base_request());
  const SimResult b = sim_.run(base_request());
  EXPECT_DOUBLE_EQ(a.latency_s, b.latency_s);
  EXPECT_DOUBLE_EQ(a.energy_j, b.energy_j);
  EXPECT_DOUBLE_EQ(a.median_power_w, b.median_power_w);
}

TEST_F(InferenceSimTest, NoiseAveragedAcrossRuns) {
  SimRequest rq = base_request();
  rq.noise_sigma = 0.0;
  const SimResult exact = sim_.run(rq);
  rq.noise_sigma = 0.03;
  const SimResult noisy = sim_.run(rq);
  // Averaging five runs keeps the estimate within a few percent of exact.
  EXPECT_NEAR(noisy.latency_s / exact.latency_s, 1.0, 0.05);
}

TEST_F(InferenceSimTest, EnergyApproximatesPowerTimesLatency) {
  const SimResult r = sim_.run(base_request());
  EXPECT_NEAR(r.energy_j, r.median_power_w * r.latency_s, r.energy_j * 0.25);
}

TEST_F(InferenceSimTest, TraceCoversWholeRun) {
  const SimResult r = sim_.run(base_request());
  ASSERT_GE(r.trace.t_s.size(), 2u);
  EXPECT_DOUBLE_EQ(r.trace.t_s.front(), 0.0);
  // jtop samples every 2s: sample count ~ latency / 2.
  EXPECT_NEAR(static_cast<double>(r.trace.t_s.size()),
              r.trace.t_s.back() / 2.0 + 1.0, 2.0);
}

TEST_F(InferenceSimTest, OomRequestsShortCircuit) {
  SimRequest rq = base_request();
  rq.model_key = "deepseek-qwen";
  rq.dtype = DType::kF16;  // 62 GB: does not fit
  const SimResult r = sim_.run(rq);
  EXPECT_TRUE(r.oom);
  EXPECT_TRUE(r.model_load_oom);
  EXPECT_EQ(r.latency_s, 0.0);
}

TEST_F(InferenceSimTest, WorkloadOomWithoutModelOom) {
  SimRequest rq = base_request();
  rq.model_key = "phi2";
  rq.in_tokens = 128;
  rq.out_tokens = 384;  // sl=512: Phi-2's eager attention blows shared RAM
  const SimResult r = sim_.run(rq);
  EXPECT_TRUE(r.oom);
  EXPECT_FALSE(r.model_load_oom);
}

TEST_F(InferenceSimTest, LatencyScaleAppliesLinearly) {
  SimRequest rq = base_request();
  rq.noise_sigma = 0.0;
  const SimResult base = sim_.run(rq);
  rq.latency_scale = 0.96;
  const SimResult scaled = sim_.run(rq);
  EXPECT_NEAR(scaled.latency_s / base.latency_s, 0.96, 1e-6);
}

TEST_F(InferenceSimTest, PrefillReportedAndSmallerThanTotal) {
  const SimResult r = sim_.run(base_request());
  EXPECT_GT(r.prefill_s, 0.0);
  EXPECT_LT(r.prefill_s, r.latency_s);
}

TEST_F(InferenceSimTest, MeanDecodeStepDecomposition) {
  const SimResult r = sim_.run(base_request());
  const StepBreakdown& s = r.mean_decode_step;
  EXPECT_GT(s.weight_s, 0.0);
  EXPECT_GT(s.compute_s, 0.0);
  EXPECT_GT(s.kv_s, 0.0);
  // 64 steps of mean step + prefill + overhead ~ latency.
  EXPECT_NEAR(64.0 * s.total_s() + r.prefill_s + 0.25, r.latency_s,
              r.latency_s * 0.05);
}

TEST_F(InferenceSimTest, InvalidRequestsRejected) {
  SimRequest rq = base_request();
  rq.batch = 0;
  EXPECT_THROW(sim_.run(rq), ContractViolation);
  rq = base_request();
  rq.runs = 0;
  EXPECT_THROW(sim_.run(rq), ContractViolation);
  rq = base_request();
  rq.model_key = "nonexistent";
  EXPECT_THROW(sim_.run(rq), ContractViolation);
}

}  // namespace
}  // namespace orinsim::sim
