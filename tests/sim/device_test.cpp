#include "sim/device.h"

#include <gtest/gtest.h>

namespace orinsim::sim {
namespace {

TEST(DeviceTest, OrinPeakBandwidth) {
  const DeviceSpec& d = orin_agx_64gb();
  // 256-bit LPDDR5 @ 3200 MHz DDR => 204.8 GB/s.
  EXPECT_NEAR(d.peak_bw_gbps(3200.0), 204.8, 1e-9);
}

TEST(DeviceTest, BandwidthScalesSuperlinearlyDown) {
  const DeviceSpec& d = orin_agx_64gb();
  const double at_full = d.peak_bw_gbps(3200.0);
  const double at_fifth = d.peak_bw_gbps(665.0);
  // Sub-proportional bandwidth at low clocks: less than the frequency ratio.
  EXPECT_LT(at_fifth / at_full, 665.0 / 3200.0 + 1e-9);
  EXPECT_GT(at_fifth, 0.0);
}

TEST(DeviceTest, BandwidthClampedAtMax) {
  const DeviceSpec& d = orin_agx_64gb();
  EXPECT_DOUBLE_EQ(d.peak_bw_gbps(4000.0), d.peak_bw_gbps(3200.0));
}

TEST(DeviceTest, Fp16TflopsScaleWithClock) {
  const DeviceSpec& d = orin_agx_64gb();
  EXPECT_NEAR(d.peak_fp16_tflops(1301.0), 21.2, 1e-9);
  EXPECT_NEAR(d.peak_fp16_tflops(650.5), 10.6, 1e-9);
}

TEST(DeviceTest, UsableRamBelowTotal) {
  const DeviceSpec& d = orin_agx_64gb();
  EXPECT_LT(d.usable_ram_gb(), d.total_ram_gb);
  EXPECT_GT(d.usable_ram_gb(), 58.0);
  // DeepSeek-Qwen FP16 (62 GB) must NOT fit, per Table 1's red estimate.
  EXPECT_LT(d.usable_ram_gb(), 62.0);
}

}  // namespace
}  // namespace orinsim::sim
