#include "sim/model_catalog.h"

#include <gtest/gtest.h>

#include "core/error.h"
#include "sim/paper_reference.h"

namespace orinsim::sim {
namespace {

TEST(ModelCatalogTest, FourPaperModels) {
  const auto& catalog = model_catalog();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog[0].key, "phi2");
  EXPECT_EQ(catalog[1].key, "llama3");
  EXPECT_EQ(catalog[2].key, "mistral");
  EXPECT_EQ(catalog[3].key, "deepseek-qwen");
}

TEST(ModelCatalogTest, Table1WeightMemoryMatches) {
  for (const auto& row : table1_weight_memory()) {
    const ModelSpec& m = model_by_key(row.model_key);
    EXPECT_DOUBLE_EQ(m.weight_gb(DType::kF32), row.gb[0]) << row.model_key;
    EXPECT_DOUBLE_EQ(m.weight_gb(DType::kF16), row.gb[1]);
    EXPECT_DOUBLE_EQ(m.weight_gb(DType::kI8), row.gb[2]);
    EXPECT_DOUBLE_EQ(m.weight_gb(DType::kI4), row.gb[3]);
  }
}

TEST(ModelCatalogTest, DerivedMemoryConsistentWithTable1) {
  // The architecture-derived estimate should land within ~20% of the
  // measured Table 1 values (BitsAndBytes keeps embeddings at FP16 and adds
  // scale metadata; the device numbers include allocator slack).
  for (const auto& m : model_catalog()) {
    for (DType dt : kAllDTypes) {
      const double derived = m.derived_weight_gb(dt);
      const double measured = m.weight_gb(dt);
      EXPECT_NEAR(derived / measured, 1.0, 0.25)
          << m.key << " " << dtype_name(dt) << ": derived " << derived << " vs "
          << measured;
    }
  }
}

TEST(ModelCatalogTest, ParameterCounts) {
  EXPECT_NEAR(model_by_key("phi2").params_b, 2.7, 0.2);
  EXPECT_NEAR(model_by_key("llama3").params_b, 8.0, 0.2);
  EXPECT_NEAR(model_by_key("mistral").params_b, 23.6, 0.5);
  EXPECT_NEAR(model_by_key("deepseek-qwen").params_b, 32.8, 0.5);
}

TEST(ModelCatalogTest, KvBytesPerTokenFromArchitecture) {
  // Llama-3.1-8B: 32 layers, 8 KV heads x 128 dims, K+V, fp16 = 131072 B.
  EXPECT_DOUBLE_EQ(model_by_key("llama3").kv_bytes_per_token(), 131072.0);
  // Phi-2 has full MHA (32 KV heads x 80): 327680 B/token.
  EXPECT_DOUBLE_EQ(model_by_key("phi2").kv_bytes_per_token(), 327680.0);
  // DeepSeek-Qwen's 64 layers double Llama's KV cost per token.
  EXPECT_DOUBLE_EQ(model_by_key("deepseek-qwen").kv_bytes_per_token(), 262144.0);
}

TEST(ModelCatalogTest, DefaultDtypes) {
  EXPECT_EQ(model_by_key("phi2").default_dtype, DType::kF16);
  EXPECT_EQ(model_by_key("llama3").default_dtype, DType::kF16);
  EXPECT_EQ(model_by_key("mistral").default_dtype, DType::kF16);
  // DeepSeek-Qwen only fits at INT8 (Table 1).
  EXPECT_EQ(model_by_key("deepseek-qwen").default_dtype, DType::kI8);
}

TEST(ModelCatalogTest, QuantSlowdownAccessors) {
  const ModelSpec& m = model_by_key("llama3");
  EXPECT_DOUBLE_EQ(m.quant_slowdown(DType::kF32), 1.0);
  EXPECT_DOUBLE_EQ(m.quant_slowdown(DType::kF16), 1.0);
  EXPECT_GT(m.quant_slowdown(DType::kI8), 1.0);
  EXPECT_GT(m.quant_slowdown(DType::kI4), m.quant_slowdown(DType::kI8));
  EXPECT_LT(m.gpu_activity(DType::kI8), m.gpu_activity(DType::kI4));
}

TEST(ModelCatalogTest, UnknownKeyRejected) {
  EXPECT_THROW(model_by_key("gpt4"), ContractViolation);
}

TEST(ModelCatalogTest, FlopsPerTokenIsTwiceParams) {
  EXPECT_DOUBLE_EQ(model_by_key("llama3").flops_per_token(), 2.0 * 8.03e9);
}

}  // namespace
}  // namespace orinsim::sim
