#include "sim/dla.h"

#include <gtest/gtest.h>

namespace orinsim::sim {
namespace {

TEST(DlaTest, Phi2OnDlaIsMemoryBoundAndUsable) {
  const DlaCoExecution r = estimate_dla_coexecution(
      model_by_key("llama3"), DType::kF16, model_by_key("phi2"));
  // 3 GB of INT8 weights against ~61 GB/s of shared DRAM: ~20 tok/s.
  EXPECT_TRUE(r.dla_memory_bound);
  EXPECT_GT(r.dla_tps, 5.0);
  EXPECT_LT(r.dla_tps, 60.0);
}

TEST(DlaTest, GpuDegradationMatchesPenalty) {
  const DlaSpec dla;
  const DlaCoExecution r = estimate_dla_coexecution(model_by_key("llama3"), DType::kF16,
                                                    model_by_key("phi2"), dla);
  EXPECT_GT(r.gpu_degradation, 0.0);
  // Decode is mostly bandwidth-bound, so losing 10% bandwidth costs <= ~10%.
  EXPECT_LT(r.gpu_degradation, dla.gpu_bw_penalty + 0.02);
  EXPECT_LT(r.gpu_tps_shared, r.gpu_tps_alone);
}

TEST(DlaTest, AddedPowerIsSmall) {
  const DlaCoExecution r = estimate_dla_coexecution(model_by_key("mistral"), DType::kF16,
                                                    model_by_key("phi2"));
  EXPECT_GT(r.added_power_w, 0.0);
  EXPECT_LE(r.added_power_w, 10.0);
}

TEST(DlaTest, ComputeBoundWhenBandwidthGenerous) {
  DlaSpec generous;
  generous.dram_share = 0.95;
  generous.efficiency = 0.01;  // pathological kernel support
  const DlaCoExecution r = estimate_dla_coexecution(
      model_by_key("llama3"), DType::kF16, model_by_key("phi2"), generous);
  EXPECT_FALSE(r.dla_memory_bound);
}

TEST(DlaTest, BiggerSmallModelIsSlowerOnDla) {
  const DlaCoExecution phi = estimate_dla_coexecution(model_by_key("mistral"),
                                                      DType::kF16, model_by_key("phi2"));
  const DlaCoExecution llama = estimate_dla_coexecution(
      model_by_key("mistral"), DType::kF16, model_by_key("llama3"));
  EXPECT_GT(phi.dla_tps, llama.dla_tps);
}

TEST(DlaTest, DegenerateSpecsRejected) {
  DlaSpec bad;
  bad.cores = 0;
  EXPECT_THROW(estimate_dla_coexecution(model_by_key("llama3"), DType::kF16,
                                        model_by_key("phi2"), bad),
               ContractViolation);
}

}  // namespace
}  // namespace orinsim::sim
