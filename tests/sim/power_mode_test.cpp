#include "sim/power_mode.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace orinsim::sim {
namespace {

TEST(PowerModeTest, TableHasNineModes) {
  EXPECT_EQ(all_power_modes().size(), 9u);
  EXPECT_EQ(all_power_modes().front().name, "MaxN");
}

TEST(PowerModeTest, MaxNMatchesPaperTable2) {
  const PowerMode m = power_mode_maxn();
  EXPECT_DOUBLE_EQ(m.gpu_freq_mhz, 1301.0);
  EXPECT_DOUBLE_EQ(m.cpu_freq_ghz, 2.2);
  EXPECT_EQ(m.cpu_cores_online, 12);
  EXPECT_DOUBLE_EQ(m.mem_freq_mhz, 3200.0);
}

TEST(PowerModeTest, EachCustomModeVariesExactlyOneAxis) {
  const PowerMode maxn = power_mode_maxn();
  for (const auto& pm : all_power_modes()) {
    if (pm.name == "MaxN") continue;
    int varied = 0;
    if (pm.gpu_freq_mhz != maxn.gpu_freq_mhz) ++varied;
    if (pm.cpu_freq_ghz != maxn.cpu_freq_ghz) ++varied;
    if (pm.cpu_cores_online != maxn.cpu_cores_online) ++varied;
    if (pm.mem_freq_mhz != maxn.mem_freq_mhz) ++varied;
    EXPECT_EQ(varied, 1) << pm.name;
  }
}

TEST(PowerModeTest, Table2Values) {
  EXPECT_DOUBLE_EQ(power_mode_by_name("A").gpu_freq_mhz, 800.0);
  EXPECT_DOUBLE_EQ(power_mode_by_name("B").gpu_freq_mhz, 400.0);
  EXPECT_DOUBLE_EQ(power_mode_by_name("C").cpu_freq_ghz, 1.7);
  EXPECT_DOUBLE_EQ(power_mode_by_name("D").cpu_freq_ghz, 1.2);
  EXPECT_EQ(power_mode_by_name("E").cpu_cores_online, 8);
  EXPECT_EQ(power_mode_by_name("F").cpu_cores_online, 4);
  EXPECT_DOUBLE_EQ(power_mode_by_name("G").mem_freq_mhz, 2133.0);
  EXPECT_DOUBLE_EQ(power_mode_by_name("H").mem_freq_mhz, 665.0);
}

TEST(PowerModeTest, LookupIsCaseInsensitive) {
  EXPECT_EQ(power_mode_by_name("maxn").name, "MaxN");
  EXPECT_EQ(power_mode_by_name("h").name, "H");
  EXPECT_THROW(power_mode_by_name("Z"), ContractViolation);
}

}  // namespace
}  // namespace orinsim::sim
