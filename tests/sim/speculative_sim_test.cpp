#include "sim/speculative_sim.h"

#include <gtest/gtest.h>

#include <cmath>

namespace orinsim::sim {
namespace {

TEST(SpeculativeSimTest, ExpectedTokensClosedForm) {
  // a=0: only the corrective token.
  EXPECT_DOUBLE_EQ(expected_tokens_per_round(0.0, 4), 1.0);
  // a=1: all K plus the bonus.
  EXPECT_DOUBLE_EQ(expected_tokens_per_round(1.0, 4), 5.0);
  // a=0.5, K=2: 1 + 0.5 + 0.25 = 1.75.
  EXPECT_NEAR(expected_tokens_per_round(0.5, 2), 1.75, 1e-12);
  EXPECT_THROW(expected_tokens_per_round(1.5, 2), ContractViolation);
  EXPECT_THROW(expected_tokens_per_round(0.5, 0), ContractViolation);
}

TEST(SpeculativeSimTest, MonotoneInAcceptanceAndK) {
  const ModelSpec& llama = model_by_key("llama3");
  const ModelSpec& phi2 = model_by_key("phi2");
  double prev = 0.0;
  for (double a : {0.3, 0.5, 0.7, 0.9}) {
    const auto e = estimate_speculative_speedup(llama, DType::kF16, phi2, DType::kF16, 4, a);
    EXPECT_GT(e.speedup, prev);
    prev = e.speedup;
  }
}

TEST(SpeculativeSimTest, HighAcceptanceBigTargetWins) {
  // Phi-2 drafting for Mistral-24B at 90% acceptance: clearly > 1.5x.
  const auto e = estimate_speculative_speedup(model_by_key("mistral"), DType::kF16,
                                              model_by_key("phi2"), DType::kF16, 4, 0.9);
  EXPECT_GT(e.speedup, 1.5);
  EXPECT_LT(e.speedup, 5.0);
  EXPECT_LT(e.draft_share, 0.5);
}

TEST(SpeculativeSimTest, ZeroAcceptanceIsALoss) {
  const auto e = estimate_speculative_speedup(model_by_key("llama3"), DType::kF16,
                                              model_by_key("phi2"), DType::kF16, 4, 0.0);
  EXPECT_LT(e.speedup, 1.0);
}

TEST(SpeculativeSimTest, SelfDraftNeverHelps) {
  // Draft as big as the target: even perfect acceptance cannot beat the
  // drafting cost by much, and low acceptance is a disaster.
  const ModelSpec& llama = model_by_key("llama3");
  const auto perfect =
      estimate_speculative_speedup(llama, DType::kF16, llama, DType::kF16, 4, 1.0);
  EXPECT_LT(perfect.speedup, 1.3);
}

TEST(SpeculativeSimTest, VerificationNearlyFreeWhenWeightBound) {
  // The key device property: verifying 5 positions costs < 1.6x one step.
  const ModelSpec& llama = model_by_key("llama3");
  const auto e = estimate_speculative_speedup(llama, DType::kF16, model_by_key("phi2"),
                                              DType::kF16, 4, 0.8);
  const double verify_over_step = (e.round_cost_s * (1.0 - e.draft_share)) / e.baseline_step_s;
  EXPECT_LT(verify_over_step, 1.6);
}

}  // namespace
}  // namespace orinsim::sim
