#include "sim/memory_model.h"

#include <gtest/gtest.h>

namespace orinsim::sim {
namespace {

class MemoryModelTest : public ::testing::Test {
 protected:
  MemoryModel mm_;
};

TEST_F(MemoryModelTest, ModelLoadOomPattern) {
  // Table 1: FP32 OOM for Mistral (94.2) and DeepQ (124); FP16 OOM for DeepQ
  // (62); everything else fits.
  EXPECT_FALSE(mm_.model_oom(model_by_key("phi2"), DType::kF32));
  EXPECT_FALSE(mm_.model_oom(model_by_key("llama3"), DType::kF32));
  EXPECT_TRUE(mm_.model_oom(model_by_key("mistral"), DType::kF32));
  EXPECT_TRUE(mm_.model_oom(model_by_key("deepseek-qwen"), DType::kF32));
  EXPECT_TRUE(mm_.model_oom(model_by_key("deepseek-qwen"), DType::kF16));
  EXPECT_FALSE(mm_.model_oom(model_by_key("deepseek-qwen"), DType::kI8));
  EXPECT_FALSE(mm_.model_oom(model_by_key("mistral"), DType::kF16));
}

TEST_F(MemoryModelTest, IncrementalGrowsWithBatch) {
  const ModelSpec& m = model_by_key("llama3");
  double prev = 0.0;
  for (std::size_t bs : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const MemoryBreakdown mem = mm_.workload_memory(m, DType::kF16, bs, 32, 64);
    EXPECT_GT(mem.incremental_gb(), prev);
    prev = mem.incremental_gb();
  }
}

TEST_F(MemoryModelTest, IncrementalGrowsWithSeqLen) {
  const ModelSpec& m = model_by_key("llama3");
  double prev = 0.0;
  for (std::size_t sl : {128, 256, 512, 1024}) {
    const MemoryBreakdown mem =
        mm_.workload_memory(m, DType::kF16, 32, sl / 4, sl * 3 / 4);
    EXPECT_GT(mem.incremental_gb(), prev);
    prev = mem.incremental_gb();
  }
}

TEST_F(MemoryModelTest, Phi2OomAtLongSequences) {
  // Table 6: Phi-2 (bs=32) runs at sl=128/256 but OOMs at sl=512/1024
  // because eager attention materializes per-layer fp32 score tensors.
  const ModelSpec& phi2 = model_by_key("phi2");
  EXPECT_FALSE(
      mm_.workload_oom(mm_.workload_memory(phi2, DType::kF16, 32, 32, 96)));
  EXPECT_FALSE(
      mm_.workload_oom(mm_.workload_memory(phi2, DType::kF16, 32, 64, 192)));
  EXPECT_TRUE(
      mm_.workload_oom(mm_.workload_memory(phi2, DType::kF16, 32, 128, 384)));
  EXPECT_TRUE(
      mm_.workload_oom(mm_.workload_memory(phi2, DType::kF16, 32, 256, 768)));
}

TEST_F(MemoryModelTest, OtherModelsSurviveLongSequences) {
  for (const char* key : {"llama3", "mistral"}) {
    const MemoryBreakdown mem =
        mm_.workload_memory(model_by_key(key), DType::kF16, 32, 256, 768);
    EXPECT_FALSE(mm_.workload_oom(mem)) << key;
  }
  const MemoryBreakdown deepq =
      mm_.workload_memory(model_by_key("deepseek-qwen"), DType::kI8, 32, 256, 768);
  EXPECT_FALSE(mm_.workload_oom(deepq));
}

TEST_F(MemoryModelTest, BatchSweepTotalsTrackPaperWithin30Percent) {
  // Compare simulated total RAM against Table 4 at the extremes.
  struct Case {
    const char* key;
    DType dt;
    std::size_t bs;
    double paper_gb;
  };
  const Case cases[] = {
      {"phi2", DType::kF16, 1, 6.18},     {"phi2", DType::kF16, 128, 20.53},
      {"llama3", DType::kF16, 1, 16.38},  {"llama3", DType::kF16, 128, 19.26},
      {"mistral", DType::kF16, 1, 47.33}, {"mistral", DType::kF16, 128, 50.08},
      {"deepseek-qwen", DType::kI8, 1, 34.82},
      {"deepseek-qwen", DType::kI8, 128, 44.35},
  };
  for (const auto& c : cases) {
    const MemoryBreakdown mem =
        mm_.workload_memory(model_by_key(c.key), c.dt, c.bs, 32, 64);
    EXPECT_NEAR(mem.total_gb() / c.paper_gb, 1.0, 0.30)
        << c.key << " bs=" << c.bs << ": sim " << mem.total_gb() << " vs paper "
        << c.paper_gb;
  }
}

TEST_F(MemoryModelTest, KvCacheComponentLinearInBatchAndSeq) {
  const ModelSpec& m = model_by_key("llama3");
  const auto a = mm_.workload_memory(m, DType::kF16, 16, 32, 64);
  const auto b = mm_.workload_memory(m, DType::kF16, 32, 32, 64);
  EXPECT_NEAR(b.kv_gb / a.kv_gb, 2.0, 1e-9);
  const auto c = mm_.workload_memory(m, DType::kF16, 16, 64, 128);
  EXPECT_NEAR(c.kv_gb / a.kv_gb, 2.0, 1e-9);
}

TEST_F(MemoryModelTest, BreakdownComponentsSumToTotal) {
  const ModelSpec& m = model_by_key("mistral");
  const MemoryBreakdown mem = mm_.workload_memory(m, DType::kI8, 32, 32, 64);
  EXPECT_NEAR(mem.total_gb(),
              mem.weights_gb + mem.kv_gb + mem.attn_quad_gb + mem.logits_gb +
                  mem.act_gb + mem.fixed_gb,
              1e-12);
}

}  // namespace
}  // namespace orinsim::sim
