// Power mode advisor: for a model + workload, rank the paper's nine power
// modes under three objectives — fastest, lowest power draw (thermal/supply
// constrained deployments), and lowest energy per token (battery
// deployments). Reproduces §3.4's operational guidance: PM-A-like modes for
// energy, PM-B/H only under hard power caps, never PM-H for energy.
//
// --cap-w adds the §3.4 power-cap question: among modes whose median draw
// fits under the board budget, which is fastest? This is the mode a serving
// power governor should settle on (the engine's governor walks the
// MaxN -> A -> B GPU-frequency ladder toward exactly this answer).
//
// Run: ./power_mode_advisor [--model=llama3] [--batch=32] [--objective=all]
//                           [--cap-w=0]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/cli.h"
#include "core/table.h"
#include "sim/inference_sim.h"

using namespace orinsim;
using namespace orinsim::sim;

namespace {

struct ModeResult {
  PowerMode mode;
  SimResult result;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const auto batch = static_cast<std::size_t>(args.get_int("batch", 32));
  const ModelSpec& spec = model_by_key(model);

  std::printf("Power-mode advisor: %s (%s), bs=%zu, sl=96 on Orin AGX 64GB\n\n",
              spec.display.c_str(), dtype_name(spec.default_dtype).c_str(), batch);

  InferenceSim sim;
  std::vector<ModeResult> results;
  for (const auto& pm : all_power_modes()) {
    SimRequest rq;
    rq.model_key = model;
    rq.dtype = spec.default_dtype;
    rq.batch = batch;
    rq.power_mode = pm;
    const SimResult r = sim.run(rq);
    if (!r.oom) results.push_back({pm, r});
  }

  Table table({"Mode", "Latency (s)", "Throughput (tok/s)", "Power (W)", "Energy (J)",
               "J per token"});
  for (const auto& mr : results) {
    const double tokens = static_cast<double>(batch) * 96.0;
    table.new_row()
        .add_cell(mr.mode.name)
        .add_number(mr.result.latency_s, 2)
        .add_number(mr.result.throughput_tps, 1)
        .add_number(mr.result.median_power_w, 1)
        .add_number(mr.result.energy_j, 0)
        .add_number(mr.result.energy_j / tokens, 2);
  }
  std::fputs(table.to_markdown().c_str(), stdout);

  auto best = [&](auto key) {
    return *std::min_element(results.begin(), results.end(),
                             [&](const ModeResult& a, const ModeResult& b) {
                               return key(a.result) < key(b.result);
                             });
  };
  const ModeResult fastest = best([](const SimResult& r) { return r.latency_s; });
  const ModeResult coolest = best([](const SimResult& r) { return r.median_power_w; });
  const ModeResult frugal = best([](const SimResult& r) { return r.energy_j; });

  std::printf("\nRecommendations:\n");
  std::printf("  latency-critical : %-5s (%.2f s)\n", fastest.mode.name.c_str(),
              fastest.result.latency_s);
  std::printf("  power-capped     : %-5s (%.1f W median draw)\n",
              coolest.mode.name.c_str(), coolest.result.median_power_w);
  std::printf("  battery/energy   : %-5s (%.0f J per batch)\n", frugal.mode.name.c_str(),
              frugal.result.energy_j);
  const double cap_w = args.get_double("cap-w", 0.0);
  if (cap_w > 0.0) {
    const ModeResult* capped = nullptr;
    for (const auto& mr : results) {
      if (mr.result.median_power_w > cap_w) continue;
      if (capped == nullptr || mr.result.latency_s < capped->result.latency_s) {
        capped = &mr;
      }
    }
    if (capped != nullptr) {
      std::printf("  under %.0f W cap  : %-5s (%.1f W, %.2f s)\n", cap_w,
                  capped->mode.name.c_str(), capped->result.median_power_w,
                  capped->result.latency_s);
      std::printf("\nA serving governor capped at %.0f W should settle on %s: the\n", cap_w,
                  capped->mode.name.c_str());
      std::printf("fastest mode whose sustained draw fits the budget.\n");
    } else {
      std::printf("  under %.0f W cap  : none  (no mode's median draw fits; a governor\n",
                  cap_w);
      std::printf("                     must shrink the batch via admission deferral)\n");
    }
  }

  std::printf("\nPer the paper (section 3.4): down-clocking the GPU moderately (PM-A)\n");
  std::printf("saves energy, down-clocking it hard (PM-B) or starving memory (PM-H)\n");
  std::printf("only helps under instantaneous power caps and wastes energy overall.\n");
  return 0;
}
