// Quantization explorer: the memory-latency-accuracy-energy trade-off in one
// view. For a chosen model it combines
//   - the simulator's device-level costs (RAM, latency, power, energy), and
//   - the functional engine's *measured* quantization error and perplexity
//     degradation on a real nano-scale model of the same family,
// so a user can pick the precision for their deployment the way §3.3 of the
// paper frames it.
//
// Run: ./quantization_explorer [--model=llama3] [--train-tokens=12000]
#include <cmath>
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "eval/perplexity.h"
#include "quant/quantize.h"
#include "sim/inference_sim.h"
#include "tokenizer/tokenizer.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"

using namespace orinsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model_key = args.get("model", "llama3");
  const auto train_tokens = static_cast<std::size_t>(args.get_int("train-tokens", 12000));
  const sim::ModelSpec& spec = sim::model_by_key(model_key);

  std::printf("Quantization explorer: %s on Orin AGX (bs=32, sl=96, MaxN)\n",
              spec.display.c_str());
  std::printf("Functional accuracy measured on a trained %s-family nano model.\n\n",
              model_key.c_str());

  // Device-level costs from the simulator.
  sim::InferenceSim device_sim;

  // Functional accuracy from the real engine.
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 600);
  const auto tokens = tokenizer.encode(corpus.text);
  auto master = MasterWeights::init_random(
      make_nano_config(model_key, tokenizer.vocab_size()), 31337);
  train::TrainConfig tc;
  tc.epochs = 4;
  tc.max_tokens = train_tokens;
  train::train_readout(*master, tokens, tc);
  std::vector<TokenId> eval_slice(tokens.begin() + 4000, tokens.begin() + 8000);
  eval::PerplexityConfig pc;
  pc.window = 384;
  pc.stride = 192;
  pc.max_tokens = 400;

  Table table({"Precision", "Weights (GB)", "Latency (s)", "Power (W)", "Energy (J)",
               "nano weight RMSE", "nano perplexity"});
  double ppl_f32 = 0.0;
  for (DType dt : kAllDTypes) {
    table.new_row().add_cell(dtype_name(dt));

    sim::SimRequest rq;
    rq.model_key = model_key;
    rq.dtype = dt;
    const sim::SimResult device = device_sim.run(rq);
    if (device.oom) {
      table.add_cell(format_double(spec.weight_gb(dt), 1) + " (OOM)");
      table.add_oom().add_oom().add_oom();
    } else {
      table.add_number(spec.weight_gb(dt), 1)
          .add_number(device.latency_s, 2)
          .add_number(device.median_power_w, 1)
          .add_number(device.energy_j, 0);
    }

    // Weight reconstruction error on one representative nano matrix.
    const auto& source = master->layers[0].w_gate;
    const auto wm = quant::WeightMatrix::create(
        source, master->config.d_ff, master->config.d_model, dt);
    std::vector<float> rec(source.size());
    for (std::size_t r = 0; r < master->config.d_ff; ++r) {
      wm.dequantize_row(r, std::span<float>(rec.data() + r * master->config.d_model,
                                            master->config.d_model));
    }
    const auto err = quant::measure_error(source, rec);
    table.add_cell(format_double(err.rmse * 1e3, 2) + "e-3");

    Model nano(master, dt);
    const double ppl = eval::evaluate_perplexity(nano, eval_slice, pc).perplexity;
    if (dt == DType::kF32) ppl_f32 = ppl;
    table.add_cell(format_double(ppl, 1) + " (" +
                   format_double((ppl / ppl_f32 - 1.0) * 100.0, 1) + "% vs FP32)");
  }
  std::fputs(table.to_markdown().c_str(), stdout);

  std::printf("\nReading the table the paper's way (section 3.3):\n");
  std::printf("  - INT8 halves memory but costs latency on this class of device;\n");
  std::printf("  - accuracy loss is marginal at INT8, sharper at INT4;\n");
  std::printf("  - FP16 is usually the energy sweet spot when it fits.\n");
  return 0;
}
