// Edge serving planner: given a model, a request arrival rate and a latency
// SLO, find the max-batch setting that meets the SLO at the lowest energy —
// the operational version of the paper's §3.1 batch-size trade-off.
//
// Run: ./edge_serving_planner [--model=llama3] [--rps=2.0] [--slo-s=30]
//                             [--requests=96] [--dtype=fp16]
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "serving/batch_scheduler.h"

using namespace orinsim;
using namespace orinsim::serving;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const DType dtype = parse_dtype(args.get("dtype", "fp16"));
  const double rps = args.get_double("rps", 2.0);
  const double slo_s = args.get_double("slo-s", 30.0);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 96));

  std::printf("Planning %s (%s) on Orin AGX: %.1f req/s arrivals, p95 SLO %.0f s\n\n",
              model.c_str(), dtype_name(dtype).c_str(), rps, slo_s);

  SimSession session(model, dtype, workload::Dataset::kWikiText2);
  Table table({"max batch", "batches", "mean occupancy", "p95 latency (s)",
               "achieved req/s", "energy/request (J)", "meets SLO"});
  std::size_t best_batch = 0;
  double best_energy = 1e99;
  for (std::size_t max_batch : {1, 2, 4, 8, 16, 32, 64}) {
    SchedulerConfig config;
    config.max_batch = max_batch;
    config.arrival_rate_rps = rps;
    config.total_requests = requests;
    const ScheduleResult r = simulate_serving(session, config);
    const double energy_per_req =
        r.total_energy_j / static_cast<double>(r.requests.size());
    const bool meets = r.p95_latency_s() <= slo_s;
    table.new_row()
        .add_cell(std::to_string(max_batch))
        .add_cell(std::to_string(r.batches_run))
        .add_number(r.mean_batch_occupancy, 1)
        .add_number(r.p95_latency_s(), 1)
        .add_number(r.achieved_rps(), 2)
        .add_number(energy_per_req, 0)
        .add_cell(meets ? "yes" : "no");
    if (meets && energy_per_req < best_energy) {
      best_energy = energy_per_req;
      best_batch = max_batch;
    }
  }
  std::fputs(table.to_markdown().c_str(), stdout);

  if (best_batch == 0) {
    std::printf("\nNo max-batch setting meets the SLO at %.1f req/s. Lower the arrival\n",
                rps);
    std::printf("rate, relax the SLO, or use a smaller/more quantized model.\n");
    return 1;
  }
  std::printf("\nRecommendation: max batch %zu (%.0f J/request within the %.0f s SLO).\n",
              best_batch, best_energy, slo_s);
  std::printf("The paper's trade-off in action: larger batches raise throughput but\n");
  std::printf("delay each request's time-to-last-token (section 3.1).\n");
  return 0;
}
