// Edge serving planner: given a model, a request arrival rate and a latency
// SLO, find the cheapest setting that meets the SLO — the operational
// version of the paper's §3.1 batch-size trade-off.
//
// Two scheduling policies, selected with --policy:
//  - static (default): the paper's regime. Sweep max-batch; each batch runs
//    to completion before the next launches.
//  - continuous: token-level admit/retire (Orca/vLLM style) on the same
//    hardware model. Sweep max concurrency; requests join and leave the
//    running batch at decode-step granularity.
//
// The continuous path runs through the unified serving engine, so every row
// also reports per-request energy attribution (J/request and J/token summed
// off the event stream, conserving the timeline total). --power-cap-w puts
// the engine's power governor in the loop: when a step exceeds the cap the
// governor walks the Table 2 GPU-frequency ladder (MaxN -> A -> B) and the
// step-down count shows up as its own column.
//
// --prefix-cache switches to the functional nano engine under chat-style
// traffic (Zipfian shared system prompts + per-user suffixes) and compares
// a run with the cross-request prefix cache against the same run without:
// hit rate, prefill tokens skipped, and the TTFT relief cache hits deliver.
//
// --speculative switches to the functional nano engine and compares plain
// greedy serving against speculative draft/verify serving (same master as
// the target, quantized to INT8, proposing 4 tokens per round): acceptance
// rate, tokens per verification round, and the target-pass reduction.
// Kernels are forced scalar so the two token streams must be bit-identical
// (the speculative contract).
//
// Run: ./edge_serving_planner [--model=llama3] [--rps=2.0] [--slo-s=30]
//                             [--requests=96] [--dtype=fp16]
//                             [--policy=static|continuous] [--power-cap-w=0]
//                             [--prefix-cache] [--speculative]
#include <cstdio>
#include <vector>

#include "core/cli.h"
#include "core/stats.h"
#include "core/table.h"
#include "core/units.h"
#include "serving/batch_scheduler.h"
#include "serving/continuous_batching.h"
#include "serving/engine.h"
#include "serving/serving_device.h"
#include "tensor/simd.h"
#include "workload/corpus.h"

using namespace orinsim;
using namespace orinsim::serving;

namespace {

int plan_static(const std::string& model, DType dtype, double rps, double slo_s,
                std::size_t requests) {
  SimSession session(model, dtype, workload::Dataset::kWikiText2);
  Table table({"max batch", "batches", "mean occupancy", "p95 latency (s)",
               "achieved req/s", "energy/request (J)", "meets SLO"});
  std::size_t best_batch = 0;
  double best_energy = 1e99;
  for (std::size_t max_batch : {1, 2, 4, 8, 16, 32, 64}) {
    SchedulerConfig config;
    config.max_batch = max_batch;
    config.arrivals.rate_rps = rps;
    config.arrivals.total_requests = requests;
    const ScheduleResult r = simulate_serving(session, config);
    const double energy_per_req =
        r.total_energy_j / static_cast<double>(r.requests.size());
    const bool meets = r.p95_latency_s() <= slo_s;
    table.new_row()
        .add_cell(std::to_string(max_batch))
        .add_cell(std::to_string(r.batches_run))
        .add_number(r.mean_batch_occupancy, 1)
        .add_number(r.p95_latency_s(), 1)
        .add_number(r.achieved_rps(), 2)
        .add_number(energy_per_req, 0)
        .add_cell(meets ? "yes" : "no");
    if (meets && energy_per_req < best_energy) {
      best_energy = energy_per_req;
      best_batch = max_batch;
    }
  }
  std::fputs(table.to_markdown().c_str(), stdout);

  if (best_batch == 0) {
    std::printf("\nNo max-batch setting meets the SLO at %.1f req/s. Lower the arrival\n",
                rps);
    std::printf("rate, relax the SLO, or use a smaller/more quantized model.\n");
    return 1;
  }
  std::printf("\nRecommendation: max batch %zu (%.0f J/request within the %.0f s SLO).\n",
              best_batch, best_energy, slo_s);
  std::printf("The paper's trade-off in action: larger batches raise throughput but\n");
  std::printf("delay each request's time-to-last-token (section 3.1).\n");
  return 0;
}

int plan_continuous(const std::string& model, DType dtype, double rps, double slo_s,
                    std::size_t requests, double power_cap_w) {
  Table table({"concurrency", "mean active", "p95 latency (s)", "achieved req/s",
               "J/request", "J/token", "step-downs", "meets SLO"});
  std::size_t best_cap = 0;
  double best_energy = 1e99;
  const sim::InferenceSim sim;
  const sim::ModelSpec& spec = sim::model_by_key(model);
  const workload::SeqConfig seq = workload::seq_config_default();
  for (std::size_t cap : {1, 2, 4, 8, 16, 32, 64}) {
    // Memory gate: steady state is `cap` sequences at full length.
    const sim::MemoryBreakdown mem =
        sim.memory_model().workload_memory(spec, dtype, cap, seq.input, seq.output);
    if (sim.memory_model().workload_oom(mem) || sim.memory_model().model_oom(spec, dtype)) {
      table.new_row()
          .add_cell(std::to_string(cap))
          .add_cell("-")
          .add_cell("-")
          .add_cell("-")
          .add_cell("-")
          .add_cell("-")
          .add_cell("-")
          .add_cell("OOM");
      continue;  // this concurrency does not fit in device memory
    }
    ServingDevice::SimConfig dc;
    dc.model_key = model;
    dc.dtype = dtype;
    dc.max_concurrency = cap;
    dc.seq = seq;
    dc.governor.power_cap_w = power_cap_w;  // 0 leaves the governor off
    ServingDevice device(dc);
    workload::ArrivalConfig arrivals;
    arrivals.rate_rps = rps;
    arrivals.total_requests = requests;
    std::vector<Request> stream;
    for (double t : arrivals.generate()) {
      Request rq;
      rq.id = stream.size();
      rq.arrival_s = t;
      rq.prompt_tokens = seq.input;
      rq.max_new_tokens = seq.output;
      stream.push_back(rq);
    }
    const EngineResult r = device.run(std::move(stream));
    // Energy columns come from per-request attribution off the event stream
    // (their sum conserves the timeline total by construction).
    const double energy_per_req = r.energy_per_request_j();
    const double achieved_rps =
        r.makespan_s > 0.0 ? static_cast<double>(r.latencies_s.size()) / r.makespan_s
                           : 0.0;
    const bool meets = r.p95_latency_s() <= slo_s;
    table.new_row()
        .add_cell(std::to_string(cap))
        .add_number(r.mean_active, 1)
        .add_number(r.p95_latency_s(), 1)
        .add_number(achieved_rps, 2)
        .add_number(energy_per_req, 0)
        .add_number(r.energy_per_token_j(), 2)
        .add_cell(std::to_string(r.governor_step_downs))
        .add_cell(meets ? "yes" : "no");
    if (meets && energy_per_req < best_energy) {
      best_energy = energy_per_req;
      best_cap = cap;
    }
  }
  std::fputs(table.to_markdown().c_str(), stdout);
  if (power_cap_w > 0.0) {
    std::printf("\nGovernor active: steps exceeding %.0f W walk the GPU-frequency\n",
                power_cap_w);
    std::printf("ladder (MaxN -> A -> B); at the ladder floor admissions defer until\n");
    std::printf("the batch shrinks under the cap.\n");
  }

  if (best_cap == 0) {
    std::printf("\nNo concurrency cap meets the SLO at %.1f req/s. Lower the arrival\n",
                rps);
    std::printf("rate, relax the SLO, or use a smaller/more quantized model.\n");
    return 1;
  }
  std::printf("\nRecommendation: max concurrency %zu (%.0f J/request within the %.0f s SLO).\n",
              best_cap, best_energy, slo_s);
  std::printf("Token-level admission retires each request at its own last token, so\n");
  std::printf("early finishers never wait out a batch — the \"dedicated inference\n");
  std::printf("engine\" step the paper's conclusion points to.\n");
  return 0;
}

// Chat traffic on the functional nano engine, prefix cache off vs on. The
// planner question this answers: how much TTFT does KV reuse buy when a few
// system prompts dominate the arrival stream (the chat-serving common case)?
int plan_prefix_cache(std::size_t requests) {
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 400);
  const workload::PromptPool pool(corpus, tokenizer, 256);
  auto master = MasterWeights::init_random(
      make_nano_config("llama3", tokenizer.vocab_size()), 7);

  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;  // flooded: TTFT is pure prefill time
  cfg.arrivals.total_requests = requests;
  cfg.seq = workload::SeqConfig{288, 256, 32};
  cfg.max_concurrency = 1;  // one lane: every admission is its own prefill
  cfg.kv_blocks = 128;      // the lane plus all cached system-prompt chains
  cfg.chat.system_prompts = 4;
  cfg.chat.zipf_s = 1.1;
  cfg.chat.system_tokens = 224;
  cfg.chat.user_tokens = 32;

  const EngineResult off = run_functional_continuous(master, DType::kF32, pool, cfg);
  cfg.prefix_cache = true;
  const EngineResult on = run_functional_continuous(master, DType::kF32, pool, cfg);

  // TTFT per request: first admission to the end of its prefill wave.
  const auto ttfts = [](const EngineResult& r) {
    std::vector<double> out(r.requests.size(), 0.0);
    std::vector<bool> seen(r.requests.size(), false);
    for (const trace::RequestEvent& ev : r.timeline.request_events()) {
      if (ev.kind != trace::RequestEventKind::kAdmit || seen[ev.request_id]) continue;
      seen[ev.request_id] = true;
      for (const trace::StepEvent& step : r.timeline.events()) {
        if (step.phase == trace::Phase::kPrefill && step.t_start_s >= ev.t_s - 1e-12) {
          out[ev.request_id] = step.t_end_s() - ev.t_s;
          break;
        }
      }
    }
    return out;
  };
  const std::vector<double> ttft_off = ttfts(off);
  const std::vector<double> ttft_on = ttfts(on);

  const auto& pc = on.prefix_cache;
  Table table({"Engine", "hit rate", "tokens skipped", "TTFT p50 (ms)",
               "TTFT p95 (ms)", "p95 latency (s)"});
  table.new_row()
      .add_cell("cache off")
      .add_cell("-")
      .add_cell("0")
      .add_number(1e3 * percentile(ttft_off, 50.0), 3)
      .add_number(1e3 * percentile(ttft_off, 95.0), 3)
      .add_number(off.p95_latency_s(), 3);
  table.new_row()
      .add_cell("cache on")
      .add_cell(format_double(100.0 * pc.hit_rate(), 1) + " %")
      .add_cell(std::to_string(pc.hit_tokens))
      .add_number(1e3 * percentile(ttft_on, 50.0), 3)
      .add_number(1e3 * percentile(ttft_on, 95.0), 3)
      .add_number(on.p95_latency_s(), 3);
  std::fputs(table.to_markdown().c_str(), stdout);

  bool identical = on.requests.size() == off.requests.size();
  for (std::size_t i = 0; identical && i < on.requests.size(); ++i) {
    identical = on.requests[i].output == off.requests[i].output;
  }
  std::printf("\nToken streams %s across the two runs (the cache only skips\n",
              identical ? "are bit-identical" : "DIVERGED");
  std::printf("prefill work it can replay exactly; it never changes a token).\n");
  std::printf("%zu of %zu admissions reused a cached system prompt, skipping %zu\n",
              pc.hits, pc.lookups, pc.hit_tokens);
  std::printf("prefill tokens (%zu KV bytes not recomputed).\n", pc.bytes_saved);
  return identical && pc.hits > 0 ? 0 : 1;
}

// Plain vs speculative serving on the functional nano engine. The planner
// question: how many target passes does a cheap draft save, and does the
// stream stay exactly greedy? Scalar kernels make the comparison exact —
// any divergence is a bug, not a rounding artifact.
int plan_speculative(std::size_t requests) {
  const simd::Level prev = simd::active_level();
  simd::set_level(simd::Level::kScalar);

  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 400);
  const workload::PromptPool pool(corpus, tokenizer, 256);
  auto master = MasterWeights::init_random(
      make_nano_config("llama3", tokenizer.vocab_size()), 7);

  FunctionalEngineConfig cfg;
  cfg.arrivals.kind = workload::ArrivalKind::kPoisson;
  cfg.arrivals.rate_rps = 1000.0;  // flooded: pure decode throughput
  cfg.arrivals.total_requests = requests;
  cfg.seq = workload::SeqConfig{96, 32, 64};  // the paper's default split
  cfg.max_concurrency = 2;

  const EngineResult plain = run_functional_continuous(master, DType::kF32, pool, cfg);
  cfg.speculation.enabled = true;
  cfg.speculation.draft_tokens = 4;
  cfg.speculation.draft_dtype = DType::kI8;
  const EngineResult spec = run_functional_continuous(master, DType::kF32, pool, cfg);
  simd::set_level(prev);

  const auto generated = [](const EngineResult& r) {
    std::size_t n = 0;
    for (const Request& rq : r.requests) n += rq.output.size();
    return n;
  };
  Table table({"Engine", "tokens", "target passes", "acceptance",
               "tokens/round", "p95 latency (s)"});
  table.new_row()
      .add_cell("plain greedy")
      .add_cell(std::to_string(generated(plain)))
      .add_cell(std::to_string(plain.decode_steps))
      .add_cell("-")
      .add_cell("1.00")
      .add_number(plain.p95_latency_s(), 3);
  table.new_row()
      .add_cell("speculative")
      .add_cell(std::to_string(generated(spec)))
      .add_cell(std::to_string(spec.decode_steps))
      .add_cell(format_double(100.0 * spec.speculation.acceptance_rate(), 1) + " %")
      .add_number(spec.speculation.tokens_per_round(), 2)
      .add_number(spec.p95_latency_s(), 3);
  std::fputs(table.to_markdown().c_str(), stdout);

  bool identical = spec.requests.size() == plain.requests.size();
  for (std::size_t i = 0; identical && i < spec.requests.size(); ++i) {
    identical = spec.requests[i].output == plain.requests[i].output;
  }
  std::printf("\nToken streams %s across the two runs (speculation only skips\n",
              identical ? "are bit-identical" : "DIVERGED");
  std::printf("target passes whose outcome the draft already produced; it never\n");
  std::printf("changes a token).\n");
  std::printf("%zu rounds verified %zu proposals, accepted %zu, emitted %zu tokens\n",
              spec.speculation.rounds, spec.speculation.proposed,
              spec.speculation.accepted, spec.speculation.emitted);
  std::printf("in %zu target passes (plain greedy needed %zu).\n", spec.decode_steps,
              plain.decode_steps);
  return identical && spec.decode_steps < plain.decode_steps ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const DType dtype = parse_dtype(args.get("dtype", "fp16"));
  const double rps = args.get_double("rps", 2.0);
  const double slo_s = args.get_double("slo-s", 30.0);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 96));
  const std::string policy = args.get("policy", "static");
  const double power_cap_w = args.get_double("power-cap-w", 0.0);

  if (args.get_bool("speculative", false)) {
    std::printf("Speculative planning: functional nano engine, plain vs draft/verify, "
                "%zu requests\n\n",
                std::min<std::size_t>(requests, 12));
    return plan_speculative(std::min<std::size_t>(requests, 12));
  }
  if (args.get_bool("prefix-cache", false)) {
    std::printf("Prefix-cache planning: functional nano engine, chat traffic, "
                "%zu requests\n\n",
                std::min<std::size_t>(requests, 16));
    return plan_prefix_cache(std::min<std::size_t>(requests, 16));
  }

  std::printf("Planning %s (%s) on Orin AGX: %.1f req/s arrivals, p95 SLO %.0f s, %s batching\n\n",
              model.c_str(), dtype_name(dtype).c_str(), rps, slo_s, policy.c_str());

  if (policy == "continuous") {
    return plan_continuous(model, dtype, rps, slo_s, requests, power_cap_w);
  }
  if (policy == "static") return plan_static(model, dtype, rps, slo_s, requests);
  std::printf("Unknown --policy=%s (expected static or continuous)\n", policy.c_str());
  return 2;
}
