// Deployment report: the capstone example — everything the library knows
// about putting one model into production on a Jetson, in one page.
// Composes the device catalog (where does it fit), the Pareto optimizer
// (how to configure it), the thermal model (can the enclosure sustain it),
// and the DLA/offload estimates (what to do with the leftover silicon).
//
// Run: ./deployment_report [--model=llama3] [--fanless]
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "core/units.h"
#include "harness/pareto.h"
#include "sim/device_catalog.h"
#include "sim/dla.h"
#include "sim/thermal.h"

using namespace orinsim;
using namespace orinsim::sim;
using namespace orinsim::harness;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const bool fanless = args.get_bool("fanless", false);
  const ModelSpec& spec = model_by_key(model);

  std::printf("================ DEPLOYMENT REPORT: %s ================\n\n",
              spec.display.c_str());

  // 1. Where does it fit?
  std::printf("[1] Device fit (largest precision whose weights + default workload fit)\n");
  for (const auto& dev : device_catalog()) {
    const MemoryModel mm(dev.spec);
    std::string fit = "does not fit";
    for (DType dt : kAllDTypes) {
      const auto mem = mm.workload_memory(spec, dt, 32, 32, 64);
      if (!mm.model_oom(spec, dt) && !mm.workload_oom(mem)) {
        fit = dtype_name(dt) + " (" + format_double(mem.total_gb(), 1) + " GB of " +
              format_double(mm.usable_gb(), 1) + " usable)";
        break;
      }
    }
    std::printf("    %-32s %s\n", dev.spec.name.c_str(), fit.c_str());
  }

  // 2. How to configure it on the paper's device.
  std::printf("\n[2] Recommended configurations (Orin AGX 64GB, sl=96)\n");
  ParetoOptions options;
  options.model_key = model;
  const auto points = enumerate_configs(options);
  if (points.empty()) {
    std::printf("    model does not run on this device at any precision\n");
    return 1;
  }
  Constraints none;
  const auto fastest = best_config(points, none, Objective::kLatencyPerToken);
  const auto frugal = best_config(points, none, Objective::kEnergyPerToken);
  Constraints cap30;
  cap30.max_power_w = 30.0;
  const auto capped = best_config(points, cap30, Objective::kThroughput);
  std::printf("    fastest        : %-28s %.2f ms/token\n", fastest->label().c_str(),
              fastest->latency_per_token_ms);
  std::printf("    lowest energy  : %-28s %.3f J/token\n", frugal->label().c_str(),
              frugal->energy_per_token_j);
  if (capped) {
    std::printf("    under 30 W cap : %-28s %.1f tok/s\n", capped->label().c_str(),
                capped->throughput_tps);
  }

  // 3. Thermal sustainability of the fastest configuration.
  std::printf("\n[3] Thermal check (%s, long-sequence workload sl=1024)\n",
              fanless ? "fanless enclosure" : "devkit fan");
  {
    SimRequest rq;
    rq.model_key = model;
    rq.dtype = spec.default_dtype;
    rq.in_tokens = 256;
    rq.out_tokens = 768;
    const ThermalParams params =
        fanless ? ThermalParams::fanless_enclosure() : ThermalParams::devkit_fan();
    const ThermalRunResult t = simulate_with_thermals(rq, params);
    std::printf("    peak junction %.1f C, throttled %.0f%% of decode, latency x%.2f\n",
                t.peak_temp_c, t.throttled_fraction * 100.0,
                t.latency_s / t.ideal_latency_s);
    if (t.throttled_fraction > 0.1) {
      std::printf("    -> consider PM-A or better cooling for sustained load\n");
    }
  }

  // 4. Leftover silicon: a DLA-hosted assistant.
  std::printf("\n[4] DLA co-execution (Phi-2 INT8 on one NVDLA core)\n");
  {
    const DlaCoExecution d = estimate_dla_coexecution(spec, spec.default_dtype,
                                                      model_by_key("phi2"));
    std::printf("    side-channel assistant: %.1f tok/s for %.1f W extra,\n", d.dla_tps,
                d.added_power_w);
    std::printf("    costing the main model %.1f%% throughput (DRAM contention)\n",
                d.gpu_degradation * 100.0);
  }

  std::printf("\nAll numbers from the calibrated Orin AGX simulator; see\n");
  std::printf("EXPERIMENTS.md for its validation against the paper.\n");
  return 0;
}
