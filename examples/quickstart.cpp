// Quickstart: the two faces of orinsim in ~60 lines.
//
//  1. Functional engine: build a nano Llama-style model over a synthetic
//     corpus, train its readout, and generate real text on the CPU.
//  2. Orin simulator: estimate what serving the real Llama-3.1-8B at this
//     workload would cost on a Jetson Orin AGX 64GB — latency, throughput,
//     memory, power, and energy.
//
// Run: ./quickstart [--batch=32] [--power-mode=MaxN]
#include <cstdio>

#include "core/cli.h"
#include "sim/inference_sim.h"
#include "tokenizer/tokenizer.h"
#include "train/readout_trainer.h"
#include "workload/corpus.h"
#include "workload/prompt_pool.h"

using namespace orinsim;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  // ---- 1. Functional engine -------------------------------------------
  std::printf("[1/2] building and training a nano Llama on a synthetic corpus...\n");
  const workload::Corpus corpus =
      workload::generate_corpus(workload::CorpusSpec::wikitext2());
  const Tokenizer tokenizer = Tokenizer::train(corpus.text, 600);
  const auto tokens = tokenizer.encode(corpus.text);

  auto master =
      MasterWeights::init_random(make_nano_config("llama3", tokenizer.vocab_size()), 1);
  train::TrainConfig tc;
  tc.epochs = 3;
  tc.max_tokens = 8000;
  const auto report = train::train_readout(*master, tokens, tc);
  std::printf("      readout cross-entropy: %.2f -> %.2f nats/token\n",
              report.initial_loss, report.final_loss);

  Model model(master, DType::kF16);
  const auto prompt = tokenizer.encode(corpus.paragraphs.front().substr(0, 120));
  const auto gen = model.generate({prompt}, 24);
  std::printf("      prompt : %.60s...\n", corpus.paragraphs.front().c_str());
  std::printf("      output : %s\n", tokenizer.decode(gen.outputs[0]).c_str());

  // ---- 2. Orin AGX simulator ------------------------------------------
  std::printf("\n[2/2] simulating Llama-3.1-8B FP16 on the Jetson Orin AGX 64GB...\n");
  sim::SimRequest rq;
  rq.model_key = "llama3";
  rq.dtype = DType::kF16;
  rq.batch = static_cast<std::size_t>(args.get_int("batch", 32));
  rq.power_mode = sim::power_mode_by_name(args.get("power-mode", "MaxN"));
  const sim::InferenceSim sim;
  const sim::SimResult r = sim.run(rq);
  if (r.oom) {
    std::printf("      OOM: workload needs %.1f GB of the %.1f GB usable\n",
                r.memory.total_gb(), sim.memory_model().usable_gb());
    return 1;
  }
  std::printf("      batch %zu x (32 in + 64 out) tokens, power mode %s\n", rq.batch,
              rq.power_mode.name.c_str());
  std::printf("      latency      : %6.2f s (prefill %.2f s)\n", r.latency_s, r.prefill_s);
  std::printf("      throughput   : %6.1f tokens/s\n", r.throughput_tps);
  std::printf("      memory       : %6.2f GB total (%.2f GB over the loaded model)\n",
              r.memory.total_gb(), r.memory.incremental_gb());
  std::printf("      median power : %6.1f W\n", r.median_power_w);
  std::printf("      energy/batch : %6.0f J (%.2f mWh)\n", r.energy_j,
              r.energy_j / 3.6);
  return 0;
}
