// Fleet planner: given a rack of heterogeneous Jetsons and a diurnal
// arrival stream, which routing policy should the load balancer run? The
// multi-device counterpart of edge_serving_planner: every device is the
// paper-calibrated single-box engine (roofline + power model + governor),
// and the router steps them in lockstep virtual time, so the comparison is
// deterministic and free.
//
// Prints the four policies' goodput / latency-tail / energy trade-off, the
// per-device load split under the recommended policy, and optionally a
// merged Chrome trace (one Perfetto track per device).
//
// Run: ./fleet_planner [--big=2] [--small=4] [--rps=4] [--requests=96]
//                      [--slo-s=60] [--power-cap-w=30] [--trace-out=path.json]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/cli.h"
#include "core/table.h"
#include "fleet/router.h"

using namespace orinsim;
using namespace orinsim::fleet;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const auto big = static_cast<std::size_t>(args.get_int("big", 2));
  const auto small = static_cast<std::size_t>(args.get_int("small", 4));
  const double rps = args.get_double("rps", 4.0);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 96));
  const double slo_s = args.get_double("slo-s", 60.0);
  const double power_cap_w = args.get_double("power-cap-w", 30.0);
  const std::string trace_out = args.get("trace-out", "");

  SimFleetConfig config;
  for (std::size_t i = 0; i < big; ++i) {
    serving::ServingDevice::SimConfig dc;
    dc.device_key = "orin-agx-64";
    dc.model_key = "llama3";
    dc.max_concurrency = 8;
    dc.governor.power_cap_w = power_cap_w;
    dc.name = "orin-agx-64#" + std::to_string(i);
    config.devices.push_back(dc);
  }
  for (std::size_t i = 0; i < small; ++i) {
    serving::ServingDevice::SimConfig dc;
    dc.device_key = "orin-nano-8";
    dc.model_key = "phi2";  // llama3 does not fit the 8 GB Nano
    dc.max_concurrency = 4;
    dc.governor.power_cap_w = power_cap_w / 2.0;
    dc.name = "orin-nano-8#" + std::to_string(big + i);
    config.devices.push_back(dc);
  }
  config.arrivals.kind = workload::ArrivalKind::kDiurnal;
  config.arrivals.rate_rps = rps;
  config.arrivals.total_requests = requests;
  config.options.slo_s = slo_s;

  std::printf("Fleet of %zu Orin AGX 64 (llama3) + %zu Orin Nano 8 (phi2), diurnal "
              "arrivals\nat %.1f req/s mean, %zu requests, completion SLO %.0f s.\n\n",
              big, small, rps, requests, slo_s);

  Table table({"Policy", "Goodput (req/s)", "SLO misses", "TTFT p99 (s)",
               "Latency p99 (s)", "J/token", "Step-downs"});
  RoutePolicy best_policy = RoutePolicy::kRoundRobin;
  double best_goodput = -1.0;
  double best_energy = 1e99;
  for (RoutePolicy policy : all_route_policies()) {
    const FleetResult r = run_sim_fleet(config, policy);
    table.new_row()
        .add_cell(route_policy_name(policy))
        .add_number(r.goodput_rps, 2)
        .add_cell(std::to_string(r.slo_violations))
        .add_number(r.ttft.p99_s, 2)
        .add_number(r.latency.p99_s, 2)
        .add_number(r.energy_per_token_j, 2)
        .add_cell(std::to_string(r.governor_step_downs));
    // Best goodput wins; near-ties (within 1%) go to the lower J/token.
    const bool better = r.goodput_rps > best_goodput * 1.01 ||
                        (r.goodput_rps > best_goodput * 0.99 &&
                         r.energy_per_token_j < best_energy);
    if (better) {
      best_goodput = r.goodput_rps;
      best_energy = r.energy_per_token_j;
      best_policy = policy;
    }
  }
  std::fputs(table.to_markdown().c_str(), stdout);

  const FleetResult best = run_sim_fleet(config, best_policy);
  std::printf("\nRecommendation: %s (%.2f req/s goodput at %.2f J/token).\n",
              route_policy_name(best_policy).c_str(), best.goodput_rps,
              best.energy_per_token_j);

  Table devices({"Device", "Requests", "Busy until (s)", "Mean power (W)", "J/token"});
  std::vector<std::size_t> counts(best.devices.size(), 0);
  for (std::size_t dev : best.device_of_request) ++counts[dev];
  for (std::size_t d = 0; d < best.devices.size(); ++d) {
    const serving::EngineResult& r = best.devices[d];
    const double mean_w = r.makespan_s > 0.0 ? r.energy_j / r.makespan_s : 0.0;
    devices.new_row()
        .add_cell(best.device_names[d])
        .add_cell(std::to_string(counts[d]))
        .add_number(r.makespan_s, 1)
        .add_number(mean_w, 1)
        .add_number(r.energy_per_token_j(), 2);
  }
  std::printf("\nPer-device split under %s:\n\n", route_policy_name(best_policy).c_str());
  std::fputs(devices.to_markdown().c_str(), stdout);

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << best.to_chrome_trace_json();
    std::printf("\nMerged Chrome trace (%zu device tracks) written to %s\n",
                best.devices.size(), trace_out.c_str());
  }
  std::printf("\nThe routing layer only reorders which box serves which request —\n");
  std::printf("each device is still the paper's single-Orin engine, so per-device\n");
  std::printf("rows reproduce the single-device study under the routed sub-stream.\n");
  return 0;
}
