// Edge-cloud offload: the paper's conclusion proposes "coupling edge
// inferencing with cloud endpoints". This example serves a request stream on
// the simulated Orin AGX with overflow routed to a priced cloud endpoint,
// and sweeps the routing policies: pure edge (cheapest, privacy-preserving,
// slow under load), pure cloud (fast, costs money, every prompt leaves the
// device), and the hybrid policies in between.
//
// Run: ./edge_cloud_offload [--model=llama3] [--rps=4] [--requests=128]
//                           [--slo-s=30] [--queue-threshold=32]
#include <cstdio>

#include "core/cli.h"
#include "core/table.h"
#include "serving/offload.h"

using namespace orinsim;
using namespace orinsim::serving;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string model = args.get("model", "llama3");
  const double rps = args.get_double("rps", 4.0);
  const auto requests = static_cast<std::size_t>(args.get_int("requests", 128));

  std::printf("Edge-cloud offload: %s FP16 on Orin AGX + hosted endpoint, %.1f req/s\n\n",
              model.c_str(), rps);

  SimSession session(model, DType::kF16, workload::Dataset::kWikiText2);
  HybridConfig config;
  config.scheduler.max_batch = 32;
  config.scheduler.arrivals.rate_rps = rps;
  config.scheduler.arrivals.total_requests = requests;
  config.queue_threshold =
      static_cast<std::size_t>(args.get_int("queue-threshold", 32));
  config.latency_slo_s = args.get_double("slo-s", 30.0);

  Table table({"Policy", "Edge reqs", "Cloud reqs", "mean latency (s)", "p95 (s)",
               "Edge energy (J)", "Cloud cost ($)", "Prompts leaving device"});
  for (OffloadPolicy policy :
       {OffloadPolicy::kEdgeOnly, OffloadPolicy::kCloudOnly, OffloadPolicy::kQueueDepth,
        OffloadPolicy::kLatencyThreshold}) {
    config.policy = policy;
    const HybridResult r = simulate_hybrid(session, config);
    table.new_row()
        .add_cell(offload_policy_name(policy))
        .add_cell(std::to_string(r.edge_requests))
        .add_cell(std::to_string(r.cloud_requests))
        .add_number(r.mean_latency_s(), 2)
        .add_number(r.p95_latency_s(), 2)
        .add_number(r.edge_energy_j, 0)
        .add_number(r.cloud_cost_usd, 4)
        .add_cell(r.cloud_requests == 0 ? "none" : "yes");
  }
  std::fputs(table.to_markdown().c_str(), stdout);

  std::printf("\nThe trade the paper motivates (section 1): keeping inference on the\n");
  std::printf("edge preserves privacy and avoids per-token fees; the hybrid policies\n");
  std::printf("bound tail latency by spilling only the overflow to the cloud.\n");
  return 0;
}
