// Quantization codecs used by the study.
//
//  - RowwiseInt8: per-row absmax symmetric INT8, with optional outlier-column
//    decomposition following LLM.int8() (Dettmers et al., NeurIPS 2022): any
//    column whose magnitude anywhere exceeds `outlier_threshold` is removed
//    from the int8 matrix and kept at full FP16 precision; the matmul adds
//    the two parts. This is the codec BitsAndBytes applies in the paper.
//  - BlockInt4: per-32-element-block absmax symmetric INT4 (Q4-style),
//    two codes per byte plus an FP16 scale per block.
//
// Both codecs quantize *weights*; activations are quantized per-token inside
// the INT8 matmul (dynamic absmax), as LLM.int8() does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/fp16.h"

namespace orinsim::quant {

// Per-row absmax INT8 matrix of shape [rows, cols_kept] plus FP16 outlier
// columns. Weight layout is [out_features, in_features].
struct RowwiseInt8 {
  std::size_t rows = 0;
  std::size_t cols = 0;                  // original column count
  std::vector<std::int8_t> codes;        // [rows, cols] with outlier cols zeroed
  std::vector<float> row_scale;          // [rows]; dequant w = code * scale
  std::vector<std::uint32_t> outlier_cols;  // sorted column indices kept in fp16
  std::vector<fp16_t> outlier_values;    // [rows, outlier_cols.size()] column-major-by-row
  // Quantize-time fp32 mirror of outlier_values: the matvec/matmul hot loops
  // read outlier weights without converting fp16 per row per call. Derived
  // cache — excluded from storage_bytes() (model-size accounting counts the
  // canonical fp16 copy only).
  std::vector<float> outlier_f32;        // [rows, outlier_cols.size()]

  std::size_t storage_bytes() const noexcept;
};

// outlier_threshold: columns with any |w| >= threshold become fp16 outliers.
// LLM.int8() uses 6.0 on activations; for weights we use a multiple of the
// per-matrix stddev, passed in by the caller. threshold <= 0 disables the
// outlier path (plain rowwise int8).
RowwiseInt8 quantize_rowwise_int8(std::span<const float> weights, std::size_t rows,
                                  std::size_t cols, float outlier_threshold);

// Dequantize a single row (including outliers) into out[cols].
void dequantize_row(const RowwiseInt8& q, std::size_t row, std::span<float> out);

// out[r] = sum_c W[r,c] * x[c] over the int8 + outlier parts.
// The int8 part quantizes x per-call with absmax (dynamic activation
// quantization) and accumulates in int32, faithfully mimicking LLM.int8().
void matvec_int8(const RowwiseInt8& q, std::span<const float> x, std::span<float> out);

// A dynamically-quantized activation vector: absmax INT8 codes plus the
// original FP32 view (the outlier columns multiply against full precision).
// Quantizing once and reusing it across several matrices amortizes the
// per-token activation pass — the QKV projections all consume one normed
// input, so the decode hot path quantizes it once instead of three times.
struct ActivationInt8 {
  std::vector<std::int8_t> codes;
  float scale = 1.0f;
};

// Encodes x into act (absmax over all dims, codes clamped to [-127, 127]).
// Bit-identical to the quantization matvec_int8 performs internally.
void quantize_activation_int8(std::span<const float> x, ActivationInt8& act);

// matvec_int8 against a pre-quantized activation; `x` must be the FP32
// vector act was built from (outlier columns read it directly).
void matvec_int8(const RowwiseInt8& q, std::span<const float> x,
                 const ActivationInt8& act, std::span<float> out);

// A chunk of dynamically-quantized activations: [tokens, cols] codes with one
// absmax scale per token. Reused across the QKV/O/MLP projections of a
// prefill chunk so each chunk is quantized once per consuming matrix shape
// instead of once per (matrix, token).
struct ActivationBatchInt8 {
  std::vector<std::int8_t> codes;  // [tokens, cols]
  std::vector<float> scales;       // [tokens]
  std::size_t tokens = 0;
  std::size_t cols = 0;
};

// Encodes x ([tokens, cols] row-major) into acts. Each row is quantized with
// the exact math of quantize_activation_int8, so per-token codes/scales are
// bit-identical to `tokens` independent single-vector quantizations.
void quantize_activations_int8(std::span<const float> x, std::size_t tokens,
                               std::size_t cols, ActivationBatchInt8& acts);

// Blocked multi-token variants: X is [tokens, cols] row-major, Y is
// [tokens, rows]. Each token's activation is quantized once, and every
// weight row is streamed through the cache a single time for all tokens
// (instead of `tokens` times via repeated matvecs) — the batched-decode /
// prefill amortization the multi-lane engine relies on. Per-token results
// are bit-identical to the corresponding matvec.
void matmul_int8(const RowwiseInt8& q, std::span<const float> x, std::span<float> y,
                 std::size_t tokens);

// Same, against a pre-quantized activation chunk (`x` must be the FP32 block
// acts was built from; outlier columns read it directly). The variant above
// quantizes into a scratch batch and forwards here.
void matmul_int8(const RowwiseInt8& q, std::span<const float> x,
                 const ActivationBatchInt8& acts, std::span<float> y, std::size_t tokens);

// Lane-batched int8 matvec: x/acts hold one activation column per decode
// lane ([lanes, cols]), y is [lanes, rows]. Unlike matmul_int8 (whose
// kNative outlier correction may reassociate — tolerance contract), every
// lane's result here is bit-identical to matvec_int8 at BOTH kernel levels:
// the int8 dots are exact and the outlier correction keeps matvec_int8's
// scalar accumulation order over the precomputed fp32 outlier weights. This
// is the decode-batching contract — lanes can be grouped arbitrarily without
// changing any lane's output.
void matvec_int8_multi(const RowwiseInt8& q, std::span<const float> x,
                       const ActivationBatchInt8& acts, std::span<float> y,
                       std::size_t lanes);

// Block-wise INT4. Each block of kInt4Block consecutive weights (within a
// row) shares one FP16 absmax scale; codes are signed 4-bit in [-8, 7].
inline constexpr std::size_t kInt4Block = 32;

struct BlockInt4 {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t blocks_per_row = 0;
  std::vector<std::uint8_t> packed;  // two codes per byte, row-major blocks
  std::vector<fp16_t> block_scale;   // [rows * blocks_per_row]
  // Quantize-time mirrors in the kernel layout consumed by
  // simd::dot_i4_i8_multi: per 32-code block, byte j holds code[j]+8 in its
  // low nibble and code[j+16]+8 in its high nibble (nibble-plane layout — a
  // vpand/vpsrlw pair unpacks straight to activation order, no shuffles),
  // plus fp32 block scales so the per-block fixup skips fp16 conversion.
  // Derived caches — excluded from storage_bytes().
  std::vector<std::uint8_t> packed_kernel;  // [rows * blocks_per_row * 16]
  std::vector<float> scale_f32;             // [rows * blocks_per_row]

  std::size_t storage_bytes() const noexcept;
};

BlockInt4 quantize_block_int4(std::span<const float> weights, std::size_t rows,
                              std::size_t cols);

void dequantize_row(const BlockInt4& q, std::size_t row, std::span<float> out);

// INT4 numerics contract: at kScalar the float reference runs (unpack +
// dequantize per block — the bit-exact reference, unchanged since the seed).
// At kNative the packed-int4 kernel multiplies int4 weight codes against
// int8-QUANTIZED activations (dynamic absmax, same codec as the int8 path),
// so native int4 carries an extra activation-quantization error beyond FMA
// tolerance — documented, and covered by the Table 3 perplexity ordering pin
// (ppl_int4 > ppl_int8 holds at both levels). Per-token results are
// bit-identical between matvec and matmul at each level (composition
// independence of the packed kernel), which is what lets chunked prefill and
// lane-batched decode share these entry points.
void matvec_int4(const BlockInt4& q, std::span<const float> x, std::span<float> out);

// matvec_int4 against a pre-quantized activation (`x` must be the vector
// `act` was built from): the decode hot path quantizes once per token and
// reuses it across Q/K/V. kScalar ignores `act` and runs the float reference.
void matvec_int4(const BlockInt4& q, std::span<const float> x,
                 const ActivationInt8& act, std::span<float> out);

// Blocked multi-token INT4 matmul (layouts as matmul_int8): each packed
// weight block is unpacked once and applied to every token.
void matmul_int4(const BlockInt4& q, std::span<const float> x, std::span<float> y,
                 std::size_t tokens);

// Same, against a pre-quantized activation chunk (shared across the fused
// QKV projections). Doubles as the lane-batched int4 decode matvec: token t
// is bit-identical to matvec_int4 on column t at both levels, for any batch.
void matmul_int4(const BlockInt4& q, std::span<const float> x,
                 const ActivationBatchInt8& acts, std::span<float> y, std::size_t tokens);

// FP16 cast of a full matrix (round-to-nearest-even).
std::vector<fp16_t> quantize_fp16(std::span<const float> weights);

// Quantization error metrics (for tests and the quantization_explorer example).
struct QuantError {
  double max_abs = 0.0;
  double rmse = 0.0;
  double relative_fro = 0.0;  // ||W - What||_F / ||W||_F
};

QuantError measure_error(std::span<const float> original, std::span<const float> reconstructed);

}  // namespace orinsim::quant
