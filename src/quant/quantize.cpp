#include "quant/quantize.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "tensor/simd.h"

namespace orinsim::quant {

std::size_t RowwiseInt8::storage_bytes() const noexcept {
  return codes.size() * sizeof(std::int8_t) + row_scale.size() * sizeof(float) +
         outlier_cols.size() * sizeof(std::uint32_t) + outlier_values.size() * sizeof(fp16_t);
}

RowwiseInt8 quantize_rowwise_int8(std::span<const float> weights, std::size_t rows,
                                  std::size_t cols, float outlier_threshold) {
  ORINSIM_CHECK(weights.size() == rows * cols, "int8 quantize: shape mismatch");
  RowwiseInt8 q;
  q.rows = rows;
  q.cols = cols;

  // Pass 1: find outlier columns (any element with |w| >= threshold).
  std::vector<char> is_outlier(cols, 0);
  if (outlier_threshold > 0.0f) {
    for (std::size_t r = 0; r < rows; ++r) {
      const float* w = weights.data() + r * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        if (std::fabs(w[c]) >= outlier_threshold) is_outlier[c] = 1;
      }
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    if (is_outlier[c]) q.outlier_cols.push_back(static_cast<std::uint32_t>(c));
  }
  const std::size_t n_out = q.outlier_cols.size();

  // Pass 2: per-row absmax over non-outlier columns, then encode.
  q.codes.assign(rows * cols, 0);
  q.row_scale.assign(rows, 0.0f);
  q.outlier_values.assign(rows * n_out, fp16_t{0});
  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = weights.data() + r * cols;
    float absmax = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      if (!is_outlier[c]) absmax = std::max(absmax, std::fabs(w[c]));
    }
    const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
    q.row_scale[r] = scale;
    std::int8_t* codes = q.codes.data() + r * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      if (is_outlier[c]) continue;  // stays 0 in the int8 part
      const float v = w[c] / scale;
      const int rounded = static_cast<int>(std::lround(v));
      codes[c] = static_cast<std::int8_t>(std::clamp(rounded, -127, 127));
    }
    for (std::size_t o = 0; o < n_out; ++o) {
      q.outlier_values[r * n_out + o] = float_to_fp16(w[q.outlier_cols[o]]);
    }
  }
  // fp32 mirror of the outlier weights, converted once at quantize time so
  // no matvec/matmul call pays a per-row fp16 conversion.
  q.outlier_f32.resize(q.outlier_values.size());
  for (std::size_t i = 0; i < q.outlier_values.size(); ++i) {
    q.outlier_f32[i] = fp16_to_float(q.outlier_values[i]);
  }
  return q;
}

void dequantize_row(const RowwiseInt8& q, std::size_t row, std::span<float> out) {
  ORINSIM_CHECK(row < q.rows && out.size() == q.cols, "int8 dequant: shape mismatch");
  const std::int8_t* codes = q.codes.data() + row * q.cols;
  const float scale = q.row_scale[row];
  for (std::size_t c = 0; c < q.cols; ++c) out[c] = static_cast<float>(codes[c]) * scale;
  const std::size_t n_out = q.outlier_cols.size();
  for (std::size_t o = 0; o < n_out; ++o) {
    out[q.outlier_cols[o]] = fp16_to_float(q.outlier_values[row * n_out + o]);
  }
}

void quantize_activation_int8(std::span<const float> x, ActivationInt8& act) {
  float x_absmax = 0.0f;
  for (float v : x) x_absmax = std::max(x_absmax, std::fabs(v));
  act.scale = x_absmax > 0.0f ? x_absmax / 127.0f : 1.0f;
  act.codes.resize(x.size());
  for (std::size_t c = 0; c < x.size(); ++c) {
    const int v = static_cast<int>(std::lround(x[c] / act.scale));
    act.codes[c] = static_cast<std::int8_t>(std::clamp(v, -127, 127));
  }
}

void matvec_int8(const RowwiseInt8& q, std::span<const float> x,
                 const ActivationInt8& act, std::span<float> out) {
  ORINSIM_CHECK(x.size() == q.cols && out.size() == q.rows, "int8 matvec: shape mismatch");
  ORINSIM_CHECK(act.codes.size() == q.cols, "int8 matvec: activation shape mismatch");

  const std::int8_t* xq = act.codes.data();
  const float x_scale = act.scale;
  const std::size_t n_out = q.outlier_cols.size();
#pragma omp parallel for if (q.rows >= 256)
  for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(q.rows); ++rs) {
    const auto r = static_cast<std::size_t>(rs);
    const std::int8_t* codes = q.codes.data() + r * q.cols;
    const std::int64_t acc = simd::dot_i8(codes, xq, q.cols);
    float result = static_cast<float>(acc) * q.row_scale[r] * x_scale;
    // Outlier part in full precision with the *original* activations. The
    // fp16 weights were converted once at quantize time (outlier_f32), so
    // this loop streams floats — same values, same accumulation order.
    const float* w_out = q.outlier_f32.data() + r * n_out;
    for (std::size_t o = 0; o < n_out; ++o) {
      result += w_out[o] * x[q.outlier_cols[o]];
    }
    out[r] = result;
  }
}

void matvec_int8(const RowwiseInt8& q, std::span<const float> x, std::span<float> out) {
  ORINSIM_CHECK(x.size() == q.cols && out.size() == q.rows, "int8 matvec: shape mismatch");
  // Dynamic per-token activation quantization (absmax over all dims).
  ActivationInt8 act;
  quantize_activation_int8(x, act);
  matvec_int8(q, x, act, out);
}

void quantize_activations_int8(std::span<const float> x, std::size_t tokens,
                               std::size_t cols, ActivationBatchInt8& acts) {
  ORINSIM_CHECK(x.size() == tokens * cols, "activation batch quantize: shape mismatch");
  acts.tokens = tokens;
  acts.cols = cols;
  acts.codes.resize(tokens * cols);
  acts.scales.resize(tokens);
  for (std::size_t t = 0; t < tokens; ++t) {
    const float* xt = x.data() + t * cols;
    float x_absmax = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) x_absmax = std::max(x_absmax, std::fabs(xt[c]));
    const float scale = x_absmax > 0.0f ? x_absmax / 127.0f : 1.0f;
    acts.scales[t] = scale;
    std::int8_t* codes = acts.codes.data() + t * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      const int v = static_cast<int>(std::lround(xt[c] / scale));
      codes[c] = static_cast<std::int8_t>(std::clamp(v, -127, 127));
    }
  }
}

void matmul_int8(const RowwiseInt8& q, std::span<const float> x,
                 const ActivationBatchInt8& acts, std::span<float> y, std::size_t tokens) {
  ORINSIM_CHECK(x.size() == tokens * q.cols && y.size() == tokens * q.rows,
                "int8 matmul: shape mismatch");
  ORINSIM_CHECK(acts.tokens == tokens && acts.cols == q.cols,
                "int8 matmul: activation batch shape mismatch");

  const std::size_t n_out = q.outlier_cols.size();
  // Pack the outlier-column activations once per chunk: the per-(row, token)
  // fp16 correction then walks two contiguous arrays instead of gathering
  // columns and converting fp16 weights inside the hot loop. (With the
  // heavy-tailed init most columns of a large matrix carry at least one
  // outlier element, so this loop rivals the int8 dots in work.) The
  // accumulation order per (row, token) is unchanged, so results stay
  // bit-identical to matvec_int8.
  std::vector<float> x_out(tokens * n_out);
  for (std::size_t t = 0; t < tokens && n_out > 0; ++t) {
    const float* xt = x.data() + t * q.cols;
    float* dst = x_out.data() + t * n_out;
    for (std::size_t o = 0; o < n_out; ++o) dst[o] = xt[q.outlier_cols[o]];
  }
#pragma omp parallel if (q.rows >= 256)
  {
    std::vector<std::int64_t> dots(tokens);
#pragma omp for
    for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(q.rows); ++rs) {
      const auto r = static_cast<std::size_t>(rs);
      const std::int8_t* codes = q.codes.data() + r * q.cols;
      // Outlier weights were converted to fp32 once at quantize time.
      const float* w_out = q.outlier_f32.data() + r * n_out;
      // One pass over the weight row serves all tokens (the multi-column dot
      // shares each weight load across 4 activation columns; integer math is
      // exact, so the results equal per-token dot_i8 bit-for-bit).
      simd::dot_i8_multi(codes, acts.codes.data(), q.cols, tokens, q.cols, dots.data());
      for (std::size_t t = 0; t < tokens; ++t) {
        float result = static_cast<float>(dots[t]) * q.row_scale[r] * acts.scales[t];
        const float* xo = x_out.data() + t * n_out;
        if (simd::active_level() == simd::Level::kNative) {
          // Native may reassociate (determinism contract: tolerance, not
          // bits); the packed arrays make the correction one SIMD dot.
          result += simd::dot_f32(w_out, xo, n_out);
        } else {
          // Scalar keeps the exact matvec_int8 accumulation order.
          for (std::size_t o = 0; o < n_out; ++o) {
            result += w_out[o] * xo[o];
          }
        }
        y[t * q.rows + r] = result;
      }
    }
  }
}

void matvec_int8_multi(const RowwiseInt8& q, std::span<const float> x,
                       const ActivationBatchInt8& acts, std::span<float> y,
                       std::size_t lanes) {
  ORINSIM_CHECK(x.size() == lanes * q.cols && y.size() == lanes * q.rows,
                "int8 multi matvec: shape mismatch");
  ORINSIM_CHECK(acts.tokens == lanes && acts.cols == q.cols,
                "int8 multi matvec: activation batch shape mismatch");
  const std::size_t n_out = q.outlier_cols.size();
#pragma omp parallel if (q.rows >= 256)
  {
    std::vector<std::int64_t> dots(lanes);
#pragma omp for
    for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(q.rows); ++rs) {
      const auto r = static_cast<std::size_t>(rs);
      const std::int8_t* codes = q.codes.data() + r * q.cols;
      simd::dot_i8_multi(codes, acts.codes.data(), q.cols, lanes, q.cols, dots.data());
      const float* w_out = q.outlier_f32.data() + r * n_out;
      for (std::size_t t = 0; t < lanes; ++t) {
        float result = static_cast<float>(dots[t]) * q.row_scale[r] * acts.scales[t];
        // Exactly matvec_int8's outlier order (no reassociation, gathered
        // activations) so every lane is bit-identical to the single matvec
        // at both kernel levels.
        const float* xt = x.data() + t * q.cols;
        for (std::size_t o = 0; o < n_out; ++o) {
          result += w_out[o] * xt[q.outlier_cols[o]];
        }
        y[t * q.rows + r] = result;
      }
    }
  }
}

void matmul_int8(const RowwiseInt8& q, std::span<const float> x, std::span<float> y,
                 std::size_t tokens) {
  ORINSIM_CHECK(x.size() == tokens * q.cols && y.size() == tokens * q.rows,
                "int8 matmul: shape mismatch");
  // Quantize every token's activation once up front.
  ActivationBatchInt8 acts;
  quantize_activations_int8(x, tokens, q.cols, acts);
  matmul_int8(q, x, acts, y, tokens);
}

std::size_t BlockInt4::storage_bytes() const noexcept {
  return packed.size() + block_scale.size() * sizeof(fp16_t);
}

namespace {
constexpr std::int8_t kInt4Min = -8;
constexpr std::int8_t kInt4Max = 7;

std::int8_t unpack_lo(std::uint8_t byte) {
  return static_cast<std::int8_t>(static_cast<std::int8_t>(byte << 4) >> 4);
}
std::int8_t unpack_hi(std::uint8_t byte) { return static_cast<std::int8_t>(byte) >> 4; }

static_assert(kInt4Block == simd::kInt4KernelBlock,
              "packed-int4 kernel layout assumes the quantizer's block size");

// Signed code at column c of row r, decoded from the canonical packed layout.
std::int8_t int4_code(const BlockInt4& q, std::size_t r, std::size_t c) {
  const std::uint8_t byte = q.packed[(r * q.cols + c) / 2];
  return (c % 2 == 0) ? unpack_lo(byte) : unpack_hi(byte);
}
}  // namespace

BlockInt4 quantize_block_int4(std::span<const float> weights, std::size_t rows,
                              std::size_t cols) {
  ORINSIM_CHECK(weights.size() == rows * cols, "int4 quantize: shape mismatch");
  ORINSIM_CHECK(cols % kInt4Block == 0, "int4 quantize: cols must be a multiple of 32");
  BlockInt4 q;
  q.rows = rows;
  q.cols = cols;
  q.blocks_per_row = cols / kInt4Block;
  q.packed.assign(rows * cols / 2, 0);
  q.block_scale.assign(rows * q.blocks_per_row, fp16_t{0});

  for (std::size_t r = 0; r < rows; ++r) {
    const float* w = weights.data() + r * cols;
    for (std::size_t b = 0; b < q.blocks_per_row; ++b) {
      const float* blk = w + b * kInt4Block;
      float absmax = 0.0f;
      for (std::size_t i = 0; i < kInt4Block; ++i) absmax = std::max(absmax, std::fabs(blk[i]));
      const float scale = absmax > 0.0f ? absmax / 8.0f : 1.0f;
      q.block_scale[r * q.blocks_per_row + b] = float_to_fp16(scale);
      const float dec_scale = fp16_to_float(q.block_scale[r * q.blocks_per_row + b]);
      for (std::size_t i = 0; i < kInt4Block; i += 2) {
        auto encode = [&](float v) {
          const int code = static_cast<int>(std::lround(v / dec_scale));
          return static_cast<std::int8_t>(
              std::clamp(code, static_cast<int>(kInt4Min), static_cast<int>(kInt4Max)));
        };
        const std::int8_t lo = encode(blk[i]);
        const std::int8_t hi = encode(blk[i + 1]);
        q.packed[(r * cols + b * kInt4Block + i) / 2] =
            static_cast<std::uint8_t>((static_cast<std::uint8_t>(hi) << 4) |
                                      (static_cast<std::uint8_t>(lo) & 0x0F));
      }
    }
  }

  // Build the kernel-layout mirrors for the packed AVX2 path: nibble-plane
  // bytes (code j and code j+16 of each block share byte j, biased by +8 into
  // [0, 15]) plus fp32 block scales.
  q.packed_kernel.assign(rows * q.blocks_per_row * simd::kInt4KernelBlockBytes, 0);
  q.scale_f32.assign(q.block_scale.size(), 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t b = 0; b < q.blocks_per_row; ++b) {
      const std::size_t idx = r * q.blocks_per_row + b;
      q.scale_f32[idx] = fp16_to_float(q.block_scale[idx]);
      std::uint8_t* dst = q.packed_kernel.data() + idx * simd::kInt4KernelBlockBytes;
      for (std::size_t j = 0; j < simd::kInt4KernelBlockBytes; ++j) {
        const auto lo = static_cast<std::uint8_t>(int4_code(q, r, b * kInt4Block + j) + 8);
        const auto hi = static_cast<std::uint8_t>(int4_code(q, r, b * kInt4Block + 16 + j) + 8);
        dst[j] = static_cast<std::uint8_t>((hi << 4) | (lo & 0x0F));
      }
    }
  }
  return q;
}

void dequantize_row(const BlockInt4& q, std::size_t row, std::span<float> out) {
  ORINSIM_CHECK(row < q.rows && out.size() == q.cols, "int4 dequant: shape mismatch");
  for (std::size_t b = 0; b < q.blocks_per_row; ++b) {
    const float scale = fp16_to_float(q.block_scale[row * q.blocks_per_row + b]);
    for (std::size_t i = 0; i < kInt4Block; i += 2) {
      const std::uint8_t byte = q.packed[(row * q.cols + b * kInt4Block + i) / 2];
      out[b * kInt4Block + i] = static_cast<float>(unpack_lo(byte)) * scale;
      out[b * kInt4Block + i + 1] = static_cast<float>(unpack_hi(byte)) * scale;
    }
  }
}

namespace {

// Whether the packed AVX2 kernel should serve this call. The kernel mirrors
// may be absent on hand-built structs (tests); the float reference then runs
// at every level.
bool int4_native_path(const BlockInt4& q) {
  return simd::active_level() == simd::Level::kNative && !q.packed_kernel.empty() &&
         !q.scale_f32.empty();
}

// Scalar reference matvec: unpack + dequantize per block, float accumulate.
// The bit-exact reference — unchanged since the seed.
void matvec_int4_scalar(const BlockInt4& q, std::span<const float> x, std::span<float> out) {
#pragma omp parallel for if (q.rows >= 256)
  for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(q.rows); ++rs) {
    const auto r = static_cast<std::size_t>(rs);
    float acc = 0.0f;
    for (std::size_t b = 0; b < q.blocks_per_row; ++b) {
      const float scale = fp16_to_float(q.block_scale[r * q.blocks_per_row + b]);
      float blk_acc = 0.0f;
      const float* xb = x.data() + b * kInt4Block;
      for (std::size_t i = 0; i < kInt4Block; i += 2) {
        const std::uint8_t byte = q.packed[(r * q.cols + b * kInt4Block + i) / 2];
        blk_acc += static_cast<float>(unpack_lo(byte)) * xb[i];
        blk_acc += static_cast<float>(unpack_hi(byte)) * xb[i + 1];
      }
      acc += blk_acc * scale;
    }
    out[r] = acc;
  }
}

// Scalar reference matmul: tile tokens so per-token block accumulators live
// in registers/stack while each packed weight byte is unpacked exactly once
// per tile. Per-token sequence == matvec_int4_scalar (chunked-prefill
// bit-identity contract).
void matmul_int4_scalar(const BlockInt4& q, std::span<const float> x, std::span<float> y,
                        std::size_t tokens) {
  constexpr std::size_t kTokenTile = 8;
#pragma omp parallel for if (q.rows >= 256)
  for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(q.rows); ++rs) {
    const auto r = static_cast<std::size_t>(rs);
    for (std::size_t t0 = 0; t0 < tokens; t0 += kTokenTile) {
      const std::size_t tile = std::min(kTokenTile, tokens - t0);
      float acc[kTokenTile] = {};
      for (std::size_t b = 0; b < q.blocks_per_row; ++b) {
        const float scale = fp16_to_float(q.block_scale[r * q.blocks_per_row + b]);
        float blk_acc[kTokenTile] = {};
        for (std::size_t i = 0; i < kInt4Block; i += 2) {
          const std::uint8_t byte = q.packed[(r * q.cols + b * kInt4Block + i) / 2];
          const float lo = static_cast<float>(unpack_lo(byte));
          const float hi = static_cast<float>(unpack_hi(byte));
          for (std::size_t t = 0; t < tile; ++t) {
            const float* xb = x.data() + (t0 + t) * q.cols + b * kInt4Block;
            blk_acc[t] += lo * xb[i];
            blk_acc[t] += hi * xb[i + 1];
          }
        }
        for (std::size_t t = 0; t < tile; ++t) acc[t] += blk_acc[t] * scale;
      }
      for (std::size_t t = 0; t < tile; ++t) y[(t0 + t) * q.rows + r] = acc[t];
    }
  }
}

// Packed kernel over a pre-quantized activation batch: one weight unpack
// serves every column; per-column results are independent of the batch.
void matmul_int4_packed(const BlockInt4& q, const std::int8_t* codes, const float* scales,
                        std::size_t stride, std::span<float> y, std::size_t tokens) {
#pragma omp parallel if (q.rows >= 256)
  {
    std::vector<float> tmp(tokens);
#pragma omp for
    for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(q.rows); ++rs) {
      const auto r = static_cast<std::size_t>(rs);
      simd::dot_i4_i8_multi(
          q.packed_kernel.data() + r * q.blocks_per_row * simd::kInt4KernelBlockBytes,
          q.scale_f32.data() + r * q.blocks_per_row, q.blocks_per_row, codes, stride, tokens,
          tmp.data());
      for (std::size_t t = 0; t < tokens; ++t) y[t * q.rows + r] = tmp[t] * scales[t];
    }
  }
}

}  // namespace

void matvec_int4(const BlockInt4& q, std::span<const float> x,
                 const ActivationInt8& act, std::span<float> out) {
  ORINSIM_CHECK(x.size() == q.cols && out.size() == q.rows, "int4 matvec: shape mismatch");
  if (int4_native_path(q)) {
    ORINSIM_CHECK(act.codes.size() == q.cols, "int4 matvec: activation shape mismatch");
    matmul_int4_packed(q, act.codes.data(), &act.scale, q.cols, out, 1);
    return;
  }
  matvec_int4_scalar(q, x, out);
}

void matvec_int4(const BlockInt4& q, std::span<const float> x, std::span<float> out) {
  ORINSIM_CHECK(x.size() == q.cols && out.size() == q.rows, "int4 matvec: shape mismatch");
  if (int4_native_path(q)) {
    ActivationInt8 act;
    quantize_activation_int8(x, act);
    matmul_int4_packed(q, act.codes.data(), &act.scale, q.cols, out, 1);
    return;
  }
  matvec_int4_scalar(q, x, out);
}

void matmul_int4(const BlockInt4& q, std::span<const float> x,
                 const ActivationBatchInt8& acts, std::span<float> y, std::size_t tokens) {
  ORINSIM_CHECK(x.size() == tokens * q.cols && y.size() == tokens * q.rows,
                "int4 matmul: shape mismatch");
  if (int4_native_path(q)) {
    ORINSIM_CHECK(acts.tokens == tokens && acts.cols == q.cols,
                  "int4 matmul: activation batch shape mismatch");
    matmul_int4_packed(q, acts.codes.data(), acts.scales.data(), q.cols, y, tokens);
    return;
  }
  matmul_int4_scalar(q, x, y, tokens);
}

void matmul_int4(const BlockInt4& q, std::span<const float> x, std::span<float> y,
                 std::size_t tokens) {
  ORINSIM_CHECK(x.size() == tokens * q.cols && y.size() == tokens * q.rows,
                "int4 matmul: shape mismatch");
  if (int4_native_path(q)) {
    ActivationBatchInt8 acts;
    quantize_activations_int8(x, tokens, q.cols, acts);
    matmul_int4_packed(q, acts.codes.data(), acts.scales.data(), q.cols, y, tokens);
    return;
  }
  matmul_int4_scalar(q, x, y, tokens);
}

std::vector<fp16_t> quantize_fp16(std::span<const float> weights) {
  std::vector<fp16_t> out(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) out[i] = float_to_fp16(weights[i]);
  return out;
}

QuantError measure_error(std::span<const float> original,
                         std::span<const float> reconstructed) {
  ORINSIM_CHECK(original.size() == reconstructed.size(), "measure_error: size mismatch");
  QuantError e;
  double se = 0.0, ref_sq = 0.0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double d = static_cast<double>(original[i]) - reconstructed[i];
    e.max_abs = std::max(e.max_abs, std::fabs(d));
    se += d * d;
    ref_sq += static_cast<double>(original[i]) * original[i];
  }
  if (!original.empty()) e.rmse = std::sqrt(se / static_cast<double>(original.size()));
  e.relative_fro = ref_sq > 0.0 ? std::sqrt(se / ref_sq) : 0.0;
  return e;
}

}  // namespace orinsim::quant
