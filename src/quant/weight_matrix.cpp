#include "quant/weight_matrix.h"

#include <cmath>

#include "core/error.h"

namespace orinsim::quant {

WeightMatrix WeightMatrix::create(std::span<const float> weights, std::size_t out_features,
                                  std::size_t in_features, DType dtype, float outlier_sigma) {
  ORINSIM_CHECK(weights.size() == out_features * in_features, "WeightMatrix: shape mismatch");
  WeightMatrix w;
  w.out_features_ = out_features;
  w.in_features_ = in_features;
  w.dtype_ = dtype;
  switch (dtype) {
    case DType::kF32:
      w.f32_.assign(weights.begin(), weights.end());
      break;
    case DType::kF16:
      w.f16_ = quantize_fp16(weights);
      break;
    case DType::kI8: {
      float threshold = 0.0f;
      if (outlier_sigma > 0.0f) {
        double sum = 0.0, sq = 0.0;
        for (float v : weights) {
          sum += v;
          sq += static_cast<double>(v) * v;
        }
        const double n = static_cast<double>(weights.size());
        const double var = sq / n - (sum / n) * (sum / n);
        threshold = outlier_sigma * static_cast<float>(std::sqrt(std::max(var, 0.0)));
      }
      w.i8_ = quantize_rowwise_int8(weights, out_features, in_features, threshold);
      break;
    }
    case DType::kI4:
      w.i4_ = quantize_block_int4(weights, out_features, in_features);
      break;
  }
  return w;
}

void WeightMatrix::matvec(std::span<const float> x, std::span<float> out) const {
  ORINSIM_CHECK(x.size() == in_features_ && out.size() == out_features_,
                "WeightMatrix::matvec shape mismatch");
  switch (dtype_) {
    case DType::kF32: {
#pragma omp parallel for if (out_features_ >= 256)
      for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
        const auto r = static_cast<std::size_t>(rs);
        const float* wr = f32_.data() + r * in_features_;
        float acc = 0.0f;
        for (std::size_t c = 0; c < in_features_; ++c) acc += wr[c] * x[c];
        out[r] = acc;
      }
      break;
    }
    case DType::kF16: {
#pragma omp parallel for if (out_features_ >= 256)
      for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
        const auto r = static_cast<std::size_t>(rs);
        const fp16_t* wr = f16_.data() + r * in_features_;
        float acc = 0.0f;
        for (std::size_t c = 0; c < in_features_; ++c) acc += fp16_to_float(wr[c]) * x[c];
        out[r] = acc;
      }
      break;
    }
    case DType::kI8:
      matvec_int8(i8_, x, out);
      break;
    case DType::kI4:
      matvec_int4(i4_, x, out);
      break;
  }
}

void WeightMatrix::matmul(std::span<const float> x, std::span<float> y,
                          std::size_t tokens) const {
  ORINSIM_CHECK(x.size() == tokens * in_features_ && y.size() == tokens * out_features_,
                "WeightMatrix::matmul shape mismatch");
  if (dtype_ == DType::kI8) {
    matmul_int8(i8_, x, y, tokens);
    return;
  }
  if (dtype_ == DType::kI4) {
    matmul_int4(i4_, x, y, tokens);
    return;
  }
#pragma omp parallel for if (tokens >= 4)
  for (std::ptrdiff_t ts = 0; ts < static_cast<std::ptrdiff_t>(tokens); ++ts) {
    const auto t = static_cast<std::size_t>(ts);
    // Per-token matvec; the inner matvec's own omp-for is inactive inside
    // this parallel region (no nested parallelism), so no oversubscription.
    matvec(std::span<const float>(x.data() + t * in_features_, in_features_),
           std::span<float>(y.data() + t * out_features_, out_features_));
  }
}

void WeightMatrix::dequantize_row(std::size_t r, std::span<float> out) const {
  ORINSIM_CHECK(r < out_features_ && out.size() == in_features_,
                "dequantize_row: shape mismatch");
  switch (dtype_) {
    case DType::kF32:
      for (std::size_t c = 0; c < in_features_; ++c) out[c] = f32_[r * in_features_ + c];
      break;
    case DType::kF16:
      for (std::size_t c = 0; c < in_features_; ++c) {
        out[c] = fp16_to_float(f16_[r * in_features_ + c]);
      }
      break;
    case DType::kI8:
      quant::dequantize_row(i8_, r, out);
      break;
    case DType::kI4:
      quant::dequantize_row(i4_, r, out);
      break;
  }
}

std::size_t WeightMatrix::storage_bytes() const noexcept {
  switch (dtype_) {
    case DType::kF32:
      return f32_.size() * sizeof(float);
    case DType::kF16:
      return f16_.size() * sizeof(fp16_t);
    case DType::kI8:
      return i8_.storage_bytes();
    case DType::kI4:
      return i4_.storage_bytes();
  }
  return 0;
}

std::size_t WeightMatrix::outlier_column_count() const noexcept {
  return dtype_ == DType::kI8 ? i8_.outlier_cols.size() : 0;
}

void matvec_qkv(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                std::span<const float> x, std::span<float> q, std::span<float> k,
                std::span<float> v, ActivationInt8& act_scratch) {
  if (wq.dtype_ == DType::kI8 && wk.dtype_ == DType::kI8 && wv.dtype_ == DType::kI8) {
    ORINSIM_CHECK(wq.in_features_ == x.size() && wk.in_features_ == x.size() &&
                      wv.in_features_ == x.size(),
                  "matvec_qkv: input shape mismatch");
    ORINSIM_CHECK(q.size() == wq.out_features_ && k.size() == wk.out_features_ &&
                      v.size() == wv.out_features_,
                  "matvec_qkv: output shape mismatch");
    quantize_activation_int8(x, act_scratch);
    matvec_int8(wq.i8_, x, act_scratch, q);
    matvec_int8(wk.i8_, x, act_scratch, k);
    matvec_int8(wv.i8_, x, act_scratch, v);
    return;
  }
  wq.matvec(x, q);
  wk.matvec(x, k);
  wv.matvec(x, v);
}

}  // namespace orinsim::quant
