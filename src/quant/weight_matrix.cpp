#include "quant/weight_matrix.h"

#include <cmath>
#include <vector>

#include "core/error.h"
#include "tensor/simd.h"

namespace orinsim::quant {

WeightMatrix WeightMatrix::create(std::span<const float> weights, std::size_t out_features,
                                  std::size_t in_features, DType dtype, float outlier_sigma) {
  ORINSIM_CHECK(weights.size() == out_features * in_features, "WeightMatrix: shape mismatch");
  WeightMatrix w;
  w.out_features_ = out_features;
  w.in_features_ = in_features;
  w.dtype_ = dtype;
  switch (dtype) {
    case DType::kF32:
      w.f32_.assign(weights.begin(), weights.end());
      break;
    case DType::kF16:
      w.f16_ = quantize_fp16(weights);
      break;
    case DType::kI8: {
      float threshold = 0.0f;
      if (outlier_sigma > 0.0f) {
        double sum = 0.0, sq = 0.0;
        for (float v : weights) {
          sum += v;
          sq += static_cast<double>(v) * v;
        }
        const double n = static_cast<double>(weights.size());
        const double var = sq / n - (sum / n) * (sum / n);
        threshold = outlier_sigma * static_cast<float>(std::sqrt(std::max(var, 0.0)));
      }
      w.i8_ = quantize_rowwise_int8(weights, out_features, in_features, threshold);
      break;
    }
    case DType::kI4:
      w.i4_ = quantize_block_int4(weights, out_features, in_features);
      break;
  }
  return w;
}

void WeightMatrix::matvec(std::span<const float> x, std::span<float> out) const {
  ORINSIM_CHECK(x.size() == in_features_ && out.size() == out_features_,
                "WeightMatrix::matvec shape mismatch");
  switch (dtype_) {
    case DType::kF32: {
#pragma omp parallel for if (out_features_ >= 256)
      for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
        const auto r = static_cast<std::size_t>(rs);
        const float* wr = f32_.data() + r * in_features_;
        out[r] = simd::dot_f32(wr, x.data(), in_features_);
      }
      break;
    }
    case DType::kF16: {
#pragma omp parallel for if (out_features_ >= 256)
      for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
        const auto r = static_cast<std::size_t>(rs);
        const fp16_t* wr = f16_.data() + r * in_features_;
        float acc = 0.0f;
        for (std::size_t c = 0; c < in_features_; ++c) acc += fp16_to_float(wr[c]) * x[c];
        out[r] = acc;
      }
      break;
    }
    case DType::kI8:
      matvec_int8(i8_, x, out);
      break;
    case DType::kI4:
      matvec_int4(i4_, x, out);
      break;
  }
}

void WeightMatrix::matvec(std::span<const float> x, std::span<float> out,
                          ActivationInt8& act_scratch) const {
  if (dtype_ == DType::kI8) {
    ORINSIM_CHECK(x.size() == in_features_ && out.size() == out_features_,
                  "WeightMatrix::matvec shape mismatch");
    quantize_activation_int8(x, act_scratch);
    matvec_int8(i8_, x, act_scratch, out);
    return;
  }
  if (dtype_ == DType::kI4 && simd::active_level() == simd::Level::kNative) {
    ORINSIM_CHECK(x.size() == in_features_ && out.size() == out_features_,
                  "WeightMatrix::matvec shape mismatch");
    // The packed-int4 kernel consumes int8 activation codes; quantize into
    // the caller's scratch instead of allocating inside matvec_int4.
    quantize_activation_int8(x, act_scratch);
    matvec_int4(i4_, x, act_scratch, out);
    return;
  }
  matvec(x, out);
}

void WeightMatrix::matvec_multi(std::span<const float> x, std::span<float> y,
                                std::size_t lanes, ActivationBatchInt8& act_scratch) const {
  ORINSIM_CHECK(x.size() == lanes * in_features_ && y.size() == lanes * out_features_,
                "WeightMatrix::matvec_multi shape mismatch");
  switch (dtype_) {
    case DType::kF32: {
      // dot_f32_multi replicates the single-dot float sequence per lane at
      // both levels, so each lane equals matvec bit-for-bit.
#pragma omp parallel if (out_features_ >= 256)
      {
        std::vector<float> tmp(lanes);
#pragma omp for
        for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
          const auto r = static_cast<std::size_t>(rs);
          const float* wr = f32_.data() + r * in_features_;
          simd::dot_f32_multi(wr, x.data(), in_features_, lanes, in_features_, tmp.data());
          for (std::size_t t = 0; t < lanes; ++t) y[t * out_features_ + r] = tmp[t];
        }
      }
      return;
    }
    case DType::kF16:
      if (simd::active_level() == simd::Level::kNative) {
        // Row dequantized once, SIMD dot per lane (the matmul path): the
        // expensive software fp16 conversion is paid once per row instead of
        // once per (row, lane). Reorders fp32 accumulation vs. the inline
        // matvec — FMA-tolerance contract, still batch-independent.
        matmul(x, y, lanes);
      } else {
        // kScalar: the exact inline conversion + accumulation sequence of
        // the fp16 matvec, per lane.
#pragma omp parallel for if (out_features_ >= 256)
        for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
          const auto r = static_cast<std::size_t>(rs);
          const fp16_t* wr = f16_.data() + r * in_features_;
          for (std::size_t t = 0; t < lanes; ++t) {
            const float* xt = x.data() + t * in_features_;
            float acc = 0.0f;
            for (std::size_t c = 0; c < in_features_; ++c) acc += fp16_to_float(wr[c]) * xt[c];
            y[t * out_features_ + r] = acc;
          }
        }
      }
      return;
    case DType::kI8:
      quantize_activations_int8(x, lanes, in_features_, act_scratch);
      matvec_int8_multi(i8_, x, act_scratch, y, lanes);
      return;
    case DType::kI4:
      if (simd::active_level() == simd::Level::kNative && !i4_.packed_kernel.empty()) {
        quantize_activations_int8(x, lanes, in_features_, act_scratch);
        matmul_int4(i4_, x, act_scratch, y, lanes);
      } else {
        matmul_int4(i4_, x, y, lanes);  // scalar tile path: per lane == matvec
      }
      return;
  }
}

void WeightMatrix::matmul(std::span<const float> x, std::span<float> y,
                          std::size_t tokens) const {
  ORINSIM_CHECK(x.size() == tokens * in_features_ && y.size() == tokens * out_features_,
                "WeightMatrix::matmul shape mismatch");
  switch (dtype_) {
    case DType::kI8:
      matmul_int8(i8_, x, y, tokens);
      return;
    case DType::kI4:
      matmul_int4(i4_, x, y, tokens);
      return;
    case DType::kF32:
      // One weight-row pass serves every token in the chunk (compute-bound
      // under the SIMD microkernel instead of re-streaming W per token).
      simd::gemm_nt_f32(x.data(), f32_.data(), y.data(), tokens, in_features_, out_features_);
      return;
    case DType::kF16: {
      // Dequantize each weight row once, then dot it against every token.
      // The per-(token, row) float sequence matches the fp16 matvec exactly.
#pragma omp parallel if (out_features_ >= 64)
      {
        std::vector<float> row(in_features_);
#pragma omp for
        for (std::ptrdiff_t rs = 0; rs < static_cast<std::ptrdiff_t>(out_features_); ++rs) {
          const auto r = static_cast<std::size_t>(rs);
          const fp16_t* wr = f16_.data() + r * in_features_;
          for (std::size_t c = 0; c < in_features_; ++c) row[c] = fp16_to_float(wr[c]);
          for (std::size_t t = 0; t < tokens; ++t) {
            y[t * out_features_ + r] = simd::dot_f32(x.data() + t * in_features_,
                                                     row.data(), in_features_);
          }
        }
      }
      return;
    }
  }
}

void WeightMatrix::dequantize_row(std::size_t r, std::span<float> out) const {
  ORINSIM_CHECK(r < out_features_ && out.size() == in_features_,
                "dequantize_row: shape mismatch");
  switch (dtype_) {
    case DType::kF32:
      for (std::size_t c = 0; c < in_features_; ++c) out[c] = f32_[r * in_features_ + c];
      break;
    case DType::kF16:
      for (std::size_t c = 0; c < in_features_; ++c) {
        out[c] = fp16_to_float(f16_[r * in_features_ + c]);
      }
      break;
    case DType::kI8:
      quant::dequantize_row(i8_, r, out);
      break;
    case DType::kI4:
      quant::dequantize_row(i4_, r, out);
      break;
  }
}

std::size_t WeightMatrix::storage_bytes() const noexcept {
  switch (dtype_) {
    case DType::kF32:
      return f32_.size() * sizeof(float);
    case DType::kF16:
      return f16_.size() * sizeof(fp16_t);
    case DType::kI8:
      return i8_.storage_bytes();
    case DType::kI4:
      return i4_.storage_bytes();
  }
  return 0;
}

std::size_t WeightMatrix::outlier_column_count() const noexcept {
  return dtype_ == DType::kI8 ? i8_.outlier_cols.size() : 0;
}

void matvec_qkv(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                std::span<const float> x, std::span<float> q, std::span<float> k,
                std::span<float> v, ActivationInt8& act_scratch) {
  if (wq.dtype_ == DType::kI8 && wk.dtype_ == DType::kI8 && wv.dtype_ == DType::kI8) {
    ORINSIM_CHECK(wq.in_features_ == x.size() && wk.in_features_ == x.size() &&
                      wv.in_features_ == x.size(),
                  "matvec_qkv: input shape mismatch");
    ORINSIM_CHECK(q.size() == wq.out_features_ && k.size() == wk.out_features_ &&
                      v.size() == wv.out_features_,
                  "matvec_qkv: output shape mismatch");
    quantize_activation_int8(x, act_scratch);
    matvec_int8(wq.i8_, x, act_scratch, q);
    matvec_int8(wk.i8_, x, act_scratch, k);
    matvec_int8(wv.i8_, x, act_scratch, v);
    return;
  }
  if (wq.dtype_ == DType::kI4 && wk.dtype_ == DType::kI4 && wv.dtype_ == DType::kI4 &&
      simd::active_level() == simd::Level::kNative) {
    // The packed-int4 path also consumes int8-quantized activations: share
    // one quantization pass across Q/K/V (deterministic codes, so results
    // equal three independent matvecs). kScalar falls through — the float
    // reference reads x directly.
    quantize_activation_int8(x, act_scratch);
    matvec_int4(wq.i4_, x, act_scratch, q);
    matvec_int4(wk.i4_, x, act_scratch, k);
    matvec_int4(wv.i4_, x, act_scratch, v);
    return;
  }
  wq.matvec(x, q);
  wk.matvec(x, k);
  wv.matvec(x, v);
}

void matmul_qkv(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                std::span<const float> x, std::span<float> q, std::span<float> k,
                std::span<float> v, std::size_t tokens, ActivationBatchInt8& act_scratch) {
  if (wq.dtype_ == DType::kI8 && wk.dtype_ == DType::kI8 && wv.dtype_ == DType::kI8) {
    ORINSIM_CHECK(x.size() == tokens * wq.in_features_ && wk.in_features_ == wq.in_features_ &&
                      wv.in_features_ == wq.in_features_,
                  "matmul_qkv: input shape mismatch");
    ORINSIM_CHECK(q.size() == tokens * wq.out_features_ &&
                      k.size() == tokens * wk.out_features_ &&
                      v.size() == tokens * wv.out_features_,
                  "matmul_qkv: output shape mismatch");
    quantize_activations_int8(x, tokens, wq.in_features_, act_scratch);
    matmul_int8(wq.i8_, x, act_scratch, q, tokens);
    matmul_int8(wk.i8_, x, act_scratch, k, tokens);
    matmul_int8(wv.i8_, x, act_scratch, v, tokens);
    return;
  }
  if (wq.dtype_ == DType::kI4 && wk.dtype_ == DType::kI4 && wv.dtype_ == DType::kI4 &&
      simd::active_level() == simd::Level::kNative) {
    ORINSIM_CHECK(x.size() == tokens * wq.in_features_ && wk.in_features_ == wq.in_features_ &&
                      wv.in_features_ == wq.in_features_,
                  "matmul_qkv: input shape mismatch");
    ORINSIM_CHECK(q.size() == tokens * wq.out_features_ &&
                      k.size() == tokens * wk.out_features_ &&
                      v.size() == tokens * wv.out_features_,
                  "matmul_qkv: output shape mismatch");
    // Share one activation-quantization pass across the three packed-int4
    // matmuls (deterministic codes — identical to three separate calls).
    quantize_activations_int8(x, tokens, wq.in_features_, act_scratch);
    matmul_int4(wq.i4_, x, act_scratch, q, tokens);
    matmul_int4(wk.i4_, x, act_scratch, k, tokens);
    matmul_int4(wv.i4_, x, act_scratch, v, tokens);
    return;
  }
  wq.matmul(x, q, tokens);
  wk.matmul(x, k, tokens);
  wv.matmul(x, v, tokens);
}

void matvec_qkv_multi(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                      std::span<const float> x, std::span<float> q, std::span<float> k,
                      std::span<float> v, std::size_t lanes, ActivationBatchInt8& act_scratch) {
  ORINSIM_CHECK(x.size() == lanes * wq.in_features_ && wk.in_features_ == wq.in_features_ &&
                    wv.in_features_ == wq.in_features_,
                "matvec_qkv_multi: input shape mismatch");
  ORINSIM_CHECK(q.size() == lanes * wq.out_features_ && k.size() == lanes * wk.out_features_ &&
                    v.size() == lanes * wv.out_features_,
                "matvec_qkv_multi: output shape mismatch");
  if (wq.dtype_ == DType::kI8 && wk.dtype_ == DType::kI8 && wv.dtype_ == DType::kI8) {
    quantize_activations_int8(x, lanes, wq.in_features_, act_scratch);
    matvec_int8_multi(wq.i8_, x, act_scratch, q, lanes);
    matvec_int8_multi(wk.i8_, x, act_scratch, k, lanes);
    matvec_int8_multi(wv.i8_, x, act_scratch, v, lanes);
    return;
  }
  if (wq.dtype_ == DType::kI4 && wk.dtype_ == DType::kI4 && wv.dtype_ == DType::kI4 &&
      simd::active_level() == simd::Level::kNative) {
    quantize_activations_int8(x, lanes, wq.in_features_, act_scratch);
    matmul_int4(wq.i4_, x, act_scratch, q, lanes);
    matmul_int4(wk.i4_, x, act_scratch, k, lanes);
    matmul_int4(wv.i4_, x, act_scratch, v, lanes);
    return;
  }
  wq.matvec_multi(x, q, lanes, act_scratch);
  wk.matvec_multi(x, k, lanes, act_scratch);
  wv.matvec_multi(x, v, lanes, act_scratch);
}

}  // namespace orinsim::quant
