// WeightMatrix: a [out_features, in_features] weight matrix whose storage
// precision is chosen at load time (FP32 / FP16 / INT8 / INT4), exposing a
// uniform matvec interface to the transformer engine. This is the C++
// analogue of loading a HuggingFace checkpoint through BitsAndBytes at a
// given quantization level.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "quant/quantize.h"
#include "tensor/dtype.h"
#include "tensor/fp16.h"

namespace orinsim::quant {

class WeightMatrix {
 public:
  WeightMatrix() = default;

  // Quantizes fp32 source weights into the requested storage precision.
  // outlier_sigma: for INT8, columns with |w| >= outlier_sigma * stddev(W)
  // are kept in FP16 (LLM.int8() decomposition); pass 0 to disable.
  static WeightMatrix create(std::span<const float> weights, std::size_t out_features,
                             std::size_t in_features, DType dtype,
                             float outlier_sigma = 6.0f);

  std::size_t out_features() const noexcept { return out_features_; }
  std::size_t in_features() const noexcept { return in_features_; }
  DType dtype() const noexcept { return dtype_; }

  // out[r] = sum_c W[r,c] * x[c]; dispatches on storage precision.
  void matvec(std::span<const float> x, std::span<float> out) const;

  // As above, but INT8 quantizes the activation into caller-owned scratch
  // instead of allocating per call (the decode hot path passes the workspace
  // buffer). Other precisions ignore the scratch.
  void matvec(std::span<const float> x, std::span<float> out,
              ActivationInt8& act_scratch) const;

  // Y[t, :] = W * X[t, :] for t in [0, tokens); X is [tokens, in], Y is
  // [tokens, out]. INT8/INT4 use the blocked multi-token kernels (each
  // weight row streamed once for all tokens, activations quantized once per
  // token); other precisions run per-token matvecs parallel over tokens.
  void matmul(std::span<const float> x, std::span<float> y, std::size_t tokens) const;

  // Lane-batched matvec: one activation column per decode lane (X is
  // [lanes, in], Y is [lanes, out]), one weight stream shared by all lanes —
  // decode is memory-bound, so this amortization is the batching win.
  //
  // Contract (what lets Model::generate batch arbitrary subsets of lanes):
  // lane t's result is bit-identical to matvec(X[t]) at the active kernel
  // level for kF32/kI8/kI4, and independent of the batch composition for
  // every dtype. kF16 is batch-independent too, but only bit-matches the
  // single matvec at kScalar — at kNative each row is dequantized once and
  // dotted per lane (the matmul path), which reorders the fp32 accumulation
  // within FMA tolerance. act_scratch feeds the INT8/INT4 paths.
  void matvec_multi(std::span<const float> x, std::span<float> y, std::size_t lanes,
                    ActivationBatchInt8& act_scratch) const;

  // Reconstruct row r at fp32 (reference path for tests and error analysis).
  void dequantize_row(std::size_t r, std::span<float> out) const;

  // Actual bytes held by this matrix's storage (codes + scales + outliers).
  std::size_t storage_bytes() const noexcept;

  // Number of INT8 outlier columns (0 unless dtype == kI8 with outliers).
  std::size_t outlier_column_count() const noexcept;

 private:
  friend void matvec_qkv(const WeightMatrix& wq, const WeightMatrix& wk,
                         const WeightMatrix& wv, std::span<const float> x,
                         std::span<float> q, std::span<float> k, std::span<float> v,
                         ActivationInt8& act_scratch);
  friend void matmul_qkv(const WeightMatrix& wq, const WeightMatrix& wk,
                         const WeightMatrix& wv, std::span<const float> x,
                         std::span<float> q, std::span<float> k, std::span<float> v,
                         std::size_t tokens, ActivationBatchInt8& act_scratch);
  friend void matvec_qkv_multi(const WeightMatrix& wq, const WeightMatrix& wk,
                               const WeightMatrix& wv, std::span<const float> x,
                               std::span<float> q, std::span<float> k, std::span<float> v,
                               std::size_t lanes, ActivationBatchInt8& act_scratch);

  std::size_t out_features_ = 0;
  std::size_t in_features_ = 0;
  DType dtype_ = DType::kF32;

  std::vector<float> f32_;
  std::vector<fp16_t> f16_;
  RowwiseInt8 i8_;
  BlockInt4 i4_;
};

// Fused QKV projection: q = Wq·x, k = Wk·x, v = Wv·x. When all three
// matrices are INT8, the shared activation x is dynamically quantized ONCE
// into act_scratch and reused (amortizing the per-token activation pass the
// three separate matvecs would each repeat); results are bit-identical to
// three independent matvec calls. Other precisions fall through to matvec.
// act_scratch is caller-owned so the decode hot loop does not allocate.
void matvec_qkv(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                std::span<const float> x, std::span<float> q, std::span<float> k,
                std::span<float> v, ActivationInt8& act_scratch);

// Chunked counterpart of matvec_qkv: X is [tokens, in], Q/K/V are
// [tokens, out_q/k/v]. When all three matrices are INT8 the chunk is
// quantized ONCE into act_scratch and reused; per-token results are
// bit-identical to three independent matmul calls. Other precisions fall
// through to matmul.
void matmul_qkv(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                std::span<const float> x, std::span<float> q, std::span<float> k,
                std::span<float> v, std::size_t tokens, ActivationBatchInt8& act_scratch);

// Lane-batched counterpart of matvec_qkv: X holds one activation column per
// lane. When all three matrices are INT8 (or INT4 on the native packed path)
// the lane batch is quantized ONCE into act_scratch and reused across
// Q/K/V; activation quantization is deterministic, so results stay
// bit-identical to three matvec_multi calls. Other precisions fall through
// to per-matrix matvec_multi (which inherits the matvec_multi contract).
void matvec_qkv_multi(const WeightMatrix& wq, const WeightMatrix& wk, const WeightMatrix& wv,
                      std::span<const float> x, std::span<float> q, std::span<float> k,
                      std::span<float> v, std::size_t lanes, ActivationBatchInt8& act_scratch);

}  // namespace orinsim::quant
