#include "eval/perplexity.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace orinsim::eval {

PerplexityResult evaluate_perplexity(Model& model, std::span<const TokenId> tokens,
                                     const PerplexityConfig& config) {
  ORINSIM_CHECK(config.window >= 2, "perplexity: window must be >= 2");
  ORINSIM_CHECK(config.stride >= 1 && config.stride <= config.window,
                "perplexity: stride must be in [1, window]");
  ORINSIM_CHECK(model.config().max_seq >= config.window,
                "perplexity: model max_seq smaller than window");
  ORINSIM_CHECK(tokens.size() >= 2, "perplexity: need at least two tokens");

  PerplexityResult result;
  std::size_t start = 0;
  while (start + 1 < tokens.size()) {
    const std::size_t end = std::min(start + config.window, tokens.size());
    const std::size_t len = end - start;
    if (len < 2) break;
    // Targets: every position for the first window, the non-overlapping tail
    // for subsequent windows.
    const std::size_t predict_from =
        (start == 0) ? 1 : std::min(config.window - config.stride, len - 1);
    const auto nll = model.sequence_nll(tokens.subspan(start, len),
                                        std::max<std::size_t>(predict_from, 1));
    result.total_nll += nll.total_nll;
    result.scored_tokens += nll.predicted;
    ++result.windows;
    if (config.max_tokens > 0 && result.scored_tokens >= config.max_tokens) break;
    if (end == tokens.size()) break;
    start += config.stride;
  }
  ORINSIM_CHECK(result.scored_tokens > 0, "perplexity: no tokens scored");
  result.perplexity = std::exp(result.total_nll / static_cast<double>(result.scored_tokens));
  return result;
}

}  // namespace orinsim::eval
