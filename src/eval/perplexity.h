// Sliding-window perplexity, following the paper's protocol exactly:
// "we process text in overlapping windows of 1024 tokens with a stride of
//  512 ... perplexity = exp(sum NLL / total tokens)".
//
// For each window, only the tokens past the overlap are scored (the overlap
// provides context), matching the standard HuggingFace strided evaluation
// the paper uses. The first window scores every predictable token.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/transformer.h"

namespace orinsim::eval {

struct PerplexityConfig {
  std::size_t window = 1024;
  std::size_t stride = 512;
  // Cap on scored tokens (evaluation cost control); 0 = no cap.
  std::size_t max_tokens = 0;
};

struct PerplexityResult {
  double perplexity = 0.0;
  double total_nll = 0.0;
  std::size_t scored_tokens = 0;
  std::size_t windows = 0;
};

// Evaluates the model on a token stream. The model's max_seq must be >= the
// window size.
PerplexityResult evaluate_perplexity(Model& model, std::span<const TokenId> tokens,
                                     const PerplexityConfig& config = {});

}  // namespace orinsim::eval
