// Edge-cloud hybrid serving: the coupling of edge inferencing with cloud
// endpoints that the paper's conclusion points to as future work.
//
// A CloudEndpoint models a hosted LLM API (network RTT + uplink transfer +
// provider queue + prefill/decode service rates + per-token price). The
// hybrid simulator runs the same arrival process as the edge batch
// scheduler, but a routing policy may send requests to the cloud:
//
//   kEdgeOnly / kCloudOnly : baselines
//   kQueueDepth            : overflow to the cloud when more than
//                            `queue_threshold` requests are waiting
//   kLatencyThreshold      : route to the cloud when the predicted edge
//                            completion time exceeds `latency_slo_s`
//
// The schedule is emitted as one trace::ExecutionTimeline: edge batches are
// sequential kDecode events on the device cursor, cloud requests are
// overlapping kOffload events placed at their arrival time (power unset —
// cloud joules are not the edge board's). Counts, latencies, energy and
// makespan are derived from the timeline, which keeps edge energy (joules)
// separate from cloud cost (USD) so the trade-off the paper motivates —
// privacy/cost vs latency — is quantified per policy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serving/batch_scheduler.h"
#include "serving/session.h"
#include "trace/timeline.h"

namespace orinsim::serving {

struct CloudEndpoint {
  std::string name = "hosted-llm-api";
  double rtt_s = 0.08;                  // network round trip
  double uplink_mbps = 20.0;            // edge uplink for the prompt payload
  double provider_queue_s = 0.2;        // queuing/admission on the provider side
  double prefill_tps = 8000.0;          // prompt tokens/s
  double decode_tps = 60.0;             // generated tokens/s per stream
  double usd_per_1k_tokens = 0.02;      // blended in+out price
  double bytes_per_token = 4.0;         // prompt wire size

  // End-to-end latency and cost of one request (in prompt tokens, out
  // generated tokens). Cloud capacity is modeled as elastic (no edge-side
  // queueing for cloud requests).
  double request_latency_s(std::size_t in_tokens, std::size_t out_tokens) const;
  double request_cost_usd(std::size_t in_tokens, std::size_t out_tokens) const;
};

enum class OffloadPolicy { kEdgeOnly, kCloudOnly, kQueueDepth, kLatencyThreshold };

std::string offload_policy_name(OffloadPolicy policy);

struct HybridConfig {
  SchedulerConfig scheduler;            // arrivals, max batch, sequence config
  CloudEndpoint cloud;
  OffloadPolicy policy = OffloadPolicy::kQueueDepth;
  std::size_t queue_threshold = 16;     // kQueueDepth
  double latency_slo_s = 30.0;          // kLatencyThreshold
};

struct HybridResult {
  std::size_t edge_requests = 0;
  std::size_t cloud_requests = 0;
  std::vector<double> latencies_s;      // per request, arrival -> completion
  double edge_energy_j = 0.0;
  double cloud_cost_usd = 0.0;
  double makespan_s = 0.0;

  // The full event stream the metrics above are derived from (cloud work as
  // overlapping kOffload events, edge batches on the sequential cursor).
  trace::ExecutionTimeline timeline;

  double mean_latency_s() const;
  double p95_latency_s() const;
};

HybridResult simulate_hybrid(InferenceBackend& backend, const HybridConfig& config);

}  // namespace orinsim::serving
