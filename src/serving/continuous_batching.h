// Continuous (token-level) batching on the simulated Orin AGX.
//
// The paper measures *static* batching: a batch is formed, prefilled, and
// decoded to completion before the next batch starts, so early-finishing
// requests wait for the batch's last token. Modern inference engines (Orca,
// vLLM) instead admit and retire requests at decode-step granularity. The
// paper's conclusion names "dedicated inference engines" as the next step;
// this module quantifies what that buys on the same hardware model.
//
// The simulator walks decode steps and emits the schedule as StepEvents
// into a trace::ExecutionTimeline: at each step boundary it admits waiting
// requests (a kPrefill event for the newly admitted prompts), charges one
// roofline decode step for the currently active set (a kDecode event with
// the power model's wattage), and retires sequences that have produced
// their quota. Energy, makespan, mean concurrency and per-request latencies
// are all read off the timeline. Same arrival process and workload shape as
// the static scheduler, so the two are directly comparable (see
// bench_ext_continuous_batching).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/inference_sim.h"
#include "trace/timeline.h"
#include "workload/arrivals.h"
#include "workload/prompt_pool.h"

namespace orinsim::serving {

struct ContinuousConfig {
  std::string model_key = "llama3";
  DType dtype = DType::kF16;
  std::size_t max_concurrency = 32;  // max sequences decoding together
  // Shared arrival model (workload::ArrivalConfig); kDeterministic reproduces
  // the original fixed spacing of 1/rate_rps.
  workload::ArrivalConfig arrivals;
  workload::SeqConfig seq = workload::seq_config_default();
  sim::PowerMode power_mode = sim::power_mode_maxn();
};

struct ContinuousResult {
  std::vector<double> latencies_s;  // per request, arrival -> last token
  double makespan_s = 0.0;
  double energy_j = 0.0;
  double mean_active = 0.0;   // time-weighted mean concurrent sequences
  std::size_t decode_steps = 0;
  std::size_t total_tokens = 0;  // prompt + generated tokens processed

  // The full event stream the metrics above are derived from.
  trace::ExecutionTimeline timeline;

  double mean_latency_s() const;
  double p95_latency_s() const;
  // Tokens/s over the whole schedule. Self-contained: the result records the
  // token volume, so no config needs to be threaded back in.
  double throughput_tps() const;
};

// Simulates the schedule. Throws if max_concurrency at the workload's
// sequence length cannot fit in device memory.
ContinuousResult simulate_continuous(const ContinuousConfig& config);

// Variant with explicit arrival timestamps (e.g. from
// workload::generate_arrivals for Poisson or bursty streams). config's
// arrival fields and total_requests are ignored in favour of the list.
ContinuousResult simulate_continuous(const ContinuousConfig& config,
                                     const std::vector<double>& arrival_times);

}  // namespace orinsim::serving
