// Continuous (token-level) batching on the simulated Orin AGX.
//
// The paper measures *static* batching: a batch is formed, prefilled, and
// decoded to completion before the next batch starts, so early-finishing
// requests wait for the batch's last token. Modern inference engines (Orca,
// vLLM) instead admit and retire requests at decode-step granularity. The
// paper's conclusion names "dedicated inference engines" as the next step;
// this module quantifies what that buys on the same hardware model.
//
// The simulator walks decode steps: at each step boundary it admits waiting
// requests (paying their prefill), charges one roofline decode step for the
// currently active set, accrues energy from the power model, and retires
// sequences that have produced their quota. Same arrival process and
// workload shape as the static scheduler, so the two are directly
// comparable (see bench_ext_continuous_batching).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/inference_sim.h"
#include "workload/prompt_pool.h"

namespace orinsim::serving {

struct ContinuousConfig {
  std::string model_key = "llama3";
  DType dtype = DType::kF16;
  std::size_t max_concurrency = 32;  // max sequences decoding together
  double arrival_rate_rps = 2.0;
  std::size_t total_requests = 64;
  workload::SeqConfig seq = workload::seq_config_default();
  sim::PowerMode power_mode = sim::power_mode_maxn();
};

struct ContinuousResult {
  std::vector<double> latencies_s;  // per request, arrival -> last token
  double makespan_s = 0.0;
  double energy_j = 0.0;
  double mean_active = 0.0;   // time-weighted mean concurrent sequences
  std::size_t decode_steps = 0;

  double mean_latency_s() const;
  double p95_latency_s() const;
  double throughput_tps(const ContinuousConfig& config) const;
};

// Simulates the schedule. Throws if max_concurrency at the workload's
// sequence length cannot fit in device memory.
ContinuousResult simulate_continuous(const ContinuousConfig& config);

}  // namespace orinsim::serving
