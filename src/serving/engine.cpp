#include "serving/engine.h"

#include <algorithm>
#include <deque>
#include <numeric>

#include "core/error.h"
#include "core/rng.h"
#include "core/stopwatch.h"
#include "sim/speculative_sim.h"

namespace orinsim::serving {

namespace {

std::size_t blocks_for(std::size_t tokens, std::size_t block_tokens) {
  return (tokens + block_tokens - 1) / block_tokens;
}

// Pool occupancy annotation: only backends that track a block pool get
// kv_blocks fields on their events (legacy traces stay byte-identical).
void annotate_kv(trace::ExecutionTimeline& timeline, std::size_t event_id,
                 const TokenBackend& backend) {
  const TokenBackend::KVUsage usage = backend.kv_usage();
  if (usage.total_blocks > 0) {
    timeline.set_kv_blocks(event_id, usage.used_blocks, usage.total_blocks);
  }
}

// Shared tail: every policy's result is read off the event stream.
void finalize(EngineResult& result, std::vector<Request> requests,
              const TokenBackend* backend) {
  const trace::ExecutionTimeline& timeline = result.timeline;
  result.latencies_s = timeline.request_latencies();
  result.makespan_s = timeline.now();
  result.energy_j = timeline.total_energy_j();
  result.mean_active = timeline.time_weighted_batch();
  // A speculative round's target pass lands as kVerify instead of kDecode;
  // counting both keeps decode_steps comparable across the two modes (one
  // target pass per step either way).
  result.decode_steps =
      timeline.count(trace::Phase::kDecode) + timeline.count(trace::Phase::kVerify);
  result.total_tokens = 0;
  for (const Request& r : requests) {
    result.total_tokens += r.prompt_tokens + r.generated;
    result.speculation.rounds += r.spec.rounds;
    result.speculation.proposed += r.spec.proposed;
    result.speculation.accepted += r.spec.accepted;
    result.speculation.emitted += r.spec.emitted;
  }
  result.mean_kv_utilization = timeline.mean_kv_utilization();
  result.peak_kv_blocks = timeline.peak_kv_blocks();
  if (backend != nullptr) {
    result.peak_kv_bytes = result.peak_kv_blocks * backend->kv_usage().block_bytes;
  }
  result.governor_step_downs =
      timeline.governor_event_count(trace::GovernorEventKind::kPowerCapStepDown) +
      timeline.governor_event_count(trace::GovernorEventKind::kThermalStepDown);
  // Prefix-cache behaviour, read off the same event stream as every other
  // metric — the counters and the exported trace cannot disagree.
  for (const auto& e : timeline.prefix_cache_events()) {
    switch (e.kind) {
      case trace::PrefixCacheEventKind::kHit:
        ++result.prefix_cache.lookups;
        ++result.prefix_cache.hits;
        result.prefix_cache.hit_tokens += e.tokens;
        result.prefix_cache.bytes_saved += e.bytes_saved;
        break;
      case trace::PrefixCacheEventKind::kMiss:
        ++result.prefix_cache.lookups;
        ++result.prefix_cache.misses;
        break;
      case trace::PrefixCacheEventKind::kInsert:
        result.prefix_cache.inserted_blocks += e.blocks;
        break;
      case trace::PrefixCacheEventKind::kEvict:
        result.prefix_cache.evicted_blocks += e.blocks;
        break;
    }
  }
  // Per-request attribution off the participant-annotated event stream. The
  // engine indexes requests by id (requests[i].id == i, the same invariant
  // the timeline bookkeeping relies on).
  const std::vector<double> per_request = timeline.per_request_energy_j();
  result.request_metrics.assign(per_request.size(), RequestMetrics{});
  for (std::size_t i = 0; i < per_request.size(); ++i) {
    RequestMetrics& m = result.request_metrics[i];
    m.energy_j = per_request[i];
    const trace::RequestRecord& rec = timeline.requests()[i];
    if (rec.completed && rec.finish_s > rec.start_s) {
      m.avg_power_w = m.energy_j / (rec.finish_s - rec.start_s);
    }
    const std::size_t tokens = requests[i].prompt_tokens + requests[i].generated;
    if (tokens > 0) m.energy_per_token_j = m.energy_j / static_cast<double>(tokens);
  }
  result.requests = std::move(requests);
}

// Runs the board power cap and the thermal RC loop over the policy's step
// stream; owned by one ContinuousPolicy::run call. Monotone descent: modes
// only step down within a run (no re-promotion chatter), admissions resume
// as soon as the violation clears.
class PowerGovernor {
 public:
  PowerGovernor(const GovernorConfig& config, TokenBackend& backend,
                trace::ExecutionTimeline& timeline)
      : config_(config),
        backend_(backend),
        timeline_(timeline),
        thermal_(config.thermal),
        temp_(config.initial_temp_c < 0.0 ? config.thermal.ambient_c
                                          : config.initial_temp_c) {
    if (config_.enabled() && config_.ladder.empty()) {
      config_.ladder = sim::gpu_frequency_ladder();
    }
  }

  bool defer_admissions() const { return deferring_; }

  // Device idle (stall): the junction cools toward the idle equilibrium.
  void observe_idle(double duration_s) {
    if (!config_.thermal_enabled || duration_s <= 0.0) return;
    temp_ = thermal_.step_temperature(temp_, backend_.idle_power_w(), duration_s);
  }

  // One emitted prefill/decode step. Called after the event lands, so
  // timeline_.now() is the event end — the timestamp actions carry.
  void observe_step(double power_w, double duration_s) {
    if (!config_.enabled()) return;
    const bool powered = power_w >= 0.0;
    if (config_.thermal_enabled) {
      temp_ = thermal_.step_temperature(
          temp_, powered ? power_w : backend_.idle_power_w(), duration_s);
    }
    const bool over_cap =
        config_.power_cap_w > 0.0 && powered && power_w > config_.power_cap_w;
    const bool over_temp =
        config_.thermal_enabled && temp_ >= config_.thermal.throttle_start_c;
    const double temp_out = config_.thermal_enabled ? temp_ : 0.0;
    if (over_cap || over_temp) {
      if (next_mode_ < config_.ladder.size() &&
          backend_.set_power_mode(config_.ladder[next_mode_])) {
        timeline_.governor_event(over_cap
                                     ? trace::GovernorEventKind::kPowerCapStepDown
                                     : trace::GovernorEventKind::kThermalStepDown,
                                 timeline_.now(), config_.ladder[next_mode_].name,
                                 power_w, temp_out);
        ++next_mode_;
      } else if (config_.defer_admissions && !deferring_) {
        // Ladder floor (or a backend without DVFS): shrink the batch instead.
        deferring_ = true;
        timeline_.governor_event(trace::GovernorEventKind::kAdmitDefer,
                                 timeline_.now(), mode_name(), power_w, temp_out);
      }
    } else if (deferring_) {
      deferring_ = false;
      timeline_.governor_event(trace::GovernorEventKind::kAdmitResume,
                               timeline_.now(), mode_name(), power_w, temp_out);
    }
  }

 private:
  std::string mode_name() const {
    if (config_.ladder.empty()) return "?";
    return config_.ladder[next_mode_ > 0 ? next_mode_ - 1 : 0].name;
  }

  GovernorConfig config_;
  TokenBackend& backend_;
  trace::ExecutionTimeline& timeline_;
  sim::ThermalModel thermal_;
  double temp_;
  std::size_t next_mode_ = 1;  // ladder[0] is the backend's starting mode
  bool deferring_ = false;
};

std::vector<std::size_t> descending_lane_list(std::size_t lanes) {
  // Descending so pop_back hands out lane 0 first (deterministic order).
  std::vector<std::size_t> free;
  free.reserve(lanes);
  for (std::size_t i = lanes; i > 0; --i) free.push_back(i - 1);
  return free;
}

}  // namespace

double EngineResult::mean_latency_s() const {
  return trace::LatencySummary::from(latencies_s).mean_s;
}

double EngineResult::p95_latency_s() const {
  return trace::LatencySummary::from(latencies_s).p95_s;
}

double EngineResult::throughput_tps() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(total_tokens) / makespan_s;
}

double EngineResult::energy_per_request_j() const {
  if (requests.empty()) return 0.0;
  return energy_j / static_cast<double>(requests.size());
}

double EngineResult::energy_per_token_j() const {
  if (total_tokens == 0) return 0.0;
  return energy_j / static_cast<double>(total_tokens);
}

// ---------------------------------------------------------------------------
// ContinuousEngine
// ---------------------------------------------------------------------------

// The steppable continuous scheduler. One Impl instance owns the loop state
// the old run-to-completion implementation kept on its stack; step() is one
// iteration of that loop, byte-identical in offline mode (the existing
// legacy-parity and trace-byte-identity tests pin this).
struct ContinuousEngine::Impl {
  Impl(TokenBackend& backend_in, GovernorConfig governor_config, bool real_time_in)
      : backend(backend_in),
        real_time(real_time_in),
        governor(governor_config, backend_in, result.timeline),
        pc(backend_in.prefix_cache_enabled()),
        pc_block_tokens(pc ? backend_in.prefix_cache_stats().block_tokens : 0),
        pc_block_bytes(pc ? backend_in.kv_usage().block_bytes : 0) {
    ORINSIM_CHECK(backend.max_lanes() > 0, "engine: backend needs at least one lane");
    active.reserve(backend.max_lanes());
  }

  TokenBackend& backend;
  bool real_time = false;
  EngineResult result;  // timeline accumulates here; finish() derives the rest
  PowerGovernor governor;

  std::vector<Request> requests;
  std::vector<StreamCallbacks> callbacks;
  std::vector<std::size_t> streamed;  // tokens already delivered per request
  std::deque<std::size_t> waiting;
  std::vector<std::size_t> active;
  std::size_t arrived = 0;  // requests moved from the arrival stream to waiting
  std::size_t retired = 0;
  bool draining = false;
  bool finished_taken = false;
  Stopwatch wall;  // real-time clock reference (construction = engine start)

  // Prefix-cache event emission, gated on the backend actually running a
  // cache so cache-free runs keep byte-identical traces. Insertions and
  // evictions happen inside backend calls; delta-snapshotting the monotonic
  // counters around those calls attributes them to the right instant.
  const bool pc;
  const std::size_t pc_block_tokens;
  const std::size_t pc_block_bytes;

  trace::ExecutionTimeline& timeline() { return result.timeline; }

  template <typename Member>
  std::size_t pc_counter(Member member) const {
    return pc ? backend.prefix_cache_stats().*member : 0;
  }

  void pc_emit_evictions(std::size_t evicted_before) {
    if (!pc) return;
    const std::size_t d = pc_counter(&PrefixCacheStats::evicted_blocks) - evicted_before;
    if (d > 0) {
      timeline().prefix_cache_event(trace::PrefixCacheEventKind::kEvict,
                                    timeline().now(), 0, d * pc_block_tokens, d, 0);
    }
  }

  void admit_arrivals() {
    while (arrived < requests.size() &&
           requests[arrived].arrival_s <= timeline().now()) {
      waiting.push_back(arrived);
      ++arrived;
    }
  }

  // Delivers tokens generated since the last flush. Recompute-after-
  // preemption replays recorded tokens without growing output beyond
  // `streamed`, so the delivered stream never repeats.
  void flush_tokens(const Request& r) {
    StreamCallbacks& cb = callbacks[r.id];
    if (!cb.on_token) {
      streamed[r.id] = r.output.size();
      return;
    }
    while (streamed[r.id] < r.output.size()) {
      cb.on_token(r, r.output[streamed[r.id]]);
      ++streamed[r.id];
    }
  }

  Step step() {
    ORINSIM_CHECK(!finished_taken, "engine: step after finish");
    if (real_time) {
      // Bring the engine clock up to the wall before admission checks so
      // wall-stamped arrivals become visible and idle gaps land in the trace
      // as explicit stalls. Skipped when there is no work at all, so a
      // polling host does not grow the trace while the engine sits idle.
      const bool work_pending =
          !active.empty() || !waiting.empty() || arrived < requests.size();
      const double now_wall = wall.elapsed_s();
      if (work_pending && now_wall > timeline().now()) {
        const double idle_from = timeline().now();
        timeline().stall_until(now_wall);
        governor.observe_idle(timeline().now() - idle_from);
      }
    }
    admit_arrivals();

    if (active.empty() && waiting.empty()) {
      // Offline: jump to the next arrival (an explicit stall event keeps the
      // trace gap-free). Real-time / fully drained: nothing to do.
      if (real_time || arrived >= requests.size()) return Step::kIdle;
      const double idle_from = timeline().now();
      timeline().stall_until(requests[arrived].arrival_s);
      governor.observe_idle(timeline().now() - idle_from);
      admit_arrivals();
    }

    // Admit FIFO up to the lane cap, stopping at the first request the
    // backend cannot hold (no queue jumping; a preempted request re-queued
    // at the front resumes before younger work). A deferring governor blocks
    // admissions while work is in flight — the batch shrinks by attrition
    // until power recovers — but never starves an idle backend.
    std::vector<Request*> admitted;
    const bool defer = governor.defer_admissions() && !active.empty();
    const std::size_t evicted_pre_admit = pc_counter(&PrefixCacheStats::evicted_blocks);
    while (!defer && !waiting.empty() && active.size() < backend.max_lanes()) {
      Request& req = requests[waiting.front()];
      if (!backend.try_admit(req)) {
        ORINSIM_CHECK(!active.empty(),
                      "engine: request does not fit even on an idle backend");
        break;
      }
      waiting.pop_front();
      req.state = RequestState::kPrefilling;
      const bool fresh = !timeline().requests()[req.id].started;
      if (fresh) {
        timeline().start_request(req.id, timeline().now());
      }
      timeline().request_event(req.id, trace::RequestEventKind::kAdmit, timeline().now());
      // One lookup per fresh admission: hit with the attached token count, or
      // miss. Resumed (preempted) requests recompute without a lookup.
      if (pc && fresh) {
        if (req.prefix_cached > 0) {
          const std::size_t blocks = req.prefix_cached / pc_block_tokens;
          timeline().prefix_cache_event(trace::PrefixCacheEventKind::kHit,
                                        timeline().now(), req.id, req.prefix_cached,
                                        blocks, blocks * pc_block_bytes);
        } else {
          timeline().prefix_cache_event(trace::PrefixCacheEventKind::kMiss,
                                        timeline().now(), req.id, 0, 0, 0);
        }
      }
      active.push_back(req.id);
      admitted.push_back(&req);
    }
    pc_emit_evictions(evicted_pre_admit);
    if (!admitted.empty()) {
      const StepCost cost = backend.prefill(admitted, active.size());
      // Batch carries the post-admission active count: the concurrency
      // integral weighs the prefill at the level the device now sustains.
      const std::size_t eid =
          timeline().emit(trace::Phase::kPrefill, cost.seconds, active.size(), cost.ctx,
                          cost.power_w, cost.breakdown);
      annotate_kv(timeline(), eid, backend);
      timeline().set_participants(eid, active);
      governor.observe_step(cost.power_w, cost.seconds);
      for (Request* r : admitted) {
        r->state = RequestState::kDecoding;
        flush_tokens(*r);  // the prefill wave sampled fresh first tokens
      }
    }

    // Every active request must be able to grow by one token before the
    // step runs. On exhaustion, evict the youngest (recompute-on-resume)
    // until the survivors fit. A prefix-cache-running backend reclaims
    // cached-but-unreferenced blocks inside try_extend before failing, so
    // request preemption is strictly the last resort.
    const std::size_t evicted_pre_extend = pc_counter(&PrefixCacheStats::evicted_blocks);
    while (true) {
      bool all_fit = true;
      for (std::size_t id : active) {
        if (!backend.try_extend(requests[id])) {
          all_fit = false;
          break;
        }
      }
      if (all_fit) break;
      ORINSIM_CHECK(active.size() > 1,
                    "engine: a lone request cannot grow its KV allocation");
      const std::size_t victim = active.back();
      active.pop_back();
      Request& evicted = requests[victim];
      backend.release(evicted);
      evicted.state = RequestState::kPreempted;
      ++evicted.preemptions;
      ++result.preemptions;
      waiting.push_front(victim);
      timeline().request_event(victim, trace::RequestEventKind::kPreempt,
                               timeline().now());
    }
    pc_emit_evictions(evicted_pre_extend);

    // One decode step for the active set. A backend that decomposes the step
    // into phases (speculative draft/verify) gets one event per sub-step,
    // each with its own participants; the empty-phases path is byte-for-byte
    // the legacy single-kDecode emission.
    std::vector<Request*> stepping;
    stepping.reserve(active.size());
    for (std::size_t id : active) stepping.push_back(&requests[id]);
    const StepCost cost = backend.decode_step(stepping);
    if (cost.phases.empty()) {
      const std::size_t eid = timeline().emit(trace::Phase::kDecode, cost.seconds,
                                              active.size(), cost.ctx, cost.power_w,
                                              cost.breakdown);
      annotate_kv(timeline(), eid, backend);
      timeline().set_participants(eid, active);
      governor.observe_step(cost.power_w, cost.seconds);
    } else {
      for (const StepCost::SubStep& sub : cost.phases) {
        const std::size_t eid = timeline().emit(
            sub.phase, sub.seconds, sub.batch > 0 ? sub.batch : active.size(),
            sub.ctx, sub.power_w, sub.breakdown);
        annotate_kv(timeline(), eid, backend);
        timeline().set_participants(eid,
                                    sub.participants.empty() ? active : sub.participants);
        governor.observe_step(sub.power_w, sub.seconds);
      }
    }
    for (std::size_t id : active) flush_tokens(requests[id]);

    // Retire finished sequences in active-list order.
    for (auto it = active.begin(); it != active.end();) {
      Request& r = requests[*it];
      if (r.done()) {
        timeline().finish_request(r.id, timeline().now());
        timeline().request_event(r.id, trace::RequestEventKind::kRetire,
                                 timeline().now());
        const std::size_t ins0 = pc_counter(&PrefixCacheStats::inserted_blocks);
        backend.release(r);  // insert-on-retire happens in here
        if (pc) {
          const std::size_t d = pc_counter(&PrefixCacheStats::inserted_blocks) - ins0;
          if (d > 0) {
            timeline().prefix_cache_event(trace::PrefixCacheEventKind::kInsert,
                                          timeline().now(), r.id, d * pc_block_tokens,
                                          d, 0);
          }
        }
        r.state = RequestState::kFinished;
        ++retired;
        it = active.erase(it);
        if (callbacks[r.id].on_finish) callbacks[r.id].on_finish(r);
      } else {
        ++it;
      }
    }
    return Step::kWorked;
  }
};

ContinuousEngine::ContinuousEngine(TokenBackend& backend, GovernorConfig governor,
                                   bool real_time)
    : impl_(std::make_unique<Impl>(backend, std::move(governor), real_time)) {}

ContinuousEngine::~ContinuousEngine() = default;

std::size_t ContinuousEngine::submit(Request req, StreamCallbacks callbacks) {
  ORINSIM_CHECK(!impl_->finished_taken, "engine: submit after finish");
  if (impl_->draining) return kRejected;
  if (impl_->real_time) {
    // Stamp with the wall clock so queue wait measures from actual
    // submission, even when the engine's virtual clock lags behind.
    req.arrival_s = impl_->wall.elapsed_s();
  } else if (!impl_->requests.empty()) {
    ORINSIM_CHECK(req.arrival_s >= impl_->requests.back().arrival_s,
                  "engine: arrivals must be non-decreasing");
  }
  req.id = impl_->requests.size();
  impl_->timeline().begin_request(req.arrival_s);
  impl_->requests.push_back(std::move(req));
  impl_->callbacks.push_back(std::move(callbacks));
  impl_->streamed.push_back(0);
  return impl_->requests.size() - 1;
}

ContinuousEngine::Step ContinuousEngine::step() { return impl_->step(); }

bool ContinuousEngine::idle() const {
  return impl_->active.empty() && impl_->waiting.empty() &&
         impl_->arrived >= impl_->requests.size();
}

bool ContinuousEngine::pending_arrivals() const {
  return impl_->arrived < impl_->requests.size();
}

std::size_t ContinuousEngine::queue_depth() const {
  return impl_->waiting.size() + (impl_->requests.size() - impl_->arrived);
}

std::size_t ContinuousEngine::active_count() const { return impl_->active.size(); }

std::size_t ContinuousEngine::submitted_count() const { return impl_->requests.size(); }

std::size_t ContinuousEngine::retired_count() const { return impl_->retired; }

void ContinuousEngine::drain() { impl_->draining = true; }

bool ContinuousEngine::draining() const { return impl_->draining; }

bool ContinuousEngine::drained() const {
  return impl_->draining && impl_->retired == impl_->requests.size();
}

const Request& ContinuousEngine::request(std::size_t id) const {
  ORINSIM_CHECK(id < impl_->requests.size(), "engine: request id out of range");
  return impl_->requests[id];
}

const trace::ExecutionTimeline& ContinuousEngine::timeline() const {
  return impl_->result.timeline;
}

EngineResult::SpeculationSummary ContinuousEngine::speculation() const {
  EngineResult::SpeculationSummary s;
  for (const Request& r : impl_->requests) {
    s.rounds += r.spec.rounds;
    s.proposed += r.spec.proposed;
    s.accepted += r.spec.accepted;
    s.emitted += r.spec.emitted;
  }
  return s;
}

void ContinuousEngine::set_device_id(std::size_t id) {
  impl_->timeline().set_device_id(id);
}

bool ContinuousEngine::governor_deferring() const {
  return impl_->governor.defer_admissions();
}

EngineResult ContinuousEngine::finish() {
  ORINSIM_CHECK(!impl_->finished_taken, "engine: finish called twice");
  ORINSIM_CHECK(idle(), "engine: finish with unretired requests");
  impl_->finished_taken = true;
  EngineResult result = std::move(impl_->result);
  finalize(result, std::move(impl_->requests), &impl_->backend);
  return result;
}

// ---------------------------------------------------------------------------
// ContinuousPolicy
// ---------------------------------------------------------------------------

EngineResult ContinuousPolicy::run(std::vector<Request> requests) {
  ORINSIM_CHECK(!requests.empty() && backend_.max_lanes() > 0,
                "engine: degenerate continuous run");
  ContinuousEngine engine(backend_, governor_);
  for (Request& r : requests) engine.submit(std::move(r));
  while (engine.step() == ContinuousEngine::Step::kWorked) {
  }
  return engine.finish();
}

// ---------------------------------------------------------------------------
// StaticBatchPolicy
// ---------------------------------------------------------------------------

EngineResult StaticBatchPolicy::run(std::vector<Request> requests) {
  ORINSIM_CHECK(max_batch_ > 0, "static policy: max_batch must be positive");
  ORINSIM_CHECK(!requests.empty(), "static policy: no requests");
  for (std::size_t i = 1; i < requests.size(); ++i) {
    ORINSIM_CHECK(requests[i].arrival_s >= requests[i - 1].arrival_s,
                  "static policy: arrivals must be non-decreasing");
  }

  EngineResult result;
  trace::ExecutionTimeline& timeline = result.timeline;
  for (const Request& r : requests) timeline.begin_request(r.arrival_s);

  // Cache batch latencies/energies per occupancy (latency depends only on
  // the batch size for fixed sequence config).
  std::vector<double> latency_by_bs(max_batch_ + 1, -1.0);
  std::vector<double> energy_by_bs(max_batch_ + 1, 0.0);
  auto batch_cost = [&](std::size_t bs) {
    if (latency_by_bs[bs] < 0.0) {
      BatchRequest br;
      br.batch = bs;
      br.seq = seq_;
      const BatchResult r = backend_.execute(br);
      ORINSIM_CHECK(!r.oom, "static policy: batch config OOMs on device");
      latency_by_bs[bs] = r.latency_s;
      energy_by_bs[bs] = r.energy_j;
    }
    return latency_by_bs[bs];
  };

  const std::size_t total = requests.size();
  std::size_t next = 0;  // first unscheduled request
  while (next < total) {
    // Wait until at least one request has arrived.
    timeline.stall_until(requests[next].arrival_s);
    const double now = timeline.now();
    // Take everything that has arrived by `now`, up to max_batch.
    std::size_t take = 0;
    while (next + take < total && take < max_batch_ &&
           requests[next + take].arrival_s <= now) {
      ++take;
    }
    const double latency = batch_cost(take);
    // One batch-granularity event; mean power reproduces the backend-reported
    // batch energy exactly (power * duration == energy).
    const double power =
        latency > 0.0 ? energy_by_bs[take] / latency : trace::kPowerUnset;
    const std::size_t eid = timeline.emit(trace::Phase::kDecode, latency, take,
                                          static_cast<double>(seq_.total), power);
    std::vector<std::size_t> batch_ids(take);
    for (std::size_t i = 0; i < take; ++i) batch_ids[i] = requests[next + i].id;
    timeline.set_participants(eid, batch_ids);
    for (std::size_t i = 0; i < take; ++i) {
      Request& r = requests[next + i];
      timeline.start_request(r.id, now);
      timeline.request_event(r.id, trace::RequestEventKind::kAdmit, now);
      timeline.finish_request(r.id, timeline.now());
      timeline.request_event(r.id, trace::RequestEventKind::kRetire, timeline.now());
      r.state = RequestState::kFinished;
      r.generated = r.max_new_tokens;  // the batch runs to completion
    }
    next += take;
  }

  finalize(result, std::move(requests), nullptr);
  return result;
}

// ---------------------------------------------------------------------------
// SimTokenBackend
// ---------------------------------------------------------------------------

namespace {

std::size_t sim_pool_blocks(const SimTokenBackend::Config& c) {
  if (c.kv_blocks > 0) return c.kv_blocks;
  // Capacity for every lane at the full sequence length: never exhausts,
  // reproducing the original (paging-free) continuous simulator.
  return c.max_concurrency * blocks_for(c.seq.input + c.seq.output, c.block_tokens);
}

std::size_t sim_block_bytes(const SimTokenBackend::Config& c) {
  const sim::ModelSpec& m = sim::model_by_key(c.model_key);
  const double per_token = m.kv_bytes_per_token(/*int8_cache=*/false);
  return static_cast<std::size_t>(per_token * static_cast<double>(c.block_tokens));
}

}  // namespace

SimTokenBackend::SimTokenBackend(const Config& config)
    : config_(config),
      sim_(config.device),
      allocator_(sim_pool_blocks(config), sim_block_bytes(config)),
      free_lanes_(descending_lane_list(config.max_concurrency)),
      lane_blocks_(config.max_concurrency),
      spec_carry_(config.max_concurrency, 0.0) {
  ORINSIM_CHECK(config_.max_concurrency > 0, "sim backend: need at least one lane");
  if (config_.speculation.enabled) {
    ORINSIM_CHECK(config_.speculation.draft_tokens >= 1,
                  "sim backend: speculation needs at least one draft token");
    ORINSIM_CHECK(config_.speculation.acceptance >= 0.0 &&
                      config_.speculation.acceptance <= 1.0,
                  "sim backend: acceptance rate must be in [0, 1]");
  }
}

bool SimTokenBackend::reserve_blocks(std::size_t lane, std::size_t tokens) {
  const std::size_t target = blocks_for(tokens, config_.block_tokens);
  std::vector<std::size_t>& held = lane_blocks_[lane];
  if (target <= held.size()) return true;
  return allocator_.alloc_many(target - held.size(), held);
}

bool SimTokenBackend::try_admit(Request& req) {
  if (free_lanes_.empty()) return false;
  const std::size_t lane = free_lanes_.back();
  if (!reserve_blocks(lane, req.context())) return false;
  free_lanes_.pop_back();
  req.lane = lane;
  spec_carry_[lane] = 0.0;  // a (re)admitted request starts its rounds fresh
  return true;
}

StepCost SimTokenBackend::prefill(const std::vector<Request*>& admitted,
                                                   std::size_t active_after) {
  const sim::ModelSpec& model = sim::model_by_key(config_.model_key);
  StepCost cost;
  // Resumed requests recharge the same prompt-length prefill: the roofline
  // model does not distinguish recompute from first compute.
  cost.seconds = sim_.roofline().prefill_s(model, config_.dtype, admitted.size(),
                                           config_.seq.input, config_.power_mode);
  cost.power_w =
      sim_.power_model().prefill_power(model, config_.dtype, config_.power_mode).total_w();
  cost.ctx = static_cast<double>(config_.seq.input);
  (void)active_after;
  return cost;
}

bool SimTokenBackend::try_extend(Request& req) {
  ORINSIM_CHECK(req.lane != Request::kNoLane, "sim backend: extend on unadmitted request");
  return reserve_blocks(req.lane, req.context() + 1);
}

StepCost SimTokenBackend::decode_step(const std::vector<Request*>& active) {
  ORINSIM_CHECK(!active.empty(), "sim backend: decode over empty set");
  if (config_.speculation.enabled) return speculative_decode_step(active);
  const sim::ModelSpec& model = sim::model_by_key(config_.model_key);
  double mean_ctx = 0.0;
  for (const Request* r : active) mean_ctx += static_cast<double>(r->context());
  mean_ctx /= static_cast<double>(active.size());
  const sim::StepBreakdown step = sim_.roofline().decode_step(
      model, config_.dtype, active.size(), mean_ctx, config_.power_mode);
  StepCost cost;
  cost.seconds = step.total_s();
  cost.power_w =
      sim_.power_model().decode_power(model, config_.dtype, step, config_.power_mode).total_w();
  cost.breakdown = step;
  cost.ctx = mean_ctx;
  for (Request* r : active) ++r->generated;
  return cost;
}

StepCost SimTokenBackend::speculative_decode_step(const std::vector<Request*>& active) {
  const SpeculationConfig& spec = config_.speculation;
  const std::size_t k = spec.draft_tokens;
  const sim::ModelSpec& target = sim::model_by_key(config_.model_key);
  const sim::ModelSpec& draft = sim::model_by_key(
      spec.draft_model_key.empty() ? config_.model_key : spec.draft_model_key);
  double mean_ctx = 0.0;
  for (const Request* r : active) mean_ctx += static_cast<double>(r->context());
  mean_ctx /= static_cast<double>(active.size());

  // One round = K lane-batched draft steps plus one target verification pass
  // over K+1 positions per lane (decode is weight-bound, so the verify pass
  // streams the weights once for all positions — the speculative win).
  const sim::StepBreakdown draft_step = sim_.roofline().decode_step(
      draft, spec.draft_dtype, active.size(), mean_ctx, config_.power_mode);
  const sim::StepBreakdown verify_step = sim_.roofline().decode_step(
      target, config_.dtype, active.size() * (k + 1), mean_ctx, config_.power_mode);
  const double draft_power =
      sim_.power_model()
          .decode_power(draft, spec.draft_dtype, draft_step, config_.power_mode)
          .total_w();
  const double verify_power =
      sim_.power_model()
          .decode_power(target, config_.dtype, verify_step, config_.power_mode)
          .total_w();

  // Token advance: the calibrated acceptance model retires
  // E = expected_tokens_per_round(a, K) tokens per round on average; a
  // per-lane fractional carry keeps each round an integer while the long-run
  // rate matches E exactly.
  const double e = sim::expected_tokens_per_round(spec.acceptance, k);
  for (Request* r : active) {
    const std::size_t remaining = r->max_new_tokens - r->generated;
    spec_carry_[r->lane] += e;
    std::size_t n =
        std::max<std::size_t>(1, static_cast<std::size_t>(spec_carry_[r->lane]));
    n = std::min(n, std::min(remaining, k + 1));
    // The engine's try_extend covered one token; reserve the rest, shrinking
    // the round if the pool cannot hold it (n == 1 never fails).
    while (n > 1 && !reserve_blocks(r->lane, r->context() + n)) --n;
    spec_carry_[r->lane] -= static_cast<double>(n);
    r->generated += n;
    ++r->spec.rounds;
    r->spec.accepted += n - 1;
    // The target compared the accepted drafts plus one rejected proposal on
    // rounds that stopped short of the bonus token.
    r->spec.proposed += (n - 1) + (n - 1 < k ? 1 : 0);
    r->spec.emitted += n;
    r->spec.target_forwards += k + 1;
  }

  auto scaled = [](const trace::StepBreakdown& b, double s) {
    trace::StepBreakdown out = b;
    out.weight_s *= s;
    out.kv_s *= s;
    out.compute_s *= s;
    out.launch_s *= s;
    out.quant_extra_s *= s;
    out.cpu_stretch_s *= s;
    return out;
  };

  StepCost cost;
  StepCost::SubStep d;
  d.phase = trace::Phase::kDraft;
  d.seconds = draft_step.total_s() * static_cast<double>(k);
  d.ctx = mean_ctx;
  d.power_w = draft_power;
  d.breakdown = scaled(draft_step, static_cast<double>(k));
  StepCost::SubStep v;
  v.phase = trace::Phase::kVerify;
  v.seconds = verify_step.total_s();
  v.ctx = mean_ctx;
  v.power_w = verify_power;
  v.breakdown = verify_step;
  cost.phases = {std::move(d), std::move(v)};
  cost.seconds = cost.phases[0].seconds + cost.phases[1].seconds;
  cost.ctx = mean_ctx;
  return cost;
}

void SimTokenBackend::release(Request& req) {
  ORINSIM_CHECK(req.lane != Request::kNoLane, "sim backend: release on unadmitted request");
  for (std::size_t id : lane_blocks_[req.lane]) allocator_.release(id);
  lane_blocks_[req.lane].clear();
  free_lanes_.push_back(req.lane);
  req.lane = Request::kNoLane;
}

bool SimTokenBackend::set_power_mode(const sim::PowerMode& mode) {
  config_.power_mode = mode;
  return true;
}

double SimTokenBackend::idle_power_w() const { return sim_.power_model().idle_w(); }

SimTokenBackend::KVUsage SimTokenBackend::kv_usage() const {
  // Only report occupancy when an explicit pool was configured: the
  // unlimited default reproduces the legacy simulator, whose traces must
  // keep serializing byte-identically (no kv fields).
  if (config_.kv_blocks == 0) return {};
  return KVUsage{allocator_.blocks_in_use(), allocator_.total_blocks(),
                 allocator_.block_bytes()};
}

// ---------------------------------------------------------------------------
// FunctionalTokenBackend
// ---------------------------------------------------------------------------

namespace {

KVCacheOptions functional_cache_options(const FunctionalTokenBackend::Config& c) {
  KVCacheOptions o;
  o.storage = c.kv_storage;
  o.layout = KVLayout::kPaged;
  o.block_tokens = c.block_tokens;
  o.max_blocks = c.kv_blocks;
  return o;
}

}  // namespace

FunctionalTokenBackend::FunctionalTokenBackend(Model& model, const Config& config,
                                               ThreadPool* pool, Model* draft)
    : model_(model),
      config_(config),
      // Speculation doubles the sequence count: sequence lane + max_lanes is
      // lane's draft branch, live only inside one decode step.
      cache_(model.config(),
             config.speculation.enabled ? config.max_lanes * 2 : config.max_lanes,
             config.max_seq > 0 ? std::min(config.max_seq, model.config().max_seq)
                                : model.config().max_seq,
             functional_cache_options(config)),
      pool_(pool),
      free_lanes_(descending_lane_list(config.max_lanes)),
      proxy_mode_(config.power_mode) {
  ORINSIM_CHECK(config_.max_lanes > 0, "functional backend: need at least one lane");
  if (config_.prefix_cache) {
    prefix_cache_ = std::make_unique<PrefixCache>(cache_, config_.prefix_cache_blocks);
  }
  const std::size_t shards = pool_ != nullptr ? pool_->shard_count() : 1;
  workspaces_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) workspaces_.emplace_back(model_.config());
  logits_.resize(config_.max_lanes * model_.config().vocab);
  if (config_.speculation.enabled) {
    ORINSIM_CHECK(draft != nullptr, "functional backend: speculation needs a draft model");
    ORINSIM_CHECK(config_.speculation.draft_tokens >= 1,
                  "functional backend: speculation needs at least one draft token");
    const TransformerConfig& t = model_.config();
    const TransformerConfig& d = draft->config();
    // Draft and target read/write the same paged KV sequences, so the KV
    // geometry (and thus the whole attention shape) must match — the
    // same-master quantized self-draft pairing.
    ORINSIM_CHECK(d.vocab == t.vocab && d.n_layers == t.n_layers &&
                      d.d_model == t.d_model && d.n_heads == t.n_heads &&
                      d.n_kv_heads == t.n_kv_heads,
                  "functional backend: draft must share the target's geometry");
    ORINSIM_CHECK(d.max_seq >= cache_.max_seq(),
                  "functional backend: draft max_seq shorter than the serving cache");
    draft_ = draft;
    const std::size_t k = config_.speculation.draft_tokens;
    draft_workspaces_.reserve(shards);
    for (std::size_t s = 0; s < shards; ++s) draft_workspaces_.emplace_back(d);
    draft_logits_.resize(shards * d.vocab);
    proposals_.resize(config_.max_lanes * k);
    plan_k_.assign(config_.max_lanes, 0);
    verify_hidden_.resize(shards * (k + 1) * t.d_model);
    verify_logits_.resize(config_.max_lanes * (k + 1) * t.vocab);
  }
}

std::span<float> FunctionalTokenBackend::lane_logits(std::size_t lane) {
  const std::size_t vocab = model_.config().vocab;
  return std::span<float>(logits_.data() + lane * vocab, vocab);
}

template <typename Fn>
void FunctionalTokenBackend::for_each(const std::vector<Request*>& reqs, const Fn& fn) {
  if (pool_ != nullptr && reqs.size() > 1) {
    pool_->parallel_for(0, reqs.size(), [&](std::size_t shard, std::size_t i) {
      fn(workspaces_[shard], *reqs[i]);
    });
  } else {
    for (Request* r : reqs) fn(workspaces_[0], *r);
  }
}

bool FunctionalTokenBackend::reserve_with_evict(std::size_t lane, std::size_t tokens) {
  if (cache_.try_reserve(lane, tokens)) return true;
  if (prefix_cache_ == nullptr) return false;
  // A max_seq refusal cannot be fixed by freeing blocks; don't drain the
  // cache for it.
  if (cache_.seq_len(lane) + tokens > cache_.max_seq()) return false;
  while (prefix_cache_->evict_lru_leaf()) {
    if (cache_.try_reserve(lane, tokens)) return true;
  }
  return false;
}

bool FunctionalTokenBackend::try_admit(Request& req) {
  ORINSIM_CHECK(!req.prompt.empty() && req.prompt.size() == req.prompt_tokens,
                "functional backend: request needs real prompt tokens");
  if (free_lanes_.empty()) return false;
  const std::size_t lane = free_lanes_.back();
  // Resume recomputes prompt + recorded output except the last token (the
  // next decode step feeds that one).
  const std::size_t history =
      req.prompt.size() + (req.generated > 0 ? req.generated - 1 : 0);
  if (prefix_cache_ != nullptr && req.generated == 0) {
    // Fresh admission: attach the longest cached prefix and reserve room for
    // the rest. Matches are trimmed to lcm(block, chunk) so the suffix
    // prefill replays the exact chunk schedule of a from-scratch prefill
    // (bit-identical logits), and capped at prompt-1 so at least one prompt
    // token always runs to produce the first-token logits.
    const std::size_t granularity =
        std::lcm(cache_.block_tokens(), std::max<std::size_t>(model_.prefill_chunk(), 1));
    const PrefixMatch match =
        prefix_cache_->match_and_retain(req.prompt, granularity, req.prompt.size() - 1);
    if (match.hit()) {
      cache_.attach_prefix(lane, match.blocks, match.tokens);
      if (reserve_with_evict(lane, history - match.tokens)) {
        free_lanes_.pop_back();
        req.lane = lane;
        req.prefix_cached = match.tokens;
        return true;
      }
      // Not even the suffix fits: hand the adopted references back (the tree
      // still holds the blocks) and report the admission failure.
      cache_.free_sequence(lane);
      return false;
    }
  }
  if (!reserve_with_evict(lane, history)) return false;
  free_lanes_.pop_back();
  req.lane = lane;
  return true;
}

StepCost FunctionalTokenBackend::prefill(
    const std::vector<Request*>& admitted, std::size_t active_after) {
  (void)active_after;
  Stopwatch watch;
  for_each(admitted, [&](InferenceWorkspace& ws, Request& r) {
    if (r.generated == 0) {
      // A prefix-cache hit attached seq_len(lane) prompt tokens as ready-made
      // KV blocks; only the suffix runs forward_chunk. The attach is aligned
      // to the chunk schedule, so these are the same chunks a from-scratch
      // prefill would have run from that offset (bit-identical, pinned).
      const std::size_t attached = cache_.seq_len(r.lane);
      model_.prefill(std::span<const TokenId>(r.prompt).subspan(attached), r.lane,
                     cache_, ws.hidden, ws);
      model_.logits_from_hidden(ws.hidden, lane_logits(r.lane));
    } else {
      // Resume: rebuild the pre-preemption cache *bit-exactly* — the prompt
      // through the same chunked prefill as the original admission, then the
      // recorded output replayed token-at-a-time exactly as decode produced
      // it (chunked and token-wise KV entries differ under SIMD kernels, so
      // re-prefilling the whole history in one chunk would perturb later
      // tokens). The last output token is not replayed: the next decode
      // step feeds it.
      model_.prefill(r.prompt, r.lane, cache_, {}, ws);
      for (std::size_t j = 0; j + 1 < r.output.size(); ++j) {
        model_.forward_token(r.output[j], r.lane, cache_, ws.hidden, ws);
      }
    }
  });
  // First-token sampling replays serially in admission order (bit-identical
  // for any worker count). Greedy argmax: deterministic, so a preempted
  // request's recompute reproduces its interrupted output exactly.
  double mean_prompt = 0.0;
  for (Request* r : admitted) {
    if (r->generated == 0) {
      r->output.push_back(static_cast<TokenId>(kernels::argmax(lane_logits(r->lane))));
      r->generated = 1;
    }
    mean_prompt += static_cast<double>(r->prompt_tokens);
  }
  mean_prompt /= static_cast<double>(admitted.size());
  StepCost cost;
  cost.seconds = watch.elapsed_s();
  cost.ctx = mean_prompt;
  if (has_power_proxy()) cost.power_w = proxy_prefill_power_w();
  return cost;
}

bool FunctionalTokenBackend::try_extend(Request& req) {
  ORINSIM_CHECK(req.lane != Request::kNoLane,
                "functional backend: extend on unadmitted request");
  return reserve_with_evict(req.lane, 1);
}

StepCost FunctionalTokenBackend::decode_step(
    const std::vector<Request*>& active) {
  ORINSIM_CHECK(!active.empty(), "functional backend: decode over empty set");
  if (draft_ != nullptr) return speculative_decode_step(active);
  Stopwatch watch;
  double mean_ctx = 0.0;
  for (const Request* r : active) mean_ctx += static_cast<double>(r->context());
  mean_ctx /= static_cast<double>(active.size());
  for_each(active, [&](InferenceWorkspace& ws, Request& r) {
    model_.forward_token(r.output.back(), r.lane, cache_, ws.hidden, ws);
    model_.logits_from_hidden(ws.hidden, lane_logits(r.lane));
  });
  // Sampling replays serially in active order after the parallel section.
  for (Request* r : active) {
    r->output.push_back(static_cast<TokenId>(kernels::argmax(lane_logits(r->lane))));
    ++r->generated;
  }
  StepCost cost;
  cost.seconds = watch.elapsed_s();
  cost.ctx = mean_ctx;
  if (has_power_proxy()) cost.power_w = proxy_decode_power_w(active.size(), mean_ctx);
  return cost;
}

// One draft/verify round over the active set. Phase discipline keeps the
// parallel sections allocation-free: every block the round can touch is
// reserved — and every shared tail copy-on-written — in the serial setup, so
// the paged pool is only ever exercised where a failure can downgrade the
// request to a plain step instead of throwing mid-flight.
StepCost FunctionalTokenBackend::speculative_decode_step(
    const std::vector<Request*>& active) {
  const std::size_t cap = config_.speculation.draft_tokens;
  const std::size_t d_model = model_.config().d_model;
  const std::size_t vocab = model_.config().vocab;
  double mean_ctx = 0.0;
  for (const Request* r : active) mean_ctx += static_cast<double>(r->context());
  mean_ctx /= static_cast<double>(active.size());

  // Serial setup: plan each lane's round. A request on its final token (or
  // one the pool cannot cover) runs the plain single-token step its
  // try_extend already guaranteed.
  Stopwatch draft_watch;
  std::vector<Request*> drafting;
  drafting.reserve(active.size());
  for (Request* r : active) {
    const std::size_t remaining = r->max_new_tokens - r->generated;
    std::size_t k = std::min(cap, remaining > 0 ? remaining - 1 : 0);
    // The verify chunk appends k+1 positions to the lane.
    if (k > 0 && !reserve_with_evict(r->lane, k + 1)) k = 0;
    if (k > 0) {
      const std::size_t branch = branch_of(r->lane);
      cache_.fork_sequence(r->lane, branch);
      // Drop the reservation blocks the fork inherited (they belong to the
      // lane), then pre-copy the shared partial tail and reserve the draft
      // room — after this the branch's appends cannot allocate or
      // copy-on-write, so the parallel draft phase cannot hit the pool.
      cache_.truncate(branch, cache_.seq_len(branch));
      if (!cache_.try_unshare_tail(branch) || !cache_.try_reserve(branch, k)) {
        cache_.free_sequence(branch);
        k = 0;
      }
    }
    plan_k_[r->lane] = k;
    if (k > 0) drafting.push_back(r);
  }

  // Parallel draft: each speculating lane runs k draft steps on its branch.
  // Proposals are greedily sampled per step into per-lane slots, so results
  // are independent of sharding.
  auto draft_one = [&](std::size_t shard, Request& r) {
    InferenceWorkspace& dws = draft_workspaces_[shard];
    const std::span<float> dlogits(draft_logits_.data() + shard * vocab, vocab);
    const std::size_t branch = branch_of(r.lane);
    const std::size_t k = plan_k_[r.lane];
    TokenId feed = r.output.back();
    for (std::size_t i = 0; i < k; ++i) {
      draft_->forward_token(feed, branch, cache_, dws.hidden, dws);
      draft_->logits_from_hidden(dws.hidden, dlogits);
      feed = static_cast<TokenId>(kernels::argmax(dlogits));
      proposals_[r.lane * cap + i] = feed;
    }
  };
  if (pool_ != nullptr && drafting.size() > 1) {
    pool_->parallel_for(0, drafting.size(), [&](std::size_t shard, std::size_t i) {
      draft_one(shard, *drafting[i]);
    });
  } else {
    for (Request* r : drafting) draft_one(0, *r);
  }

  // Release the branches before the target pass: the lane's shared tail
  // becomes private again, so the verify appends cannot copy-on-write.
  for (Request* r : drafting) cache_.free_sequence(branch_of(r->lane));
  const double draft_s = draft_watch.elapsed_s();

  // Parallel verify: speculating lanes run one forward_chunk over
  // output.back() + proposals (k+1 positions through the batched GEMM path;
  // bit-identical to the token loop under scalar kernels), plain lanes the
  // ordinary single-token forward.
  Stopwatch verify_watch;
  auto verify_one = [&](std::size_t shard, Request& r) {
    InferenceWorkspace& ws = workspaces_[shard];
    const std::size_t k = plan_k_[r.lane];
    if (k == 0) {
      model_.forward_token(r.output.back(), r.lane, cache_, ws.hidden, ws);
      model_.logits_from_hidden(ws.hidden, lane_logits(r.lane));
      return;
    }
    std::vector<TokenId> chunk(k + 1);
    chunk[0] = r.output.back();
    for (std::size_t i = 0; i < k; ++i) chunk[1 + i] = proposals_[r.lane * cap + i];
    const std::span<float> hidden(
        verify_hidden_.data() + shard * (cap + 1) * d_model, (k + 1) * d_model);
    model_.forward_chunk(chunk, r.lane, cache_, hidden, ws);
    model_.logits_from_hidden_rows(
        hidden,
        std::span<float>(verify_logits_.data() + r.lane * (cap + 1) * vocab,
                         (k + 1) * vocab),
        k + 1);
  };
  if (pool_ != nullptr && active.size() > 1) {
    pool_->parallel_for(0, active.size(), [&](std::size_t shard, std::size_t i) {
      verify_one(shard, *active[i]);
    });
  } else {
    for (Request* r : active) verify_one(0, *r);
  }

  // Serial acceptance, in active order: keep the longest agreeing prefix,
  // emit the target's corrective token on the first disagreement (or its
  // bonus token after a clean sweep), then roll the lane's KV back to
  // exactly the emitted context — rejected draft positions leave through
  // truncate's decref path, never a raw free.
  for (Request* r : active) {
    const std::size_t k = plan_k_[r->lane];
    if (k == 0) {
      r->output.push_back(static_cast<TokenId>(kernels::argmax(lane_logits(r->lane))));
      ++r->generated;
      continue;
    }
    const float* rows = verify_logits_.data() + r->lane * (cap + 1) * vocab;
    const std::size_t start_len = cache_.seq_len(r->lane) - (k + 1);
    std::size_t m = 0;
    for (;;) {
      const TokenId c = static_cast<TokenId>(
          kernels::argmax(std::span<const float>(rows + m * vocab, vocab)));
      if (m < k && c == proposals_[r->lane * cap + m]) {
        r->output.push_back(c);
        ++m;
        continue;
      }
      r->output.push_back(c);  // corrective (m < k) or bonus (m == k) token
      break;
    }
    r->generated += m + 1;
    // Keep KV for the fed token plus the m accepted proposals; the
    // corrective/bonus token is the new output.back(), fed next step.
    cache_.truncate(r->lane, start_len + 1 + m);
    ++r->spec.rounds;
    r->spec.accepted += m;
    r->spec.proposed += m + (m < k ? 1 : 0);
    r->spec.emitted += m + 1;
    r->spec.target_forwards += k + 1;
  }
  const double verify_s = verify_watch.elapsed_s();

  StepCost cost;
  cost.seconds = draft_s + verify_s;
  cost.ctx = mean_ctx;
  if (drafting.empty()) {
    // Every lane ran plain (e.g. all on their final token): legacy kDecode.
    if (has_power_proxy()) cost.power_w = proxy_decode_power_w(active.size(), mean_ctx);
    return cost;
  }
  StepCost::SubStep d;
  d.phase = trace::Phase::kDraft;
  d.seconds = draft_s;
  d.batch = drafting.size();
  d.ctx = mean_ctx;
  d.participants.reserve(drafting.size());
  for (const Request* r : drafting) d.participants.push_back(r->id);
  if (has_power_proxy()) d.power_w = proxy_decode_power_w(drafting.size(), mean_ctx);
  StepCost::SubStep v;
  v.phase = trace::Phase::kVerify;
  v.seconds = verify_s;
  v.ctx = mean_ctx;
  if (has_power_proxy()) v.power_w = proxy_decode_power_w(active.size(), mean_ctx);
  cost.phases = {std::move(d), std::move(v)};
  return cost;
}

double FunctionalTokenBackend::proxy_prefill_power_w() const {
  const sim::ModelSpec& model = sim::model_by_key(config_.power_proxy_model);
  return proxy_sim_.power_model()
      .prefill_power(model, config_.power_proxy_dtype, proxy_mode_)
      .total_w();
}

double FunctionalTokenBackend::proxy_decode_power_w(std::size_t batch,
                                                    double mean_ctx) const {
  const sim::ModelSpec& model = sim::model_by_key(config_.power_proxy_model);
  const sim::StepBreakdown step = proxy_sim_.roofline().decode_step(
      model, config_.power_proxy_dtype, batch, mean_ctx, proxy_mode_);
  return proxy_sim_.power_model()
      .decode_power(model, config_.power_proxy_dtype, step, proxy_mode_)
      .total_w();
}

bool FunctionalTokenBackend::set_power_mode(const sim::PowerMode& mode) {
  // Without the proxy there is no power model to apply the mode to; telling
  // the governor so keeps it from logging step-downs that change nothing.
  if (!has_power_proxy()) return false;
  proxy_mode_ = mode;
  return true;
}

double FunctionalTokenBackend::idle_power_w() const {
  return has_power_proxy() ? proxy_sim_.power_model().idle_w() : 0.0;
}

void FunctionalTokenBackend::release(Request& req) {
  ORINSIM_CHECK(req.lane != Request::kNoLane,
                "functional backend: release on unadmitted request");
  // Insert-on-retire: the tree retains the prompt's full-block prefix before
  // the lane's references go, so the KV state survives free_sequence. A
  // preempted request (not done) recomputes on resume instead — its partial
  // state may be released mid-block and is not worth caching.
  if (prefix_cache_ != nullptr && req.done()) {
    prefix_cache_->insert(req.prompt, cache_.block_table(req.lane));
  }
  cache_.free_sequence(req.lane);
  free_lanes_.push_back(req.lane);
  req.lane = Request::kNoLane;
}

PrefixCacheStats FunctionalTokenBackend::prefix_cache_stats() const {
  return prefix_cache_ != nullptr ? prefix_cache_->stats() : PrefixCacheStats{};
}

FunctionalTokenBackend::KVUsage FunctionalTokenBackend::kv_usage() const {
  return KVUsage{cache_.blocks_in_use(), cache_.total_blocks(), cache_.block_bytes()};
}

// ---------------------------------------------------------------------------
// run_functional_continuous
// ---------------------------------------------------------------------------

EngineResult run_functional_continuous(std::shared_ptr<const MasterWeights> master,
                                       DType dtype, const workload::PromptPool& pool,
                                       const FunctionalEngineConfig& config) {
  ORINSIM_CHECK(config.arrivals.total_requests > 0 && config.arrivals.rate_rps > 0 &&
                    config.max_concurrency > 0,
                "functional engine: degenerate config");
  ORINSIM_CHECK(config.seq.input + config.seq.output <= master->config.max_seq,
                "functional engine: sequence exceeds model max_seq");

  if (config.chat.enabled()) {
    ORINSIM_CHECK(config.chat.prompt_tokens() == config.seq.input,
                  "functional engine: chat system+user tokens must equal seq.input");
  }

  const std::vector<double> arrivals = config.arrivals.generate();
  Rng rng(config.prompt_seed);
  const std::vector<std::vector<TokenId>> prompts =
      config.chat.enabled()
          ? pool.sample_chat_batch(arrivals.size(), config.chat, rng)
          : pool.sample_batch(arrivals.size(), config.seq.input, rng);

  std::vector<Request> requests(arrivals.size());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    requests[i].id = i;
    requests[i].arrival_s = arrivals[i];
    requests[i].prompt = prompts[i];
    requests[i].prompt_tokens = prompts[i].size();
    requests[i].max_new_tokens = config.seq.output;
  }

  Model model(master, dtype);
  // The self-draft pairing: the same master quantized to the draft precision
  // proposes, the target verifies (output provably unchanged).
  std::unique_ptr<Model> draft;
  if (config.speculation.enabled) {
    draft = std::make_unique<Model>(master, config.speculation.draft_dtype);
  }
  std::unique_ptr<ThreadPool> decode_pool;
  if (config.decode_workers > 0) {
    decode_pool = std::make_unique<ThreadPool>(config.decode_workers);
  }

  FunctionalTokenBackend::Config bc;
  bc.max_lanes = config.max_concurrency;
  bc.max_seq = config.seq.input + config.seq.output;
  bc.kv_blocks = config.kv_blocks;
  bc.block_tokens = config.block_tokens;
  bc.kv_storage = config.kv_storage;
  bc.power_proxy_model = config.power_proxy_model;
  bc.prefix_cache = config.prefix_cache;
  bc.prefix_cache_blocks = config.prefix_cache_blocks;
  bc.speculation = config.speculation;
  FunctionalTokenBackend backend(model, bc, decode_pool.get(), draft.get());

  ContinuousPolicy policy(backend, config.governor);
  return policy.run(std::move(requests));
}

}  // namespace orinsim::serving
