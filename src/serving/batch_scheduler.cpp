#include "serving/batch_scheduler.h"

#include <algorithm>

#include "core/error.h"

namespace orinsim::serving {

namespace {

std::vector<double> request_latencies(const ScheduleResult& r) {
  std::vector<double> lat;
  lat.reserve(r.requests.size());
  for (const auto& req : r.requests) lat.push_back(req.total_latency_s());
  return lat;
}

}  // namespace

double ScheduleResult::mean_latency_s() const {
  return trace::LatencySummary::from(request_latencies(*this)).mean_s;
}

double ScheduleResult::p95_latency_s() const {
  return trace::LatencySummary::from(request_latencies(*this)).p95_s;
}

double ScheduleResult::achieved_rps() const {
  return makespan_s > 0.0 ? static_cast<double>(requests.size()) / makespan_s : 0.0;
}

ScheduleResult simulate_serving(InferenceBackend& backend, const SchedulerConfig& config) {
  ORINSIM_CHECK(config.total_requests > 0, "scheduler: no requests");
  ORINSIM_CHECK(config.arrival_rate_rps > 0.0, "scheduler: arrival rate must be positive");
  workload::ArrivalSpec spec;
  spec.kind = config.arrival_kind;
  spec.rate_rps = config.arrival_rate_rps;
  spec.seed = config.arrival_seed;
  return simulate_serving(backend, config,
                          workload::generate_arrivals(spec, config.total_requests));
}

ScheduleResult simulate_serving(InferenceBackend& backend, const SchedulerConfig& config,
                                const std::vector<double>& arrival_times) {
  ORINSIM_CHECK(config.max_batch > 0, "scheduler: max_batch must be positive");
  ORINSIM_CHECK(!arrival_times.empty(), "scheduler: no requests");
  for (std::size_t i = 1; i < arrival_times.size(); ++i) {
    ORINSIM_CHECK(arrival_times[i] >= arrival_times[i - 1],
                  "scheduler: arrivals must be non-decreasing");
  }

  ScheduleResult result;
  trace::ExecutionTimeline& timeline = result.timeline;
  for (double arrival : arrival_times) timeline.begin_request(arrival);

  // Cache batch latencies/energies per occupancy (latency depends only on
  // the batch size for fixed sequence config).
  std::vector<double> latency_by_bs(config.max_batch + 1, -1.0);
  std::vector<double> energy_by_bs(config.max_batch + 1, 0.0);
  auto batch_cost = [&](std::size_t bs) {
    if (latency_by_bs[bs] < 0.0) {
      BatchRequest br;
      br.batch = bs;
      br.seq = config.seq;
      const BatchResult r = backend.execute(br);
      ORINSIM_CHECK(!r.oom, "scheduler: batch config OOMs on device");
      latency_by_bs[bs] = r.latency_s;
      energy_by_bs[bs] = r.energy_j;
    }
    return latency_by_bs[bs];
  };

  const std::size_t total = arrival_times.size();
  std::size_t next = 0;  // first unscheduled request
  while (next < total) {
    // Wait until at least one request has arrived.
    timeline.stall_until(arrival_times[next]);
    const double now = timeline.now();
    // Take everything that has arrived by `now`, up to max_batch.
    std::size_t take = 0;
    while (next + take < total && take < config.max_batch &&
           arrival_times[next + take] <= now) {
      ++take;
    }
    const double latency = batch_cost(take);
    // One batch-granularity event; mean power reproduces the backend-reported
    // batch energy exactly (power * duration == energy).
    const double power =
        latency > 0.0 ? energy_by_bs[take] / latency : trace::kPowerUnset;
    timeline.emit(trace::Phase::kDecode, latency, take,
                  static_cast<double>(config.seq.total), power);
    for (std::size_t i = 0; i < take; ++i) {
      timeline.start_request(next + i, now);
      timeline.finish_request(next + i, timeline.now());
    }
    next += take;
  }

  // Everything below is read off the event stream.
  result.requests.resize(total);
  for (std::size_t i = 0; i < total; ++i) {
    const trace::RequestRecord& rec = timeline.requests()[i];
    result.requests[i] = RequestStats{rec.arrival_s, rec.start_s, rec.finish_s};
  }
  result.batches_run = timeline.count(trace::Phase::kDecode);
  result.makespan_s = timeline.now();
  result.total_energy_j = timeline.total_energy_j();
  result.mean_batch_occupancy = timeline.mean_batch(trace::Phase::kDecode);
  return result;
}

}  // namespace orinsim::serving
