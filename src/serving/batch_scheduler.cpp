#include "serving/batch_scheduler.h"

#include <algorithm>

#include "core/error.h"
#include "serving/engine.h"

namespace orinsim::serving {

namespace {

std::vector<double> request_latencies(const ScheduleResult& r) {
  std::vector<double> lat;
  lat.reserve(r.requests.size());
  for (const auto& req : r.requests) lat.push_back(req.total_latency_s());
  return lat;
}

}  // namespace

double ScheduleResult::mean_latency_s() const {
  return trace::LatencySummary::from(request_latencies(*this)).mean_s;
}

double ScheduleResult::p95_latency_s() const {
  return trace::LatencySummary::from(request_latencies(*this)).p95_s;
}

double ScheduleResult::achieved_rps() const {
  return makespan_s > 0.0 ? static_cast<double>(requests.size()) / makespan_s : 0.0;
}

ScheduleResult simulate_serving(InferenceBackend& backend, const SchedulerConfig& config) {
  ORINSIM_CHECK(config.arrivals.total_requests > 0, "scheduler: no requests");
  ORINSIM_CHECK(config.arrivals.rate_rps > 0.0, "scheduler: arrival rate must be positive");
  return simulate_serving(backend, config, config.arrivals.generate());
}

// Adapter over the unified engine: StaticBatchPolicy emits the identical
// schedule the original standalone loop produced, so every metric below
// (derived from the same event stream) is unchanged.
ScheduleResult simulate_serving(InferenceBackend& backend, const SchedulerConfig& config,
                                const std::vector<double>& arrival_times) {
  ORINSIM_CHECK(config.max_batch > 0, "scheduler: max_batch must be positive");
  ORINSIM_CHECK(!arrival_times.empty(), "scheduler: no requests");

  std::vector<Request> requests(arrival_times.size());
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    requests[i].id = i;
    requests[i].arrival_s = arrival_times[i];
    requests[i].prompt_tokens = config.seq.input;
    requests[i].max_new_tokens = config.seq.output;
  }

  StaticBatchPolicy policy(backend, config.max_batch, config.seq);
  EngineResult run = policy.run(std::move(requests));

  ScheduleResult result;
  result.timeline = std::move(run.timeline);
  result.requests.resize(arrival_times.size());
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    const trace::RequestRecord& rec = result.timeline.requests()[i];
    result.requests[i] = RequestStats{rec.arrival_s, rec.start_s, rec.finish_s};
  }
  result.batches_run = run.decode_steps;
  result.makespan_s = run.makespan_s;
  result.total_energy_j = run.energy_j;
  result.mean_batch_occupancy = result.timeline.mean_batch(trace::Phase::kDecode);
  return result;
}

}  // namespace orinsim::serving
