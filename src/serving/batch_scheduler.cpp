#include "serving/batch_scheduler.h"

#include <algorithm>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::serving {

double ScheduleResult::mean_latency_s() const {
  std::vector<double> lat;
  lat.reserve(requests.size());
  for (const auto& r : requests) lat.push_back(r.total_latency_s());
  return mean(lat);
}

double ScheduleResult::p95_latency_s() const {
  std::vector<double> lat;
  lat.reserve(requests.size());
  for (const auto& r : requests) lat.push_back(r.total_latency_s());
  return percentile(lat, 95.0);
}

double ScheduleResult::achieved_rps() const {
  return makespan_s > 0.0 ? static_cast<double>(requests.size()) / makespan_s : 0.0;
}

ScheduleResult simulate_serving(const SimSession& session, const SchedulerConfig& config) {
  ORINSIM_CHECK(config.total_requests > 0, "scheduler: no requests");
  ORINSIM_CHECK(config.arrival_rate_rps > 0.0, "scheduler: arrival rate must be positive");
  std::vector<double> arrivals(config.total_requests);
  const double spacing = 1.0 / config.arrival_rate_rps;
  for (std::size_t i = 0; i < config.total_requests; ++i) {
    arrivals[i] = static_cast<double>(i) * spacing;
  }
  return simulate_serving(session, config, arrivals);
}

ScheduleResult simulate_serving(const SimSession& session, const SchedulerConfig& config,
                                const std::vector<double>& arrival_times) {
  ORINSIM_CHECK(config.max_batch > 0, "scheduler: max_batch must be positive");
  ORINSIM_CHECK(!arrival_times.empty(), "scheduler: no requests");
  for (std::size_t i = 1; i < arrival_times.size(); ++i) {
    ORINSIM_CHECK(arrival_times[i] >= arrival_times[i - 1],
                  "scheduler: arrivals must be non-decreasing");
  }

  ScheduleResult result;
  result.requests.resize(arrival_times.size());
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    result.requests[i].arrival_s = arrival_times[i];
  }

  // Cache batch latencies/energies per occupancy (latency depends only on
  // the batch size for fixed sequence config).
  std::vector<double> latency_by_bs(config.max_batch + 1, -1.0);
  std::vector<double> energy_by_bs(config.max_batch + 1, 0.0);
  auto batch_cost = [&](std::size_t bs) {
    if (latency_by_bs[bs] < 0.0) {
      BatchRequest br;
      br.batch = bs;
      br.seq = config.seq;
      const BatchResult r = session.run(br);
      ORINSIM_CHECK(!r.oom, "scheduler: batch config OOMs on device");
      latency_by_bs[bs] = r.latency_s;
      energy_by_bs[bs] = r.energy_j;
    }
    return latency_by_bs[bs];
  };

  const std::size_t total = result.requests.size();
  double now = 0.0;
  std::size_t next = 0;  // first unscheduled request
  double occupancy_sum = 0.0;
  while (next < total) {
    // Wait until at least one request has arrived.
    now = std::max(now, result.requests[next].arrival_s);
    // Take everything that has arrived by `now`, up to max_batch.
    std::size_t take = 0;
    while (next + take < total && take < config.max_batch &&
           result.requests[next + take].arrival_s <= now) {
      ++take;
    }
    const double latency = batch_cost(take);
    result.total_energy_j += energy_by_bs[take];
    for (std::size_t i = 0; i < take; ++i) {
      result.requests[next + i].start_s = now;
      result.requests[next + i].finish_s = now + latency;
    }
    occupancy_sum += static_cast<double>(take);
    now += latency;
    next += take;
    ++result.batches_run;
  }
  result.makespan_s = now;
  result.mean_batch_occupancy =
      result.batches_run > 0 ? occupancy_sum / static_cast<double>(result.batches_run) : 0.0;
  return result;
}

}  // namespace orinsim::serving
