#include "serving/metrics.h"

#include "core/error.h"

namespace orinsim::serving {

double token_throughput_tps(std::size_t batch, std::size_t input_tokens,
                            std::size_t output_tokens, double batch_latency_s) {
  return token_throughput_tps(batch * (input_tokens + output_tokens), batch_latency_s);
}

double token_throughput_tps(std::size_t total_tokens, double batch_latency_s) {
  ORINSIM_CHECK(batch_latency_s > 0.0, "throughput: latency must be positive");
  return static_cast<double>(total_tokens) / batch_latency_s;
}

double incremental_memory_gb(double peak_gb, double baseline_gb) {
  ORINSIM_CHECK(peak_gb >= baseline_gb, "incremental memory: peak below baseline");
  return peak_gb - baseline_gb;
}

}  // namespace orinsim::serving
