// The unified request-lifecycle serving engine.
//
// One scheduler spine runs every serving experiment in the repo:
//
//   RequestScheduler (policy)          TokenBackend (execution)
//   ------------------------          -------------------------
//   StaticBatchPolicy                  (drives an InferenceBackend directly)
//   ContinuousPolicy          x        SimTokenBackend     (roofline + power)
//                                      FunctionalTokenBackend (real decode
//                                                         over a paged KVCache)
//
// Policies own the clock and the queue: they admit requests, charge step
// costs into a trace::ExecutionTimeline (StepEvents plus per-request
// admit/preempt/retire RequestEvents), and preempt on KV block exhaustion.
// Backends own the work: claim KV capacity, run/charge a prefill wave or a
// decode step, release capacity. Every metric the engine reports — latency
// percentiles, makespan, energy, occupancy, KV-block utilization — is read
// off the one event stream, never accumulated on the side.
//
// Preemption contract: when a running request cannot extend its KV
// allocation by one token, the policy evicts the *youngest* active request
// (releasing all its blocks) and re-queues it at the front of the waiting
// queue. Eviction repeats until the survivors fit; a request that cannot
// run alone is a configuration error (throws). Preempted requests resume by
// recomputation: the functional backend re-prefills prompt + recorded
// output, which under greedy decoding reproduces the interrupted sequence
// exactly, so preemption changes latency but never tokens.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "model/transformer.h"
#include "serving/prefix_cache.h"
#include "serving/request.h"
#include "serving/session.h"
#include "sim/device.h"
#include "sim/inference_sim.h"
#include "sim/thermal.h"
#include "trace/timeline.h"
#include "workload/arrivals.h"
#include "workload/prompt_pool.h"

namespace orinsim::serving {

// Cost of one engine step (a prefill wave or a decode step), as reported by
// the backend and charged into the timeline by the policy. Simulated
// backends fill power/breakdown; the functional backend measures wall-clock
// and leaves power unset (no board sensor on this host).
struct StepCost {
  double seconds = 0.0;
  double power_w = trace::kPowerUnset;
  trace::StepBreakdown breakdown;
  double ctx = 0.0;  // context annotation for the StepEvent

  // Optional decomposition of the step into distinct trace phases. Empty
  // (the default) keeps the legacy single-event emission, so every existing
  // backend's traces stay byte-identical. A speculative decode step returns
  // one kDraft and one kVerify sub-step instead of a kDecode event; the
  // policy emits them in order, each with its own participants.
  struct SubStep {
    trace::Phase phase = trace::Phase::kDecode;
    double seconds = 0.0;
    std::size_t batch = 0;  // 0: the active-set size
    double ctx = 0.0;
    double power_w = trace::kPowerUnset;
    trace::StepBreakdown breakdown;
    std::vector<std::size_t> participants;  // request ids; empty: all active
  };
  std::vector<SubStep> phases;
};

// Speculative serving: the backend runs greedy draft/verify rounds inside
// each decode step, retiring up to draft_tokens+1 tokens per target pass
// while emitting exactly what plain greedy decoding would (the speculative
// contract; pinned bit-identical by test under scalar kernels). Off by
// default: the engine's schedule and traces are untouched.
struct SpeculationConfig {
  bool enabled = false;
  std::size_t draft_tokens = 4;  // K: proposals per round
  // Simulated backends only — calibrated per-token acceptance rate feeding
  // sim::expected_tokens_per_round (the functional backend measures its own).
  double acceptance = 0.8;
  // Simulated draft model (device_catalog key). Empty: the target model
  // quantized to draft_dtype acts as its own draft (self-draft pairing).
  std::string draft_model_key;
  DType draft_dtype = DType::kI8;
};

// Token-level execution backend: the engine advances admitted requests one
// decode step at a time through this interface.
class TokenBackend {
 public:
  struct KVUsage {
    std::size_t used_blocks = 0;
    std::size_t total_blocks = 0;  // 0: backend tracks no block pool
    std::size_t block_bytes = 0;
  };

  virtual ~TokenBackend() = default;

  // Concurrency cap (lanes the backend can decode together).
  virtual std::size_t max_lanes() const = 0;
  // Claims a lane plus KV blocks for the request's current context (prompt,
  // plus recorded output when resuming after preemption). All-or-nothing;
  // false leaves the backend unchanged.
  virtual bool try_admit(Request& req) = 0;
  // Runs/charges one prefill wave over the just-admitted requests.
  // `active_after` is the running-set size after admission (the concurrency
  // the device sustains during the wave). The functional backend also
  // samples each fresh request's first token here (generated becomes 1).
  virtual StepCost prefill(const std::vector<Request*>& admitted,
                           std::size_t active_after) = 0;
  // Reserves KV room for one more token. Idempotent until the token is
  // produced; false is the policy's preemption trigger.
  virtual bool try_extend(Request& req) = 0;
  // Runs/charges one decode step over the active set, appending one token to
  // every request (callers guarantee try_extend succeeded for each).
  virtual StepCost decode_step(const std::vector<Request*>& active) = 0;
  // Releases the request's lane and KV blocks (retirement or preemption).
  virtual void release(Request& req) = 0;

  virtual KVUsage kv_usage() const { return {}; }
  virtual std::string name() const = 0;

  // Power-mode control for the governor. A backend that models DVFS applies
  // the mode to its subsequent per-step cost/power estimates and returns
  // true; backends without a power model ignore the request (false), which
  // tells the governor mode-stepping cannot help and admission deferral is
  // its only lever.
  virtual bool set_power_mode(const sim::PowerMode& mode) {
    (void)mode;
    return false;
  }
  // Board idle draw (W) the governor's thermal loop charges during stalls;
  // 0 when the backend attaches no power.
  virtual double idle_power_w() const { return 0.0; }

  // Cross-request prefix cache, when the backend runs one: the policy gates
  // hit/miss/insert/evict timeline emission on prefix_cache_enabled() so
  // cache-free runs keep byte-identical traces, and delta-snapshots the
  // stats around backend calls to attribute insertions and evictions.
  virtual bool prefix_cache_enabled() const { return false; }
  virtual PrefixCacheStats prefix_cache_stats() const { return {}; }

  // True when decode_step runs speculative draft/verify rounds (and thus may
  // retire several tokens per step and emit kDraft/kVerify sub-steps).
  virtual bool speculation_enabled() const { return false; }
};

// Power/thermal governor for ContinuousPolicy. Observes every powered step
// the policy emits; when the board power cap is exceeded or the thermal RC
// loop crosses the throttle threshold, it steps the backend's power mode
// down `ladder` (Table 2's GPU-frequency descent by default) and, once the
// ladder floor is reached, defers new admissions until the violation clears.
// Every action lands in the timeline as a GovernorEvent. Default-constructed
// config = governor off: the policy's schedule and trace are untouched.
struct GovernorConfig {
  double power_cap_w = 0.0;     // board power cap; 0 disables the cap
  bool thermal_enabled = false; // run the RC loop over step timestamps
  sim::ThermalParams thermal;
  double initial_temp_c = -1.0; // <0: start at ambient
  // Descending power-mode ladder; index 0 must be the backend's configured
  // mode. Empty selects sim::gpu_frequency_ladder() (MaxN -> A -> B).
  std::vector<sim::PowerMode> ladder;
  bool defer_admissions = true; // throttle admissions at the ladder floor

  bool enabled() const { return power_cap_w > 0.0 || thermal_enabled; }
};

// Everything a serving run produces, derived from the event stream.
struct EngineResult {
  std::vector<Request> requests;      // final states, outputs included
  std::vector<double> latencies_s;    // completed requests, retirement order
  double makespan_s = 0.0;
  double energy_j = 0.0;              // 0 when the backend reports no power
  double mean_active = 0.0;           // time-weighted concurrent sequences
  std::size_t decode_steps = 0;
  std::size_t total_tokens = 0;       // prompt + generated across requests
  std::size_t preemptions = 0;
  double mean_kv_utilization = 0.0;   // 0 when the backend tracks no pool
  std::size_t peak_kv_blocks = 0;
  std::size_t peak_kv_bytes = 0;

  // Prefix-cache behaviour, derived from the timeline's PrefixCacheEvents
  // (all zero when the backend ran no cache). Conservation invariants,
  // pinned by tests: hits + misses == lookups (one lookup per fresh
  // admission), and bytes_saved is exactly the hit tokens' KV footprint.
  struct PrefixCacheSummary {
    std::size_t lookups = 0;
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t hit_tokens = 0;
    std::size_t bytes_saved = 0;
    std::size_t inserted_blocks = 0;
    std::size_t evicted_blocks = 0;

    double hit_rate() const {
      return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
    }
  };
  PrefixCacheSummary prefix_cache;

  // Speculative draft/verify behaviour, summed over the requests' per-round
  // counters (all zero when the backend ran no speculation). decode_steps
  // counts kDecode + kVerify events, so a speculative run's step count stays
  // comparable to its plain counterpart (one target pass per step either
  // way).
  struct SpeculationSummary {
    std::size_t rounds = 0;
    std::size_t proposed = 0;  // draft tokens the target compared
    std::size_t accepted = 0;
    std::size_t emitted = 0;   // tokens retired by speculative rounds

    double acceptance_rate() const {
      return proposed > 0
                 ? static_cast<double>(accepted) / static_cast<double>(proposed)
                 : 0.0;
    }
    double tokens_per_round() const {
      return rounds > 0 ? static_cast<double>(emitted) / static_cast<double>(rounds)
                        : 0.0;
    }
  };
  SpeculationSummary speculation;

  // Per-request energy attribution, indexed by request id. Sums to energy_j
  // (the conservation invariant, pinned by test): every powered step's
  // energy is split across the requests active in that step.
  std::vector<RequestMetrics> request_metrics;
  // Power-mode step-downs the governor performed (0: governor off/quiet).
  std::size_t governor_step_downs = 0;

  // The full event stream the metrics above are derived from.
  trace::ExecutionTimeline timeline;

  double mean_latency_s() const;
  double p95_latency_s() const;
  double throughput_tps() const;
  // Mean attributed energy per request / per token (0 without power).
  double energy_per_request_j() const;
  double energy_per_token_j() const;
};

// A scheduling policy: consumes the request list (arrivals pre-filled) and
// produces the executed schedule.
class RequestScheduler {
 public:
  virtual ~RequestScheduler() = default;
  virtual EngineResult run(std::vector<Request> requests) = 0;
  virtual std::string policy_name() const = 0;
};

// Per-request streaming hooks, fired by ContinuousEngine as the backend
// produces tokens. on_token fires once per *newly generated* token in
// generation order (a preempted request's recompute replays silently — the
// delivered stream never repeats or reorders); on_finish fires at
// retirement, after the request's last on_token. Only backends that record
// real tokens (FunctionalTokenBackend) drive on_token; the sim backend
// counts tokens without materializing them. Callbacks run on the thread
// calling step() — keep them cheap (hand off to a queue for slow I/O).
struct StreamCallbacks {
  std::function<void(const Request&, TokenId)> on_token;
  std::function<void(const Request&)> on_finish;
};

// The continuous scheduler as an incrementally-steppable object: submit
// requests at any time, advance the schedule one engine iteration per
// step(), poll request state, stream tokens through StreamCallbacks, drain
// for graceful shutdown. ContinuousPolicy::run is exactly submit-all +
// step-until-idle + finish, so the offline path and the serving daemon
// execute the same loop body (one source of truth for admission, preemption
// and retirement semantics).
//
// Not thread-safe: every method must be called from one thread (the server
// wraps it in server::EngineHost, which owns that thread). Two clocks:
//  - offline (default): virtual time. Arrivals are taken from
//    Request::arrival_s (non-decreasing, checked); when the engine goes idle
//    with future arrivals pending, step() stalls the clock forward to the
//    next arrival — bit-identical behaviour to the pre-steppable run loop.
//  - real_time: the wall clock. submit() stamps arrival_s with the current
//    engine time; before each working step the clock is stalled up to the
//    wall-clock elapsed time, so idle gaps between bursts appear as explicit
//    kStall events and latencies/energy integrate over real time.
class ContinuousEngine {
 public:
  // submit() result when the engine is draining and admits no new work.
  static constexpr std::size_t kRejected = static_cast<std::size_t>(-1);

  enum class Step { kIdle, kWorked };

  ContinuousEngine(TokenBackend& backend, GovernorConfig governor = {},
                   bool real_time = false);
  ~ContinuousEngine();

  ContinuousEngine(const ContinuousEngine&) = delete;
  ContinuousEngine& operator=(const ContinuousEngine&) = delete;

  // Registers a request and returns its id (its index; Request::id is
  // overwritten). Offline: arrival_s must be >= the previous submission's.
  // Real-time: arrival_s is stamped with the engine clock. Returns kRejected
  // after drain() — the caller owes the client a "shutting down" response.
  std::size_t submit(Request req, StreamCallbacks callbacks = {});

  // One engine iteration: admit what fits, run a prefill wave for fresh
  // admissions, grow every active sequence (preempting the youngest on KV
  // exhaustion), one decode step, retire finished requests. kIdle = nothing
  // to do (no waiting or active work, and offline no future arrivals).
  Step step();

  // True when no request is waiting or active (step() would return kIdle,
  // except for offline future arrivals — see pending_arrivals).
  bool idle() const;
  // Offline: submitted requests whose arrival_s is still in the future.
  bool pending_arrivals() const;

  // Requests submitted but not yet admitted to a lane (the 429 backpressure
  // signal at the serving boundary).
  std::size_t queue_depth() const;
  std::size_t active_count() const;
  std::size_t submitted_count() const;
  std::size_t retired_count() const;

  // Graceful shutdown: every subsequent submit() is rejected; everything
  // already submitted (queued or active) still runs to retirement. Calling
  // drain() again is a no-op.
  void drain();
  bool draining() const;
  // True once drain() was called and every submitted request retired.
  bool drained() const;

  // Poll access to a submitted request's current state (valid until
  // finish()).
  const Request& request(std::size_t id) const;
  const trace::ExecutionTimeline& timeline() const;

  // Live speculative-decoding counters (sum over submitted requests; all
  // zero when the backend runs no speculation). The serving daemon's
  // /metrics reads this without waiting for finish().
  EngineResult::SpeculationSummary speculation() const;

  // Fleet integration. set_device_id tags the engine's timeline (and thus
  // every exported event) with the owning device; single-device callers
  // never set it, keeping their trace serialization untouched.
  // governor_deferring is the router's throttle signal: true while the
  // governor holds admissions at the power-mode ladder floor.
  void set_device_id(std::size_t id);
  bool governor_deferring() const;

  // Consumes the engine: derives EngineResult off the event stream. Requires
  // idle() with no pending arrivals (everything submitted has retired).
  EngineResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Token-level admit/retire scheduling (Orca/vLLM style) over any
// TokenBackend, with preemption on KV block exhaustion. Reproduces
// simulate_continuous exactly when the backend never runs out of blocks.
class ContinuousPolicy : public RequestScheduler {
 public:
  explicit ContinuousPolicy(TokenBackend& backend, GovernorConfig governor = {})
      : backend_(backend), governor_(std::move(governor)) {}

  EngineResult run(std::vector<Request> requests) override;
  std::string policy_name() const override { return "continuous"; }

 private:
  TokenBackend& backend_;
  GovernorConfig governor_;
};

// The paper's static batching: wait for arrivals, take up to max_batch, run
// the whole batch to completion through an InferenceBackend, repeat.
// Identical schedule to simulate_serving (which now adapts onto this).
class StaticBatchPolicy : public RequestScheduler {
 public:
  StaticBatchPolicy(InferenceBackend& backend, std::size_t max_batch,
                    workload::SeqConfig seq)
      : backend_(backend), max_batch_(max_batch), seq_(seq) {}

  EngineResult run(std::vector<Request> requests) override;
  std::string policy_name() const override { return "static"; }

 private:
  InferenceBackend& backend_;
  std::size_t max_batch_ = 32;
  workload::SeqConfig seq_;
};

// Roofline + power-model backend: charges the exact per-step costs of the
// original continuous-batching simulator, plus block accounting so
// preemption studies run without the functional engine. Resume-after-
// preemption recharges prefill at the prompt length (the simulator does not
// model partial-context recompute).
class SimTokenBackend : public TokenBackend {
 public:
  struct Config {
    std::string model_key = "llama3";
    DType dtype = DType::kF16;
    std::size_t max_concurrency = 32;
    workload::SeqConfig seq = workload::seq_config_default();
    sim::PowerMode power_mode = sim::power_mode_maxn();
    // Hardware the roofline/memory/power models run on: any device_catalog
    // entry's spec. Defaults to the paper's Orin AGX 64GB, so existing
    // configs keep their exact cost model; a fleet assigns heterogeneous
    // specs so each device yields its own roofline-consistent step costs.
    sim::DeviceSpec device = sim::orin_agx_64gb();
    // Block pool. 0 blocks = capacity for max_concurrency full sequences
    // (never exhausts, exact simulate_continuous behaviour).
    std::size_t kv_blocks = 0;
    std::size_t block_tokens = kDefaultKVBlockTokens;
    // Speculative decoding: each decode step becomes one draft/verify round
    // charged as K draft steps (draft model roofline) plus one verification
    // pass (target roofline at batch x (K+1) positions), retiring the
    // calibrated sim::expected_tokens_per_round(acceptance, K) tokens per
    // lane via a fractional carry. Off: exact legacy behaviour.
    SpeculationConfig speculation;
  };

  explicit SimTokenBackend(const Config& config);

  std::size_t max_lanes() const override { return config_.max_concurrency; }
  bool try_admit(Request& req) override;
  StepCost prefill(const std::vector<Request*>& admitted,
                   std::size_t active_after) override;
  bool try_extend(Request& req) override;
  StepCost decode_step(const std::vector<Request*>& active) override;
  void release(Request& req) override;
  KVUsage kv_usage() const override;
  std::string name() const override { return "sim:" + config_.model_key; }
  // Governor hook: subsequent roofline/power estimates use the new mode.
  bool set_power_mode(const sim::PowerMode& mode) override;
  double idle_power_w() const override;
  bool speculation_enabled() const override { return config_.speculation.enabled; }

  const Config& config() const noexcept { return config_; }

 private:
  bool reserve_blocks(std::size_t lane, std::size_t tokens);
  StepCost speculative_decode_step(const std::vector<Request*>& active);

  Config config_;
  sim::InferenceSim sim_;
  BlockAllocator allocator_;
  std::vector<std::size_t> free_lanes_;              // LIFO, deterministic
  std::vector<std::vector<std::size_t>> lane_blocks_;  // held block ids
  // Fractional expected-tokens-per-round carry per lane (speculation only):
  // a round retires floor(carry) tokens and keeps the remainder, so the
  // long-run rate matches the acceptance model exactly.
  std::vector<double> spec_carry_;
};

// Real token-by-token decoding over a paged KVCache: Model::forward_token
// per lane per step, greedy argmax sampling (deterministic, so preemption
// recompute is lossless), measured wall-clock costs, optional lane-parallel
// decode on a ThreadPool (one workspace per shard; sampling replayed
// serially in lane order, so outputs are bit-identical for any worker
// count — the same discipline as Model::generate).
class FunctionalTokenBackend : public TokenBackend {
 public:
  struct Config {
    std::size_t max_lanes = 4;
    std::size_t max_seq = 0;  // 0: model max_seq
    // Block pool across all lanes. 0 = full capacity (never exhausts);
    // smaller pools oversubscribe lanes and trigger preemption.
    std::size_t kv_blocks = 0;
    std::size_t block_tokens = kDefaultKVBlockTokens;
    KVStorage kv_storage = KVStorage::kF32;
    // Calibrated power proxy: when non-empty, every measured prefill/decode
    // step carries the PowerModel estimate for this paper-scale model at the
    // step's batch and context under `power_mode` — served functional
    // traffic then feeds the same energy / PowerSignal / PowerSampler
    // pipeline as the simulator (this host has no board sensor, so wattage
    // is modeled even though durations are measured). Empty: power unset,
    // trace serialization identical to the proxy-free engine.
    std::string power_proxy_model;
    DType power_proxy_dtype = DType::kF16;
    sim::PowerMode power_mode = sim::power_mode_maxn();
    // Cross-request prefix cache (serving/prefix_cache.h): fresh admissions
    // attach the longest cached prefix of their prompt and prefill only the
    // suffix; retirements insert their prompt's full-block prefix; allocator
    // exhaustion evicts cached-but-unreferenced blocks LRU-first, before the
    // policy preempts anything. Matches are trimmed to lcm(block_tokens,
    // prefill_chunk) and capped at prompt-1 tokens, so greedy outputs stay
    // bit-identical to a cache-free run (pinned by test). Off by default:
    // the engine's schedule and traces are untouched.
    bool prefix_cache = false;
    // Cap on tree residency in blocks (0: bounded only by the pool).
    std::size_t prefix_cache_blocks = 0;
    // Speculative decoding (enabled/draft_tokens; the acceptance fields are
    // sim-only — this backend measures real acceptance). Requires a draft
    // model at construction. Each lane's draft branch is a copy-on-write
    // fork of its KV sequence (sequence lane + max_lanes), rolled back with
    // truncate() after verification; accepted proposals are verified in one
    // forward_chunk pass over K+1 positions.
    SpeculationConfig speculation;
  };

  // `model` must outlive the backend; `pool` may be null (serial decode).
  // `draft` is required iff config.speculation.enabled: it must share the
  // target's geometry (layers, heads, d_model, vocab) so draft and target
  // can read the same paged KV sequences — the same-master quantized
  // self-draft pairing the speculative bench measures.
  FunctionalTokenBackend(Model& model, const Config& config, ThreadPool* pool = nullptr,
                         Model* draft = nullptr);

  std::size_t max_lanes() const override { return config_.max_lanes; }
  bool try_admit(Request& req) override;
  StepCost prefill(const std::vector<Request*>& admitted,
                   std::size_t active_after) override;
  bool try_extend(Request& req) override;
  StepCost decode_step(const std::vector<Request*>& active) override;
  void release(Request& req) override;
  KVUsage kv_usage() const override;
  std::string name() const override { return "functional"; }
  // Governor hooks; no-ops (false / 0) unless the power proxy is configured.
  bool set_power_mode(const sim::PowerMode& mode) override;
  double idle_power_w() const override;

  bool prefix_cache_enabled() const override { return prefix_cache_ != nullptr; }
  PrefixCacheStats prefix_cache_stats() const override;
  bool speculation_enabled() const override { return draft_ != nullptr; }

  const KVCache& cache() const noexcept { return cache_; }
  const PrefixCache* prefix_cache() const noexcept { return prefix_cache_.get(); }

 private:
  // try_reserve with the cache's exhaustion hook: cached-but-unreferenced
  // blocks are reclaimed (LRU leaves first) before failure is reported, so
  // the policy only preempts once the cache has nothing left to give.
  bool reserve_with_evict(std::size_t lane, std::size_t tokens);
  template <typename Fn>
  void for_each(const std::vector<Request*>& reqs, const Fn& fn);
  std::span<float> lane_logits(std::size_t lane);
  bool has_power_proxy() const { return !config_.power_proxy_model.empty(); }
  double proxy_prefill_power_w() const;
  double proxy_decode_power_w(std::size_t batch, double mean_ctx) const;
  // One speculative draft/verify round over the active set (decode_step
  // delegates here when a draft model is attached).
  StepCost speculative_decode_step(const std::vector<Request*>& active);
  std::size_t branch_of(std::size_t lane) const { return lane + config_.max_lanes; }

  Model& model_;
  Config config_;
  KVCache cache_;
  std::unique_ptr<PrefixCache> prefix_cache_;   // null: cache disabled
  ThreadPool* pool_ = nullptr;
  std::vector<InferenceWorkspace> workspaces_;  // one per shard
  std::vector<std::size_t> free_lanes_;         // LIFO, deterministic
  std::vector<float> logits_;                   // [lanes, vocab]
  sim::InferenceSim proxy_sim_;                 // power proxy estimates
  sim::PowerMode proxy_mode_;                   // governor-adjustable

  // Speculative state (sized only when a draft model is attached).
  Model* draft_ = nullptr;
  std::vector<InferenceWorkspace> draft_workspaces_;  // one per shard
  std::vector<float> draft_logits_;                   // [shards, vocab]
  std::vector<TokenId> proposals_;                    // [lanes, K]
  std::vector<std::size_t> plan_k_;                   // proposals this round, per lane
  std::vector<float> verify_hidden_;                  // [shards, (K+1) * d_model]
  std::vector<float> verify_logits_;                  // [lanes, (K+1) * vocab]
};

// One-call functional continuous-batching run: builds requests from the
// arrival model and prompt pool, runs ContinuousPolicy over a
// FunctionalTokenBackend, returns the executed schedule. This is the
// "dedicated inference engine" counterpart the paper's conclusion points
// to, measured on the real engine rather than the roofline model.
struct FunctionalEngineConfig {
  workload::ArrivalConfig arrivals;
  workload::SeqConfig seq = workload::seq_config_default();
  std::size_t max_concurrency = 4;
  std::size_t kv_blocks = 0;  // 0: never exhausts; small pools preempt
  std::size_t block_tokens = kDefaultKVBlockTokens;
  KVStorage kv_storage = KVStorage::kF32;
  std::size_t decode_workers = 0;  // 0: serial decode loop
  std::uint64_t prompt_seed = 11;
  // Pass-through to FunctionalTokenBackend::Config::power_proxy_model: name
  // a paper-scale model ("llama3") to attach modeled power to the measured
  // schedule; empty leaves power unset (legacy behaviour).
  std::string power_proxy_model;
  // Governor over the continuous policy (off by default).
  GovernorConfig governor;
  // Cross-request prefix cache over the paged pool (off by default).
  bool prefix_cache = false;
  std::size_t prefix_cache_blocks = 0;  // 0: bounded only by the pool
  // Chat-style traffic: when enabled(), prompts come from sample_chat_batch
  // (Zipfian shared system prompts + per-user suffixes) and must satisfy
  // chat.prompt_tokens() == seq.input; otherwise sample_batch as before.
  workload::ChatWorkloadConfig chat;
  // Speculative decoding: when enabled, the run builds a draft Model from
  // the same master quantized to speculation.draft_dtype (the self-draft
  // pairing) and serves every request through draft/verify rounds.
  SpeculationConfig speculation;
};

EngineResult run_functional_continuous(std::shared_ptr<const MasterWeights> master,
                                       DType dtype, const workload::PromptPool& pool,
                                       const FunctionalEngineConfig& config);

}  // namespace orinsim::serving
