#include "serving/continuous_batching.h"

#include <algorithm>
#include <deque>

#include "core/error.h"

namespace orinsim::serving {

double ContinuousResult::mean_latency_s() const {
  return trace::LatencySummary::from(latencies_s).mean_s;
}

double ContinuousResult::p95_latency_s() const {
  return trace::LatencySummary::from(latencies_s).p95_s;
}

double ContinuousResult::throughput_tps() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(total_tokens) / makespan_s;
}

namespace {

struct ActiveSeq {
  std::size_t id = 0;         // request index on the timeline
  std::size_t ctx = 0;        // tokens already in the KV cache
  std::size_t remaining = 0;  // output tokens still to produce
};

}  // namespace

ContinuousResult simulate_continuous(const ContinuousConfig& config) {
  ORINSIM_CHECK(config.total_requests > 0 && config.arrival_rate_rps > 0,
                "continuous: degenerate config");
  workload::ArrivalSpec spec;
  spec.kind = config.arrival_kind;
  spec.rate_rps = config.arrival_rate_rps;
  spec.seed = config.arrival_seed;
  return simulate_continuous(config,
                             workload::generate_arrivals(spec, config.total_requests));
}

ContinuousResult simulate_continuous(const ContinuousConfig& config,
                                     const std::vector<double>& arrival_times) {
  ORINSIM_CHECK(!arrival_times.empty() && config.max_concurrency > 0,
                "continuous: degenerate config");

  const sim::ModelSpec& model = sim::model_by_key(config.model_key);
  const sim::InferenceSim sim;
  const sim::RooflineEngine& roofline = sim.roofline();
  const sim::PowerModel& power = sim.power_model();

  // Memory gate: the steady-state working set is max_concurrency sequences
  // at the full sequence length.
  const sim::MemoryBreakdown mem = sim.memory_model().workload_memory(
      model, config.dtype, config.max_concurrency, config.seq.input, config.seq.output);
  ORINSIM_CHECK(!sim.memory_model().workload_oom(mem) &&
                    !sim.memory_model().model_oom(model, config.dtype),
                "continuous: concurrency does not fit in device memory");

  ContinuousResult result;
  trace::ExecutionTimeline& timeline = result.timeline;
  const std::size_t total = arrival_times.size();
  for (double arrival : arrival_times) timeline.begin_request(arrival);

  std::deque<ActiveSeq> waiting;
  std::vector<ActiveSeq> active;
  active.reserve(config.max_concurrency);

  std::size_t arrived = 0;
  std::size_t retired = 0;

  auto admit_arrivals = [&] {
    while (arrived < total && arrival_times[arrived] <= timeline.now()) {
      waiting.push_back(ActiveSeq{arrived, 0, config.seq.output});
      ++arrived;
    }
  };

  while (retired < total) {
    admit_arrivals();

    // Idle: jump to the next arrival (an explicit stall event keeps the
    // trace gap-free).
    if (active.empty() && waiting.empty()) {
      ORINSIM_CHECK(arrived < total, "continuous: starved scheduler");
      timeline.stall_until(arrival_times[arrived]);
      admit_arrivals();
    }

    // Admit from the queue up to the concurrency cap, paying prefill for the
    // batch of newly admitted prompts.
    std::size_t admitted = 0;
    while (!waiting.empty() && active.size() < config.max_concurrency) {
      ActiveSeq seq = waiting.front();
      waiting.pop_front();
      seq.ctx = config.seq.input;
      timeline.start_request(seq.id, timeline.now());
      active.push_back(seq);
      ++admitted;
    }
    if (admitted > 0) {
      const double prefill =
          roofline.prefill_s(model, config.dtype, admitted, config.seq.input,
                             config.power_mode);
      const double watts =
          power.prefill_power(model, config.dtype, config.power_mode).total_w();
      // Batch carries the post-admission active count: the concurrency
      // integral weighs the prefill at the level the device now sustains.
      timeline.emit(trace::Phase::kPrefill, prefill, active.size(),
                    static_cast<double>(config.seq.input), watts);
    }

    // One decode step for the active set at its mean context.
    double mean_ctx = 0.0;
    for (const auto& s : active) mean_ctx += static_cast<double>(s.ctx);
    mean_ctx /= static_cast<double>(active.size());
    const sim::StepBreakdown step = roofline.decode_step(
        model, config.dtype, active.size(), mean_ctx, config.power_mode);
    const double watts =
        power.decode_power(model, config.dtype, step, config.power_mode).total_w();
    timeline.emit(trace::Phase::kDecode, step.total_s(), active.size(), mean_ctx,
                  watts, step);

    // Advance every active sequence by one token; retire finished ones.
    for (auto it = active.begin(); it != active.end();) {
      ++it->ctx;
      --it->remaining;
      if (it->remaining == 0) {
        timeline.finish_request(it->id, timeline.now());
        ++retired;
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Everything below is read off the event stream.
  result.latencies_s = timeline.request_latencies();
  result.makespan_s = timeline.now();
  result.energy_j = timeline.total_energy_j();
  result.mean_active = timeline.time_weighted_batch();
  result.decode_steps = timeline.count(trace::Phase::kDecode);
  result.total_tokens = result.latencies_s.size() * config.seq.total;
  return result;
}

}  // namespace orinsim::serving
