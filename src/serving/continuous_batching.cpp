#include "serving/continuous_batching.h"

#include <algorithm>
#include <deque>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::serving {

double ContinuousResult::mean_latency_s() const { return mean(latencies_s); }

double ContinuousResult::p95_latency_s() const { return percentile(latencies_s, 95.0); }

double ContinuousResult::throughput_tps(const ContinuousConfig& config) const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(latencies_s.size()) *
         static_cast<double>(config.seq.total) / makespan_s;
}

namespace {

struct ActiveSeq {
  double arrival_s = 0.0;
  std::size_t ctx = 0;        // tokens already in the KV cache
  std::size_t remaining = 0;  // output tokens still to produce
};

}  // namespace

ContinuousResult simulate_continuous(const ContinuousConfig& config) {
  ORINSIM_CHECK(config.total_requests > 0 && config.max_concurrency > 0 &&
                    config.arrival_rate_rps > 0,
                "continuous: degenerate config");

  const sim::ModelSpec& model = sim::model_by_key(config.model_key);
  const sim::InferenceSim sim;
  const sim::RooflineEngine& roofline = sim.roofline();
  const sim::PowerModel& power = sim.power_model();

  // Memory gate: the steady-state working set is max_concurrency sequences
  // at the full sequence length.
  const sim::MemoryBreakdown mem = sim.memory_model().workload_memory(
      model, config.dtype, config.max_concurrency, config.seq.input, config.seq.output);
  ORINSIM_CHECK(!sim.memory_model().workload_oom(mem) &&
                    !sim.memory_model().model_oom(model, config.dtype),
                "continuous: concurrency does not fit in device memory");

  ContinuousResult result;
  result.latencies_s.reserve(config.total_requests);

  const double spacing = 1.0 / config.arrival_rate_rps;
  std::deque<ActiveSeq> waiting;
  std::vector<ActiveSeq> active;
  active.reserve(config.max_concurrency);

  double now = 0.0;
  std::size_t arrived = 0;
  double active_time_integral = 0.0;

  auto admit_arrivals = [&] {
    while (arrived < config.total_requests &&
           static_cast<double>(arrived) * spacing <= now) {
      waiting.push_back(
          ActiveSeq{static_cast<double>(arrived) * spacing, 0, config.seq.output});
      ++arrived;
    }
  };

  while (result.latencies_s.size() < config.total_requests) {
    admit_arrivals();

    // Idle: jump to the next arrival.
    if (active.empty() && waiting.empty()) {
      ORINSIM_CHECK(arrived < config.total_requests, "continuous: starved scheduler");
      now = static_cast<double>(arrived) * spacing;
      admit_arrivals();
    }

    // Admit from the queue up to the concurrency cap, paying prefill for the
    // batch of newly admitted prompts.
    std::size_t admitted = 0;
    while (!waiting.empty() && active.size() < config.max_concurrency) {
      ActiveSeq seq = waiting.front();
      waiting.pop_front();
      seq.ctx = config.seq.input;
      active.push_back(seq);
      ++admitted;
    }
    if (admitted > 0) {
      const double prefill =
          roofline.prefill_s(model, config.dtype, admitted, config.seq.input,
                             config.power_mode);
      const double watts =
          power.prefill_power(model, config.dtype, config.power_mode).total_w();
      result.energy_j += watts * prefill;
      active_time_integral += static_cast<double>(active.size()) * prefill;
      now += prefill;
    }

    // One decode step for the active set at its mean context.
    double mean_ctx = 0.0;
    for (const auto& s : active) mean_ctx += static_cast<double>(s.ctx);
    mean_ctx /= static_cast<double>(active.size());
    const sim::StepBreakdown step = roofline.decode_step(
        model, config.dtype, active.size(), mean_ctx, config.power_mode);
    const double dt = step.total_s();
    const double watts =
        power.decode_power(model, config.dtype, step, config.power_mode).total_w();
    result.energy_j += watts * dt;
    active_time_integral += static_cast<double>(active.size()) * dt;
    now += dt;
    ++result.decode_steps;

    // Advance every active sequence by one token; retire finished ones.
    for (auto it = active.begin(); it != active.end();) {
      ++it->ctx;
      --it->remaining;
      if (it->remaining == 0) {
        result.latencies_s.push_back(now - it->arrival_s);
        it = active.erase(it);
      } else {
        ++it;
      }
    }
  }

  result.makespan_s = now;
  result.mean_active = now > 0.0 ? active_time_integral / now : 0.0;
  return result;
}

}  // namespace orinsim::serving
