#include "serving/continuous_batching.h"

#include <algorithm>

#include "core/error.h"
#include "serving/engine.h"

namespace orinsim::serving {

double ContinuousResult::mean_latency_s() const {
  return trace::LatencySummary::from(latencies_s).mean_s;
}

double ContinuousResult::p95_latency_s() const {
  return trace::LatencySummary::from(latencies_s).p95_s;
}

double ContinuousResult::throughput_tps() const {
  if (makespan_s <= 0.0) return 0.0;
  return static_cast<double>(total_tokens) / makespan_s;
}

ContinuousResult simulate_continuous(const ContinuousConfig& config) {
  ORINSIM_CHECK(config.arrivals.total_requests > 0 && config.arrivals.rate_rps > 0,
                "continuous: degenerate config");
  return simulate_continuous(config, config.arrivals.generate());
}

// Adapter over the unified engine: ContinuousPolicy over a SimTokenBackend
// with an unlimited block pool replays the original simulator's schedule
// step for step (same admission order, same mean-context summation order,
// same event stream), so every derived metric is bit-identical.
ContinuousResult simulate_continuous(const ContinuousConfig& config,
                                     const std::vector<double>& arrival_times) {
  ORINSIM_CHECK(!arrival_times.empty() && config.max_concurrency > 0,
                "continuous: degenerate config");

  // Memory gate: the steady-state working set is max_concurrency sequences
  // at the full sequence length. Lives here (not in the backend) because it
  // is a property of this experiment's workload shape, not of the engine.
  const sim::ModelSpec& model = sim::model_by_key(config.model_key);
  const sim::InferenceSim sim;
  const sim::MemoryBreakdown mem = sim.memory_model().workload_memory(
      model, config.dtype, config.max_concurrency, config.seq.input, config.seq.output);
  ORINSIM_CHECK(!sim.memory_model().workload_oom(mem) &&
                    !sim.memory_model().model_oom(model, config.dtype),
                "continuous: concurrency does not fit in device memory");

  std::vector<Request> requests(arrival_times.size());
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    requests[i].id = i;
    requests[i].arrival_s = arrival_times[i];
    requests[i].prompt_tokens = config.seq.input;
    requests[i].max_new_tokens = config.seq.output;
  }

  SimTokenBackend::Config bc;
  bc.model_key = config.model_key;
  bc.dtype = config.dtype;
  bc.max_concurrency = config.max_concurrency;
  bc.seq = config.seq;
  bc.power_mode = config.power_mode;
  bc.kv_blocks = 0;  // unlimited pool: exact legacy-simulator behaviour
  SimTokenBackend backend(bc);

  ContinuousPolicy policy(backend);
  EngineResult run = policy.run(std::move(requests));

  ContinuousResult result;
  result.latencies_s = std::move(run.latencies_s);
  result.makespan_s = run.makespan_s;
  result.energy_j = run.energy_j;
  result.mean_active = run.mean_active;
  result.decode_steps = run.decode_steps;
  result.total_tokens = result.latencies_s.size() * config.seq.total;
  result.timeline = std::move(run.timeline);
  return result;
}

}  // namespace orinsim::serving
