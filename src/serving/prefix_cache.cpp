#include "serving/prefix_cache.h"

#include <algorithm>

#include "core/error.h"

namespace orinsim::serving {

PrefixCache::PrefixCache(KVCache& cache, std::size_t max_blocks)
    : cache_(cache), block_tokens_(cache.block_tokens()), max_blocks_(max_blocks) {
  ORINSIM_CHECK(cache.layout() == KVLayout::kPaged,
                "PrefixCache requires a paged KVCache");
}

PrefixCache::~PrefixCache() { clear(); }

PrefixCache::Node* PrefixCache::find_child(Node* node, std::span<const TokenId> key) const {
  for (const auto& child : node->children) {
    if (std::equal(child->tokens.begin(), child->tokens.end(), key.begin(), key.end())) {
      return child.get();
    }
  }
  return nullptr;
}

PrefixMatch PrefixCache::match_and_retain(std::span<const TokenId> prompt,
                                          std::size_t granularity_tokens,
                                          std::size_t max_tokens) {
  ORINSIM_CHECK(granularity_tokens > 0 && granularity_tokens % block_tokens_ == 0,
                "PrefixCache: granularity must be a positive multiple of block_tokens");
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;

  // Walk as deep as the prompt matches, then trim to the alignment boundary.
  std::vector<Node*> path;
  Node* node = &root_;
  std::size_t depth = 0;
  while ((depth + 1) * block_tokens_ <= std::min(prompt.size(), max_tokens)) {
    Node* child = find_child(node, prompt.subspan(depth * block_tokens_, block_tokens_));
    if (child == nullptr) break;
    path.push_back(child);
    node = child;
    ++depth;
  }
  const std::size_t granularity_blocks = granularity_tokens / block_tokens_;
  const std::size_t matched_blocks = (depth / granularity_blocks) * granularity_blocks;

  PrefixMatch match;
  if (matched_blocks == 0) {
    ++stats_.misses;
    return match;
  }
  ++stats_.hits;
  ++clock_;
  match.blocks.reserve(matched_blocks);
  for (std::size_t i = 0; i < matched_blocks; ++i) {
    cache_.retain_block(path[i]->block);  // the caller's reference
    path[i]->last_use = clock_;
    match.blocks.push_back(path[i]->block);
  }
  match.tokens = matched_blocks * block_tokens_;
  stats_.hit_tokens += match.tokens;
  stats_.bytes_saved += matched_blocks * cache_.block_bytes();
  return match;
}

void PrefixCache::insert(std::span<const TokenId> tokens,
                         std::span<const std::size_t> blocks) {
  const std::size_t full_blocks =
      std::min(tokens.size() / block_tokens_, blocks.size());
  if (full_blocks == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++clock_;
  Node* node = &root_;
  for (std::size_t i = 0; i < full_blocks; ++i) {
    const auto key = tokens.subspan(i * block_tokens_, block_tokens_);
    Node* child = find_child(node, key);
    if (child == nullptr) {
      if (max_blocks_ > 0 && stats_.cached_blocks >= max_blocks_) return;
      auto fresh = std::make_unique<Node>();
      fresh->tokens.assign(key.begin(), key.end());
      fresh->block = blocks[i];
      fresh->parent = node;
      child = fresh.get();
      node->children.push_back(std::move(fresh));
      cache_.retain_block(child->block);  // the tree's reference
      cache_.mark_block_cached(child->block, true);
      ++stats_.inserted_blocks;
      ++stats_.cached_blocks;
    }
    child->last_use = clock_;
    node = child;
  }
}

void PrefixCache::release_node_block(Node* node) {
  // Order matters: the allocator checks that no block returns to the free
  // list while still flagged cached.
  cache_.mark_block_cached(node->block, false);
  cache_.release_block(node->block);
}

bool PrefixCache::evict_lru_leaf() {
  std::lock_guard<std::mutex> lock(mu_);
  // Linear scan over leaves: the tree is small (one node per cached block)
  // and eviction only runs on allocator exhaustion.
  std::vector<Node*> stack = {&root_};
  Node* victim = nullptr;
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (const auto& child : node->children) stack.push_back(child.get());
    if (node == &root_ || !node->children.empty()) continue;
    if (cache_.block_ref_count(node->block) != 1) continue;  // a sequence holds it
    if (victim == nullptr || node->last_use < victim->last_use) victim = node;
  }
  if (victim == nullptr) return false;
  release_node_block(victim);
  auto& siblings = victim->parent->children;
  siblings.erase(std::find_if(siblings.begin(), siblings.end(),
                              [&](const auto& c) { return c.get() == victim; }));
  ++stats_.evicted_blocks;
  --stats_.cached_blocks;
  return true;
}

std::size_t PrefixCache::evict(std::size_t count) {
  std::size_t evicted = 0;
  while (evicted < count && evict_lru_leaf()) ++evicted;
  return evicted;
}

void PrefixCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Node*> stack = {&root_};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    for (const auto& child : node->children) stack.push_back(child.get());
    if (node != &root_) release_node_block(node);
  }
  root_.children.clear();
  stats_.cached_blocks = 0;
}

PrefixCacheStats PrefixCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PrefixCacheStats s = stats_;
  s.block_tokens = block_tokens_;
  return s;
}

}  // namespace orinsim::serving
