// The paper's evaluation metrics (§2, "Evaluation Metrics").
#pragma once

#include <cstddef>

namespace orinsim::serving {

// Token throughput: TP = sum over the batch of (input + output tokens),
// divided by the batch latency (time to last token for the batch).
double token_throughput_tps(std::size_t batch, std::size_t input_tokens,
                            std::size_t output_tokens, double batch_latency_s);

// Ragged-batch variant: total token count over all sequences.
double token_throughput_tps(std::size_t total_tokens, double batch_latency_s);

// Incremental peak memory: peak during the run minus baseline before the
// model loads.
double incremental_memory_gb(double peak_gb, double baseline_gb);

}  // namespace orinsim::serving
