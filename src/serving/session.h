// Inference sessions: one uniform interface over the two execution backends.
//
//  - SimSession runs paper-scale models (2.7B-32.8B) on the calibrated Orin
//    AGX simulator and reports the paper's metrics (latency, throughput,
//    incremental memory, median power, energy).
//  - FunctionalSession runs nano-scale models on the real C++ engine and
//    reports genuinely measured wall-clock metrics (no power: this host has
//    no board sensor; the simulator owns power).
//
// Both consume workload::PromptPool batches so experiments share one
// workload definition.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "model/transformer.h"
#include "sim/inference_sim.h"
#include "workload/corpus.h"
#include "workload/prompt_pool.h"

namespace orinsim::serving {

struct BatchRequest {
  std::size_t batch = 32;
  workload::SeqConfig seq = workload::seq_config_default();
};

struct BatchResult {
  bool oom = false;
  double latency_s = 0.0;
  double throughput_tps = 0.0;
  double incremental_ram_gb = 0.0;
  double total_ram_gb = 0.0;
  double median_power_w = 0.0;  // simulator only
  double energy_j = 0.0;        // simulator only
};

// Dataset-level latency factor: the paper measures LongBench ~4% faster than
// WikiText2 on identical configs (Tables 4 vs 5) and attributes it to
// dataset/model-specific factors and measurement variation.
double dataset_latency_scale(workload::Dataset dataset);

class SimSession {
 public:
  SimSession(std::string model_key, DType dtype, workload::Dataset dataset,
             sim::PowerMode power_mode = sim::power_mode_maxn(), std::uint64_t seed = 7);

  BatchResult run(const BatchRequest& request) const;

  const sim::ModelSpec& model() const;
  DType dtype() const noexcept { return dtype_; }

 private:
  std::string model_key_;
  DType dtype_;
  workload::Dataset dataset_;
  sim::PowerMode power_mode_;
  std::uint64_t seed_;
  sim::InferenceSim sim_;
};

class FunctionalSession {
 public:
  // The session owns a Model view of `master` at `dtype` and samples prompts
  // from `pool` (both must outlive the session).
  FunctionalSession(std::shared_ptr<const MasterWeights> master, DType dtype,
                    const workload::PromptPool& pool, std::uint64_t seed = 11);

  // Runs one real batched generation and measures wall-clock metrics.
  BatchResult run(const BatchRequest& request);

  Model& model() noexcept { return model_; }

 private:
  Model model_;
  const workload::PromptPool& pool_;
  Rng rng_;
};

}  // namespace orinsim::serving
