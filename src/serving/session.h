// Inference sessions: one uniform interface over the two execution backends.
//
//  - SimSession runs paper-scale models (2.7B-32.8B) on the calibrated Orin
//    AGX simulator and reports the paper's metrics (latency, throughput,
//    incremental memory, median power, energy).
//  - FunctionalSession runs nano-scale models on the real C++ engine and
//    reports genuinely measured wall-clock metrics (no power: this host has
//    no board sensor; the simulator owns power).
//
// Both consume workload::PromptPool batches so experiments share one
// workload definition.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "model/transformer.h"
#include "sim/inference_sim.h"
#include "trace/timeline.h"
#include "workload/corpus.h"
#include "workload/prompt_pool.h"

namespace orinsim::serving {

struct BatchRequest {
  std::size_t batch = 32;
  workload::SeqConfig seq = workload::seq_config_default();
};

struct BatchResult {
  bool oom = false;
  double latency_s = 0.0;
  double throughput_tps = 0.0;
  double incremental_ram_gb = 0.0;
  double total_ram_gb = 0.0;
  double median_power_w = 0.0;  // simulator only
  double energy_j = 0.0;        // simulator only
};

// The polymorphic execution backend the serving/harness/bench layers program
// against: run one batch, optionally emitting its StepEvents (t = 0-based)
// into a caller-provided timeline. SimSession emits modeled events with
// power; FunctionalSession emits measured wall-clock events with power unset.
class InferenceBackend {
 public:
  virtual ~InferenceBackend() = default;

  virtual BatchResult execute(const BatchRequest& request,
                              trace::ExecutionTimeline* timeline = nullptr) = 0;
  virtual std::string backend_name() const = 0;
};

// Dataset-level latency factor: the paper measures LongBench ~4% faster than
// WikiText2 on identical configs (Tables 4 vs 5) and attributes it to
// dataset/model-specific factors and measurement variation.
double dataset_latency_scale(workload::Dataset dataset);

class SimSession : public InferenceBackend {
 public:
  SimSession(std::string model_key, DType dtype, workload::Dataset dataset,
             sim::PowerMode power_mode = sim::power_mode_maxn(), std::uint64_t seed = 7);

  // If `timeline` is non-null, the run's modeled event stream (setup,
  // prefill, per-token decode, with power) is appended to it.
  BatchResult run(const BatchRequest& request,
                  trace::ExecutionTimeline* timeline = nullptr) const;

  BatchResult execute(const BatchRequest& request,
                      trace::ExecutionTimeline* timeline = nullptr) override {
    return run(request, timeline);
  }
  std::string backend_name() const override { return "sim:" + model_key_; }

  const sim::ModelSpec& model() const;
  DType dtype() const noexcept { return dtype_; }

 private:
  std::string model_key_;
  DType dtype_;
  workload::Dataset dataset_;
  sim::PowerMode power_mode_;
  std::uint64_t seed_;
  sim::InferenceSim sim_;
};

class FunctionalSession : public InferenceBackend {
 public:
  // The session owns a Model view of `master` at `dtype` and samples prompts
  // from `pool` (both must outlive the session). decode_workers > 0 creates
  // a session-owned ThreadPool of that many threads and decodes batch lanes
  // in parallel; 0 keeps the single-threaded decode loop. Outputs are
  // bit-identical either way (the engine serializes sampling in lane order),
  // only the measured wall-clock changes. prefill_chunk sets the batched
  // prompt-ingestion chunk size (0/1: token-at-a-time; see
  // Model::set_prefill_chunk — chunked output is bit-identical under the
  // scalar kernel level).
  FunctionalSession(std::shared_ptr<const MasterWeights> master, DType dtype,
                    const workload::PromptPool& pool, std::uint64_t seed = 11,
                    std::size_t decode_workers = 0,
                    std::size_t prefill_chunk = Model::kDefaultPrefillChunk);

  // Runs one real batched generation and measures wall-clock metrics. A
  // non-null `timeline` receives measured StepEvents (power unset).
  BatchResult run(const BatchRequest& request,
                  trace::ExecutionTimeline* timeline = nullptr);

  BatchResult execute(const BatchRequest& request,
                      trace::ExecutionTimeline* timeline = nullptr) override {
    return run(request, timeline);
  }
  std::string backend_name() const override { return "functional"; }

  Model& model() noexcept { return model_; }

 private:
  Model model_;
  const workload::PromptPool& pool_;
  Rng rng_;
  std::unique_ptr<ThreadPool> decode_pool_;  // null: serial decode
};

}  // namespace orinsim::serving
