#include "serving/serving_device.h"

#include <utility>

#include "core/error.h"
#include "sim/device_catalog.h"

namespace orinsim::serving {

namespace {

// The governor ladder for a simulated device: the device-scaled
// GPU-frequency descent, truncated to start at the configured mode (the
// governor contract requires ladder[0] == the backend's configured mode).
// A configured mode off the GPU ladder (e.g. Table 2 "C", a CPU-axis mode)
// heads the ladder itself, followed by the scaled modes with strictly lower
// GPU clocks — stepping down still reduces modeled power.
std::vector<sim::PowerMode> ladder_from(const sim::DeviceSpec& spec,
                                        const sim::PowerMode& start) {
  std::vector<sim::PowerMode> full = sim::device_gpu_frequency_ladder(spec);
  std::vector<sim::PowerMode> ladder;
  for (const sim::PowerMode& pm : full) {
    if (!ladder.empty() || pm.name == start.name) ladder.push_back(pm);
  }
  if (ladder.empty()) {
    ladder.push_back(start);
    for (const sim::PowerMode& pm : full) {
      if (pm.gpu_freq_mhz < start.gpu_freq_mhz) ladder.push_back(pm);
    }
  }
  return ladder;
}

}  // namespace

ServingDevice::ServingDevice(const SimConfig& config)
    : name_(config.name.empty() ? config.device_key : config.name),
      governor_(config.governor) {
  const sim::DeviceEntry& entry = sim::device_by_key(config.device_key);

  SimTokenBackend::Config backend;
  backend.model_key = config.model_key;
  backend.dtype = config.dtype;
  backend.max_concurrency = config.max_concurrency;
  backend.seq = config.seq;
  backend.power_mode = sim::scaled_power_mode(entry.spec, config.power_mode);
  backend.device = entry.spec;
  backend.kv_blocks = config.kv_blocks;
  backend.block_tokens = config.block_tokens;
  backend.speculation = config.speculation;
  sim_backend_ = std::make_unique<SimTokenBackend>(backend);
  backend_ = sim_backend_.get();

  if (governor_.enabled() && governor_.ladder.empty()) {
    governor_.ladder = ladder_from(entry.spec, backend.power_mode);
  }
  engine_ = std::make_unique<ContinuousEngine>(*backend_, governor_);
}

ServingDevice::ServingDevice(Model& model, const FunctionalTokenBackend::Config& config,
                             GovernorConfig governor, std::string name, ThreadPool* pool,
                             Model* draft)
    : name_(std::move(name)), governor_(std::move(governor)) {
  fn_backend_ = std::make_unique<FunctionalTokenBackend>(model, config, pool, draft);
  backend_ = fn_backend_.get();
  engine_ = std::make_unique<ContinuousEngine>(*backend_, governor_);
}

ServingDevice::~ServingDevice() = default;

std::size_t ServingDevice::submit(Request req, StreamCallbacks callbacks) {
  return engine_->submit(std::move(req), std::move(callbacks));
}

ContinuousEngine::Step ServingDevice::step() { return engine_->step(); }

bool ServingDevice::idle() const { return engine_->idle(); }

bool ServingDevice::pending_arrivals() const { return engine_->pending_arrivals(); }

double ServingDevice::now() const { return engine_->timeline().now(); }

std::size_t ServingDevice::queue_depth() const { return engine_->queue_depth(); }

std::size_t ServingDevice::active_count() const { return engine_->active_count(); }

const trace::ExecutionTimeline& ServingDevice::timeline() const {
  return engine_->timeline();
}

void ServingDevice::set_device_id(std::size_t id) { engine_->set_device_id(id); }

bool ServingDevice::governor_deferring() const { return engine_->governor_deferring(); }

double ServingDevice::mean_power_w() const {
  const trace::ExecutionTimeline& tl = engine_->timeline();
  return tl.now() > 0.0 ? tl.total_energy_j() / tl.now() : 0.0;
}

EngineResult ServingDevice::finish() { return engine_->finish(); }

EngineResult ServingDevice::run(std::vector<Request> requests) {
  ORINSIM_CHECK(!requests.empty() && backend_->max_lanes() > 0,
                "serving_device: degenerate run");
  for (Request& r : requests) engine_->submit(std::move(r));
  while (engine_->step() == ContinuousEngine::Step::kWorked) {
  }
  return engine_->finish();
}

}  // namespace orinsim::serving
