#include "serving/offload.h"

#include <algorithm>

#include "core/error.h"

namespace orinsim::serving {

double CloudEndpoint::request_latency_s(std::size_t in_tokens,
                                        std::size_t out_tokens) const {
  const double upload_bits = static_cast<double>(in_tokens) * bytes_per_token * 8.0;
  const double upload_s = upload_bits / (uplink_mbps * 1e6);
  const double prefill_s = static_cast<double>(in_tokens) / prefill_tps;
  const double decode_s = static_cast<double>(out_tokens) / decode_tps;
  return rtt_s + upload_s + provider_queue_s + prefill_s + decode_s;
}

double CloudEndpoint::request_cost_usd(std::size_t in_tokens,
                                       std::size_t out_tokens) const {
  return static_cast<double>(in_tokens + out_tokens) / 1000.0 * usd_per_1k_tokens;
}

std::string offload_policy_name(OffloadPolicy policy) {
  switch (policy) {
    case OffloadPolicy::kEdgeOnly:
      return "edge-only";
    case OffloadPolicy::kCloudOnly:
      return "cloud-only";
    case OffloadPolicy::kQueueDepth:
      return "queue-depth";
    case OffloadPolicy::kLatencyThreshold:
      return "latency-threshold";
  }
  return "?";
}

double HybridResult::mean_latency_s() const {
  return trace::LatencySummary::from(latencies_s).mean_s;
}

double HybridResult::p95_latency_s() const {
  return trace::LatencySummary::from(latencies_s).p95_s;
}

HybridResult simulate_hybrid(InferenceBackend& backend, const HybridConfig& config) {
  const SchedulerConfig& sc = config.scheduler;
  ORINSIM_CHECK(sc.arrivals.total_requests > 0 && sc.max_batch > 0 &&
                    sc.arrivals.rate_rps > 0,
                "hybrid: degenerate scheduler config");

  const std::vector<double> arrivals = sc.arrivals.generate();

  HybridResult result;
  trace::ExecutionTimeline& timeline = result.timeline;
  for (double arrival : arrivals) timeline.begin_request(arrival);

  // Cached edge batch costs by occupancy.
  std::vector<double> latency_by_bs(sc.max_batch + 1, -1.0);
  std::vector<double> energy_by_bs(sc.max_batch + 1, 0.0);
  auto edge_batch = [&](std::size_t bs) {
    if (latency_by_bs[bs] < 0.0) {
      BatchRequest br;
      br.batch = bs;
      br.seq = sc.seq;
      const BatchResult r = backend.execute(br);
      ORINSIM_CHECK(!r.oom, "hybrid: edge batch config OOMs");
      latency_by_bs[bs] = r.latency_s;
      energy_by_bs[bs] = r.energy_j;
    }
    return latency_by_bs[bs];
  };

  std::size_t next = 0;  // next unrouted request index

  // Cloud work overlaps the edge device: the event is pinned at the arrival
  // instant, off the sequential cursor. Power stays unset — the cloud's
  // joules are not the edge board's energy.
  auto route_to_cloud = [&](std::size_t id) {
    const double arrival = arrivals[id];
    const double latency = config.cloud.request_latency_s(sc.seq.input, sc.seq.output);
    timeline.append_at(arrival, trace::Phase::kOffload, latency, 1,
                       static_cast<double>(sc.seq.total));
    timeline.start_request(id, arrival);
    timeline.finish_request(id, arrival + latency);
    result.cloud_cost_usd += config.cloud.request_cost_usd(sc.seq.input, sc.seq.output);
  };

  // Runs the batch [next, next+take) on the edge at `dispatch_at`.
  auto run_on_edge = [&](double dispatch_at, std::size_t take) {
    timeline.stall_until(dispatch_at);
    const double batch_latency = edge_batch(take);
    // Mean power reproduces the backend-reported batch energy exactly
    // (power * duration == energy).
    const double power = batch_latency > 0.0 ? energy_by_bs[take] / batch_latency
                                             : trace::kPowerUnset;
    timeline.emit(trace::Phase::kDecode, batch_latency, take,
                  static_cast<double>(sc.seq.total), power);
    for (std::size_t i = 0; i < take; ++i) {
      timeline.start_request(next + i, dispatch_at);
      timeline.finish_request(next + i, timeline.now());
    }
  };

  while (next < sc.arrivals.total_requests) {
    const double arrival = arrivals[next];

    if (config.policy == OffloadPolicy::kCloudOnly) {
      route_to_cloud(next);
      ++next;
      continue;
    }

    // Requests waiting when the edge device frees up (or now, if idle).
    const double dispatch_at = std::max(arrival, timeline.now());
    std::size_t waiting = 0;
    while (next + waiting < sc.arrivals.total_requests &&
           arrivals[next + waiting] <= dispatch_at) {
      ++waiting;
    }
    waiting = std::max<std::size_t>(waiting, 1);

    // Policy decisions before forming the edge batch.
    if (config.policy == OffloadPolicy::kQueueDepth && waiting > config.queue_threshold) {
      // Overflow beyond one full batch goes to the cloud (newest requests).
      std::size_t to_edge = std::min(waiting, sc.max_batch);
      std::size_t overflow = waiting - to_edge;
      for (std::size_t i = 0; i < overflow; ++i) {
        route_to_cloud(next + to_edge + i);
      }
      run_on_edge(dispatch_at, to_edge);
      next += waiting;
      continue;
    }

    const std::size_t take = std::min(waiting, sc.max_batch);
    const double batch_latency = edge_batch(take);

    if (config.policy == OffloadPolicy::kLatencyThreshold) {
      // Route the whole wave to the cloud if the edge would miss the SLO for
      // its oldest member.
      const double predicted = dispatch_at + batch_latency - arrivals[next];
      if (predicted > config.latency_slo_s) {
        for (std::size_t i = 0; i < take; ++i) route_to_cloud(next + i);
        next += take;
        continue;
      }
    }

    run_on_edge(dispatch_at, take);
    next += take;
  }

  // Everything below is read off the event stream.
  result.latencies_s = timeline.request_latencies();
  result.cloud_requests = timeline.count(trace::Phase::kOffload);
  result.edge_requests = result.latencies_s.size() - result.cloud_requests;
  result.edge_energy_j = timeline.total_energy_j();
  result.makespan_s = timeline.makespan_s();
  return result;
}

}  // namespace orinsim::serving
