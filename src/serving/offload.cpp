#include "serving/offload.h"

#include <algorithm>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::serving {

double CloudEndpoint::request_latency_s(std::size_t in_tokens,
                                        std::size_t out_tokens) const {
  const double upload_bits = static_cast<double>(in_tokens) * bytes_per_token * 8.0;
  const double upload_s = upload_bits / (uplink_mbps * 1e6);
  const double prefill_s = static_cast<double>(in_tokens) / prefill_tps;
  const double decode_s = static_cast<double>(out_tokens) / decode_tps;
  return rtt_s + upload_s + provider_queue_s + prefill_s + decode_s;
}

double CloudEndpoint::request_cost_usd(std::size_t in_tokens,
                                       std::size_t out_tokens) const {
  return static_cast<double>(in_tokens + out_tokens) / 1000.0 * usd_per_1k_tokens;
}

std::string offload_policy_name(OffloadPolicy policy) {
  switch (policy) {
    case OffloadPolicy::kEdgeOnly:
      return "edge-only";
    case OffloadPolicy::kCloudOnly:
      return "cloud-only";
    case OffloadPolicy::kQueueDepth:
      return "queue-depth";
    case OffloadPolicy::kLatencyThreshold:
      return "latency-threshold";
  }
  return "?";
}

double HybridResult::mean_latency_s() const { return mean(latencies_s); }

double HybridResult::p95_latency_s() const { return percentile(latencies_s, 95.0); }

HybridResult simulate_hybrid(const SimSession& session, const HybridConfig& config) {
  const SchedulerConfig& sc = config.scheduler;
  ORINSIM_CHECK(sc.total_requests > 0 && sc.max_batch > 0 && sc.arrival_rate_rps > 0,
                "hybrid: degenerate scheduler config");

  HybridResult result;
  result.latencies_s.reserve(sc.total_requests);
  const double spacing = 1.0 / sc.arrival_rate_rps;

  // Cached edge batch costs by occupancy.
  std::vector<double> latency_by_bs(sc.max_batch + 1, -1.0);
  std::vector<double> energy_by_bs(sc.max_batch + 1, 0.0);
  auto edge_batch = [&](std::size_t bs) {
    if (latency_by_bs[bs] < 0.0) {
      BatchRequest br;
      br.batch = bs;
      br.seq = sc.seq;
      const BatchResult r = session.run(br);
      ORINSIM_CHECK(!r.oom, "hybrid: edge batch config OOMs");
      latency_by_bs[bs] = r.latency_s;
      energy_by_bs[bs] = r.energy_j;
    }
    return latency_by_bs[bs];
  };

  double edge_free_at = 0.0;
  std::size_t next = 0;  // next unrouted request index
  double last_completion = 0.0;

  auto route_to_cloud = [&](double arrival) {
    const double latency = config.cloud.request_latency_s(sc.seq.input, sc.seq.output);
    result.latencies_s.push_back(latency);
    result.cloud_cost_usd += config.cloud.request_cost_usd(sc.seq.input, sc.seq.output);
    ++result.cloud_requests;
    last_completion = std::max(last_completion, arrival + latency);
  };

  while (next < sc.total_requests) {
    const double arrival = static_cast<double>(next) * spacing;

    if (config.policy == OffloadPolicy::kCloudOnly) {
      route_to_cloud(arrival);
      ++next;
      continue;
    }

    // Requests waiting when the edge device frees up (or now, if idle).
    const double dispatch_at = std::max(arrival, edge_free_at);
    std::size_t waiting = 0;
    while (next + waiting < sc.total_requests &&
           static_cast<double>(next + waiting) * spacing <= dispatch_at) {
      ++waiting;
    }
    waiting = std::max<std::size_t>(waiting, 1);

    // Policy decisions before forming the edge batch.
    if (config.policy == OffloadPolicy::kQueueDepth && waiting > config.queue_threshold) {
      // Overflow beyond one full batch goes to the cloud (newest requests).
      std::size_t to_edge = std::min(waiting, sc.max_batch);
      std::size_t overflow = waiting - to_edge;
      for (std::size_t i = 0; i < overflow; ++i) {
        route_to_cloud(static_cast<double>(next + to_edge + i) * spacing);
      }
      const double batch_latency = edge_batch(to_edge);
      result.edge_energy_j += energy_by_bs[to_edge];
      for (std::size_t i = 0; i < to_edge; ++i) {
        const double req_arrival = static_cast<double>(next + i) * spacing;
        result.latencies_s.push_back(dispatch_at + batch_latency - req_arrival);
      }
      result.edge_requests += to_edge;
      edge_free_at = dispatch_at + batch_latency;
      last_completion = std::max(last_completion, edge_free_at);
      next += waiting;
      continue;
    }

    const std::size_t take = std::min(waiting, sc.max_batch);
    const double batch_latency = edge_batch(take);

    if (config.policy == OffloadPolicy::kLatencyThreshold) {
      // Route the whole wave to the cloud if the edge would miss the SLO for
      // its oldest member.
      const double oldest_arrival = static_cast<double>(next) * spacing;
      const double predicted = dispatch_at + batch_latency - oldest_arrival;
      if (predicted > config.latency_slo_s) {
        for (std::size_t i = 0; i < take; ++i) {
          route_to_cloud(static_cast<double>(next + i) * spacing);
        }
        next += take;
        continue;
      }
    }

    result.edge_energy_j += energy_by_bs[take];
    for (std::size_t i = 0; i < take; ++i) {
      const double req_arrival = static_cast<double>(next + i) * spacing;
      result.latencies_s.push_back(dispatch_at + batch_latency - req_arrival);
    }
    result.edge_requests += take;
    edge_free_at = dispatch_at + batch_latency;
    last_completion = std::max(last_completion, edge_free_at);
    next += take;
  }

  result.makespan_s = last_completion;
  return result;
}

}  // namespace orinsim::serving
