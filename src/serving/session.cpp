#include "serving/session.h"

#include "core/error.h"
#include "core/stopwatch.h"
#include "serving/metrics.h"

namespace orinsim::serving {

double dataset_latency_scale(workload::Dataset dataset) {
  return dataset == workload::Dataset::kLongBench ? 0.96 : 1.0;
}

SimSession::SimSession(std::string model_key, DType dtype, workload::Dataset dataset,
                       sim::PowerMode power_mode, std::uint64_t seed)
    : model_key_(std::move(model_key)),
      dtype_(dtype),
      dataset_(dataset),
      power_mode_(std::move(power_mode)),
      seed_(seed) {}

const sim::ModelSpec& SimSession::model() const { return sim::model_by_key(model_key_); }

BatchResult SimSession::run(const BatchRequest& request,
                            trace::ExecutionTimeline* timeline) const {
  sim::SimRequest sr;
  sr.model_key = model_key_;
  sr.dtype = dtype_;
  sr.batch = request.batch;
  sr.in_tokens = request.seq.input;
  sr.out_tokens = request.seq.output;
  sr.power_mode = power_mode_;
  sr.latency_scale = dataset_latency_scale(dataset_);
  sr.seed = seed_ ^ (request.batch * 0x9e37ULL) ^ (request.seq.total << 20);

  const sim::SimResult r = sim_.run(sr);
  BatchResult out;
  out.oom = r.oom;
  if (r.oom) return out;
  if (timeline != nullptr) {
    for (const auto& e : r.timeline.events()) {
      timeline->emit(e.phase, e.duration_s, e.batch, e.ctx, e.power_w, e.breakdown);
    }
  }
  out.latency_s = r.latency_s;
  out.throughput_tps = r.throughput_tps;
  out.incremental_ram_gb = r.memory.incremental_gb();
  out.total_ram_gb = r.memory.total_gb();
  out.median_power_w = r.median_power_w;
  out.energy_j = r.energy_j;
  return out;
}

FunctionalSession::FunctionalSession(std::shared_ptr<const MasterWeights> master,
                                     DType dtype, const workload::PromptPool& pool,
                                     std::uint64_t seed, std::size_t decode_workers,
                                     std::size_t prefill_chunk)
    : model_(std::move(master), dtype),
      pool_(pool),
      rng_(seed),
      decode_pool_(decode_workers > 0 ? std::make_unique<ThreadPool>(decode_workers)
                                      : nullptr) {
  model_.set_prefill_chunk(prefill_chunk);
}

BatchResult FunctionalSession::run(const BatchRequest& request,
                                   trace::ExecutionTimeline* timeline) {
  ORINSIM_CHECK(request.seq.total <= model_.config().max_seq,
                "sequence exceeds functional model max_seq");
  const auto prompts = pool_.sample_batch(request.batch, request.seq.input, rng_);

  Model::GenerateOptions options;
  options.timeline = timeline;
  options.pool = decode_pool_.get();

  Stopwatch watch;
  const Model::GenerateResult gen = model_.generate(prompts, request.seq.output, options);
  const double latency = watch.elapsed_s();

  BatchResult out;
  out.latency_s = latency;
  out.throughput_tps =
      token_throughput_tps(gen.input_tokens + gen.output_tokens, latency);
  // Functional memory: weights + KV cache for this batch (host RAM).
  const double kv_gb = static_cast<double>(request.batch) *
                       static_cast<double>(request.seq.total) *
                       static_cast<double>(model_.config().kv_bytes_per_token()) / 1e9;
  out.incremental_ram_gb = kv_gb;
  out.total_ram_gb = static_cast<double>(model_.weight_bytes()) / 1e9 + kv_gb;
  return out;
}

}  // namespace orinsim::serving
