// A device as a first-class serving unit: one token backend, one
// ContinuousEngine, and the power governor bundled behind a single object,
// so fleet routers, planners and benches stop hand-assembling the trio.
//
// Two construction paths mirror the two backends:
//  - SimConfig builds a simulated device from a sim/device_catalog entry and
//    a Table 2 power-mode name (scaled to the device's own clock maxima via
//    sim::scaled_power_mode), so heterogeneous fleets get roofline-consistent
//    per-device step costs from one catalog key.
//  - The functional constructor wraps a real Model behind
//    FunctionalTokenBackend (paged KV, optional prefix cache), for fleets
//    that decode actual tokens.
//
// The device exposes exactly the stepping surface the fleet router needs
// (submit/step/idle/now/queue_depth/...) plus run(), the offline
// submit-all + step-until-idle + finish loop — the same loop body as
// ContinuousPolicy::run, so offline planning and fleet serving share one
// source of truth for admission/preemption/retirement semantics.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "serving/engine.h"

namespace orinsim::serving {

class ServingDevice {
 public:
  // Simulated device from a sim/device_catalog entry.
  struct SimConfig {
    std::string name;                        // report/trace tag; empty: device_key
    std::string device_key = "orin-agx-64";  // sim/device_catalog key
    // Table 2 power-mode name, translated to the device via
    // sim::scaled_power_mode (identity on the paper's Orin AGX 64GB).
    std::string power_mode = "MaxN";
    std::string model_key = "llama3";
    DType dtype = DType::kF16;
    std::size_t max_concurrency = 8;
    workload::SeqConfig seq = workload::seq_config_default();
    // Block pool (0 blocks = capacity for max_concurrency full sequences).
    std::size_t kv_blocks = 0;
    std::size_t block_tokens = kDefaultKVBlockTokens;
    // Governor (off by default). When enabled with an empty ladder, the
    // ladder is filled with the device-scaled GPU-frequency descent starting
    // at the configured power mode, so a throttled Nano steps down its own
    // clocks rather than Orin-absolute frequencies.
    GovernorConfig governor;
    // Speculative decoding (off by default): pass-through to
    // SimTokenBackend::Config::speculation.
    SpeculationConfig speculation;
  };

  // Builds backend + engine from the catalog entry. Throws on unknown
  // device/power-mode/model keys.
  explicit ServingDevice(const SimConfig& config);

  // Functional device over a real model. `model` must outlive the device;
  // `pool` may be null (serial decode); `draft` is required iff
  // config.speculation.enabled (see FunctionalTokenBackend) and must outlive
  // the device too.
  ServingDevice(Model& model, const FunctionalTokenBackend::Config& config,
                GovernorConfig governor = {}, std::string name = "functional",
                ThreadPool* pool = nullptr, Model* draft = nullptr);

  ServingDevice(const ServingDevice&) = delete;
  ServingDevice& operator=(const ServingDevice&) = delete;
  ~ServingDevice();

  const std::string& name() const noexcept { return name_; }
  TokenBackend& backend() noexcept { return *backend_; }
  ContinuousEngine& engine() noexcept { return *engine_; }
  const ContinuousEngine& engine() const noexcept { return *engine_; }

  // --- engine stepping surface (forwarders) -----------------------------
  std::size_t submit(Request req, StreamCallbacks callbacks = {});
  ContinuousEngine::Step step();
  bool idle() const;
  bool pending_arrivals() const;
  double now() const;  // engine virtual clock (timeline cursor)
  std::size_t queue_depth() const;
  std::size_t active_count() const;
  // Waiting + running load, the join-shortest-queue routing signal.
  std::size_t load() const { return queue_depth() + active_count(); }
  const trace::ExecutionTimeline& timeline() const;
  // Tags every exported trace event with the owning device (fleet only;
  // single-device callers never set it, keeping serialization untouched).
  void set_device_id(std::size_t id);

  // --- power/energy routing signals -------------------------------------
  // True while the governor holds admissions at the power-mode ladder floor.
  bool governor_deferring() const;
  // The governor actually installed (ladder auto-fill applied).
  const GovernorConfig& governor() const noexcept { return governor_; }
  double power_cap_w() const noexcept { return governor_.power_cap_w; }
  // Mean draw so far: attributed energy over elapsed virtual time (0 before
  // the first powered step). The power-headroom policy routes on
  // power_cap_w() - mean_power_w().
  double mean_power_w() const;

  // Consumes the engine: EngineResult off the event stream. Requires idle.
  EngineResult finish();
  // Offline one-call run: submit everything, step until idle, finish.
  EngineResult run(std::vector<Request> requests);

 private:
  std::string name_;
  GovernorConfig governor_;
  std::unique_ptr<SimTokenBackend> sim_backend_;        // SimConfig path
  std::unique_ptr<FunctionalTokenBackend> fn_backend_;  // functional path
  TokenBackend* backend_ = nullptr;
  std::unique_ptr<ContinuousEngine> engine_;
};

}  // namespace orinsim::serving
