// A request-level batching simulator on top of an InferenceBackend: models
// an edge serving deployment where prompts arrive over time, are grouped
// into batches of at most max_batch, and each batch runs to completion
// before the next starts (the paper's static-batching regime).
//
// The scheduler is a pure event emitter: it walks the arrival stream,
// decides batch boundaries, and emits StepEvents (one kDecode per batch,
// kStall for idle gaps) plus request bookkeeping into a
// trace::ExecutionTimeline. Every reported metric — makespan, energy,
// occupancy, per-request latencies — is derived from that timeline.
//
// Used by the edge_serving_planner example to explore the batch-size
// latency/throughput trade-off of §3.1 at the request level: larger batches
// raise throughput but delay each request's time-to-last-token.
#pragma once

#include <cstddef>
#include <vector>

#include "serving/session.h"
#include "trace/timeline.h"
#include "workload/arrivals.h"

namespace orinsim::serving {

struct SchedulerConfig {
  std::size_t max_batch = 32;
  // Requests arriving while a batch runs queue up; a new batch launches as
  // soon as the device frees up and at least one request is waiting.
  // The shared workload::ArrivalConfig seeds static, continuous and offload
  // schedulers with one arrival model; kDeterministic keeps the original
  // fixed spacing of 1/rate_rps.
  workload::ArrivalConfig arrivals;
  workload::SeqConfig seq = workload::seq_config_default();
};

struct RequestStats {
  double arrival_s = 0.0;
  double start_s = 0.0;     // when its batch launched
  double finish_s = 0.0;    // when its batch completed
  double queueing_s() const { return start_s - arrival_s; }
  double total_latency_s() const { return finish_s - arrival_s; }
};

struct ScheduleResult {
  std::vector<RequestStats> requests;
  std::size_t batches_run = 0;
  double makespan_s = 0.0;
  double total_energy_j = 0.0;
  double mean_batch_occupancy = 0.0;

  // The full event stream the metrics above are derived from.
  trace::ExecutionTimeline timeline;

  double mean_latency_s() const;
  double p95_latency_s() const;
  double achieved_rps() const;
};

// Simulates the schedule; deterministic given the backend and config.
ScheduleResult simulate_serving(InferenceBackend& backend, const SchedulerConfig& config);

// Variant with explicit arrival timestamps (e.g. from
// workload::generate_arrivals for Poisson or bursty streams). config's
// arrival fields and total_requests are ignored in favour of the list.
ScheduleResult simulate_serving(InferenceBackend& backend, const SchedulerConfig& config,
                                const std::vector<double>& arrival_times);

}  // namespace orinsim::serving
