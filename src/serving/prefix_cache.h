// Cross-request radix prefix cache over the paged KV allocator.
//
// A radix tree at KV-block granularity: each node owns one full block of
// block_tokens token positions, keyed by the exact token ids it covers, and
// a path from the root spells a prompt prefix whose KV state is resident.
// A retiring request inserts its full-block prompt prefix (insert-on-retire:
// the tree retains one allocator reference per node, so the blocks survive
// free_sequence); a new request's admit runs longest-prefix match and
// attaches the matched chain to its empty sequence, skipping prefill for the
// matched tokens entirely — the paper's TTFT-dominates-at-the-edge result is
// exactly what this relieves for chat traffic with shared system prompts.
//
// Match granularity: callers pass `granularity_tokens` (the lcm of the KV
// block size and the model's prefill chunk) and a `max_tokens` cap (prompt
// length minus one). Trimming every match to that boundary makes the
// cache-hit suffix prefill issue the same forward_chunk calls at the same
// absolute chunk offsets as a from-scratch prefill, so greedy outputs are
// bit-identical with the cache on or off, for every weight precision and KV
// storage. Only full blocks are ever shared, so the first append after an
// attach starts a fresh block and the hit path never copy-on-writes.
//
// Reference protocol (the invariants the BlockAllocator guards enforce):
//  - insert: tree retains each newly-adopted block and flags it cached.
//  - match_and_retain: retains each matched block FOR THE CALLER; the
//    caller hands the refs to KVCache::attach_prefix, which adopts them.
//  - evict: only leaves whose allocator ref_count is exactly 1 (the tree's
//    own reference) are reclaimable, least-recently-used first; the flag is
//    cleared before the release, so a release that frees a still-flagged
//    block trips the allocator's check. Cached-but-unreferenced blocks are
//    therefore reclaimed before any running request is preempted.
//
// Thread-safe: one internal mutex serializes match/insert/evict, so an
// eviction sweep racing a concurrent admit (lane-parallel engines) cannot
// free a block between the ref-count probe and the retain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "model/kv_cache.h"
#include "tokenizer/tokenizer.h"

namespace orinsim::serving {

// Longest-prefix match result. The caller owns one allocator reference per
// block (taken by match_and_retain) and must either adopt them into a
// sequence (KVCache::attach_prefix) or release them.
struct PrefixMatch {
  std::vector<std::size_t> blocks;
  std::size_t tokens = 0;  // == blocks.size() * block_tokens
  bool hit() const { return tokens > 0; }
};

// Monotonic counters; conservation (hits + misses == lookups, bytes_saved ==
// hit_tokens * bytes-per-token) is pinned by tests and the bench.
struct PrefixCacheStats {
  std::size_t lookups = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t hit_tokens = 0;       // prefill tokens skipped, cumulative
  std::size_t inserted_blocks = 0;  // cumulative
  std::size_t evicted_blocks = 0;   // cumulative
  std::size_t cached_blocks = 0;    // currently resident in the tree
  std::size_t bytes_saved = 0;      // hit_tokens * cache block bytes / block_tokens
  std::size_t block_tokens = 0;     // tokens per block (0: no cache attached)

  double hit_rate() const {
    return lookups > 0 ? static_cast<double>(hits) / static_cast<double>(lookups) : 0.0;
  }
};

class PrefixCache {
 public:
  // `cache` must be paged and outlive the PrefixCache. `max_blocks` caps the
  // tree's residency (0 = bounded only by the allocator pool); the engine
  // additionally evicts on allocator exhaustion.
  explicit PrefixCache(KVCache& cache, std::size_t max_blocks = 0);
  ~PrefixCache();

  PrefixCache(const PrefixCache&) = delete;
  PrefixCache& operator=(const PrefixCache&) = delete;

  // Longest cached prefix of `prompt`, trimmed down to a multiple of
  // `granularity_tokens` and capped at `max_tokens`. Retains every returned
  // block for the caller. granularity_tokens must be a positive multiple of
  // the KV block size.
  PrefixMatch match_and_retain(std::span<const TokenId> prompt,
                               std::size_t granularity_tokens, std::size_t max_tokens);

  // Inserts the full-block prefix of `tokens` backed by `blocks` (the owning
  // sequence's block table, in order; may be longer than the full-block
  // prefix — extras are ignored). Call BEFORE free_sequence: the tree
  // retains each block it adopts, deduplicating against paths already
  // resident. Prefixes shorter than one block are a no-op.
  void insert(std::span<const TokenId> tokens, std::span<const std::size_t> blocks);

  // Evicts the least-recently-used leaf whose block only the tree still
  // references. Returns false when nothing is reclaimable (every cached
  // block is shared with a live sequence, or the tree is empty).
  bool evict_lru_leaf();

  // Evicts LRU leaves until `count` blocks were reclaimed or nothing more is
  // reclaimable; returns the number evicted. The engine's exhaustion hook.
  std::size_t evict(std::size_t count);

  // Releases every tree-held block (end of run).
  void clear();

  PrefixCacheStats stats() const;
  std::size_t block_tokens() const noexcept { return block_tokens_; }

 private:
  struct Node {
    std::vector<TokenId> tokens;  // exactly block_tokens ids (root: empty)
    std::size_t block = 0;        // allocator block id (root: unused)
    std::uint64_t last_use = 0;   // touch clock for LRU
    Node* parent = nullptr;
    std::vector<std::unique_ptr<Node>> children;
  };

  Node* find_child(Node* node, std::span<const TokenId> key) const;
  void release_node_block(Node* node);

  KVCache& cache_;
  std::size_t block_tokens_ = 0;
  std::size_t max_blocks_ = 0;

  mutable std::mutex mu_;
  Node root_;
  std::uint64_t clock_ = 0;
  PrefixCacheStats stats_;
};

}  // namespace orinsim::serving
