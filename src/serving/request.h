// The unified request lifecycle every serving path speaks.
//
// A Request is one user prompt moving through Queued -> Prefilling ->
// Decoding -> Finished, with Preempted as the detour a paged engine takes
// when the KV block pool runs dry: the youngest running request releases its
// blocks, re-queues, and is later recomputed from its recorded tokens
// (greedy decoding makes the recompute lossless). Both the simulated and the
// functional backends mutate the same struct, so per-request metrics
// (latency, preemption count, tokens) read identically off either engine.
#pragma once

#include <cstddef>
#include <vector>

#include "model/speculative.h"
#include "tokenizer/tokenizer.h"

namespace orinsim::serving {

enum class RequestState { kQueued, kPrefilling, kDecoding, kFinished, kPreempted };

struct Request {
  static constexpr std::size_t kNoLane = static_cast<std::size_t>(-1);

  std::size_t id = 0;       // index into the engine's request list / timeline
  double arrival_s = 0.0;

  // Prompt: real tokens for the functional backend; the simulator only needs
  // the count (prompt stays empty, prompt_tokens carries the length).
  std::vector<TokenId> prompt;
  std::size_t prompt_tokens = 0;
  std::size_t max_new_tokens = 0;

  RequestState state = RequestState::kQueued;
  // Generated so far. The functional backend records the actual tokens in
  // `output` (output.size() == generated); the simulator only counts.
  std::vector<TokenId> output;
  std::size_t generated = 0;

  std::size_t preemptions = 0;
  std::size_t lane = kNoLane;  // backend lane while admitted

  // Prompt tokens served from the cross-request prefix cache at first
  // admission (0: miss, or the backend runs no cache). The matched prefix
  // attached ready-made KV blocks, so prefill only ran the suffix.
  std::size_t prefix_cached = 0;

  // Draft/verify accounting when the backend serves this request
  // speculatively (all zero otherwise). Survives preemption: recompute
  // replays recorded tokens without re-running rounds, so the counters keep
  // describing the rounds that actually executed.
  SpeculativeStats spec;

  // Tokens in (or due in) the KV cache: prompt plus everything generated.
  std::size_t context() const { return prompt_tokens + generated; }
  bool done() const { return generated >= max_new_tokens; }
};

// Per-request energy attribution, derived from the engine's event stream:
// every powered step's energy is split evenly across the requests active in
// that step, so idle power is amortized over batch occupancy and the sum
// over requests conserves the timeline's total energy. All zero when the
// backend attaches no power (functional engine without a power proxy).
struct RequestMetrics {
  double energy_j = 0.0;
  // Attributed energy over the request's residency (first dispatch to
  // completion, queueing gaps after preemption included).
  double avg_power_w = 0.0;
  // energy_j / (prompt + generated) — the same token accounting as
  // token_throughput_tps, per request instead of per run.
  double energy_per_token_j = 0.0;
};

}  // namespace orinsim::serving
