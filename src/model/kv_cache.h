// Batched key-value cache for autoregressive decoding.
//
// Storage: per layer, K and V rows of kv_dim floats. Values are either FP32
// (exact) or INT8 (per-vector absmax quantization: each appended K/V vector
// carries one scale). INT8 halves the cache footprint — the extension
// study's KV-quantization axis — at a measurable accuracy cost that the
// perplexity benches quantify.
//
// Layout: rows are addressed through one of two mappings.
//  - kDense reserves max_seq contiguous rows per sequence up front (the
//    original layout; row = b * max_seq + pos).
//  - kPaged (default) maps positions onto fixed-size blocks of
//    block_tokens rows handed out by a ref-counted BlockAllocator. A block
//    spans every layer's K and V for its positions, so one table per
//    sequence drives all layers. Sequences grow block-by-block, forked
//    sequences share their common prefix copy-on-write, and a bounded pool
//    (max_blocks) lets a serving engine oversubscribe lanes and preempt on
//    exhaustion instead of reserving worst-case memory per lane.
// Values are copied bit-exactly in either mapping, so paged and dense
// caches produce bit-identical attention outputs (pinned by tests).
//
// The cache tracks a per-sequence length so ragged batches (prompts of
// different lengths) decode correctly. bytes() reports actual allocation:
// blocks in use times block bytes under paging, the full reservation under
// the dense layout (the paper's incremental-memory metric counts KV growth
// the same way).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/block_allocator.h"
#include "model/config.h"

namespace orinsim {

enum class KVStorage { kF32, kI8 };
enum class KVLayout { kDense, kPaged };

// Default block granularity: 16 tokens balances internal fragmentation
// (last block half-empty on average) against table-walk overhead, matching
// the block sizes vLLM ships on small models.
inline constexpr std::size_t kDefaultKVBlockTokens = 16;

struct KVCacheOptions {
  KVStorage storage = KVStorage::kF32;
  KVLayout layout = KVLayout::kPaged;
  std::size_t block_tokens = kDefaultKVBlockTokens;
  // Pool size in blocks. 0 = enough for `batch` sequences of max_seq tokens,
  // so existing call sites keep their dense capacity guarantee and never see
  // exhaustion; a serving engine passes a smaller pool to oversubscribe.
  std::size_t max_blocks = 0;
};

class KVCache {
 public:
  KVCache(const TransformerConfig& config, std::size_t batch, std::size_t max_seq,
          KVStorage storage = KVStorage::kF32);
  KVCache(const TransformerConfig& config, std::size_t batch, std::size_t max_seq,
          const KVCacheOptions& options);

  std::size_t batch() const noexcept { return batch_; }
  std::size_t max_seq() const noexcept { return max_seq_; }
  std::size_t kv_dim() const noexcept { return kv_dim_; }
  std::size_t seq_len(std::size_t b) const { return lengths_.at(b); }

  // Appends one position worth of K/V for sequence b in layer l; returns the
  // position it was stored at. Paged layout allocates the backing block on
  // demand and throws ContractViolation when the pool is exhausted — callers
  // that must not throw reserve ahead with try_reserve().
  std::size_t append(std::size_t layer, std::size_t b, std::span<const float> k,
                     std::span<const float> v);

  // Stages `count` consecutive positions of K/V for sequence b in layer l:
  // k and v are row-major [count, kv_dim] and land at positions
  // seq_len(b) .. seq_len(b)+count-1. Chunked prefill appends a whole chunk
  // per layer, then commits once. Returns the first position written.
  std::size_t append_many(std::size_t layer, std::size_t b, std::span<const float> k,
                          std::span<const float> v, std::size_t count);

  // Advance the per-sequence length by `count` after all layers appended.
  // (append()/append_many() write at the *current* length; commit() bumps it.)
  void commit(std::size_t b, std::size_t count = 1);

  // Roll sequence b back to new_len tokens (speculative-decoding rejection:
  // discard the KV entries of unaccepted draft tokens). Paged layout drops
  // this sequence's reference on each now-unused block; a block still shared
  // with a forked sibling or held by the prefix cache is only decref'd —
  // never returned to the pool while live (the rejected-draft-branch path
  // exercises exactly this every round; pinned by regression test).
  void truncate(std::size_t b, std::size_t new_len);

  // Release every block of sequence b and zero its length (a retired or
  // preempted request hands its memory back to the pool).
  void free_sequence(std::size_t b) { truncate(b, 0); }

  // Guarantees the next `count` appends to sequence b cannot fail for lack
  // of blocks (all-or-nothing; no partial reservation). Returns false when
  // the pool cannot cover them or max_seq would be exceeded — the serving
  // engine's preemption trigger. Dense layout only checks max_seq.
  bool try_reserve(std::size_t b, std::size_t count);

  // Shares sequence src's committed prefix with empty sequence dst: blocks
  // are ref-counted, not copied, and the first append into a shared block
  // copies it (copy-on-write). Paged layout only.
  void fork_sequence(std::size_t src, std::size_t dst);

  // Copy-on-writes sequence b's partially-filled tail block now if it is
  // shared, so subsequent appends into it cannot hit pool exhaustion
  // mid-flight (try_reserve only covers *new* blocks, not the COW copy of a
  // shared tail). Returns false — leaving the cache unchanged — when the
  // copy would need a block the pool cannot supply; true when the tail is
  // already private, block-aligned, or was successfully copied. The serving
  // engine's speculative draft branch calls this right after fork_sequence,
  // before any parallel decode work touches the branch. Paged layout only.
  bool try_unshare_tail(std::size_t b);

  // --- Cross-request block sharing (serving-layer prefix cache). Paged only.

  // Sequence b's committed block table. The ids stay valid while the caller
  // holds a reference on them (retain_block); the prefix cache snapshots the
  // full-block prefix of a retiring sequence this way.
  std::span<const std::size_t> block_table(std::size_t b) const;

  // Maps empty sequence b onto a ready-made chain of full blocks covering
  // `tokens` committed positions. ADOPTS the caller's references on `blocks`
  // (one per block — PrefixCache::match_and_retain takes them out); on the
  // generalized fork_sequence path the donor chain can come from any retired
  // sequence. `tokens` must fill the chain exactly (tokens == blocks.size()
  // * block_tokens()), so the next append starts a fresh block and never
  // copy-on-writes a shared one — the cache-hit decode path allocates
  // instead of copying, and divergence below the attached prefix is
  // impossible by construction.
  void attach_prefix(std::size_t b, std::span<const std::size_t> blocks,
                     std::size_t tokens);

  // Block-level ref-count plumbing for an external (cross-sequence) holder
  // such as the prefix cache. Thin forwarders onto the BlockAllocator so the
  // cache never touches allocator internals directly.
  void retain_block(std::size_t id);
  void release_block(std::size_t id);
  std::size_t block_ref_count(std::size_t id) const;
  // Flags a block as held by the prefix cache (see BlockAllocator::set_cached)
  // so eviction accounting is auditable: cached_blocks() counts them.
  void mark_block_cached(std::size_t id, bool cached);
  std::size_t cached_blocks() const noexcept;

  // K/V vectors for sequence b, position p, layer l. pos == seq_len(b) reads
  // the entry staged by append() before commit() (each layer reads its own
  // staged K/V for the token currently being processed).
  //
  // FP32 storage returns a span into the cache itself and ignores `scratch`.
  // INT8 storage dequantizes into the caller-supplied `scratch` (>= kv_dim()
  // floats) and returns a view of it. The cache holds no mutable state of
  // its own, so concurrent readers with distinct scratch buffers are safe —
  // this is the design fix for the former shared-scratch aliasing bug.
  std::span<const float> key(std::size_t layer, std::size_t b, std::size_t pos,
                             std::span<float> scratch) const;
  std::span<const float> value(std::size_t layer, std::size_t b, std::size_t pos,
                               std::span<float> scratch) const;

  // All K/V rows for positions [0, count) of sequence b in layer l as one
  // row-major [count, kv_dim] block. FP32 storage returns a direct span when
  // the rows are physically contiguous — always under the dense layout, and
  // under paging whenever the sequence's blocks happen to be consecutive
  // (the serial-decode common case) — otherwise it gathers whole-block runs
  // into `scratch` (>= count * kv_dim floats). INT8 dequantizes every row
  // into `scratch` with the exact per-element math of key()/value(). Hoists
  // the per-(head, position) dequantization out of the attention inner loop —
  // under GQA the old path repeated it group times.
  std::span<const float> key_rows(std::size_t layer, std::size_t b, std::size_t count,
                                  std::span<float> scratch) const;
  std::span<const float> value_rows(std::size_t layer, std::size_t b, std::size_t count,
                                    std::span<float> scratch) const;

  KVStorage storage() const noexcept { return storage_; }
  KVLayout layout() const noexcept { return layout_; }
  std::size_t block_tokens() const noexcept { return block_tokens_; }

  void reset();

  // Bytes actually allocated: blocks_in_use() * block_bytes() under paging,
  // the full dense reservation otherwise.
  std::size_t bytes() const noexcept;

  // High-water mark of bytes(). Under the dense layout this is the (fixed)
  // reservation itself.
  std::size_t peak_bytes() const noexcept;

  // Physical slab reservation backing the pool (what the process actually
  // maps, as opposed to what the pool has handed out).
  std::size_t reserved_bytes() const noexcept;

  // Bytes logically in use given current committed sequence lengths.
  std::size_t used_bytes() const noexcept;

  // Paged-pool introspection (serving engine occupancy metrics). All return
  // the dense-equivalent single "block" when layout() == kDense.
  std::size_t block_bytes() const noexcept;
  std::size_t total_blocks() const noexcept;
  std::size_t blocks_in_use() const noexcept;
  std::size_t free_blocks() const noexcept;

 private:
  // Physical row index of (sequence, position) under the active layout.
  std::size_t row(std::size_t b, std::size_t pos) const;
  // Paged: maps positions [first, first+count) to exclusively-owned blocks,
  // allocating on demand (throws on exhaustion) and copying shared blocks
  // before the write (copy-on-write). Dense: no-op.
  void ensure_writable(std::size_t b, std::size_t first, std::size_t count);
  void make_writable(std::size_t b, std::size_t block_index);
  void store_quantized(std::vector<std::int8_t>& codes, std::vector<float>& scales,
                       std::size_t row_index, std::span<const float> data);
  std::size_t bytes_per_row() const noexcept;

  std::size_t batch_ = 0;
  std::size_t max_seq_ = 0;
  std::size_t kv_dim_ = 0;
  std::size_t n_layers_ = 0;
  KVStorage storage_ = KVStorage::kF32;
  KVLayout layout_ = KVLayout::kPaged;
  std::size_t block_tokens_ = kDefaultKVBlockTokens;

  // Paged state: one block table per sequence (shared by every layer) over
  // a ref-counted pool. Null under the dense layout.
  std::unique_ptr<BlockAllocator> allocator_;
  std::vector<std::vector<std::size_t>> tables_;

  // FP32 storage: [layer][rows * kv_dim] slabs; rows = batch * max_seq
  // (dense) or pool_blocks * block_tokens (paged).
  std::vector<std::vector<float>> keys_;
  std::vector<std::vector<float>> values_;
  // INT8 storage: codes same layout, one absmax scale per stored vector.
  std::vector<std::vector<std::int8_t>> key_codes_;
  std::vector<std::vector<std::int8_t>> value_codes_;
  std::vector<std::vector<float>> key_scales_;    // [layer][rows]
  std::vector<std::vector<float>> value_scales_;  // [layer][rows]

  // Highest readable position for sequence b: committed length plus any
  // entries staged by append()/append_many() but not yet committed.
  std::size_t staged_end(std::size_t b) const {
    return lengths_[b] + std::max<std::size_t>(staged_[b], 1) - 1;
  }

  std::vector<std::size_t> lengths_;  // per sequence, committed
  std::vector<std::size_t> staged_;   // per sequence, appended-not-committed
};

}  // namespace orinsim
