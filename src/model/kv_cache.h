// Batched key-value cache for autoregressive decoding.
//
// Layout: per layer, K and V are [batch, max_seq, kv_dim] buffers. Storage
// is either FP32 (exact) or INT8 (per-vector absmax quantization: each
// appended K/V vector carries one scale). INT8 halves the cache footprint —
// the extension study's KV-quantization axis — at a measurable accuracy
// cost that the perplexity benches quantify.
//
// The cache tracks a per-sequence length so ragged batches (prompts of
// different lengths) decode correctly. bytes() reports the allocation the
// same way the paper's incremental-memory metric counts KV growth.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/config.h"

namespace orinsim {

enum class KVStorage { kF32, kI8 };

class KVCache {
 public:
  KVCache(const TransformerConfig& config, std::size_t batch, std::size_t max_seq,
          KVStorage storage = KVStorage::kF32);

  std::size_t batch() const noexcept { return batch_; }
  std::size_t max_seq() const noexcept { return max_seq_; }
  std::size_t kv_dim() const noexcept { return kv_dim_; }
  std::size_t seq_len(std::size_t b) const { return lengths_.at(b); }

  // Appends one position worth of K/V for sequence b in layer l; returns the
  // position it was stored at.
  std::size_t append(std::size_t layer, std::size_t b, std::span<const float> k,
                     std::span<const float> v);

  // Stages `count` consecutive positions of K/V for sequence b in layer l:
  // k and v are row-major [count, kv_dim] and land at positions
  // seq_len(b) .. seq_len(b)+count-1. Chunked prefill appends a whole chunk
  // per layer, then commits once. Returns the first position written.
  std::size_t append_many(std::size_t layer, std::size_t b, std::span<const float> k,
                          std::span<const float> v, std::size_t count);

  // Advance the per-sequence length by `count` after all layers appended.
  // (append()/append_many() write at the *current* length; commit() bumps it.)
  void commit(std::size_t b, std::size_t count = 1);

  // Roll sequence b back to new_len tokens (speculative-decoding rejection:
  // discard the KV entries of unaccepted draft tokens).
  void truncate(std::size_t b, std::size_t new_len);

  // K/V vectors for sequence b, position p, layer l. pos == seq_len(b) reads
  // the entry staged by append() before commit() (each layer reads its own
  // staged K/V for the token currently being processed).
  //
  // FP32 storage returns a span into the cache itself and ignores `scratch`.
  // INT8 storage dequantizes into the caller-supplied `scratch` (>= kv_dim()
  // floats) and returns a view of it. The cache holds no mutable state of
  // its own, so concurrent readers with distinct scratch buffers are safe —
  // this is the design fix for the former shared-scratch aliasing bug.
  std::span<const float> key(std::size_t layer, std::size_t b, std::size_t pos,
                             std::span<float> scratch) const;
  std::span<const float> value(std::size_t layer, std::size_t b, std::size_t pos,
                               std::span<float> scratch) const;

  // All K/V rows for positions [0, count) of sequence b in layer l as one
  // row-major [count, kv_dim] block. FP32 storage returns a direct span
  // (positions are contiguous per sequence); INT8 dequantizes every row into
  // `scratch` (>= count * kv_dim floats) with the exact per-element math of
  // key()/value(). Hoists the per-(head, position) dequantization out of the
  // attention inner loop — under GQA the old path repeated it group times.
  std::span<const float> key_rows(std::size_t layer, std::size_t b, std::size_t count,
                                  std::span<float> scratch) const;
  std::span<const float> value_rows(std::size_t layer, std::size_t b, std::size_t count,
                                    std::span<float> scratch) const;

  KVStorage storage() const noexcept { return storage_; }

  void reset();

  // Total bytes allocated by this cache.
  std::size_t bytes() const noexcept;

  // Bytes logically in use given current sequence lengths.
  std::size_t used_bytes() const noexcept;

 private:
  std::size_t offset(std::size_t b, std::size_t pos) const {
    ORINSIM_DCHECK(b < batch_ && pos < max_seq_, "kv cache index out of range");
    return (b * max_seq_ + pos) * kv_dim_;
  }
  std::size_t scale_offset(std::size_t b, std::size_t pos) const {
    return b * max_seq_ + pos;
  }
  void store_quantized(std::vector<std::int8_t>& codes, std::vector<float>& scales,
                       std::size_t b, std::size_t pos, std::span<const float> data);

  std::size_t batch_ = 0;
  std::size_t max_seq_ = 0;
  std::size_t kv_dim_ = 0;
  std::size_t n_layers_ = 0;
  KVStorage storage_ = KVStorage::kF32;

  // FP32 storage: [layer][batch * max_seq * kv_dim].
  std::vector<std::vector<float>> keys_;
  std::vector<std::vector<float>> values_;
  // INT8 storage: codes same layout, one absmax scale per stored vector.
  std::vector<std::vector<std::int8_t>> key_codes_;
  std::vector<std::vector<std::int8_t>> value_codes_;
  std::vector<std::vector<float>> key_scales_;    // [layer][batch * max_seq]
  std::vector<std::vector<float>> value_scales_;  // [layer][batch * max_seq]

  // Highest readable position for sequence b: committed length plus any
  // entries staged by append()/append_many() but not yet committed.
  std::size_t staged_end(std::size_t b) const {
    return lengths_[b] + std::max<std::size_t>(staged_[b], 1) - 1;
  }

  std::vector<std::size_t> lengths_;  // per sequence, committed
  std::vector<std::size_t> staged_;   // per sequence, appended-not-committed
};

}  // namespace orinsim
