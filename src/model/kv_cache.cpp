#include "model/kv_cache.h"

#include <algorithm>
#include <cmath>

namespace orinsim {

KVCache::KVCache(const TransformerConfig& config, std::size_t batch, std::size_t max_seq,
                 KVStorage storage)
    : batch_(batch),
      max_seq_(max_seq),
      kv_dim_(config.kv_dim()),
      n_layers_(config.n_layers),
      storage_(storage) {
  ORINSIM_CHECK(batch > 0 && max_seq > 0, "KVCache requires positive batch and max_seq");
  ORINSIM_CHECK(max_seq <= config.max_seq, "KVCache max_seq exceeds model max_seq");
  if (storage_ == KVStorage::kF32) {
    keys_.resize(n_layers_);
    values_.resize(n_layers_);
    for (std::size_t l = 0; l < n_layers_; ++l) {
      keys_[l].assign(batch_ * max_seq_ * kv_dim_, 0.0f);
      values_[l].assign(batch_ * max_seq_ * kv_dim_, 0.0f);
    }
  } else {
    key_codes_.resize(n_layers_);
    value_codes_.resize(n_layers_);
    key_scales_.resize(n_layers_);
    value_scales_.resize(n_layers_);
    for (std::size_t l = 0; l < n_layers_; ++l) {
      key_codes_[l].assign(batch_ * max_seq_ * kv_dim_, 0);
      value_codes_[l].assign(batch_ * max_seq_ * kv_dim_, 0);
      key_scales_[l].assign(batch_ * max_seq_, 0.0f);
      value_scales_[l].assign(batch_ * max_seq_, 0.0f);
    }
  }
  lengths_.assign(batch_, 0);
  staged_.assign(batch_, 0);
}

void KVCache::store_quantized(std::vector<std::int8_t>& codes, std::vector<float>& scales,
                              std::size_t b, std::size_t pos,
                              std::span<const float> data) {
  float absmax = 0.0f;
  for (float v : data) absmax = std::max(absmax, std::fabs(v));
  const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
  scales[scale_offset(b, pos)] = scale;
  std::int8_t* out = codes.data() + offset(b, pos);
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int code = static_cast<int>(std::lround(data[i] / scale));
    out[i] = static_cast<std::int8_t>(std::clamp(code, -127, 127));
  }
}

std::size_t KVCache::append(std::size_t layer, std::size_t b, std::span<const float> k,
                            std::span<const float> v) {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_, "KVCache::append out of range");
  ORINSIM_CHECK(k.size() == kv_dim_ && v.size() == kv_dim_, "KVCache::append dim mismatch");
  const std::size_t pos = lengths_[b];
  ORINSIM_CHECK(pos < max_seq_, "KVCache overflow: sequence exceeds max_seq");
  if (storage_ == KVStorage::kF32) {
    std::copy(k.begin(), k.end(), keys_[layer].begin() + offset(b, pos));
    std::copy(v.begin(), v.end(), values_[layer].begin() + offset(b, pos));
  } else {
    store_quantized(key_codes_[layer], key_scales_[layer], b, pos, k);
    store_quantized(value_codes_[layer], value_scales_[layer], b, pos, v);
  }
  staged_[b] = std::max<std::size_t>(staged_[b], 1);
  return pos;
}

std::size_t KVCache::append_many(std::size_t layer, std::size_t b, std::span<const float> k,
                                 std::span<const float> v, std::size_t count) {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_, "KVCache::append_many out of range");
  ORINSIM_CHECK(count > 0 && k.size() == count * kv_dim_ && v.size() == k.size(),
                "KVCache::append_many dim mismatch");
  const std::size_t first = lengths_[b];
  ORINSIM_CHECK(first + count <= max_seq_, "KVCache overflow: sequence exceeds max_seq");
  if (storage_ == KVStorage::kF32) {
    std::copy(k.begin(), k.end(), keys_[layer].begin() + offset(b, first));
    std::copy(v.begin(), v.end(), values_[layer].begin() + offset(b, first));
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      store_quantized(key_codes_[layer], key_scales_[layer], b, first + i,
                      k.subspan(i * kv_dim_, kv_dim_));
      store_quantized(value_codes_[layer], value_scales_[layer], b, first + i,
                      v.subspan(i * kv_dim_, kv_dim_));
    }
  }
  staged_[b] = std::max(staged_[b], count);
  return first;
}

void KVCache::commit(std::size_t b, std::size_t count) {
  ORINSIM_CHECK(b < batch_, "KVCache::commit out of range");
  ORINSIM_CHECK(count > 0 && lengths_[b] + count <= max_seq_, "KVCache::commit overflow");
  lengths_[b] += count;
  staged_[b] = 0;
}

std::span<const float> KVCache::key(std::size_t layer, std::size_t b, std::size_t pos,
                                    std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && pos <= staged_end(b) && pos < max_seq_,
                "KVCache::key out of range");
  if (storage_ == KVStorage::kF32) {
    return std::span<const float>(keys_[layer].data() + offset(b, pos), kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= kv_dim_, "KVCache::key needs kv_dim scratch floats");
  const std::int8_t* codes = key_codes_[layer].data() + offset(b, pos);
  const float scale = key_scales_[layer][scale_offset(b, pos)];
  for (std::size_t i = 0; i < kv_dim_; ++i) {
    scratch[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(kv_dim_);
}

std::span<const float> KVCache::value(std::size_t layer, std::size_t b, std::size_t pos,
                                      std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && pos <= staged_end(b) && pos < max_seq_,
                "KVCache::value out of range");
  if (storage_ == KVStorage::kF32) {
    return std::span<const float>(values_[layer].data() + offset(b, pos), kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= kv_dim_, "KVCache::value needs kv_dim scratch floats");
  const std::int8_t* codes = value_codes_[layer].data() + offset(b, pos);
  const float scale = value_scales_[layer][scale_offset(b, pos)];
  for (std::size_t i = 0; i < kv_dim_; ++i) {
    scratch[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(kv_dim_);
}

std::span<const float> KVCache::key_rows(std::size_t layer, std::size_t b, std::size_t count,
                                         std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && count > 0 && count - 1 <= staged_end(b) &&
                    count <= max_seq_,
                "KVCache::key_rows out of range");
  if (storage_ == KVStorage::kF32) {
    return std::span<const float>(keys_[layer].data() + offset(b, 0), count * kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= count * kv_dim_,
                "KVCache::key_rows needs count*kv_dim scratch floats");
  for (std::size_t p = 0; p < count; ++p) {
    const std::int8_t* codes = key_codes_[layer].data() + offset(b, p);
    const float scale = key_scales_[layer][scale_offset(b, p)];
    float* out = scratch.data() + p * kv_dim_;
    for (std::size_t i = 0; i < kv_dim_; ++i) out[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(count * kv_dim_);
}

std::span<const float> KVCache::value_rows(std::size_t layer, std::size_t b, std::size_t count,
                                           std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && count > 0 && count - 1 <= staged_end(b) &&
                    count <= max_seq_,
                "KVCache::value_rows out of range");
  if (storage_ == KVStorage::kF32) {
    return std::span<const float>(values_[layer].data() + offset(b, 0), count * kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= count * kv_dim_,
                "KVCache::value_rows needs count*kv_dim scratch floats");
  for (std::size_t p = 0; p < count; ++p) {
    const std::int8_t* codes = value_codes_[layer].data() + offset(b, p);
    const float scale = value_scales_[layer][scale_offset(b, p)];
    float* out = scratch.data() + p * kv_dim_;
    for (std::size_t i = 0; i < kv_dim_; ++i) out[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(count * kv_dim_);
}

void KVCache::truncate(std::size_t b, std::size_t new_len) {
  ORINSIM_CHECK(b < batch_, "KVCache::truncate out of range");
  ORINSIM_CHECK(new_len <= lengths_[b], "KVCache::truncate cannot extend");
  lengths_[b] = new_len;
  staged_[b] = 0;
}

void KVCache::reset() {
  std::fill(lengths_.begin(), lengths_.end(), 0);
  std::fill(staged_.begin(), staged_.end(), 0);
}

std::size_t KVCache::bytes() const noexcept {
  const std::size_t vectors = n_layers_ * 2 * batch_ * max_seq_;
  if (storage_ == KVStorage::kF32) return vectors * kv_dim_ * sizeof(float);
  return vectors * (kv_dim_ * sizeof(std::int8_t) + sizeof(float));
}

std::size_t KVCache::used_bytes() const noexcept {
  std::size_t tokens = 0;
  for (std::size_t len : lengths_) tokens += len;
  const std::size_t vectors = n_layers_ * 2 * tokens;
  if (storage_ == KVStorage::kF32) return vectors * kv_dim_ * sizeof(float);
  return vectors * (kv_dim_ * sizeof(std::int8_t) + sizeof(float));
}

}  // namespace orinsim
