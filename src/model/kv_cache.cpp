#include "model/kv_cache.h"

#include <algorithm>
#include <cmath>

namespace orinsim {

namespace {

std::size_t blocks_for(std::size_t tokens, std::size_t block_tokens) {
  return (tokens + block_tokens - 1) / block_tokens;
}

}  // namespace

KVCache::KVCache(const TransformerConfig& config, std::size_t batch, std::size_t max_seq,
                 KVStorage storage)
    : KVCache(config, batch, max_seq, KVCacheOptions{storage}) {}

KVCache::KVCache(const TransformerConfig& config, std::size_t batch, std::size_t max_seq,
                 const KVCacheOptions& options)
    : batch_(batch),
      max_seq_(max_seq),
      kv_dim_(config.kv_dim()),
      n_layers_(config.n_layers),
      storage_(options.storage),
      layout_(options.layout),
      block_tokens_(options.block_tokens) {
  ORINSIM_CHECK(batch > 0 && max_seq > 0, "KVCache requires positive batch and max_seq");
  ORINSIM_CHECK(max_seq <= config.max_seq, "KVCache max_seq exceeds model max_seq");

  std::size_t rows = batch_ * max_seq_;
  if (layout_ == KVLayout::kPaged) {
    ORINSIM_CHECK(block_tokens_ > 0, "KVCache block_tokens must be positive");
    std::size_t pool_blocks = options.max_blocks;
    if (pool_blocks == 0) {
      // Full dense capacity: every sequence can reach max_seq, so existing
      // call sites never see exhaustion.
      pool_blocks = batch_ * blocks_for(max_seq_, block_tokens_);
    }
    allocator_ = std::make_unique<BlockAllocator>(pool_blocks,
                                                  block_tokens_ * bytes_per_row());
    tables_.resize(batch_);
    rows = pool_blocks * block_tokens_;
  }

  if (storage_ == KVStorage::kF32) {
    keys_.resize(n_layers_);
    values_.resize(n_layers_);
    for (std::size_t l = 0; l < n_layers_; ++l) {
      keys_[l].assign(rows * kv_dim_, 0.0f);
      values_[l].assign(rows * kv_dim_, 0.0f);
    }
  } else {
    key_codes_.resize(n_layers_);
    value_codes_.resize(n_layers_);
    key_scales_.resize(n_layers_);
    value_scales_.resize(n_layers_);
    for (std::size_t l = 0; l < n_layers_; ++l) {
      key_codes_[l].assign(rows * kv_dim_, 0);
      value_codes_[l].assign(rows * kv_dim_, 0);
      key_scales_[l].assign(rows, 0.0f);
      value_scales_[l].assign(rows, 0.0f);
    }
  }
  lengths_.assign(batch_, 0);
  staged_.assign(batch_, 0);
}

std::size_t KVCache::bytes_per_row() const noexcept {
  const std::size_t per_vector = storage_ == KVStorage::kF32
                                     ? kv_dim_ * sizeof(float)
                                     : kv_dim_ * sizeof(std::int8_t) + sizeof(float);
  return n_layers_ * 2 * per_vector;
}

std::size_t KVCache::row(std::size_t b, std::size_t pos) const {
  ORINSIM_DCHECK(b < batch_ && pos < max_seq_, "kv cache index out of range");
  if (layout_ == KVLayout::kDense) return b * max_seq_ + pos;
  const std::size_t block_index = pos / block_tokens_;
  ORINSIM_CHECK(block_index < tables_[b].size(), "KVCache: position has no mapped block");
  return tables_[b][block_index] * block_tokens_ + pos % block_tokens_;
}

void KVCache::make_writable(std::size_t b, std::size_t block_index) {
  std::vector<std::size_t>& table = tables_[b];
  const std::size_t old_id = table[block_index];
  if (allocator_->ref_count(old_id) <= 1) return;
  const std::size_t id = allocator_->alloc();
  ORINSIM_CHECK(id != BlockAllocator::kNoBlock,
                "KVCache: KV block pool exhausted during copy-on-write");
  const std::size_t src = old_id * block_tokens_;
  const std::size_t dst = id * block_tokens_;
  for (std::size_t l = 0; l < n_layers_; ++l) {
    if (storage_ == KVStorage::kF32) {
      std::copy_n(keys_[l].begin() + src * kv_dim_, block_tokens_ * kv_dim_,
                  keys_[l].begin() + dst * kv_dim_);
      std::copy_n(values_[l].begin() + src * kv_dim_, block_tokens_ * kv_dim_,
                  values_[l].begin() + dst * kv_dim_);
    } else {
      std::copy_n(key_codes_[l].begin() + src * kv_dim_, block_tokens_ * kv_dim_,
                  key_codes_[l].begin() + dst * kv_dim_);
      std::copy_n(value_codes_[l].begin() + src * kv_dim_, block_tokens_ * kv_dim_,
                  value_codes_[l].begin() + dst * kv_dim_);
      std::copy_n(key_scales_[l].begin() + src, block_tokens_, key_scales_[l].begin() + dst);
      std::copy_n(value_scales_[l].begin() + src, block_tokens_,
                  value_scales_[l].begin() + dst);
    }
  }
  allocator_->release(old_id);
  table[block_index] = id;
}

void KVCache::ensure_writable(std::size_t b, std::size_t first, std::size_t count) {
  if (layout_ == KVLayout::kDense) return;
  std::vector<std::size_t>& table = tables_[b];
  const std::size_t last = first + count - 1;
  while (table.size() * block_tokens_ <= last) {
    const std::size_t id = allocator_->alloc();
    ORINSIM_CHECK(id != BlockAllocator::kNoBlock,
                  "KVCache: KV block pool exhausted (reserve with try_reserve and preempt)");
    table.push_back(id);
  }
  for (std::size_t bi = first / block_tokens_; bi <= last / block_tokens_; ++bi) {
    make_writable(b, bi);
  }
}

void KVCache::store_quantized(std::vector<std::int8_t>& codes, std::vector<float>& scales,
                              std::size_t row_index, std::span<const float> data) {
  float absmax = 0.0f;
  for (float v : data) absmax = std::max(absmax, std::fabs(v));
  const float scale = absmax > 0.0f ? absmax / 127.0f : 1.0f;
  scales[row_index] = scale;
  std::int8_t* out = codes.data() + row_index * kv_dim_;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const int code = static_cast<int>(std::lround(data[i] / scale));
    out[i] = static_cast<std::int8_t>(std::clamp(code, -127, 127));
  }
}

std::size_t KVCache::append(std::size_t layer, std::size_t b, std::span<const float> k,
                            std::span<const float> v) {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_, "KVCache::append out of range");
  ORINSIM_CHECK(k.size() == kv_dim_ && v.size() == kv_dim_, "KVCache::append dim mismatch");
  const std::size_t pos = lengths_[b];
  ORINSIM_CHECK(pos < max_seq_, "KVCache overflow: sequence exceeds max_seq");
  ensure_writable(b, pos, 1);
  const std::size_t r = row(b, pos);
  if (storage_ == KVStorage::kF32) {
    std::copy(k.begin(), k.end(), keys_[layer].begin() + r * kv_dim_);
    std::copy(v.begin(), v.end(), values_[layer].begin() + r * kv_dim_);
  } else {
    store_quantized(key_codes_[layer], key_scales_[layer], r, k);
    store_quantized(value_codes_[layer], value_scales_[layer], r, v);
  }
  staged_[b] = std::max<std::size_t>(staged_[b], 1);
  return pos;
}

std::size_t KVCache::append_many(std::size_t layer, std::size_t b, std::span<const float> k,
                                 std::span<const float> v, std::size_t count) {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_, "KVCache::append_many out of range");
  ORINSIM_CHECK(count > 0 && k.size() == count * kv_dim_ && v.size() == k.size(),
                "KVCache::append_many dim mismatch");
  const std::size_t first = lengths_[b];
  ORINSIM_CHECK(first + count <= max_seq_, "KVCache overflow: sequence exceeds max_seq");
  ensure_writable(b, first, count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t r = row(b, first + i);
    if (storage_ == KVStorage::kF32) {
      std::copy_n(k.begin() + i * kv_dim_, kv_dim_, keys_[layer].begin() + r * kv_dim_);
      std::copy_n(v.begin() + i * kv_dim_, kv_dim_, values_[layer].begin() + r * kv_dim_);
    } else {
      store_quantized(key_codes_[layer], key_scales_[layer], r,
                      k.subspan(i * kv_dim_, kv_dim_));
      store_quantized(value_codes_[layer], value_scales_[layer], r,
                      v.subspan(i * kv_dim_, kv_dim_));
    }
  }
  staged_[b] = std::max(staged_[b], count);
  return first;
}

void KVCache::commit(std::size_t b, std::size_t count) {
  ORINSIM_CHECK(b < batch_, "KVCache::commit out of range");
  ORINSIM_CHECK(count > 0 && lengths_[b] + count <= max_seq_, "KVCache::commit overflow");
  lengths_[b] += count;
  staged_[b] = 0;
}

bool KVCache::try_reserve(std::size_t b, std::size_t count) {
  ORINSIM_CHECK(b < batch_, "KVCache::try_reserve out of range");
  ORINSIM_CHECK(count > 0, "KVCache::try_reserve needs a positive count");
  const std::size_t need_len = lengths_[b] + count;
  if (need_len > max_seq_) return false;
  if (layout_ == KVLayout::kDense) return true;
  std::vector<std::size_t>& table = tables_[b];
  const std::size_t needed = blocks_for(need_len, block_tokens_);
  if (needed <= table.size()) return true;
  std::vector<std::size_t> fresh;
  fresh.reserve(needed - table.size());
  if (!allocator_->alloc_many(needed - table.size(), fresh)) return false;
  table.insert(table.end(), fresh.begin(), fresh.end());
  return true;
}

void KVCache::fork_sequence(std::size_t src, std::size_t dst) {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged, "KVCache::fork_sequence requires paged layout");
  ORINSIM_CHECK(src < batch_ && dst < batch_ && src != dst,
                "KVCache::fork_sequence out of range");
  ORINSIM_CHECK(staged_[src] == 0, "KVCache::fork_sequence with uncommitted appends");
  ORINSIM_CHECK(lengths_[dst] == 0 && staged_[dst] == 0 && tables_[dst].empty(),
                "KVCache::fork_sequence target must be empty");
  for (std::size_t id : tables_[src]) allocator_->retain(id);
  tables_[dst] = tables_[src];
  lengths_[dst] = lengths_[src];
}

bool KVCache::try_unshare_tail(std::size_t b) {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged,
                "KVCache::try_unshare_tail requires paged layout");
  ORINSIM_CHECK(b < batch_, "KVCache::try_unshare_tail out of range");
  const std::size_t len = lengths_[b];
  if (len == 0 || len % block_tokens_ == 0) return true;  // no partial tail
  const std::size_t idx = len / block_tokens_;
  if (allocator_->ref_count(tables_[b][idx]) <= 1) return true;  // private
  if (allocator_->free_blocks() == 0) return false;
  make_writable(b, idx);
  return true;
}

std::span<const std::size_t> KVCache::block_table(std::size_t b) const {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged, "KVCache::block_table requires paged layout");
  ORINSIM_CHECK(b < batch_, "KVCache::block_table out of range");
  return std::span<const std::size_t>(tables_[b]);
}

void KVCache::attach_prefix(std::size_t b, std::span<const std::size_t> blocks,
                            std::size_t tokens) {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged, "KVCache::attach_prefix requires paged layout");
  ORINSIM_CHECK(b < batch_, "KVCache::attach_prefix out of range");
  ORINSIM_CHECK(lengths_[b] == 0 && staged_[b] == 0 && tables_[b].empty(),
                "KVCache::attach_prefix target must be empty");
  ORINSIM_CHECK(tokens == blocks.size() * block_tokens_,
                "KVCache::attach_prefix requires an exactly full block chain");
  ORINSIM_CHECK(tokens <= max_seq_, "KVCache::attach_prefix exceeds max_seq");
  for (std::size_t id : blocks) {
    ORINSIM_CHECK(allocator_->ref_count(id) > 0,
                  "KVCache::attach_prefix adopts a reference on a live block");
  }
  tables_[b].assign(blocks.begin(), blocks.end());
  lengths_[b] = tokens;
}

void KVCache::retain_block(std::size_t id) {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged, "KVCache::retain_block requires paged layout");
  allocator_->retain(id);
}

void KVCache::release_block(std::size_t id) {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged, "KVCache::release_block requires paged layout");
  allocator_->release(id);
}

std::size_t KVCache::block_ref_count(std::size_t id) const {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged,
                "KVCache::block_ref_count requires paged layout");
  return allocator_->ref_count(id);
}

void KVCache::mark_block_cached(std::size_t id, bool cached) {
  ORINSIM_CHECK(layout_ == KVLayout::kPaged,
                "KVCache::mark_block_cached requires paged layout");
  allocator_->set_cached(id, cached);
}

std::size_t KVCache::cached_blocks() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->cached_blocks();
  return 0;
}

std::span<const float> KVCache::key(std::size_t layer, std::size_t b, std::size_t pos,
                                    std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && pos <= staged_end(b) && pos < max_seq_,
                "KVCache::key out of range");
  const std::size_t r = row(b, pos);
  if (storage_ == KVStorage::kF32) {
    return std::span<const float>(keys_[layer].data() + r * kv_dim_, kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= kv_dim_, "KVCache::key needs kv_dim scratch floats");
  const std::int8_t* codes = key_codes_[layer].data() + r * kv_dim_;
  const float scale = key_scales_[layer][r];
  for (std::size_t i = 0; i < kv_dim_; ++i) {
    scratch[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(kv_dim_);
}

std::span<const float> KVCache::value(std::size_t layer, std::size_t b, std::size_t pos,
                                      std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && pos <= staged_end(b) && pos < max_seq_,
                "KVCache::value out of range");
  const std::size_t r = row(b, pos);
  if (storage_ == KVStorage::kF32) {
    return std::span<const float>(values_[layer].data() + r * kv_dim_, kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= kv_dim_, "KVCache::value needs kv_dim scratch floats");
  const std::int8_t* codes = value_codes_[layer].data() + r * kv_dim_;
  const float scale = value_scales_[layer][r];
  for (std::size_t i = 0; i < kv_dim_; ++i) {
    scratch[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(kv_dim_);
}

namespace {

// True when a paged sequence's first ceil(count / block_tokens) blocks are
// physically consecutive, so rows [0, count) form one contiguous slab run.
bool contiguous_prefix(const std::vector<std::size_t>& table, std::size_t n_blocks) {
  for (std::size_t j = 1; j < n_blocks; ++j) {
    if (table[j] != table[0] + j) return false;
  }
  return true;
}

}  // namespace

std::span<const float> KVCache::key_rows(std::size_t layer, std::size_t b, std::size_t count,
                                         std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && count > 0 && count - 1 <= staged_end(b) &&
                    count <= max_seq_,
                "KVCache::key_rows out of range");
  if (storage_ == KVStorage::kF32 && layout_ == KVLayout::kDense) {
    return std::span<const float>(keys_[layer].data() + row(b, 0) * kv_dim_, count * kv_dim_);
  }
  if (storage_ == KVStorage::kF32) {
    const std::vector<std::size_t>& table = tables_[b];
    const std::size_t n_blocks = blocks_for(count, block_tokens_);
    ORINSIM_CHECK(n_blocks <= table.size(), "KVCache::key_rows reads unmapped positions");
    if (contiguous_prefix(table, n_blocks)) {
      return std::span<const float>(
          keys_[layer].data() + table[0] * block_tokens_ * kv_dim_, count * kv_dim_);
    }
    ORINSIM_CHECK(scratch.size() >= count * kv_dim_,
                  "KVCache::key_rows needs count*kv_dim scratch floats");
    for (std::size_t j = 0; j < n_blocks; ++j) {
      const std::size_t rows_here = std::min(block_tokens_, count - j * block_tokens_);
      std::copy_n(keys_[layer].begin() + table[j] * block_tokens_ * kv_dim_,
                  rows_here * kv_dim_, scratch.begin() + j * block_tokens_ * kv_dim_);
    }
    return scratch.first(count * kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= count * kv_dim_,
                "KVCache::key_rows needs count*kv_dim scratch floats");
  for (std::size_t p = 0; p < count; ++p) {
    const std::size_t r = row(b, p);
    const std::int8_t* codes = key_codes_[layer].data() + r * kv_dim_;
    const float scale = key_scales_[layer][r];
    float* out = scratch.data() + p * kv_dim_;
    for (std::size_t i = 0; i < kv_dim_; ++i) out[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(count * kv_dim_);
}

std::span<const float> KVCache::value_rows(std::size_t layer, std::size_t b, std::size_t count,
                                           std::span<float> scratch) const {
  ORINSIM_CHECK(layer < n_layers_ && b < batch_ && count > 0 && count - 1 <= staged_end(b) &&
                    count <= max_seq_,
                "KVCache::value_rows out of range");
  if (storage_ == KVStorage::kF32 && layout_ == KVLayout::kDense) {
    return std::span<const float>(values_[layer].data() + row(b, 0) * kv_dim_,
                                  count * kv_dim_);
  }
  if (storage_ == KVStorage::kF32) {
    const std::vector<std::size_t>& table = tables_[b];
    const std::size_t n_blocks = blocks_for(count, block_tokens_);
    ORINSIM_CHECK(n_blocks <= table.size(), "KVCache::value_rows reads unmapped positions");
    if (contiguous_prefix(table, n_blocks)) {
      return std::span<const float>(
          values_[layer].data() + table[0] * block_tokens_ * kv_dim_, count * kv_dim_);
    }
    ORINSIM_CHECK(scratch.size() >= count * kv_dim_,
                  "KVCache::value_rows needs count*kv_dim scratch floats");
    for (std::size_t j = 0; j < n_blocks; ++j) {
      const std::size_t rows_here = std::min(block_tokens_, count - j * block_tokens_);
      std::copy_n(values_[layer].begin() + table[j] * block_tokens_ * kv_dim_,
                  rows_here * kv_dim_, scratch.begin() + j * block_tokens_ * kv_dim_);
    }
    return scratch.first(count * kv_dim_);
  }
  ORINSIM_CHECK(scratch.size() >= count * kv_dim_,
                "KVCache::value_rows needs count*kv_dim scratch floats");
  for (std::size_t p = 0; p < count; ++p) {
    const std::size_t r = row(b, p);
    const std::int8_t* codes = value_codes_[layer].data() + r * kv_dim_;
    const float scale = value_scales_[layer][r];
    float* out = scratch.data() + p * kv_dim_;
    for (std::size_t i = 0; i < kv_dim_; ++i) out[i] = static_cast<float>(codes[i]) * scale;
  }
  return scratch.first(count * kv_dim_);
}

void KVCache::truncate(std::size_t b, std::size_t new_len) {
  ORINSIM_CHECK(b < batch_, "KVCache::truncate out of range");
  ORINSIM_CHECK(new_len <= lengths_[b], "KVCache::truncate cannot extend");
  if (layout_ == KVLayout::kPaged) {
    std::vector<std::size_t>& table = tables_[b];
    const std::size_t keep = blocks_for(new_len, block_tokens_);
    while (table.size() > keep) {
      allocator_->release(table.back());
      table.pop_back();
    }
  }
  lengths_[b] = new_len;
  staged_[b] = 0;
}

void KVCache::reset() {
  if (layout_ == KVLayout::kPaged) {
    for (std::size_t b = 0; b < batch_; ++b) {
      for (std::size_t id : tables_[b]) allocator_->release(id);
      tables_[b].clear();
    }
  }
  std::fill(lengths_.begin(), lengths_.end(), 0);
  std::fill(staged_.begin(), staged_.end(), 0);
}

std::size_t KVCache::block_bytes() const noexcept {
  return block_tokens_ * bytes_per_row();
}

std::size_t KVCache::total_blocks() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->total_blocks();
  return batch_ * blocks_for(max_seq_, block_tokens_);
}

std::size_t KVCache::blocks_in_use() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->blocks_in_use();
  return total_blocks();  // dense reserves everything up front
}

std::size_t KVCache::free_blocks() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->free_blocks();
  return 0;
}

std::size_t KVCache::bytes() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->bytes_in_use();
  return batch_ * max_seq_ * bytes_per_row();
}

std::size_t KVCache::peak_bytes() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->peak_bytes();
  return bytes();
}

std::size_t KVCache::reserved_bytes() const noexcept {
  if (layout_ == KVLayout::kPaged) return allocator_->total_blocks() * block_bytes();
  return batch_ * max_seq_ * bytes_per_row();
}

std::size_t KVCache::used_bytes() const noexcept {
  std::size_t tokens = 0;
  for (std::size_t len : lengths_) tokens += len;
  return tokens * bytes_per_row();
}

}  // namespace orinsim
