#include "model/block_allocator.h"

#include "core/error.h"

namespace orinsim {

BlockAllocator::BlockAllocator(std::size_t total_blocks, std::size_t block_bytes)
    : block_bytes_(block_bytes) {
  ORINSIM_CHECK(total_blocks > 0 && block_bytes > 0,
                "BlockAllocator requires positive pool size and block bytes");
  refs_.assign(total_blocks, 0);
  cached_.assign(total_blocks, 0);
  free_list_.reserve(total_blocks);
  // Descending ids so pop_back hands out block 0 first: the common serial
  // decode fills blocks 0,1,2,... and key_rows stays a zero-copy span.
  for (std::size_t i = total_blocks; i > 0; --i) free_list_.push_back(i - 1);
}

std::size_t BlockAllocator::free_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_list_.size();
}

std::size_t BlockAllocator::blocks_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

std::size_t BlockAllocator::peak_blocks_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_in_use_;
}

std::size_t BlockAllocator::bytes_in_use() const { return blocks_in_use() * block_bytes_; }

std::size_t BlockAllocator::peak_bytes() const { return peak_blocks_in_use() * block_bytes_; }

std::size_t BlockAllocator::alloc() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_.empty()) return kNoBlock;
  const std::size_t id = free_list_.back();
  free_list_.pop_back();
  refs_[id] = 1;
  ++in_use_;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  return id;
}

bool BlockAllocator::alloc_many(std::size_t count, std::vector<std::size_t>& out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_list_.size() < count) return false;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t id = free_list_.back();
    free_list_.pop_back();
    refs_[id] = 1;
    out.push_back(id);
  }
  in_use_ += count;
  peak_in_use_ = std::max(peak_in_use_, in_use_);
  return true;
}

void BlockAllocator::retain(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  ORINSIM_CHECK(id < refs_.size() && refs_[id] > 0, "BlockAllocator::retain on free block");
  ++refs_[id];
}

void BlockAllocator::release(std::size_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  // A double release would decrement a zero refcount and corrupt the free
  // list; the prefix cache's adopt/insert ref protocol makes this the most
  // likely misuse, so the guard is always on.
  ORINSIM_CHECK(id < refs_.size() && refs_[id] > 0, "BlockAllocator::release on free block");
  // Checked before the decrement so a violation leaves the pool untouched.
  ORINSIM_CHECK(refs_[id] > 1 || !cached_[id],
                "BlockAllocator::release would free a block still flagged cached");
  if (--refs_[id] == 0) {
    free_list_.push_back(id);
    --in_use_;
  }
}

std::size_t BlockAllocator::cached_blocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cached_count_;
}

void BlockAllocator::set_cached(std::size_t id, bool cached) {
  std::lock_guard<std::mutex> lock(mu_);
  ORINSIM_CHECK(id < refs_.size() && refs_[id] > 0,
                "BlockAllocator::set_cached on free block");
  if (cached_[id] == static_cast<std::uint8_t>(cached)) return;
  cached_[id] = static_cast<std::uint8_t>(cached);
  cached ? ++cached_count_ : --cached_count_;
}

bool BlockAllocator::is_cached(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ORINSIM_CHECK(id < refs_.size(), "BlockAllocator::is_cached out of range");
  return cached_[id] != 0;
}

std::size_t BlockAllocator::ref_count(std::size_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  ORINSIM_CHECK(id < refs_.size(), "BlockAllocator::ref_count out of range");
  return refs_[id];
}

}  // namespace orinsim
