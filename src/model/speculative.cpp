#include "model/speculative.h"

#include <algorithm>

#include "core/error.h"
#include "tensor/kernels.h"

namespace orinsim {

namespace {

// Feed one token, return the greedy next token.
TokenId greedy_step(Model& model, KVCache& cache, TokenId token, std::vector<float>& hidden,
                    std::vector<float>& logits) {
  model.forward_token(token, 0, cache, hidden);
  model.logits_from_hidden(hidden, logits);
  return static_cast<TokenId>(kernels::argmax(logits));
}

}  // namespace

Model::GenerateResult speculative_generate(Model& target, Model& draft,
                                           const std::vector<TokenId>& prompt,
                                           std::size_t max_new_tokens,
                                           const SpeculativeConfig& config,
                                           SpeculativeStats* stats) {
  ORINSIM_CHECK(!prompt.empty(), "speculative: empty prompt");
  ORINSIM_CHECK(config.draft_tokens >= 1, "speculative: need at least one draft token");
  ORINSIM_CHECK(target.config().vocab == draft.config().vocab,
                "speculative: target and draft must share a vocabulary");
  const std::size_t need = prompt.size() + max_new_tokens + config.draft_tokens + 2;
  ORINSIM_CHECK(target.config().max_seq >= need && draft.config().max_seq >= need,
                "speculative: sequence would exceed a model's max_seq");

  KVCache target_cache(target.config(), 1, need);
  KVCache draft_cache(draft.config(), 1, need);
  std::vector<float> t_hidden(target.config().d_model), t_logits(target.config().vocab);
  std::vector<float> d_hidden(draft.config().d_model), d_logits(draft.config().vocab);

  SpeculativeStats local_stats;
  Model::GenerateResult result;
  result.outputs.resize(1);
  result.input_tokens = prompt.size();

  // context = prompt + emitted tokens; both caches always hold exactly it.
  std::vector<TokenId> context = prompt;

  // Prefill both models; the target's logits give the first pending token.
  TokenId pending = 0;
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    const TokenId t = prompt[i];
    pending = greedy_step(target, target_cache, t, t_hidden, t_logits);
    ++local_stats.target_forwards;
    draft.forward_token(t, 0, draft_cache, d_hidden);
  }

  auto emit = [&](TokenId t) {
    result.outputs[0].push_back(t);
    ++result.output_tokens;
    ++local_stats.emitted;
  };

  while (result.output_tokens < max_new_tokens) {
    emit(pending);
    if (result.output_tokens >= max_new_tokens) break;
    ++local_stats.rounds;

    const std::size_t k =
        std::min(config.draft_tokens, max_new_tokens - result.output_tokens);

    // Sync the draft cache with the canonical context (it may be one token
    // short after a fully-accepted round, or hold rejected tokens).
    draft_cache.truncate(0, std::min(draft_cache.seq_len(0), context.size()));
    for (std::size_t i = draft_cache.seq_len(0); i < context.size(); ++i) {
      draft.forward_token(context[i], 0, draft_cache, d_hidden);
    }

    // Draft proposes k tokens continuing from `pending`.
    std::vector<TokenId> proposals;
    proposals.reserve(k);
    TokenId draft_feed = pending;
    for (std::size_t i = 0; i < k; ++i) {
      draft_feed = greedy_step(draft, draft_cache, draft_feed, d_hidden, d_logits);
      proposals.push_back(draft_feed);
    }
    // Target verifies: feed pending, compare its next choice to proposal i.
    // `proposed` counts only drafts the target actually compared — a round a
    // rejection cuts short leaves proposals[i+1..k-1] unverified, and counting
    // them (as the old `proposed += k` here did) would book them as rejected
    // and deflate acceptance_rate().
    context.push_back(pending);
    TokenId verify_feed = pending;
    std::size_t accepted = 0;
    bool rejected = false;
    for (std::size_t i = 0; i < k; ++i) {
      const TokenId c = greedy_step(target, target_cache, verify_feed, t_hidden, t_logits);
      ++local_stats.target_forwards;
      ++local_stats.proposed;
      if (c == proposals[i]) {
        ++accepted;
        emit(proposals[i]);
        context.push_back(proposals[i]);
        verify_feed = proposals[i];
        if (result.output_tokens >= max_new_tokens) break;
      } else {
        pending = c;  // the target's corrective token
        rejected = true;
        break;
      }
    }
    local_stats.accepted += accepted;
    if (result.output_tokens >= max_new_tokens) break;
    if (!rejected) {
      // Every proposal accepted. The verification loop fed `pending` and
      // proposals[0..k-2]; feeding the final accepted proposal both restores
      // the cache == context invariant and yields the bonus token.
      pending = greedy_step(target, target_cache, verify_feed, t_hidden, t_logits);
      ++local_stats.target_forwards;
    }
    // Invariant: the target cache holds exactly `context` here (rejection
    // feeds pending + the accepted prefix; full acceptance catches up via
    // the bonus step).
    ORINSIM_DCHECK(target_cache.seq_len(0) == context.size(),
                   "speculative: target cache out of sync");
  }

  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace orinsim
