// Per-forward-pass scratch for the functional transformer engine.
//
// A Model shares immutable quantized weights; everything a forward pass
// mutates lives here. One workspace per concurrently-executing lane/worker
// makes forward_token re-entrant: the batched decode loop runs lanes in
// parallel on a ThreadPool with one workspace per shard, while serial
// callers use the Model's built-in default workspace.
#pragma once

#include <vector>

#include "model/config.h"
#include "quant/quantize.h"

namespace orinsim {

struct InferenceWorkspace {
  explicit InferenceWorkspace(const TransformerConfig& c)
      : x(c.d_model),
        normed(c.d_model),
        q(c.d_model),
        k(c.kv_dim()),
        v(c.kv_dim()),
        attn(c.d_model),
        attn_proj(c.d_model),
        gate(c.d_ff),
        up(c.d_ff),
        ff(c.d_ff),
        mlp_out(c.d_model),
        scores(c.max_seq),
        kv_key(c.kv_dim()),
        kv_value(c.kv_dim()),
        hidden(c.d_model) {}

  // One-token block scratch (residual stream, projections, MLP, attention
  // scores), sized once so the hot loop never allocates.
  std::vector<float> x, normed, q, k, v, attn, attn_proj, gate, up, ff, mlp_out, scores;
  // Caller-side scratch for quantized KVCache::key()/value() reads: each
  // reader dequantizes into its own buffer (no shared cache-side state).
  std::vector<float> kv_key, kv_value;
  // Final hidden state of the lane currently being advanced.
  std::vector<float> hidden;
  // Reused INT8 activation codes for the fused QKV projection.
  quant::ActivationInt8 act8;
};

}  // namespace orinsim
