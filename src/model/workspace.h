// Per-forward-pass scratch for the functional transformer engine.
//
// A Model shares immutable quantized weights; everything a forward pass
// mutates lives here. One workspace per concurrently-executing lane/worker
// makes forward_token re-entrant: the batched decode loop runs lanes in
// parallel on a ThreadPool with one workspace per shard, while serial
// callers use the Model's built-in default workspace.
#pragma once

#include <vector>

#include "model/config.h"
#include "quant/quantize.h"

namespace orinsim {

struct InferenceWorkspace {
  explicit InferenceWorkspace(const TransformerConfig& c)
      : x(c.d_model),
        normed(c.d_model),
        q(c.d_model),
        k(c.kv_dim()),
        v(c.kv_dim()),
        attn(c.d_model),
        attn_proj(c.d_model),
        gate(c.d_ff),
        up(c.d_ff),
        ff(c.d_ff),
        mlp_out(c.d_model),
        scores(c.max_seq),
        kv_key(c.kv_dim()),
        kv_value(c.kv_dim()),
        kv_rows_k(c.max_seq * c.kv_dim()),
        kv_rows_v(c.max_seq * c.kv_dim()),
        hidden(c.d_model) {}

  // Grow the chunked-prefill buffers to hold `chunk` tokens (no-op once
  // sized; vectors never shrink, so alternating chunk sizes stay
  // allocation-free after the first pass).
  void ensure_chunk(const TransformerConfig& c, std::size_t chunk) {
    if (chunk <= chunk_capacity) return;
    cx.resize(chunk * c.d_model);
    cnormed.resize(chunk * c.d_model);
    cq.resize(chunk * c.d_model);
    ck.resize(chunk * c.kv_dim());
    cv.resize(chunk * c.kv_dim());
    cattn.resize(chunk * c.d_model);
    cattn_proj.resize(chunk * c.d_model);
    cgate.resize(chunk * c.d_ff);
    cup.resize(chunk * c.d_ff);
    cff.resize(chunk * c.d_ff);
    cmlp_out.resize(chunk * c.d_model);
    cscores.resize(chunk * c.max_seq);
    chunk_capacity = chunk;
  }

  // One-token block scratch (residual stream, projections, MLP, attention
  // scores), sized once so the hot loop never allocates.
  std::vector<float> x, normed, q, k, v, attn, attn_proj, gate, up, ff, mlp_out, scores;
  // Caller-side scratch for quantized KVCache::key()/value() reads: each
  // reader dequantizes into its own buffer (no shared cache-side state).
  std::vector<float> kv_key, kv_value;
  // Whole-prefix dequantization scratch for KVCache::key_rows()/value_rows():
  // attention dequantizes the full K/V prefix once per layer instead of once
  // per (head, position).
  std::vector<float> kv_rows_k, kv_rows_v;
  // Final hidden state of the lane currently being advanced.
  std::vector<float> hidden;
  // Reused INT8 activation codes for the fused QKV projection.
  quant::ActivationInt8 act8;

  // Chunked-prefill scratch: row-major [chunk, features] views of the same
  // quantities as the one-token buffers above, sized by ensure_chunk().
  // forward_tokens (lane-batched decode) reuses these with one row per
  // decode lane — a decode batch of n lanes has exactly the shape of an
  // n-token prefill chunk, so no separate buffers are needed.
  std::vector<float> cx, cnormed, cq, ck, cv, cattn, cattn_proj, cgate, cup, cff, cmlp_out;
  // Per-head causal score rows for one chunk: [chunk, max_seq].
  std::vector<float> cscores;
  // Reused INT8 activation codes for the fused chunk QKV projection.
  quant::ActivationBatchInt8 act8_chunk;
  std::size_t chunk_capacity = 0;
};

}  // namespace orinsim
