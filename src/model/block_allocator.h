// Ref-counted fixed-size block pool backing the paged KV cache.
//
// The allocator hands out integer block ids from a fixed pool; it owns no
// storage itself (KVCache maps ids onto its per-layer slabs). Ref counts
// support copy-on-write sharing of prompt prefixes across forked sequences
// (vLLM-style paged attention): fork retains every block of the source
// table, and the first write to a shared block copies it. The free list is
// LIFO and deterministic, so identical call sequences yield identical block
// tables on every run.
//
// Thread-safe: Model::generate shards lanes across a thread pool and every
// lane appends into its own sequence concurrently, so all mutating and
// counting calls take a mutex. The lock is uncontended on the serial paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace orinsim {

class BlockAllocator {
 public:
  static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

  // `block_bytes` is the physical footprint of one block as mapped by the
  // owner; the allocator only does the bookkeeping for bytes_in_use().
  BlockAllocator(std::size_t total_blocks, std::size_t block_bytes);

  std::size_t total_blocks() const noexcept { return refs_.size(); }
  std::size_t block_bytes() const noexcept { return block_bytes_; }
  std::size_t free_blocks() const;
  std::size_t blocks_in_use() const;
  std::size_t peak_blocks_in_use() const;
  std::size_t bytes_in_use() const;
  std::size_t peak_bytes() const;

  // Blocks currently flagged as held by a prefix cache (set_cached). Audits
  // prefix-cache eviction accounting: cached + free + exclusively-held must
  // tile the pool, and a cached block whose only reference is the cache's is
  // reclaimable without preempting any request.
  std::size_t cached_blocks() const;
  // Flags an allocated block as (un)owned by a prefix cache. The cache must
  // clear the flag before dropping its reference: a block returning to the
  // free list while still flagged is a leak of the cache's accounting and
  // trips a check in release().
  void set_cached(std::size_t id, bool cached);
  bool is_cached(std::size_t id) const;

  // One block with ref count 1, or kNoBlock when the pool is exhausted.
  std::size_t alloc();
  // `count` blocks atomically appended to `out`; false (and no allocation)
  // when fewer than `count` are free. All-or-nothing so a failed reservation
  // never strands partial progress.
  bool alloc_many(std::size_t count, std::vector<std::size_t>& out);
  // Share an allocated block (+1 ref). Used by sequence forking.
  void retain(std::size_t id);
  // Drop one reference; the block returns to the free list at zero.
  void release(std::size_t id);
  std::size_t ref_count(std::size_t id) const;
  bool can_alloc(std::size_t count) const { return free_blocks() >= count; }

 private:
  mutable std::mutex mu_;
  std::vector<std::uint32_t> refs_;      // 0 = free
  std::vector<std::uint8_t> cached_;     // 1 = a prefix cache holds a ref
  std::size_t cached_count_ = 0;
  std::vector<std::size_t> free_list_;   // LIFO; back() is the next handout
  std::size_t in_use_ = 0;
  std::size_t peak_in_use_ = 0;
  std::size_t block_bytes_ = 0;
};

}  // namespace orinsim
