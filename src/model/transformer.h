// The functional transformer engine.
//
// MasterWeights hold FP32 source weights (deterministically initialized from
// a seed, with the readout optionally trained by train::ReadoutTrainer).
// A Model is a *view of the master at a storage precision*: block weights are
// quantized through quant::WeightMatrix, while the embedding and lm_head stay
// FP32 (BitsAndBytes likewise leaves embeddings unquantized by default).
// Building FP16/INT8/INT4 models from one master is the engine's analogue of
// loading the same HuggingFace checkpoint at different quantization levels.
//
// Threading model: a Model's weights are immutable after construction and
// shared-read; all mutable forward-pass state lives in an InferenceWorkspace.
// The workspace-taking overloads are re-entrant — concurrent callers need one
// workspace each (and distinct KVCache sequences). The convenience overloads
// without a workspace use a single Model-owned default workspace and are NOT
// thread-safe. See DESIGN.md "Threading model".
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "core/thread_pool.h"
#include "model/config.h"
#include "model/kv_cache.h"
#include "model/sampler.h"
#include "model/workspace.h"
#include "quant/weight_matrix.h"
#include "tensor/kernels.h"
#include "tokenizer/tokenizer.h"
#include "trace/timeline.h"

namespace orinsim {

struct LayerMaster {
  std::vector<float> wq, wk, wv, wo;
  // SwiGLU style: gate/up/down. Parallel-GELU style: fc1 (in gate), fc2 (in
  // down); up unused.
  std::vector<float> w_gate, w_up, w_down;
  std::vector<float> norm_gain;   // pre-attention norm (the only norm for Phi)
  std::vector<float> norm_bias;   // used by LayerNorm style
  std::vector<float> norm2_gain;  // pre-MLP norm (SwiGLU style only)
};

struct MasterWeights {
  TransformerConfig config;
  std::vector<float> embedding;  // [vocab, d_model]
  std::vector<float> lm_head;    // [vocab, d_model] -- trainable readout
  std::vector<float> final_norm_gain;
  std::vector<float> final_norm_bias;
  std::vector<LayerMaster> layers;

  // Deterministic Gaussian init. Residual-path projections (wo, w_down) are
  // scaled by 1/sqrt(2*n_layers) (GPT-2 convention) so random bodies stay
  // numerically stable at depth.
  static std::shared_ptr<MasterWeights> init_random(const TransformerConfig& config,
                                                    std::uint64_t seed);
};

class Model {
 public:
  // kv_storage chooses the precision of caches the model creates internally
  // (generate, sequence_nll); externally-constructed caches are the caller's
  // choice.
  Model(std::shared_ptr<const MasterWeights> master, DType dtype,
        KVStorage kv_storage = KVStorage::kF32);

  KVStorage kv_storage() const noexcept { return kv_storage_; }

  // Layout of internally-created caches (generate, sequence_nll). Paged by
  // default; the bit-identity tests flip this to compare against dense.
  KVLayout kv_layout() const noexcept { return kv_layout_; }
  void set_kv_layout(KVLayout layout) noexcept { kv_layout_ = layout; }

  // Options matching this model's internal-cache choices, for callers that
  // construct their own KVCache (serving engine, speculative decoding).
  KVCacheOptions kv_options() const noexcept {
    KVCacheOptions o;
    o.storage = kv_storage_;
    o.layout = kv_layout_;
    return o;
  }

  const TransformerConfig& config() const noexcept { return master_->config; }
  DType dtype() const noexcept { return dtype_; }

  // Bytes held by block weights + embedding + lm_head at this precision.
  std::size_t weight_bytes() const noexcept;
  // Total INT8 outlier columns across all matrices (0 for other precisions).
  std::size_t outlier_columns() const noexcept;

  // Process one token for sequence b: extends the cache by one position and
  // writes the final hidden state (post final-norm) to hidden_out [d_model].
  // The workspace-taking overload is re-entrant: concurrent callers must use
  // distinct workspaces and distinct cache sequences b.
  void forward_token(TokenId token, std::size_t b, KVCache& cache,
                     std::span<float> hidden_out, InferenceWorkspace& ws);
  void forward_token(TokenId token, std::size_t b, KVCache& cache,
                     std::span<float> hidden_out) {
    forward_token(token, b, cache, hidden_out, default_ws_);
  }

  // logits [vocab] from a final hidden state. Re-entrant (reads weights only).
  void logits_from_hidden(std::span<const float> hidden, std::span<float> logits) const;

  // Lane-batched decode step: advances tokens.size() independent sequences by
  // one token each. tokens[t] is fed to cache sequence seqs[t]; the final
  // hidden states land in hidden_rows [lanes, d_model]. All weight-streaming
  // ops (QKV, attention output, MLP, norms) run as lane-batched multi-column
  // matvecs — each weight row is read once for the whole batch instead of
  // once per lane, which is the decode-batching win on a memory-bound step.
  //
  // Contract: lane t's result (hidden state AND cache contents) is
  // bit-identical to forward_token(tokens[t], seqs[t], ...) at the active
  // kernel level for kF32/kI8/kI4 weights, and independent of which other
  // lanes share the batch for every dtype (the matvec_multi contract). kF16
  // matches bit-exactly at kScalar and within FMA tolerance at kNative.
  // Sequences in seqs must be distinct; re-entrant under the same rules as
  // forward_token (distinct workspaces, disjoint sequence sets).
  void forward_tokens(std::span<const TokenId> tokens, std::span<const std::size_t> seqs,
                      KVCache& cache, std::span<float> hidden_rows, InferenceWorkspace& ws);

  // Batched counterpart of logits_from_hidden: hidden_rows is
  // [lanes, d_model], logits_rows is [lanes, vocab]. Lane t's row is
  // bit-identical to logits_from_hidden(hidden_rows[t]) at both kernel
  // levels. Re-entrant (reads weights only).
  void logits_from_hidden_rows(std::span<const float> hidden_rows,
                               std::span<float> logits_rows, std::size_t lanes) const;

  // Process `tokens` consecutive prompt tokens for sequence b as one batched
  // pass: every layer op runs over the whole [tokens, features] chunk (GEMM
  // projections, multi-row norms/activations, causal-masked batched
  // attention, one append_many + commit per layer chunk). Under
  // ORINSIM_KERNELS=scalar the result is bit-identical to feeding the tokens
  // through forward_token one at a time.
  //
  // hidden_rows receives the final-norm hidden states: pass an empty span to
  // discard, a [d_model] span for the last position only, or a
  // [tokens, d_model] span for every position (perplexity scoring).
  void forward_chunk(std::span<const TokenId> tokens, std::size_t b, KVCache& cache,
                     std::span<float> hidden_rows, InferenceWorkspace& ws);

  // Default number of prompt tokens per chunked-prefill pass.
  static constexpr std::size_t kDefaultPrefillChunk = 32;

  // Chunk size used by prefill()/generate()/sequence_nll(); 0 or 1 selects
  // the token-at-a-time path.
  std::size_t prefill_chunk() const noexcept { return prefill_chunk_; }
  void set_prefill_chunk(std::size_t chunk) noexcept { prefill_chunk_ = chunk; }

  // Feed a whole prompt for sequence b; hidden of the last position lands in
  // last_hidden (pass empty span to discard). Processes the prompt in
  // prefill_chunk()-token chunks (plus a remainder chunk).
  void prefill(std::span<const TokenId> prompt, std::size_t b, KVCache& cache,
               std::span<float> last_hidden, InferenceWorkspace& ws);
  void prefill(std::span<const TokenId> prompt, std::size_t b, KVCache& cache,
               std::span<float> last_hidden) {
    prefill(prompt, b, cache, last_hidden, default_ws_);
  }

  struct GenerateResult {
    std::vector<std::vector<TokenId>> outputs;  // generated tokens per sequence
    std::size_t input_tokens = 0;
    std::size_t output_tokens = 0;
  };

  struct GenerateOptions {
    Sampler* sampler = nullptr;               // nullptr: greedy argmax
    trace::ExecutionTimeline* timeline = nullptr;
    // Non-null: prefill and per-step decode run lanes in parallel on the
    // pool with one workspace per shard. Sampling stays serialized in lane
    // order after each parallel section, so outputs are bit-identical to a
    // serial run (pool == nullptr) for any worker count.
    ThreadPool* pool = nullptr;
    // Decode via forward_tokens (one lane-batched step over all active lanes,
    // sharded into contiguous lane groups when a pool is set) instead of the
    // per-lane forward_token loop. Outputs are bit-identical between the two
    // paths for kF32/kI8/kI4 models at either kernel level (and for kF16
    // under ORINSIM_KERNELS=scalar); kF16 at kNative stays within FMA
    // tolerance. Exists so benchmarks can measure looped-vs-batched decode.
    bool lane_batched_decode = true;
  };

  // Batched generation: each prompt is prefilled, then up to max_new_tokens
  // are decoded per sequence; the decode loop exits early once every lane
  // has hit the cache limit (no zero-active steps).
  // A non-null `timeline` receives real wall-clock StepEvents (one kPrefill
  // covering prompt ingestion, one kDecode per step) with power unset: this
  // host has no board sensor, so the simulator owns power.
  GenerateResult generate(const std::vector<std::vector<TokenId>>& prompts,
                          std::size_t max_new_tokens, const GenerateOptions& options);
  GenerateResult generate(const std::vector<std::vector<TokenId>>& prompts,
                          std::size_t max_new_tokens, Sampler* sampler = nullptr,
                          trace::ExecutionTimeline* timeline = nullptr) {
    GenerateOptions options;
    options.sampler = sampler;
    options.timeline = timeline;
    return generate(prompts, max_new_tokens, options);
  }

  // Sum of negative log-likelihoods of tokens[i] given tokens[0..i) for
  // i in [predict_from, tokens.size()), plus the count of predicted tokens.
  // This is the paper's perplexity building block (strided windows pass
  // predict_from = overlap so overlapped tokens provide context only).
  struct NllResult {
    double total_nll = 0.0;
    std::size_t predicted = 0;
  };
  NllResult sequence_nll(std::span<const TokenId> tokens, std::size_t predict_from);

 private:
  struct LayerQuant {
    quant::WeightMatrix wq, wk, wv, wo, w_gate, w_up, w_down;
  };

  void attention(std::size_t layer, std::size_t b, KVCache& cache,
                 std::span<const float> normed, std::span<float> out,
                 InferenceWorkspace& ws);
  void mlp_swiglu(std::size_t layer, std::span<const float> normed, std::span<float> out,
                  InferenceWorkspace& ws);
  void mlp_gelu(std::size_t layer, std::span<const float> normed, std::span<float> out,
                InferenceWorkspace& ws);

  // Lane-batched counterparts (one row per decode lane): projections are
  // multi-column matvecs sharing each weight stream across lanes; the
  // per-lane attention score/softmax/V loop is unchanged from attention().
  void attention_lanes(std::size_t layer, std::span<const std::size_t> seqs, KVCache& cache,
                       std::span<const float> normed, std::span<float> out, std::size_t n,
                       InferenceWorkspace& ws);
  void mlp_swiglu_lanes(std::size_t layer, std::span<const float> normed,
                        std::span<float> out, std::size_t n, InferenceWorkspace& ws);
  void mlp_gelu_lanes(std::size_t layer, std::span<const float> normed, std::span<float> out,
                      std::size_t n, InferenceWorkspace& ws);

  // Chunked counterparts: `normed` is [tokens, d_model] row-major.
  void attention_chunk(std::size_t layer, std::size_t b, KVCache& cache,
                       std::span<const float> normed, std::span<float> out,
                       std::size_t tokens, InferenceWorkspace& ws);
  void mlp_swiglu_chunk(std::size_t layer, std::span<const float> normed,
                        std::span<float> out, std::size_t tokens, InferenceWorkspace& ws);
  void mlp_gelu_chunk(std::size_t layer, std::span<const float> normed, std::span<float> out,
                      std::size_t tokens, InferenceWorkspace& ws);

  std::shared_ptr<const MasterWeights> master_;
  DType dtype_;
  KVStorage kv_storage_ = KVStorage::kF32;
  KVLayout kv_layout_ = KVLayout::kPaged;
  std::vector<LayerQuant> layers_;

  // Precomputed RoPE cos/sin for every (position, pair) of this config.
  kernels::RopeTable rope_;
  std::size_t prefill_chunk_ = kDefaultPrefillChunk;

  // Scratch for the convenience overloads (one serial caller at a time).
  InferenceWorkspace default_ws_;
};

}  // namespace orinsim
