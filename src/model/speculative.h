// Greedy speculative decoding: a small draft model proposes K tokens, the
// target model verifies them and keeps the longest agreeing prefix, then
// contributes one corrective token. Output is *identical* to the target's
// own greedy decoding (the defining property of speculative decoding); the
// win is that one target pass can retire up to K+1 tokens.
//
// On the Orin this matters because target decode steps are weight-bound
// (§3.2): verifying K+1 positions costs barely more than generating one
// token, so the expected speedup is
//
//     E[tokens/round] = (1 - a^(K+1)) / (1 - a)        (a = acceptance rate)
//     speedup ~ E[tokens] * t_target / (t_target' + K * t_draft)
//
// The functional implementation below measures `a` for real model pairs;
// sim::speculative provides the device-level speedup estimate.
#pragma once

#include <cstddef>

#include "model/transformer.h"

namespace orinsim {

struct SpeculativeConfig {
  std::size_t draft_tokens = 4;  // K: tokens proposed per round
};

// Draft/verify accounting. `proposed` counts only draft tokens the target
// actually verified: a rejection cuts the round short, so per round
// proposed == accepted + (1 if a proposal was rejected else 0). Drafts the
// round never compared (past a rejection, or past max_new_tokens) are not
// counted — otherwise they would be booked as rejected and deflate
// acceptance_rate() on short generations. Invariants pinned by test:
// accepted <= proposed <= accepted + rounds.
struct SpeculativeStats {
  std::size_t rounds = 0;
  std::size_t proposed = 0;   // draft tokens the target compared
  std::size_t accepted = 0;
  std::size_t target_forwards = 0;  // positions the target evaluated
  std::size_t emitted = 0;

  double acceptance_rate() const {
    return proposed > 0 ? static_cast<double>(accepted) / static_cast<double>(proposed)
                        : 0.0;
  }
  // Tokens emitted per verification round (the parallel-verify unit the
  // device-level speedup model consumes).
  double tokens_per_round() const {
    return rounds > 0 ? static_cast<double>(emitted) / static_cast<double>(rounds) : 0.0;
  }
};

// Single-sequence greedy generation with draft/verify. target and draft must
// share the tokenizer's vocabulary (their configs may differ otherwise).
// Returns exactly what target.generate({prompt}, max_new_tokens) would.
Model::GenerateResult speculative_generate(Model& target, Model& draft,
                                           const std::vector<TokenId>& prompt,
                                           std::size_t max_new_tokens,
                                           const SpeculativeConfig& config = {},
                                           SpeculativeStats* stats = nullptr);

}  // namespace orinsim
