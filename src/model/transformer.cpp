#include "model/transformer.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "core/stopwatch.h"
#include "tensor/kernels.h"

namespace orinsim {

namespace {
void init_gaussian(std::vector<float>& w, std::size_t n, Rng& rng, double stddev) {
  w.resize(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, stddev));
}

// Trained transformers develop heavy-tailed weight/activation distributions
// with emergent outlier features (Dettmers et al., LLM.int8()); these are
// what make INT8 quantization lossy in practice. Block weights therefore use
// a Gaussian mixture: a small fraction of entries are drawn at several times
// the base scale. Pure Gaussians would make INT8 artificially lossless and
// erase the Table 3 effect this engine reproduces.
void init_heavy_tailed(std::vector<float>& w, std::size_t n, Rng& rng, double stddev) {
  constexpr double kOutlierFraction = 0.04;
  constexpr double kOutlierScale = 5.0;
  w.resize(n);
  for (auto& v : w) {
    const double scale = rng.bernoulli(kOutlierFraction) ? kOutlierScale : 1.0;
    v = static_cast<float>(rng.normal(0.0, stddev * scale));
  }
}
}  // namespace

std::shared_ptr<MasterWeights> MasterWeights::init_random(const TransformerConfig& config,
                                                          std::uint64_t seed) {
  config.validate();
  auto mw = std::make_shared<MasterWeights>();
  mw->config = config;
  Rng rng(seed);

  const std::size_t d = config.d_model;
  const std::size_t kv = config.kv_dim();
  const std::size_t ff = config.d_ff;
  const double sigma_in = 1.0 / std::sqrt(static_cast<double>(d));
  const double sigma_ff = 1.0 / std::sqrt(static_cast<double>(ff));
  const double residual_scale = 1.0 / std::sqrt(2.0 * static_cast<double>(config.n_layers));

  init_gaussian(mw->embedding, config.vocab * d, rng, 0.5);
  init_gaussian(mw->lm_head, config.vocab * d, rng, 0.02);
  mw->final_norm_gain.assign(d, 1.0f);
  mw->final_norm_bias.assign(d, 0.0f);

  mw->layers.resize(config.n_layers);
  for (auto& layer : mw->layers) {
    init_heavy_tailed(layer.wq, d * d, rng, sigma_in);
    init_heavy_tailed(layer.wk, kv * d, rng, sigma_in);
    init_heavy_tailed(layer.wv, kv * d, rng, sigma_in);
    init_heavy_tailed(layer.wo, d * d, rng, sigma_in * residual_scale);
    if (config.style == BlockStyle::kPreNormSwiGLU) {
      init_heavy_tailed(layer.w_gate, ff * d, rng, sigma_in);
      init_heavy_tailed(layer.w_up, ff * d, rng, sigma_in);
      init_heavy_tailed(layer.w_down, d * ff, rng, sigma_ff * residual_scale);
      layer.norm2_gain.assign(d, 1.0f);
    } else {
      init_heavy_tailed(layer.w_gate, ff * d, rng, sigma_in);  // fc1
      init_heavy_tailed(layer.w_down, d * ff, rng, sigma_ff * residual_scale);  // fc2
      layer.norm_bias.assign(d, 0.0f);
    }
    layer.norm_gain.assign(d, 1.0f);
    if (layer.norm_bias.empty() && config.style == BlockStyle::kParallelGELU) {
      layer.norm_bias.assign(d, 0.0f);
    }
  }
  return mw;
}

namespace {
const MasterWeights& checked_master(const std::shared_ptr<const MasterWeights>& m) {
  ORINSIM_CHECK(m != nullptr, "Model requires master weights");
  return *m;
}
}  // namespace

Model::Model(std::shared_ptr<const MasterWeights> master, DType dtype,
             KVStorage kv_storage)
    : master_(std::move(master)),
      dtype_(dtype),
      kv_storage_(kv_storage),
      default_ws_(checked_master(master_).config) {
  const TransformerConfig& c = master_->config;
  const std::size_t d = c.d_model;
  const std::size_t kv = c.kv_dim();
  const std::size_t ff = c.d_ff;

  layers_.reserve(c.n_layers);
  for (const auto& lm : master_->layers) {
    LayerQuant lq;
    lq.wq = quant::WeightMatrix::create(lm.wq, d, d, dtype_);
    lq.wk = quant::WeightMatrix::create(lm.wk, kv, d, dtype_);
    lq.wv = quant::WeightMatrix::create(lm.wv, kv, d, dtype_);
    lq.wo = quant::WeightMatrix::create(lm.wo, d, d, dtype_);
    if (c.style == BlockStyle::kPreNormSwiGLU) {
      lq.w_gate = quant::WeightMatrix::create(lm.w_gate, ff, d, dtype_);
      lq.w_up = quant::WeightMatrix::create(lm.w_up, ff, d, dtype_);
      lq.w_down = quant::WeightMatrix::create(lm.w_down, d, ff, dtype_);
    } else {
      lq.w_gate = quant::WeightMatrix::create(lm.w_gate, ff, d, dtype_);
      lq.w_down = quant::WeightMatrix::create(lm.w_down, d, ff, dtype_);
    }
    layers_.push_back(std::move(lq));
  }
}

std::size_t Model::weight_bytes() const noexcept {
  std::size_t total =
      (master_->embedding.size() + master_->lm_head.size()) * sizeof(float);
  for (const auto& lq : layers_) {
    total += lq.wq.storage_bytes() + lq.wk.storage_bytes() + lq.wv.storage_bytes() +
             lq.wo.storage_bytes() + lq.w_gate.storage_bytes() + lq.w_up.storage_bytes() +
             lq.w_down.storage_bytes();
  }
  return total;
}

std::size_t Model::outlier_columns() const noexcept {
  std::size_t total = 0;
  for (const auto& lq : layers_) {
    total += lq.wq.outlier_column_count() + lq.wk.outlier_column_count() +
             lq.wv.outlier_column_count() + lq.wo.outlier_column_count() +
             lq.w_gate.outlier_column_count() + lq.w_up.outlier_column_count() +
             lq.w_down.outlier_column_count();
  }
  return total;
}

void Model::attention(std::size_t layer, std::size_t b, KVCache& cache,
                      std::span<const float> normed, std::span<float> out,
                      InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t head_dim = c.head_dim();
  const std::size_t group = c.n_heads / c.n_kv_heads;

  // Fused QKV: INT8 weights quantize the shared activation once.
  quant::matvec_qkv(layers_[layer].wq, layers_[layer].wk, layers_[layer].wv, normed,
                    ws.q, ws.k, ws.v, ws.act8);

  const std::size_t pos = cache.seq_len(b);
  kernels::rope_inplace(ws.q, c.n_heads, head_dim, pos, c.rope_theta);
  kernels::rope_inplace(ws.k, c.n_kv_heads, head_dim, pos, c.rope_theta);
  cache.append(layer, b, ws.k, ws.v);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t h = 0; h < c.n_heads; ++h) {
    const std::size_t g = h / group;
    const std::span<const float> qh(ws.q.data() + h * head_dim, head_dim);
    // Scores over positions 0..pos (inclusive: staged entry readable).
    for (std::size_t p = 0; p <= pos; ++p) {
      const auto key = cache.key(layer, b, p, ws.kv_key);
      ws.scores[p] =
          kernels::dot(qh, key.subspan(g * head_dim, head_dim)) * inv_sqrt_d;
    }
    kernels::softmax_rows(std::span<float>(ws.scores.data(), pos + 1), 1, pos + 1);
    float* oh = out.data() + h * head_dim;
    for (std::size_t p = 0; p <= pos; ++p) {
      const auto val = cache.value(layer, b, p, ws.kv_value);
      const float* vp = val.data() + g * head_dim;
      const float s = ws.scores[p];
      for (std::size_t i = 0; i < head_dim; ++i) oh[i] += s * vp[i];
    }
  }
}

void Model::mlp_swiglu(std::size_t layer, std::span<const float> normed,
                       std::span<float> out, InferenceWorkspace& ws) {
  layers_[layer].w_gate.matvec(normed, ws.gate);
  layers_[layer].w_up.matvec(normed, ws.up);
  kernels::swiglu(ws.gate, ws.up, ws.ff);
  layers_[layer].w_down.matvec(ws.ff, out);
}

void Model::mlp_gelu(std::size_t layer, std::span<const float> normed, std::span<float> out,
                     InferenceWorkspace& ws) {
  layers_[layer].w_gate.matvec(normed, ws.ff);  // fc1
  kernels::gelu_inplace(std::span<float>(ws.ff));
  layers_[layer].w_down.matvec(ws.ff, out);  // fc2
}

void Model::forward_token(TokenId token, std::size_t b, KVCache& cache,
                          std::span<float> hidden_out, InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t d = c.d_model;
  ORINSIM_CHECK(token < c.vocab, "token id out of vocab range");
  ORINSIM_CHECK(hidden_out.size() == d, "hidden_out must be d_model");

  const float* emb = master_->embedding.data() + static_cast<std::size_t>(token) * d;
  std::copy(emb, emb + d, ws.x.begin());

  for (std::size_t l = 0; l < c.n_layers; ++l) {
    const LayerMaster& lm = master_->layers[l];
    if (c.style == BlockStyle::kPreNormSwiGLU) {
      kernels::rmsnorm_rows(ws.x, lm.norm_gain, ws.normed, 1, d);
      attention(l, b, cache, ws.normed, ws.attn, ws);
      layers_[l].wo.matvec(ws.attn, ws.attn_proj);
      kernels::add_inplace(std::span<float>(ws.x), ws.attn_proj);

      kernels::rmsnorm_rows(ws.x, lm.norm2_gain, ws.normed, 1, d);
      mlp_swiglu(l, ws.normed, ws.mlp_out, ws);
      kernels::add_inplace(std::span<float>(ws.x), ws.mlp_out);
    } else {
      // Phi-2 parallel block: one LayerNorm feeds both attention and MLP.
      kernels::layernorm_rows(ws.x, lm.norm_gain, lm.norm_bias, ws.normed, 1, d);
      attention(l, b, cache, ws.normed, ws.attn, ws);
      layers_[l].wo.matvec(ws.attn, ws.attn_proj);
      mlp_gelu(l, ws.normed, ws.mlp_out, ws);
      kernels::add_inplace(std::span<float>(ws.x), ws.attn_proj);
      kernels::add_inplace(std::span<float>(ws.x), ws.mlp_out);
    }
  }
  cache.commit(b);

  if (c.style == BlockStyle::kPreNormSwiGLU) {
    kernels::rmsnorm_rows(ws.x, master_->final_norm_gain, hidden_out, 1, d);
  } else {
    kernels::layernorm_rows(ws.x, master_->final_norm_gain, master_->final_norm_bias,
                            hidden_out, 1, d);
  }
}

void Model::logits_from_hidden(std::span<const float> hidden, std::span<float> logits) const {
  const TransformerConfig& c = master_->config;
  ORINSIM_CHECK(hidden.size() == c.d_model && logits.size() == c.vocab,
                "logits_from_hidden: shape mismatch");
  kernels::matvec(master_->lm_head, hidden, logits, c.vocab, c.d_model);
}

void Model::prefill(std::span<const TokenId> prompt, std::size_t b, KVCache& cache,
                    std::span<float> last_hidden, InferenceWorkspace& ws) {
  ORINSIM_CHECK(!prompt.empty(), "prefill: empty prompt");
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    forward_token(prompt[i], b, cache, ws.hidden, ws);
  }
  if (!last_hidden.empty()) {
    ORINSIM_CHECK(last_hidden.size() == ws.hidden.size(), "last_hidden size mismatch");
    std::copy(ws.hidden.begin(), ws.hidden.end(), last_hidden.begin());
  }
}

Model::GenerateResult Model::generate(const std::vector<std::vector<TokenId>>& prompts,
                                      std::size_t max_new_tokens,
                                      const GenerateOptions& options) {
  ORINSIM_CHECK(!prompts.empty(), "generate: no prompts");
  const TransformerConfig& c = master_->config;
  const std::size_t lanes = prompts.size();
  std::size_t max_prompt = 0;
  for (const auto& p : prompts) {
    ORINSIM_CHECK(!p.empty(), "generate: empty prompt");
    max_prompt = std::max(max_prompt, p.size());
  }
  const std::size_t max_seq = std::min(c.max_seq, max_prompt + max_new_tokens);
  KVCache cache(c, lanes, max_seq, kv_storage_);

  GenerateResult result;
  result.outputs.resize(lanes);
  std::vector<TokenId> last(lanes);
  // Per-lane logits so sampling can be replayed serially in lane order after
  // each parallel section (identical RNG sequence regardless of workers).
  std::vector<float> logits(lanes * c.vocab);
  auto lane_logits = [&](std::size_t b) {
    return std::span<float>(logits.data() + b * c.vocab, c.vocab);
  };

  // One workspace per shard; shard identity comes from parallel_for, with at
  // most one lane running per shard at a time. Serial runs use shard 0 only.
  const std::size_t shard_count =
      options.pool != nullptr ? std::min(options.pool->shard_count(), lanes) : 1;
  std::vector<InferenceWorkspace> ws;
  ws.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) ws.emplace_back(c);

  // Runs body(workspace, lane) for every lane; lanes touch disjoint cache
  // sequences and per-lane logits, so this is safe to shard.
  auto for_each_lane = [&](const std::function<void(InferenceWorkspace&, std::size_t)>& body) {
    if (options.pool != nullptr) {
      options.pool->parallel_for(
          0, lanes, [&](std::size_t shard, std::size_t b) { body(ws[shard], b); });
    } else {
      for (std::size_t b = 0; b < lanes; ++b) body(ws[0], b);
    }
  };

  auto pick = [&](std::span<const float> l) {
    return options.sampler != nullptr ? options.sampler->sample(l)
                                      : static_cast<TokenId>(kernels::argmax(l));
  };

  Stopwatch watch;
  for_each_lane([&](InferenceWorkspace& w, std::size_t b) {
    prefill(prompts[b], b, cache, {}, w);
    logits_from_hidden(w.hidden, lane_logits(b));
  });
  for (std::size_t b = 0; b < lanes; ++b) {
    last[b] = pick(lane_logits(b));
    result.input_tokens += prompts[b].size();
  }
  if (options.timeline != nullptr) {
    options.timeline->emit(trace::Phase::kPrefill, watch.elapsed_s(), lanes,
                           static_cast<double>(result.input_tokens) /
                               static_cast<double>(lanes));
  }
  std::vector<char> lane_active(lanes, 0);
  for (std::size_t step = 0; step < max_new_tokens; ++step) {
    watch.reset();
    std::size_t active = 0;
    for (std::size_t b = 0; b < lanes; ++b) {
      lane_active[b] = cache.seq_len(b) < max_seq ? 1 : 0;
      active += lane_active[b];
    }
    // Every lane at capacity: spinning further steps would only emit
    // zero-active decode events — stop the timeline and the loop here.
    if (active == 0) break;
    for (std::size_t b = 0; b < lanes; ++b) {
      if (!lane_active[b]) continue;
      result.outputs[b].push_back(last[b]);
      ++result.output_tokens;
    }
    if (step + 1 < max_new_tokens) {  // no need to forward the final token
      for_each_lane([&](InferenceWorkspace& w, std::size_t b) {
        if (!lane_active[b]) return;
        forward_token(last[b], b, cache, w.hidden, w);
        logits_from_hidden(w.hidden, lane_logits(b));
      });
      // Sampling replays serially in lane order: the same sequence of
      // sampler->sample() calls as a fully serial run.
      for (std::size_t b = 0; b < lanes; ++b) {
        if (lane_active[b]) last[b] = pick(lane_logits(b));
      }
    }
    if (options.timeline != nullptr) {
      options.timeline->emit(trace::Phase::kDecode, watch.elapsed_s(), active,
                             static_cast<double>(result.input_tokens) /
                                     static_cast<double>(lanes) +
                                 static_cast<double>(step));
    }
  }
  return result;
}

Model::NllResult Model::sequence_nll(std::span<const TokenId> tokens,
                                     std::size_t predict_from) {
  ORINSIM_CHECK(tokens.size() >= 2, "sequence_nll: need at least two tokens");
  ORINSIM_CHECK(predict_from >= 1 && predict_from < tokens.size(),
                "sequence_nll: predict_from must be in [1, len)");
  const TransformerConfig& c = master_->config;
  ORINSIM_CHECK(tokens.size() <= c.max_seq, "sequence exceeds model max_seq");

  KVCache cache(c, 1, tokens.size(), kv_storage_);
  std::vector<float> hidden(c.d_model);
  std::vector<float> logits(c.vocab);

  NllResult result;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    forward_token(tokens[i], 0, cache, hidden);
    const std::size_t target_index = i + 1;
    if (target_index < predict_from) continue;
    logits_from_hidden(hidden, logits);
    const double lse = kernels::logsumexp(logits);
    const double log_p = static_cast<double>(logits[tokens[target_index]]) - lse;
    result.total_nll -= log_p;
    ++result.predicted;
  }
  return result;
}

}  // namespace orinsim
