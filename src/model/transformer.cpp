#include "model/transformer.h"

#include <algorithm>
#include <cmath>

#include "core/rng.h"
#include "core/stopwatch.h"
#include "tensor/kernels.h"

namespace orinsim {

namespace {
void init_gaussian(std::vector<float>& w, std::size_t n, Rng& rng, double stddev) {
  w.resize(n);
  for (auto& v : w) v = static_cast<float>(rng.normal(0.0, stddev));
}

// Trained transformers develop heavy-tailed weight/activation distributions
// with emergent outlier features (Dettmers et al., LLM.int8()); these are
// what make INT8 quantization lossy in practice. Block weights therefore use
// a Gaussian mixture: a small fraction of entries are drawn at several times
// the base scale. Pure Gaussians would make INT8 artificially lossless and
// erase the Table 3 effect this engine reproduces.
void init_heavy_tailed(std::vector<float>& w, std::size_t n, Rng& rng, double stddev) {
  constexpr double kOutlierFraction = 0.04;
  constexpr double kOutlierScale = 5.0;
  w.resize(n);
  for (auto& v : w) {
    const double scale = rng.bernoulli(kOutlierFraction) ? kOutlierScale : 1.0;
    v = static_cast<float>(rng.normal(0.0, stddev * scale));
  }
}
}  // namespace

std::shared_ptr<MasterWeights> MasterWeights::init_random(const TransformerConfig& config,
                                                          std::uint64_t seed) {
  config.validate();
  auto mw = std::make_shared<MasterWeights>();
  mw->config = config;
  Rng rng(seed);

  const std::size_t d = config.d_model;
  const std::size_t kv = config.kv_dim();
  const std::size_t ff = config.d_ff;
  const double sigma_in = 1.0 / std::sqrt(static_cast<double>(d));
  const double sigma_ff = 1.0 / std::sqrt(static_cast<double>(ff));
  const double residual_scale = 1.0 / std::sqrt(2.0 * static_cast<double>(config.n_layers));

  init_gaussian(mw->embedding, config.vocab * d, rng, 0.5);
  init_gaussian(mw->lm_head, config.vocab * d, rng, 0.02);
  mw->final_norm_gain.assign(d, 1.0f);
  mw->final_norm_bias.assign(d, 0.0f);

  mw->layers.resize(config.n_layers);
  for (auto& layer : mw->layers) {
    init_heavy_tailed(layer.wq, d * d, rng, sigma_in);
    init_heavy_tailed(layer.wk, kv * d, rng, sigma_in);
    init_heavy_tailed(layer.wv, kv * d, rng, sigma_in);
    init_heavy_tailed(layer.wo, d * d, rng, sigma_in * residual_scale);
    if (config.style == BlockStyle::kPreNormSwiGLU) {
      init_heavy_tailed(layer.w_gate, ff * d, rng, sigma_in);
      init_heavy_tailed(layer.w_up, ff * d, rng, sigma_in);
      init_heavy_tailed(layer.w_down, d * ff, rng, sigma_ff * residual_scale);
      layer.norm2_gain.assign(d, 1.0f);
    } else {
      init_heavy_tailed(layer.w_gate, ff * d, rng, sigma_in);  // fc1
      init_heavy_tailed(layer.w_down, d * ff, rng, sigma_ff * residual_scale);  // fc2
      layer.norm_bias.assign(d, 0.0f);
    }
    layer.norm_gain.assign(d, 1.0f);
    if (layer.norm_bias.empty() && config.style == BlockStyle::kParallelGELU) {
      layer.norm_bias.assign(d, 0.0f);
    }
  }
  return mw;
}

namespace {
const MasterWeights& checked_master(const std::shared_ptr<const MasterWeights>& m) {
  ORINSIM_CHECK(m != nullptr, "Model requires master weights");
  return *m;
}
}  // namespace

Model::Model(std::shared_ptr<const MasterWeights> master, DType dtype,
             KVStorage kv_storage)
    : master_(std::move(master)),
      dtype_(dtype),
      kv_storage_(kv_storage),
      rope_(checked_master(master_).config.max_seq, master_->config.head_dim(),
            master_->config.rope_theta),
      default_ws_(master_->config) {
  const TransformerConfig& c = master_->config;
  const std::size_t d = c.d_model;
  const std::size_t kv = c.kv_dim();
  const std::size_t ff = c.d_ff;

  layers_.reserve(c.n_layers);
  for (const auto& lm : master_->layers) {
    LayerQuant lq;
    lq.wq = quant::WeightMatrix::create(lm.wq, d, d, dtype_);
    lq.wk = quant::WeightMatrix::create(lm.wk, kv, d, dtype_);
    lq.wv = quant::WeightMatrix::create(lm.wv, kv, d, dtype_);
    lq.wo = quant::WeightMatrix::create(lm.wo, d, d, dtype_);
    if (c.style == BlockStyle::kPreNormSwiGLU) {
      lq.w_gate = quant::WeightMatrix::create(lm.w_gate, ff, d, dtype_);
      lq.w_up = quant::WeightMatrix::create(lm.w_up, ff, d, dtype_);
      lq.w_down = quant::WeightMatrix::create(lm.w_down, d, ff, dtype_);
    } else {
      lq.w_gate = quant::WeightMatrix::create(lm.w_gate, ff, d, dtype_);
      lq.w_down = quant::WeightMatrix::create(lm.w_down, d, ff, dtype_);
    }
    layers_.push_back(std::move(lq));
  }
}

std::size_t Model::weight_bytes() const noexcept {
  std::size_t total =
      (master_->embedding.size() + master_->lm_head.size()) * sizeof(float);
  for (const auto& lq : layers_) {
    total += lq.wq.storage_bytes() + lq.wk.storage_bytes() + lq.wv.storage_bytes() +
             lq.wo.storage_bytes() + lq.w_gate.storage_bytes() + lq.w_up.storage_bytes() +
             lq.w_down.storage_bytes();
  }
  return total;
}

std::size_t Model::outlier_columns() const noexcept {
  std::size_t total = 0;
  for (const auto& lq : layers_) {
    total += lq.wq.outlier_column_count() + lq.wk.outlier_column_count() +
             lq.wv.outlier_column_count() + lq.wo.outlier_column_count() +
             lq.w_gate.outlier_column_count() + lq.w_up.outlier_column_count() +
             lq.w_down.outlier_column_count();
  }
  return total;
}

void Model::attention(std::size_t layer, std::size_t b, KVCache& cache,
                      std::span<const float> normed, std::span<float> out,
                      InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t head_dim = c.head_dim();
  const std::size_t group = c.n_heads / c.n_kv_heads;
  const std::size_t kv_dim = c.kv_dim();

  // Fused QKV: INT8 weights quantize the shared activation once.
  quant::matvec_qkv(layers_[layer].wq, layers_[layer].wk, layers_[layer].wv, normed,
                    ws.q, ws.k, ws.v, ws.act8);

  const std::size_t pos = cache.seq_len(b);
  rope_.apply(ws.q, c.n_heads, head_dim, pos);
  rope_.apply(ws.k, c.n_kv_heads, head_dim, pos);
  cache.append(layer, b, ws.k, ws.v);

  // Dequantize the whole K/V prefix once (positions 0..pos, the staged entry
  // included). The former per-(head, position) key()/value() reads repeated
  // the full-row dequantization n_heads times under quantized storage; FP32
  // storage returns a zero-copy view either way.
  const auto keys = cache.key_rows(layer, b, pos + 1, ws.kv_rows_k);
  const auto values = cache.value_rows(layer, b, pos + 1, ws.kv_rows_v);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t h = 0; h < c.n_heads; ++h) {
    const std::size_t g = h / group;
    const std::span<const float> qh(ws.q.data() + h * head_dim, head_dim);
    for (std::size_t p = 0; p <= pos; ++p) {
      ws.scores[p] =
          kernels::dot(qh, keys.subspan(p * kv_dim + g * head_dim, head_dim)) * inv_sqrt_d;
    }
    kernels::softmax_rows(std::span<float>(ws.scores.data(), pos + 1), 1, pos + 1);
    float* oh = out.data() + h * head_dim;
    for (std::size_t p = 0; p <= pos; ++p) {
      const float* vp = values.data() + p * kv_dim + g * head_dim;
      const float s = ws.scores[p];
      for (std::size_t i = 0; i < head_dim; ++i) oh[i] += s * vp[i];
    }
  }
}

void Model::attention_lanes(std::size_t layer, std::span<const std::size_t> seqs,
                            KVCache& cache, std::span<const float> normed,
                            std::span<float> out, std::size_t n, InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t head_dim = c.head_dim();
  const std::size_t group = c.n_heads / c.n_kv_heads;
  const std::size_t kv_dim = c.kv_dim();
  const std::size_t d = c.d_model;

  // Fused lane-batched QKV: every weight row is streamed once for the whole
  // lane batch (and INT8/INT4 quantize the activation batch once, shared
  // across Q/K/V). Per-lane results are bit-identical to matvec_qkv.
  quant::matvec_qkv_multi(layers_[layer].wq, layers_[layer].wk, layers_[layer].wv, normed,
                          std::span<float>(ws.cq.data(), n * d),
                          std::span<float>(ws.ck.data(), n * kv_dim),
                          std::span<float>(ws.cv.data(), n * kv_dim), n, ws.act8_chunk);

  // RoPE, cache append, and the score/softmax/V loop run per lane in the
  // exact op order of attention(); lanes touch distinct cache sequences, so
  // each lane's path is independent of its batch-mates.
  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t b = seqs[t];
    const std::span<float> q_row(ws.cq.data() + t * d, d);
    const std::span<float> k_row(ws.ck.data() + t * kv_dim, kv_dim);
    const std::span<const float> v_row(ws.cv.data() + t * kv_dim, kv_dim);

    const std::size_t pos = cache.seq_len(b);
    rope_.apply(q_row, c.n_heads, head_dim, pos);
    rope_.apply(k_row, c.n_kv_heads, head_dim, pos);
    cache.append(layer, b, k_row, v_row);

    const auto keys = cache.key_rows(layer, b, pos + 1, ws.kv_rows_k);
    const auto values = cache.value_rows(layer, b, pos + 1, ws.kv_rows_v);

    float* out_row = out.data() + t * d;
    for (std::size_t h = 0; h < c.n_heads; ++h) {
      const std::size_t g = h / group;
      const std::span<const float> qh(q_row.data() + h * head_dim, head_dim);
      for (std::size_t p = 0; p <= pos; ++p) {
        ws.scores[p] =
            kernels::dot(qh, keys.subspan(p * kv_dim + g * head_dim, head_dim)) * inv_sqrt_d;
      }
      kernels::softmax_rows(std::span<float>(ws.scores.data(), pos + 1), 1, pos + 1);
      float* oh = out_row + h * head_dim;
      for (std::size_t p = 0; p <= pos; ++p) {
        const float* vp = values.data() + p * kv_dim + g * head_dim;
        const float s = ws.scores[p];
        for (std::size_t i = 0; i < head_dim; ++i) oh[i] += s * vp[i];
      }
    }
  }
}

void Model::attention_chunk(std::size_t layer, std::size_t b, KVCache& cache,
                            std::span<const float> normed, std::span<float> out,
                            std::size_t tokens, InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t head_dim = c.head_dim();
  const std::size_t group = c.n_heads / c.n_kv_heads;
  const std::size_t kv_dim = c.kv_dim();
  const std::size_t d = c.d_model;

  // Fused chunk QKV: INT8 weights quantize the whole chunk's activations once.
  quant::matmul_qkv(layers_[layer].wq, layers_[layer].wk, layers_[layer].wv, normed,
                    std::span<float>(ws.cq.data(), tokens * d),
                    std::span<float>(ws.ck.data(), tokens * kv_dim),
                    std::span<float>(ws.cv.data(), tokens * kv_dim), tokens, ws.act8_chunk);

  const std::size_t first = cache.seq_len(b);
  for (std::size_t t = 0; t < tokens; ++t) {
    rope_.apply(std::span<float>(ws.cq.data() + t * d, d), c.n_heads, head_dim, first + t);
    rope_.apply(std::span<float>(ws.ck.data() + t * kv_dim, kv_dim), c.n_kv_heads, head_dim,
                first + t);
  }
  // Stage the chunk's K/V rows; forward_chunk commits once after all layers.
  cache.append_many(layer, b, std::span<const float>(ws.ck.data(), tokens * kv_dim),
                    std::span<const float>(ws.cv.data(), tokens * kv_dim), tokens);

  const std::size_t total = first + tokens;
  const auto keys = cache.key_rows(layer, b, total, ws.kv_rows_k);
  const auto values = cache.value_rows(layer, b, total, ws.kv_rows_v);

  const float inv_sqrt_d = 1.0f / std::sqrt(static_cast<float>(head_dim));
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t h = 0; h < c.n_heads; ++h) {
    const std::size_t g = h / group;
    // Causal scores matrix for this head: chunk row t attends to positions
    // 0..first+t. Rows are ragged, so the softmax runs per row over exactly
    // the valid prefix — the same op sequence as the one-token path.
    for (std::size_t t = 0; t < tokens; ++t) {
      const std::size_t n_pos = first + t + 1;
      const std::span<const float> qh(ws.cq.data() + t * d + h * head_dim, head_dim);
      float* srow = ws.cscores.data() + t * c.max_seq;
      for (std::size_t p = 0; p < n_pos; ++p) {
        srow[p] =
            kernels::dot(qh, keys.subspan(p * kv_dim + g * head_dim, head_dim)) * inv_sqrt_d;
      }
      kernels::softmax_rows(std::span<float>(srow, n_pos), 1, n_pos);
      float* oh = out.data() + t * d + h * head_dim;
      for (std::size_t p = 0; p < n_pos; ++p) {
        const float* vp = values.data() + p * kv_dim + g * head_dim;
        const float s = srow[p];
        for (std::size_t i = 0; i < head_dim; ++i) oh[i] += s * vp[i];
      }
    }
  }
}

void Model::mlp_swiglu(std::size_t layer, std::span<const float> normed,
                       std::span<float> out, InferenceWorkspace& ws) {
  layers_[layer].w_gate.matvec(normed, ws.gate);
  layers_[layer].w_up.matvec(normed, ws.up);
  kernels::swiglu(ws.gate, ws.up, ws.ff);
  layers_[layer].w_down.matvec(ws.ff, out);
}

void Model::mlp_gelu(std::size_t layer, std::span<const float> normed, std::span<float> out,
                     InferenceWorkspace& ws) {
  layers_[layer].w_gate.matvec(normed, ws.ff);  // fc1
  kernels::gelu_inplace(std::span<float>(ws.ff));
  layers_[layer].w_down.matvec(ws.ff, out);  // fc2
}

void Model::mlp_swiglu_lanes(std::size_t layer, std::span<const float> normed,
                             std::span<float> out, std::size_t n, InferenceWorkspace& ws) {
  const std::size_t ff = master_->config.d_ff;
  const std::span<float> gate(ws.cgate.data(), n * ff);
  const std::span<float> up(ws.cup.data(), n * ff);
  const std::span<float> act(ws.cff.data(), n * ff);
  layers_[layer].w_gate.matvec_multi(normed, gate, n, ws.act8_chunk);
  layers_[layer].w_up.matvec_multi(normed, up, n, ws.act8_chunk);
  kernels::swiglu(gate, up, act);
  layers_[layer].w_down.matvec_multi(act, out, n, ws.act8_chunk);
}

void Model::mlp_gelu_lanes(std::size_t layer, std::span<const float> normed,
                           std::span<float> out, std::size_t n, InferenceWorkspace& ws) {
  const std::size_t ff = master_->config.d_ff;
  const std::span<float> act(ws.cff.data(), n * ff);
  layers_[layer].w_gate.matvec_multi(normed, act, n, ws.act8_chunk);  // fc1
  kernels::gelu_inplace(act);
  layers_[layer].w_down.matvec_multi(act, out, n, ws.act8_chunk);  // fc2
}

void Model::mlp_swiglu_chunk(std::size_t layer, std::span<const float> normed,
                             std::span<float> out, std::size_t tokens,
                             InferenceWorkspace& ws) {
  const std::size_t ff = master_->config.d_ff;
  const std::span<float> gate(ws.cgate.data(), tokens * ff);
  const std::span<float> up(ws.cup.data(), tokens * ff);
  const std::span<float> act(ws.cff.data(), tokens * ff);
  layers_[layer].w_gate.matmul(normed, gate, tokens);
  layers_[layer].w_up.matmul(normed, up, tokens);
  kernels::swiglu(gate, up, act);
  layers_[layer].w_down.matmul(act, out, tokens);
}

void Model::mlp_gelu_chunk(std::size_t layer, std::span<const float> normed,
                           std::span<float> out, std::size_t tokens, InferenceWorkspace& ws) {
  const std::size_t ff = master_->config.d_ff;
  const std::span<float> act(ws.cff.data(), tokens * ff);
  layers_[layer].w_gate.matmul(normed, act, tokens);  // fc1
  kernels::gelu_inplace(act);
  layers_[layer].w_down.matmul(act, out, tokens);  // fc2
}

void Model::forward_token(TokenId token, std::size_t b, KVCache& cache,
                          std::span<float> hidden_out, InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t d = c.d_model;
  ORINSIM_CHECK(token < c.vocab, "token id out of vocab range");
  ORINSIM_CHECK(hidden_out.size() == d, "hidden_out must be d_model");

  const float* emb = master_->embedding.data() + static_cast<std::size_t>(token) * d;
  std::copy(emb, emb + d, ws.x.begin());

  for (std::size_t l = 0; l < c.n_layers; ++l) {
    const LayerMaster& lm = master_->layers[l];
    if (c.style == BlockStyle::kPreNormSwiGLU) {
      kernels::rmsnorm_rows(ws.x, lm.norm_gain, ws.normed, 1, d);
      attention(l, b, cache, ws.normed, ws.attn, ws);
      layers_[l].wo.matvec(ws.attn, ws.attn_proj);
      kernels::add_inplace(std::span<float>(ws.x), ws.attn_proj);

      kernels::rmsnorm_rows(ws.x, lm.norm2_gain, ws.normed, 1, d);
      mlp_swiglu(l, ws.normed, ws.mlp_out, ws);
      kernels::add_inplace(std::span<float>(ws.x), ws.mlp_out);
    } else {
      // Phi-2 parallel block: one LayerNorm feeds both attention and MLP.
      kernels::layernorm_rows(ws.x, lm.norm_gain, lm.norm_bias, ws.normed, 1, d);
      attention(l, b, cache, ws.normed, ws.attn, ws);
      layers_[l].wo.matvec(ws.attn, ws.attn_proj);
      mlp_gelu(l, ws.normed, ws.mlp_out, ws);
      kernels::add_inplace(std::span<float>(ws.x), ws.attn_proj);
      kernels::add_inplace(std::span<float>(ws.x), ws.mlp_out);
    }
  }
  cache.commit(b);

  if (c.style == BlockStyle::kPreNormSwiGLU) {
    kernels::rmsnorm_rows(ws.x, master_->final_norm_gain, hidden_out, 1, d);
  } else {
    kernels::layernorm_rows(ws.x, master_->final_norm_gain, master_->final_norm_bias,
                            hidden_out, 1, d);
  }
}

void Model::forward_tokens(std::span<const TokenId> tokens, std::span<const std::size_t> seqs,
                           KVCache& cache, std::span<float> hidden_rows,
                           InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t d = c.d_model;
  const std::size_t n = tokens.size();
  ORINSIM_CHECK(n > 0, "forward_tokens: empty lane batch");
  ORINSIM_CHECK(seqs.size() == n, "forward_tokens: tokens/seqs size mismatch");
  ORINSIM_CHECK(hidden_rows.size() == n * d,
                "forward_tokens: hidden_rows must be [lanes, d_model]");
  ws.ensure_chunk(c, n);

  for (std::size_t t = 0; t < n; ++t) {
    ORINSIM_CHECK(tokens[t] < c.vocab, "token id out of vocab range");
    const float* emb = master_->embedding.data() + static_cast<std::size_t>(tokens[t]) * d;
    std::copy(emb, emb + d, ws.cx.begin() + static_cast<std::ptrdiff_t>(t * d));
  }

  const std::span<float> cx(ws.cx.data(), n * d);
  const std::span<float> cnormed(ws.cnormed.data(), n * d);
  const std::span<float> cattn(ws.cattn.data(), n * d);
  const std::span<float> cattn_proj(ws.cattn_proj.data(), n * d);
  const std::span<float> cmlp_out(ws.cmlp_out.data(), n * d);

  // The row-wise norms, element-wise adds/activations, and per-lane attention
  // loop are all bit-identical per row to the one-token path; the projections
  // go through matvec_multi, whose per-lane bit-identity contract makes the
  // whole step match forward_token lane by lane (kF32/kI8/kI4; kF16 scalar).
  for (std::size_t l = 0; l < c.n_layers; ++l) {
    const LayerMaster& lm = master_->layers[l];
    if (c.style == BlockStyle::kPreNormSwiGLU) {
      kernels::rmsnorm_rows(cx, lm.norm_gain, cnormed, n, d);
      attention_lanes(l, seqs, cache, cnormed, cattn, n, ws);
      layers_[l].wo.matvec_multi(cattn, cattn_proj, n, ws.act8_chunk);
      kernels::add_inplace(cx, cattn_proj);

      kernels::rmsnorm_rows(cx, lm.norm2_gain, cnormed, n, d);
      mlp_swiglu_lanes(l, cnormed, cmlp_out, n, ws);
      kernels::add_inplace(cx, cmlp_out);
    } else {
      // Phi-2 parallel block: one LayerNorm feeds both attention and MLP.
      kernels::layernorm_rows(cx, lm.norm_gain, lm.norm_bias, cnormed, n, d);
      attention_lanes(l, seqs, cache, cnormed, cattn, n, ws);
      layers_[l].wo.matvec_multi(cattn, cattn_proj, n, ws.act8_chunk);
      mlp_gelu_lanes(l, cnormed, cmlp_out, n, ws);
      kernels::add_inplace(cx, cattn_proj);
      kernels::add_inplace(cx, cmlp_out);
    }
  }
  // One commit per lane after all layers — the same staging discipline as
  // forward_token, so every lane's cache sequence advances exactly once.
  for (std::size_t t = 0; t < n; ++t) cache.commit(seqs[t]);

  if (c.style == BlockStyle::kPreNormSwiGLU) {
    kernels::rmsnorm_rows(cx, master_->final_norm_gain, hidden_rows, n, d);
  } else {
    kernels::layernorm_rows(cx, master_->final_norm_gain, master_->final_norm_bias,
                            hidden_rows, n, d);
  }
}

void Model::forward_chunk(std::span<const TokenId> tokens, std::size_t b, KVCache& cache,
                          std::span<float> hidden_rows, InferenceWorkspace& ws) {
  const TransformerConfig& c = master_->config;
  const std::size_t d = c.d_model;
  const std::size_t n = tokens.size();
  ORINSIM_CHECK(n > 0, "forward_chunk: empty chunk");
  ORINSIM_CHECK(hidden_rows.empty() || hidden_rows.size() == d || hidden_rows.size() == n * d,
                "forward_chunk: hidden_rows must be empty, [d_model], or [tokens, d_model]");
  ws.ensure_chunk(c, n);

  for (std::size_t t = 0; t < n; ++t) {
    ORINSIM_CHECK(tokens[t] < c.vocab, "token id out of vocab range");
    const float* emb = master_->embedding.data() + static_cast<std::size_t>(tokens[t]) * d;
    std::copy(emb, emb + d, ws.cx.begin() + static_cast<std::ptrdiff_t>(t * d));
  }

  const std::span<float> cx(ws.cx.data(), n * d);
  const std::span<float> cnormed(ws.cnormed.data(), n * d);
  const std::span<float> cattn(ws.cattn.data(), n * d);
  const std::span<float> cattn_proj(ws.cattn_proj.data(), n * d);
  const std::span<float> cmlp_out(ws.cmlp_out.data(), n * d);

  for (std::size_t l = 0; l < c.n_layers; ++l) {
    const LayerMaster& lm = master_->layers[l];
    if (c.style == BlockStyle::kPreNormSwiGLU) {
      kernels::rmsnorm_rows(cx, lm.norm_gain, cnormed, n, d);
      attention_chunk(l, b, cache, cnormed, cattn, n, ws);
      layers_[l].wo.matmul(cattn, cattn_proj, n);
      kernels::add_inplace(cx, cattn_proj);

      kernels::rmsnorm_rows(cx, lm.norm2_gain, cnormed, n, d);
      mlp_swiglu_chunk(l, cnormed, cmlp_out, n, ws);
      kernels::add_inplace(cx, cmlp_out);
    } else {
      // Phi-2 parallel block: one LayerNorm feeds both attention and MLP.
      kernels::layernorm_rows(cx, lm.norm_gain, lm.norm_bias, cnormed, n, d);
      attention_chunk(l, b, cache, cnormed, cattn, n, ws);
      layers_[l].wo.matmul(cattn, cattn_proj, n);
      mlp_gelu_chunk(l, cnormed, cmlp_out, n, ws);
      kernels::add_inplace(cx, cattn_proj);
      kernels::add_inplace(cx, cmlp_out);
    }
  }
  cache.commit(b, n);

  if (hidden_rows.empty()) return;
  const std::size_t out_rows = hidden_rows.size() / d;
  const std::size_t first_row = n - out_rows;  // 0 (all rows) or n-1 (last only)
  const std::span<const float> x_rows(ws.cx.data() + first_row * d, out_rows * d);
  if (c.style == BlockStyle::kPreNormSwiGLU) {
    kernels::rmsnorm_rows(x_rows, master_->final_norm_gain, hidden_rows, out_rows, d);
  } else {
    kernels::layernorm_rows(x_rows, master_->final_norm_gain, master_->final_norm_bias,
                            hidden_rows, out_rows, d);
  }
}

void Model::logits_from_hidden(std::span<const float> hidden, std::span<float> logits) const {
  const TransformerConfig& c = master_->config;
  ORINSIM_CHECK(hidden.size() == c.d_model && logits.size() == c.vocab,
                "logits_from_hidden: shape mismatch");
  kernels::matvec(master_->lm_head, hidden, logits, c.vocab, c.d_model);
}

void Model::logits_from_hidden_rows(std::span<const float> hidden_rows,
                                    std::span<float> logits_rows, std::size_t lanes) const {
  const TransformerConfig& c = master_->config;
  ORINSIM_CHECK(hidden_rows.size() == lanes * c.d_model &&
                    logits_rows.size() == lanes * c.vocab,
                "logits_from_hidden_rows: shape mismatch");
  kernels::matvec_multi(master_->lm_head, hidden_rows, logits_rows, c.vocab, c.d_model,
                        lanes);
}

void Model::prefill(std::span<const TokenId> prompt, std::size_t b, KVCache& cache,
                    std::span<float> last_hidden, InferenceWorkspace& ws) {
  ORINSIM_CHECK(!prompt.empty(), "prefill: empty prompt");
  if (prefill_chunk_ >= 2) {
    // Chunked multi-token prefill: the prompt flows through the batched layer
    // ops in prefill_chunk_-token chunks (plus a remainder chunk). Each chunk
    // leaves its last position's hidden state in ws.hidden, so after the loop
    // ws.hidden holds the prompt's final hidden exactly like the token path.
    for (std::size_t start = 0; start < prompt.size(); start += prefill_chunk_) {
      const std::size_t n = std::min(prefill_chunk_, prompt.size() - start);
      forward_chunk(prompt.subspan(start, n), b, cache, ws.hidden, ws);
    }
  } else {
    for (std::size_t i = 0; i < prompt.size(); ++i) {
      forward_token(prompt[i], b, cache, ws.hidden, ws);
    }
  }
  if (!last_hidden.empty()) {
    ORINSIM_CHECK(last_hidden.size() == ws.hidden.size(), "last_hidden size mismatch");
    std::copy(ws.hidden.begin(), ws.hidden.end(), last_hidden.begin());
  }
}

Model::GenerateResult Model::generate(const std::vector<std::vector<TokenId>>& prompts,
                                      std::size_t max_new_tokens,
                                      const GenerateOptions& options) {
  ORINSIM_CHECK(!prompts.empty(), "generate: no prompts");
  const TransformerConfig& c = master_->config;
  const std::size_t lanes = prompts.size();
  std::size_t max_prompt = 0;
  for (const auto& p : prompts) {
    ORINSIM_CHECK(!p.empty(), "generate: empty prompt");
    max_prompt = std::max(max_prompt, p.size());
  }
  const std::size_t max_seq = std::min(c.max_seq, max_prompt + max_new_tokens);
  KVCache cache(c, lanes, max_seq, kv_options());

  GenerateResult result;
  result.outputs.resize(lanes);
  std::vector<TokenId> last(lanes);
  // Per-lane logits so sampling can be replayed serially in lane order after
  // each parallel section (identical RNG sequence regardless of workers).
  std::vector<float> logits(lanes * c.vocab);
  auto lane_logits = [&](std::size_t b) {
    return std::span<float>(logits.data() + b * c.vocab, c.vocab);
  };

  // One workspace per shard; shard identity comes from parallel_for, with at
  // most one lane running per shard at a time. Serial runs use shard 0 only.
  const std::size_t shard_count =
      options.pool != nullptr ? std::min(options.pool->shard_count(), lanes) : 1;
  std::vector<InferenceWorkspace> ws;
  ws.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) ws.emplace_back(c);

  // Runs body(workspace, lane) for every lane; lanes touch disjoint cache
  // sequences and per-lane logits, so this is safe to shard.
  auto for_each_lane = [&](const std::function<void(InferenceWorkspace&, std::size_t)>& body) {
    if (options.pool != nullptr) {
      options.pool->parallel_for(
          0, lanes, [&](std::size_t shard, std::size_t b) { body(ws[shard], b); });
    } else {
      for (std::size_t b = 0; b < lanes; ++b) body(ws[0], b);
    }
  };

  auto pick = [&](std::span<const float> l) {
    return options.sampler != nullptr ? options.sampler->sample(l)
                                      : static_cast<TokenId>(kernels::argmax(l));
  };

  // Lane-batched decode scratch: active lane ids (ascending), their last
  // tokens, and contiguous [n_active, *] hidden/logits rows.
  std::vector<std::size_t> active_ids;
  std::vector<TokenId> batch_tokens;
  std::vector<float> hidden_rows;
  std::vector<float> step_logits;
  if (options.lane_batched_decode) {
    active_ids.reserve(lanes);
    batch_tokens.reserve(lanes);
    hidden_rows.resize(lanes * c.d_model);
    step_logits.resize(lanes * c.vocab);
  }

  // One decode step over the active lanes via forward_tokens. Serial runs
  // take the whole active set as one batch; pooled runs split it into
  // min(shard_count, n_active) contiguous groups. Batch composition never
  // changes a lane's result (forward_tokens contract), so both shapes are
  // bitwise identical to each other and to the per-lane loop.
  auto decode_step_batched = [&]() {
    const std::size_t n_active = active_ids.size();
    auto run_group = [&](InferenceWorkspace& w, std::size_t begin, std::size_t len) {
      forward_tokens(std::span<const TokenId>(batch_tokens.data() + begin, len),
                     std::span<const std::size_t>(active_ids.data() + begin, len), cache,
                     std::span<float>(hidden_rows.data() + begin * c.d_model,
                                      len * c.d_model),
                     w);
    };
    if (options.pool != nullptr && shard_count > 1 && n_active > 1) {
      const std::size_t n_groups = std::min(shard_count, n_active);
      const std::size_t base = n_active / n_groups;
      const std::size_t rem = n_active % n_groups;
      options.pool->parallel_for(0, n_groups, [&](std::size_t shard, std::size_t g) {
        run_group(ws[shard], g * base + std::min(g, rem), base + (g < rem ? 1 : 0));
      });
    } else {
      run_group(ws[0], 0, n_active);
    }
    logits_from_hidden_rows(
        std::span<const float>(hidden_rows.data(), n_active * c.d_model),
        std::span<float>(step_logits.data(), n_active * c.vocab), n_active);
    // Scatter the contiguous logits rows back to per-lane slots (a copy, so
    // bit-exact) for the serial lane-order sampling pass below.
    for (std::size_t i = 0; i < n_active; ++i) {
      const float* src = step_logits.data() + i * c.vocab;
      std::copy(src, src + c.vocab, lane_logits(active_ids[i]).begin());
    }
  };

  Stopwatch watch;
  for_each_lane([&](InferenceWorkspace& w, std::size_t b) {
    prefill(prompts[b], b, cache, {}, w);
    logits_from_hidden(w.hidden, lane_logits(b));
  });
  for (std::size_t b = 0; b < lanes; ++b) {
    last[b] = pick(lane_logits(b));
    result.input_tokens += prompts[b].size();
  }
  if (options.timeline != nullptr) {
    options.timeline->emit(trace::Phase::kPrefill, watch.elapsed_s(), lanes,
                           static_cast<double>(result.input_tokens) /
                               static_cast<double>(lanes),
                           trace::kPowerUnset, {},
                           prefill_chunk_ >= 2 ? prefill_chunk_ : 0);
  }
  std::vector<char> lane_active(lanes, 0);
  for (std::size_t step = 0; step < max_new_tokens; ++step) {
    watch.reset();
    std::size_t active = 0;
    for (std::size_t b = 0; b < lanes; ++b) {
      lane_active[b] = cache.seq_len(b) < max_seq ? 1 : 0;
      active += lane_active[b];
    }
    // Every lane at capacity: spinning further steps would only emit
    // zero-active decode events — stop the timeline and the loop here.
    if (active == 0) break;
    for (std::size_t b = 0; b < lanes; ++b) {
      if (!lane_active[b]) continue;
      result.outputs[b].push_back(last[b]);
      ++result.output_tokens;
    }
    if (step + 1 < max_new_tokens) {  // no need to forward the final token
      if (options.lane_batched_decode) {
        active_ids.clear();
        batch_tokens.clear();
        for (std::size_t b = 0; b < lanes; ++b) {
          if (!lane_active[b]) continue;
          active_ids.push_back(b);
          batch_tokens.push_back(last[b]);
        }
        decode_step_batched();
      } else {
        for_each_lane([&](InferenceWorkspace& w, std::size_t b) {
          if (!lane_active[b]) return;
          forward_token(last[b], b, cache, w.hidden, w);
          logits_from_hidden(w.hidden, lane_logits(b));
        });
      }
      // Sampling replays serially in lane order: the same sequence of
      // sampler->sample() calls as a fully serial run.
      for (std::size_t b = 0; b < lanes; ++b) {
        if (lane_active[b]) last[b] = pick(lane_logits(b));
      }
    }
    if (options.timeline != nullptr) {
      options.timeline->emit(trace::Phase::kDecode, watch.elapsed_s(), active,
                             static_cast<double>(result.input_tokens) /
                                     static_cast<double>(lanes) +
                                 static_cast<double>(step));
    }
  }
  return result;
}

Model::NllResult Model::sequence_nll(std::span<const TokenId> tokens,
                                     std::size_t predict_from) {
  ORINSIM_CHECK(tokens.size() >= 2, "sequence_nll: need at least two tokens");
  ORINSIM_CHECK(predict_from >= 1 && predict_from < tokens.size(),
                "sequence_nll: predict_from must be in [1, len)");
  const TransformerConfig& c = master_->config;
  ORINSIM_CHECK(tokens.size() <= c.max_seq, "sequence exceeds model max_seq");

  KVCache cache(c, 1, tokens.size(), kv_options());
  std::vector<float> logits(c.vocab);

  NllResult result;
  // Scores the prediction of tokens[i+1] from the hidden state after feeding
  // tokens[i]. Accumulation stays in ascending i regardless of chunking.
  auto score = [&](std::span<const float> hidden, std::size_t i) {
    const std::size_t target_index = i + 1;
    if (target_index < predict_from) return;
    logits_from_hidden(hidden, logits);
    const double lse = kernels::logsumexp(logits);
    const double log_p = static_cast<double>(logits[tokens[target_index]]) - lse;
    result.total_nll -= log_p;
    ++result.predicted;
  };

  const std::size_t n_fwd = tokens.size() - 1;  // feed tokens[0..n_fwd)
  if (prefill_chunk_ >= 2) {
    const std::size_t d = c.d_model;
    std::vector<float> hidden_rows(std::min(prefill_chunk_, n_fwd) * d);
    for (std::size_t start = 0; start < n_fwd; start += prefill_chunk_) {
      const std::size_t n = std::min(prefill_chunk_, n_fwd - start);
      hidden_rows.resize(n * d);
      forward_chunk(tokens.subspan(start, n), 0, cache,
                    std::span<float>(hidden_rows.data(), n * d), default_ws_);
      for (std::size_t t = 0; t < n; ++t) {
        score(std::span<const float>(hidden_rows.data() + t * d, d), start + t);
      }
    }
  } else {
    std::vector<float> hidden(c.d_model);
    for (std::size_t i = 0; i < n_fwd; ++i) {
      forward_token(tokens[i], 0, cache, hidden);
      score(hidden, i);
    }
  }
  return result;
}

}  // namespace orinsim
