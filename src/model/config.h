// Transformer architecture configuration for the functional engine.
//
// Two block styles cover the four paper models:
//  - kPreNormSwiGLU: RMSNorm -> attention -> residual, RMSNorm -> SwiGLU MLP
//    -> residual (Llama 3.1, Mistral, DeepSeek-R1-Qwen).
//  - kParallelGELU: LayerNorm -> {attention, GELU MLP} evaluated in parallel
//    from the same normed input, summed into the residual (Phi-2).
// Grouped-query attention (n_kv_heads < n_heads) matches Llama/Mistral/Qwen.
#pragma once

#include <cstddef>
#include <string>

#include "core/error.h"

namespace orinsim {

enum class BlockStyle { kPreNormSwiGLU, kParallelGELU };

struct TransformerConfig {
  std::string name = "tiny";
  std::size_t vocab = 0;
  std::size_t d_model = 0;
  std::size_t n_layers = 0;
  std::size_t n_heads = 0;
  std::size_t n_kv_heads = 0;
  std::size_t d_ff = 0;
  std::size_t max_seq = 1024;
  BlockStyle style = BlockStyle::kPreNormSwiGLU;
  float rope_theta = 10000.0f;

  std::size_t head_dim() const {
    ORINSIM_CHECK(n_heads > 0 && d_model % n_heads == 0, "d_model must divide by n_heads");
    return d_model / n_heads;
  }

  std::size_t kv_dim() const { return n_kv_heads * head_dim(); }

  void validate() const {
    ORINSIM_CHECK(vocab > 0 && d_model > 0 && n_layers > 0 && n_heads > 0, "empty config");
    ORINSIM_CHECK(n_kv_heads > 0 && n_heads % n_kv_heads == 0,
                  "n_heads must be a multiple of n_kv_heads");
    ORINSIM_CHECK(d_model % n_heads == 0, "d_model must divide by n_heads");
    ORINSIM_CHECK(head_dim() % 2 == 0, "head_dim must be even for RoPE");
    ORINSIM_CHECK(d_ff > 0 && max_seq > 0, "d_ff and max_seq must be positive");
  }

  // Parameters in transformer blocks (excludes embedding and lm_head): the
  // quantity quantization applies to in this engine.
  std::size_t block_param_count() const {
    const std::size_t attn = d_model * d_model          // Wq
                             + 2 * d_model * kv_dim()   // Wk, Wv
                             + d_model * d_model;       // Wo
    std::size_t mlp = 0;
    if (style == BlockStyle::kPreNormSwiGLU) {
      mlp = 3 * d_model * d_ff;  // gate, up, down
    } else {
      mlp = 2 * d_model * d_ff;  // fc1, fc2
    }
    return n_layers * (attn + mlp);
  }

  std::size_t total_param_count() const {
    return block_param_count() + 2 * vocab * d_model + (n_layers * 2 + 1) * d_model;
  }

  // KV cache bytes per token per sequence at fp32 storage (functional engine
  // keeps its cache in fp32).
  std::size_t kv_bytes_per_token() const { return n_layers * 2 * kv_dim() * sizeof(float); }
};

// Scaled-down versions of the four paper architectures, preserving each
// model's block style and head layout, sized to run quickly on a CPU.
// Suffix "nano" ~ a few hundred K block parameters; used by tests and the
// perplexity study.
TransformerConfig make_nano_config(const std::string& family, std::size_t vocab);

inline TransformerConfig make_nano_config(const std::string& family, std::size_t vocab) {
  TransformerConfig c;
  c.vocab = vocab;
  if (family == "phi2") {
    // Phi-2: parallel attention+MLP blocks, LayerNorm, GELU, MHA (no GQA).
    c.name = "phi2-nano";
    c.d_model = 128;
    c.n_layers = 4;
    c.n_heads = 8;
    c.n_kv_heads = 8;
    c.d_ff = 512;
    c.style = BlockStyle::kParallelGELU;
  } else if (family == "llama3") {
    // Llama-3.1: pre-norm SwiGLU, GQA 4:1.
    c.name = "llama3-nano";
    c.d_model = 128;
    c.n_layers = 4;
    c.n_heads = 8;
    c.n_kv_heads = 2;
    c.d_ff = 448;
    c.style = BlockStyle::kPreNormSwiGLU;
    c.rope_theta = 500000.0f;
  } else if (family == "mistral") {
    c.name = "mistral-nano";
    c.d_model = 160;
    c.n_layers = 5;
    c.n_heads = 10;
    c.n_kv_heads = 2;
    c.d_ff = 576;
    c.style = BlockStyle::kPreNormSwiGLU;
  } else if (family == "deepseek-qwen") {
    c.name = "deepseek-qwen-nano";
    c.d_model = 192;
    c.n_layers = 6;
    c.n_heads = 12;
    c.n_kv_heads = 2;
    c.d_ff = 640;
    c.style = BlockStyle::kPreNormSwiGLU;
  } else {
    ORINSIM_CHECK(false, "unknown model family: " + family);
  }
  c.validate();
  return c;
}

}  // namespace orinsim
