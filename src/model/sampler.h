// Token samplers for the functional engine: greedy, temperature, top-k and
// nucleus (top-p). The study's throughput numbers use greedy decoding (the
// paper fixes output length, so the sampler does not affect timing), but a
// served model needs stochastic sampling; these are the standard policies.
#pragma once

#include <cstddef>

#include "core/rng.h"
#include "tokenizer/tokenizer.h"

#include <span>

namespace orinsim {

struct SamplerConfig {
  // temperature == 0 means greedy argmax (top_k/top_p ignored).
  float temperature = 0.0f;
  // 0 disables top-k truncation.
  std::size_t top_k = 0;
  // 1.0 disables nucleus truncation.
  float top_p = 1.0f;
};

class Sampler {
 public:
  explicit Sampler(SamplerConfig config, std::uint64_t seed = 99);

  // Picks the next token from raw logits (not softmaxed). Deterministic for
  // a given seed and call sequence. Decode-hot-path friendly: the
  // untruncated default is O(V), and truncated modes partial_sort only the
  // candidate head instead of sorting the whole vocabulary.
  TokenId sample(std::span<const float> logits);

  const SamplerConfig& config() const noexcept { return config_; }

 private:
  SamplerConfig config_;
  Rng rng_;
};

}  // namespace orinsim
