#include "model/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "tensor/kernels.h"

namespace orinsim {

Sampler::Sampler(SamplerConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  ORINSIM_CHECK(config_.temperature >= 0.0f, "temperature must be >= 0");
  ORINSIM_CHECK(config_.top_p > 0.0f && config_.top_p <= 1.0f, "top_p must be in (0, 1]");
}

TokenId Sampler::sample(std::span<const float> logits) {
  ORINSIM_CHECK(!logits.empty(), "sample: empty logits");
  if (config_.temperature == 0.0f) {
    return static_cast<TokenId>(kernels::argmax(logits));
  }

  // Candidate set, sorted by logit descending.
  std::vector<std::size_t> order(logits.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return logits[a] > logits[b]; });
  std::size_t candidates = order.size();
  if (config_.top_k > 0) candidates = std::min(candidates, config_.top_k);

  // Softmax over the temperature-scaled candidate logits.
  const float inv_t = 1.0f / config_.temperature;
  const float max_logit = logits[order[0]];
  std::vector<double> probs(candidates);
  double total = 0.0;
  for (std::size_t i = 0; i < candidates; ++i) {
    probs[i] = std::exp(static_cast<double>(logits[order[i]] - max_logit) * inv_t);
    total += probs[i];
  }
  for (auto& p : probs) p /= total;

  // Nucleus truncation: smallest prefix with cumulative mass >= top_p.
  if (config_.top_p < 1.0f) {
    double cum = 0.0;
    std::size_t cutoff = candidates;
    for (std::size_t i = 0; i < candidates; ++i) {
      cum += probs[i];
      if (cum >= config_.top_p) {
        cutoff = i + 1;
        break;
      }
    }
    candidates = cutoff;
    double renorm = 0.0;
    for (std::size_t i = 0; i < candidates; ++i) renorm += probs[i];
    for (std::size_t i = 0; i < candidates; ++i) probs[i] /= renorm;
  }

  // Inverse-CDF draw.
  const double u = rng_.uniform();
  double cum = 0.0;
  for (std::size_t i = 0; i < candidates; ++i) {
    cum += probs[i];
    if (u < cum) return static_cast<TokenId>(order[i]);
  }
  return static_cast<TokenId>(order[candidates - 1]);
}

}  // namespace orinsim
