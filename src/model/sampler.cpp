#include "model/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/error.h"
#include "tensor/kernels.h"

namespace orinsim {

Sampler::Sampler(SamplerConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  ORINSIM_CHECK(config_.temperature >= 0.0f, "temperature must be >= 0");
  ORINSIM_CHECK(config_.top_p > 0.0f && config_.top_p <= 1.0f, "top_p must be in (0, 1]");
}

TokenId Sampler::sample(std::span<const float> logits) {
  ORINSIM_CHECK(!logits.empty(), "sample: empty logits");
  if (config_.temperature == 0.0f) {
    return static_cast<TokenId>(kernels::argmax(logits));
  }

  const std::size_t vocab = logits.size();
  const float inv_t = 1.0f / config_.temperature;
  float max_logit = logits[0];
  for (float l : logits) max_logit = std::max(max_logit, l);
  auto weight = [&](std::size_t c) {
    return std::exp(static_cast<double>(logits[c] - max_logit) * inv_t);
  };

  // Fast path: no truncation configured. The categorical draw needs no
  // ordering at all — inverse-CDF in index order, O(V) instead of the old
  // full O(V log V) sort of the vocabulary on every decoded token.
  if (config_.top_k == 0 && config_.top_p >= 1.0f) {
    double total = 0.0;
    for (std::size_t c = 0; c < vocab; ++c) total += weight(c);
    const double u = rng_.uniform() * total;
    double cum = 0.0;
    for (std::size_t c = 0; c < vocab; ++c) {
      cum += weight(c);
      if (u < cum) return static_cast<TokenId>(c);
    }
    return static_cast<TokenId>(vocab - 1);
  }

  // Truncated paths need the head of the distribution in descending-logit
  // order (ties broken by index so the candidate order is deterministic).
  // partial_sort bounded by top_k — or by a doubling guess at the nucleus
  // cutoff — replaces the former full vocabulary sort.
  std::vector<std::size_t> order(vocab);
  std::iota(order.begin(), order.end(), 0);
  const auto by_logit_desc = [&](std::size_t a, std::size_t b) {
    if (logits[a] != logits[b]) return logits[a] > logits[b];
    return a < b;
  };

  std::size_t candidates = 0;  // ordered prefix the draw happens over
  double denom = 0.0;          // normalizer of the pre-nucleus distribution
  if (config_.top_k > 0) {
    candidates = std::min(vocab, config_.top_k);
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(candidates),
                      order.end(), by_logit_desc);
    for (std::size_t i = 0; i < candidates; ++i) denom += weight(order[i]);
  } else {
    // top_k disabled, nucleus active: probabilities are normalized over the
    // FULL vocabulary, and we need the smallest sorted prefix holding top_p
    // of that mass. Grow the sorted head until it covers the nucleus.
    double total = 0.0;
    for (std::size_t c = 0; c < vocab; ++c) total += weight(c);
    const double need = static_cast<double>(config_.top_p) * total;
    std::size_t m = std::min<std::size_t>(vocab, 64);
    for (;;) {
      std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(m),
                        order.end(), by_logit_desc);
      double head = 0.0;
      for (std::size_t i = 0; i < m; ++i) head += weight(order[i]);
      if (head >= need || m == vocab) break;
      m = std::min(vocab, m * 2);
    }
    candidates = m;
    denom = total;
  }

  // Nucleus truncation: smallest prefix with cumulative mass >= top_p.
  if (config_.top_p < 1.0f) {
    double cum = 0.0;
    std::size_t cutoff = candidates;
    for (std::size_t i = 0; i < candidates; ++i) {
      cum += weight(order[i]) / denom;
      if (cum >= config_.top_p) {
        cutoff = i + 1;
        break;
      }
    }
    candidates = cutoff;
  }

  // Inverse-CDF draw over the (renormalized) candidate prefix.
  double renorm = 0.0;
  for (std::size_t i = 0; i < candidates; ++i) renorm += weight(order[i]);
  const double u = rng_.uniform() * renorm;
  double cum = 0.0;
  for (std::size_t i = 0; i < candidates; ++i) {
    cum += weight(order[i]);
    if (u < cum) return static_cast<TokenId>(order[i]);
  }
  return static_cast<TokenId>(order[candidates - 1]);
}

}  // namespace orinsim
