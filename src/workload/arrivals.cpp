#include "workload/arrivals.h"

#include <cmath>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::workload {

namespace {

double exponential(Rng& rng, double rate) {
  double u = rng.uniform();
  while (u <= 1e-15) u = rng.uniform();
  return -std::log(u) / rate;
}

}  // namespace

std::vector<double> diurnal_default_curve() {
  // Night trough -> morning ramp -> midday plateau -> evening peak -> wind
  // down. Sums to 6.0 over six segments, so the mean multiplier is 1.0.
  return {0.2, 0.6, 1.2, 1.4, 1.8, 0.8};
}

std::vector<double> generate_arrivals(const ArrivalSpec& spec, std::size_t count) {
  ORINSIM_CHECK(spec.rate_rps > 0.0, "arrivals: rate must be positive");
  ORINSIM_CHECK(spec.burst_factor >= 1.0, "arrivals: burst factor must be >= 1");
  std::vector<double> out;
  out.reserve(count);
  Rng rng(spec.seed);

  switch (spec.kind) {
    case ArrivalKind::kDeterministic: {
      const double spacing = 1.0 / spec.rate_rps;
      for (std::size_t i = 0; i < count; ++i) out.push_back(static_cast<double>(i) * spacing);
      break;
    }
    case ArrivalKind::kPoisson: {
      double t = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        t += exponential(rng, spec.rate_rps);
        out.push_back(t);
      }
      break;
    }
    case ArrivalKind::kBursty: {
      // Two-phase MMPP. Phase rates are chosen so their time-weighted mean
      // (equal mean phase durations) equals spec.rate_rps and their ratio is
      // burst_factor: hi = 2rb/(b+1), lo = 2r/(b+1).
      const double hi =
          2.0 * spec.rate_rps * spec.burst_factor / (spec.burst_factor + 1.0);
      const double lo = 2.0 * spec.rate_rps / (spec.burst_factor + 1.0);
      double t = 0.0;
      bool burst = rng.bernoulli(0.5);
      double phase_end = exponential(rng, 1.0 / spec.mean_phase_s);
      while (out.size() < count) {
        const double rate = burst ? hi : std::max(lo, 1e-6);
        const double dt = exponential(rng, rate);
        if (t + dt > phase_end) {
          t = phase_end;
          phase_end += exponential(rng, 1.0 / spec.mean_phase_s);
          burst = !burst;
          continue;
        }
        t += dt;
        out.push_back(t);
      }
      break;
    }
    case ArrivalKind::kDiurnal: {
      // Piecewise-constant rate Poisson over a repeating curve. Within a
      // segment arrivals are homogeneous Poisson at rate * multiplier; a
      // draw crossing the segment boundary is discarded and restarted at
      // the boundary, which is exact by memorylessness (same construction
      // as the bursty phases above, with a deterministic phase schedule).
      const std::vector<double> curve = spec.diurnal_multipliers.empty()
                                            ? diurnal_default_curve()
                                            : spec.diurnal_multipliers;
      ORINSIM_CHECK(spec.diurnal_period_s > 0.0, "arrivals: diurnal period must be positive");
      for (double m : curve) {
        ORINSIM_CHECK(m >= 0.0, "arrivals: diurnal multipliers must be non-negative");
      }
      double curve_sum = 0.0;
      for (double m : curve) curve_sum += m;
      ORINSIM_CHECK(curve_sum > 0.0, "arrivals: diurnal curve must have a positive segment");
      const double seg_s = spec.diurnal_period_s / static_cast<double>(curve.size());
      double t = 0.0;
      std::size_t seg = 0;  // index into the unrolled segment sequence
      double seg_end = seg_s;
      while (out.size() < count) {
        const double rate = spec.rate_rps * curve[seg % curve.size()];
        if (rate <= 0.0) {  // dead segment: jump straight to the next one
          t = seg_end;
          ++seg;
          seg_end += seg_s;
          continue;
        }
        const double dt = exponential(rng, rate);
        if (t + dt > seg_end) {
          t = seg_end;
          ++seg;
          seg_end += seg_s;
          continue;
        }
        t += dt;
        out.push_back(t);
      }
      break;
    }
  }
  return out;
}

ArrivalStats analyze_arrivals(const std::vector<double>& arrivals) {
  ArrivalStats stats;
  if (arrivals.size() < 2) return stats;
  std::vector<double> gaps;
  gaps.reserve(arrivals.size() - 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  const double m = mean(gaps);
  const double sd = stddev(gaps);
  if (m > 0.0) {
    stats.mean_rate_rps = 1.0 / m;
    stats.interarrival_scv = (sd / m) * (sd / m);
  }
  return stats;
}

std::vector<double> diurnal_segment_rates(const std::vector<double>& arrivals,
                                          const std::vector<double>& multipliers,
                                          double period_s) {
  ORINSIM_CHECK(!multipliers.empty() && period_s > 0.0,
                "arrivals: segment rates need a curve and a period");
  const double seg_s = period_s / static_cast<double>(multipliers.size());
  std::vector<std::size_t> counts(multipliers.size(), 0);
  double t_max = 0.0;
  for (double t : arrivals) {
    const double phase = std::fmod(t, period_s);
    auto seg = static_cast<std::size_t>(phase / seg_s);
    if (seg >= multipliers.size()) seg = multipliers.size() - 1;  // fp edge
    ++counts[seg];
    if (t > t_max) t_max = t;
  }
  // Time spent in segment k across [0, t_max]: full periods plus the partial
  // tail.
  const double full_periods = std::floor(t_max / period_s);
  const double tail = t_max - full_periods * period_s;
  std::vector<double> rates(multipliers.size(), 0.0);
  for (std::size_t k = 0; k < multipliers.size(); ++k) {
    const double seg_start = static_cast<double>(k) * seg_s;
    double in_tail = 0.0;
    if (tail > seg_start) in_tail = std::min(tail - seg_start, seg_s);
    const double time_in_seg = full_periods * seg_s + in_tail;
    if (time_in_seg > 0.0) {
      rates[k] = static_cast<double>(counts[k]) / time_in_seg;
    }
  }
  return rates;
}

}  // namespace orinsim::workload
