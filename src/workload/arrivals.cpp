#include "workload/arrivals.h"

#include <cmath>

#include "core/error.h"
#include "core/stats.h"

namespace orinsim::workload {

namespace {

double exponential(Rng& rng, double rate) {
  double u = rng.uniform();
  while (u <= 1e-15) u = rng.uniform();
  return -std::log(u) / rate;
}

}  // namespace

std::vector<double> generate_arrivals(const ArrivalSpec& spec, std::size_t count) {
  ORINSIM_CHECK(spec.rate_rps > 0.0, "arrivals: rate must be positive");
  ORINSIM_CHECK(spec.burst_factor >= 1.0, "arrivals: burst factor must be >= 1");
  std::vector<double> out;
  out.reserve(count);
  Rng rng(spec.seed);

  switch (spec.kind) {
    case ArrivalKind::kDeterministic: {
      const double spacing = 1.0 / spec.rate_rps;
      for (std::size_t i = 0; i < count; ++i) out.push_back(static_cast<double>(i) * spacing);
      break;
    }
    case ArrivalKind::kPoisson: {
      double t = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        t += exponential(rng, spec.rate_rps);
        out.push_back(t);
      }
      break;
    }
    case ArrivalKind::kBursty: {
      // Two-phase MMPP. Phase rates are chosen so their time-weighted mean
      // (equal mean phase durations) equals spec.rate_rps and their ratio is
      // burst_factor: hi = 2rb/(b+1), lo = 2r/(b+1).
      const double hi =
          2.0 * spec.rate_rps * spec.burst_factor / (spec.burst_factor + 1.0);
      const double lo = 2.0 * spec.rate_rps / (spec.burst_factor + 1.0);
      double t = 0.0;
      bool burst = rng.bernoulli(0.5);
      double phase_end = exponential(rng, 1.0 / spec.mean_phase_s);
      while (out.size() < count) {
        const double rate = burst ? hi : std::max(lo, 1e-6);
        const double dt = exponential(rng, rate);
        if (t + dt > phase_end) {
          t = phase_end;
          phase_end += exponential(rng, 1.0 / spec.mean_phase_s);
          burst = !burst;
          continue;
        }
        t += dt;
        out.push_back(t);
      }
      break;
    }
  }
  return out;
}

ArrivalStats analyze_arrivals(const std::vector<double>& arrivals) {
  ArrivalStats stats;
  if (arrivals.size() < 2) return stats;
  std::vector<double> gaps;
  gaps.reserve(arrivals.size() - 1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
  }
  const double m = mean(gaps);
  const double sd = stddev(gaps);
  if (m > 0.0) {
    stats.mean_rate_rps = 1.0 / m;
    stats.interarrival_scv = (sd / m) * (sd / m);
  }
  return stats;
}

}  // namespace orinsim::workload
