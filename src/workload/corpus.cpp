#include "workload/corpus.h"

#include <algorithm>
#include <cctype>

#include "core/error.h"

namespace orinsim::workload {

std::string dataset_name(Dataset d) {
  return d == Dataset::kWikiText2 ? "WikiText2" : "LongBench";
}

Dataset parse_dataset(const std::string& name) {
  std::string lower;
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "wikitext2" || lower == "wikitext" || lower == "wiki") return Dataset::kWikiText2;
  if (lower == "longbench" || lower == "long") return Dataset::kLongBench;
  ORINSIM_CHECK(false, "unknown dataset: " + name);
  return Dataset::kWikiText2;
}

CorpusSpec CorpusSpec::wikitext2(std::uint64_t seed) {
  CorpusSpec s;
  s.dataset = Dataset::kWikiText2;
  s.seed = seed;
  return s;
}

CorpusSpec CorpusSpec::longbench(std::uint64_t seed) {
  CorpusSpec s;
  s.dataset = Dataset::kLongBench;
  s.vocab_words = 800;
  s.n_topics = 8;
  // Stronger topical concentration -> lower entropy, like LongBench's lower
  // perplexities in the paper.
  s.topic_word_fraction = 0.8;
  s.zipf_s = 1.15;
  s.seed = seed;
  return s;
}

namespace {

// Pronounceable pseudo-words, deterministic per id; id 0.. map to distinct
// strings so the vocabulary is exactly spec.vocab_words types.
std::string make_word(std::size_t id) {
  static const char* kOnsets[] = {"b",  "c",  "d",  "f",  "g",  "h",  "j",  "k",
                                  "l",  "m",  "n",  "p",  "r",  "s",  "t",  "v",
                                  "br", "cr", "dr", "st", "tr", "pl", "gr", "sk"};
  static const char* kNuclei[] = {"a", "e", "i", "o", "u", "ai", "ea", "ou"};
  static const char* kCodas[] = {"",  "n",  "r",  "s",  "t",  "l",  "m",  "d",
                                 "nd", "st", "rk", "nt", "ck", "sh", "th", "ng"};
  constexpr std::size_t kO = std::size(kOnsets);
  constexpr std::size_t kN = std::size(kNuclei);
  constexpr std::size_t kC = std::size(kCodas);
  std::string w;
  std::size_t x = id;
  do {
    w += kOnsets[x % kO];
    x /= kO;
    w += kNuclei[x % kN];
    x /= kN;
    w += kCodas[x % kC];
    x /= kC;
  } while (x > 0);
  return w;
}

class TopicModel {
 public:
  TopicModel(const CorpusSpec& spec, Rng& rng)
      : spec_(spec),
        global_sampler_(spec.vocab_words, spec.zipf_s),
        topic_sampler_(topic_vocab_size(spec), spec.zipf_s) {
    // Each topic owns a contiguous slice of word ids, with random offset so
    // topics overlap partially (shared function words).
    topic_offsets_.reserve(spec.n_topics);
    for (std::size_t t = 0; t < spec.n_topics; ++t) {
      topic_offsets_.push_back(rng.uniform_index(spec.vocab_words));
    }
  }

  std::size_t sample_word(std::size_t topic, Rng& rng) const {
    if (rng.uniform() < spec_.topic_word_fraction) {
      const std::size_t r = topic_sampler_.sample(rng);
      return (topic_offsets_[topic] + r) % spec_.vocab_words;
    }
    return global_sampler_.sample(rng);
  }

 private:
  static std::size_t topic_vocab_size(const CorpusSpec& spec) {
    return std::max<std::size_t>(20, spec.vocab_words / spec.n_topics);
  }

  const CorpusSpec& spec_;
  ZipfSampler global_sampler_;
  ZipfSampler topic_sampler_;
  std::vector<std::size_t> topic_offsets_;
};

std::string make_sentence(const TopicModel& topics, std::size_t topic, Rng& rng,
                          std::size_t words) {
  std::string s;
  for (std::size_t i = 0; i < words; ++i) {
    std::string w = make_word(topics.sample_word(topic, rng));
    if (i == 0) w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
    if (i) s.push_back(' ');
    s += w;
    // Occasional mid-sentence comma.
    if (i + 1 < words && rng.bernoulli(0.08)) s.push_back(',');
  }
  s.push_back('.');
  return s;
}

std::string make_paragraph(const TopicModel& topics, std::size_t topic, Rng& rng,
                           std::size_t target_words) {
  std::string p;
  std::size_t written = 0;
  while (written < target_words) {
    const std::size_t len = 5 + rng.uniform_index(18);
    if (!p.empty()) p.push_back(' ');
    p += make_sentence(topics, topic, rng, len);
    written += len;
  }
  return p;
}

}  // namespace

Corpus generate_corpus(const CorpusSpec& spec) {
  ORINSIM_CHECK(spec.vocab_words >= 50, "corpus vocab too small");
  ORINSIM_CHECK(spec.n_topics >= 1, "corpus needs at least one topic");
  Corpus corpus;
  corpus.spec = spec;
  Rng rng(spec.seed);
  TopicModel topics(spec, rng);

  if (spec.dataset == Dataset::kWikiText2) {
    corpus.paragraphs.reserve(spec.paragraphs);
    for (std::size_t i = 0; i < spec.paragraphs; ++i) {
      const std::size_t topic = rng.uniform_index(spec.n_topics);
      const std::size_t words = 120 + rng.uniform_index(300);
      corpus.paragraphs.push_back(make_paragraph(topics, topic, rng, words));
    }
  } else {
    // LongBench-like: each document is passage paragraphs + a question and
    // answer line, all within one topic (strong local repetition).
    corpus.paragraphs.reserve(spec.documents * 4);
    for (std::size_t d = 0; d < spec.documents; ++d) {
      const std::size_t topic = rng.uniform_index(spec.n_topics);
      const std::size_t passages = 2 + rng.uniform_index(3);
      for (std::size_t p = 0; p < passages; ++p) {
        const std::size_t words = 300 + rng.uniform_index(500);
        corpus.paragraphs.push_back(make_paragraph(topics, topic, rng, words));
      }
      std::string qa = "Question: " + make_sentence(topics, topic, rng, 10);
      qa += " Answer: " + make_sentence(topics, topic, rng, 14);
      corpus.paragraphs.push_back(std::move(qa));
    }
  }

  for (std::size_t i = 0; i < corpus.paragraphs.size(); ++i) {
    if (i) corpus.text += "\n\n";
    corpus.text += corpus.paragraphs[i];
  }
  return corpus;
}

}  // namespace orinsim::workload
