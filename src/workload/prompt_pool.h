// Prompt pool and batch sampling, following the paper's methodology:
// "We extract paragraphs with >=256 tokens as a pool of valid prompts. For
//  each inference batch, we randomly sample the required number of prompts."
// and for sequence-length experiments: "We use a diverse subset or multiples
// of the 256-token prompts to form a single input, and limit the output
// tokens to the remaining sequence length."
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/rng.h"
#include "tokenizer/tokenizer.h"
#include "workload/corpus.h"

namespace orinsim::workload {

// Sequence-length configuration A = B + C (total = input + output), exactly
// the splits the paper evaluates.
struct SeqConfig {
  std::size_t total = 96;
  std::size_t input = 32;
  std::size_t output = 64;
};

// The paper's default (sl=96: 32 in + 64 out) and the four sweep points.
SeqConfig seq_config_default();
std::vector<SeqConfig> seq_config_sweep();
// total must be one of {96, 128, 256, 512, 1024}.
SeqConfig seq_config_for_total(std::size_t total);

class PromptPool {
 public:
  // Tokenizes every corpus paragraph and keeps those with >= min_tokens.
  PromptPool(const Corpus& corpus, const Tokenizer& tokenizer,
             std::size_t min_tokens = 256);

  std::size_t size() const noexcept { return prompts_.size(); }
  const std::vector<TokenId>& prompt(std::size_t i) const { return prompts_.at(i); }

  // Random batch of prompts truncated/stitched to exactly input_tokens each.
  // Prompts longer than input_tokens are truncated; if a pool prompt is
  // shorter (input_tokens > 256), multiple sampled prompts are concatenated,
  // per the paper's "subset or multiples" rule.
  std::vector<std::vector<TokenId>> sample_batch(std::size_t batch_size,
                                                 std::size_t input_tokens, Rng& rng) const;

 private:
  std::vector<std::vector<TokenId>> prompts_;
};

}  // namespace orinsim::workload
